package repro_test

import (
	"math"
	"strings"
	"testing"

	"repro"
)

func TestPublicQuickstart(t *testing.T) {
	w, err := repro.NewWorld(4, repro.NOW(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var shared [4]repro.GPtr
	err = w.Run(func(p *repro.Proc) {
		shared[p.ID()] = p.Alloc(1)
		p.Barrier()
		right := (p.ID() + 1) % p.P()
		p.WriteWord(shared[right], uint64(100+p.ID()))
		p.Barrier()
		left := (p.ID() - 1 + p.P()) % p.P()
		if got := p.ReadWord(shared[p.ID()]); got != uint64(100+left) {
			t.Errorf("proc %d read %d", p.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Elapsed() == 0 {
		t.Error("no virtual time elapsed")
	}
}

func TestPublicCalibrate(t *testing.T) {
	c, err := repro.Calibrate(repro.NOW())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.O.Micros()-2.9) > 0.2 {
		t.Errorf("o = %v", c.O.Micros())
	}
}

func TestPublicSuite(t *testing.T) {
	if got := len(repro.Suite()); got != 10 {
		t.Errorf("suite has %d apps, want 10", got)
	}
	a, err := repro.AppByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(repro.AppConfig{Procs: 4, Scale: 0.0003, Seed: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("radix not verified")
	}
	if _, err := repro.AppByName("bogus"); err == nil {
		t.Error("AppByName accepted bogus name")
	}
}

func TestPublicExperiment(t *testing.T) {
	if got := len(repro.Experiments()); got != 16 {
		t.Errorf("%d experiments, want 16", got)
	}
	tab, err := repro.RunExperiment("table1", repro.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Text(), "Berkeley NOW") {
		t.Errorf("table1 text missing NOW row:\n%s", tab.Text())
	}
	if _, err := repro.RunExperiment("bogus", repro.Options{}); err == nil {
		t.Error("RunExperiment accepted bogus id")
	}
}

func TestPresetsDiffer(t *testing.T) {
	if repro.NOW() == repro.Paragon() || repro.NOW() == repro.Meiko() {
		t.Error("presets should differ")
	}
	if repro.LAN().DeltaO != repro.FromMicros(100) {
		t.Error("LAN preset should add 100µs overhead")
	}
}
