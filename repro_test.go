package repro_test

import (
	"math"
	"strings"
	"testing"

	"repro"
)

func TestPublicQuickstart(t *testing.T) {
	w, err := repro.NewWorld(4, repro.NOW(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var shared [4]repro.GPtr
	err = w.Run(func(p *repro.Proc) {
		shared[p.ID()] = p.Alloc(1)
		p.Barrier()
		right := (p.ID() + 1) % p.P()
		p.WriteWord(shared[right], uint64(100+p.ID()))
		p.Barrier()
		left := (p.ID() - 1 + p.P()) % p.P()
		if got := p.ReadWord(shared[p.ID()]); got != uint64(100+left) {
			t.Errorf("proc %d read %d", p.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Elapsed() == 0 {
		t.Error("no virtual time elapsed")
	}
}

func TestPublicCalibrate(t *testing.T) {
	c, err := repro.Calibrate(repro.NOW())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.O.Micros()-2.9) > 0.2 {
		t.Errorf("o = %v", c.O.Micros())
	}
}

func TestPublicSuite(t *testing.T) {
	if got := len(repro.Suite()); got != 10 {
		t.Errorf("suite has %d apps, want 10", got)
	}
	a, err := repro.AppByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(repro.AppConfig{Procs: 4, Scale: 0.0003, Seed: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("radix not verified")
	}
	if _, err := repro.AppByName("bogus"); err == nil {
		t.Error("AppByName accepted bogus name")
	}
}

func TestPublicExperiment(t *testing.T) {
	if got := len(repro.Experiments()); got != 21 {
		t.Errorf("%d experiments, want 21", got)
	}
	tab, err := repro.RunExperiment("table1", repro.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Text(), "Berkeley NOW") {
		t.Errorf("table1 text missing NOW row:\n%s", tab.Text())
	}
	if _, err := repro.RunExperiment("bogus", repro.Options{}); err == nil {
		t.Error("RunExperiment accepted bogus id")
	}
}

// TestPublicPlanPipeline exercises the declarative path end to end: one
// merged plan for two artifacts sharing their sweep runs, executed once,
// rendered twice.
func TestPublicPlanPipeline(t *testing.T) {
	opts := repro.Options{Procs: 8, Scale: 1.0 / 2048, Seed: 1, Quick: true,
		Apps: []string{"radix", "nowsort"}, Jobs: 4}
	plan, err := repro.PlanExperiments([]string{"fig5b", "table5"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Size() == 0 || plan.Adds() <= plan.Size() {
		t.Fatalf("merged plan: %d unique of %d declared, want sharing", plan.Size(), plan.Adds())
	}
	store := repro.NewRunStore()
	var runs int
	runner := repro.NewRunner(opts, func(p repro.RunProgress) { runs++ })
	if err := runner.RunInto(store, plan); err != nil {
		t.Fatal(err)
	}
	if runs != plan.Size() {
		t.Errorf("progress saw %d runs, want %d", runs, plan.Size())
	}
	for _, id := range []string{"fig5b", "table5"} {
		tab, err := repro.RenderExperiment(id, opts, store)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
	executed, _ := store.Stats()
	if executed != plan.Size() {
		t.Errorf("store executed %d, want %d", executed, plan.Size())
	}
}

func TestPresetsDiffer(t *testing.T) {
	if repro.NOW() == repro.Paragon() || repro.NOW() == repro.Meiko() {
		t.Error("presets should differ")
	}
	if repro.LAN().DeltaO != repro.FromMicros(100) {
		t.Error("LAN preset should add 100µs overhead")
	}
}
