// Package repro reproduces Martin, Vahdat, Culler & Anderson, "Effects of
// Communication Latency, Overhead, and Bandwidth in a Cluster
// Architecture" (ISCA 1997) as a self-contained Go library.
//
// It provides:
//
//   - a deterministic discrete-event cluster simulator with a Generic
//     Active Messages layer whose LogGP parameters — latency L, overhead
//     o, gap g, and bulk Gap G — can be varied independently, exactly as
//     the paper's modified LANai firmware allows;
//   - a Split-C-like SPMD programming layer (global pointers, blocking
//     reads, pipelined writes, bulk transfers, barriers, collectives,
//     locks) for writing parallel programs against the simulated machine;
//   - the paper's ten-application benchmark suite, each application
//     running its real algorithm and verified against a serial reference;
//   - the calibration microbenchmarks (LogP signatures) and the analytic
//     sensitivity models of §5;
//   - a deterministic fault-injection layer (message drops, duplication,
//     extra wire latency, processor stalls and slowdowns) paired with an
//     optional AM reliability protocol that recovers from a lossy wire by
//     NIC-level retransmission; and
//   - an experiment harness that regenerates every table and figure of
//     the paper's evaluation, plus extension experiments beyond it.
//
// Quick start:
//
//	w, _ := repro.NewWorld(4, repro.NOW(), 1)
//	w.Run(func(p *repro.Proc) {
//		g := p.Alloc(1)
//		p.Barrier()
//		// ... SPMD code: p.ReadWord, p.WriteWord, p.Barrier, ...
//		_ = g
//	})
//
// instrument a run (tracing, stall attribution — anything implementing
// Hooks) through the world's single attach point:
//
//	w, _ := repro.NewWorld(4, repro.NOW(), 1)
//	rec := &repro.TraceRecorder{Limit: 100_000}
//	pf := repro.NewProfiler(4)
//	w.Attach(rec, pf)
//	w.Run(body)
//	fmt.Print(pf.Snapshot(w).Text())
//
// or run a paper experiment:
//
//	tab, _ := repro.RunExperiment("fig5b", repro.Options{Quick: true})
//	fmt.Println(tab.Text())
package repro

import (
	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/calib"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/logp"
	"repro/internal/prof"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/splitc"
	"repro/internal/splitc/tune"
	"repro/internal/trace"
)

// Core type surface, re-exported from the implementation packages.
type (
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Params is a LogGP machine description plus the four experiment
	// knobs (added overhead, gap, latency, and a bulk-bandwidth cap).
	Params = logp.Params
	// World is a P-processor simulated cluster with a global address
	// space.
	World = splitc.World
	// Proc is one simulated processor's handle, passed to SPMD bodies.
	Proc = splitc.Proc
	// GPtr is a global pointer into the cluster's address space.
	GPtr = splitc.GPtr
	// WorldConfig collects every World construction knob (processor
	// count, machine, seed, time limit, collective selection).
	WorldConfig = splitc.Config
	// Collectives names the collective algorithm per primitive (barrier,
	// broadcast, all-reduce). Fields take the names from
	// BarrierAlgorithms and friends, or CollAuto for the LogGP
	// auto-tuner's pick; the zero value keeps the historical defaults.
	Collectives = splitc.Collectives
	// ReduceOp identifies a built-in all-reduce operator (OpSum, OpMax).
	ReduceOp = splitc.ReduceOp
	// TuneSelection is the collective auto-tuner's pick, one algorithm
	// name per primitive.
	TuneSelection = tune.Selection
	// App is one benchmark application.
	App = apps.App
	// AppConfig parameterizes a benchmark run.
	AppConfig = apps.Config
	// AppResult reports a benchmark run.
	AppResult = apps.Result
	// Calibration is the measured LogGP characteristics of a machine.
	Calibration = calib.Measured
	// Options parameterizes experiment-harness runs.
	Options = exp.Options
	// Table is a rendered experiment result.
	Table = exp.Table
	// Experiment is one reproducible paper artifact.
	Experiment = exp.Experiment
	// Hooks is the instrumentation interface: implementations receive
	// every message event and time charge. Embed NopHooks and override
	// what you need; attach via World.Attach or AppConfig.Hooks.
	Hooks = am.Hooks
	// NopHooks is the no-op base for Hooks implementations.
	NopHooks = am.NopHooks
	// TraceRecorder buffers per-message events for timeline rendering;
	// attach via World.Attach (or AppConfig.Hooks).
	TraceRecorder = trace.Recorder
	// Profiler is the stall-attribution accountant: attach via
	// World.Attach (or set AppConfig.Profile) and Snapshot after the run.
	Profiler = prof.Profiler
	// Profile is a run's per-processor time breakdown; the categories sum
	// exactly to the makespan on every processor (CheckConservation).
	Profile = prof.Profile
	// ProcBreakdown is one processor's attributed time per category.
	ProcBreakdown = prof.ProcBreakdown
	// RunSpec is the canonical key of one simulation run (app, procs,
	// scale, seed, knob, value, verify).
	RunSpec = run.Spec
	// RunPlan is a deduplicated set of RunSpecs with baseline→sweep
	// dependencies; experiments declare one, cmd/repro merges them.
	RunPlan = run.Plan
	// RunStore collects run outcomes, executing each distinct spec once.
	RunStore = run.Store
	// Runner executes RunPlans on a bounded worker pool.
	Runner = run.Runner
	// RunProgress reports one completed run to a Runner callback.
	RunProgress = run.Progress
	// FaultSpec is the canonical fault scenario of a RunSpec: a one-off
	// processor delay and/or a lossy wire under the reliability protocol.
	FaultSpec = run.FaultSpec
	// FaultPlan is a declarative, seed-deterministic schedule of injected
	// faults (drops, duplications, wire delays, processor stalls and
	// slowdowns); set AppConfig.FaultPlan to apply one to a run.
	FaultPlan = fault.Plan
	// FaultMatch selects wire transmissions for fault rules; FaultAny()
	// matches every transmission.
	FaultMatch = fault.Match
	// DropRule, DupRule, WireDelayRule, LinkDelayWindow, ProcDelay, and
	// SlowdownWindow are the FaultPlan rule kinds.
	DropRule        = fault.DropRule
	DupRule         = fault.DupRule
	WireDelayRule   = fault.WireDelayRule
	LinkDelayWindow = fault.LinkDelayWindow
	ProcDelay       = fault.ProcDelay
	SlowdownWindow  = fault.SlowdownWindow
	// Reliability configures the AM-layer reliability protocol (sequence
	// numbers, receiver dedup and resequencing, cumulative acks, timeout
	// retransmission); required whenever the fault plan is lossy.
	Reliability = am.Reliability
	// DeliveryError reports a message that exhausted its retransmission
	// budget; runs fail with it in their error chain (match errors.As).
	DeliveryError = am.DeliveryError
)

// FaultAny returns a FaultMatch that matches every wire transmission.
func FaultAny() FaultMatch { return fault.Any() }

// Machine presets (paper Table 1, §5.1).
var (
	// NOW is the Berkeley NOW baseline: o=2.9µs, g=5.8µs, L=5µs, 38 MB/s.
	NOW = logp.NOW
	// Paragon is the Intel Paragon comparison point.
	Paragon = logp.Paragon
	// Meiko is the Meiko CS-2 comparison point.
	Meiko = logp.Meiko
	// LAN approximates a mid-90s switched-LAN TCP/IP stack (~100µs o).
	LAN = logp.LAN
)

// Virtual-time helpers.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// FromMicros converts floating-point microseconds to Time.
func FromMicros(us float64) Time { return sim.FromMicros(us) }

// NewWorld builds a cluster of p processors with the given network
// parameters. Seed fixes all pseudo-randomness; equal seeds give
// bit-identical runs.
func NewWorld(p int, params Params, seed int64) (*World, error) {
	return splitc.NewWorld(p, params, seed)
}

// NewWorldLimit is NewWorld with a virtual-time limit; a run that exceeds
// it fails with a time-limit error (used to detect livelock).
//
// Deprecated: use NewWorldCfg, which exposes every construction knob
// (the time limit and the collective selection included).
func NewWorldLimit(p int, params Params, seed int64, limit Time) (*World, error) {
	return splitc.NewWorldLimit(p, params, seed, limit)
}

// NewWorldCfg builds a cluster from a full WorldConfig, resolving the
// collective selection (including CollAuto fields, tuned against the
// config's own machine) at construction.
func NewWorldCfg(cfg WorldConfig) (*World, error) { return splitc.NewWorldCfg(cfg) }

// Collective selection names and operators.
const (
	// CollAuto, in any Collectives field, asks the LogGP auto-tuner to
	// pick the model-minimal algorithm for the world's (P, L, o, g, G).
	CollAuto = splitc.CollAuto
	// OpSum and OpMax are the built-in all-reduce operators.
	OpSum = splitc.OpSum
	OpMax = splitc.OpMax
)

// BarrierAlgorithms lists the registered barrier algorithm names,
// default first.
func BarrierAlgorithms() []string { return splitc.BarrierAlgorithms() }

// BroadcastAlgorithms lists the registered broadcast algorithm names,
// default first.
func BroadcastAlgorithms() []string { return splitc.BroadcastAlgorithms() }

// AllReduceAlgorithms lists the registered all-reduce algorithm names,
// default first.
func AllReduceAlgorithms() []string { return splitc.AllReduceAlgorithms() }

// TuneSelect returns the auto-tuner's model-minimal algorithm per
// primitive for a p-processor machine exchanging bytes-sized operands.
func TuneSelect(p, bytes int, params Params) TuneSelection {
	return tune.Select(p, bytes, params)
}

// TuneBarrierCost is the closed-form LogGP cost model of one barrier
// episode under the named algorithm.
func TuneBarrierCost(alg string, p int, params Params) (Time, error) {
	return tune.BarrierCost(alg, p, tune.ModelOf(params))
}

// TuneBroadcastCost is the cost model of one broadcast episode of a
// bytes-sized payload under the named algorithm.
func TuneBroadcastCost(alg string, p, bytes int, params Params) (Time, error) {
	return tune.BroadcastCost(alg, p, bytes, tune.ModelOf(params))
}

// TuneAllReduceCost is the cost model of one all-reduce episode of
// bytes-sized operands under the named algorithm.
func TuneAllReduceCost(alg string, p, bytes int, params Params) (Time, error) {
	return tune.AllReduceCost(alg, p, bytes, tune.ModelOf(params))
}

// NewProfiler builds a stall-attribution profiler for a procs-processor
// world; attach it with World.Attach before Run.
func NewProfiler(procs int) *Profiler { return prof.New(procs) }

// Calibrate runs the paper's microbenchmarks against a machine and
// returns its effective LogGP characteristics.
func Calibrate(params Params) (Calibration, error) { return calib.Calibrate(params) }

// Suite returns the paper's ten-application benchmark suite in Table 4
// order.
func Suite() []App { return suite.All() }

// AppByName finds an application by its short name: the paper suite
// (for example "radix", "em3d-read", "nowsort") first, then the
// weak-scaling kernels ("scale-radix", "scale-em3d", "scale-pray" and
// their "-blk" coroutine twins).
func AppByName(name string) (App, error) { return exp.ResolveApp(name) }

// Experiments lists every table/figure experiment in paper order.
func Experiments() []Experiment { return exp.Registry() }

// RunExperiment regenerates one paper artifact by id ("table1" … "fig8"),
// planning, executing (on opts.Jobs workers), and rendering in one call.
func RunExperiment(id string, opts Options) (*Table, error) {
	e, err := exp.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts)
}

// PlanExperiments merges the run matrices of several experiments into
// one deduplicated plan, so runs shared between artifacts (Fig 5b and
// Table 5, Fig 6 and Table 6, every baseline) are declared exactly once.
func PlanExperiments(ids []string, opts Options) (*RunPlan, error) {
	return exp.PlanFor(ids, opts)
}

// NewRunner builds the experiment runner: the paper's baseline machine,
// opts.Jobs workers (0 = GOMAXPROCS), and an optional per-run progress
// callback. Tables rendered from its runs are bit-identical at every job
// count.
func NewRunner(opts Options, onProgress func(RunProgress)) *Runner {
	return exp.DefaultRunner(opts, onProgress)
}

// NewRunStore returns an empty outcome store to execute plans into.
func NewRunStore() *RunStore { return run.NewStore() }

// RenderExperiment builds one artifact's table from a store already
// holding its plan's outcomes (see PlanExperiments / Runner.RunInto).
func RenderExperiment(id string, opts Options, store *RunStore) (*Table, error) {
	return exp.Render(id, opts, store)
}
