// Calibrate: run the LogP-signature microbenchmark against several
// machines and show that each knob moves exactly one observed parameter —
// the methodology §3.3 of the paper rests on.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	machines := []struct {
		name   string
		mutate func(*repro.Params)
	}{
		{"baseline NOW", func(*repro.Params) {}},
		{"+20µs overhead", func(p *repro.Params) { p.DeltaO = repro.FromMicros(20) }},
		{"+20µs gap", func(p *repro.Params) { p.DeltaG = repro.FromMicros(20) }},
		{"+100µs latency", func(p *repro.Params) { p.DeltaL = repro.FromMicros(100) }},
		{"5 MB/s bulk cap", func(p *repro.Params) { p.BulkBandwidthMBs = 5 }},
	}
	fmt.Printf("%-18s %8s %8s %8s %8s %10s\n", "machine", "o(µs)", "g(µs)", "L(µs)", "RTT(µs)", "bulk MB/s")
	for _, m := range machines {
		params := repro.NOW()
		m.mutate(&params)
		c, err := repro.Calibrate(params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8.1f %8.1f %8.1f %8.1f %10.1f\n",
			m.name, c.O.Micros(), c.G.Micros(), c.L.Micros(), c.RTT.Micros(), c.BulkMBs)
	}
	fmt.Println("\nNote the fixed-window capacity artifact: +100µs latency drags the")
	fmt.Println("effective gap up to RTT/W even though the gap knob was untouched —")
	fmt.Println("the same artifact the paper documents in Table 2.")
}
