// Sensitivity: reproduce a slice of the paper's Figure 5 by hand — sweep
// the added overhead knob for two applications with opposite characters
// and print their slowdown curves side by side.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const procs = 8
	const scale = 1.0 / 1024

	sweep := []float64{0, 5, 10, 20, 50, 100} // added overhead, µs

	appNames := []string{"em3d-write", "nowsort"}
	fmt.Println("slowdown vs added overhead (µs) — frequent communicator vs disk-bound app")
	fmt.Printf("%8s  %12s  %12s\n", "Δo(µs)", appNames[0], appNames[1])

	base := make([]float64, len(appNames))
	for _, dO := range sweep {
		row := fmt.Sprintf("%8.0f", dO)
		for i, name := range appNames {
			app, err := repro.AppByName(name)
			if err != nil {
				log.Fatal(err)
			}
			params := repro.NOW()
			params.DeltaO = repro.FromMicros(dO)
			res, err := app.Run(repro.AppConfig{Procs: procs, Scale: scale, Params: params, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			secs := res.Elapsed.Seconds()
			if dO == 0 {
				base[i] = secs
			}
			row += fmt.Sprintf("  %11.2fx", secs/base[i])
		}
		fmt.Println(row)
	}
	fmt.Println("\nEM3D(write) pays overhead on every push; NOW-sort hides it under its disks.")
}
