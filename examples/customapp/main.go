// Customapp: writing your own SPMD program against the library — a
// distributed 1-D heat diffusion stencil with halo exchange, the classic
// bulk-synchronous pattern. Shows global allocation, pipelined writes for
// halos, barriers, and an all-reduce convergence test, plus how machine
// parameters change the program's behavior.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

const (
	procs    = 8
	cellsPer = 512 // interior cells per processor
	maxSteps = 200
)

// run executes the stencil on one machine and returns (steps, virtual
// seconds, residual).
func run(params repro.Params) (int, float64, float64) {
	w, err := repro.NewWorld(procs, params, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Layout per proc: [left-halo, cell0..cellN-1, right-halo].
	field := make([]repro.GPtr, procs)
	steps := 0
	var residual float64

	err = w.Run(func(p *repro.Proc) {
		me := p.ID()
		field[me] = p.Alloc(cellsPer + 2)
		loc := p.Local(field[me], cellsPer+2)
		for i := 1; i <= cellsPer; i++ {
			// A hot spike in the middle of the global domain.
			gi := me*cellsPer + i - 1
			if gi == procs*cellsPer/2 {
				loc[i] = math.Float64bits(1000.0)
			} else {
				loc[i] = math.Float64bits(0.0)
			}
		}
		p.Barrier()

		cur := make([]float64, cellsPer+2)
		next := make([]float64, cellsPer+2)
		for s := 0; s < maxSteps; s++ {
			// Halo exchange: push boundary cells into the neighbors'
			// halo slots with pipelined writes; the barrier completes them.
			if me > 0 {
				p.WriteWord(field[me-1].Add(cellsPer+1), loc[1])
			}
			if me < procs-1 {
				p.WriteWord(field[me+1], loc[cellsPer])
			}
			p.Barrier()

			for i := 0; i <= cellsPer+1; i++ {
				cur[i] = math.Float64frombits(loc[i])
			}
			var localDelta float64
			for i := 1; i <= cellsPer; i++ {
				next[i] = cur[i] + 0.25*(cur[i-1]-2*cur[i]+cur[i+1])
				localDelta += math.Abs(next[i] - cur[i])
			}
			p.ComputeUs(0.05 * cellsPer) // the stencil's arithmetic
			for i := 1; i <= cellsPer; i++ {
				loc[i] = math.Float64bits(next[i])
			}

			// Convergence: sum of |Δ| across the whole domain.
			total := math.Float64frombits(p.AllReduce(math.Float64bits(localDelta),
				func(a, b uint64) uint64 {
					return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
				}))
			p.Barrier()
			if me == 0 {
				steps = s + 1
				residual = total
			}
			if total < 1.0 {
				break
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return steps, w.Elapsed().Seconds(), residual
}

func main() {
	fmt.Println("1-D heat diffusion, halo exchange over the global address space")
	for _, m := range []struct {
		name   string
		params repro.Params
	}{
		{"Berkeley NOW", repro.NOW()},
		{"LAN stack (+100µs o)", repro.LAN()},
	} {
		steps, secs, res := run(m.params)
		fmt.Printf("%-22s %3d steps, residual %6.2f, virtual %.4fs\n", m.name, steps, res, secs)
	}
	fmt.Println("\nSame program, same answers — the slow machine just takes longer,")
	fmt.Println("which is precisely the experiment the paper runs at cluster scale.")
}
