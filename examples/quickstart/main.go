// Quickstart: build a simulated NOW cluster, exchange data through the
// global address space, time a round trip, and run one benchmark app.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 4-node Berkeley NOW: o=2.9µs, g=5.8µs, L=5µs, 38 MB/s bulk.
	w, err := repro.NewWorld(4, repro.NOW(), 1)
	if err != nil {
		log.Fatal(err)
	}

	var cells [4]repro.GPtr
	err = w.Run(func(p *repro.Proc) {
		// Every processor allocates one word and publishes the pointer.
		cells[p.ID()] = p.Alloc(1)
		p.Barrier()

		// A ring of remote writes, then a blocking read back.
		right := (p.ID() + 1) % p.P()
		p.WriteWord(cells[right], uint64(1000+p.ID()))
		p.Barrier()

		if p.ID() == 0 {
			start := p.Now()
			v := p.ReadWord(cells[1]) // a remote round trip
			fmt.Printf("proc 0 read %d from proc 1 in %v (2L+2o_send+2o_recv)\n",
				v, p.Now()-start)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring exchange finished at virtual %v\n\n", w.Elapsed())

	// Run one member of the paper's benchmark suite with verification.
	app, err := repro.AppByName("radix")
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.AppConfig{Procs: 8, Scale: 1.0 / 1024, Seed: 1, Verify: true}
	fmt.Printf("running %s (%s)\n", app.PaperName(), app.InputDesc(cfg))
	res, err := app.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted and verified in virtual %v — %.0f msgs/proc at one per %.1fµs\n",
		res.Elapsed, res.Summary.AvgMsgsPerProc, res.Summary.MsgIntervalUs)
}
