// Benchmarks regenerating the paper's tables and figures, one per
// artifact, plus micro- and ablation benchmarks for the simulator itself.
// These run at a reduced scale so `go test -bench=.` finishes in minutes;
// cmd/repro regenerates the full-scale artifacts.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro"
	"repro/internal/am"
	"repro/internal/calib"
	"repro/internal/logp"
	"repro/internal/sim"
)

// benchOpts is the reduced-scale configuration used by the per-artifact
// benchmarks.
func benchOpts() repro.Options {
	return repro.Options{
		Procs: 16,
		Scale: 1.0 / 1024,
		Seed:  1,
		Quick: true,
	}
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string, opts repro.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := repro.RunExperiment(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", benchOpts()) }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3", benchOpts()) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", benchOpts()) }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", benchOpts()) }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4", benchOpts()) }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4", benchOpts()) }
func BenchmarkFig5a(b *testing.B)  { benchExperiment(b, "fig5a", benchOpts()) }
func BenchmarkFig5b(b *testing.B)  { benchExperiment(b, "fig5b", benchOpts()) }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5", benchOpts()) }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6", benchOpts()) }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6", benchOpts()) }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7", benchOpts()) }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8", benchOpts()) }

// BenchmarkSuiteBaseline measures one unmodified-machine pass per app.
func BenchmarkSuiteBaseline(b *testing.B) {
	for _, a := range repro.Suite() {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			cfg := repro.AppConfig{Procs: 16, Scale: 1.0 / 1024, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepParallel measures the wall-clock effect of the run
// engine's worker pool on a multi-app Quick fig5b plan: the same
// deduplicated plan executed at jobs=1 and jobs=NumCPU. Tables are
// bit-identical at both settings; only elapsed time may differ. On a
// ≥4-core host the parallel pool should finish the sweep at least ~2x
// faster; on a single-core host the two settings coincide.
func BenchmarkSweepParallel(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"radix", "em3d-read", "em3d-write", "sample", "nowsort"}
	for _, jobs := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			o := opts
			o.Jobs = jobs
			for i := 0; i < b.N; i++ {
				plan, err := repro.PlanExperiments([]string{"fig5b"}, o)
				if err != nil {
					b.Fatal(err)
				}
				store := repro.NewRunStore()
				if err := repro.NewRunner(o, nil).RunInto(store, plan); err != nil {
					b.Fatal(err)
				}
				tab, err := repro.RenderExperiment("fig5b", o, store)
				if err != nil {
					b.Fatal(err)
				}
				if len(tab.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
			b.ReportMetric(float64(runtime.NumCPU()), "host-cores")
		})
	}
}

// --- Simulator microbenchmarks -----------------------------------------

// BenchmarkEngineDispatch measures the scheduler's park/wake dispatch
// cycle: one processor repeatedly sleeps one tick, which schedules a wake
// event, parks, and resumes when the event fires. With the same-proc
// dispatch fast path this cycle never round-trips through a channel.
func BenchmarkEngineDispatch(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New(sim.Config{Procs: 1})
	err := eng.Run(func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShortMessage measures the steady-state cost of simulating one
// short active message end to end: send overhead, NIC injection, wire
// flight, receive overhead, handler, and the firmware credit return. The
// hot path is required to be allocation-free (see TestShortMessageZeroAlloc
// in internal/am).
func BenchmarkShortMessage(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New(sim.Config{Procs: 2})
	m := am.MustMachine(eng, logp.NOW())
	seen := 0
	handler := func(*am.Endpoint, *am.Token, am.Args) { seen++ }
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ep.Request(1, am.ClassWrite, handler, am.Args{})
			}
			ep.WaitUntil(func() bool { return seen == b.N }, "drain")
			b.StopTimer()
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return seen == b.N }, "sink")
		},
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBulkTransfer measures the cost of simulating bulk data motion:
// each iteration stores one 64 KB transfer (fragmented by the AM layer)
// to the neighbor and waits for every fragment to be applied.
func BenchmarkBulkTransfer(b *testing.B) {
	const transfer = 64 << 10
	b.SetBytes(transfer)
	b.ReportAllocs()
	eng := sim.New(sim.Config{Procs: 2})
	m := am.MustMachine(eng, logp.NOW())
	var got int
	handler := func(ep *am.Endpoint, tok *am.Token, args am.Args, data []byte) { got += len(data) }
	data := make([]byte, transfer)
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ep.StoreLarge(1, am.ClassWrite, handler, am.Args{}, data)
				ep.WaitUntilFor(am.WaitStore, func() bool { return ep.TotalOutstanding() == 0 }, "store-sync")
			}
			b.StopTimer()
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return got == b.N*transfer }, "sink")
		},
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRoundTrip measures the real cost of simulating one AM round
// trip (the simulator's fundamental operation).
func BenchmarkRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := calib.RoundTrip(logp.NOW()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageThroughput reports simulated messages per real second.
func BenchmarkMessageThroughput(b *testing.B) {
	const msgs = 10000
	for i := 0; i < b.N; i++ {
		eng := sim.New(sim.Config{Procs: 2})
		m := am.MustMachine(eng, logp.NOW())
		seen := 0
		err := eng.RunEach([]func(*sim.Proc){
			func(p *sim.Proc) {
				ep := m.Endpoint(0)
				for j := 0; j < msgs; j++ {
					ep.Request(1, am.ClassWrite, func(*am.Endpoint, *am.Token, am.Args) { seen++ }, am.Args{})
				}
				ep.WaitUntil(func() bool { return seen == msgs }, "drain")
			},
			func(p *sim.Proc) {
				m.Endpoint(1).WaitUntil(func() bool { return seen == msgs }, "sink")
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgs), "msgs/op")
}

// BenchmarkSchedulerFastPath measures checkpoints that avoid goroutine
// switches (DESIGN.md decision 1).
func BenchmarkSchedulerFastPath(b *testing.B) {
	eng := sim.New(sim.Config{Procs: 1})
	err := eng.Run(func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
			p.Checkpoint()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	if eng.Switches() != 0 {
		b.Fatalf("fast path took %d switches", eng.Switches())
	}
}

// BenchmarkWindowAblation varies the flow-control window (DESIGN.md
// decision 2): the effective gap at large L is RTT/W, so smaller windows
// slow a latency-stretched burst proportionally.
func BenchmarkWindowAblation(b *testing.B) {
	for _, window := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("W=%d", window), func(b *testing.B) {
			params := logp.NOW()
			params.Window = window
			params.DeltaL = sim.FromMicros(100)
			var g sim.Time
			for i := 0; i < b.N; i++ {
				m, err := calib.Calibrate(params)
				if err != nil {
					b.Fatal(err)
				}
				g = m.G
			}
			b.ReportMetric(g.Micros(), "effective-g-µs")
		})
	}
}

// BenchmarkBarrier measures the real cost of simulating one dissemination
// barrier across 32 processors.
func BenchmarkBarrier(b *testing.B) {
	w, err := repro.NewWorld(32, repro.NOW(), 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Run(func(p *repro.Proc) {
		for i := 0; i < b.N; i++ {
			p.Barrier()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLockContentionAblation quantifies how the spin-lock retry
// traffic reacts to added overhead (the Barnes livelock mechanism).
func BenchmarkLockContentionAblation(b *testing.B) {
	for _, dO := range []float64{0, 25} {
		b.Run(fmt.Sprintf("dO=%.0f", dO), func(b *testing.B) {
			params := repro.NOW()
			params.DeltaO = repro.FromMicros(dO)
			for i := 0; i < b.N; i++ {
				w, err := repro.NewWorld(8, params, 1)
				if err != nil {
					b.Fatal(err)
				}
				var lock repro.GPtr
				var failed int64
				err = w.Run(func(p *repro.Proc) {
					if p.ID() == 0 {
						lock = p.Alloc(1)
					}
					p.Barrier()
					for j := 0; j < 3; j++ {
						p.Lock(lock)
						p.ComputeUs(20)
						p.Unlock(lock)
						p.StoreSync()
					}
					p.Barrier()
					failed += p.FailedLockAttempts()
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(failed), "failed-locks")
			}
		})
	}
}

// BenchmarkScaleAblation shows how simulated run time scales with input
// size for a representative app (sanity for the scaling substitution).
func BenchmarkScaleAblation(b *testing.B) {
	for _, scale := range []float64{1.0 / 4096, 1.0 / 1024, 1.0 / 256} {
		b.Run(fmt.Sprintf("scale=1_%d", int(1/scale)), func(b *testing.B) {
			a, err := repro.AppByName("radix")
			if err != nil {
				b.Fatal(err)
			}
			var virt sim.Time
			for i := 0; i < b.N; i++ {
				res, err := a.Run(repro.AppConfig{Procs: 16, Scale: scale, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				virt = res.Elapsed
			}
			b.ReportMetric(virt.Millis(), "virtual-ms")
		})
	}
}
