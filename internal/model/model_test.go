package model

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestOverheadModel(t *testing.T) {
	// Paper Table 5, Sample at 32 nodes: r0=13.2s, m=1,294,967; at
	// Δo=50.1µs added (o: 2.9→53) prediction is 142.7s.
	r0 := sim.FromSeconds(13.2)
	m := int64(1_294_967)
	got := Overhead(r0, m, sim.FromMicros(50.1)).Seconds()
	if got < 142 || got > 144 {
		t.Errorf("Overhead prediction = %.1fs, want ≈142.7 (paper Table 5)", got)
	}
}

func TestGapBurstModel(t *testing.T) {
	// Paper Table 6, Radix: r0=7.8s, m=1,279,018, g 5.8→105 (Δg=99.2µs)
	// predicts 135.7s.
	r0 := sim.FromSeconds(7.8)
	m := int64(1_279_018)
	got := GapBurst(r0, m, sim.FromMicros(99.2)).Seconds()
	if got < 134 || got > 137 {
		t.Errorf("GapBurst prediction = %.1fs, want ≈135.7 (paper Table 6)", got)
	}
}

func TestGapUniformThreshold(t *testing.T) {
	r0 := sim.FromSeconds(10)
	m := int64(1000)
	if got := GapUniform(r0, m, sim.FromMicros(5), sim.FromMicros(8)); got != r0 {
		t.Errorf("below-interval gap changed runtime: %v", got)
	}
	got := GapUniform(r0, m, sim.FromMicros(10), sim.FromMicros(8))
	want := r0 + 1000*sim.FromMicros(2)
	if got != want {
		t.Errorf("uniform model = %v, want %v", got, want)
	}
}

func TestReadLatencyEquivalence(t *testing.T) {
	// §5.3: 100 µs of latency adds the same predicted time as 50 µs of
	// overhead for a read-based app.
	r0 := sim.FromSeconds(114)
	m := int64(8_316_063)
	lat := ReadLatency(r0, m, sim.FromMicros(100))
	ovh := Overhead(r0, m, sim.FromMicros(50))
	if lat != ovh {
		t.Errorf("latency(100µs)=%v vs overhead(50µs)=%v, want equal", lat, ovh)
	}
}

func TestSlowdown(t *testing.T) {
	if s := Slowdown(20, 10); s != 2 {
		t.Errorf("slowdown = %v", s)
	}
	if s := Slowdown(5, 0); s != 0 {
		t.Errorf("slowdown with zero base = %v", s)
	}
}

// Property: all models are monotone and anchored at the baseline.
func TestModelProperties(t *testing.T) {
	f := func(r0raw uint32, mraw uint16, d1raw, d2raw uint16) bool {
		r0 := sim.Time(r0raw)
		m := int64(mraw)
		d1, d2 := sim.Time(d1raw), sim.Time(d2raw)
		if d2 < d1 {
			d1, d2 = d2, d1
		}
		if Overhead(r0, m, 0) != r0 || GapBurst(r0, m, 0) != r0 || ReadLatency(r0, m, 0) != r0 {
			return false
		}
		return Overhead(r0, m, d1) <= Overhead(r0, m, d2) &&
			GapBurst(r0, m, d1) <= GapBurst(r0, m, d2) &&
			ReadLatency(r0, m, d1) <= ReadLatency(r0, m, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
