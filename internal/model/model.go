// Package model implements the paper's analytic sensitivity models from
// §5, which predict application run time under added communication cost
// from two numbers measured on the unmodified machine: the base run time
// and m, the maximum number of messages sent by any processor (Table 4).
package model

import "repro/internal/sim"

// Overhead predicts run time under added per-message overhead deltaO
// (§5.1):
//
//	r = r0 + 2·m·Δo
//
// The factor of two reflects Split-C's request/response pairing: a
// processor pays Δo to send each message and Δo to receive the matching
// message of its pair.
func Overhead(r0 sim.Time, m int64, deltaO sim.Time) sim.Time {
	return r0 + 2*sim.Time(m)*deltaO
}

// GapBurst predicts run time under added gap for bursty senders (§5.2):
//
//	r = r0 + m·Δg
//
// assuming every message is sent inside a communication burst that the
// gap paces. The paper finds this model the better fit: the applications'
// linear response to gap shows their communication is bursty.
func GapBurst(r0 sim.Time, m int64, deltaG sim.Time) sim.Time {
	return r0 + sim.Time(m)*deltaG
}

// GapUniform predicts run time under total gap g for uniformly spaced
// senders (§5.2): the processor only stalls once the gap exceeds its
// natural message interval I,
//
//	r = r0 + m·(g − I)  when g > I,   r = r0  otherwise.
func GapUniform(r0 sim.Time, m int64, g, interval sim.Time) sim.Time {
	if g <= interval {
		return r0
	}
	return r0 + sim.Time(m)*(g-interval)
}

// ReadLatency predicts run time under added latency for an application
// whose communication is blocking reads (§5.3, accurate only for
// EM3D(read)): each read's round trip stretches by 2·ΔL, and with m
// counting both the requests and the replies a processor sends, the
// per-processor penalty is m·ΔL.
func ReadLatency(r0 sim.Time, m int64, deltaL sim.Time) sim.Time {
	return r0 + sim.Time(m)*deltaL
}

// Slowdown converts a predicted or measured run time to the paper's
// slowdown metric (relative to the baseline run).
func Slowdown(r, r0 sim.Time) float64 {
	if r0 == 0 {
		return 0
	}
	return float64(r) / float64(r0)
}
