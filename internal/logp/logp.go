// Package logp defines the LogGP machine parameterization used throughout
// the reproduction: the latency L, the per-message processor overhead o
// (split into send and receive sides), the per-message gap g, the per-byte
// Gap G for bulk transfers, and the network capacity window.
//
// Following §3.2 of the paper, a machine is a baseline parameter set plus
// four independently adjustable deltas:
//
//   - DeltaO is charged on the host processor at every message send and
//     every message reception (the paper's stall loop around the NIC
//     read/write).
//   - DeltaG stalls the NIC transmit path after a message is on the wire,
//     so latency and overhead are unaffected.
//   - DeltaL defers the receiver-side presence bit (the LANai delay queue),
//     so the send path — and hence o and g — is unaffected.
//   - BulkBandwidth caps the bulk-fragment DMA bandwidth (the paper's G
//     knob): the transmit context stalls after injecting each fragment for
//     a period proportional to the fragment size.
package logp

import (
	"fmt"

	"repro/internal/sim"
)

// Params describes one communication architecture in LogGP terms, plus the
// implementation details of the Active Message layer that the paper's
// calibration showed to matter (the overhead split and the flow-control
// window).
type Params struct {
	// OSend is the host-processor time to write a short message into the
	// network interface. The Berkeley NOW measures 1.8 µs (Figure 3).
	OSend sim.Time
	// ORecv is the host-processor time to read a short message from the
	// network interface and dispatch its handler. NOW: 4.0 µs (Figure 3).
	ORecv sim.Time
	// Gap is the minimum interval between consecutive message injections by
	// one network interface (the LANai message-handling loop). NOW: 5.8 µs.
	Gap sim.Time
	// Latency is the end-to-end wire+NIC transit time for a short message.
	// NOW: 5.0 µs.
	Latency sim.Time
	// GPerByte is the bulk-transfer time per byte (LogGP's G). On the NOW
	// this is set by the SBUS DMA rate, 1/38 MB/s ≈ 26.3 ns/byte.
	GPerByte float64 // nanoseconds per byte
	// Window is the maximum number of outstanding (un-replied) request
	// messages per destination. The paper notes its implementation has a
	// fixed number of outstanding messages independent of L; 8 reproduces
	// Table 2's effective-gap rise at large L.
	Window int
	// FragmentSize is the bulk-transfer fragment size in bytes (4 KB on
	// the NOW's GAM).
	FragmentSize int

	// The four experiment knobs (all default zero = unmodified machine).

	// DeltaO is added overhead, charged once per send and once per receive.
	DeltaO sim.Time
	// DeltaG is added gap, stalling the NIC transmit path post-injection.
	DeltaG sim.Time
	// DeltaL is added latency, applied at the receiver's delay queue.
	DeltaL sim.Time
	// BulkBandwidthMBs, when > 0, caps bulk bandwidth to this many MB/s by
	// raising the effective per-byte Gap (it never lowers G below the
	// machine's own rate).
	BulkBandwidthMBs float64
}

// O reports the average short-message overhead (o_send+o_recv)/2 including
// DeltaO, matching the paper's single-number "o" convention.
func (p Params) O() sim.Time {
	return (p.OSend + p.ORecv + 2*p.DeltaO) / 2
}

// EffOSend is the send-side overhead including the experiment delta.
func (p Params) EffOSend() sim.Time { return p.OSend + p.DeltaO }

// EffORecv is the receive-side overhead including the experiment delta.
func (p Params) EffORecv() sim.Time { return p.ORecv + p.DeltaO }

// EffGap is the NIC injection gap including the experiment delta.
func (p Params) EffGap() sim.Time { return p.Gap + p.DeltaG }

// EffLatency is the short-message latency including the experiment delta.
func (p Params) EffLatency() sim.Time { return p.Latency + p.DeltaL }

// EffGPerByte is the bulk per-byte time in nanoseconds, after applying the
// bulk bandwidth cap.
func (p Params) EffGPerByte() float64 {
	g := p.GPerByte
	if p.BulkBandwidthMBs > 0 {
		capG := 1e3 / p.BulkBandwidthMBs // ns per byte at the cap
		if capG > g {
			g = capG
		}
	}
	return g
}

// BulkMBs reports the effective bulk bandwidth in MB/s (1/G).
func (p Params) BulkMBs() float64 {
	g := p.EffGPerByte()
	if g <= 0 {
		return 0
	}
	return 1e3 / g
}

// BulkTime returns the wire/DMA time to move n bytes at the effective G.
func (p Params) BulkTime(n int) sim.Time {
	return sim.Time(float64(n)*p.EffGPerByte() + 0.5)
}

// Validate reports a descriptive error for non-physical parameter sets.
func (p Params) Validate() error {
	switch {
	case p.OSend < 0 || p.ORecv < 0 || p.Gap < 0 || p.Latency < 0:
		return fmt.Errorf("logp: negative base parameter: %+v", p)
	case p.DeltaO < 0 || p.DeltaG < 0 || p.DeltaL < 0:
		return fmt.Errorf("logp: negative delta: %+v", p)
	case p.GPerByte < 0 || p.BulkBandwidthMBs < 0:
		return fmt.Errorf("logp: negative bandwidth term: %+v", p)
	case p.Window < 1:
		return fmt.Errorf("logp: window must be >= 1, got %d", p.Window)
	case p.FragmentSize < 1:
		return fmt.Errorf("logp: fragment size must be >= 1, got %d", p.FragmentSize)
	}
	return nil
}

func (p Params) String() string {
	return fmt.Sprintf("o=%.1fµs (s=%.1f r=%.1f) g=%.1fµs L=%.1fµs G=%.1fMB/s W=%d",
		p.O().Micros(), p.EffOSend().Micros(), p.EffORecv().Micros(),
		p.EffGap().Micros(), p.EffLatency().Micros(), p.BulkMBs(), p.Window)
}

// MBsToNsPerByte converts a bandwidth in MB/s to nanoseconds per byte.
func MBsToNsPerByte(mbs float64) float64 { return 1e3 / mbs }

// NOW returns the Berkeley NOW baseline (Table 1): o=2.9 µs (1.8 send /
// 4.0 receive), g=5.8 µs, L=5.0 µs, 38 MB/s bulk.
func NOW() Params {
	return Params{
		OSend:        sim.FromMicros(1.8),
		ORecv:        sim.FromMicros(4.0),
		Gap:          sim.FromMicros(5.8),
		Latency:      sim.FromMicros(5.0),
		GPerByte:     MBsToNsPerByte(38),
		Window:       8,
		FragmentSize: 4096,
	}
}

// Paragon returns the Intel Paragon comparison point from Table 1:
// o=1.8 µs, g=7.6 µs, L=6.5 µs, 141 MB/s.
func Paragon() Params {
	return Params{
		OSend:        sim.FromMicros(1.4),
		ORecv:        sim.FromMicros(2.2),
		Gap:          sim.FromMicros(7.6),
		Latency:      sim.FromMicros(6.5),
		GPerByte:     MBsToNsPerByte(141),
		Window:       8,
		FragmentSize: 4096,
	}
}

// Meiko returns the Meiko CS-2 comparison point from Table 1:
// o=1.7 µs, g=13.6 µs, L=7.5 µs, 47 MB/s.
func Meiko() Params {
	return Params{
		OSend:        sim.FromMicros(1.3),
		ORecv:        sim.FromMicros(2.1),
		Gap:          sim.FromMicros(13.6),
		Latency:      sim.FromMicros(7.5),
		GPerByte:     MBsToNsPerByte(47),
		Window:       8,
		FragmentSize: 4096,
	}
}

// LAN returns a mid-1990s switched-LAN TCP/IP stack of the kind the paper
// uses as its slow extreme: ~100 µs overhead with NOW-like latency and gap.
func LAN() Params {
	p := NOW()
	p.DeltaO = sim.FromMicros(100)
	return p
}
