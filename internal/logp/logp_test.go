package logp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNOWBaseline(t *testing.T) {
	p := NOW()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.O().Micros(); got != 2.9 {
		t.Errorf("o = %v µs, want 2.9", got)
	}
	if got := p.EffGap().Micros(); got != 5.8 {
		t.Errorf("g = %v µs, want 5.8", got)
	}
	if got := p.EffLatency().Micros(); got != 5.0 {
		t.Errorf("L = %v µs, want 5.0", got)
	}
	if got := p.BulkMBs(); math.Abs(got-38) > 0.01 {
		t.Errorf("1/G = %v MB/s, want 38", got)
	}
}

func TestComparisonPresets(t *testing.T) {
	for name, p := range map[string]Params{"paragon": Paragon(), "meiko": Meiko(), "lan": LAN()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if got := Paragon().O().Micros(); got != 1.8 {
		t.Errorf("paragon o = %v, want 1.8", got)
	}
	if got := Meiko().O().Micros(); got != 1.7 {
		t.Errorf("meiko o = %v, want 1.7", got)
	}
	if got := LAN().O().Micros(); got != 102.9 {
		t.Errorf("lan o = %v, want 102.9", got)
	}
}

func TestDeltas(t *testing.T) {
	p := NOW()
	p.DeltaO = sim.FromMicros(10)
	if got := p.O().Micros(); got != 12.9 {
		t.Errorf("o with Δo=10 = %v, want 12.9", got)
	}
	if got := p.EffOSend().Micros(); got != 11.8 {
		t.Errorf("o_send = %v, want 11.8", got)
	}
	if got := p.EffORecv().Micros(); got != 14.0 {
		t.Errorf("o_recv = %v, want 14.0", got)
	}
	p.DeltaG = sim.FromMicros(4.2)
	if got := p.EffGap().Micros(); got != 10.0 {
		t.Errorf("g = %v, want 10.0", got)
	}
	p.DeltaL = sim.FromMicros(25)
	if got := p.EffLatency().Micros(); got != 30.0 {
		t.Errorf("L = %v, want 30.0", got)
	}
}

func TestBulkBandwidthCap(t *testing.T) {
	p := NOW()
	p.BulkBandwidthMBs = 10
	if got := p.BulkMBs(); math.Abs(got-10) > 0.01 {
		t.Errorf("capped bandwidth = %v, want 10", got)
	}
	// A cap above the machine's own rate must not speed the machine up.
	p.BulkBandwidthMBs = 1000
	if got := p.BulkMBs(); math.Abs(got-38) > 0.01 {
		t.Errorf("high cap changed bandwidth to %v, want 38", got)
	}
}

func TestBulkTime(t *testing.T) {
	p := NOW()
	// 38 MB/s → 4096 bytes ≈ 107.8 µs.
	got := p.BulkTime(4096).Micros()
	if math.Abs(got-107.8) > 0.2 {
		t.Errorf("BulkTime(4096) = %v µs, want ≈107.8", got)
	}
	if p.BulkTime(0) != 0 {
		t.Errorf("BulkTime(0) = %v, want 0", p.BulkTime(0))
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.OSend = -1 },
		func(p *Params) { p.DeltaO = -1 },
		func(p *Params) { p.DeltaG = -1 },
		func(p *Params) { p.DeltaL = -1 },
		func(p *Params) { p.GPerByte = -1 },
		func(p *Params) { p.BulkBandwidthMBs = -1 },
		func(p *Params) { p.Window = 0 },
		func(p *Params) { p.FragmentSize = 0 },
	}
	for i, mutate := range bad {
		p := NOW()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid params", i)
		}
	}
}

func TestStringIncludesAllParams(t *testing.T) {
	s := NOW().String()
	for _, want := range []string{"o=", "g=", "L=", "G=", "W="} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: effective parameters are monotone in their deltas.
func TestEffectiveMonotoneProperty(t *testing.T) {
	f := func(dO, dG, dL uint16, bw uint8) bool {
		base := NOW()
		p := base
		p.DeltaO = sim.Time(dO)
		p.DeltaG = sim.Time(dG)
		p.DeltaL = sim.Time(dL)
		if p.EffOSend() < base.EffOSend() || p.EffORecv() < base.EffORecv() {
			return false
		}
		if p.EffGap() < base.EffGap() || p.EffLatency() < base.EffLatency() {
			return false
		}
		// Bandwidth caps only ever slow bulk transfers down.
		q := base
		q.BulkBandwidthMBs = float64(bw) + 1
		return q.EffGPerByte() >= base.EffGPerByte()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BulkTime scales (approximately) linearly in the byte count.
func TestBulkTimeLinearProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)
		p := NOW()
		t2 := p.BulkTime(2 * n)
		t1 := p.BulkTime(n)
		diff := t2 - 2*t1
		return diff >= -2 && diff <= 2 // rounding slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
