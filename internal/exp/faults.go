package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/sim"
)

// The faults experiment probes the cluster's response to an imperfect
// machine, two ways. First, a delay-propagation probe: a single 1 ms
// stall injected into one processor halfway through the run. On a
// loosely-coupled program the other processors keep computing and the
// stall is absorbed; on a tightly-coupled one it propagates through the
// communication structure and the whole makespan grows by up to the full
// injected amount (or more, when the stall lands before a serializing
// phase). Second, a lossy-wire sweep: every transmission is dropped
// independently with probability 0–1% and the AM reliability protocol
// recovers by retransmission, trading completion time for delivery. The
// rate-0 row isolates the protocol's own cost on a perfect wire.

// faultDelayUs is the one-off processor stall the propagation probe
// injects (µs).
const faultDelayUs = 1000.0

// faultDropRates are the per-transmission drop probabilities of the
// lossy-wire sweep.
func faultDropRates() []float64 { return []float64{0, 0.0001, 0.001, 0.005, 0.01} }

// faultScenarios is the scenario list, in table order: the delay probe,
// then the drop sweep.
func (o Options) faultScenarios() []run.FaultSpec {
	fs := []run.FaultSpec{{DelayProc: o.Procs / 2, DelayAtFrac: 0.5, DelayUs: faultDelayUs}}
	for _, rate := range o.sweepPoints(faultDropRates()) {
		fs = append(fs, run.FaultSpec{DropProb: rate, Reliable: true})
	}
	return fs
}

// faultSpec is the canonical faulted run for an app under these options:
// no knob turned, only the fault scenario applied.
func (o Options) faultSpec(a apps.App, f run.FaultSpec) run.Spec {
	return run.Spec{App: a.Name(), Procs: o.Procs, Scale: o.Scale, Seed: o.Seed, Knob: core.KnobNone, Fault: f}
}

// faultLabel renders a scenario for the table's scenario column.
func faultLabel(f run.FaultSpec) string {
	if f.DelayUs > 0 {
		return fmt.Sprintf("delay p%d +%gms", f.DelayProc, f.DelayUs/1000)
	}
	if f.DropProb == 0 {
		return "reliable, lossless"
	}
	return fmt.Sprintf("drop %g%%", 100*f.DropProb)
}

// faultsPlan declares the run matrix: every selected app at every
// scenario (baselines are auto-declared by AddSweep).
func faultsPlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		for _, f := range o.faultScenarios() {
			p.AddSweep(o.faultSpec(a, f), o.Verify)
		}
	}
	return p, nil
}

// faultsRender builds the scenario table. Δr is the makespan growth over
// the unfaulted baseline; prop% expresses it as a fraction of the
// injected stall (delay rows only) — 0 means fully absorbed, 100 means
// fully propagated.
func faultsRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "faults",
		Title: fmt.Sprintf("Fault injection: delay propagation and lossy-wire recovery (%d nodes)", o.Procs),
	}
	t.Columns = []string{"program", "scenario", "run(s)", "slowdown", "Δr(ms)", "prop%", "retrans", "drops", "dup-disc"}
	ms := func(d sim.Time) string { return fmt.Sprintf("%.3f", d.Seconds()*1e3) }
	for _, a := range sel {
		base, err := st.Result(o.baselineSpec(a, o.Procs))
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", a.Name(), err)
		}
		for _, f := range o.faultScenarios() {
			spec := o.faultSpec(a, f)
			pt, err := st.Point(spec)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", a.Name(), faultLabel(f), err)
			}
			if pt.Livelocked {
				row := []string{a.PaperName(), faultLabel(f)}
				for len(row) < len(t.Columns) {
					row = append(row, "N/A")
				}
				t.Rows = append(t.Rows, row)
				continue
			}
			res, err := st.Result(spec)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", a.Name(), faultLabel(f), err)
			}
			dr := pt.Elapsed - base.Elapsed
			prop := "—"
			if f.DelayUs > 0 {
				prop = fmt.Sprintf("%.1f", 100*dr.Seconds()*1e6/f.DelayUs)
			}
			t.Rows = append(t.Rows, []string{
				a.PaperName(), faultLabel(f), secs(pt.Elapsed.Seconds()), f2(pt.Slowdown),
				ms(dr), prop,
				fmt.Sprintf("%d", res.Stats.Retransmits),
				fmt.Sprintf("%d", res.Stats.WireDrops),
				fmt.Sprintf("%d", res.Stats.DupsDiscarded),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("delay probe: a one-off %gms stall on one processor at half the baseline", faultDelayUs/1000),
		"makespan; prop% = Δr as a share of the injected stall (0 = absorbed by",
		"slack, 100 = fully propagated into the critical path)",
		"drop rows: each transmission lost independently with the given",
		"probability; the AM reliability protocol (go-back-free retransmission",
		"with cumulative acks) recovers every loss — retrans counts NIC",
		"re-injections, drops counts wire losses, dup-disc receiver discards",
		"the lossless reliable row isolates the protocol's overhead on a",
		"perfect wire (sequencing and ack traffic only)",
		"N/A: exceeded the livelock time limit")
	return t, nil
}

// Faults runs the fault-injection experiment standalone.
func Faults(o Options) (*Table, error) { return runPair(faultsPlan, faultsRender, o) }
