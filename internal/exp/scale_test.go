package exp

import (
	"strings"
	"testing"
)

// TestScaleQuick exercises the weak-scaling experiment end to end on
// its CI ladder (anchor, 1k, 10k): one row per kernel and rung, the
// first rung of each kernel anchoring the knob ordering and every
// later rung judged against it.
func TestScaleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 10k-processor simulations")
	}
	o := quickOpts()
	o.Apps = []string{"scale-pray"}
	tab, err := ScaleTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (1 kernel x 3 rungs)", len(tab.Rows))
	}
	verdictCol := len(tab.Columns) - 1
	orderCol := verdictCol - 1
	if got := tab.Rows[0][verdictCol]; got != "anchor" {
		t.Errorf("first rung verdict = %q, want anchor", got)
	}
	for i, row := range tab.Rows {
		order := row[orderCol]
		if strings.Count(order, ">") != 2 {
			t.Errorf("row %d order = %q, want a full o/g/L ranking", i, order)
		}
		if i > 0 {
			if v := row[verdictCol]; v != "holds" && v != "differs" {
				t.Errorf("row %d verdict = %q, want holds or differs", i, v)
			}
		}
	}
}

// TestScaleDeterminismAcrossJobs extends the byte-identity invariant
// to the scale table at its deepest CI rung: a 10k-processor
// continuation-runtime run must render identically on one worker and
// on eight — the engine-driven runtime leaves no room for host
// scheduling to leak into virtual time.
func TestScaleDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 10k-processor simulations twice")
	}
	o := quickOpts()
	o.Apps = []string{"scale-pray"}
	render := func(jobs int) string {
		o := o
		o.Jobs = jobs
		tab, err := ScaleTable(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return tab.Text()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("scale table differs between jobs=1 and jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", serial, parallel)
	}
}
