// Package exp is the reproduction harness: one experiment per table and
// figure of the paper's evaluation, each regenerating the corresponding
// rows or curve series on the simulated cluster.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/run"
)

// Options parameterizes a harness run.
type Options struct {
	// Procs is the cluster size for single-size experiments (default 32,
	// the paper's main configuration).
	Procs int
	// Scale is the application input scale (default 1/256 for sweeps;
	// slowdown is a ratio, so shape survives scaling — see DESIGN.md).
	Scale float64
	// Seed fixes all pseudo-randomness.
	Seed int64
	// Apps restricts application experiments to a subset (nil = all ten).
	Apps []string
	// Quick trims sweep points for smoke runs.
	Quick bool
	// Verify runs each application's self-check during baseline runs.
	Verify bool
	// Jobs bounds concurrent simulation runs (0 = GOMAXPROCS). Tables
	// are bit-identical at every job count; jobs only changes wall-clock
	// time.
	Jobs int
}

// Norm fills in defaults.
func (o Options) Norm() Options {
	if o.Procs == 0 {
		o.Procs = 32
	}
	if o.Scale == 0 {
		o.Scale = 1.0 / 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Experiment is one reproducible paper artifact, split into the two
// halves the run engine needs: a declarative Plan of every simulation
// the artifact requires, and a Render that builds the table from the
// completed run store. Declaring first lets cmd/repro merge the plans of
// many experiments and execute shared runs exactly once, on a parallel
// worker pool.
type Experiment struct {
	ID    string
	Title string
	// Plan declares the experiment's run matrix; nil when the experiment
	// needs no application runs (the calibration microbenchmarks).
	Plan func(Options) (*run.Plan, error)
	// Render builds the table from a store holding the plan's outcomes.
	Render func(Options, *run.Store) (*Table, error)
}

// Run plans, executes (on Options.Jobs workers), and renders the
// experiment in one call — the single-artifact convenience path.
func (e Experiment) Run(o Options) (*Table, error) {
	o = o.Norm()
	st := run.NewStore()
	if e.Plan != nil {
		p, err := e.Plan(o)
		if err != nil {
			return nil, err
		}
		if err := DefaultRunner(o, nil).RunInto(st, p); err != nil {
			return nil, err
		}
	}
	return e.Render(o, st)
}

// DefaultRunner builds the runner experiments execute on: the paper's
// baseline machine, Options.Jobs workers, optional progress callback.
// Names resolve through the paper suite first, then the weak-scaling
// kernels (ResolveApp).
func DefaultRunner(o Options, onProgress func(run.Progress)) *run.Runner {
	return &run.Runner{Jobs: o.Jobs, Params: baseParams(), Resolve: ResolveApp, OnProgress: onProgress}
}

// PlanFor merges the plans of several experiments so shared runs
// (Fig 5b and Table 5, Fig 6 and Table 6, every baseline) are declared
// once. Experiments with no simulation runs contribute nothing.
func PlanFor(ids []string, o Options) (*run.Plan, error) {
	o = o.Norm()
	merged := run.NewPlan()
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			return nil, err
		}
		if e.Plan == nil {
			continue
		}
		p, err := e.Plan(o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		merged.Merge(p)
	}
	return merged, nil
}

// Render builds one experiment's table from an already-executed store
// (which must hold at least that experiment's plan).
func Render(id string, o Options, st *run.Store) (*Table, error) {
	e, err := ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Render(o.Norm(), st)
}

// runPair is the plan-execute-render path behind the per-artifact
// convenience functions (Fig5b, Table5, …).
func runPair(plan func(Options) (*run.Plan, error), render func(Options, *run.Store) (*Table, error), o Options) (*Table, error) {
	return Experiment{Plan: plan, Render: render}.Run(o)
}

// noRuns adapts a calibration-only experiment to the Render signature.
func noRuns(f func(Options) (*Table, error)) func(Options, *run.Store) (*Table, error) {
	return func(o Options, _ *run.Store) (*Table, error) { return f(o) }
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Baseline LogGP parameters (NOW vs Paragon vs Meiko)", nil, noRuns(Table1)},
		{"fig3", "LogP signature: µs/message vs burst size", nil, noRuns(Fig3)},
		{"table2", "Calibration: desired vs observed o, g, L independence", nil, noRuns(Table2)},
		{"table3", "Applications, input sets, and 16/32-node base run times", table3Plan, table3Render},
		{"fig4", "Communication balance matrices", fig4Plan, fig4Render},
		{"table4", "Communication summary per application", table4Plan, table4Render},
		{"fig5a", "Sensitivity to overhead, 16 nodes (slowdown)", fig5aPlan, fig5aRender},
		{"fig5b", "Sensitivity to overhead, 32 nodes (slowdown)", fig5bPlan, fig5bRender},
		{"table5", "Measured vs predicted run times varying overhead", table5Plan, table5Render},
		{"fig6", "Sensitivity to gap (slowdown)", fig6Plan, fig6Render},
		{"table6", "Measured vs predicted run times varying gap", table6Plan, table6Render},
		{"fig7", "Sensitivity to latency (slowdown)", fig7Plan, fig7Render},
		{"fig8", "Sensitivity to bulk gap (slowdown vs bandwidth)", fig8Plan, fig8Render},
		{"ext-burst", "Extension: burstiness and the gap models", extBurstPlan, extBurstRender},
		{"ext-tradeoff", "Extension: processor vs network investment", extTradeoffPlan, extTradeoffRender},
		{"ext-phases", "Extension: Radix phase shares under overhead", extPhasesPlan, extPhasesRender},
		{"profile", "Stall attribution per application (LogGP accountant)", profilePlan, profileRender},
		{"faults", "Extension: fault injection — delay propagation and lossy-wire recovery", faultsPlan, faultsRender},
		{"collectives", "Extension: collective algorithm selection — LogGP crossovers and tuning", collectivesPlan, collectivesRender},
		{"scale", "Weak scaling on the resumable runtime (P to 1M)", scalePlan, scaleRender},
		{"tolerance", "Analytic sensitivity curves from one instrumented run", tolerancePlan, toleranceRender},
	}
}

// ByID locates an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}

// baseParams is the machine every experiment starts from.
func baseParams() logp.Params { return logp.NOW() }

// appConfig builds the application config for an options set.
func (o Options) appConfig(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  o.Scale,
		Params: baseParams(),
		Seed:   o.Seed,
		Verify: o.Verify,
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// secs renders virtual seconds with adaptive precision.
func secs(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}
