// Package exp is the reproduction harness: one experiment per table and
// figure of the paper's evaluation, each regenerating the corresponding
// rows or curve series on the simulated cluster.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/logp"
)

// Options parameterizes a harness run.
type Options struct {
	// Procs is the cluster size for single-size experiments (default 32,
	// the paper's main configuration).
	Procs int
	// Scale is the application input scale (default 1/256 for sweeps;
	// slowdown is a ratio, so shape survives scaling — see DESIGN.md).
	Scale float64
	// Seed fixes all pseudo-randomness.
	Seed int64
	// Apps restricts application experiments to a subset (nil = all ten).
	Apps []string
	// Quick trims sweep points for smoke runs.
	Quick bool
	// Verify runs each application's self-check during baseline runs.
	Verify bool
}

// Norm fills in defaults.
func (o Options) Norm() Options {
	if o.Procs == 0 {
		o.Procs = 32
	}
	if o.Scale == 0 {
		o.Scale = 1.0 / 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Baseline LogGP parameters (NOW vs Paragon vs Meiko)", Table1},
		{"fig3", "LogP signature: µs/message vs burst size", Fig3},
		{"table2", "Calibration: desired vs observed o, g, L independence", Table2},
		{"table3", "Applications, input sets, and 16/32-node base run times", Table3},
		{"fig4", "Communication balance matrices", Fig4},
		{"table4", "Communication summary per application", Table4},
		{"fig5a", "Sensitivity to overhead, 16 nodes (slowdown)", Fig5a},
		{"fig5b", "Sensitivity to overhead, 32 nodes (slowdown)", Fig5b},
		{"table5", "Measured vs predicted run times varying overhead", Table5},
		{"fig6", "Sensitivity to gap (slowdown)", Fig6},
		{"table6", "Measured vs predicted run times varying gap", Table6},
		{"fig7", "Sensitivity to latency (slowdown)", Fig7},
		{"fig8", "Sensitivity to bulk gap (slowdown vs bandwidth)", Fig8},
		{"ext-burst", "Extension: burstiness and the gap models", ExtBurst},
		{"ext-tradeoff", "Extension: processor vs network investment", ExtTradeoff},
		{"ext-phases", "Extension: Radix phase shares under overhead", ExtPhases},
	}
}

// ByID locates an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}

// baseParams is the machine every experiment starts from.
func baseParams() logp.Params { return logp.NOW() }

// appConfig builds the application config for an options set.
func (o Options) appConfig(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  o.Scale,
		Params: baseParams(),
		Seed:   o.Seed,
		Verify: o.Verify,
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// secs renders virtual seconds with adaptive precision.
func secs(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}
