package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/run"
)

// quickOpts keeps harness tests fast: few apps, tiny scale, trimmed sweeps.
func quickOpts() Options {
	return Options{
		Procs: 8,
		Scale: 1.0 / 2048,
		Seed:  1,
		Quick: true,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig3", "table2", "table3", "fig4", "table4",
		"fig5a", "fig5b", "table5", "fig6", "table6", "fig7", "fig8",
		"ext-burst", "ext-tradeoff", "ext-phases", "profile", "faults",
		"collectives", "scale", "tolerance"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, err := ByID("fig5b"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	if tab.Rows[0][1] != "2.9" {
		t.Errorf("NOW o = %s, want 2.9", tab.Rows[0][1])
	}
	if tab.Rows[1][1] != "1.8" {
		t.Errorf("Paragon o = %s, want 1.8", tab.Rows[1][1])
	}
}

func TestTable2Quick(t *testing.T) {
	tab, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 per varied parameter)", len(tab.Rows))
	}
	// The o=102.9 row: observed o must track desired, L must stay ≈5.
	for _, row := range tab.Rows {
		if row[0] == "o" && row[1] == "102.9" {
			if row[2] != "102.9" {
				t.Errorf("observed o = %s, want 102.9", row[2])
			}
			l, _ := strconv.ParseFloat(row[4], 64)
			if l < 4 || l > 6.5 {
				t.Errorf("L = %s under o sweep, want ≈5", row[4])
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	v1, _ := strconv.ParseFloat(first[1], 64)
	vN, _ := strconv.ParseFloat(last[1], 64)
	if v1 >= vN {
		t.Errorf("Δ=0 curve should rise from o_send (%.2f) toward g (%.2f)", v1, vN)
	}
}

func TestSmallSuiteExperiments(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "em3d-read", "nowsort"}
	for _, id := range []string{"table3", "table4", "fig4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := e.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		if !strings.Contains(tab.Text(), "Radix") {
			t.Errorf("%s: missing Radix row", id)
		}
	}
}

func TestOverheadSweepQuick(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "nowsort"}
	tab, err := Fig5b(o)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: Δo, Radix, NOW-sort. First row is Δo=0 → slowdown 1.00.
	if tab.Rows[0][1] != "1.00" {
		t.Errorf("baseline slowdown = %s, want 1.00", tab.Rows[0][1])
	}
	lastRadix, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][1], 64)
	lastSort, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][2], 64)
	if lastRadix < 3 {
		t.Errorf("Radix slowdown at Δo=100 = %.2f, want large", lastRadix)
	}
	if lastSort > lastRadix {
		t.Errorf("NOW-sort (%.2f) more o-sensitive than Radix (%.2f)", lastSort, lastRadix)
	}
}

func TestPredictedTableQuick(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"sample"}
	tab, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	// The overhead model should land within 2x of the measurement for the
	// frequently communicating Sample (the paper finds it accurate).
	last := tab.Rows[len(tab.Rows)-1]
	meas, _ := strconv.ParseFloat(last[1], 64)
	pred, _ := strconv.ParseFloat(last[2], 64)
	if meas <= 0 || pred <= 0 {
		t.Fatalf("bad row %v", last)
	}
	ratio := meas / pred
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("Sample measured/predicted = %.2f at Δo=100, want within 2x", ratio)
	}
}

// TestDeterminismAcrossJobs is the run engine's core invariant: each
// simulation is single-goroutine and deterministic, so an experiment
// table must be byte-identical at any worker count.
func TestDeterminismAcrossJobs(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "em3d-read", "nowsort"}
	render := func(jobs int) string {
		o := o
		o.Jobs = jobs
		tab, err := Fig5b(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return tab.Text()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("fig5b differs between jobs=1 and jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", serial, parallel)
	}
}

// TestProfileQuick exercises the stall-attribution experiment end to end
// on a small app subset: shares must be present, rows must carry the
// conservation-checked breakdown, and gap stall must show up under Δg
// for a bursty sender.
func TestProfileQuick(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "nowsort"}
	tab, err := ProfileTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 apps × 3 points)", len(tab.Rows))
	}
	// Column offsets: program, point, run(s), then the share columns in
	// prof display order (gap is the 4th share), then Δmeas, Δpred.
	gapCol := 3 + 3
	share := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, col, err)
		}
		return v
	}
	var radixBaseGap, radixDgGap float64
	for _, row := range tab.Rows {
		if row[0] == "Radix" && row[1] == "baseline" {
			radixBaseGap = share(row, gapCol)
		}
		if row[0] == "Radix" && strings.HasPrefix(row[1], "Δg") {
			radixDgGap = share(row, gapCol)
		}
	}
	if radixDgGap <= radixBaseGap {
		t.Errorf("radix gap share did not grow under Δg: %.1f%% -> %.1f%%", radixBaseGap, radixDgGap)
	}
	// NOW-sort is disk-paced: its sleep share must dominate at baseline.
	for _, row := range tab.Rows {
		if row[0] == "NOW-sort" && row[1] == "baseline" {
			if slp := share(row, 3+9); slp < 20 {
				t.Errorf("NOW-sort sleep share = %.1f%%, want disk-dominated", slp)
			}
		}
	}
}

// TestProfileDeterminismAcrossJobs extends the byte-identity invariant to
// the profile table: stall attribution is part of each run's result, so
// it too must not depend on the worker count.
func TestProfileDeterminismAcrossJobs(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "em3d-read", "nowsort"}
	render := func(jobs int) string {
		o := o
		o.Jobs = jobs
		tab, err := ProfileTable(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return tab.Text()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("profile differs between jobs=1 and jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", serial, parallel)
	}
}

// TestFaultsQuick exercises the fault-injection experiment end to end on
// a small app subset: the delay probe must report a propagation share,
// the lossless reliable row must stay near slowdown 1 with zero
// retransmissions, and lossy rows must both drop and retransmit.
func TestFaultsQuick(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "nowsort"}
	tab, err := Faults(o)
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps × (1 delay + 3 quick drop rates).
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	const (
		colSlow    = 3
		colProp    = 5
		colRetrans = 6
		colDrops   = 7
	)
	var totalDrops int64
	for _, row := range tab.Rows {
		switch {
		case strings.HasPrefix(row[1], "delay"):
			prop, err := strconv.ParseFloat(row[colProp], 64)
			if err != nil {
				t.Fatalf("delay row %v: prop%% not numeric: %v", row, err)
			}
			if prop < 0 {
				t.Errorf("%s: negative propagation %.1f%%", row[0], prop)
			}
			if row[colRetrans] != "0" || row[colDrops] != "0" {
				t.Errorf("delay row %v retransmitted or dropped", row)
			}
		case row[1] == "reliable, lossless":
			if row[colRetrans] != "0" || row[colDrops] != "0" {
				t.Errorf("lossless reliable row %v retransmitted or dropped", row)
			}
			slow, _ := strconv.ParseFloat(row[colSlow], 64)
			if slow < 0.99 || slow > 1.2 {
				t.Errorf("%s: lossless reliable slowdown = %.2f, want ≈1", row[0], slow)
			}
		default: // lossy rows
			drops, _ := strconv.ParseInt(row[colDrops], 10, 64)
			retrans, _ := strconv.ParseInt(row[colRetrans], 10, 64)
			totalDrops += drops
			// Every loss must eventually be repaired by a retransmission
			// (acks ride a lossless control channel, so none is spurious).
			if retrans < drops {
				t.Errorf("lossy row %v: retrans %d < drops %d", row, retrans, drops)
			}
			slow, _ := strconv.ParseFloat(row[colSlow], 64)
			if slow < 1.0 {
				t.Errorf("lossy row %v: slowdown %.2f < 1", row, slow)
			}
		}
	}
	// Small inputs can dodge the low rates, but across both apps and all
	// rates the wire must have lost something.
	if totalDrops == 0 {
		t.Error("no lossy row dropped anything; injector not wired?")
	}
}

// TestFaultsDeterminismAcrossJobs extends the byte-identity invariant to
// the faults table: fault draws come from each run's own seeded stream,
// so the table must not depend on the worker count.
func TestFaultsDeterminismAcrossJobs(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "em3d-read", "nowsort"}
	render := func(jobs int) string {
		o := o
		o.Jobs = jobs
		tab, err := Faults(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return tab.Text()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("faults differs between jobs=1 and jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", serial, parallel)
	}
}

// TestMergedPlanSharesRuns checks the cross-experiment reuse the old
// global caches provided: one merged plan for Fig5b + Table5 executes
// the overhead sweep once and renders both tables from the same store.
func TestMergedPlanSharesRuns(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "nowsort"}
	ids := []string{"fig5b", "table5"}
	plan, err := PlanFor(ids, o)
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps × (1 baseline + 3 quick points); table5 adds nothing new.
	if plan.Size() != 8 {
		t.Errorf("merged plan size = %d, want 8", plan.Size())
	}
	if plan.Adds() <= plan.Size() {
		t.Errorf("Adds() = %d, want > Size() (table5 duplicates fig5b)", plan.Adds())
	}
	st := run.NewStore()
	if err := DefaultRunner(o, nil).RunInto(st, plan); err != nil {
		t.Fatal(err)
	}
	executed, _ := st.Stats()
	if executed != plan.Size() {
		t.Errorf("executed %d runs, want %d", executed, plan.Size())
	}
	for _, id := range ids {
		tab, err := Render(id, o, st)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
	}
	// Rendering again from the store must not need new runs.
	if _, err := Render("fig5b", o, st); err != nil {
		t.Fatal(err)
	}
	if executedAfter, _ := st.Stats(); executedAfter != executed {
		t.Errorf("re-render executed runs: %d -> %d", executed, executedAfter)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2,3"}},
		Notes:   []string{"n"},
	}
	txt := tab.Text()
	if !strings.Contains(txt, "== x: t ==") || !strings.Contains(txt, "note: n") {
		t.Errorf("Text() = %q", txt)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"2,3"`) {
		t.Errorf("CSV() should quote commas: %q", csv)
	}
}

func TestExtBurstQuick(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix", "nowsort"}
	tab, err := ExtBurst(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Radix must look bursty; NOW-sort (disk-paced) must not.
	radixBurst := strings.TrimSuffix(tab.Rows[0][2], "%")
	sortBurst := strings.TrimSuffix(tab.Rows[1][2], "%")
	rb, _ := strconv.ParseFloat(radixBurst, 64)
	sb, _ := strconv.ParseFloat(sortBurst, 64)
	if rb < 50 {
		t.Errorf("radix burst fraction = %v%%, want high", rb)
	}
	if sb >= rb {
		t.Errorf("nowsort burstier (%v%%) than radix (%v%%)", sb, rb)
	}
}

func TestExtTradeoffQuick(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"em3d-write", "nowsort"}
	tab, err := ExtTradeoff(o)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string][]string{}
	for _, row := range tab.Rows {
		byApp[row[0]] = row
	}
	if byApp["EM3D(write)"][4] != "network" {
		t.Errorf("EM3D(write) winner = %s, want network", byApp["EM3D(write)"][4])
	}
	if byApp["NOW-sort"][4] != "CPU" {
		t.Errorf("NOW-sort winner = %s, want CPU (disk/compute bound)", byApp["NOW-sort"][4])
	}
}

func TestExtPhasesQuick(t *testing.T) {
	o := quickOpts()
	tab, err := ExtPhases(o)
	if err != nil {
		t.Fatal(err)
	}
	// Histogram share must grow with overhead at fixed P.
	share := func(row []string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		return v
	}
	// Rows come in (procs, dO) blocks of 3: find P=16 dO=0 and dO=100.
	var base16, high16 float64
	for _, row := range tab.Rows {
		if row[1] == "16" && row[0] == "0.0" {
			base16 = share(row)
		}
		if row[1] == "16" && row[0] == "100.0" {
			high16 = share(row)
		}
	}
	if high16 <= base16 {
		t.Errorf("histogram share did not grow with overhead: %v%% -> %v%%", base16, high16)
	}
}

// TestCollectivesTunerMatchesMeasured is the crossover study's
// acceptance check: at every quick-mode (primitive, machine, P) point
// the LogGP tuner's pick must be the measured winner. A failure here
// means a cost model drifted from the engine's actual schedule.
func TestCollectivesTunerMatchesMeasured(t *testing.T) {
	cross, err := quickOpts().Norm().collCrossovers()
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string][2]int{}
	for _, c := range cross {
		key := c.Primitive + "/" + c.Machine + "/" + strconv.Itoa(c.Procs)
		g := groups[key]
		if c.Best {
			g[0]++
		}
		if c.Pick {
			g[1]++
		}
		groups[key] = g
		if c.Best != c.Pick {
			t.Errorf("%s/%s P=%d %s: best=%v pick=%v (measured %v, model %v)",
				c.Primitive, c.Machine, c.Procs, c.Alg, c.Best, c.Pick, c.Measured, c.Model)
		}
	}
	if len(groups) == 0 {
		t.Fatal("no crossover groups")
	}
	for key, g := range groups {
		if g[0] != 1 || g[1] != 1 {
			t.Errorf("%s: %d best and %d pick rows, want exactly 1 of each", key, g[0], g[1])
		}
	}
}

// TestCollectivesQuick sanity-checks the rendered table: both sections
// present, tuned rows annotated with the resolved selection.
func TestCollectivesQuick(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix"}
	tab, err := Collectives(o)
	if err != nil {
		t.Fatal(err)
	}
	var micro, app, tuned int
	for _, row := range tab.Rows {
		switch row[0] {
		case "micro":
			micro++
		case "app":
			app++
			if row[4] == "tuned" && !strings.Contains(row[7], "bar=") {
				t.Errorf("tuned row lacks resolved selection: %v", row)
			}
		}
		if row[4] == "tuned" {
			tuned++
		}
	}
	// 3 primitives × 3 quick machines × 2 sizes × 3 algorithms.
	if micro != 54 {
		t.Errorf("micro rows = %d, want 54", micro)
	}
	// 1 app × 3 knobs × 3 quick points × {default, tuned}.
	if app != 18 || tuned != 9 {
		t.Errorf("app rows = %d (tuned %d), want 18 (9)", app, tuned)
	}
}

// TestCollectivesDeterminismAcrossJobs extends the byte-identity
// invariant to the collectives table: per-point tuner resolution
// happens inside each run's own world construction, so the table must
// not depend on the worker count.
func TestCollectivesDeterminismAcrossJobs(t *testing.T) {
	o := quickOpts()
	o.Apps = []string{"radix"}
	render := func(jobs int) string {
		o := o
		o.Jobs = jobs
		tab, err := Collectives(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return tab.Text()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("collectives differs between jobs=1 and jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", serial, parallel)
	}
}
