package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/prof"
	"repro/internal/run"
	"repro/internal/sim"
)

// The profile experiment dissects where each application's time goes: it
// runs every app with the stall-attribution profiler attached — at
// baseline and with the paper's two first-class knobs turned (Δo and Δg,
// both +25 µs, the middle of the sweep ranges) — and reports the
// per-category share of total processor-time. The shares give a direct,
// measured decomposition behind the §4.1 analytic models: added overhead
// should surface in the o-send/o-recv accounts (the 2mΔo term), added gap
// in the gap account (the mΔg term).

// profileDeltaUs is the knob setting profiled runs use (µs added).
const profileDeltaUs = 25.0

// profilePoints are the machine settings the experiment profiles.
var profilePoints = []struct {
	label string
	knob  core.Knob
	value float64
}{
	{"baseline", core.KnobNone, 0},
	{"Δo=+25µs", core.KnobO, profileDeltaUs},
	{"Δg=+25µs", core.KnobG, profileDeltaUs},
}

// profileSpec is the canonical profiled run for one design point.
func (o Options) profileSpec(a apps.App, knob core.Knob, value float64) run.Spec {
	var s run.Spec
	if knob == core.KnobNone {
		s = o.baselineSpec(a, o.Procs)
	} else {
		s = o.sweepSpec(a, o.Procs, knob, value)
	}
	s.Profile = true
	return s
}

// profilePlan declares the profiled run matrix: every selected app at the
// three design points (baselines are auto-declared by AddSweep and carry
// the Profile flag).
func profilePlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		for _, pt := range profilePoints {
			if pt.knob == core.KnobNone {
				continue
			}
			p.AddSweep(o.profileSpec(a, pt.knob, pt.value), o.Verify)
		}
	}
	return p, nil
}

// profileShareColumns maps the breakdown categories to short column
// headers, in prof display order.
var profileShareColumns = []string{
	"cmp%", "osnd%", "orcv%", "gap%", "win%", "lat%", "blk%", "bar%", "lck%", "slp%",
}

// profileRender builds the breakdown table and cross-checks the measured
// stall growth against the §4.1 predictions.
func profileRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "profile",
		Title: fmt.Sprintf("Stall attribution per application (%d nodes)", o.Procs),
	}
	t.Columns = append([]string{"program", "point", "run(s)"}, profileShareColumns...)
	t.Columns = append(t.Columns, "Δmeas(s)", "Δpred(s)")
	delta := sim.FromMicros(profileDeltaUs)
	for _, a := range sel {
		base, err := st.Result(o.profileSpec(a, core.KnobNone, 0))
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", a.Name(), err)
		}
		if base.Profile == nil {
			return nil, fmt.Errorf("%s baseline ran without a profiler attached", a.Name())
		}
		m, _ := base.Stats.MaxPerProc()
		for _, pt := range profilePoints {
			spec := o.profileSpec(a, pt.knob, pt.value)
			point, err := st.Point(spec)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", a.Name(), pt.label, err)
			}
			if point.Livelocked {
				row := []string{a.PaperName(), pt.label}
				for len(row) < len(t.Columns) {
					row = append(row, "N/A")
				}
				t.Rows = append(t.Rows, row)
				continue
			}
			res, err := st.Result(spec)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", a.Name(), pt.label, err)
			}
			p := res.Profile
			if p == nil {
				return nil, fmt.Errorf("%s %s ran without a profiler attached", a.Name(), pt.label)
			}
			if err := p.CheckConservation(); err != nil {
				return nil, fmt.Errorf("%s %s: %w", a.Name(), pt.label, err)
			}
			row := []string{a.PaperName(), pt.label, secs(res.Elapsed.Seconds())}
			// Paper categories only: profiled runs here are fault-free, so
			// the fault-injection accounts are structurally zero and the
			// table layout predates them.
			for _, c := range prof.PaperCategories() {
				row = append(row, fmt.Sprintf("%.1f", 100*p.Share(c)))
			}
			switch pt.knob {
			case core.KnobNone:
				row = append(row, "—", "—")
			case core.KnobO:
				pred := model.Overhead(base.Elapsed, m, delta) - base.Elapsed
				row = append(row, secs((res.Elapsed - base.Elapsed).Seconds()), secs(pred.Seconds()))
			case core.KnobG:
				pred := model.GapBurst(base.Elapsed, m, delta) - base.Elapsed
				row = append(row, secs((res.Elapsed - base.Elapsed).Seconds()), secs(pred.Seconds()))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"share columns: compute, o-send, o-recv, gap stall, window stall, latency",
		"wait, bulk bandwidth, barrier wait, lock wait, disk/sleep — percent of",
		fmt.Sprintf("total processor-time (%d procs × makespan); rows sum to 100 by the", o.Procs),
		"profiler's conservation invariant (checked during rendering)",
		"Δpred: §4.1 models — r0+2mΔo for overhead, r0+mΔg for gap (m = max",
		"messages on any processor at baseline); Δmeas: measured run-time growth",
		"N/A: exceeded the livelock time limit (the paper's Barnes behavior)")
	return t, nil
}

// ProfileTable runs the stall-attribution experiment standalone.
func ProfileTable(o Options) (*Table, error) { return runPair(profilePlan, profileRender, o) }
