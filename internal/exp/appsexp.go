package exp

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/run"
)

// selectedApps resolves the options' application subset.
func selectedApps(o Options) ([]apps.App, error) {
	if len(o.Apps) == 0 {
		return suite.All(), nil
	}
	var out []apps.App
	for _, name := range o.Apps {
		a, err := suite.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// table3Plan declares each application's baseline on 16 and 32 nodes.
func table3Plan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		p.AddBaseline(a.Name(), 16, o.Scale, o.Seed, o.Verify)
		p.AddBaseline(a.Name(), 32, o.Scale, o.Seed, o.Verify)
	}
	return p, nil
}

// table3Render reports each application's input set and base run time on
// 16 and 32 nodes.
func table3Render(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table3",
		Title:   "Applications and data sets",
		Columns: []string{"Program", "Description", "Input Set", "16-node (s)", "32-node (s)"},
		Notes: []string{
			fmt.Sprintf("inputs at scale %.4g of the paper's; absolute seconds are not comparable, scaling behavior is", o.Scale),
		},
	}
	for _, a := range sel {
		r16, err := st.Result(o.baselineSpec(a, 16))
		if err != nil {
			return nil, fmt.Errorf("%s on 16 nodes: %w", a.Name(), err)
		}
		r32, err := st.Result(o.baselineSpec(a, 32))
		if err != nil {
			return nil, fmt.Errorf("%s on 32 nodes: %w", a.Name(), err)
		}
		t.Rows = append(t.Rows, []string{
			a.PaperName(),
			a.Description(),
			a.InputDesc(o.appConfig(32)),
			secs(r16.Elapsed.Seconds()),
			secs(r32.Elapsed.Seconds()),
		})
	}
	return t, nil
}

// suiteBaselinePlan declares one baseline per selected app at the
// options' cluster size (Table 4 and Figure 4 share it).
func suiteBaselinePlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		p.AddBaseline(a.Name(), o.Procs, o.Scale, o.Seed, o.Verify)
	}
	return p, nil
}

func table4Plan(o Options) (*run.Plan, error) { return suiteBaselinePlan(o) }

// table4Render reports the per-application communication summary.
func table4Render(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table4",
		Title: "Communication summary (32 nodes)",
		Columns: []string{
			"Program", "Avg Msg/Proc", "Max Msg/Proc", "Msg/Proc/ms",
			"Msg Interval(µs)", "Barrier Int.(ms)", "%Bulk", "%Reads",
			"Bulk KB/s", "Small KB/s",
		},
	}
	for _, a := range sel {
		res, err := st.Result(o.baselineSpec(a, o.Procs))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name(), err)
		}
		s := res.Summary
		t.Rows = append(t.Rows, []string{
			a.PaperName(),
			fmt.Sprintf("%.0f", s.AvgMsgsPerProc),
			fmt.Sprintf("%d", s.MaxMsgsPerProc),
			f2(s.MsgsPerProcPerMs),
			f1(s.MsgIntervalUs),
			f2(s.BarrierIntervalMs),
			f2(s.PercentBulk) + "%",
			f2(s.PercentReads) + "%",
			f1(s.BulkKBsPerProc),
			f1(s.SmallKBsPerProc),
		})
	}
	return t, nil
}

func fig4Plan(o Options) (*run.Plan, error) { return suiteBaselinePlan(o) }

// fig4Render renders each application's communication-balance matrix:
// the fraction of messages from processor i to processor j as a
// grey-scale glyph (' ' for none through '█' for the per-app maximum),
// plus the raw counts in CSV-friendly rows.
func fig4Render(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	shades := []rune(" .:-=+*#%@█")
	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("Communication balance (%d nodes, row=sender)", o.Procs),
		Columns: []string{"Program", "Matrix (one row per sender)"},
		Notes: []string{
			"each glyph scales a sender→receiver message count against the app's max cell",
		},
	}
	for _, a := range sel {
		res, err := st.Result(o.baselineSpec(a, o.Procs))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name(), err)
		}
		var mx int64
		for _, row := range res.Stats.Matrix {
			for _, v := range row {
				if v > mx {
					mx = v
				}
			}
		}
		for i, row := range res.Stats.Matrix {
			var b strings.Builder
			for _, v := range row {
				idx := 0
				if mx > 0 && v > 0 {
					idx = 1 + int(int64(len(shades)-2)*v/mx)
					if idx >= len(shades) {
						idx = len(shades) - 1
					}
				}
				b.WriteRune(shades[idx])
			}
			label := ""
			if i == 0 {
				label = a.PaperName()
			}
			t.Rows = append(t.Rows, []string{label, b.String()})
		}
		t.Rows = append(t.Rows, []string{"", ""})
	}
	return t, nil
}

// Table3 reports each application's input set and base run times.
func Table3(o Options) (*Table, error) { return runPair(table3Plan, table3Render, o) }

// Table4 reports the per-application communication summary on 32 nodes.
func Table4(o Options) (*Table, error) { return runPair(table4Plan, table4Render, o) }

// Fig4 renders the communication-balance matrices.
func Fig4(o Options) (*Table, error) { return runPair(fig4Plan, fig4Render, o) }
