package exp

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/logp"
	"repro/internal/sim"
)

// Table1 calibrates the three Table 1 machines and reports their LogGP
// characteristics as measured by the microbenchmarks.
func Table1(o Options) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Baseline LogGP parameters",
		Columns: []string{"Platform", "o(µs)", "g(µs)", "L(µs)", "MB/s(1/G)"},
		Notes: []string{
			"paper: NOW 2.9/5.8/5.0/38, Paragon 1.8/7.6/6.5/141, Meiko 1.7/13.6/7.5/47",
		},
	}
	for _, plat := range []struct {
		name   string
		params logp.Params
	}{
		{"Berkeley NOW", logp.NOW()},
		{"Intel Paragon", logp.Paragon()},
		{"Meiko CS-2", logp.Meiko()},
	} {
		m, err := calib.Calibrate(plat.params)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			plat.name,
			f1(m.O.Micros()),
			f1(m.G.Micros()),
			f1(m.L.Micros()),
			fmt.Sprintf("%.0f", m.BulkMBs),
		})
	}
	return t, nil
}

// Fig3 produces the LogP signature series: average µs/message as a
// function of burst size for Δ=0 and Δ=10 µs, on a machine with the gap
// raised to ≈12.8 µs as in the paper's example figure.
func Fig3(o Options) (*Table, error) {
	params := logp.NOW()
	params.DeltaG = sim.FromMicros(7.0) // desired g ≈ 12.8 µs, as in Figure 3
	bursts := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}
	deltas := []sim.Time{0, sim.FromMicros(10)}
	pts, err := calib.Signature(params, bursts, deltas)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "LogP signature (g set to 12.8µs)",
		Columns: []string{"BurstSize", "µs/msg Δ=0", "µs/msg Δ=10"},
		Notes: []string{
			"paper reads: Osend=1.8 at burst 1; steady state g=12.8 for Δ=0;",
			"steady state Osend+Orecv+Δ for large Δ; RTT 21µs",
		},
	}
	perDelta := map[sim.Time]map[int]sim.Time{}
	for _, p := range pts {
		if perDelta[p.Delta] == nil {
			perDelta[p.Delta] = map[int]sim.Time{}
		}
		perDelta[p.Delta][p.Burst] = p.PerMsg
	}
	for _, m := range bursts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			f2(perDelta[0][m].Micros()),
			f2(perDelta[sim.FromMicros(10)][m].Micros()),
		})
	}
	rtt, err := calib.RoundTrip(params)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured round trip: %.1f µs", rtt.Micros()))
	return t, nil
}

// Table2 reproduces the calibration summary: set each parameter to a
// sequence of desired values and read back the observed o, g, and L,
// demonstrating that the knobs act independently.
func Table2(o Options) (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "Calibration summary (desired vs observed)",
		Columns: []string{
			"Varied", "Desired(µs)", "o(µs)", "g(µs)", "L(µs)",
		},
		Notes: []string{
			"paper: o and L independent; g tracks o when the processor bottlenecks;",
			"large L raises effective g to RTT/window (fixed capacity)",
		},
	}
	desiredO := []float64{2.9, 4.9, 7.9, 12.9, 22.9, 52.9, 102.9}
	desiredG := []float64{5.8, 10, 15, 30, 55, 105}
	desiredL := []float64{5, 10, 15, 30, 55, 105}
	if o.Quick {
		desiredO = []float64{2.9, 12.9, 102.9}
		desiredG = []float64{5.8, 30, 105}
		desiredL = []float64{5, 30, 105}
	}
	addRow := func(varied string, desired float64, params logp.Params) error {
		m, err := calib.Calibrate(params)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			varied, f1(desired), f1(m.O.Micros()), f1(m.G.Micros()), f1(m.L.Micros()),
		})
		return nil
	}
	for _, d := range desiredO {
		params := logp.NOW()
		params.DeltaO = sim.FromMicros(d - 2.9)
		if err := addRow("o", d, params); err != nil {
			return nil, err
		}
	}
	for _, d := range desiredG {
		params := logp.NOW()
		params.DeltaG = sim.FromMicros(d - 5.8)
		if err := addRow("g", d, params); err != nil {
			return nil, err
		}
	}
	for _, d := range desiredL {
		params := logp.NOW()
		params.DeltaL = sim.FromMicros(d - 5.0)
		if err := addRow("L", d, params); err != nil {
			return nil, err
		}
	}
	return t, nil
}
