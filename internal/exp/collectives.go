package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/core"
	"repro/internal/logp"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/splitc"
	"repro/internal/splitc/tune"
)

// The collectives experiment validates the pluggable collective engine
// and its LogGP auto-tuner, two ways. Part one is a crossover study run
// inline (no application runs): every registered algorithm for each
// primitive is timed on a set of machines and cluster sizes with a
// per-episode microbenchmark, next to the closed-form LogGP model cost
// the tuner minimizes. The interesting question is whether the model's
// argmin — the tuner's pick — lands on the measured winner at each
// point. Part two turns the tuner loose on real applications: the
// barrier-heavy subset of the suite is swept over o, g, and L twice,
// once with the default selection and once with Collectives "auto", and
// the table reports the makespan the tuned selection buys (or costs) at
// each machine point.

// collEpisodes is the number of collective episodes each microbenchmark
// averages over (the same count the cross-runtime equivalence tests
// use, so the back-to-back tag-reuse discipline is already proven).
const collEpisodes = 4

// collPayloadBytes is the payload the tuner models: every splitc
// collective moves one 8-byte word.
const collPayloadBytes = 8

// autoColl is the all-auto selection Part two sweeps under.
func autoColl() splitc.Collectives {
	return splitc.Collectives{
		Barrier:   splitc.CollAuto,
		Broadcast: splitc.CollAuto,
		AllReduce: splitc.CollAuto,
	}
}

// A collMachine is one LogGP parameter point of the crossover study.
type collMachine struct {
	name   string
	params logp.Params
}

// collMachines is the machine list of the crossover study: the baseline
// NOW plus one high-overhead and one high-latency variant (the two
// knobs that move collective crossovers in opposite directions); full
// mode adds a high-gap point.
func (o Options) collMachines() []collMachine {
	hiO, hiL, hiG := baseParams(), baseParams(), baseParams()
	hiO.DeltaO = 50 * sim.Microsecond
	hiL.DeltaL = 100 * sim.Microsecond
	hiG.DeltaG = 20 * sim.Microsecond
	ms := []collMachine{
		{"NOW", baseParams()},
		{"NOW+o50", hiO},
		{"NOW+L100", hiL},
	}
	if !o.Quick {
		ms = append(ms, collMachine{"NOW+g20", hiG})
	}
	return ms
}

// collProcs is the cluster-size axis of the crossover study.
func (o Options) collProcs() []int {
	if o.Quick {
		return []int{8, 32}
	}
	return []int{2, 4, 8, 13, 32, 64}
}

// A collCross is one (primitive, machine, size, algorithm) point of the
// crossover study: the measured per-episode cost, the model cost, and
// whether this algorithm is the measured winner and/or the tuner's
// pick for the group.
type collCross struct {
	Primitive string
	Machine   string
	Procs     int
	Alg       string
	Measured  sim.Time
	Model     sim.Time
	Best      bool
	Pick      bool
}

// collElapsed runs body on a fresh world with the given selection and
// returns the virtual makespan.
func collElapsed(pm logp.Params, procs int, sel splitc.Collectives, body func(p *splitc.Proc)) (sim.Time, error) {
	w, err := splitc.NewWorldCfg(splitc.Config{Procs: procs, Params: pm, Seed: 1, Collectives: sel})
	if err != nil {
		return 0, err
	}
	if err := w.Run(body); err != nil {
		return 0, err
	}
	return w.Elapsed(), nil
}

// collMeasure times one primitive under one algorithm: the makespan of
// collEpisodes episodes minus the makespan of the empty program on the
// same world, divided by the episode count. The subtraction removes the
// constant startup and teardown cost; the average reports the
// steady-state per-episode cost an application sees, pipelining
// between adjacent episodes included.
func collMeasure(pm logp.Params, procs int, sel splitc.Collectives, episode func(p *splitc.Proc, i int)) (sim.Time, error) {
	loop := func(n int) func(p *splitc.Proc) {
		return func(p *splitc.Proc) {
			for i := 0; i < n; i++ {
				episode(p, i)
			}
		}
	}
	full, err := collElapsed(pm, procs, sel, loop(collEpisodes))
	if err != nil {
		return 0, err
	}
	empty, err := collElapsed(pm, procs, sel, loop(0))
	if err != nil {
		return 0, err
	}
	return (full - empty) / collEpisodes, nil
}

// collPrimitives describes the three primitives of the crossover study:
// the registered algorithm list, the model cost, and the measurement
// episode under a given selection.
type collPrimitive struct {
	name string
	algs []string
	sel  func(alg string) splitc.Collectives
	cost func(alg string, p int, m tune.Model) (sim.Time, error)
	pick func(s tune.Selection) string
	ep   func(p *splitc.Proc, i int)
}

func collPrimitives() []collPrimitive {
	return []collPrimitive{
		{
			name: "barrier",
			algs: tune.Barriers(),
			sel:  func(alg string) splitc.Collectives { return splitc.Collectives{Barrier: alg} },
			cost: func(alg string, p int, m tune.Model) (sim.Time, error) { return tune.BarrierCost(alg, p, m) },
			pick: func(s tune.Selection) string { return s.Barrier },
			ep:   func(p *splitc.Proc, i int) { p.Barrier() },
		},
		{
			name: "broadcast",
			algs: tune.Broadcasts(),
			sel:  func(alg string) splitc.Collectives { return splitc.Collectives{Broadcast: alg} },
			cost: func(alg string, p int, m tune.Model) (sim.Time, error) {
				return tune.BroadcastCost(alg, p, collPayloadBytes, m)
			},
			pick: func(s tune.Selection) string { return s.Broadcast },
			// Barrier-separated episodes, with the barrier cost subtracted
			// back out by the paired barrier-only measurement below.
			ep: func(p *splitc.Proc, i int) { p.Broadcast(0, uint64(i+1)); p.Barrier() },
		},
		{
			name: "all-reduce",
			algs: tune.AllReduces(),
			sel:  func(alg string) splitc.Collectives { return splitc.Collectives{AllReduce: alg} },
			cost: func(alg string, p int, m tune.Model) (sim.Time, error) {
				return tune.AllReduceCost(alg, p, collPayloadBytes, m)
			},
			pick: func(s tune.Selection) string { return s.AllReduce },
			ep:   func(p *splitc.Proc, i int) { p.AllReduceOp(uint64(p.ID()+1)*uint64(i+1), splitc.OpSum) },
		},
	}
}

// collCrossovers runs the full crossover study: per (primitive,
// machine, size) group, measure every registered algorithm, mark the
// measured winner, and mark the tuner's pick.
func (o Options) collCrossovers() ([]collCross, error) {
	var out []collCross
	for _, prim := range collPrimitives() {
		for _, mc := range o.collMachines() {
			model := tune.ModelOf(mc.params)
			for _, procs := range o.collProcs() {
				picked := prim.pick(tune.Select(procs, collPayloadBytes, mc.params))
				group := make([]collCross, 0, len(prim.algs))
				best := 0
				for _, alg := range prim.algs {
					meas, err := collMeasure(mc.params, procs, prim.sel(alg), prim.ep)
					if err != nil {
						return nil, fmt.Errorf("%s/%s P=%d %s: %w", prim.name, mc.name, procs, alg, err)
					}
					if prim.name == "broadcast" {
						// Subtract the separating barrier (same world shape,
						// default barrier selection in both runs).
						bar, err := collMeasure(mc.params, procs, prim.sel(alg),
							func(p *splitc.Proc, i int) { p.Barrier() })
						if err != nil {
							return nil, err
						}
						meas -= bar
					}
					cost, err := prim.cost(alg, procs, model)
					if err != nil {
						return nil, err
					}
					group = append(group, collCross{
						Primitive: prim.name, Machine: mc.name, Procs: procs,
						Alg: alg, Measured: meas, Model: cost, Pick: alg == picked,
					})
					if meas < group[best].Measured {
						best = len(group) - 1
					}
				}
				group[best].Best = true
				out = append(out, group...)
			}
		}
	}
	return out, nil
}

// collKnobs is Part two's sweep axis set: the three fixed-size LogGP
// knobs, each over a short point list (the full figure-5–7 grids would
// triple the run count without moving the tuner's decision points).
type collKnob struct {
	k      core.Knob
	points []float64
}

func collKnobs() []collKnob {
	return []collKnob{
		{core.KnobO, []float64{0, 5, 20, 100}},
		{core.KnobG, []float64{0, 10, 50}},
		{core.KnobL, []float64{0, 25, 100}},
	}
}

// collApps resolves Part two's application subset: the explicit -apps
// selection, or the barrier-heavy default trio.
func collApps(o Options) ([]apps.App, error) {
	if len(o.Apps) > 0 {
		return selectedApps(o)
	}
	var out []apps.App
	for _, name := range []string{"radix", "sample", "em3d-write"} {
		a, err := suite.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// collectivesPlan declares Part two's run matrix: each app at each knob
// point, under the default selection and under "auto" (baselines for
// both selections are auto-declared by AddSweep).
func collectivesPlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := collApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		for _, ck := range collKnobs() {
			for _, v := range o.sweepPoints(ck.points) {
				s := o.sweepSpec(a, o.Procs, ck.k, v)
				p.AddSweep(s, o.Verify)
				s.Coll = autoColl()
				p.AddSweep(s, o.Verify)
			}
		}
	}
	return p, nil
}

// us renders a sim.Time in microseconds.
func us(d sim.Time) string { return fmt.Sprintf("%.2f", d.Seconds()*1e6) }

// collectivesRender builds the combined table: the crossover rows
// (micro section) followed by the tuned-vs-default sweep rows (app
// section).
func collectivesRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	t := &Table{
		ID:    "collectives",
		Title: "Collective algorithm selection: LogGP crossovers and tuned applications",
	}
	t.Columns = []string{"section", "subject", "machine", "P", "algorithm", "measured", "model", "marks"}

	cross, err := o.collCrossovers()
	if err != nil {
		return nil, err
	}
	for _, c := range cross {
		marks := ""
		switch {
		case c.Best && c.Pick:
			marks = "best+pick"
		case c.Best:
			marks = "best"
		case c.Pick:
			marks = "pick"
		}
		t.Rows = append(t.Rows, []string{
			"micro", c.Primitive, c.Machine, fmt.Sprintf("%d", c.Procs),
			c.Alg, us(c.Measured), us(c.Model), marks,
		})
	}

	sel, err := collApps(o)
	if err != nil {
		return nil, err
	}
	for _, a := range sel {
		for _, ck := range collKnobs() {
			for _, v := range o.sweepPoints(ck.points) {
				ds := o.sweepSpec(a, o.Procs, ck.k, v)
				ts := ds
				ts.Coll = autoColl()
				dpt, err := st.Point(ds)
				if err != nil {
					return nil, fmt.Errorf("%s %s=%g default: %w", a.Name(), ck.k, v, err)
				}
				tpt, err := st.Point(ts)
				if err != nil {
					return nil, fmt.Errorf("%s %s=%g tuned: %w", a.Name(), ck.k, v, err)
				}
				machine := fmt.Sprintf("%s=%g", ck.k, v)
				if dpt.Livelocked || tpt.Livelocked {
					t.Rows = append(t.Rows,
						[]string{"app", a.PaperName(), machine, fmt.Sprintf("%d", o.Procs), "default", "N/A", "N/A", ""},
						[]string{"app", a.PaperName(), machine, fmt.Sprintf("%d", o.Procs), "tuned", "N/A", "N/A", ""})
					continue
				}
				tuned := tune.Select(o.Procs, collPayloadBytes, ck.k.Apply(baseParams(), v))
				gain := 100 * (tpt.Elapsed.Seconds()/dpt.Elapsed.Seconds() - 1)
				t.Rows = append(t.Rows,
					[]string{
						"app", a.PaperName(), machine, fmt.Sprintf("%d", o.Procs),
						"default", secs(dpt.Elapsed.Seconds()), f2(dpt.Slowdown), "",
					},
					[]string{
						"app", a.PaperName(), machine, fmt.Sprintf("%d", o.Procs),
						"tuned", secs(tpt.Elapsed.Seconds()), f2(tpt.Slowdown),
						fmt.Sprintf("%+.1f%% %s", gain,
							splitc.Collectives{Barrier: tuned.Barrier, Broadcast: tuned.Broadcast, AllReduce: tuned.AllReduce}),
					})
			}
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("micro rows: measured = per-episode cost (µs) over %d episodes, makespan", collEpisodes),
		"difference against an empty run on the same world; model = closed-form",
		"LogGP cost the tuner minimizes; best = measured winner of the group,",
		"pick = tuner's choice for (P, machine)",
		"app rows: measured = virtual run time (s), model column = slowdown vs the",
		"same selection's baseline; marks = tuned makespan delta vs default and",
		"the selection \"auto\" resolved to at that machine point",
		"broadcast episodes are barrier-separated; the separating barrier's cost",
		"is measured on the same world and subtracted back out")
	return t, nil
}

// Collectives runs the collectives experiment standalone.
func Collectives(o Options) (*Table, error) { return runPair(collectivesPlan, collectivesRender, o) }
