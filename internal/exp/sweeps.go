package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sim"
)

// Paper sweep points (the added amount, in µs, or the bandwidth cap in
// MB/s for the bulk-gap sweep).
var (
	overheadPoints = []float64{0, 1, 2, 4, 5, 10, 20, 50, 100}
	gapPoints      = []float64{0, 2.2, 4.2, 9.2, 24.2, 49.2, 74.2, 99.2}
	latencyPoints  = []float64{0, 2.5, 5, 10, 25, 50, 75, 100}
	bulkBWPoints   = []float64{38, 35, 30, 25, 20, 15, 10, 5, 2, 1}
)

func quickTrim(points []float64) []float64 {
	return []float64{points[0], points[len(points)/2], points[len(points)-1]}
}

func (o Options) sweepPoints(points []float64) []float64 {
	if o.Quick {
		return quickTrim(points)
	}
	return points
}

// baselineSpec is the canonical unmodified-machine run for an app under
// these options.
func (o Options) baselineSpec(a apps.App, procs int) run.Spec {
	return run.Baseline(a.Name(), procs, o.Scale, o.Seed, o.Verify)
}

// sweepSpec is the canonical design-point run for an app under these
// options.
func (o Options) sweepSpec(a apps.App, procs int, k core.Knob, v float64) run.Spec {
	return run.Spec{App: a.Name(), Procs: procs, Scale: o.Scale, Seed: o.Seed, Knob: k, Value: v}
}

// slowdownPlan declares the run matrix of one Figure 5–8 sweep: a
// baseline per app plus every (app × point) design point.
func slowdownPlan(o Options, procs int, k core.Knob, points []float64) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		for _, v := range o.sweepPoints(points) {
			p.AddSweep(o.sweepSpec(a, procs, k, v), o.Verify)
		}
	}
	return p, nil
}

// slowdownRender renders a completed sweep as a slowdown table.
func slowdownRender(id, title, unit string, o Options, st *run.Store, procs int, k core.Knob, points []float64) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title}
	t.Columns = []string{unit}
	for _, a := range sel {
		t.Columns = append(t.Columns, a.PaperName())
	}
	for _, v := range o.sweepPoints(points) {
		row := []string{f1(v)}
		for _, a := range sel {
			pt, err := st.Point(o.sweepSpec(a, procs, k, v))
			if err != nil {
				return nil, err
			}
			if pt.Livelocked {
				row = append(row, "N/A")
				continue
			}
			row = append(row, f2(pt.Slowdown))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("slowdown relative to the unmodified machine; %d nodes, scale %.4g", procs, o.Scale),
		"N/A: exceeded the livelock time limit (the paper's Barnes behavior)")
	return t, nil
}

// Plan/Render pairs for the four sensitivity sweeps. Fig 5a is the only
// 16-node sweep; the rest run at the options' cluster size.

func fig5aPlan(o Options) (*run.Plan, error) {
	return slowdownPlan(o, 16, core.KnobO, overheadPoints)
}

func fig5aRender(o Options, st *run.Store) (*Table, error) {
	return slowdownRender("fig5a", "Slowdown vs added overhead (16 nodes)", "Δo(µs)", o, st, 16, core.KnobO, overheadPoints)
}

func fig5bPlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	return slowdownPlan(o, o.Procs, core.KnobO, overheadPoints)
}

func fig5bRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	return slowdownRender("fig5b", "Slowdown vs added overhead (32 nodes)", "Δo(µs)", o, st, o.Procs, core.KnobO, overheadPoints)
}

func fig6Plan(o Options) (*run.Plan, error) {
	o = o.Norm()
	return slowdownPlan(o, o.Procs, core.KnobG, gapPoints)
}

func fig6Render(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	return slowdownRender("fig6", "Slowdown vs added gap (32 nodes)", "Δg(µs)", o, st, o.Procs, core.KnobG, gapPoints)
}

func fig7Plan(o Options) (*run.Plan, error) {
	o = o.Norm()
	return slowdownPlan(o, o.Procs, core.KnobL, latencyPoints)
}

func fig7Render(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	return slowdownRender("fig7", "Slowdown vs added latency (32 nodes)", "ΔL(µs)", o, st, o.Procs, core.KnobL, latencyPoints)
}

func fig8Plan(o Options) (*run.Plan, error) {
	o = o.Norm()
	return slowdownPlan(o, o.Procs, core.KnobBW, bulkBWPoints)
}

func fig8Render(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	return slowdownRender("fig8", "Slowdown vs bulk bandwidth (32 nodes)", "MB/s", o, st, o.Procs, core.KnobBW, bulkBWPoints)
}

// Fig5a is the overhead sensitivity sweep on 16 nodes.
func Fig5a(o Options) (*Table, error) { return runPair(fig5aPlan, fig5aRender, o) }

// Fig5b is the overhead sensitivity sweep on 32 nodes.
func Fig5b(o Options) (*Table, error) { return runPair(fig5bPlan, fig5bRender, o) }

// Fig6 is the gap sensitivity sweep.
func Fig6(o Options) (*Table, error) { return runPair(fig6Plan, fig6Render, o) }

// Fig7 is the latency sensitivity sweep.
func Fig7(o Options) (*Table, error) { return runPair(fig7Plan, fig7Render, o) }

// Fig8 is the bulk-bandwidth sensitivity sweep.
func Fig8(o Options) (*Table, error) { return runPair(fig8Plan, fig8Render, o) }

// predictedPlan declares the measured-vs-predicted matrix for one knob:
// the same specs as the corresponding slowdown sweep at the options'
// cluster size, so Table 5 shares every run with Fig 5b and Table 6 with
// Fig 6 when their plans are merged.
func predictedPlan(o Options, k core.Knob, points []float64) (*run.Plan, error) {
	o = o.Norm()
	return slowdownPlan(o, o.Procs, k, points)
}

// predictedRender renders measured-vs-predicted run times for one knob.
func predictedRender(id, title, unit string, o Options, st *run.Store, k core.Knob, points []float64,
	predict func(r0 sim.Time, m int64, added sim.Time) sim.Time) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title}
	t.Columns = []string{unit}
	for _, a := range sel {
		t.Columns = append(t.Columns, a.PaperName()+" meas(s)", a.PaperName()+" pred(s)")
	}
	type appBase struct {
		res apps.Result
		m   int64
	}
	bases := make([]appBase, len(sel))
	for i, a := range sel {
		res, err := st.Result(o.baselineSpec(a, o.Procs))
		if err != nil {
			return nil, err
		}
		m, _ := res.Stats.MaxPerProc()
		bases[i] = appBase{res: res, m: m}
	}
	for _, v := range o.sweepPoints(points) {
		row := []string{f1(v)}
		for i, a := range sel {
			pt, err := st.Point(o.sweepSpec(a, o.Procs, k, v))
			if err != nil {
				return nil, err
			}
			meas := "N/A"
			if !pt.Livelocked {
				meas = secs(pt.Elapsed.Seconds())
			}
			pred := predict(bases[i].res.Elapsed, bases[i].m, sim.FromMicros(v))
			row = append(row, meas, secs(pred.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"prediction inputs: baseline run time and max messages/processor (Table 4's m)")
	return t, nil
}

func table5Plan(o Options) (*run.Plan, error) {
	return predictedPlan(o, core.KnobO, overheadPoints)
}

func table5Render(o Options, st *run.Store) (*Table, error) {
	return predictedRender("table5", "Measured vs predicted, varying overhead (32 nodes)",
		"Δo(µs)", o, st, core.KnobO, overheadPoints, model.Overhead)
}

func table6Plan(o Options) (*run.Plan, error) {
	return predictedPlan(o, core.KnobG, gapPoints)
}

func table6Render(o Options, st *run.Store) (*Table, error) {
	return predictedRender("table6", "Measured vs predicted, varying gap (32 nodes)",
		"Δg(µs)", o, st, core.KnobG, gapPoints, model.GapBurst)
}

// Table5 compares measured run times against the overhead model
// r = r0 + 2·m·Δo.
func Table5(o Options) (*Table, error) { return runPair(table5Plan, table5Render, o) }

// Table6 compares measured run times against the burst gap model
// r = r0 + m·Δg.
func Table6(o Options) (*Table, error) { return runPair(table6Plan, table6Render, o) }
