package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Paper sweep points (the added amount, in µs, or the bandwidth cap in
// MB/s for the bulk-gap sweep).
var (
	overheadPoints = []float64{0, 1, 2, 4, 5, 10, 20, 50, 100}
	gapPoints      = []float64{0, 2.2, 4.2, 9.2, 24.2, 49.2, 74.2, 99.2}
	latencyPoints  = []float64{0, 2.5, 5, 10, 25, 50, 75, 100}
	bulkBWPoints   = []float64{38, 35, 30, 25, 20, 15, 10, 5, 2, 1}
)

func quickTrim(points []float64) []float64 {
	return []float64{points[0], points[len(points)/2], points[len(points)-1]}
}

// sweepCache memoizes swept runs across experiments (Table 5 reuses
// Figure 5b's runs, Table 6 reuses Figure 6's).
var sweepCache = map[string]core.Point{}

// sweepRun measures one app at one design point, memoized.
func sweepRun(a apps.App, o Options, procs int, k core.Knob, v float64, base apps.Result) (core.Point, error) {
	key := fmt.Sprintf("%s/%d/%g/%d/%d/%g", a.Name(), procs, o.Scale, o.Seed, k, v)
	if pt, ok := sweepCache[key]; ok {
		return pt, nil
	}
	pt, err := core.RunAt(a, o.appConfig(procs), k, v, base.Elapsed)
	if err != nil {
		return pt, err
	}
	sweepCache[key] = pt
	return pt, nil
}

// slowdownTable runs the suite across a sweep and renders slowdowns.
func slowdownTable(id, title, unit string, o Options, procs int, k core.Knob, points []float64) (*Table, error) {
	o = o.Norm()
	if o.Quick {
		points = quickTrim(points)
	}
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title}
	t.Columns = []string{unit}
	for _, a := range sel {
		t.Columns = append(t.Columns, a.PaperName())
	}
	baselines := make([]apps.Result, len(sel))
	for i, a := range sel {
		baselines[i], err = baselineRun(a, o.appConfig(procs))
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", a.Name(), err)
		}
	}
	for _, v := range points {
		row := []string{f1(v)}
		for i, a := range sel {
			pt, err := sweepRun(a, o, procs, k, v, baselines[i])
			if err != nil {
				return nil, err
			}
			if pt.Livelocked {
				row = append(row, "N/A")
				continue
			}
			row = append(row, f2(pt.Slowdown))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("slowdown relative to the unmodified machine; %d nodes, scale %.4g", procs, o.Scale),
		"N/A: exceeded the livelock time limit (the paper's Barnes behavior)")
	return t, nil
}

// Fig5a is the overhead sensitivity sweep on 16 nodes.
func Fig5a(o Options) (*Table, error) {
	return slowdownTable("fig5a", "Slowdown vs added overhead (16 nodes)", "Δo(µs)", o, 16, core.KnobO, overheadPoints)
}

// Fig5b is the overhead sensitivity sweep on 32 nodes.
func Fig5b(o Options) (*Table, error) {
	o = o.Norm()
	return slowdownTable("fig5b", "Slowdown vs added overhead (32 nodes)", "Δo(µs)", o, o.Procs, core.KnobO, overheadPoints)
}

// Fig6 is the gap sensitivity sweep.
func Fig6(o Options) (*Table, error) {
	o = o.Norm()
	return slowdownTable("fig6", "Slowdown vs added gap (32 nodes)", "Δg(µs)", o, o.Procs, core.KnobG, gapPoints)
}

// Fig7 is the latency sensitivity sweep.
func Fig7(o Options) (*Table, error) {
	o = o.Norm()
	return slowdownTable("fig7", "Slowdown vs added latency (32 nodes)", "ΔL(µs)", o, o.Procs, core.KnobL, latencyPoints)
}

// Fig8 is the bulk-bandwidth sensitivity sweep.
func Fig8(o Options) (*Table, error) {
	o = o.Norm()
	return slowdownTable("fig8", "Slowdown vs bulk bandwidth (32 nodes)", "MB/s", o, o.Procs, core.KnobBW, bulkBWPoints)
}

// predictedTable renders measured-vs-predicted run times for one knob.
func predictedTable(id, title, unit string, o Options, k core.Knob, points []float64,
	predict func(r0 sim.Time, m int64, added sim.Time) sim.Time) (*Table, error) {
	o = o.Norm()
	if o.Quick {
		points = quickTrim(points)
	}
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title}
	t.Columns = []string{unit}
	for _, a := range sel {
		t.Columns = append(t.Columns, a.PaperName()+" meas(s)", a.PaperName()+" pred(s)")
	}
	type appBase struct {
		res apps.Result
		m   int64
	}
	bases := make([]appBase, len(sel))
	for i, a := range sel {
		res, err := baselineRun(a, o.appConfig(o.Procs))
		if err != nil {
			return nil, err
		}
		m, _ := res.Stats.MaxPerProc()
		bases[i] = appBase{res: res, m: m}
	}
	for _, v := range points {
		row := []string{f1(v)}
		for i, a := range sel {
			pt, err := sweepRun(a, o, o.Procs, k, v, bases[i].res)
			if err != nil {
				return nil, err
			}
			meas := "N/A"
			if !pt.Livelocked {
				meas = secs(pt.Elapsed.Seconds())
			}
			pred := predict(bases[i].res.Elapsed, bases[i].m, sim.FromMicros(v))
			row = append(row, meas, secs(pred.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"prediction inputs: baseline run time and max messages/processor (Table 4's m)")
	return t, nil
}

// Table5 compares measured run times against the overhead model
// r = r0 + 2·m·Δo.
func Table5(o Options) (*Table, error) {
	return predictedTable("table5", "Measured vs predicted, varying overhead (32 nodes)",
		"Δo(µs)", o, core.KnobO, overheadPoints, model.Overhead)
}

// Table6 compares measured run times against the burst gap model
// r = r0 + m·Δg.
func Table6(o Options) (*Table, error) {
	return predictedTable("table6", "Measured vs predicted, varying gap (32 nodes)",
		"Δg(µs)", o, core.KnobG, gapPoints, model.GapBurst)
}
