package exp

import (
	"fmt"
	"sort"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/scalekern"
	"repro/internal/apps/suite"
	"repro/internal/core"
	"repro/internal/run"
)

// The scale experiment asks whether the paper's sensitivity conclusions
// — drawn on a 32-node NOW — survive three orders of magnitude more
// processors, where barrier fan-in, tree depth, and gap serialization
// actually dominate. It runs the three scalekern continuation kernels
// (barrier-synchronized, pipelined, request/reply) up a weak-scaling
// ladder to P = 1M on the resumable runtime, measuring at each rung the
// slowdown from the same added overhead, gap, and latency, and whether
// the knob ordering observed at the paper's size still holds at depth.
//
// Every column is derived from virtual time and deterministic counters,
// so the table is bit-identical at any -jobs setting. Host wall-clock
// throughput (events/sec) for the same ladder is reprobench's job: see
// the scale matrix writing BENCH_scale.json.

// scaleDeltaUs is the added overhead/gap/latency of each sensitivity
// run, in µs — fig5/fig6's mid-range point, large enough to dominate
// the baseline parameters without tripping the livelock bound.
const scaleDeltaUs = 25

// scaleKnobs are the varied parameters, in fig5 → fig6 → fig7 order.
var scaleKnobs = []core.Knob{core.KnobO, core.KnobG, core.KnobL}

// scaleSweepMaxP caps the knob-sweep rungs. The top of the ladder runs
// baseline-only: a P = 1M baseline is tens of host-minutes, and the
// knob orderings are judged on the 32 → 100k rungs, which already span
// 3.5 decades of machine size. The million-processor rung's job is the
// baseline itself — the machine runs, its virtual time and traffic are
// deterministic, and its host cost is recorded in BENCH_scale.json.
const scaleSweepMaxP = 100_000

// scaleRungs is the weak-scaling ladder. The first rung is the options'
// cluster size (-procs, default the paper's 32) and anchors the knob
// ordering the deeper rungs are judged against. Quick mode stops at 10k
// — the CI smoke ladder.
func scaleRungs(o Options) []int {
	rungs := []int{o.Procs, 1_000, 10_000, 100_000, 1_000_000}
	if o.Quick {
		rungs = []int{o.Procs, 1_000, 10_000}
	}
	sort.Ints(rungs)
	out := rungs[:1]
	for _, p := range rungs[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// scaleApps is the kernel set: the three scalekern continuation
// kernels, one per communication archetype. Options.Apps restricts it
// (kernel names, e.g. "scale-pray"), mirroring the paper experiments.
func scaleApps(o Options) ([]apps.App, error) {
	if len(o.Apps) == 0 {
		return scalekern.All(), nil
	}
	var out []apps.App
	for _, name := range o.Apps {
		a, err := scalekern.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ResolveApp maps an application name to its implementation: the paper
// suite first, then the weak-scaling kernels. This is the Runner
// resolver every experiment shares, so scale specs replay through the
// same plan/store machinery as the paper artifacts.
func ResolveApp(name string) (apps.App, error) {
	if a, err := suite.ByName(name); err == nil {
		return a, nil
	}
	return scalekern.ByName(name)
}

// scalePlan declares the ladder: per kernel and rung, one baseline plus
// one design point per knob.
func scalePlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := scaleApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		for _, procs := range scaleRungs(o) {
			p.AddBaseline(a.Name(), procs, o.Scale, o.Seed, o.Verify)
			if procs > scaleSweepMaxP {
				continue
			}
			for _, k := range scaleKnobs {
				p.AddSweep(o.sweepSpec(a, procs, k, scaleDeltaUs), o.Verify)
			}
		}
	}
	return p, nil
}

// scaleOrder renders the knob sensitivity ranking ("o>g>L") of one
// rung. Ties break in fig order (o, g, L) via the stable sort, so the
// string is deterministic.
func scaleOrder(slow [3]float64) string {
	type kv struct {
		name string
		v    float64
	}
	ks := []kv{{"o", slow[0]}, {"g", slow[1]}, {"L", slow[2]}}
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].v > ks[j].v })
	return ks[0].name + ">" + ks[1].name + ">" + ks[2].name
}

// scaleWireKB is the wire traffic per processor in KB: bulk payload
// plus the small-message wire size for everything else.
func scaleWireKB(st *am.Stats) float64 {
	small := st.TotalSent() - st.TotalBulk()
	bytes := st.TotalBulkBytes() + small*am.SmallWireBytes
	return float64(bytes) / float64(st.P()) / 1024
}

// ScaleTable runs the scale experiment standalone.
func ScaleTable(o Options) (*Table, error) { return runPair(scalePlan, scaleRender, o) }

func scaleRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := scaleApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "scale",
		Title: "Weak scaling on the resumable runtime (P to 1M)",
		Columns: []string{"kernel", "P", "base(s)", "msgs/proc", "wireKB/proc", "Mevents",
			"slow Δo", "slow Δg", "slow ΔL", "order", "vs anchor"},
	}
	for _, a := range sel {
		anchor := ""
		for _, procs := range scaleRungs(o) {
			res, err := st.Result(o.baselineSpec(a, procs))
			if err != nil {
				return nil, err
			}
			if procs > scaleSweepMaxP {
				t.Rows = append(t.Rows, []string{
					a.PaperName(),
					fmt.Sprintf("%d", procs),
					secs(res.Elapsed.Seconds()),
					f1(res.Stats.AvgPerProc()),
					f2(scaleWireKB(res.Stats)),
					f2(float64(res.Sched.EventsRun) / 1e6),
					"-", "-", "-", "-", "baseline only",
				})
				continue
			}
			var slow [3]float64
			livelocked := false
			for i, k := range scaleKnobs {
				pt, err := st.Point(o.sweepSpec(a, procs, k, scaleDeltaUs))
				if err != nil {
					return nil, err
				}
				if pt.Livelocked {
					livelocked = true
					continue
				}
				slow[i] = pt.Slowdown
			}
			row := []string{
				a.PaperName(),
				fmt.Sprintf("%d", procs),
				secs(res.Elapsed.Seconds()),
				f1(res.Stats.AvgPerProc()),
				f2(scaleWireKB(res.Stats)),
				f2(float64(res.Sched.EventsRun) / 1e6),
			}
			if livelocked {
				row = append(row, "N/A", "N/A", "N/A", "N/A", "N/A")
			} else {
				order := scaleOrder(slow)
				verdict := "anchor"
				if anchor == "" {
					anchor = order
				} else if order == anchor {
					verdict = "holds"
				} else {
					verdict = "differs"
				}
				row = append(row, f2(slow[0]), f2(slow[1]), f2(slow[2]), order, verdict)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("weak scaling: fixed per-processor input (scale %.4g), Δ = +%gµs per knob", o.Scale, float64(scaleDeltaUs)),
		fmt.Sprintf("anchor rung is -procs (%d); 'holds' means the o/g/L sensitivity ordering matches it", o.Procs),
		fmt.Sprintf("rungs above P=%d run baseline-only; orderings are judged through that depth", scaleSweepMaxP),
		"all columns are virtual-time/deterministic; host events/sec lives in BENCH_scale.json (reprobench)")
	return t, nil
}
