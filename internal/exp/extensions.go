package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// ExtBurst tests the paper's §5.2 burstiness claim directly. The paper
// infers from the linear gap response that "communication tends to be
// very bursty, rather than spaced at even intervals"; with the
// send-interval histograms we can measure it: the fraction of messages
// issued within 2·g of the previous send, the mean interval, and how the
// burst and uniform gap models compare against a measured mid-sweep
// point.
func ExtBurst(o Options) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	const dG = 24.2 // mid-sweep gap point, µs
	t := &Table{
		ID:    "ext-burst",
		Title: "Burstiness and the gap models (extension of §5.2)",
		Columns: []string{
			"Program", "mean send int.(µs)", "≤2g bursts",
			fmt.Sprintf("meas@Δg=%.0f (s)", dG), "burst pred(s)", "uniform pred(s)",
		},
		Notes: []string{
			"'≤2g bursts': fraction of sends issued within 2·g of the previous send",
			"linear gap response ⇒ the burst model should dominate for heavy communicators",
		},
	}
	for _, a := range sel {
		base, err := baselineRun(a, o.appConfig(o.Procs))
		if err != nil {
			return nil, err
		}
		pt, err := sweepRun(a, o, o.Procs, core.KnobG, dG, base)
		if err != nil {
			return nil, err
		}
		m, _ := base.Stats.MaxPerProc()
		interval := base.Stats.MeanSendInterval()
		g := o.appConfig(o.Procs).Params.EffGap()
		burstFrac := base.Stats.BurstFraction(2 * g)
		burstPred := model.GapBurst(base.Elapsed, m, sim.FromMicros(dG))
		uniformPred := model.GapUniform(base.Elapsed, m, g+sim.FromMicros(dG), interval)
		meas := "N/A"
		if !pt.Livelocked {
			meas = secs(pt.Elapsed.Seconds())
		}
		t.Rows = append(t.Rows, []string{
			a.PaperName(),
			f1(interval.Micros()),
			fmt.Sprintf("%.0f%%", 100*burstFrac),
			meas,
			secs(burstPred.Seconds()),
			secs(uniformPred.Seconds()),
		})
	}
	return t, nil
}

// ExtTradeoff quantifies the paper's closing observation (§5.5): "rather
// than making a significant investment to double a machine's processing
// capacity, the investment may be better directed toward improving the
// communication system." Starting from a machine with LAN-class added
// overhead, it compares doubling the CPU speed against halving the total
// per-message overhead.
func ExtTradeoff(o Options) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	const addedO = 20.0 // µs, the degraded starting design point
	baseO := 2.9        // NOW's o
	halvedDelta := (baseO+addedO)/2 - baseO

	t := &Table{
		ID:    "ext-tradeoff",
		Title: fmt.Sprintf("Processor vs network investment from o=%.1fµs (extension of §5.5)", baseO+addedO),
		Columns: []string{
			"Program", "degraded (s)", "2x CPU speedup", "o/2 speedup", "better investment",
		},
		Notes: []string{
			"starting point: Δo=20µs (a slow stack); '2x CPU' halves compute charges;",
			"'o/2' halves the total per-message overhead; entries are speedups over the degraded run",
		},
	}
	for _, a := range sel {
		mkCfg := func(cpu float64, dO float64) apps.Config {
			cfg := o.appConfig(o.Procs)
			cfg.Params = core.KnobO.Apply(cfg.Params, dO)
			cfg.CPUSpeedup = cpu
			return cfg
		}
		degraded, err := a.Run(mkCfg(1, addedO))
		if err != nil {
			return nil, fmt.Errorf("%s degraded: %w", a.Name(), err)
		}
		fastCPU, err := a.Run(mkCfg(2, addedO))
		if err != nil {
			return nil, fmt.Errorf("%s 2xCPU: %w", a.Name(), err)
		}
		fastNet, err := a.Run(mkCfg(1, halvedDelta))
		if err != nil {
			return nil, fmt.Errorf("%s o/2: %w", a.Name(), err)
		}
		cpuSpeed := float64(degraded.Elapsed) / float64(fastCPU.Elapsed)
		netSpeed := float64(degraded.Elapsed) / float64(fastNet.Elapsed)
		winner := "network"
		if cpuSpeed > netSpeed {
			winner = "CPU"
		}
		t.Rows = append(t.Rows, []string{
			a.PaperName(),
			secs(degraded.Elapsed.Seconds()),
			f2(cpuSpeed) + "x",
			f2(netSpeed) + "x",
			winner,
		})
	}
	return t, nil
}

// ExtPhases reproduces the paper's §5.1 dissection of Radix's
// hypersensitivity: the serialized global-histogram phase consumes ~20% of
// the run at baseline overhead but ~60% at Δo=100 µs (and far less on 16
// nodes, since the serialization scales with radix × P).
func ExtPhases(o Options) (*Table, error) {
	o = o.Norm()
	a, err := suiteApp("radix")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-phases",
		Title: "Radix phase shares vs overhead (extension of §5.1)",
		Columns: []string{
			"Δo(µs)", "Procs", "local-rank", "histogram", "distribution",
		},
		Notes: []string{
			"paper: the histogram phase takes 20% of the 32-node run at baseline,",
			"60% at o=100µs, but only 16% of the 16-node run at o=100µs",
		},
	}
	for _, procs := range []int{16, o.Procs} {
		for _, dO := range []float64{0, 20, 100} {
			cfg := o.appConfig(procs)
			cfg.Params = core.KnobO.Apply(cfg.Params, dO)
			res, err := a.Run(cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				f1(dO),
				fmt.Sprintf("%d", procs),
				fmt.Sprintf("%.0f%%", 100*res.Extra["phase:local-rank"]),
				fmt.Sprintf("%.0f%%", 100*res.Extra["phase:histogram"]),
				fmt.Sprintf("%.0f%%", 100*res.Extra["phase:distribution"]),
			})
		}
	}
	return t, nil
}

// suiteApp resolves one application by name (thin wrapper so extension
// experiments read naturally).
func suiteApp(name string) (apps.App, error) {
	sel, err := selectedApps(Options{Apps: []string{name}})
	if err != nil {
		return nil, err
	}
	return sel[0], nil
}
