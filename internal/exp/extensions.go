package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sim"
)

// extBurstGap is the mid-sweep gap point (µs) ExtBurst measures at; it
// is one of Fig 6's points (also surviving Quick trimming), so a merged
// plan reuses that run.
const extBurstGap = 24.2

// extBurstPlan declares a baseline plus one gap design point per app.
func extBurstPlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		p.AddSweep(o.sweepSpec(a, o.Procs, core.KnobG, extBurstGap), o.Verify)
	}
	return p, nil
}

// extBurstRender tests the paper's §5.2 burstiness claim directly. The
// paper infers from the linear gap response that "communication tends to
// be very bursty, rather than spaced at even intervals"; with the
// send-interval histograms we can measure it: the fraction of messages
// issued within 2·g of the previous send, the mean interval, and how the
// burst and uniform gap models compare against a measured mid-sweep
// point.
func extBurstRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-burst",
		Title: "Burstiness and the gap models (extension of §5.2)",
		Columns: []string{
			"Program", "mean send int.(µs)", "≤2g bursts",
			fmt.Sprintf("meas@Δg=%.0f (s)", extBurstGap), "burst pred(s)", "uniform pred(s)",
		},
		Notes: []string{
			"'≤2g bursts': fraction of sends issued within 2·g of the previous send",
			"linear gap response ⇒ the burst model should dominate for heavy communicators",
		},
	}
	for _, a := range sel {
		base, err := st.Result(o.baselineSpec(a, o.Procs))
		if err != nil {
			return nil, err
		}
		pt, err := st.Point(o.sweepSpec(a, o.Procs, core.KnobG, extBurstGap))
		if err != nil {
			return nil, err
		}
		m, _ := base.Stats.MaxPerProc()
		interval := base.Stats.MeanSendInterval()
		g := o.appConfig(o.Procs).Params.EffGap()
		burstFrac := base.Stats.BurstFraction(2 * g)
		burstPred := model.GapBurst(base.Elapsed, m, sim.FromMicros(extBurstGap))
		uniformPred := model.GapUniform(base.Elapsed, m, g+sim.FromMicros(extBurstGap), interval)
		meas := "N/A"
		if !pt.Livelocked {
			meas = secs(pt.Elapsed.Seconds())
		}
		t.Rows = append(t.Rows, []string{
			a.PaperName(),
			f1(interval.Micros()),
			fmt.Sprintf("%.0f%%", 100*burstFrac),
			meas,
			secs(burstPred.Seconds()),
			secs(uniformPred.Seconds()),
		})
	}
	return t, nil
}

// ExtTradeoff's design points (§5.5): a machine degraded by Δo=20µs, the
// same machine with doubled CPU speed, and the same machine with the
// total per-message overhead halved instead.
const (
	tradeoffAddedO = 20.0 // µs, the degraded starting design point
	tradeoffBaseO  = 2.9  // NOW's o
)

func tradeoffSpecs(o Options, a apps.App) (degraded, fastCPU, fastNet run.Spec) {
	halvedDelta := (tradeoffBaseO+tradeoffAddedO)/2 - tradeoffBaseO
	degraded = o.sweepSpec(a, o.Procs, core.KnobO, tradeoffAddedO)
	fastCPU = degraded
	fastCPU.CPUSpeedup = 2
	fastNet = o.sweepSpec(a, o.Procs, core.KnobO, halvedDelta)
	return degraded, fastCPU, fastNet
}

// extTradeoffPlan declares the three design points per app (plus the
// shared unmodified baseline that bounds their livelock detection).
func extTradeoffPlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		degraded, fastCPU, fastNet := tradeoffSpecs(o, a)
		p.AddSweep(degraded, o.Verify)
		p.AddSweep(fastCPU, o.Verify)
		p.AddSweep(fastNet, o.Verify)
	}
	return p, nil
}

// extTradeoffRender quantifies the paper's closing observation (§5.5):
// "rather than making a significant investment to double a machine's
// processing capacity, the investment may be better directed toward
// improving the communication system." Starting from a machine with
// LAN-class added overhead, it compares doubling the CPU speed against
// halving the total per-message overhead.
func extTradeoffRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-tradeoff",
		Title: fmt.Sprintf("Processor vs network investment from o=%.1fµs (extension of §5.5)", tradeoffBaseO+tradeoffAddedO),
		Columns: []string{
			"Program", "degraded (s)", "2x CPU speedup", "o/2 speedup", "better investment",
		},
		Notes: []string{
			"starting point: Δo=20µs (a slow stack); '2x CPU' halves compute charges;",
			"'o/2' halves the total per-message overhead; entries are speedups over the degraded run",
		},
	}
	for _, a := range sel {
		dSpec, cSpec, nSpec := tradeoffSpecs(o, a)
		degraded, err := st.Point(dSpec)
		if err != nil {
			return nil, fmt.Errorf("%s degraded: %w", a.Name(), err)
		}
		fastCPU, err := st.Point(cSpec)
		if err != nil {
			return nil, fmt.Errorf("%s 2xCPU: %w", a.Name(), err)
		}
		fastNet, err := st.Point(nSpec)
		if err != nil {
			return nil, fmt.Errorf("%s o/2: %w", a.Name(), err)
		}
		if degraded.Livelocked || fastCPU.Livelocked || fastNet.Livelocked {
			t.Rows = append(t.Rows, []string{a.PaperName(), "N/A", "N/A", "N/A", "N/A"})
			continue
		}
		cpuSpeed := float64(degraded.Elapsed) / float64(fastCPU.Elapsed)
		netSpeed := float64(degraded.Elapsed) / float64(fastNet.Elapsed)
		winner := "network"
		if cpuSpeed > netSpeed {
			winner = "CPU"
		}
		t.Rows = append(t.Rows, []string{
			a.PaperName(),
			secs(degraded.Elapsed.Seconds()),
			f2(cpuSpeed) + "x",
			f2(netSpeed) + "x",
			winner,
		})
	}
	return t, nil
}

// ExtPhases' grid: Radix at two cluster sizes under three overheads.
var extPhasesOverheads = []float64{0, 20, 100}

func extPhasesProcs(o Options) []int { return []int{16, o.Procs} }

// extPhasesPlan declares the Radix runs; the Δo points are ordinary
// overhead design points, so the 32-node ones are shared with Fig 5b's
// sweep in a merged plan.
func extPhasesPlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	a, err := suiteApp("radix")
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, procs := range extPhasesProcs(o) {
		for _, dO := range extPhasesOverheads {
			p.AddSweep(o.sweepSpec(a, procs, core.KnobO, dO), o.Verify)
		}
	}
	return p, nil
}

// extPhasesRender reproduces the paper's §5.1 dissection of Radix's
// hypersensitivity: the serialized global-histogram phase consumes ~20%
// of the run at baseline overhead but ~60% at Δo=100 µs (and far less on
// 16 nodes, since the serialization scales with radix × P).
func extPhasesRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	a, err := suiteApp("radix")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-phases",
		Title: "Radix phase shares vs overhead (extension of §5.1)",
		Columns: []string{
			"Δo(µs)", "Procs", "local-rank", "histogram", "distribution",
		},
		Notes: []string{
			"paper: the histogram phase takes 20% of the 32-node run at baseline,",
			"60% at o=100µs, but only 16% of the 16-node run at o=100µs",
		},
	}
	for _, procs := range extPhasesProcs(o) {
		for _, dO := range extPhasesOverheads {
			res, err := st.Result(o.sweepSpec(a, procs, core.KnobO, dO))
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				f1(dO),
				fmt.Sprintf("%d", procs),
				fmt.Sprintf("%.0f%%", 100*res.Extra["phase:local-rank"]),
				fmt.Sprintf("%.0f%%", 100*res.Extra["phase:histogram"]),
				fmt.Sprintf("%.0f%%", 100*res.Extra["phase:distribution"]),
			})
		}
	}
	return t, nil
}

// ExtBurst measures burstiness against the gap models.
func ExtBurst(o Options) (*Table, error) { return runPair(extBurstPlan, extBurstRender, o) }

// ExtTradeoff compares processor against network investment.
func ExtTradeoff(o Options) (*Table, error) { return runPair(extTradeoffPlan, extTradeoffRender, o) }

// ExtPhases dissects Radix's phase shares under overhead.
func ExtPhases(o Options) (*Table, error) { return runPair(extPhasesPlan, extPhasesRender, o) }

// suiteApp resolves one application by name (thin wrapper so extension
// experiments read naturally).
func suiteApp(name string) (apps.App, error) {
	sel, err := selectedApps(Options{Apps: []string{name}})
	if err != nil {
		return nil, err
	}
	return sel[0], nil
}
