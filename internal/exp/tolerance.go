package exp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/tolerance"
)

// toleranceFactor is the slowdown threshold behind the per-app tolerance
// figures: the largest delta an app absorbs before its predicted run
// time exceeds this multiple of the baseline.
const toleranceFactor = tolerance.DefaultFactor

// toleranceAxes pairs each analytic curve axis with the machine knob and
// sweep grid it cross-validates against.
var toleranceAxes = []struct {
	axis   string
	knob   core.Knob
	points []float64
}{
	{"o", core.KnobO, overheadPoints},
	{"g", core.KnobG, gapPoints},
	{"L", core.KnobL, latencyPoints},
}

// tolerancePlan declares one instrumented baseline per app (the single
// run the analytic curves come from) plus the measured o/g/L sweeps the
// predictions are validated against. The measured sweeps are exactly
// the fig5b/fig6/fig7 specs, so a merged plan shares those runs.
func tolerancePlan(o Options) (*run.Plan, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	p := run.NewPlan()
	for _, a := range sel {
		inst := o.baselineSpec(a, o.Procs)
		inst.Depgraph = true
		p.AddSweep(inst, o.Verify)
		for _, ax := range toleranceAxes {
			for _, v := range o.sweepPoints(ax.points) {
				p.AddSweep(o.sweepSpec(a, o.Procs, ax.knob, v), o.Verify)
			}
		}
	}
	return p, nil
}

// toleranceRender cross-validates the analytic curves against the
// measured sweeps and renders the per-app error and tolerance table,
// most-sensitive app (smallest overhead tolerance) first.
func toleranceRender(o Options, st *run.Store) (*Table, error) {
	o = o.Norm()
	sel, err := selectedApps(o)
	if err != nil {
		return nil, err
	}
	type row struct {
		cells []string
		rank  sim.Time
		name  string
	}
	rows := make([]row, 0, len(sel))
	within := 0
	validated := 0
	for _, a := range sel {
		inst := o.baselineSpec(a, o.Procs)
		inst.Depgraph = true
		res, err := st.Result(inst)
		if err != nil {
			return nil, err
		}
		r := row{name: a.Name(), rank: tolerance.MaxDelta + 1}
		r.cells = []string{a.PaperName(), secs(res.Elapsed.Seconds())}
		if res.Curves == nil {
			for range toleranceAxes {
				r.cells = append(r.cells, "—")
			}
			r.cells = append(r.cells, "—", "—", "—")
			rows = append(rows, row{cells: r.cells, rank: r.rank, name: r.name})
			continue
		}
		validated++
		ok5 := true
		var tols []string
		for _, ax := range toleranceAxes {
			c, _ := res.Curves.ByAxis(ax.axis)
			maxErr, n := 0.0, 0
			for _, v := range o.sweepPoints(ax.points) {
				pt, err := st.Point(o.sweepSpec(a, o.Procs, ax.knob, v))
				if err != nil {
					return nil, err
				}
				if pt.Livelocked {
					continue
				}
				pred := c.Eval(sim.FromMicros(v))
				e := 100 * abs(pred.Seconds()-pt.Elapsed.Seconds()) / pt.Elapsed.Seconds()
				if e > maxErr {
					maxErr = e
				}
				n++
			}
			if n == 0 {
				r.cells = append(r.cells, "N/A")
			} else {
				r.cells = append(r.cells, f1(maxErr)+"%")
				if maxErr > 5 {
					ok5 = false
				}
			}
			tol, bounded := c.Tolerance(toleranceFactor)
			if !bounded {
				tols = append(tols, fmt.Sprintf(">%s", f1(tolerance.MaxDelta.Micros())))
			} else {
				tols = append(tols, f1(tol.Micros()))
			}
			if ax.axis == "o" && bounded {
				r.rank = tol
			}
		}
		if ok5 {
			within++
		}
		r.cells = append(r.cells, tols...)
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].rank != rows[j].rank {
			return rows[i].rank < rows[j].rank
		}
		return rows[i].name < rows[j].name
	})
	t := &Table{ID: "tolerance", Title: "Analytic sensitivity curves from one instrumented run"}
	t.Columns = []string{"app", "base(s)", "err(Δo)", "err(Δg)", "err(ΔL)", "tol Δo(µs)", "tol Δg(µs)", "tol ΔL(µs)"}
	for _, r := range rows {
		t.Rows = append(t.Rows, r.cells)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("err: max |analytic − measured|/measured over the swept points of that knob; %d nodes, scale %.4g", o.Procs, o.Scale),
		fmt.Sprintf("tol: largest delta with predicted slowdown ≤ %.1f× (analysis domain %s µs); apps ranked most overhead-sensitive first", toleranceFactor, f1(tolerance.MaxDelta.Micros())),
		fmt.Sprintf("%d/%d apps within 5%% on every measured point; curves from %d instrumented baseline runs", within, len(sel), validated),
		"N/A: every measured point exceeded the livelock limit; —: run outside the model's validity region (see DESIGN.md §14)")
	return t, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ToleranceTable is the plan-execute-render convenience for the
// analytic-tolerance cross-validation.
func ToleranceTable(o Options) (*Table, error) { return runPair(tolerancePlan, toleranceRender, o) }
