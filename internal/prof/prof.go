// Package prof is a per-processor virtual-time accountant: attached to a
// run through the am.Hooks instrumentation seam, it classifies every
// nanosecond of every processor's timeline into one of ten paper
// categories — compute, send overhead, receive overhead, gap stall,
// window (capacity) stall, latency wait, bulk bandwidth, barrier wait,
// lock wait, and disk/sleep — plus two fault-injection accounts
// (retransmit and fault-delay, populated only when a fault plan or the
// reliability layer is active) and proves conservation: the categories
// sum exactly to the run's makespan on every processor.
//
// The accounting combines three event streams:
//
//   - raw clock advances (am.ClockHooks): idle spins and wake jumps are
//     the processor's blocked time; explicit charges are only tallied, so
//     any unhooked charge path surfaces as Unattributed instead of
//     silently vanishing;
//   - am.Hooks charges: o_send, o_recv, and Compute spans name what each
//     explicit charge was for, and TxReserved records when the NIC
//     transmit context is gap- or DMA-limited;
//   - wait and region context: WaitBegin/WaitEnd tag why the processor
//     blocks (window, read, store, bulk, barrier, lock), and the splitc
//     SyncHooks regions reclassify time inside Barrier and Lock.
//
// Blocked time is split against the transmit-context reservations: the
// part of a wait during which the NIC was still gap-limited on earlier
// sends is a gap stall, the part it was DMA-limited is bulk bandwidth,
// and only the remainder is charged to the wait's own category. The
// backlog is only counted up to the last injection instant — a blocking
// read that finds a free NIC charges latency, never gap. All arithmetic
// is integer sim.Time, so conservation is exact, not approximate.
package prof

import (
	"fmt"
	"strings"

	"repro/internal/am"
	"repro/internal/sim"
	"repro/internal/splitc"
)

// Category is one account of the per-processor time breakdown.
type Category uint8

const (
	// CatCompute is local computation (Endpoint.Compute charges).
	CatCompute Category = iota
	// CatOSend is host send overhead: o_send (plus Δo) per message.
	CatOSend
	// CatORecv is host receive overhead: o_recv (plus Δo) per message.
	CatORecv
	// CatGap is gap stall: blocked time during which the NIC transmit
	// context was still paced by g (plus Δg) on previously issued sends.
	CatGap
	// CatWindow is capacity stall: blocked on a full outstanding-request
	// window, beyond any transmit-context backlog.
	CatWindow
	// CatLatency is latency wait: blocked on a remote round trip (reads,
	// store acks, data dependencies), beyond any transmit backlog.
	CatLatency
	// CatBulk is bulk bandwidth: blocked time attributable to fragment
	// DMA — the G·size occupancy of the transmit context, or a bulk get
	// awaiting its DMA replies.
	CatBulk
	// CatBarrier is barrier wait: blocked inside Barrier or a collective
	// (exit skew after the final implied barrier is also charged here).
	CatBarrier
	// CatLock is lock wait: lock round trips, retry spins inside Lock,
	// and atomic fetch-add / compare-swap round trips.
	CatLock
	// CatSleep is non-network sleep: virtual time advanced by
	// sim.Proc.SleepUntil outside any communication wait — the disk model
	// (NOW-sort) is the suite's only such path.
	CatSleep
	// CatRetransmit is reliability-protocol overhead: blocked time during
	// which the NIC transmit context was occupied by timeout-driven
	// re-injections of unacked messages.
	CatRetransmit
	// CatFaultDelay is fault-injected processor time: one-off delays and
	// slowdown-window stretches appended to explicit charges by the fault
	// injector (sim.ClockStretch spans).
	CatFaultDelay

	// NumPaperCategories counts the original ten accounts; rendered
	// tables that predate fault injection iterate only these, keeping
	// their output stable for fault-free runs.
	NumPaperCategories = int(CatSleep) + 1
	// NumCategories sizes per-category arrays.
	NumCategories = int(CatFaultDelay) + 1
)

func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatOSend:
		return "o-send"
	case CatORecv:
		return "o-recv"
	case CatGap:
		return "gap"
	case CatWindow:
		return "window"
	case CatLatency:
		return "latency"
	case CatBulk:
		return "bulk-bw"
	case CatBarrier:
		return "barrier"
	case CatLock:
		return "lock"
	case CatSleep:
		return "disk/sleep"
	case CatRetransmit:
		return "retransmit"
	case CatFaultDelay:
		return "fault-delay"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Categories returns every category in display order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// PaperCategories returns the original ten accounts in display order,
// excluding the fault-injection extras.
func PaperCategories() []Category {
	return Categories()[:NumPaperCategories]
}

// ProcBreakdown is one processor's complete time attribution.
type ProcBreakdown struct {
	// Proc is the processor id.
	Proc int
	// Time holds the attributed virtual time per category; the entries
	// plus Unattributed sum exactly to the run's makespan.
	Time [NumCategories]sim.Time
	// Unattributed is clock advance the profiler saw but no hook named
	// (always zero while every charge path is instrumented; nonzero means
	// a new Advance call site is missing its hook).
	Unattributed sim.Time
}

// Total is the breakdown's sum, Unattributed included.
func (b *ProcBreakdown) Total() sim.Time {
	sum := b.Unattributed
	for _, d := range b.Time {
		sum += d
	}
	return sum
}

// Profile is the full stall attribution of one completed run.
type Profile struct {
	// Procs holds one breakdown per processor.
	Procs []ProcBreakdown
	// Elapsed is the run's makespan.
	Elapsed sim.Time
}

// Total is the cluster-wide time in one category.
func (p *Profile) Total(c Category) sim.Time {
	var sum sim.Time
	for i := range p.Procs {
		sum += p.Procs[i].Time[c]
	}
	return sum
}

// Unattributed is the cluster-wide unattributed time (zero on a healthy
// profile).
func (p *Profile) Unattributed() sim.Time {
	var sum sim.Time
	for i := range p.Procs {
		sum += p.Procs[i].Unattributed
	}
	return sum
}

// Share is a category's fraction of the cluster's total time
// (P × makespan); across all categories the shares sum to 1.
func (p *Profile) Share(c Category) float64 {
	if p.Elapsed <= 0 || len(p.Procs) == 0 {
		return 0
	}
	return float64(p.Total(c)) / (float64(p.Elapsed) * float64(len(p.Procs)))
}

// CheckConservation verifies the accountant's invariant: on every
// processor the categories (plus Unattributed) sum exactly to the
// makespan.
func (p *Profile) CheckConservation() error {
	for i := range p.Procs {
		if got := p.Procs[i].Total(); got != p.Elapsed {
			return fmt.Errorf("prof: proc %d attribution sums to %v, makespan is %v (off by %v)",
				i, got, p.Elapsed, p.Elapsed-got)
		}
	}
	return nil
}

// Text renders the cluster-wide breakdown as an aligned block: average
// time per processor and share of total processor-time per category.
func (p *Profile) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall attribution (makespan %v, %d procs):\n", p.Elapsed, len(p.Procs))
	procs := len(p.Procs)
	if procs == 0 {
		return b.String()
	}
	for _, c := range Categories() {
		tot := p.Total(c)
		if tot == 0 {
			continue
		}
		ms := float64(tot) / float64(procs) / float64(sim.Millisecond)
		fmt.Fprintf(&b, "  %-10s %12.3f ms/proc  %6.2f%%\n", c, ms, 100*p.Share(c))
	}
	if u := p.Unattributed(); u != 0 {
		fmt.Fprintf(&b, "  %-10s %12.3f ms/proc  (missing hook!)\n",
			"unattrib", float64(u)/float64(procs)/float64(sim.Millisecond))
	}
	return b.String()
}

// txSeg is one transmit-context reservation: the NIC is gap-limited on
// [inject, gapEnd) and DMA-limited on [gapEnd, busyEnd). Segments are
// created in injection order and never overlap (each send injects at or
// after the previous busyEnd).
type txSeg struct {
	inject, gapEnd, busyEnd sim.Time
	// retrans marks reliability-layer re-injections: blocked time they
	// explain is protocol overhead (CatRetransmit), not an ordinary gap
	// or bulk stall.
	retrans bool
}

// procState is one processor's accounting state during the run.
type procState struct {
	cat       [NumCategories]sim.Time
	advanced  sim.Time // every clock advance observed
	accounted sim.Time // every span attributed to a category

	waiting bool
	kind    am.WaitKind
	regions []splitc.SyncRegion

	segs       []txSeg
	lastInject sim.Time
}

func (ps *procState) charge(c Category, d sim.Time) {
	if d <= 0 {
		return
	}
	ps.cat[c] += d
	ps.accounted += d
}

// regionCategory maps the innermost active sync region to its account.
func (ps *procState) regionCategory() (Category, bool) {
	if n := len(ps.regions); n > 0 {
		if ps.regions[n-1] == splitc.RegionLock {
			return CatLock, true
		}
		return CatBarrier, true
	}
	return CatCompute, false
}

// baseCategory is the account for blocked time not explained by the
// transmit-context backlog: the innermost sync region wins, then the
// wait kind.
func (ps *procState) baseCategory() Category {
	if c, ok := ps.regionCategory(); ok {
		return c
	}
	switch ps.kind {
	case am.WaitWindow:
		return CatWindow
	case am.WaitBulk:
		return CatBulk
	case am.WaitBarrier:
		return CatBarrier
	case am.WaitLock:
		return CatLock
	default: // WaitData, WaitRead, WaitStore: a remote round trip.
		return CatLatency
	}
}

// idle attributes one blocked span [a, b). The span is first matched
// against the transmit-context reservations: gap-limited overlap (up to
// the last injection instant — later gap occupancy delays nobody) is a
// gap stall, DMA-limited overlap is bulk bandwidth, and everything else
// is the wait's base category. Exact: the charges partition [a, b).
func (ps *procState) idle(a, b sim.Time) {
	if b <= a {
		return
	}
	if !ps.waiting {
		// Not a communication wait: a timed sleep (the disk model).
		ps.charge(CatSleep, b-a)
		return
	}
	base := ps.baseCategory()
	cut := ps.lastInject
	if cut > b {
		cut = b
	}
	t := a
	for i := range ps.segs {
		s := ps.segs[i]
		if s.busyEnd <= t {
			continue
		}
		if t >= b {
			break
		}
		if s.inject > t {
			// Hole before this reservation: the NIC was free.
			h := s.inject
			if h > b {
				h = b
			}
			ps.charge(base, h-t)
			t = h
			if t >= b {
				break
			}
		}
		if s.retrans {
			// A retransmission's whole occupancy is protocol overhead —
			// the gap/bulk split and the last-injection cut do not apply.
			e := s.busyEnd
			if e > b {
				e = b
			}
			ps.charge(CatRetransmit, e-t)
			t = e
			if t >= b {
				break
			}
			continue
		}
		if t < s.gapEnd {
			e := s.gapEnd
			if e > b {
				e = b
			}
			if t < cut {
				g := e
				if g > cut {
					g = cut
				}
				ps.charge(CatGap, g-t)
				t = g
			}
			// Gap occupancy after the last injection paces no later send;
			// it falls back to the wait's own account.
			if t < e {
				ps.charge(base, e-t)
				t = e
			}
			if t >= b {
				break
			}
		}
		if t < s.busyEnd {
			e := s.busyEnd
			if e > b {
				e = b
			}
			ps.charge(CatBulk, e-t)
			t = e
		}
	}
	if t < b {
		ps.charge(base, b-t)
	}
	// Reservations ending by b can never overlap a later blocked span
	// (spans arrive in clock order), so drop them.
	n := 0
	for _, s := range ps.segs {
		if s.busyEnd > b {
			ps.segs[n] = s
			n++
		}
	}
	ps.segs = ps.segs[:n]
}

// Profiler implements am.Hooks, am.ClockHooks, and splitc.SyncHooks,
// accumulating a per-processor time breakdown as the run executes.
// Attach with splitc.World.Attach before Run, then call Snapshot after.
// A Profiler observes exactly one run and is not reusable.
type Profiler struct {
	am.NopHooks
	procs []procState
}

var (
	_ am.Hooks         = (*Profiler)(nil)
	_ am.ClockHooks    = (*Profiler)(nil)
	_ splitc.SyncHooks = (*Profiler)(nil)
)

// New returns a profiler for a procs-processor run.
func New(procs int) *Profiler {
	return &Profiler{procs: make([]procState, procs)}
}

// ClockAdvanced implements am.ClockHooks: idle spans are attributed
// immediately; explicit charges are only tallied (the charge hooks name
// them), so a missing hook shows up as Unattributed.
func (pf *Profiler) ClockAdvanced(proc int, kind sim.ClockKind, from, to sim.Time) {
	ps := &pf.procs[proc]
	ps.advanced += to - from
	switch kind {
	case sim.ClockCharge:
		return
	case sim.ClockStretch:
		// Fault-injected extension of an explicit charge: the base span
		// was named by its own hook; the stretch is fault delay.
		ps.charge(CatFaultDelay, to-from)
		return
	}
	ps.idle(from, to)
}

// ComputeCharged implements am.Hooks. Compute inside a Lock spin is the
// retry loop itself and is charged to lock wait.
func (pf *Profiler) ComputeCharged(proc int, from, to sim.Time) {
	ps := &pf.procs[proc]
	c := CatCompute
	if rc, ok := ps.regionCategory(); ok && rc == CatLock {
		c = CatLock
	}
	ps.charge(c, to-from)
}

// SendOverhead implements am.Hooks.
func (pf *Profiler) SendOverhead(proc int, from, to sim.Time) {
	pf.procs[proc].charge(CatOSend, to-from)
}

// RecvOverhead implements am.Hooks.
func (pf *Profiler) RecvOverhead(proc int, from, to sim.Time) {
	pf.procs[proc].charge(CatORecv, to-from)
}

// TxReserved implements am.Hooks, recording the NIC transmit-context
// occupancy later blocked spans are matched against.
func (pf *Profiler) TxReserved(proc int, inject, gapFree, busyFree sim.Time) {
	ps := &pf.procs[proc]
	ps.lastInject = inject
	ps.segs = append(ps.segs, txSeg{inject: inject, gapEnd: gapFree, busyEnd: busyFree})
}

// TxRetransmit implements am.Hooks: a reliability-layer re-injection
// occupies the transmit context like any send, but blocked time it
// explains is charged to the retransmit account.
func (pf *Profiler) TxRetransmit(proc int, inject, gapFree, busyFree sim.Time) {
	ps := &pf.procs[proc]
	ps.lastInject = inject
	ps.segs = append(ps.segs, txSeg{inject: inject, gapEnd: gapFree, busyEnd: busyFree, retrans: true})
}

// WaitBegin implements am.Hooks.
func (pf *Profiler) WaitBegin(proc int, kind am.WaitKind, at sim.Time) {
	ps := &pf.procs[proc]
	if ps.waiting {
		panic("prof: nested WaitBegin")
	}
	ps.waiting = true
	ps.kind = kind
}

// WaitEnd implements am.Hooks.
func (pf *Profiler) WaitEnd(proc int, kind am.WaitKind, at sim.Time) {
	ps := &pf.procs[proc]
	if !ps.waiting {
		panic("prof: WaitEnd without WaitBegin")
	}
	ps.waiting = false
}

// SyncEnter implements splitc.SyncHooks.
func (pf *Profiler) SyncEnter(proc int, r splitc.SyncRegion, at sim.Time) {
	ps := &pf.procs[proc]
	ps.regions = append(ps.regions, r)
}

// SyncExit implements splitc.SyncHooks.
func (pf *Profiler) SyncExit(proc int, r splitc.SyncRegion, at sim.Time) {
	ps := &pf.procs[proc]
	n := len(ps.regions)
	if n == 0 || ps.regions[n-1] != r {
		panic("prof: unbalanced SyncExit")
	}
	ps.regions = ps.regions[:n-1]
}

// Snapshot assembles the Profile of the completed run. Exit skew — the
// interval between a processor's release from the final implied barrier
// and the makespan — is charged to barrier wait, so every processor's
// breakdown sums exactly to the makespan.
func (pf *Profiler) Snapshot(w *splitc.World) *Profile {
	elapsed := w.Elapsed()
	eng := w.Engine()
	out := &Profile{Elapsed: elapsed, Procs: make([]ProcBreakdown, len(pf.procs))}
	for i := range pf.procs {
		ps := &pf.procs[i]
		b := ProcBreakdown{Proc: i, Time: ps.cat, Unattributed: ps.advanced - ps.accounted}
		if clock := eng.Proc(i).Clock(); elapsed > clock {
			b.Time[CatBarrier] += elapsed - clock
		}
		out.Procs[i] = b
	}
	return out
}

// Attached returns the profiler attached to a world (nil when none).
func Attached(w *splitc.World) *Profiler {
	for _, h := range w.Attached() {
		if pf, ok := h.(*Profiler); ok {
			return pf
		}
	}
	return nil
}
