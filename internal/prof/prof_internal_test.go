package prof

import (
	"testing"

	"repro/internal/am"
	"repro/internal/sim"
	"repro/internal/splitc"
)

// checkExact verifies the unit-level conservation property: every charge
// lands in accounted, and the categories sum to it.
func checkExact(t *testing.T, ps *procState) {
	t.Helper()
	var sum sim.Time
	for _, d := range ps.cat {
		sum += d
	}
	if sum != ps.accounted {
		t.Fatalf("categories sum to %v, accounted %v", sum, ps.accounted)
	}
}

func TestIdleSleep(t *testing.T) {
	ps := &procState{}
	ps.idle(0, 40)
	if ps.cat[CatSleep] != 40 {
		t.Fatalf("non-waiting idle charged %v to sleep, want 40", ps.cat[CatSleep])
	}
	checkExact(t, ps)
}

func TestIdleNoBacklog(t *testing.T) {
	ps := &procState{waiting: true, kind: am.WaitRead}
	ps.idle(100, 150)
	if ps.cat[CatLatency] != 50 {
		t.Fatalf("latency %v, want 50", ps.cat[CatLatency])
	}
	checkExact(t, ps)
}

// TestIdleSegmentSplit walks a wait across a hole, a gap interval split
// by the injection cut, a DMA interval, and a tail.
func TestIdleSegmentSplit(t *testing.T) {
	ps := &procState{waiting: true, kind: am.WaitData}
	ps.segs = []txSeg{{inject: 10, gapEnd: 20, busyEnd: 30}}
	ps.lastInject = 15 // a later injection happened at t=15
	ps.idle(0, 40)
	// [0,10) hole → latency; [10,15) gap before the cut → gap;
	// [15,20) gap after the cut → latency; [20,30) DMA → bulk;
	// [30,40) tail → latency.
	if got := ps.cat[CatGap]; got != 5 {
		t.Errorf("gap %v, want 5", got)
	}
	if got := ps.cat[CatBulk]; got != 10 {
		t.Errorf("bulk %v, want 10", got)
	}
	if got := ps.cat[CatLatency]; got != 25 {
		t.Errorf("latency %v, want 25", got)
	}
	checkExact(t, ps)
	if len(ps.segs) != 0 {
		t.Errorf("consumed segment not pruned: %v", ps.segs)
	}
}

// TestIdleBacklogQueue models a window stall against a queued transmit
// backlog: injections stretch into the future, so the whole overlap up
// to the last injection is a gap stall.
func TestIdleBacklogQueue(t *testing.T) {
	ps := &procState{waiting: true, kind: am.WaitWindow}
	ps.segs = []txSeg{
		{inject: 0, gapEnd: 6, busyEnd: 6},
		{inject: 6, gapEnd: 12, busyEnd: 12},
		{inject: 12, gapEnd: 18, busyEnd: 18},
	}
	ps.lastInject = 12
	ps.idle(2, 30)
	// [2,12) is gap backlog before the last injection; [12,18) is the
	// final message's own gap (paces nothing) plus [18,30) round-trip
	// wait → window.
	if got := ps.cat[CatGap]; got != 10 {
		t.Errorf("gap %v, want 10", got)
	}
	if got := ps.cat[CatWindow]; got != 18 {
		t.Errorf("window %v, want 18", got)
	}
	checkExact(t, ps)
}

// TestIdleSpansSplitAcrossWaits drives two separate waits over one
// reservation and checks the pieces still partition it.
func TestIdleSpansSplitAcrossWaits(t *testing.T) {
	ps := &procState{waiting: true, kind: am.WaitData}
	ps.segs = []txSeg{{inject: 0, gapEnd: 20, busyEnd: 28}}
	ps.lastInject = 16
	ps.idle(0, 10)
	if got := ps.cat[CatGap]; got != 10 {
		t.Fatalf("first span gap %v, want 10", got)
	}
	if len(ps.segs) != 1 {
		t.Fatalf("live segment pruned early")
	}
	ps.idle(10, 30)
	// [10,16) gap; [16,20) post-cut gap → latency; [20,28) bulk;
	// [28,30) tail → latency.
	if got := ps.cat[CatGap]; got != 16 {
		t.Errorf("gap %v, want 16", got)
	}
	if got := ps.cat[CatBulk]; got != 8 {
		t.Errorf("bulk %v, want 8", got)
	}
	if got := ps.cat[CatLatency]; got != 6 {
		t.Errorf("latency %v, want 6", got)
	}
	checkExact(t, ps)
}

// TestRegionOverride checks lock/barrier regions reclassify both waits
// and lock-spin compute.
func TestRegionOverride(t *testing.T) {
	pf := New(1)
	pf.SyncEnter(0, splitc.RegionLock, 0)
	pf.WaitBegin(0, am.WaitLock, 0)
	pf.ClockAdvanced(0, sim.ClockSpin, 0, 10)
	pf.WaitEnd(0, am.WaitLock, 10)
	pf.ComputeCharged(0, 10, 12)
	pf.ClockAdvanced(0, sim.ClockCharge, 10, 12)
	pf.SyncExit(0, splitc.RegionLock, 12)
	pf.ComputeCharged(0, 12, 15)
	pf.ClockAdvanced(0, sim.ClockCharge, 12, 15)
	ps := &pf.procs[0]
	if got := ps.cat[CatLock]; got != 12 {
		t.Errorf("lock %v, want 12 (10 wait + 2 spin compute)", got)
	}
	if got := ps.cat[CatCompute]; got != 3 {
		t.Errorf("compute %v, want 3", got)
	}
	if ps.advanced != ps.accounted {
		t.Errorf("advanced %v != accounted %v", ps.advanced, ps.accounted)
	}
}

func TestCheckConservationCatchesGaps(t *testing.T) {
	p := &Profile{Elapsed: 100, Procs: []ProcBreakdown{{Proc: 0}}}
	if err := p.CheckConservation(); err == nil {
		t.Fatal("empty breakdown under a 100ns makespan passed conservation")
	}
	p.Procs[0].Time[CatCompute] = 60
	p.Procs[0].Time[CatBarrier] = 40
	if err := p.CheckConservation(); err != nil {
		t.Fatalf("exact breakdown failed conservation: %v", err)
	}
}
