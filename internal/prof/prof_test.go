package prof_test

import (
	"errors"
	"testing"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/logp"
	"repro/internal/prof"
	"repro/internal/sim"
)

// TestConservationAllApps is the profiler's acceptance property: for
// every suite application, at baseline and under an overhead knob, every
// processor's attributed categories sum exactly to the makespan with
// nothing left unattributed — i.e. the accountant explains every
// nanosecond of every timeline.
func TestConservationAllApps(t *testing.T) {
	points := []struct {
		name   string
		params logp.Params
	}{
		{"baseline", logp.NOW()},
		{"o+25us", core.KnobO.Apply(logp.NOW(), 25)},
	}
	for _, a := range suite.All() {
		for _, pt := range points {
			t.Run(a.Name()+"/"+pt.name, func(t *testing.T) {
				res, err := a.Run(apps.Config{
					Procs:     8,
					Scale:     1.0 / 2048,
					Seed:      1,
					Params:    pt.params,
					Profile:   true,
					TimeLimit: 120 * sim.Second,
				})
				if errors.Is(err, sim.ErrTimeLimit) {
					t.Skipf("livelocked under %s (expected for lock-based apps at high overhead)", pt.name)
				}
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				p := res.Profile
				if p == nil {
					t.Fatal("Config.Profile set but Result.Profile is nil")
				}
				if p.Elapsed != res.Elapsed {
					t.Fatalf("profile makespan %v, run elapsed %v", p.Elapsed, res.Elapsed)
				}
				if len(p.Procs) != 8 {
					t.Fatalf("breakdowns for %d procs, want 8", len(p.Procs))
				}
				if err := p.CheckConservation(); err != nil {
					t.Fatal(err)
				}
				for i := range p.Procs {
					if u := p.Procs[i].Unattributed; u != 0 {
						t.Errorf("proc %d: %v unattributed (a charge path is missing its hook)", i, u)
					}
				}
			})
		}
	}
}

// TestProfileObservationOnly checks attaching the profiler does not
// perturb the simulation: elapsed time and message counts are identical
// with and without it.
func TestProfileObservationOnly(t *testing.T) {
	a, err := suite.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.Config{Procs: 8, Scale: 1.0 / 2048, Seed: 1, Params: logp.NOW()}
	plain, err := a.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profile = true
	profiled, err := a.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != profiled.Elapsed {
		t.Errorf("profiling changed elapsed: %v vs %v", plain.Elapsed, profiled.Elapsed)
	}
	if plain.Summary.AvgMsgsPerProc != profiled.Summary.AvgMsgsPerProc {
		t.Errorf("profiling changed message count: %g vs %g msgs/proc",
			plain.Summary.AvgMsgsPerProc, profiled.Summary.AvgMsgsPerProc)
	}
}

// TestConservationUnderFaults extends the acceptance property to a
// faulted machine: with a lossy wire under the reliability protocol, a
// mid-run processor stall, a slowdown window, and a link-delay episode
// all active, every nanosecond must still land in exactly one account —
// retransmission occupancy in CatRetransmit, injected processor time in
// CatFaultDelay — with nothing unattributed.
func TestConservationUnderFaults(t *testing.T) {
	for _, name := range []string{"radix", "nowsort"} {
		t.Run(name, func(t *testing.T) {
			a, err := suite.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			plan := &fault.Plan{
				Drops:      []fault.DropRule{{Match: fault.Any(), Prob: 0.01}},
				ProcDelays: []fault.ProcDelay{{Proc: 3, At: 10 * sim.Millisecond, Extra: sim.FromMicros(500)}},
				Slowdowns:  []fault.SlowdownWindow{{Proc: 1, From: 0, To: 20 * sim.Millisecond, Factor: 1.3}},
				LinkDelays: []fault.LinkDelayWindow{{Match: fault.Any(), From: 0, To: 5 * sim.Millisecond, Extra: sim.FromMicros(20)}},
			}
			res, err := a.Run(apps.Config{
				Procs:       8,
				Scale:       1.0 / 2048,
				Seed:        1,
				Params:      logp.NOW(),
				Profile:     true,
				TimeLimit:   120 * sim.Second,
				FaultPlan:   plan,
				Reliability: am.Reliability{Enabled: true},
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			p := res.Profile
			if p == nil {
				t.Fatal("Config.Profile set but Result.Profile is nil")
			}
			if err := p.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			for i := range p.Procs {
				if u := p.Procs[i].Unattributed; u != 0 {
					t.Errorf("proc %d: %v unattributed under faults", i, u)
				}
			}
			if res.Stats.WireDrops > 0 && p.Share(prof.CatRetransmit) == 0 {
				t.Error("wire dropped messages but no time landed in the retransmit account")
			}
			if p.Share(prof.CatFaultDelay) == 0 {
				t.Error("processor faults injected but no time landed in the fault-delay account")
			}
		})
	}
}
