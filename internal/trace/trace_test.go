package trace

import (
	"strings"
	"testing"

	"repro/internal/am"
	"repro/internal/logp"
	"repro/internal/sim"
	"repro/internal/splitc"
)

// runTraced runs a small SPMD exchange with a recorder attached.
func runTraced(t *testing.T, rec *Recorder) *splitc.World {
	t.Helper()
	w, err := splitc.NewWorld(4, logp.NOW(), 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(rec)
	var cells [4]splitc.GPtr
	err = w.Run(func(p *splitc.Proc) {
		cells[p.ID()] = p.Alloc(1)
		p.Barrier()
		for i := 0; i < 10; i++ {
			p.WriteWord(cells[(p.ID()+1)%4], uint64(i))
			p.ComputeUs(5)
		}
		p.Barrier()
		p.ReadWord(cells[(p.ID()+2)%4])
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRecorderCapturesTraffic(t *testing.T) {
	rec := &Recorder{}
	w := runTraced(t, rec)
	sent, handled, bulk, reads := rec.Counts()
	if sent == 0 || handled == 0 {
		t.Fatalf("no events recorded: sent=%d handled=%d", sent, handled)
	}
	// Every handled event corresponds to a sent one.
	if handled != sent {
		t.Errorf("sent %d != handled %d", sent, handled)
	}
	if bulk != 0 {
		t.Errorf("unexpected bulk events: %d", bulk)
	}
	if reads == 0 {
		t.Error("the ReadWord round trips should appear as read sends")
	}
	// The recorder's view agrees with the machine's own stats.
	if sent != w.Stats().TotalSent() {
		t.Errorf("recorder sent %d, stats %d", sent, w.Stats().TotalSent())
	}
	lo, hi := rec.Span()
	if hi <= lo {
		t.Errorf("span [%v, %v]", lo, hi)
	}
}

func TestTimelineRendering(t *testing.T) {
	rec := &Recorder{}
	runTraced(t, rec)
	tl := rec.Timeline(4, 40)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 5 { // header + 4 lanes
		t.Fatalf("timeline has %d lines:\n%s", len(lines), tl)
	}
	for _, lane := range lines[1:] {
		if !strings.Contains(lane, "|") {
			t.Errorf("malformed lane %q", lane)
		}
	}
	// Every processor did work, so no lane should be entirely blank.
	for i, lane := range lines[1:] {
		body := lane[strings.Index(lane, "|")+1 : strings.LastIndex(lane, "|")]
		if strings.TrimSpace(body) == "" {
			t.Errorf("lane %d is empty", i)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	rec := &Recorder{}
	if got := rec.Timeline(4, 10); got != "(no events)\n" {
		t.Errorf("empty timeline = %q", got)
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := &Recorder{Limit: 5}
	runTraced(t, rec)
	if len(rec.Events) != 5 {
		t.Errorf("events = %d, want capped at 5", len(rec.Events))
	}
	if rec.Dropped == 0 {
		t.Error("expected dropped events")
	}
	if !strings.Contains(rec.Timeline(4, 10), "dropped") {
		t.Error("timeline should mention drops")
	}
}

func TestSample(t *testing.T) {
	rec := &Recorder{}
	runTraced(t, rec)
	thin := rec.Sample(3)
	want := (len(rec.Events) + 2) / 3
	if len(thin.Events) != want {
		t.Errorf("sampled %d, want %d", len(thin.Events), want)
	}
	if thin.Sample(0).Events == nil {
		t.Error("Sample(0) should clamp, not crash")
	}
}

func TestSampleKeepsLimitAndDropped(t *testing.T) {
	rec := &Recorder{Limit: 5}
	runTraced(t, rec)
	thin := rec.Sample(2)
	if thin.Limit != rec.Limit || thin.Dropped != rec.Dropped {
		t.Errorf("Sample lost truncation state: limit %d->%d, dropped %d->%d",
			rec.Limit, thin.Limit, rec.Dropped, thin.Dropped)
	}
	if !strings.Contains(thin.Timeline(4, 10), "dropped") {
		t.Error("thinned timeline should still mention the original drops")
	}
}

func TestHooksDoNotPerturbTiming(t *testing.T) {
	run := func(h am.Hooks) sim.Time {
		w, err := splitc.NewWorld(4, logp.NOW(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if h != nil {
			w.Attach(h)
		}
		var cells [4]splitc.GPtr
		if err := w.Run(func(p *splitc.Proc) {
			cells[p.ID()] = p.Alloc(1)
			p.Barrier()
			for i := 0; i < 20; i++ {
				p.WriteWord(cells[(p.ID()+1)%4], uint64(i))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	plain := run(nil)
	traced := run(&Recorder{})
	if plain != traced {
		t.Errorf("attached hooks changed virtual timing: %v vs %v", plain, traced)
	}
}
