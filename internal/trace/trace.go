// Package trace records per-message event timelines from a simulated run
// and renders them as per-processor activity lanes — the observability
// layer a simulator library needs when a sensitivity curve looks wrong
// and the question becomes "what was processor 7 doing at t=40ms?".
package trace

import (
	"fmt"
	"strings"

	"repro/internal/am"
	"repro/internal/sim"
)

// Event is one recorded message event.
type Event struct {
	At      sim.Time
	Src     int
	Dst     int
	Class   am.Class
	Bulk    bool
	Handled bool // false = sent, true = handler completed
}

// Recorder buffers every message event. It embeds am.NopHooks, so it
// implements the full am.Hooks interface while only caring about the two
// message events; attach with splitc.World.Attach(rec) (or
// apps.Config.Hooks) and read after the run ends. Memory is ~48 bytes
// per event: trace short runs, or use Sample to thin long ones.
type Recorder struct {
	am.NopHooks

	Events []Event
	// Limit, when nonzero, caps the number of buffered events; further
	// events are dropped and counted in Dropped.
	Limit   int
	Dropped int64
}

var _ am.Hooks = (*Recorder)(nil)

// MessageSent implements am.Hooks.
func (r *Recorder) MessageSent(src, dst int, class am.Class, bulk bool, at sim.Time) {
	r.add(Event{At: at, Src: src, Dst: dst, Class: class, Bulk: bulk})
}

// MessageHandled implements am.Hooks.
func (r *Recorder) MessageHandled(src, dst int, class am.Class, bulk bool, at sim.Time) {
	r.add(Event{At: at, Src: src, Dst: dst, Class: class, Bulk: bulk, Handled: true})
}

func (r *Recorder) add(e Event) {
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, e)
}

// Span reports the time range covered by the recorded events.
func (r *Recorder) Span() (sim.Time, sim.Time) {
	if len(r.Events) == 0 {
		return 0, 0
	}
	lo, hi := r.Events[0].At, r.Events[0].At
	for _, e := range r.Events {
		if e.At < lo {
			lo = e.At
		}
		if e.At > hi {
			hi = e.At
		}
	}
	return lo, hi
}

// Timeline renders per-processor activity lanes: the run is divided into
// `cols` equal time buckets and each cell shows the send activity of one
// processor in one bucket, shaded by message count (receive-side handler
// events shade the same scale). One line per processor.
func (r *Recorder) Timeline(procs, cols int) string {
	if cols < 1 || procs < 1 || len(r.Events) == 0 {
		return "(no events)\n"
	}
	lo, hi := r.Span()
	span := hi - lo + 1
	counts := make([][]int, procs)
	for i := range counts {
		counts[i] = make([]int, cols)
	}
	mx := 0
	for _, e := range r.Events {
		lane := e.Src
		if e.Handled {
			lane = e.Dst
		}
		if lane < 0 || lane >= procs {
			continue
		}
		b := int(int64(e.At-lo) * int64(cols) / int64(span))
		if b >= cols {
			b = cols - 1
		}
		counts[lane][b]++
		if counts[lane][b] > mx {
			mx = counts[lane][b]
		}
	}
	shades := []rune(" .:-=+*#%@█")
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (%d buckets, max %d events/cell)\n", lo, hi, cols, mx)
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "p%-3d |", p)
		for c := 0; c < cols; c++ {
			idx := 0
			if mx > 0 && counts[p][c] > 0 {
				idx = 1 + (len(shades)-2)*counts[p][c]/mx
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteRune(shades[idx])
		}
		b.WriteString("|\n")
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "(%d events dropped beyond the %d-event limit)\n", r.Dropped, r.Limit)
	}
	return b.String()
}

// Counts summarizes the recorded events by class.
func (r *Recorder) Counts() (sent, handled, bulk, reads int64) {
	for _, e := range r.Events {
		if e.Handled {
			handled++
			continue
		}
		sent++
		if e.Bulk {
			bulk++
		}
		if e.Class == am.ClassRead {
			reads++
		}
	}
	return
}

// Sample returns a thinned copy keeping every k-th event (k >= 1). The
// copy keeps Limit and Dropped, so a thinned timeline still reports that
// the original recording was truncated.
func (r *Recorder) Sample(k int) *Recorder {
	if k < 1 {
		k = 1
	}
	out := &Recorder{Limit: r.Limit, Dropped: r.Dropped}
	for i, e := range r.Events {
		if i%k == 0 {
			out.Events = append(out.Events, e)
		}
	}
	return out
}
