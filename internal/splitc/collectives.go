package splitc

import (
	"fmt"

	"repro/internal/am"
)

// This file holds the larger collectives of the Split-C library surface:
// exclusive prefix scan, gather to a root, and a personalized all-to-all.
// The benchmark applications mostly hand-roll their communication (as the
// paper's Split-C programs did), but downstream users of the library
// routinely want these.

// scanTag and the gather/all-to-all tags address the blocks the world's
// tag-space allocator laid out after the selected all-reduce and
// broadcast algorithms' blocks (see coll.go).
func (w *World) scanTag(r int) int { return w.sel.scanBase + r }
func (w *World) gatherTag() int    { return w.sel.gatherBase }
func (w *World) allToAllTag() int  { return w.sel.a2aBase }

// ScanAdd returns the exclusive prefix sum of val across processors:
// processor i receives the sum of processors 0..i-1's values (0 on
// processor 0). Hillis-Steele over ⌈log2 P⌉ rounds of short messages.
func (p *Proc) ScanAdd(val uint64) uint64 {
	w := p.w
	me := p.ID()
	P := p.P()
	if P == 1 {
		return 0
	}
	inclusive := val
	for r := 0; 1<<r < P; r++ {
		dist := 1 << r
		if me+dist < P {
			p.sendColl(me+dist, w.scanTag(r), inclusive)
		}
		if me-dist >= 0 {
			inclusive += p.recvColl(w.scanTag(r))
		}
	}
	return inclusive - val
}

// Gather collects one word from every processor at root, returning the
// full vector there (nil elsewhere). Leaves write directly into the
// root's landing area; O(P) messages but a single round trip of depth.
func (p *Proc) Gather(root int, val uint64) []uint64 {
	w := p.w
	me := p.ID()
	P := p.P()
	if root < 0 || root >= P {
		panic(fmt.Sprintf("splitc: Gather root %d out of range", root))
	}
	cs := w.collOf(root)
	tag := w.gatherTag()
	if me == root {
		// Wait for P-1 remote words; values arrive tagged with the sender
		// in the high bits so the vector assembles in processor order.
		// The terminal barrier separates episodes, so every queued record
		// belongs to this one (senders may race ahead of this call, which
		// is why the queue is drained rather than windowed).
		out := make([]uint64, P)
		out[me] = val
		need := P - 1
		p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return len(cs.vals[tag]) >= need }, "splitc: gather")
		if len(cs.vals[tag]) != need {
			panic("splitc: gather arity")
		}
		for _, rec := range cs.vals[tag] {
			out[rec>>56] = rec & (1<<56 - 1)
		}
		cs.vals[tag] = nil
		p.Barrier()
		return out
	}
	if val >= 1<<56 {
		panic("splitc: Gather values must fit in 56 bits")
	}
	p.sendColl(root, tag, uint64(me)<<56|val)
	p.Barrier()
	return nil
}

// AllToAll performs a personalized exchange: each processor provides one
// word per destination (len(vals) == P) and receives one word from every
// source, in source order. Short write messages tagged with the sender.
func (p *Proc) AllToAll(vals []uint64) []uint64 {
	w := p.w
	me := p.ID()
	P := p.P()
	if len(vals) != P {
		panic(fmt.Sprintf("splitc: AllToAll needs %d values, got %d", P, len(vals)))
	}
	out := make([]uint64, P)
	out[me] = vals[me]
	received := make([]bool, P)
	received[me] = true
	need := P - 1
	tag := w.allToAllTag()
	cs := w.collOf(me)
	for dst := 0; dst < P; dst++ {
		if dst == me {
			continue
		}
		if vals[dst] >= 1<<56 {
			panic("splitc: AllToAll values must fit in 56 bits")
		}
		p.sendColl(dst, tag, uint64(me)<<56|vals[dst])
	}
	// The terminal barrier separates episodes; drain the whole queue.
	p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return len(cs.vals[tag]) >= need }, "splitc: all-to-all")
	if len(cs.vals[tag]) != need {
		panic("splitc: all-to-all arity")
	}
	for _, rec := range cs.vals[tag] {
		src := rec >> 56
		if received[src] {
			panic("splitc: duplicate all-to-all record")
		}
		received[src] = true
		out[src] = rec & (1<<56 - 1)
	}
	cs.vals[tag] = nil
	// A barrier separates episodes so no next-round record can land in
	// this round's window.
	p.Barrier()
	return out
}

// classifySync keeps the extended collectives on sync-class traffic like
// the rest of the synchronization layer (documentational: sendColl
// already uses am.ClassSync).
var _ = am.ClassSync
