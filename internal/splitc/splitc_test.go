package splitc

import (
	"testing"
	"testing/quick"

	"repro/internal/logp"
	"repro/internal/sim"
)

func newTestWorld(t *testing.T, p int) *World {
	t.Helper()
	w, err := NewWorld(p, logp.NOW(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestReadWriteRemote(t *testing.T) {
	w := newTestWorld(t, 4)
	var ptrs [4]GPtr
	err := w.Run(func(p *Proc) {
		ptrs[p.ID()] = p.Alloc(8)
		for i, s := range p.Local(ptrs[p.ID()], 8) {
			_ = s
			p.Local(ptrs[p.ID()], 8)[i] = uint64(p.ID()*100 + i)
		}
		p.Barrier()
		// Every proc reads word 3 of every other proc.
		for q := 0; q < p.P(); q++ {
			got := p.ReadWord(ptrs[q].Add(3))
			if got != uint64(q*100+3) {
				t.Errorf("proc %d read %d from proc %d, want %d", p.ID(), got, q, q*100+3)
			}
		}
		p.Barrier()
		// Every proc writes into its right neighbor.
		right := (p.ID() + 1) % p.P()
		p.WriteWord(ptrs[right].Add(7), uint64(1000+p.ID()))
		p.Barrier()
		left := (p.ID() - 1 + p.P()) % p.P()
		if got := p.Local(ptrs[p.ID()], 8)[7]; got != uint64(1000+left) {
			t.Errorf("proc %d word 7 = %d, want %d", p.ID(), got, 1000+left)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalFastPaths(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) {
		g := p.Alloc(4)
		before := p.Now()
		p.WriteWord(g, 42)
		if got := p.ReadWord(g); got != 42 {
			t.Errorf("local read = %d, want 42", got)
		}
		if p.Now() != before {
			t.Errorf("local read/write cost virtual time: %v", p.Now()-before)
		}
		if got := p.FetchAdd(g, 5); got != 42 {
			t.Errorf("local FetchAdd returned %d, want 42", got)
		}
		if got := p.ReadWord(g); got != 47 {
			t.Errorf("after FetchAdd = %d, want 47", got)
		}
		if !p.TryLock(g.Add(1)) {
			t.Error("local TryLock on free lock failed")
		}
		if p.TryLock(g.Add(1)) {
			t.Error("local TryLock on held lock succeeded")
		}
		p.Unlock(g.Add(1))
		if !p.TryLock(g.Add(1)) {
			t.Error("local TryLock after Unlock failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 5, 8, 16, 32} {
		w := newTestWorld(t, procs)
		phase := make([]int, procs)
		err := w.Run(func(p *Proc) {
			for round := 0; round < 5; round++ {
				// Skewed work before the barrier.
				p.ComputeUs(float64((p.ID()*37+round*13)%97) + 1)
				phase[p.ID()] = round
				p.Barrier()
				// After the barrier everyone must have finished this round.
				for q := 0; q < p.P(); q++ {
					if phase[q] < round {
						t.Errorf("P=%d: proc %d at round %d saw proc %d still in %d",
							procs, p.ID(), round, q, phase[q])
					}
				}
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
	}
}

func TestBarrierImpliesStoreCompletion(t *testing.T) {
	w := newTestWorld(t, 8)
	var target GPtr
	err := w.Run(func(p *Proc) {
		if p.ID() == 0 {
			target = p.Alloc(8)
		}
		p.Barrier()
		p.WriteWord(target.Add(p.ID()), uint64(p.ID()+1))
		p.Barrier()
		// All stores must be visible now.
		if p.ID() == 0 {
			loc := p.Local(target, 8)
			for i, v := range loc {
				if v != uint64(i+1) {
					t.Errorf("word %d = %d, want %d", i, v, i+1)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierCountsEpisodes(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 explicit + 1 implicit final barrier.
	if got := w.Stats().Barriers; got != 4 {
		t.Errorf("barrier count = %d, want 4", got)
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 7, 16, 32} {
		w := newTestWorld(t, procs)
		err := w.Run(func(p *Proc) {
			want := uint64(procs * (procs - 1) / 2)
			for round := 0; round < 3; round++ {
				got := p.AllReduceSum(uint64(p.ID()))
				if got != want {
					t.Errorf("P=%d round %d: proc %d AllReduceSum = %d, want %d",
						procs, round, p.ID(), got, want)
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	w := newTestWorld(t, 9)
	err := w.Run(func(p *Proc) {
		got := p.AllReduceMax(uint64((p.ID() * 31) % 9))
		if got != 8 {
			t.Errorf("proc %d AllReduceMax = %d, want 8", p.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	for _, procs := range []int{1, 2, 5, 8, 32} {
		w := newTestWorld(t, procs)
		err := w.Run(func(p *Proc) {
			for root := 0; root < p.P(); root++ {
				val := uint64(0)
				if p.ID() == root {
					val = uint64(root*71 + 13)
				}
				got := p.Broadcast(root, val)
				if want := uint64(root*71 + 13); got != want {
					t.Errorf("P=%d root %d: proc %d got %d, want %d", procs, root, p.ID(), got, want)
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
	}
}

func TestFetchAddRemote(t *testing.T) {
	w := newTestWorld(t, 8)
	var counter GPtr
	err := w.Run(func(p *Proc) {
		if p.ID() == 0 {
			counter = p.Alloc(1)
		}
		p.Barrier()
		// Every proc claims 10 distinct tickets.
		seen := make(map[uint64]bool)
		for i := 0; i < 10; i++ {
			v := p.FetchAdd(counter, 1)
			if seen[v] {
				t.Errorf("proc %d got duplicate ticket %d", p.ID(), v)
			}
			seen[v] = true
		}
		p.Barrier()
		if p.ID() == 0 {
			if got := p.ReadWord(counter); got != 80 {
				t.Errorf("final counter = %d, want 80", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	w := newTestWorld(t, 8)
	var lock, data GPtr
	err := w.Run(func(p *Proc) {
		if p.ID() == 0 {
			lock = p.Alloc(1)
			data = p.Alloc(1)
		}
		p.Barrier()
		for i := 0; i < 5; i++ {
			p.Lock(lock)
			// Critical section: unsynchronized read-modify-write, with a
			// compute delay that would expose races to other processors.
			v := p.ReadWord(data)
			p.ComputeUs(20)
			p.WriteWordSync(data, v+1)
			p.Unlock(lock)
			p.StoreSync()
		}
		p.Barrier()
		if p.ID() == 0 {
			if got := p.ReadWord(data); got != 40 {
				t.Errorf("counter under lock = %d, want 40", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBulkPutGet(t *testing.T) {
	w := newTestWorld(t, 4)
	var ptrs [4]GPtr
	const n = 1500 // ~3 fragments of 512 words
	err := w.Run(func(p *Proc) {
		ptrs[p.ID()] = p.Alloc(n)
		p.Barrier()
		// Put a pattern into the right neighbor.
		right := (p.ID() + 1) % p.P()
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(p.ID()<<20 + i)
		}
		p.BulkPut(ptrs[right], vals)
		p.Barrier()
		// Get it back from our own heap via a remote round trip from the
		// left neighbor's perspective.
		left := (p.ID() - 1 + p.P()) % p.P()
		got := p.BulkGet(ptrs[p.ID()], n)
		for i := range got {
			if got[i] != uint64(left<<20+i) {
				t.Fatalf("proc %d word %d = %d, want %d", p.ID(), i, got[i], left<<20+i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBulkGetRemoteTiming(t *testing.T) {
	// A remote 512-word (4 KB) get must cost at least the bulk DMA time.
	w := newTestWorld(t, 2)
	var g GPtr
	err := w.Run(func(p *Proc) {
		if p.ID() == 1 {
			g = p.Alloc(512)
		}
		p.Barrier()
		if p.ID() == 0 {
			start := p.Now()
			p.BulkGet(g, 512)
			elapsed := p.Now() - start
			min := w.Machine().Params().BulkTime(4096)
			if elapsed < min {
				t.Errorf("remote 4KB get took %v, below DMA floor %v", elapsed, min)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGPtrPackUnpack(t *testing.T) {
	f := func(proc int16, off int32) bool {
		if off < 0 {
			off = -off
		}
		g := GPtr{Proc: int32(proc), Off: off}
		return UnpackGPtr(g.Pack()) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsClassification(t *testing.T) {
	w := newTestWorld(t, 2)
	var g GPtr
	err := w.Run(func(p *Proc) {
		if p.ID() == 1 {
			g = p.Alloc(64)
		}
		p.Barrier()
		if p.ID() == 0 {
			p.ReadWord(g)             // 2 read msgs (req+reply)
			p.WriteWord(g, 1)         // 1 write msg
			p.BulkGet(g, 64)          // 1 read req + 1 bulk read reply
			p.BulkPut(g, []uint64{1}) // 1 bulk write
			p.StoreSync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if got := s.TotalReads(); got != 4 {
		t.Errorf("read messages = %d, want 4", got)
	}
	if got := s.TotalBulk(); got != 2 {
		t.Errorf("bulk messages = %d, want 2", got)
	}
	if got := s.TotalBulkBytes(); got != 64*8+8 {
		t.Errorf("bulk bytes = %d, want %d", got, 64*8+8)
	}
}

func TestElapsedAndDeterminism(t *testing.T) {
	run := func() sim.Time {
		w := newTestWorld(t, 8)
		err := w.Run(func(p *Proc) {
			g := p.Alloc(1)
			p.Barrier()
			for i := 0; i < 20; i++ {
				p.WriteWord(GPtr{Proc: int32((p.ID() + 1) % 8), Off: g.Off}, uint64(i))
				p.ComputeUs(3)
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic elapsed: %v vs %v", a, b)
	}
	if run() == 0 {
		t.Error("elapsed = 0")
	}
}

func TestOverheadSlowsWorld(t *testing.T) {
	// Sanity for the whole stack: the same program under +100 µs overhead
	// must run much slower.
	elapsed := func(deltaO float64) sim.Time {
		params := logp.NOW()
		params.DeltaO = sim.FromMicros(deltaO)
		w, err := NewWorld(4, params, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(p *Proc) {
			g := p.Alloc(1)
			p.Barrier()
			right := (p.ID() + 1) % p.P()
			for i := 0; i < 50; i++ {
				p.WriteWord(GPtr{Proc: int32(right), Off: g.Off}, uint64(i))
			}
			p.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	base, slow := elapsed(0), elapsed(100)
	if slow < 10*base {
		t.Errorf("Δo=100µs slowdown = %.1fx, want >10x (base %v, slow %v)",
			float64(slow)/float64(base), base, slow)
	}
}

func TestRunError(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) {
		if p.ID() == 0 {
			panic("app bug")
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("expected error from panicking body")
	}
}

func TestTimeLimitWorld(t *testing.T) {
	w, err := NewWorldLimit(2, logp.NOW(), 1, 100*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) {
		for {
			p.ComputeUs(10)
			p.Poll()
		}
	})
	if err == nil {
		t.Fatal("expected time-limit error")
	}
}
