package splitc

import (
	"testing"
	"testing/quick"

	"repro/internal/logp"
)

func TestScanAdd(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 5, 8, 16, 32} {
		w := newTestWorld(t, procs)
		err := w.Run(func(p *Proc) {
			for round := 0; round < 3; round++ {
				val := uint64(p.ID()*10 + round)
				got := p.ScanAdd(val)
				var want uint64
				for q := 0; q < p.ID(); q++ {
					want += uint64(q*10 + round)
				}
				if got != want {
					t.Errorf("P=%d round %d: proc %d ScanAdd = %d, want %d",
						procs, round, p.ID(), got, want)
				}
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
	}
}

func TestGather(t *testing.T) {
	for _, procs := range []int{1, 2, 5, 8} {
		w := newTestWorld(t, procs)
		err := w.Run(func(p *Proc) {
			for root := 0; root < p.P(); root++ {
				got := p.Gather(root, uint64(p.ID()*7+1))
				if p.ID() == root {
					if len(got) != p.P() {
						t.Fatalf("gather length %d", len(got))
					}
					for q, v := range got {
						if v != uint64(q*7+1) {
							t.Errorf("P=%d root %d: got[%d] = %d, want %d", procs, root, q, v, q*7+1)
						}
					}
				} else if got != nil {
					t.Errorf("non-root received a vector")
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
	}
}

func TestAllToAll(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 9} {
		w := newTestWorld(t, procs)
		err := w.Run(func(p *Proc) {
			for round := 0; round < 2; round++ {
				vals := make([]uint64, p.P())
				for dst := range vals {
					vals[dst] = uint64(p.ID()*100 + dst + round)
				}
				got := p.AllToAll(vals)
				for src, v := range got {
					if want := uint64(src*100 + p.ID() + round); v != want {
						t.Errorf("P=%d round %d: proc %d got[%d] = %d, want %d",
							procs, round, p.ID(), src, v, want)
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
	}
}

// Property: ScanAdd of all-equal values yields id*val; AllReduceSum agrees
// with the scan's total.
func TestScanReduceConsistencyProperty(t *testing.T) {
	f := func(valRaw uint16, procsRaw uint8) bool {
		procs := int(procsRaw)%7 + 1
		val := uint64(valRaw)
		w, err := NewWorld(procs, logp.NOW(), 3)
		if err != nil {
			return false
		}
		ok := true
		err = w.Run(func(p *Proc) {
			scan := p.ScanAdd(val)
			if scan != uint64(p.ID())*val {
				ok = false
			}
			total := p.AllReduceSum(val)
			if total != uint64(procs)*val {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMixedCollectivesInterleave(t *testing.T) {
	// Different collectives back-to-back must not cross-contaminate tags.
	w := newTestWorld(t, 8)
	err := w.Run(func(p *Proc) {
		me := uint64(p.ID())
		if got := p.AllReduceSum(1); got != 8 {
			t.Errorf("allreduce = %d", got)
		}
		if got := p.ScanAdd(1); got != me {
			t.Errorf("scan = %d, want %d", got, me)
		}
		if got := p.Broadcast(3, me*11); got != 33 {
			t.Errorf("broadcast = %d", got)
		}
		vec := p.Gather(0, me)
		if p.ID() == 0 && vec[7] != 7 {
			t.Errorf("gather[7] = %d", vec[7])
		}
		all := p.AllToAll(make([]uint64, 8))
		if all[3] != 0 {
			t.Errorf("alltoall = %v", all)
		}
		if got := p.AllReduceMax(me); got != 7 {
			t.Errorf("allreducemax = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
