package splitc

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/logp"
	"repro/internal/sim"
	"repro/internal/splitc/tune"
)

// collPair runs the same program as a blocking body and a continuation
// task on twin worlds built with the given selection, checks the two
// runtimes agree on results, message counts, barriers, and makespan, and
// returns the per-processor results.
func collPair(t *testing.T, p int, sel Collectives, body func(*Proc, []uint64), mk func([]uint64) func(int) Task) []uint64 {
	t.Helper()
	wb, err := NewWorldCfg(Config{Procs: p, Params: logp.NOW(), Seed: 42, Collectives: sel})
	if err != nil {
		t.Fatal(err)
	}
	resB := make([]uint64, p)
	if err := wb.Run(func(pr *Proc) { body(pr, resB) }); err != nil {
		t.Fatalf("blocking: %v", err)
	}

	wc, err := NewWorldCfg(Config{Procs: p, Params: logp.NOW(), Seed: 42, Collectives: sel})
	if err != nil {
		t.Fatal(err)
	}
	resC := make([]uint64, p)
	if err := wc.RunTasks(mk(resC)); err != nil {
		t.Fatalf("continuation: %v", err)
	}

	for i := range resB {
		if resB[i] != resC[i] {
			t.Errorf("proc %d: blocking result %d, continuation %d", i, resB[i], resC[i])
		}
	}
	if sb, sc := wb.Stats().TotalSent(), wc.Stats().TotalSent(); sb != sc {
		t.Errorf("blocking sent %d messages, continuation %d", sb, sc)
	}
	if bb, bc := wb.Stats().Barriers, wc.Stats().Barriers; bb != bc {
		t.Errorf("blocking %d barriers, continuation %d", bb, bc)
	}
	if eb, ec := wb.Elapsed(), wc.Elapsed(); eb != ec {
		t.Errorf("blocking elapsed %v, continuation elapsed %v", eb, ec)
	}
	return resB
}

// ----- barrier program: write to the right neighbor, barrier, read the
// value the left neighbor's (store-completed) write left behind -----

const barrierCheckEpisodes = 3

func barrierCheckBlocking(p *Proc, out []uint64) {
	me, P := p.ID(), p.P()
	g := p.Alloc(1)
	var sum uint64
	for ep := 0; ep < barrierCheckEpisodes; ep++ {
		p.WriteWord(GPtr{Proc: int32((me + 1) % P), Off: g.Off}, uint64(me*10+ep))
		p.Barrier()
		sum = sum*31 + p.Local(g, 1)[0]
	}
	out[me] = sum
}

type barrierCheckTask struct {
	out []uint64
	g   GPtr
	ep  int
	sum uint64
	pc  int
}

func (k *barrierCheckTask) Step(t *TProc) (sim.PollableWait, bool) {
	me, P := t.ID(), t.P()
	for {
		switch k.pc {
		case 0:
			k.g = t.Alloc(1)
			k.pc = 1
		case 1:
			if k.ep >= barrierCheckEpisodes {
				k.out[me] = k.sum
				return nil, true
			}
			if wt := t.WriteWordT(GPtr{Proc: int32((me + 1) % P), Off: k.g.Off}, uint64(me*10+k.ep)); wt != nil {
				return wt, false
			}
			k.pc = 2
		case 2:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.sum = k.sum*31 + t.Local(k.g, 1)[0]
			k.ep++
			k.pc = 1
		}
	}
}

func barrierCheckWant(me, P int) uint64 {
	left := (me - 1 + P) % P
	var sum uint64
	for ep := 0; ep < barrierCheckEpisodes; ep++ {
		sum = sum*31 + uint64(left*10+ep)
	}
	return sum
}

// ----- broadcast program: rotate the root, barrier-separate episodes -----

const bcastCheckEpisodes = 3

func bcastCheckBlocking(p *Proc, out []uint64) {
	me, P := p.ID(), p.P()
	var sum uint64
	for ep := 0; ep < bcastCheckEpisodes; ep++ {
		root := ep % P
		v := p.Broadcast(root, uint64(me*100+ep))
		sum = sum*31 + v
		p.Barrier()
	}
	out[me] = sum
}

type bcastCheckTask struct {
	out []uint64
	ep  int
	sum uint64
	pc  int
}

func (k *bcastCheckTask) Step(t *TProc) (sim.PollableWait, bool) {
	me, P := t.ID(), t.P()
	for {
		switch k.pc {
		case 0:
			if k.ep >= bcastCheckEpisodes {
				k.out[me] = k.sum
				return nil, true
			}
			v, wt := t.BroadcastT(k.ep%P, uint64(me*100+k.ep))
			if wt != nil {
				return wt, false
			}
			k.sum = k.sum*31 + v
			k.pc = 1
		case 1:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.ep++
			k.pc = 0
		}
	}
}

func bcastCheckWant(P int) uint64 {
	var sum uint64
	for ep := 0; ep < bcastCheckEpisodes; ep++ {
		root := ep % P
		sum = sum*31 + uint64(root*100+ep)
	}
	return sum
}

// ----- all-reduce program: alternating operators, back-to-back episodes
// (no separating barrier — the algorithms are self-separating, and the
// butterfly's two-deep operand ring is exactly what this stresses) -----

const arCheckEpisodes = 4

func arCheckBlocking(p *Proc, out []uint64) {
	me := p.ID()
	var sum uint64
	for ep := 0; ep < arCheckEpisodes; ep++ {
		op := OpSum
		if ep%2 == 1 {
			op = OpMax
		}
		v := p.AllReduceOp(uint64(me+1)*uint64(ep+1), op)
		sum = sum*31 + v
	}
	out[me] = sum
}

type arCheckTask struct {
	out []uint64
	ep  int
	sum uint64
}

func (k *arCheckTask) Step(t *TProc) (sim.PollableWait, bool) {
	me := t.ID()
	for {
		if k.ep >= arCheckEpisodes {
			k.out[me] = k.sum
			return nil, true
		}
		op := OpSum
		if k.ep%2 == 1 {
			op = OpMax
		}
		v, wt := t.AllReduceOpT(uint64(me+1)*uint64(k.ep+1), op)
		if wt != nil {
			return wt, false
		}
		k.sum = k.sum*31 + v
		k.ep++
	}
}

func arCheckWant(P int) uint64 {
	var sum uint64
	for ep := 0; ep < arCheckEpisodes; ep++ {
		var v uint64
		if ep%2 == 1 {
			v = uint64(P) * uint64(ep+1) // max of (i+1)(ep+1)
		} else {
			v = uint64(P*(P+1)/2) * uint64(ep+1) // sum of (i+1)(ep+1)
		}
		sum = sum*31 + v
	}
	return sum
}

// TestCollectiveAlgorithmEquivalence is the cross-algorithm property
// test: every registered algorithm, at several processor counts
// (including non-powers of two), must produce the same values as the
// default — and its continuation twin must match its blocking form in
// results, message counts, and virtual makespan.
func TestCollectiveAlgorithmEquivalence(t *testing.T) {
	for _, P := range []int{1, 2, 3, 8, 13, 16} {
		P := P
		for _, alg := range BarrierAlgorithms() {
			t.Run(fmt.Sprintf("barrier/%s/P%d", alg, P), func(t *testing.T) {
				out := collPair(t, P, Collectives{Barrier: alg},
					barrierCheckBlocking,
					func(res []uint64) func(int) Task {
						return func(int) Task { return &barrierCheckTask{out: res} }
					})
				for me, got := range out {
					if want := barrierCheckWant(me, P); got != want {
						t.Errorf("proc %d: result %d, want %d", me, got, want)
					}
				}
			})
		}
		for _, alg := range BroadcastAlgorithms() {
			t.Run(fmt.Sprintf("bcast/%s/P%d", alg, P), func(t *testing.T) {
				out := collPair(t, P, Collectives{Broadcast: alg},
					bcastCheckBlocking,
					func(res []uint64) func(int) Task {
						return func(int) Task { return &bcastCheckTask{out: res} }
					})
				for me, got := range out {
					if want := bcastCheckWant(P); got != want {
						t.Errorf("proc %d: result %d, want %d", me, got, want)
					}
				}
			})
		}
		for _, alg := range AllReduceAlgorithms() {
			t.Run(fmt.Sprintf("ar/%s/P%d", alg, P), func(t *testing.T) {
				out := collPair(t, P, Collectives{AllReduce: alg},
					arCheckBlocking,
					func(res []uint64) func(int) Task {
						return func(int) Task { return &arCheckTask{out: res} }
					})
				for me, got := range out {
					if want := arCheckWant(P); got != want {
						t.Errorf("proc %d: result %d, want %d", me, got, want)
					}
				}
			})
		}
	}
}

// TestRegistryMatchesTuneNames pins the splitc registry and the tune
// package's name lists against each other (tune is the naming authority
// but cannot import splitc).
func TestRegistryMatchesTuneNames(t *testing.T) {
	if got, want := BarrierAlgorithms(), tune.Barriers(); !reflect.DeepEqual(got, want) {
		t.Errorf("barrier registry %v, tune %v", got, want)
	}
	if got, want := BroadcastAlgorithms(), tune.Broadcasts(); !reflect.DeepEqual(got, want) {
		t.Errorf("broadcast registry %v, tune %v", got, want)
	}
	if got, want := AllReduceAlgorithms(), tune.AllReduces(); !reflect.DeepEqual(got, want) {
		t.Errorf("all-reduce registry %v, tune %v", got, want)
	}
}

// TestDefaultSelectionLayout pins the zero-value selection's tag-space
// layout to the historical fixed arithmetic (reduce rounds, ar-bcast
// rounds, bcast rounds, scan rounds, gather, all-to-all), which is what
// keeps pre-engine results byte-identical.
func TestDefaultSelectionLayout(t *testing.T) {
	for _, p := range []int{1, 2, 16, 32, 100} {
		sel, err := resolveCollectives(Collectives{}, p, logp.NOW())
		if err != nil {
			t.Fatal(err)
		}
		R := logRounds(p)
		if sel.arBase != 0 || sel.bcastBase != 2*R || sel.scanBase != 3*R ||
			sel.gatherBase != 4*R || sel.a2aBase != 4*R+1 || sel.numTags != 4*R+2 {
			t.Errorf("p=%d: layout %+v does not match historical tags (R=%d)", p, sel, R)
		}
		if sel.barSlots != R {
			t.Errorf("p=%d: barSlots %d, want %d", p, sel.barSlots, R)
		}
		want := Collectives{Barrier: tune.BarrierDissemination, Broadcast: tune.BcastBinomial, AllReduce: tune.AllReduceTree}
		if sel.names != want {
			t.Errorf("p=%d: default names %+v, want %+v", p, sel.names, want)
		}
	}
}

// TestAutoSelectionResolvesThroughTuner pins that CollAuto fields
// resolve to exactly the tuner's pick for the world's own machine.
func TestAutoSelectionResolvesThroughTuner(t *testing.T) {
	params := []logp.Params{
		logp.NOW(),
		func() logp.Params { p := logp.NOW(); p.DeltaO = 50 * sim.Microsecond; return p }(),
		func() logp.Params { p := logp.NOW(); p.DeltaL = 100 * sim.Microsecond; return p }(),
	}
	for _, pm := range params {
		for _, p := range []int{2, 4, 16, 32} {
			w, err := NewWorldCfg(Config{
				Procs: p, Params: pm, Seed: 1,
				Collectives: Collectives{Barrier: CollAuto, Broadcast: CollAuto, AllReduce: CollAuto},
			})
			if err != nil {
				t.Fatal(err)
			}
			pick := tune.Select(p, 8, pm)
			got := w.CollectiveNames()
			if got.Barrier != pick.Barrier || got.Broadcast != pick.Broadcast || got.AllReduce != pick.AllReduce {
				t.Errorf("p=%d: world resolved %+v, tuner picked %+v", p, got, pick)
			}
		}
	}
}

// TestUnknownAlgorithmRejected pins construction-time validation.
func TestUnknownAlgorithmRejected(t *testing.T) {
	for _, sel := range []Collectives{
		{Barrier: "bogus"},
		{Broadcast: "bogus"},
		{AllReduce: "bogus"},
	} {
		if _, err := NewWorldCfg(Config{Procs: 4, Params: logp.NOW(), Seed: 1, Collectives: sel}); err == nil {
			t.Errorf("selection %+v: expected construction error", sel)
		}
	}
}

// TestCollectivesString pins the run-key rendering.
func TestCollectivesString(t *testing.T) {
	if s := (Collectives{}).String(); s != "" {
		t.Errorf("zero value renders %q, want empty", s)
	}
	got := Collectives{Barrier: tune.BarrierFlat}.String()
	want := "bar=flat,bc=binomial,ar=tree"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
