// Package tune holds closed-form LogGP cost models for the collective
// algorithms registered in internal/splitc, and the auto-tuner that
// picks a winner per (P, message size, machine L/o/g/G) — the program of
// the two Barchet-Estefanel papers ("Performance Characterisation of
// Intra-Cluster Collective Communications", "Fast Tuning of
// Intra-Cluster Collective Communications") applied to this simulator's
// primitives.
//
// The package is the naming authority for the algorithm space: splitc's
// registry uses these constants, and a splitc test pins the two lists
// against each other (tune cannot import splitc — splitc imports tune to
// resolve "auto" selections at World construction).
//
// Each model is the critical-path cost of one collective episode under
// the LogGP short-message rules the simulator charges: a message costs
// o_send on the sender's CPU, L on the wire, and o_recv on the
// receiver's CPU; back-to-back sends from one processor are paced by
// max(g, o_send); back-to-back receives on one processor serialize on
// o_recv. The models are evaluated analytically (no event simulation) —
// small loops over rounds or nodes, exact for the schedules the
// algorithms actually issue. Messages larger than one word add a
// per-byte G term to the wire time.
package tune

import (
	"fmt"

	"repro/internal/logp"
	"repro/internal/sim"
)

// Algorithm names. Barrier, broadcast, and all-reduce draw from separate
// name spaces (so "tree" and "flat" may appear in more than one).
const (
	// BarrierDissemination is the default barrier: ⌈log2 P⌉ rounds in
	// which processor i notifies (i+2^r) mod P — every processor sends
	// and receives one message per round.
	BarrierDissemination = "dissemination"
	// BarrierTree gathers arrivals up a binomial tree and broadcasts the
	// release back down it: 2·⌈log2 P⌉ sequential hops on the critical
	// path, but only P-1 messages per phase.
	BarrierTree = "tree"
	// BarrierFlat counts all P-1 arrivals on processor 0 and releases
	// everyone with P-1 direct messages: depth 2, but the root serializes
	// on o_recv and g.
	BarrierFlat = "flat"

	// BcastBinomial is the default broadcast: a binomial tree rooted at
	// the source, ⌈log2 P⌉ rounds.
	BcastBinomial = "binomial"
	// BcastChain forwards the value along a ring: P-1 sequential hops,
	// the pipelined-segmented shape for large messages.
	BcastChain = "chain"
	// BcastFlat has the root send to every other processor directly:
	// depth 1, serialized on the root's max(g, o_send).
	BcastFlat = "flat"

	// AllReduceTree is the default all-reduce: binomial reduce to
	// processor 0 followed by a binomial broadcast.
	AllReduceTree = "tree"
	// AllReduceRecDouble is recursive doubling (the butterfly): ⌊log2 P⌋
	// pairwise exchange rounds, plus a fold/unfold step when P is not a
	// power of two.
	AllReduceRecDouble = "recdouble"
	// AllReduceFlat gathers every operand on processor 0 and broadcasts
	// the result directly: depth 2, root-serialized.
	AllReduceFlat = "flat"
)

// Barriers lists the barrier algorithm names, default first.
func Barriers() []string {
	return []string{BarrierDissemination, BarrierTree, BarrierFlat}
}

// Broadcasts lists the broadcast algorithm names, default first.
func Broadcasts() []string {
	return []string{BcastBinomial, BcastChain, BcastFlat}
}

// AllReduces lists the all-reduce algorithm names, default first.
func AllReduces() []string {
	return []string{AllReduceTree, AllReduceRecDouble, AllReduceFlat}
}

// Model is the effective short-message LogGP machine the cost formulas
// run on.
type Model struct {
	OSend    sim.Time
	ORecv    sim.Time
	Gap      sim.Time
	Latency  sim.Time
	GPerByte float64 // nanoseconds per byte beyond the first word
}

// ModelOf extracts the effective (post-delta) machine from params.
func ModelOf(p logp.Params) Model {
	return Model{
		OSend:    p.EffOSend(),
		ORecv:    p.EffORecv(),
		Gap:      p.EffGap(),
		Latency:  p.EffLatency(),
		GPerByte: p.EffGPerByte(),
	}
}

// wordBytes is the payload a single short message carries; larger
// collective payloads pay a G term per extra byte.
const wordBytes = 8

// wire is the network time of one message of the given size.
func (m Model) wire(bytes int) sim.Time {
	w := m.Latency
	if bytes > wordBytes {
		w += sim.Time(float64(bytes-wordBytes) * m.GPerByte)
	}
	return w
}

// hop is the end-to-end time of one message: send CPU, wire, receive CPU.
func (m Model) hop(bytes int) sim.Time {
	return m.OSend + m.wire(bytes) + m.ORecv
}

// pace is the spacing between back-to-back injections from one sender.
func (m Model) pace() sim.Time {
	if m.Gap > m.OSend {
		return m.Gap
	}
	return m.OSend
}

// Selection is the tuner's pick, one algorithm name per primitive.
type Selection struct {
	Barrier   string
	Broadcast string
	AllReduce string
}

// Select returns the model-minimal algorithm per primitive for a
// P-processor machine exchanging bytes-sized operands. Ties go to the
// first-listed (default) algorithm, so the tuner never trades the
// proven default for an equal-cost alternative.
func Select(p, bytes int, params logp.Params) Selection {
	m := ModelOf(params)
	return Selection{
		Barrier:   argmin(Barriers(), func(a string) sim.Time { c, _ := BarrierCost(a, p, m); return c }),
		Broadcast: argmin(Broadcasts(), func(a string) sim.Time { c, _ := BroadcastCost(a, p, bytes, m); return c }),
		AllReduce: argmin(AllReduces(), func(a string) sim.Time { c, _ := AllReduceCost(a, p, bytes, m); return c }),
	}
}

func argmin(names []string, cost func(string) sim.Time) string {
	best := names[0]
	bestC := cost(best)
	for _, n := range names[1:] {
		if c := cost(n); c < bestC {
			best, bestC = n, c
		}
	}
	return best
}

// BarrierCost models one barrier episode (store-sync excluded: the
// models compare synchronization schedules, not the caller's outstanding
// stores).
func BarrierCost(alg string, p int, m Model) (sim.Time, error) {
	if p < 1 {
		return 0, fmt.Errorf("tune: barrier cost needs p ≥ 1, got %d", p)
	}
	if p == 1 {
		return 0, nil
	}
	switch alg {
	case BarrierDissemination:
		// Every round each processor sends one notification and waits
		// for one; rounds serialize on the full hop (the wait closes the
		// round) plus the receive/send overlap on one CPU.
		return sim.Time(rounds(p)) * m.hop(wordBytes), nil
	case BarrierTree:
		// Gather up the binomial tree, release back down it.
		up := binomialGather(p, wordBytes, m)
		return up + binomialBcast(p, wordBytes, m), nil
	case BarrierFlat:
		// All P-1 arrivals serialize on the root's o_recv, then a flat
		// release fan-out.
		gather := m.OSend + m.wire(wordBytes) + sim.Time(p-1)*m.ORecv
		return gather + flatBcast(p, wordBytes, m), nil
	}
	return 0, fmt.Errorf("tune: unknown barrier algorithm %q", alg)
}

// BroadcastCost models one broadcast episode of a bytes-sized payload.
func BroadcastCost(alg string, p, bytes int, m Model) (sim.Time, error) {
	if p < 1 {
		return 0, fmt.Errorf("tune: broadcast cost needs p ≥ 1, got %d", p)
	}
	if p == 1 {
		return 0, nil
	}
	switch alg {
	case BcastBinomial:
		return binomialBcast(p, bytes, m), nil
	case BcastChain:
		return sim.Time(p-1) * m.hop(bytes), nil
	case BcastFlat:
		return flatBcast(p, bytes, m), nil
	}
	return 0, fmt.Errorf("tune: unknown broadcast algorithm %q", alg)
}

// AllReduceCost models one all-reduce episode of bytes-sized operands.
func AllReduceCost(alg string, p, bytes int, m Model) (sim.Time, error) {
	if p < 1 {
		return 0, fmt.Errorf("tune: all-reduce cost needs p ≥ 1, got %d", p)
	}
	if p == 1 {
		return 0, nil
	}
	switch alg {
	case AllReduceTree:
		return binomialGather(p, bytes, m) + binomialBcast(p, bytes, m), nil
	case AllReduceRecDouble:
		pof2 := 1 << uint(floorLog2(p))
		c := sim.Time(floorLog2(pof2)) * m.hop(bytes)
		if p != pof2 {
			c += 2 * m.hop(bytes) // fold into and unfold out of the power-of-two core
		}
		return c, nil
	case AllReduceFlat:
		gather := m.OSend + m.wire(bytes) + sim.Time(p-1)*m.ORecv
		return gather + flatBcast(p, bytes, m), nil
	}
	return 0, fmt.Errorf("tune: unknown all-reduce algorithm %q", alg)
}

// rounds is ⌈log2 p⌉ (≥ 1), the dissemination/binomial round count.
func rounds(p int) int {
	r := 0
	for 1<<r < p {
		r++
	}
	if r == 0 {
		r = 1
	}
	return r
}

func floorLog2(p int) int {
	j := -1
	for p != 0 {
		p >>= 1
		j++
	}
	return j
}

// binomialBcast evaluates the binomial broadcast's critical path exactly
// for the schedule splitc issues: virtual id v receives from its parent
// (v minus its highest set bit), which sends to its children in round
// order, injections paced by max(g, o_send). O(p) node evaluation.
func binomialBcast(p, bytes int, m Model) sim.Time {
	ready := make([]sim.Time, p) // time vid v holds the value
	var worst sim.Time
	for v := 1; v < p; v++ {
		hb := floorLog2(v)
		parent := v &^ (1 << uint(hb))
		// The parent's send to v is its k-th (0-based) injection, where k
		// counts the parent's earlier rounds that had an in-range child.
		first := 0
		if parent != 0 {
			first = floorLog2(parent) + 1
		}
		k := 0
		for r := first; r < hb; r++ {
			if parent+1<<r < p {
				k++
			}
		}
		depart := ready[parent] + m.OSend + sim.Time(k)*m.pace()
		ready[v] = depart + m.wire(bytes) + m.ORecv
		if ready[v] > worst {
			worst = ready[v]
		}
	}
	return worst
}

// binomialGather is the mirror image: leaves send first, every node
// forwards once all children arrived, receives serialize on o_recv.
func binomialGather(p, bytes int, m Model) sim.Time {
	done := gatherDone(0, p, bytes, m)
	return done
}

// gatherDone returns the time node v (virtual id, root 0) has absorbed
// its whole subtree. Children are v+2^r for each round r with v < 2^r;
// child arrivals serialize on the receiver's o_recv.
func gatherDone(v, p, bytes int, m Model) sim.Time {
	var t sim.Time
	for r := 0; 1<<r < p; r++ {
		child := v + 1<<r
		if v >= 1<<r || child >= p {
			continue
		}
		sent := gatherDone(child, p, bytes, m) + m.OSend
		arrive := sent + m.wire(bytes)
		if arrive > t {
			t = arrive
		}
		t += m.ORecv
	}
	return t
}

// flatBcast is the root-sends-everyone fan-out: the last of P-1
// injections leaves after P-2 pacing gaps.
func flatBcast(p, bytes int, m Model) sim.Time {
	return m.OSend + sim.Time(p-2)*m.pace() + m.wire(bytes) + m.ORecv
}
