package tune

import (
	"testing"

	"repro/internal/logp"
	"repro/internal/sim"
)

func now() Model { return ModelOf(logp.NOW()) }

func TestCostsDegenerateCases(t *testing.T) {
	m := now()
	for _, alg := range Barriers() {
		if c, err := BarrierCost(alg, 1, m); err != nil || c != 0 {
			t.Errorf("BarrierCost(%s, 1) = %v, %v; want 0, nil", alg, c, err)
		}
		if _, err := BarrierCost(alg, 0, m); err == nil {
			t.Errorf("BarrierCost(%s, 0): expected error", alg)
		}
	}
	for _, alg := range Broadcasts() {
		if c, err := BroadcastCost(alg, 1, 8, m); err != nil || c != 0 {
			t.Errorf("BroadcastCost(%s, 1) = %v, %v; want 0, nil", alg, c, err)
		}
	}
	for _, alg := range AllReduces() {
		if c, err := AllReduceCost(alg, 1, 8, m); err != nil || c != 0 {
			t.Errorf("AllReduceCost(%s, 1) = %v, %v; want 0, nil", alg, c, err)
		}
	}
	if _, err := BarrierCost("bogus", 4, m); err == nil {
		t.Error("BarrierCost(bogus): expected error")
	}
	if _, err := BroadcastCost("bogus", 4, 8, m); err == nil {
		t.Error("BroadcastCost(bogus): expected error")
	}
	if _, err := AllReduceCost("bogus", 4, 8, m); err == nil {
		t.Error("AllReduceCost(bogus): expected error")
	}
}

// TestCostsMonotoneInP pins that every model grows (weakly) with the
// processor count — a basic sanity property of collective schedules.
func TestCostsMonotoneInP(t *testing.T) {
	m := now()
	check := func(name string, cost func(p int) sim.Time) {
		prev := cost(2)
		for p := 3; p <= 64; p++ {
			c := cost(p)
			if c < prev {
				t.Errorf("%s: cost(%d)=%v < cost(%d)=%v", name, p, c, p-1, prev)
			}
			prev = c
		}
	}
	for _, alg := range Barriers() {
		alg := alg
		check("barrier/"+alg, func(p int) sim.Time { c, _ := BarrierCost(alg, p, m); return c })
	}
	for _, alg := range Broadcasts() {
		alg := alg
		check("bcast/"+alg, func(p int) sim.Time { c, _ := BroadcastCost(alg, p, 8, m); return c })
	}
	// The recursive-doubling model is not monotone across pof2 boundaries
	// (the fold/unfold surcharge drops when p reaches a power of two), so
	// only the other all-reduce shapes are checked pointwise.
	for _, alg := range []string{AllReduceTree, AllReduceFlat} {
		alg := alg
		check("ar/"+alg, func(p int) sim.Time { c, _ := AllReduceCost(alg, p, 8, m); return c })
	}
}

// TestDisseminationClosedForm pins the dissemination model to its exact
// closed form: rounds × one full hop.
func TestDisseminationClosedForm(t *testing.T) {
	m := now()
	for _, p := range []int{2, 3, 8, 17, 32} {
		c, err := BarrierCost(BarrierDissemination, p, m)
		if err != nil {
			t.Fatal(err)
		}
		want := sim.Time(rounds(p)) * (m.OSend + m.Latency + m.ORecv)
		if c != want {
			t.Errorf("p=%d: dissemination cost %v, want %v", p, c, want)
		}
	}
}

// TestLargePayloadAddsG pins the per-byte G term for payloads beyond one
// word.
func TestLargePayloadAddsG(t *testing.T) {
	m := now()
	small, _ := BroadcastCost(BcastChain, 4, 8, m)
	big, _ := BroadcastCost(BcastChain, 4, 4096, m)
	if big <= small {
		t.Errorf("4KB chain broadcast (%v) not costlier than 8B (%v)", big, small)
	}
}

// TestSelectReturnsRegisteredNames pins that Select always lands on a
// listed algorithm, over a grid of machines and processor counts.
func TestSelectReturnsRegisteredNames(t *testing.T) {
	contains := func(ns []string, n string) bool {
		for _, s := range ns {
			if s == n {
				return true
			}
		}
		return false
	}
	deltas := []logp.Params{logp.NOW()}
	for _, do := range []sim.Time{10 * sim.Microsecond, 50 * sim.Microsecond, 100 * sim.Microsecond} {
		pm := logp.NOW()
		pm.DeltaO = do
		deltas = append(deltas, pm)
	}
	for _, dl := range []sim.Time{50 * sim.Microsecond, 200 * sim.Microsecond} {
		pm := logp.NOW()
		pm.DeltaL = dl
		deltas = append(deltas, pm)
	}
	for _, pm := range deltas {
		for _, p := range []int{2, 3, 4, 8, 16, 32, 100} {
			s := Select(p, 8, pm)
			if !contains(Barriers(), s.Barrier) || !contains(Broadcasts(), s.Broadcast) || !contains(AllReduces(), s.AllReduce) {
				t.Errorf("Select(%d) returned unregistered name: %+v", p, s)
			}
		}
	}
}

// TestSelectPrefersRecDouble pins one analytic crossover the models must
// exhibit: recursive doubling halves the tree's depth, so at any
// power-of-two P ≥ 4 on the baseline machine the tuner must leave the
// default tree all-reduce.
func TestSelectPrefersRecDouble(t *testing.T) {
	for _, p := range []int{4, 8, 16, 32} {
		s := Select(p, 8, logp.NOW())
		if s.AllReduce != AllReduceRecDouble {
			t.Errorf("P=%d: tuner picked all-reduce %q, want %q", p, s.AllReduce, AllReduceRecDouble)
		}
	}
}

// TestTiesGoToDefault pins the tie rule: on a degenerate free machine
// every model is 0, and the tuner must keep the default (first-listed)
// algorithms.
func TestTiesGoToDefault(t *testing.T) {
	free := Model{}
	for _, p := range []int{2, 8} {
		b := argmin(Barriers(), func(a string) sim.Time { c, _ := BarrierCost(a, p, free); return c })
		if b != BarrierDissemination {
			t.Errorf("P=%d: tie broke to %q, want default %q", p, b, BarrierDissemination)
		}
	}
}
