package splitc

import (
	"testing"

	"repro/internal/logp"
	"repro/internal/sim"
)

// The twin program exercises every primitive family — pipelined writes,
// blocking reads, store sync, barriers, collectives, bulk transfers,
// locks, and atomics — written once against the blocking API and once
// against the continuation API, statement for statement. Both versions
// run on the same machine parameters; the test pins that the virtual
// timelines and the communication footprints agree.

const twinWords = 600 // bulk payload exercises multi-fragment paths (> 512 words)

// twinBlocking is the coroutine version of the twin program.
func twinBlocking(p *Proc, results []uint64) {
	me := p.ID()
	P := p.P()
	base := p.Alloc(P + 2)          // [0,P) neighbor slots, P = lock word, P+1 = counter
	bulk := p.Alloc(twinWords)      // bulk landing area
	_ = bulk
	p.Barrier()

	// Pipelined writes to the right neighbor, then a read back from the
	// left neighbor after the barrier has completed the stores.
	right := (me + 1) % P
	left := (me - 1 + P) % P
	p.WriteWord(GPtr{Proc: int32(right), Off: base.Off + int32(me)}, uint64(me+1))
	p.Barrier()
	got := p.ReadWord(GPtr{Proc: int32(left), Off: base.Off + int32(left)})
	_ = got

	// Collectives.
	sum := p.AllReduceSum(uint64(me))
	scan := p.ScanAdd(1)
	bc := p.Broadcast(0, sum+7)
	p.Barrier()

	// Bulk put to the right neighbor's landing area, then a bulk get of
	// the left neighbor's.
	vals := make([]uint64, twinWords)
	for i := range vals {
		vals[i] = uint64(me)<<32 | uint64(i)
	}
	p.BulkPut(GPtr{Proc: int32(right), Off: bulk.Off}, vals)
	p.Barrier()
	back := p.BulkGet(GPtr{Proc: int32(left), Off: bulk.Off}, twinWords)

	// Lock-protected read-modify-write on processor 0, plus a fetch-add.
	lock := GPtr{Proc: 0, Off: base.Off + int32(P)}
	ctr := GPtr{Proc: 0, Off: base.Off + int32(P) + 1}
	p.Lock(lock)
	v := p.ReadWord(ctr)
	p.WriteWordSync(ctr, v+1)
	p.Unlock(lock)
	fa := p.FetchAdd(ctr, 100)
	_ = fa

	results[me] = got + sum + scan + bc + back[twinWords-1]
}

// twinTask is the continuation version: the same statements, as a state
// machine.
type twinTask struct {
	pc      int
	results []uint64
	base    GPtr
	bulk    GPtr
	right   int
	left    int
	got     uint64
	sum     uint64
	scan    uint64
	bc      uint64
	vals    []uint64
	back    []uint64
	lock    GPtr
	ctr     GPtr
	v       uint64
}

func (k *twinTask) Step(t *TProc) (sim.PollableWait, bool) {
	me := t.ID()
	P := t.P()
	for {
		switch k.pc {
		case 0:
			k.base = t.Alloc(P + 2)
			k.bulk = t.Alloc(twinWords)
			k.right = (me + 1) % P
			k.left = (me - 1 + P) % P
			k.lock = GPtr{Proc: 0, Off: k.base.Off + int32(P)}
			k.ctr = GPtr{Proc: 0, Off: k.base.Off + int32(P) + 1}
			k.pc = 1
		case 1:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.pc = 2
		case 2:
			if wt := t.WriteWordT(GPtr{Proc: int32(k.right), Off: k.base.Off + int32(me)}, uint64(me+1)); wt != nil {
				return wt, false
			}
			k.pc = 3
		case 3:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.pc = 4
		case 4:
			v, wt := t.ReadWordT(GPtr{Proc: int32(k.left), Off: k.base.Off + int32(k.left)})
			if wt != nil {
				return wt, false
			}
			k.got = v
			k.pc = 5
		case 5:
			v, wt := t.AllReduceSumT(uint64(me))
			if wt != nil {
				return wt, false
			}
			k.sum = v
			k.pc = 6
		case 6:
			v, wt := t.ScanAddT(1)
			if wt != nil {
				return wt, false
			}
			k.scan = v
			k.pc = 7
		case 7:
			v, wt := t.BroadcastT(0, k.sum+7)
			if wt != nil {
				return wt, false
			}
			k.bc = v
			k.pc = 8
		case 8:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.vals = make([]uint64, twinWords)
			for i := range k.vals {
				k.vals[i] = uint64(me)<<32 | uint64(i)
			}
			k.pc = 9
		case 9:
			if wt := t.BulkPutT(GPtr{Proc: int32(k.right), Off: k.bulk.Off}, k.vals); wt != nil {
				return wt, false
			}
			k.pc = 10
		case 10:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.pc = 11
		case 11:
			out, wt := t.BulkGetT(GPtr{Proc: int32(k.left), Off: k.bulk.Off}, twinWords)
			if wt != nil {
				return wt, false
			}
			k.back = out
			k.pc = 12
		case 12:
			if wt := t.LockT(k.lock); wt != nil {
				return wt, false
			}
			k.pc = 13
		case 13:
			v, wt := t.ReadWordT(k.ctr)
			if wt != nil {
				return wt, false
			}
			k.v = v
			k.pc = 14
		case 14:
			if wt := t.WriteWordT(k.ctr, k.v+1); wt != nil {
				return wt, false
			}
			k.pc = 15
		case 15:
			if wt := t.StoreSyncT(); wt != nil {
				return wt, false
			}
			k.pc = 16
		case 16:
			if wt := t.UnlockT(k.lock); wt != nil {
				return wt, false
			}
			k.pc = 17
		case 17:
			_, wt := t.FetchAddT(k.ctr, 100)
			if wt != nil {
				return wt, false
			}
			k.pc = 18
		case 18:
			k.results[me] = k.got + k.sum + k.scan + k.bc + k.back[twinWords-1]
			return nil, true
		}
	}
}

func twinWorld(t *testing.T, p int) *World {
	t.Helper()
	w, err := NewWorld(p, logp.NOW(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestContMatchesBlocking pins the continuation runtime against the
// coroutine runtime: identical program, identical machine → identical
// results, identical message counts, and (no poll point in the twin
// program outruns a runnable peer) identical virtual makespans.
func TestContMatchesBlocking(t *testing.T) {
	for _, P := range []int{1, 2, 16, 32} {
		wb := twinWorld(t, P)
		resB := make([]uint64, P)
		if err := wb.Run(func(p *Proc) { twinBlocking(p, resB) }); err != nil {
			t.Fatalf("P=%d blocking: %v", P, err)
		}

		wc := twinWorld(t, P)
		resC := make([]uint64, P)
		if err := wc.RunTasks(func(id int) Task { return &twinTask{results: resC} }); err != nil {
			t.Fatalf("P=%d continuation: %v", P, err)
		}

		for i := range resB {
			if resB[i] != resC[i] {
				t.Errorf("P=%d proc %d: blocking result %d, continuation %d", P, i, resB[i], resC[i])
			}
		}
		if sb, sc := wb.Stats().TotalSent(), wc.Stats().TotalSent(); sb != sc {
			t.Errorf("P=%d: blocking sent %d messages, continuation %d", P, sb, sc)
		}
		if bb, bc := wb.Stats().Barriers, wc.Stats().Barriers; bb != bc {
			t.Errorf("P=%d: blocking %d barriers, continuation %d", P, bb, bc)
		}
		if eb, ec := wb.Elapsed(), wc.Elapsed(); eb != ec {
			t.Errorf("P=%d: blocking elapsed %v, continuation elapsed %v", P, eb, ec)
		}
	}
}

// TestContDeterminism pins that two continuation runs of the same program
// produce the same virtual timeline.
func TestContDeterminism(t *testing.T) {
	var elapsed [2]sim.Time
	var sent [2]int64
	for i := range elapsed {
		w := twinWorld(t, 16)
		res := make([]uint64, 16)
		if err := w.RunTasks(func(id int) Task { return &twinTask{results: res} }); err != nil {
			t.Fatal(err)
		}
		elapsed[i] = w.Elapsed()
		sent[i] = w.Stats().TotalSent()
	}
	if elapsed[0] != elapsed[1] || sent[0] != sent[1] {
		t.Fatalf("nondeterministic continuation run: %v/%d vs %v/%d",
			elapsed[0], sent[0], elapsed[1], sent[1])
	}
}
