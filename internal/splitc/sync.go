package splitc

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/sim"
)

// Barrier synchronizes all processors with the world's selected barrier
// algorithm (Config.Collectives; the dissemination barrier by default).
// Every algorithm first waits for the caller's outstanding stores
// (Split-C barriers imply store completion).
func (p *Proc) Barrier() { p.w.sel.barrier.run(p) }

// barrierDissem is the dissemination barrier: in round r the processor
// notifies (id+2^r) mod P and waits for the notification from (id-2^r)
// mod P. ⌈log2 P⌉ rounds of short sync messages; round-trip free but
// latency-sensitive.
//
// Round counters are cumulative, which makes the algorithm robust to
// processors being a full episode apart: per-pair FIFO delivery means
// "count ≥ episode" implies all earlier episodes arrived too.
func (p *Proc) barrierDissem() {
	p.syncEnter(RegionBarrier)
	p.StoreSync()
	w := p.w
	me := p.ID()
	P := p.P()
	if P == 1 {
		w.m.Stats().CountBarrier()
		p.syncExit(RegionBarrier)
		return
	}
	bs := w.barrierOf(me)
	bs.episodes++
	target := bs.episodes
	for r := 0; 1<<r < P; r++ {
		dst := (me + 1<<r) % P
		round := uint64(r)
		p.ep.Request(dst, am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			w.barrierOf(ep.ID()).recvCount[a[0]]++
		}, am.Args{round})
		rr := r
		p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return bs.recvCount[rr] >= target }, "splitc: barrier")
	}
	if me == 0 {
		w.m.Stats().CountBarrier()
	}
	p.syncExit(RegionBarrier)
}

// Collective message tags come from the world's tag-space allocator
// (see coll.go): the selected all-reduce and broadcast algorithms each
// own a disjoint block, and scan/gather/all-to-all continue the space in
// collectives.go. reduceTag and arBcastTag address the tree all-reduce's
// two sub-blocks (reduce rounds, then its broadcast rounds).
func (w *World) reduceTag(r int) int  { return w.sel.arBase + r }
func (w *World) arBcastTag(r int) int { return w.sel.arBase + logRounds(w.P()) + r }

// sendColl ships one operand word to dst under the given tag.
func (p *Proc) sendColl(dst, tag int, val uint64) {
	w := p.w
	p.ep.Request(dst, am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		cs := w.collOf(ep.ID())
		cs.vals[a[0]] = append(cs.vals[a[0]], a[1])
	}, am.Args{uint64(tag), val})
}

// recvColl blocks until a value under tag is available and pops it.
func (p *Proc) recvColl(tag int) uint64 {
	cs := p.w.collOf(p.ID())
	p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return len(cs.vals[tag]) > 0 }, "splitc: collective recv")
	v := cs.vals[tag][0]
	cs.vals[tag] = cs.vals[tag][1:]
	return v
}

// AllReduce combines one word from every processor with op (which must be
// associative and commutative) and returns the result on all processors.
//
// Deprecated: custom operators always run the binomial reduce-broadcast
// tree, bypassing the world's algorithm selection. Use AllReduceOp with
// a ReduceOp (or the AllReduceSum/AllReduceMax wrappers), which route
// through the selected algorithm.
func (p *Proc) AllReduce(val uint64, op func(a, b uint64) uint64) uint64 {
	if p.P() == 1 {
		return val
	}
	return p.allReduceTreeFn(val, op)
}

// allReduceTreeFn is the reduce-broadcast tree all-reduce: binomial-tree
// reduce to processor 0 followed by a binomial broadcast, 2·⌈log2 P⌉
// message rounds.
func (p *Proc) allReduceTreeFn(val uint64, op func(a, b uint64) uint64) uint64 {
	w := p.w
	me := p.ID()
	P := p.P()
	acc := val
	// Reduce toward processor 0: at round r, processors with bit r set
	// send their partial to the neighbor below and drop out; the others
	// absorb a partial from the neighbor above (when it exists).
	for r := 0; 1<<r < P; r++ {
		mask := 1 << r
		if me&mask != 0 {
			p.sendColl(me&^mask, w.reduceTag(r), acc)
			break
		}
		if me+mask < P {
			acc = op(acc, p.recvColl(w.reduceTag(r)))
		}
	}
	// Broadcast the total from processor 0.
	return p.bcastTree(0, acc, w.arBcastTag(0))
}

// bcastTree runs a binomial broadcast rooted at root; acc is the value at
// the root (ignored elsewhere). base is the collective's tag block (tag
// base+r for round r) so different collectives don't interleave. Virtual
// ids are rotated so the root plays id 0: vid receives in the round
// matching its highest set bit and forwards in every later round r to
// vid+2^r.
func (p *Proc) bcastTree(root int, acc uint64, base int) uint64 {
	me := p.ID()
	P := p.P()
	rounds := logRounds(P)
	vid := (me - root + P) % P
	first := 0
	if vid != 0 {
		j := highestBit(vid)
		acc = p.recvColl(base + j)
		first = j + 1
	}
	for r := first; r < rounds; r++ {
		child := vid + 1<<r
		if vid < 1<<r && child < P {
			p.sendColl((child+root)%P, base+r, acc)
		}
	}
	return acc
}

// Broadcast distributes root's val to all processors with the world's
// selected broadcast algorithm (binomial tree by default).
func (p *Proc) Broadcast(root int, val uint64) uint64 {
	P := p.P()
	if P == 1 {
		return val
	}
	if root < 0 || root >= P {
		panic(fmt.Sprintf("splitc: Broadcast root %d out of range", root))
	}
	return p.w.sel.bcast.run(p, root, val)
}

func highestBit(v int) int {
	j := -1
	for v != 0 {
		v >>= 1
		j++
	}
	return j
}

// AllReduceOp combines one word from every processor with a built-in
// operator, using the world's selected all-reduce algorithm, and returns
// the result everywhere.
func (p *Proc) AllReduceOp(val uint64, op ReduceOp) uint64 {
	if p.P() == 1 {
		return val
	}
	return p.w.sel.ar.run(p, val, op)
}

// AllReduceSum sums one word across processors.
func (p *Proc) AllReduceSum(v uint64) uint64 { return p.AllReduceOp(v, OpSum) }

// AllReduceMax takes the maximum of one word across processors.
func (p *Proc) AllReduceMax(v uint64) uint64 { return p.AllReduceOp(v, OpMax) }

// FetchAdd atomically adds delta to the word at g and returns the previous
// value. Remote: one sync-class round trip; local: direct.
func (p *Proc) FetchAdd(g GPtr, delta uint64) uint64 {
	if int(g.Proc) == p.ID() {
		ptr := p.w.word(g)
		old := *ptr
		*ptr += delta
		return old
	}
	w := p.w
	var old uint64
	done := false
	p.ep.Request(int(g.Proc), am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		ptr := &w.mem[a[0]>>32][uint32(a[0])]
		v := *ptr
		*ptr += a[1]
		ep.Reply(tok, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			old = a[0]
			done = true
		}, am.Args{v})
	}, am.Args{g.Pack(), delta})
	p.ep.WaitUntilFor(am.WaitLock, func() bool { return done }, "splitc: fetch-add")
	return old
}

// TryLock attempts to acquire the lock word at g (0 free, 1 held).
// Remote: one sync-class round trip that test-and-sets on the owner.
func (p *Proc) TryLock(g GPtr) bool {
	if int(g.Proc) == p.ID() {
		ptr := p.w.word(g)
		if *ptr == 0 {
			*ptr = 1
			return true
		}
		return false
	}
	w := p.w
	var got bool
	done := false
	p.ep.Request(int(g.Proc), am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		ptr := &w.mem[a[0]>>32][uint32(a[0])]
		var res uint64
		if *ptr == 0 {
			*ptr = 1
			res = 1
		}
		ep.Reply(tok, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			got = a[0] == 1
			done = true
		}, am.Args{res})
	}, am.Args{g.Pack()})
	p.ep.WaitUntilFor(am.WaitLock, func() bool { return done }, "splitc: try-lock")
	return got
}

// lockSpinCost is the charged cost of one local test-and-set retry
// iteration (load, branch, backoff) in the Lock spin loop.
const lockSpinCost = 200 * sim.Nanosecond

// Lock spins on TryLock until it acquires g, as the paper's Barnes does —
// under high overhead this retry traffic is exactly what drives its
// livelock. Each failed local attempt costs a spin iteration and services
// the network (a spinning Split-C processor still polls, or remote
// test-and-set requests to it could never be answered); remote attempts
// are paced by their own round trips. FailedLockAttempts counts retries.
func (p *Proc) Lock(g GPtr) {
	p.syncEnter(RegionLock)
	for !p.TryLock(g) {
		p.failedLocks++
		p.Compute(lockSpinCost)
		p.Poll()
	}
	p.syncExit(RegionLock)
}

// Unlock releases the lock word at g with a pipelined store.
func (p *Proc) Unlock(g GPtr) {
	p.WriteWord(g, 0)
}

// FailedLockAttempts reports how many TryLock retries Lock has burned —
// the paper instruments Barnes with exactly this counter.
func (p *Proc) FailedLockAttempts() int64 { return p.failedLocks }

// CompareSwap atomically replaces the word at g with next if it equals old,
// reporting success. Remote: one sync-class round trip; local: direct.
func (p *Proc) CompareSwap(g GPtr, old, next uint64) bool {
	if int(g.Proc) == p.ID() {
		ptr := p.w.word(g)
		if *ptr == old {
			*ptr = next
			return true
		}
		return false
	}
	w := p.w
	var ok, done bool
	p.ep.Request(int(g.Proc), am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		ptr := &w.mem[a[0]>>32][uint32(a[0])]
		var res uint64
		if *ptr == a[1] {
			*ptr = a[2]
			res = 1
		}
		ep.Reply(tok, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			ok = a[0] == 1
			done = true
		}, am.Args{res})
	}, am.Args{g.Pack(), old, next})
	p.ep.WaitUntilFor(am.WaitLock, func() bool { return done }, "splitc: compare-swap")
	return ok
}
