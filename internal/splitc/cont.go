package splitc

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/am"
	"repro/internal/sim"
)

// Continuation-mode Split-C: the same primitive set as Proc, expressed as
// resumable state machines so a program can run on sim.RunResumables —
// one driver goroutine, no stacks — and scale to a million processors.
//
// A Task is re-entered by the runtime after every park, so a primitive
// cannot keep its progress on the stack. Each TProc method in this file
// is instead written in resumptive style: it records its progress in the
// TProc's single op cell and is called again, with identical arguments,
// after every wait it returns has completed. The calling convention is
// uniform:
//
//	v, wt := t.ReadWordT(g)
//	if wt != nil {
//		return wt, false // park; re-call ReadWordT on re-entry
//	}
//
// One primitive may be in flight per processor at a time (the same
// discipline the blocking layer enforces by construction — one body, and
// handlers may not wait). Primitives reset the op cell on completion, so
// sequential composition needs no coordination beyond the caller's own
// program counter.
//
// Each primitive replays its blocking original statement for statement:
// the same poll points, the same window stalls, the same sends with the
// same classes, the same wait conditions in the same order, bracketed by
// the same instrumentation hooks. Both modes park on the endpoint's one
// epWait record and are driven by the same Engine.stepWait, so the wait
// phases are not merely equivalent but shared code. The poll points map
// too: a blocking Checkpoint becomes a park on sim.Yield — the engine
// resumes a parked processor only once every peer at a smaller
// (clock, id) has run and every event due by its clock has fired, which
// is precisely what Checkpoint does inline — and each blocking Poll
// becomes PollOneDue steps separated by such parks. The two runtimes
// therefore produce bit-identical timelines; the cross-mode twin test
// pins this under the NOW parameter set, whose clustered arrivals would
// expose any poll-point divergence. See DESIGN.md §11.
//
// Collectives use per-processor operand cells (a two-deep value ring +
// cumulative counters per tag) instead of the blocking layer's queues.
// Causality within one collective episode plus per-pair FIFO delivery
// bound the in-flight values per tag to two (the recursive-doubling
// butterfly's partner can run one episode ahead before the consumer
// reads; every other algorithm stays at one), which is what makes the
// ring sufficient — but it obliges callers to separate successive
// broadcast episodes with a BarrierT (the all-reduce algorithms and
// ScanAddT are self-separating: their own reduce/recv dependencies
// provide the causality). The flat all-reduce's root gathers P-1
// operands per episode, beyond any fixed ring — its senders use the
// accumulating handler hCollAcc, which combines into the cell on
// arrival instead of storing.

// Task is the continuation form of an SPMD body: Step is called
// repeatedly, and must either return a wait to park on (done=false) or
// finish (done=true). Returning (nil, false) panics — a task that cannot
// finish must name what it waits for. Use sim.Yield to reschedule
// without a condition.
type Task interface {
	Step(t *TProc) (wait sim.PollableWait, done bool)
}

// TaskFunc adapts a plain function to Task.
type TaskFunc func(t *TProc) (sim.PollableWait, bool)

// Step implements Task.
func (f TaskFunc) Step(t *TProc) (sim.PollableWait, bool) { return f(t) }

// TProc is one processor's continuation-mode view of the world: the
// counterpart of Proc for bodies running under RunTasks.
type TProc struct {
	w    *World
	ep   *am.Endpoint
	sp   *sim.Proc
	task Task
	done bool // task finished; terminal barrier may still be running

	// op is the in-flight primitive's state cell. pc is the primitive's
	// own program counter, sub the leaf (request/recv) sub-counter, and
	// the rest is scratch a primitive keeps across parks.
	op opState

	// cells holds the collective operand cells, lazily allocated on
	// first collective use (tags as in sync.go/collectives.go).
	cells []collCell

	storeByteCount int64
	failedLocks    int64
}

// opState is the per-processor primitive state cell. One primitive is in
// flight at a time, so a single cell (rather than a stack) suffices.
type opState struct {
	pc    int    // primitive program counter (0 = no primitive in flight)
	sub   int    // leaf sub-machine counter (requestT / recvCollT / roundTripT)
	r     int    // round or fragment cursor
	bpc   int    // broadcast-tree program counter
	br    int    // broadcast-tree round cursor
	acc   uint64 // accumulator / round-trip result
	flag  int64  // round-trip completion counter (CounterWait target 1)
	tgt   int64  // barrier episode target
	recvd int64  // bulk-get words received (cumulative per call)
	out   []uint64
}

// collCell is one collective tag's operand slot: vals is a two-deep
// ring indexed by arrival/consumption counters (cnt counts operands ever
// received, exp operands ever consumed). With at most two operands in
// flight per tag (see the package comment), cnt ≤ exp+2 always — the
// handler guards this — so a value is never overwritten before its
// consumer reads it. acc accumulates operands delivered through the
// combining handler hCollAcc (the flat all-reduce's gather), which
// shares cnt/exp as pure counters; a tag uses one delivery mode or the
// other, never both.
type collCell struct {
	vals [2]uint64
	acc  uint64
	cnt  int64
	exp  int64
}

// RunTasks executes one Task per processor on the resumable runtime and
// returns when all have finished. Like Run, a terminal barrier is
// implied so all in-flight communication quiesces. mk is called once per
// processor, in processor order, before the run starts.
func (w *World) RunTasks(mk func(id int) Task) error {
	w.initContHandlers()
	P := w.P()
	w.tp = make([]*TProc, P)
	bodies := make([]sim.Resumable, P)
	for i := 0; i < P; i++ {
		t := &TProc{w: w, ep: w.m.Endpoint(i), task: mk(i)}
		w.tp[i] = t
		bodies[i] = t
	}
	err := w.eng.RunResumables(bodies)
	w.elapsed = w.eng.MaxClock()
	return err
}

// Resume implements sim.Resumable: drive the task, then the implied
// terminal barrier.
func (t *TProc) Resume(p *sim.Proc) (sim.PollableWait, bool) {
	t.sp = p
	if !t.done {
		wt, d := t.task.Step(t)
		if wt != nil {
			return wt, false
		}
		if !d {
			panic(fmt.Sprintf("splitc: proc %d Task.Step returned neither a wait nor done", t.ep.ID()))
		}
		t.done = true
	}
	if wt := t.BarrierT(); wt != nil {
		return wt, false
	}
	return nil, true
}

// initContHandlers creates the world's handler set once. Handlers close
// over the world only; per-processor results are routed through the
// receiving endpoint's TProc, so the steady-state send paths allocate
// nothing.
func (w *World) initContHandlers() {
	if w.hWrite != nil {
		return
	}
	w.hWrite = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		w.mem[a[0]>>32][uint32(a[0])] = a[1]
	}
	w.hBarrier = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		w.barrierOf(ep.ID()).recvCount[a[0]]++
	}
	w.hColl = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		c := w.tp[ep.ID()].cell(int(a[0]))
		if c.cnt-c.exp >= 2 {
			panic("splitc: collective operand ring overrun")
		}
		c.vals[c.cnt&1] = a[1]
		c.cnt++
	}
	// hCollAcc combines the operand into the cell on arrival (a[2] is
	// the ReduceOp code); used where one consumer drains an unbounded
	// fan-in, so a fixed ring cannot hold the episode.
	w.hCollAcc = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		c := w.tp[ep.ID()].cell(int(a[0]))
		c.acc = reduceApply(ReduceOp(a[2]), c.acc, a[1])
		c.cnt++
	}
	// hReply lands every short round-trip reply: the requester's op cell
	// is the destination (one round trip in flight per processor).
	w.hReply = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		t := w.tp[ep.ID()]
		t.op.acc = a[0]
		t.op.flag++
	}
	w.hReadReq = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		v := w.mem[a[0]>>32][uint32(a[0])]
		ep.Reply(tok, w.hReply, am.Args{v})
	}
	w.hFetchAdd = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		ptr := &w.mem[a[0]>>32][uint32(a[0])]
		v := *ptr
		*ptr += a[1]
		ep.Reply(tok, w.hReply, am.Args{v})
	}
	w.hTryLock = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		ptr := &w.mem[a[0]>>32][uint32(a[0])]
		var res uint64
		if *ptr == 0 {
			*ptr = 1
			res = 1
		}
		ep.Reply(tok, w.hReply, am.Args{res})
	}
	w.hCAS = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		ptr := &w.mem[a[0]>>32][uint32(a[0])]
		var res uint64
		if *ptr == a[1] {
			*ptr = a[2]
			res = 1
		}
		ep.Reply(tok, w.hReply, am.Args{res})
	}
	w.hBulkPut = func(ep *am.Endpoint, tok *am.Token, a am.Args, data []byte) {
		dst := UnpackGPtr(a[0])
		mem := w.mem[dst.Proc]
		for i := 0; i < len(data)/8; i++ {
			mem[int(dst.Off)+i] = binary.LittleEndian.Uint64(data[8*i:])
		}
	}
	w.hBulkGetRep = func(ep *am.Endpoint, tok *am.Token, a am.Args, data []byte) {
		t := w.tp[ep.ID()]
		base := int(a[0])
		for i := 0; i < len(data)/8; i++ {
			t.op.out[base+i] = binary.LittleEndian.Uint64(data[8*i:])
		}
		t.op.recvd += int64(len(data) / 8)
	}
	w.hBulkGetReq = func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		from := UnpackGPtr(a[0])
		cnt := int(a[1])
		mem := w.mem[from.Proc]
		buf := make([]byte, 8*cnt)
		for i := 0; i < cnt; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], mem[int(from.Off)+i])
		}
		ep.ReplyBulk(tok, w.hBulkGetRep, am.Args{a[2]}, buf)
	}
}

// ----- TProc surface shared with Proc -----

// ID returns the processor number in [0, P).
func (t *TProc) ID() int { return t.ep.ID() }

// P returns the processor count.
func (t *TProc) P() int { return t.w.P() }

// World returns the enclosing world.
func (t *TProc) World() *World { return t.w }

// EP exposes the raw Active Message endpoint.
func (t *TProc) EP() *am.Endpoint { return t.ep }

// Rand returns the processor's deterministic PRNG.
func (t *TProc) Rand() *rand.Rand { return t.sp.Rand() }

// Now returns the processor's virtual clock.
func (t *TProc) Now() sim.Time { return t.sp.Clock() }

// Compute charges local computation time.
func (t *TProc) Compute(d sim.Time) { t.ep.Compute(d) }

// ComputeUs charges local computation time given in microseconds.
func (t *TProc) ComputeUs(us float64) { t.ep.Compute(sim.FromMicros(us)) }

// PollT is Poll: service due arrivals, yielding between each so slower
// processors interleave exactly as the blocking Poll's Checkpoints
// allow. Resumptive; a nil return means the inbox is drained.
func (t *TProc) PollT() sim.PollableWait {
	switch t.op.sub {
	case 0:
		t.op.sub = 4
		return sim.Yield
	case 4:
		if t.ep.PollOneDue() {
			return sim.Yield
		}
	}
	t.op.sub = 0
	return nil
}

// Alloc reserves n words in the calling processor's global heap.
func (t *TProc) Alloc(n int) GPtr {
	id := t.ID()
	off := len(t.w.mem[id])
	t.w.mem[id] = append(t.w.mem[id], make([]uint64, n)...)
	return GPtr{Proc: int32(id), Off: int32(off)}
}

// Local returns a direct slice view of n words at g, which must live on
// the calling processor.
func (t *TProc) Local(g GPtr, n int) []uint64 {
	if int(g.Proc) != t.ID() {
		panic(fmt.Sprintf("splitc: Local(%v) on proc %d", g, t.ID()))
	}
	return t.w.mem[g.Proc][g.Off : int(g.Off)+n]
}

// StoreBytes counts the bytes written via pipelined stores since the
// last ResetStoreBytes.
func (t *TProc) StoreBytes() int64 { return t.storeByteCount }

// ResetStoreBytes zeroes the pipelined-store byte counter.
func (t *TProc) ResetStoreBytes() { t.storeByteCount = 0 }

// FailedLockAttempts reports how many TryLock retries LockT has burned.
func (t *TProc) FailedLockAttempts() int64 { return t.failedLocks }

func (t *TProc) fragWords() int { return t.w.m.Params().FragmentSize / 8 }

func (t *TProc) syncEnter(r SyncRegion) {
	for _, h := range t.w.sync {
		h.SyncEnter(t.ID(), r, t.sp.Clock())
	}
}

func (t *TProc) syncExit(r SyncRegion) {
	for _, h := range t.w.sync {
		h.SyncExit(t.ID(), r, t.sp.Clock())
	}
}

// cell returns the collective operand cell for tag, allocating the tag
// table (sized by the world's tag-space layout) on first collective use.
func (t *TProc) cell(tag int) *collCell {
	if t.cells == nil {
		t.cells = make([]collCell, t.w.sel.numTags)
	}
	return &t.cells[tag]
}

// ----- leaf sub-machines -----

// requestT is the continuation form of Endpoint.Request's preamble and
// send: poll (yielding before the first inbox inspection and between
// serviced arrivals, as Poll checkpoints), stall on the window if full,
// then commit. op.sub: 0 fresh, 4 in the poll loop, 1 re-entered after a
// window park.
func (t *TProc) requestT(dst int, class am.Class, h am.Handler, a am.Args) sim.PollableWait {
	switch t.op.sub {
	case 0:
		// Poll's leading Checkpoint: every processor at a smaller
		// (clock, id) runs before the inbox is inspected.
		t.op.sub = 4
		return sim.Yield
	case 4:
		if t.ep.PollOneDue() {
			return sim.Yield // Checkpoint between serviced arrivals
		}
		if !t.ep.CanSend(dst) {
			t.ep.MarkWaitBegin(am.WaitWindow)
			t.op.sub = 1
			return t.ep.WindowWait(dst)
		}
	case 1:
		// The engine established a free credit; send without re-testing,
		// exactly as waitWindow breaks without re-testing.
		t.ep.MarkWaitEnd(am.WaitWindow)
	}
	t.op.sub = 0
	t.ep.SendRequest(dst, class, h, a)
	return nil
}

// storeT is requestT for one bulk fragment (Endpoint.Store's shape).
func (t *TProc) storeT(dst int, class am.Class, h am.BulkHandler, a am.Args, data []byte) sim.PollableWait {
	switch t.op.sub {
	case 0:
		t.op.sub = 4
		return sim.Yield
	case 4:
		if t.ep.PollOneDue() {
			return sim.Yield
		}
		if !t.ep.CanSend(dst) {
			t.ep.MarkWaitBegin(am.WaitWindow)
			t.op.sub = 1
			return t.ep.WindowWait(dst)
		}
	case 1:
		t.ep.MarkWaitEnd(am.WaitWindow)
	}
	t.op.sub = 0
	t.ep.SendStore(dst, class, h, a, data)
	return nil
}

// roundTripT issues a request and waits for its short reply; the reply
// value lands in op.acc via hReply. op.sub: 0/1 inside requestT, 2
// parked on the reply.
func (t *TProc) roundTripT(dst int, class am.Class, h am.Handler, a am.Args, kind am.WaitKind, reason string) (uint64, sim.PollableWait) {
	if t.op.sub == 2 {
		t.ep.MarkWaitEnd(kind)
		t.op.sub = 0
		return t.op.acc, nil
	}
	t.op.flag = 0
	if wt := t.requestT(dst, class, h, a); wt != nil {
		return 0, wt
	}
	// The reply is at least a round trip away; the wait can never be
	// ready at this instant, so park unconditionally (as the blocking
	// WaitUntilFor would after its first failed condition test).
	t.ep.MarkWaitBegin(kind)
	t.op.sub = 2
	return 0, t.ep.CounterWait(&t.op.flag, 1, reason)
}

// sendCollT ships one operand word to dst under tag (sendColl's shape).
func (t *TProc) sendCollT(dst, tag int, val uint64) sim.PollableWait {
	return t.requestT(dst, am.ClassSync, t.w.hColl, am.Args{uint64(tag), val})
}

// sendCollAccT ships one operand word for arrival-time combination
// under op (the flat all-reduce's gather leg).
func (t *TProc) sendCollAccT(dst, tag int, val uint64, op ReduceOp) sim.PollableWait {
	return t.requestT(dst, am.ClassSync, t.w.hCollAcc, am.Args{uint64(tag), val, uint64(op)})
}

// recvCollT consumes the next operand under tag, waiting if it has not
// arrived (recvColl's shape). op.sub: 0 fresh, 3 parked on the cell.
func (t *TProc) recvCollT(tag int) (uint64, sim.PollableWait) {
	c := t.cell(tag)
	if t.op.sub == 3 {
		t.ep.MarkWaitEnd(am.WaitBarrier)
		t.op.sub = 0
		v := c.vals[c.exp&1]
		c.exp++
		return v, nil
	}
	// Park unconditionally: the engine steps the wait only once every
	// processor at a smaller (clock, id) has run, which is exactly the
	// blocking wait's leading Checkpoint. An operand that has already
	// arrived satisfies the wait on that first step without advancing
	// the clock.
	t.ep.MarkWaitBegin(am.WaitBarrier)
	t.op.sub = 3
	return 0, t.ep.CounterWait(&c.cnt, c.exp+1, "splitc: collective recv")
}

// ----- continuation primitives -----

// WriteWordT is WriteWord: one pipelined short store, stalling only on a
// full window. A nil return means the store was issued.
func (t *TProc) WriteWordT(g GPtr, v uint64) sim.PollableWait {
	if int(g.Proc) == t.ID() {
		*t.w.word(g) = v
		return nil
	}
	if wt := t.requestT(int(g.Proc), am.ClassWrite, t.w.hWrite, am.Args{g.Pack(), v}); wt != nil {
		return wt
	}
	t.storeByteCount += 8
	return nil
}

// ReadWordT is ReadWord: a blocking remote read, one request + reply.
func (t *TProc) ReadWordT(g GPtr) (uint64, sim.PollableWait) {
	if int(g.Proc) == t.ID() {
		return *t.w.word(g), nil
	}
	return t.roundTripT(int(g.Proc), am.ClassRead, t.w.hReadReq, am.Args{g.Pack()}, am.WaitRead, "splitc: blocking read")
}

// StoreSyncT is StoreSync: wait until every issued request is acked.
// op.pc: 0 fresh, 1 parked on quiescence.
func (t *TProc) StoreSyncT() sim.PollableWait {
	if t.op.pc == 1 {
		t.ep.MarkWaitEnd(am.WaitStore)
		t.op.pc = 0
		return nil
	}
	t.ep.MarkWaitBegin(am.WaitStore)
	t.op.pc = 1
	return t.ep.QuiesceWait()
}

// FetchAddT is FetchAdd: an atomic remote add returning the old value.
func (t *TProc) FetchAddT(g GPtr, delta uint64) (uint64, sim.PollableWait) {
	if int(g.Proc) == t.ID() {
		ptr := t.w.word(g)
		old := *ptr
		*ptr += delta
		return old, nil
	}
	return t.roundTripT(int(g.Proc), am.ClassSync, t.w.hFetchAdd, am.Args{g.Pack(), delta}, am.WaitLock, "splitc: fetch-add")
}

// TryLockT is TryLock: one test-and-set round trip.
func (t *TProc) TryLockT(g GPtr) (bool, sim.PollableWait) {
	if int(g.Proc) == t.ID() {
		ptr := t.w.word(g)
		if *ptr == 0 {
			*ptr = 1
			return true, nil
		}
		return false, nil
	}
	v, wt := t.roundTripT(int(g.Proc), am.ClassSync, t.w.hTryLock, am.Args{g.Pack()}, am.WaitLock, "splitc: try-lock")
	if wt != nil {
		return false, wt
	}
	return v == 1, nil
}

// CompareSwapT is CompareSwap: one compare-and-swap round trip.
func (t *TProc) CompareSwapT(g GPtr, old, next uint64) (bool, sim.PollableWait) {
	if int(g.Proc) == t.ID() {
		ptr := t.w.word(g)
		if *ptr == old {
			*ptr = next
			return true, nil
		}
		return false, nil
	}
	v, wt := t.roundTripT(int(g.Proc), am.ClassSync, t.w.hCAS, am.Args{g.Pack(), old, next}, am.WaitLock, "splitc: compare-swap")
	if wt != nil {
		return false, wt
	}
	return v == 1, nil
}

// LockT is Lock: spin on TryLockT until acquired, charging the spin cost
// and yielding between retries so peers (in particular the holder) can
// run. op.pc: 0 enter, 1 trying, 2 re-entered after the yield.
func (t *TProc) LockT(g GPtr) sim.PollableWait {
	for {
		switch t.op.pc {
		case 0:
			t.syncEnter(RegionLock)
			t.op.pc = 1
		case 1:
			got, wt := t.TryLockT(g)
			if wt != nil {
				return wt
			}
			if got {
				t.syncExit(RegionLock)
				t.op.pc = 0
				return nil
			}
			t.failedLocks++
			t.ep.Compute(lockSpinCost)
			t.op.pc = 2
			// The spin's Poll(): a yield (its leading Checkpoint), then
			// one serviced arrival per further yield.
			return sim.Yield
		case 2:
			if t.ep.PollOneDue() {
				return sim.Yield
			}
			t.op.pc = 1
		}
	}
}

// UnlockT is Unlock: release the lock word with a pipelined store.
func (t *TProc) UnlockT(g GPtr) sim.PollableWait { return t.WriteWordT(g, 0) }

// BarrierT is Barrier: store-sync, then the world's selected barrier
// algorithm.
func (t *TProc) BarrierT() sim.PollableWait { return t.w.sel.barrier.runT(t) }

// barrierDissemT is barrierDissem: store-sync, then the dissemination
// barrier. op.pc: 0 enter, 1 store-sync complete, 2 round dispatch
// (op.r), 3 round notification received.
func (t *TProc) barrierDissemT() sim.PollableWait {
	w, me, P := t.w, t.ID(), t.P()
	for {
		switch t.op.pc {
		case 0:
			t.syncEnter(RegionBarrier)
			t.ep.MarkWaitBegin(am.WaitStore)
			t.op.pc = 1
			return t.ep.QuiesceWait()
		case 1:
			t.ep.MarkWaitEnd(am.WaitStore)
			if P == 1 {
				w.m.Stats().CountBarrier()
				t.syncExit(RegionBarrier)
				t.op.pc = 0
				return nil
			}
			bs := w.barrierOf(me)
			bs.episodes++
			t.op.tgt = bs.episodes
			t.op.r = 0
			t.op.pc = 2
		case 2:
			if 1<<t.op.r >= P {
				if me == 0 {
					w.m.Stats().CountBarrier()
				}
				t.syncExit(RegionBarrier)
				t.op.pc = 0
				return nil
			}
			dst := (me + 1<<t.op.r) % P
			if wt := t.requestT(dst, am.ClassSync, w.hBarrier, am.Args{uint64(t.op.r)}); wt != nil {
				return wt
			}
			t.ep.MarkWaitBegin(am.WaitBarrier)
			bs := w.barrierOf(me)
			t.op.pc = 3
			return t.ep.CounterWait(&bs.recvCount[t.op.r], t.op.tgt, "splitc: barrier")
		case 3:
			t.ep.MarkWaitEnd(am.WaitBarrier)
			t.op.r++
			t.op.pc = 2
		}
	}
}

// bcastTreeT is bcastTree: the binomial broadcast sub-machine shared by
// the tree all-reduce and the binomial broadcast, parameterized by the
// collective's tag block. The value travels in op.acc. op.bpc: 0 enter,
// 1 receiving, 2 forwarding (op.br round cursor).
func (t *TProc) bcastTreeT(root int, base int) (uint64, sim.PollableWait) {
	me, P := t.ID(), t.P()
	rounds := logRounds(P)
	vid := (me - root + P) % P
	for {
		switch t.op.bpc {
		case 0:
			if vid != 0 {
				t.op.br = highestBit(vid)
				t.op.bpc = 1
				continue
			}
			t.op.br = 0
			t.op.bpc = 2
		case 1:
			v, wt := t.recvCollT(base + t.op.br)
			if wt != nil {
				return 0, wt
			}
			t.op.acc = v
			t.op.br++
			t.op.bpc = 2
		case 2:
			for t.op.br < rounds {
				r := t.op.br
				child := vid + 1<<r
				if vid < 1<<r && child < P {
					if wt := t.sendCollT((child+root)%P, base+r, t.op.acc); wt != nil {
						return 0, wt
					}
				}
				t.op.br++
			}
			t.op.bpc = 0
			return t.op.acc, nil
		}
	}
}

// AllReduceT is AllReduce: the reduce-broadcast tree with a custom
// operator. opFn must be a stable function value (use a package-level
// function, not a per-call closure) since the primitive is re-entered
// with it.
//
// Deprecated: custom operators always run the binomial tree, bypassing
// the world's algorithm selection. Use AllReduceOpT with a ReduceOp (or
// the AllReduceSumT/AllReduceMaxT wrappers).
func (t *TProc) AllReduceT(val uint64, opFn func(a, b uint64) uint64) (uint64, sim.PollableWait) {
	if t.P() == 1 {
		return val, nil
	}
	return t.allReduceTreeFnT(val, opFn)
}

// allReduceTreeFnT is allReduceTreeFn: binomial reduce to processor 0,
// binomial broadcast back. op.pc: 0 enter, 1 round dispatch, 2 sending
// the partial, 3 receiving a partial, 4 broadcasting.
func (t *TProc) allReduceTreeFnT(val uint64, opFn func(a, b uint64) uint64) (uint64, sim.PollableWait) {
	w, me, P := t.w, t.ID(), t.P()
	for {
		switch t.op.pc {
		case 0:
			t.op.acc = val
			t.op.r = 0
			t.op.pc = 1
		case 1:
			mask := 1 << t.op.r
			if mask >= P {
				t.op.pc = 4
				continue
			}
			if me&mask != 0 {
				t.op.pc = 2
				continue
			}
			if me+mask < P {
				t.op.pc = 3
				continue
			}
			t.op.r++
		case 2:
			mask := 1 << t.op.r
			if wt := t.sendCollT(me&^mask, w.reduceTag(t.op.r), t.op.acc); wt != nil {
				return 0, wt
			}
			t.op.pc = 4
		case 3:
			v, wt := t.recvCollT(w.reduceTag(t.op.r))
			if wt != nil {
				return 0, wt
			}
			t.op.acc = opFn(t.op.acc, v)
			t.op.r++
			t.op.pc = 1
		case 4:
			v, wt := t.bcastTreeT(0, w.arBcastTag(0))
			if wt != nil {
				return 0, wt
			}
			t.op.pc = 0
			return v, nil
		}
	}
}

func addOp(a, b uint64) uint64 { return a + b }

func maxOp(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// AllReduceOpT is AllReduceOp: combine one word from every processor
// with a built-in operator via the world's selected all-reduce
// algorithm.
func (t *TProc) AllReduceOpT(val uint64, op ReduceOp) (uint64, sim.PollableWait) {
	if t.P() == 1 {
		return val, nil
	}
	return t.w.sel.ar.runT(t, val, op)
}

// AllReduceSumT sums one word across processors.
func (t *TProc) AllReduceSumT(v uint64) (uint64, sim.PollableWait) {
	return t.AllReduceOpT(v, OpSum)
}

// AllReduceMaxT takes the maximum of one word across processors.
func (t *TProc) AllReduceMaxT(v uint64) (uint64, sim.PollableWait) {
	return t.AllReduceOpT(v, OpMax)
}

// BroadcastT is Broadcast: distribute root's val to all processors with
// the world's selected broadcast algorithm. Successive BroadcastT
// episodes must be separated by a BarrierT (see the package comment).
func (t *TProc) BroadcastT(root int, val uint64) (uint64, sim.PollableWait) {
	P := t.P()
	if P == 1 {
		return val, nil
	}
	if root < 0 || root >= P {
		panic(fmt.Sprintf("splitc: Broadcast root %d out of range", root))
	}
	return t.w.sel.bcast.runT(t, root, val)
}

// ScanAddT is ScanAdd: the exclusive prefix sum, Hillis-Steele.
// op.pc: 0 enter, 1 send phase of round op.r, 2 recv phase.
func (t *TProc) ScanAddT(val uint64) (uint64, sim.PollableWait) {
	w, me, P := t.w, t.ID(), t.P()
	if P == 1 {
		return 0, nil
	}
	for {
		switch t.op.pc {
		case 0:
			t.op.acc = val // inclusive sum in progress
			t.op.r = 0
			t.op.pc = 1
		case 1:
			if 1<<t.op.r >= P {
				res := t.op.acc - val
				t.op.pc = 0
				return res, nil
			}
			dist := 1 << t.op.r
			if me+dist < P {
				if wt := t.sendCollT(me+dist, w.scanTag(t.op.r), t.op.acc); wt != nil {
					return 0, wt
				}
			}
			t.op.pc = 2
		case 2:
			dist := 1 << t.op.r
			if me-dist >= 0 {
				v, wt := t.recvCollT(w.scanTag(t.op.r))
				if wt != nil {
					return 0, wt
				}
				t.op.acc += v
			}
			t.op.r++
			t.op.pc = 1
		}
	}
}

// BulkPutT is BulkPut: pipelined bulk fragments under the window.
// op.pc: 0 fresh, 1 fragment loop (op.r is the word offset).
func (t *TProc) BulkPutT(g GPtr, vals []uint64) sim.PollableWait {
	if int(g.Proc) == t.ID() {
		copy(t.w.mem[g.Proc][g.Off:], vals)
		return nil
	}
	if t.op.pc == 0 {
		t.op.r = 0
		t.op.pc = 1
	}
	frag := t.fragWords()
	for t.op.r < len(vals) {
		off := t.op.r
		end := off + frag
		if end > len(vals) {
			end = len(vals)
		}
		chunk := vals[off:end]
		buf := make([]byte, 8*len(chunk))
		for i, v := range chunk {
			binary.LittleEndian.PutUint64(buf[8*i:], v)
		}
		target := g.Add(off)
		if wt := t.storeT(int(g.Proc), am.ClassWrite, t.w.hBulkPut, am.Args{target.Pack()}, buf); wt != nil {
			return wt
		}
		t.storeByteCount += int64(len(buf))
		t.op.r = end
	}
	t.op.pc = 0
	return nil
}

// BulkGetT is BulkGet: a blocking bulk read of n words at g. op.pc: 0
// fresh, 1 fragment-request loop (op.r word offset), 2 all fragments
// arrived.
func (t *TProc) BulkGetT(g GPtr, n int) ([]uint64, sim.PollableWait) {
	if int(g.Proc) == t.ID() {
		out := make([]uint64, n)
		copy(out, t.w.mem[g.Proc][g.Off:int(g.Off)+n])
		return out, nil
	}
	for {
		switch t.op.pc {
		case 0:
			t.op.out = make([]uint64, n)
			t.op.recvd = 0
			t.op.r = 0
			t.op.pc = 1
		case 1:
			frag := t.fragWords()
			for t.op.r < n {
				off := t.op.r
				count := frag
				if off+count > n {
					count = n - off
				}
				src := g.Add(off)
				if wt := t.requestT(int(g.Proc), am.ClassRead, t.w.hBulkGetReq, am.Args{src.Pack(), uint64(count), uint64(off)}); wt != nil {
					return nil, wt
				}
				t.op.r = off + frag
			}
			t.ep.MarkWaitBegin(am.WaitBulk)
			t.op.pc = 2
			return nil, t.ep.CounterWait(&t.op.recvd, int64(n), "splitc: bulk get")
		case 2:
			t.ep.MarkWaitEnd(am.WaitBulk)
			out := t.op.out
			t.op.out = nil
			t.op.pc = 0
			return out, nil
		}
	}
}
