package splitc

import (
	"fmt"

	"repro/internal/logp"
	"repro/internal/sim"
	"repro/internal/splitc/tune"
)

// This file is the pluggable collective engine: the algorithm registry,
// the per-world selection, and the tag-space allocator. Each primitive
// (barrier, broadcast, all-reduce) has several registered algorithms;
// every algorithm exists as a blocking Proc method and a continuation
// TProc twin, paired by the chargetwin analyzer, so the selection
// machinery never touches what either runtime charges. A World resolves
// its selection once, at construction, from Config.Collectives — names,
// "auto" (the tune package's LogGP cost models pick), or the zero value
// for the historical defaults.

// CollAuto selects an algorithm via the LogGP auto-tuner in
// internal/splitc/tune, evaluated against the world's own (P, L, o, g,
// G) at construction.
const CollAuto = "auto"

// Collectives names the collective algorithm per primitive. The zero
// value selects the package's historical defaults (dissemination
// barrier, binomial broadcast, reduce-broadcast tree all-reduce), which
// are schedule-identical to the pre-engine fixed algorithms. Valid names
// are the tune package constants, or CollAuto.
type Collectives struct {
	Barrier   string
	Broadcast string
	AllReduce string
}

// withDefaults fills empty fields with the historical default names.
func (c Collectives) withDefaults() Collectives {
	if c.Barrier == "" {
		c.Barrier = tune.BarrierDissemination
	}
	if c.Broadcast == "" {
		c.Broadcast = tune.BcastBinomial
	}
	if c.AllReduce == "" {
		c.AllReduce = tune.AllReduceTree
	}
	return c
}

// IsZero reports whether c is the all-default selection.
func (c Collectives) IsZero() bool { return c == Collectives{} }

// String renders the selection compactly for run keys and progress
// lines ("bar=tree,bc=flat,ar=recdouble"; empty for the zero value).
func (c Collectives) String() string {
	if c.IsZero() {
		return ""
	}
	d := c.withDefaults()
	return fmt.Sprintf("bar=%s,bc=%s,ar=%s", d.Barrier, d.Broadcast, d.AllReduce)
}

// ReduceOp identifies a built-in all-reduce operator. The operator code
// travels in the message for algorithms whose handlers combine on
// arrival, so only operators with identity 0 under uint64 arithmetic are
// representable.
type ReduceOp uint8

const (
	// OpSum adds operands (mod 2^64).
	OpSum ReduceOp = iota
	// OpMax takes the operand maximum.
	OpMax
)

// fn returns the operator's combining function (stable package-level
// values, as the continuation primitives require).
func (op ReduceOp) fn() func(a, b uint64) uint64 {
	if op == OpMax {
		return maxOp
	}
	return addOp
}

// reduceApply combines on the receiving processor for the accumulating
// collective handler.
func reduceApply(op ReduceOp, a, b uint64) uint64 { return op.fn()(a, b) }

// ----- registry -----

// barrierAlg is one registered barrier algorithm: its blocking and
// continuation twins plus the per-processor counter slots it needs.
type barrierAlg struct {
	name  string
	slots func(p int) int
	run   func(*Proc)
	runT  func(*TProc) sim.PollableWait
}

// bcastAlg is one registered broadcast algorithm and the tag block it
// needs.
type bcastAlg struct {
	name string
	tags func(p int) int
	run  func(*Proc, int, uint64) uint64
	runT func(*TProc, int, uint64) (uint64, sim.PollableWait)
}

// arAlg is one registered all-reduce algorithm and the tag block it
// needs.
type arAlg struct {
	name string
	tags func(p int) int
	run  func(*Proc, uint64, ReduceOp) uint64
	runT func(*TProc, uint64, ReduceOp) (uint64, sim.PollableWait)
}

func twoSlots(int) int { return 2 }

// barrierRegistry lists the barrier algorithms, default first. Returned
// fresh so no package-level mutable state exists.
func barrierRegistry() []barrierAlg {
	return []barrierAlg{
		{name: tune.BarrierDissemination, slots: logRounds, run: (*Proc).barrierDissem, runT: (*TProc).barrierDissemT},
		{name: tune.BarrierTree, slots: twoSlots, run: (*Proc).barrierTree, runT: (*TProc).barrierTreeT},
		{name: tune.BarrierFlat, slots: twoSlots, run: (*Proc).barrierFlat, runT: (*TProc).barrierFlatT},
	}
}

// bcastRegistry lists the broadcast algorithms, default first.
func bcastRegistry() []bcastAlg {
	one := func(int) int { return 1 }
	return []bcastAlg{
		{name: tune.BcastBinomial, tags: logRounds, run: (*Proc).bcastBinomial, runT: (*TProc).bcastBinomialT},
		{name: tune.BcastChain, tags: one, run: (*Proc).bcastChain, runT: (*TProc).bcastChainT},
		{name: tune.BcastFlat, tags: one, run: (*Proc).bcastFlat, runT: (*TProc).bcastFlatT},
	}
}

// arRegistry lists the all-reduce algorithms, default first.
func arRegistry() []arAlg {
	return []arAlg{
		{name: tune.AllReduceTree, tags: func(p int) int { return 2 * logRounds(p) }, run: (*Proc).allReduceTree, runT: (*TProc).allReduceTreeT},
		{name: tune.AllReduceRecDouble, tags: func(p int) int { return logRounds(p) + 2 }, run: (*Proc).allReduceRecDouble, runT: (*TProc).allReduceRecDoubleT},
		{name: tune.AllReduceFlat, tags: twoSlots, run: (*Proc).allReduceFlat, runT: (*TProc).allReduceFlatT},
	}
}

// BarrierAlgorithms lists the registered barrier algorithm names,
// default first.
func BarrierAlgorithms() []string {
	var ns []string
	for _, a := range barrierRegistry() {
		ns = append(ns, a.name)
	}
	return ns
}

// BroadcastAlgorithms lists the registered broadcast algorithm names,
// default first.
func BroadcastAlgorithms() []string {
	var ns []string
	for _, a := range bcastRegistry() {
		ns = append(ns, a.name)
	}
	return ns
}

// AllReduceAlgorithms lists the registered all-reduce algorithm names,
// default first.
func AllReduceAlgorithms() []string {
	var ns []string
	for _, a := range arRegistry() {
		ns = append(ns, a.name)
	}
	return ns
}

// ----- selection -----

// tagSpace allocates disjoint AM tag blocks so algorithms cannot
// collide, replacing the former fixed tag arithmetic.
type tagSpace struct{ next int }

func (ts *tagSpace) grab(n int) int {
	base := ts.next
	ts.next += n
	return base
}

// collSel is a world's resolved collective selection: the three chosen
// algorithms plus the tag-space layout they (and the standalone
// scan/gather/all-to-all collectives) were allocated.
type collSel struct {
	names   Collectives // resolved concrete names (never "" or "auto")
	barrier barrierAlg
	bcast   bcastAlg
	ar      arAlg

	arBase     int // the all-reduce algorithm's tag block
	bcastBase  int // the broadcast algorithm's tag block
	scanBase   int // ⌈log2 P⌉ Hillis-Steele scan rounds
	gatherBase int // one gather tag
	a2aBase    int // one all-to-all tag

	numTags  int // total allocated tags (sizes collOf and TProc cells)
	barSlots int // barrier counter slots per processor
}

// resolveCollectives validates c for a p-processor world on the given
// machine, resolving "auto" fields through the tuner, and lays out the
// tag space. The default selection reproduces the historical fixed
// layout exactly (reduce rounds, then all-reduce broadcast rounds, then
// broadcast rounds, then scan rounds, then gather and all-to-all).
func resolveCollectives(c Collectives, p int, params logp.Params) (collSel, error) {
	c = c.withDefaults()
	if c.Barrier == CollAuto || c.Broadcast == CollAuto || c.AllReduce == CollAuto {
		pick := tune.Select(p, 8, params)
		if c.Barrier == CollAuto {
			c.Barrier = pick.Barrier
		}
		if c.Broadcast == CollAuto {
			c.Broadcast = pick.Broadcast
		}
		if c.AllReduce == CollAuto {
			c.AllReduce = pick.AllReduce
		}
	}
	s := collSel{names: c}
	found := false
	for _, a := range barrierRegistry() {
		if a.name == c.Barrier {
			s.barrier, found = a, true
			break
		}
	}
	if !found {
		return collSel{}, fmt.Errorf("splitc: unknown barrier algorithm %q (have %v)", c.Barrier, BarrierAlgorithms())
	}
	found = false
	for _, a := range bcastRegistry() {
		if a.name == c.Broadcast {
			s.bcast, found = a, true
			break
		}
	}
	if !found {
		return collSel{}, fmt.Errorf("splitc: unknown broadcast algorithm %q (have %v)", c.Broadcast, BroadcastAlgorithms())
	}
	found = false
	for _, a := range arRegistry() {
		if a.name == c.AllReduce {
			s.ar, found = a, true
			break
		}
	}
	if !found {
		return collSel{}, fmt.Errorf("splitc: unknown all-reduce algorithm %q (have %v)", c.AllReduce, AllReduceAlgorithms())
	}
	var ts tagSpace
	s.arBase = ts.grab(s.ar.tags(p))
	s.bcastBase = ts.grab(s.bcast.tags(p))
	s.scanBase = ts.grab(logRounds(p))
	s.gatherBase = ts.grab(1)
	s.a2aBase = ts.grab(1)
	s.numTags = ts.next
	s.barSlots = s.barrier.slots(p)
	return s, nil
}

// CollectiveNames returns the world's resolved algorithm selection
// (after defaulting and auto-tuning).
func (w *World) CollectiveNames() Collectives { return w.sel.names }
