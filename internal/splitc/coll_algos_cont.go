package splitc

import (
	"repro/internal/am"
	"repro/internal/sim"
)

// Continuation twins of the algorithms in coll_algos.go, written in the
// resumptive style of cont.go. Each method replays its blocking
// original statement for statement — same sends in the same source
// order, same wait conditions, same instrumentation — which is what the
// chargetwin analyzer checks pairwise and what keeps the two runtimes'
// timelines bit-identical under any selection.

// barrierTreeT is barrierTree: store-sync, gather up the binomial tree,
// release back down it. op.pc: 0 enter, 1 store-sync complete, 2 subtree
// gathered, 3 arrival sent upward, 4 release received, 5 release fan-out
// (op.r round cursor).
func (t *TProc) barrierTreeT() sim.PollableWait {
	w, me, P := t.w, t.ID(), t.P()
	for {
		switch t.op.pc {
		case 0:
			t.syncEnter(RegionBarrier)
			t.ep.MarkWaitBegin(am.WaitStore)
			t.op.pc = 1
			return t.ep.QuiesceWait()
		case 1:
			t.ep.MarkWaitEnd(am.WaitStore)
			if P == 1 {
				w.m.Stats().CountBarrier()
				t.syncExit(RegionBarrier)
				t.op.pc = 0
				return nil
			}
			bs := w.barrierOf(me)
			bs.episodes++
			t.op.tgt = bs.episodes
			if nch := treeChildren(me, P); nch > 0 {
				t.ep.MarkWaitBegin(am.WaitBarrier)
				t.op.pc = 2
				return t.ep.CounterWait(&bs.recvCount[slotArrive], int64(nch)*t.op.tgt, "splitc: tree barrier gather")
			}
			t.op.pc = 3
		case 2:
			t.ep.MarkWaitEnd(am.WaitBarrier)
			t.op.pc = 3
		case 3:
			if me == 0 {
				t.op.r = 0
				t.op.pc = 5
				continue
			}
			parent := me &^ (1 << uint(highestBit(me)))
			if wt := t.requestT(parent, am.ClassSync, w.hBarrier, am.Args{slotArrive}); wt != nil {
				return wt
			}
			bs := w.barrierOf(me)
			t.ep.MarkWaitBegin(am.WaitBarrier)
			t.op.pc = 4
			return t.ep.CounterWait(&bs.recvCount[slotRelease], t.op.tgt, "splitc: tree barrier release")
		case 4:
			t.ep.MarkWaitEnd(am.WaitBarrier)
			t.op.r = 0
			t.op.pc = 5
		case 5:
			for 1<<t.op.r < P {
				r := t.op.r
				if me < 1<<r && me+1<<r < P {
					if wt := t.requestT(me+1<<r, am.ClassSync, w.hBarrier, am.Args{slotRelease}); wt != nil {
						return wt
					}
				}
				t.op.r++
			}
			if me == 0 {
				w.m.Stats().CountBarrier()
			}
			t.syncExit(RegionBarrier)
			t.op.pc = 0
			return nil
		}
	}
}

// barrierFlatT is barrierFlat: store-sync, all arrivals on processor 0,
// direct release fan-out. op.pc: 0 enter, 1 store-sync complete, 2 root
// gathered, 3 root release loop (op.r), 4 arrival sent, 5 release
// received.
func (t *TProc) barrierFlatT() sim.PollableWait {
	w, me, P := t.w, t.ID(), t.P()
	for {
		switch t.op.pc {
		case 0:
			t.syncEnter(RegionBarrier)
			t.ep.MarkWaitBegin(am.WaitStore)
			t.op.pc = 1
			return t.ep.QuiesceWait()
		case 1:
			t.ep.MarkWaitEnd(am.WaitStore)
			if P == 1 {
				w.m.Stats().CountBarrier()
				t.syncExit(RegionBarrier)
				t.op.pc = 0
				return nil
			}
			bs := w.barrierOf(me)
			bs.episodes++
			t.op.tgt = bs.episodes
			if me == 0 {
				t.ep.MarkWaitBegin(am.WaitBarrier)
				t.op.pc = 2
				return t.ep.CounterWait(&bs.recvCount[slotArrive], int64(P-1)*t.op.tgt, "splitc: flat barrier gather")
			}
			t.op.pc = 4
		case 2:
			t.ep.MarkWaitEnd(am.WaitBarrier)
			t.op.r = 1
			t.op.pc = 3
		case 3:
			for t.op.r < P {
				if wt := t.requestT(t.op.r, am.ClassSync, w.hBarrier, am.Args{slotRelease}); wt != nil {
					return wt
				}
				t.op.r++
			}
			w.m.Stats().CountBarrier()
			t.syncExit(RegionBarrier)
			t.op.pc = 0
			return nil
		case 4:
			if wt := t.requestT(0, am.ClassSync, w.hBarrier, am.Args{slotArrive}); wt != nil {
				return wt
			}
			bs := w.barrierOf(me)
			t.ep.MarkWaitBegin(am.WaitBarrier)
			t.op.pc = 5
			return t.ep.CounterWait(&bs.recvCount[slotRelease], t.op.tgt, "splitc: flat barrier release")
		case 5:
			t.ep.MarkWaitEnd(am.WaitBarrier)
			t.syncExit(RegionBarrier)
			t.op.pc = 0
			return nil
		}
	}
}

// bcastBinomialT is bcastBinomial: the binomial tree under the
// broadcast tag block. op.pc: 0 enter, 1 tree in progress.
func (t *TProc) bcastBinomialT(root int, val uint64) (uint64, sim.PollableWait) {
	if t.op.pc == 0 {
		t.op.acc = val
		t.op.pc = 1
	}
	v, wt := t.bcastTreeT(root, t.w.sel.bcastBase)
	if wt != nil {
		return 0, wt
	}
	t.op.pc = 0
	return v, nil
}

// bcastChainT is bcastChain: forward the value around the rotated ring.
// op.pc: 0 enter, 1 receiving, 2 forwarding.
func (t *TProc) bcastChainT(root int, val uint64) (uint64, sim.PollableWait) {
	w, me, P := t.w, t.ID(), t.P()
	tag := w.sel.bcastBase
	vid := (me - root + P) % P
	for {
		switch t.op.pc {
		case 0:
			t.op.acc = val
			if vid != 0 {
				t.op.pc = 1
				continue
			}
			t.op.pc = 2
		case 1:
			v, wt := t.recvCollT(tag)
			if wt != nil {
				return 0, wt
			}
			t.op.acc = v
			t.op.pc = 2
		case 2:
			if vid+1 < P {
				if wt := t.sendCollT((me+1)%P, tag, t.op.acc); wt != nil {
					return 0, wt
				}
			}
			t.op.pc = 0
			return t.op.acc, nil
		}
	}
}

// bcastFlatT is bcastFlat: the root sends to everyone directly, in
// processor order. op.pc: 0 enter, 1 root fan-out (op.r), 2 receiving.
func (t *TProc) bcastFlatT(root int, val uint64) (uint64, sim.PollableWait) {
	w, me, P := t.w, t.ID(), t.P()
	tag := w.sel.bcastBase
	for {
		switch t.op.pc {
		case 0:
			t.op.acc = val
			if me == root {
				t.op.r = 0
				t.op.pc = 1
				continue
			}
			t.op.pc = 2
		case 1:
			for t.op.r < P {
				q := t.op.r
				if q != root {
					if wt := t.sendCollT(q, tag, t.op.acc); wt != nil {
						return 0, wt
					}
				}
				t.op.r++
			}
			t.op.pc = 0
			return t.op.acc, nil
		case 2:
			v, wt := t.recvCollT(tag)
			if wt != nil {
				return 0, wt
			}
			t.op.pc = 0
			return v, nil
		}
	}
}

// allReduceTreeT is allReduceTree: the reduce-broadcast tree adapted to
// the engine's operator-code signature.
func (t *TProc) allReduceTreeT(val uint64, op ReduceOp) (uint64, sim.PollableWait) {
	return t.allReduceTreeFnT(val, op.fn())
}

// allReduceRecDoubleT is allReduceRecDouble: pairwise fold into the
// power-of-two core, recursive-doubling exchange, unfold. op.pc: 0
// enter, 1 folding out (send), 2 folded out (await result), 3 absorbing
// the fold, 4 exchange send of round op.r, 5 exchange recv, 6 unfold.
func (t *TProc) allReduceRecDoubleT(val uint64, op ReduceOp) (uint64, sim.PollableWait) {
	opFn := op.fn()
	w, me, P := t.w, t.ID(), t.P()
	base := w.sel.arBase
	pof2 := 1 << uint(highestBit(P))
	rem := P - pof2
	unfold := base + 1 + logRounds(P)
	for {
		switch t.op.pc {
		case 0:
			t.op.acc = val
			if me < 2*rem && me&1 == 1 {
				t.op.pc = 1
				continue
			}
			if me < 2*rem {
				t.op.pc = 3
				continue
			}
			t.op.r = 0
			t.op.pc = 4
		case 1:
			if wt := t.sendCollT(me-1, base, t.op.acc); wt != nil {
				return 0, wt
			}
			t.op.pc = 2
		case 2:
			v, wt := t.recvCollT(unfold)
			if wt != nil {
				return 0, wt
			}
			t.op.pc = 0
			return v, nil
		case 3:
			v, wt := t.recvCollT(base)
			if wt != nil {
				return 0, wt
			}
			t.op.acc = opFn(t.op.acc, v)
			t.op.r = 0
			t.op.pc = 4
		case 4:
			if 1<<t.op.r >= pof2 {
				t.op.pc = 6
				continue
			}
			vid := me - rem
			if me < 2*rem {
				vid = me / 2
			}
			pv := vid ^ (1 << t.op.r)
			partner := pv + rem
			if pv < rem {
				partner = 2 * pv
			}
			if wt := t.sendCollT(partner, base+1+t.op.r, t.op.acc); wt != nil {
				return 0, wt
			}
			t.op.pc = 5
		case 5:
			v, wt := t.recvCollT(base + 1 + t.op.r)
			if wt != nil {
				return 0, wt
			}
			t.op.acc = opFn(t.op.acc, v)
			t.op.r++
			t.op.pc = 4
		case 6:
			if me < 2*rem {
				if wt := t.sendCollT(me+1, unfold, t.op.acc); wt != nil {
					return 0, wt
				}
			}
			t.op.pc = 0
			return t.op.acc, nil
		}
	}
}

// allReduceFlatT is allReduceFlat: gather on processor 0 (via the
// accumulating handler, since P-1 operands exceed any fixed ring),
// direct fan-out of the total. op.pc: 0 enter, 1 root gathered, 2 root
// release loop (op.r), 3 operand sent, 4 result received.
func (t *TProc) allReduceFlatT(val uint64, op ReduceOp) (uint64, sim.PollableWait) {
	w, me, P := t.w, t.ID(), t.P()
	gtag := w.sel.arBase
	rtag := w.sel.arBase + 1
	for {
		switch t.op.pc {
		case 0:
			if me == 0 {
				c := t.cell(gtag)
				t.ep.MarkWaitBegin(am.WaitBarrier)
				t.op.pc = 1
				return 0, t.ep.CounterWait(&c.cnt, c.exp+int64(P-1), "splitc: flat all-reduce gather")
			}
			t.op.pc = 3
		case 1:
			t.ep.MarkWaitEnd(am.WaitBarrier)
			c := t.cell(gtag)
			t.op.acc = op.fn()(val, c.acc)
			c.acc = 0
			c.exp += int64(P - 1)
			t.op.r = 1
			t.op.pc = 2
		case 2:
			for t.op.r < P {
				if wt := t.sendCollT(t.op.r, rtag, t.op.acc); wt != nil {
					return 0, wt
				}
				t.op.r++
			}
			t.op.pc = 0
			return t.op.acc, nil
		case 3:
			if wt := t.sendCollAccT(0, gtag, val, op); wt != nil {
				return 0, wt
			}
			t.op.pc = 4
		case 4:
			v, wt := t.recvCollT(rtag)
			if wt != nil {
				return 0, wt
			}
			t.op.pc = 0
			return v, nil
		}
	}
}
