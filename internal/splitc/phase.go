package splitc

import "repro/internal/sim"

// Phase accounting: applications label their algorithmic phases and the
// world accumulates per-phase virtual time, which is how the paper
// attributes Radix's overhead hypersensitivity to its serialized global
// histogram phase (20% of run time at baseline, 60% at Δo=100µs).

type phaseAccount struct {
	totals map[string]sim.Time
	order  []string
}

// EnterPhase switches the processor's active phase label; time accrues to
// the label until the next EnterPhase (or the end of the run). Labels are
// global across processors: per-phase totals sum every processor's time
// in that phase.
func (p *Proc) EnterPhase(name string) {
	now := p.sp.Clock()
	if p.phaseName != "" {
		p.w.addPhaseTime(p.phaseName, now-p.phaseStart)
	}
	p.phaseName = name
	p.phaseStart = now
}

// closePhase flushes the open phase at body completion.
func (p *Proc) closePhase() {
	if p.phaseName != "" {
		p.w.addPhaseTime(p.phaseName, p.sp.Clock()-p.phaseStart)
		p.phaseName = ""
	}
}

func (w *World) addPhaseTime(name string, d sim.Time) {
	if w.phases.totals == nil {
		w.phases.totals = make(map[string]sim.Time)
	}
	if _, ok := w.phases.totals[name]; !ok {
		w.phases.order = append(w.phases.order, name)
	}
	w.phases.totals[name] += d
}

// PhaseNames lists the phase labels in first-entry order.
func (w *World) PhaseNames() []string {
	return append([]string(nil), w.phases.order...)
}

// PhaseTime reports the total processor-time accumulated under a label
// (summed across processors).
func (w *World) PhaseTime(name string) sim.Time {
	return w.phases.totals[name]
}

// PhaseFraction reports a phase's share of total labeled time.
func (w *World) PhaseFraction(name string) float64 {
	var total sim.Time
	for _, t := range w.phases.totals {
		total += t
	}
	if total == 0 {
		return 0
	}
	return float64(w.phases.totals[name]) / float64(total)
}
