package splitc

import "repro/internal/am"

// Blocking forms of the registered collective algorithms beyond the
// defaults in sync.go. Every method here has a continuation twin of the
// same name + "T" in coll_algos_cont.go; the chargetwin analyzer proves
// each pair issues an identical charge sequence, which is what keeps the
// two runtimes' timelines bit-identical under any selection.

// Barrier counter slots for the tree and flat barriers: arrivals
// accumulate in slot 0, releases in slot 1. Counters are cumulative
// across episodes, like the dissemination barrier's round counters.
const (
	slotArrive  = 0
	slotRelease = 1
)

// treeChildren counts me's children in the binomial tree rooted at 0
// (child me+2^r for every round r with 2^r > me and me+2^r < P).
func treeChildren(me, p int) int {
	n := 0
	for r := 0; 1<<r < p; r++ {
		if me < 1<<r && me+1<<r < p {
			n++
		}
	}
	return n
}

// barrierTree is the gather-release tree barrier: arrivals climb a
// binomial tree to processor 0 (each node forwards once its subtree has
// arrived), and the release walks the same tree back down. 2·⌈log2 P⌉
// sequential hops on the critical path but only 2·(P-1) messages total,
// half the dissemination barrier's traffic.
func (p *Proc) barrierTree() {
	p.syncEnter(RegionBarrier)
	p.StoreSync()
	w := p.w
	me := p.ID()
	P := p.P()
	if P == 1 {
		w.m.Stats().CountBarrier()
		p.syncExit(RegionBarrier)
		return
	}
	bs := w.barrierOf(me)
	bs.episodes++
	target := bs.episodes
	if nch := treeChildren(me, P); nch > 0 {
		need := int64(nch) * target
		p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return bs.recvCount[slotArrive] >= need }, "splitc: tree barrier gather")
	}
	if me != 0 {
		parent := me &^ (1 << uint(highestBit(me)))
		p.ep.Request(parent, am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			w.barrierOf(ep.ID()).recvCount[a[0]]++
		}, am.Args{slotArrive})
		p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return bs.recvCount[slotRelease] >= target }, "splitc: tree barrier release")
	}
	for r := 0; 1<<r < P; r++ {
		if me < 1<<r && me+1<<r < P {
			p.ep.Request(me+1<<r, am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
				w.barrierOf(ep.ID()).recvCount[a[0]]++
			}, am.Args{slotRelease})
		}
	}
	if me == 0 {
		w.m.Stats().CountBarrier()
	}
	p.syncExit(RegionBarrier)
}

// barrierFlat is the central-counter barrier: everyone reports to
// processor 0, which releases everyone directly. Depth 2, but the root
// serializes P-1 receives and P-1 paced sends — the small-P/large-o
// corner is where it can beat the log-round algorithms.
func (p *Proc) barrierFlat() {
	p.syncEnter(RegionBarrier)
	p.StoreSync()
	w := p.w
	me := p.ID()
	P := p.P()
	if P == 1 {
		w.m.Stats().CountBarrier()
		p.syncExit(RegionBarrier)
		return
	}
	bs := w.barrierOf(me)
	bs.episodes++
	target := bs.episodes
	if me == 0 {
		need := int64(P-1) * target
		p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return bs.recvCount[slotArrive] >= need }, "splitc: flat barrier gather")
		for q := 1; q < P; q++ {
			p.ep.Request(q, am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
				w.barrierOf(ep.ID()).recvCount[a[0]]++
			}, am.Args{slotRelease})
		}
	} else {
		p.ep.Request(0, am.ClassSync, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			w.barrierOf(ep.ID()).recvCount[a[0]]++
		}, am.Args{slotArrive})
		p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return bs.recvCount[slotRelease] >= target }, "splitc: flat barrier release")
	}
	if me == 0 {
		w.m.Stats().CountBarrier()
	}
	p.syncExit(RegionBarrier)
}

// bcastBinomial is the default broadcast: the binomial tree of
// sync.go's bcastTree under the broadcast tag block.
func (p *Proc) bcastBinomial(root int, val uint64) uint64 {
	return p.bcastTree(root, val, p.w.sel.bcastBase)
}

// bcastChain forwards the value around the ring rotated to start at
// root: P-1 sequential hops, one send and at most one receive per
// processor — the pipelined-segmented schedule degenerate to one
// segment, which the tuner prices accordingly.
func (p *Proc) bcastChain(root int, val uint64) uint64 {
	w := p.w
	me := p.ID()
	P := p.P()
	tag := w.sel.bcastBase
	vid := (me - root + P) % P
	acc := val
	if vid != 0 {
		acc = p.recvColl(tag)
	}
	if vid+1 < P {
		p.sendColl((me+1)%P, tag, acc)
	}
	return acc
}

// bcastFlat has the root send to every other processor directly, in
// processor order: depth 1, serialized on the root's injection pacing.
func (p *Proc) bcastFlat(root int, val uint64) uint64 {
	w := p.w
	me := p.ID()
	P := p.P()
	tag := w.sel.bcastBase
	if me == root {
		for q := 0; q < P; q++ {
			if q == root {
				continue
			}
			p.sendColl(q, tag, val)
		}
		return val
	}
	return p.recvColl(tag)
}

// allReduceTree adapts the default reduce-broadcast tree (sync.go) to
// the engine's operator-code signature.
func (p *Proc) allReduceTree(val uint64, op ReduceOp) uint64 {
	return p.allReduceTreeFn(val, op.fn())
}

// allReduceRecDouble is recursive doubling (the butterfly): when P is
// not a power of two, the low 2·(P-pof2) processors fold pairwise into
// their even member first; the pof2-sized core then exchanges partials
// with the vid^2^r partner for ⌊log2 P⌋ rounds, after which the folded
// processors receive the result back. Every core processor holds the
// total after the last round — half the tree algorithm's depth.
func (p *Proc) allReduceRecDouble(val uint64, op ReduceOp) uint64 {
	opFn := op.fn()
	w := p.w
	me := p.ID()
	P := p.P()
	base := w.sel.arBase
	pof2 := 1 << uint(highestBit(P))
	rem := P - pof2
	unfold := base + 1 + logRounds(P)
	acc := val
	if me < 2*rem && me&1 == 1 {
		// Folded-out processor: contribute to the even neighbor, wait for
		// the result.
		p.sendColl(me-1, base, acc)
		return p.recvColl(unfold)
	}
	if me < 2*rem {
		acc = opFn(acc, p.recvColl(base))
	}
	// Compacted virtual id within the power-of-two core.
	vid := me - rem
	if me < 2*rem {
		vid = me / 2
	}
	for r := 0; 1<<r < pof2; r++ {
		pv := vid ^ (1 << r)
		partner := pv + rem
		if pv < rem {
			partner = 2 * pv
		}
		p.sendColl(partner, base+1+r, acc)
		acc = opFn(acc, p.recvColl(base+1+r))
	}
	if me < 2*rem {
		p.sendColl(me+1, unfold, acc)
	}
	return acc
}

// allReduceFlat gathers every operand on processor 0 and fans the total
// back out directly. The root drains its whole operand queue in one
// wait (episodes cannot overlap: a sender's next contribution is
// causally behind the result it must first receive).
func (p *Proc) allReduceFlat(val uint64, op ReduceOp) uint64 {
	opFn := op.fn()
	w := p.w
	me := p.ID()
	P := p.P()
	gtag := w.sel.arBase
	rtag := w.sel.arBase + 1
	if me == 0 {
		cs := w.collOf(me)
		need := P - 1
		p.ep.WaitUntilFor(am.WaitBarrier, func() bool { return len(cs.vals[gtag]) >= need }, "splitc: flat all-reduce gather")
		if len(cs.vals[gtag]) != need {
			panic("splitc: flat all-reduce arity")
		}
		acc := val
		for _, v := range cs.vals[gtag] {
			acc = opFn(acc, v)
		}
		cs.vals[gtag] = nil
		for q := 1; q < P; q++ {
			p.sendColl(q, rtag, acc)
		}
		return acc
	}
	p.sendColl(0, gtag, val)
	return p.recvColl(rtag)
}
