package splitc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/am"
)

// ReadWord performs a blocking read of the word at g: one short request,
// one short reply, classified as read traffic. Local reads touch memory
// directly and cost no communication.
func (p *Proc) ReadWord(g GPtr) uint64 {
	if int(g.Proc) == p.ID() {
		return *p.w.word(g)
	}
	w := p.w
	var val uint64
	done := false
	p.ep.Request(int(g.Proc), am.ClassRead, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		v := w.mem[a[0]>>32][uint32(a[0])]
		ep.Reply(tok, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			val = a[0]
			done = true
		}, am.Args{v})
	}, am.Args{g.Pack()})
	p.ep.WaitUntilFor(am.WaitRead, func() bool { return done }, "splitc: blocking read")
	return val
}

// WriteWord performs a pipelined remote store of v to g: one short request
// whose firmware-level ack completes it. The issuing processor continues
// immediately; StoreSync (or Barrier) waits for all outstanding stores.
func (p *Proc) WriteWord(g GPtr, v uint64) {
	if int(g.Proc) == p.ID() {
		*p.w.word(g) = v
		return
	}
	w := p.w
	p.ep.Request(int(g.Proc), am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
		w.mem[a[0]>>32][uint32(a[0])] = a[1]
	}, am.Args{g.Pack(), v})
	p.storeByteCount += 8
}

// WriteWordSync is WriteWord followed by StoreSync — a blocking write.
func (p *Proc) WriteWordSync(g GPtr, v uint64) {
	p.WriteWord(g, v)
	p.StoreSync()
}

// StoreSync blocks until every request this processor has issued — in
// particular every pipelined store — has been applied at its destination
// (Split-C's store counter synchronization).
func (p *Proc) StoreSync() {
	p.ep.WaitUntilFor(am.WaitStore, func() bool { return p.ep.TotalOutstanding() == 0 }, "splitc: store sync")
}

// fragWords is computed from the machine's bulk fragment size.
func (p *Proc) fragWords() int { return p.w.m.Params().FragmentSize / 8 }

// BulkPut copies vals into the global heap at g using the bulk-transfer
// mechanism (one bulk fragment per ≤4 KB). Like WriteWord it is pipelined;
// StoreSync waits for completion. Local puts are direct copies.
func (p *Proc) BulkPut(g GPtr, vals []uint64) {
	if int(g.Proc) == p.ID() {
		copy(p.w.mem[g.Proc][g.Off:], vals)
		return
	}
	w := p.w
	frag := p.fragWords()
	for off := 0; off < len(vals); off += frag {
		end := off + frag
		if end > len(vals) {
			end = len(vals)
		}
		chunk := vals[off:end]
		buf := make([]byte, 8*len(chunk))
		for i, v := range chunk {
			binary.LittleEndian.PutUint64(buf[8*i:], v)
		}
		target := g.Add(off)
		p.ep.Store(int(g.Proc), am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, a am.Args, data []byte) {
			dst := UnpackGPtr(a[0])
			mem := w.mem[dst.Proc]
			for i := 0; i < len(data)/8; i++ {
				mem[int(dst.Off)+i] = binary.LittleEndian.Uint64(data[8*i:])
			}
		}, am.Args{target.Pack()}, buf)
		p.storeByteCount += int64(len(buf))
	}
}

// BulkGet performs a blocking bulk read of n words at g: one short read
// request per ≤4 KB fragment, each answered with a bulk (DMA) reply.
// Fragment requests are pipelined; the call returns when all data has
// arrived. Local gets are direct copies.
func (p *Proc) BulkGet(g GPtr, n int) []uint64 {
	out := make([]uint64, n)
	if int(g.Proc) == p.ID() {
		copy(out, p.w.mem[g.Proc][g.Off:int(g.Off)+n])
		return out
	}
	w := p.w
	frag := p.fragWords()
	received := 0
	for off := 0; off < n; off += frag {
		count := frag
		if off+count > n {
			count = n - off
		}
		src := g.Add(off)
		dstOff := off
		p.ep.Request(int(g.Proc), am.ClassRead, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
			from := UnpackGPtr(a[0])
			cnt := int(a[1])
			mem := w.mem[from.Proc]
			buf := make([]byte, 8*cnt)
			for i := 0; i < cnt; i++ {
				binary.LittleEndian.PutUint64(buf[8*i:], mem[int(from.Off)+i])
			}
			ep.ReplyBulk(tok, func(ep *am.Endpoint, tok *am.Token, a am.Args, data []byte) {
				base := int(a[0])
				for i := 0; i < len(data)/8; i++ {
					out[base+i] = binary.LittleEndian.Uint64(data[8*i:])
				}
				received += len(data) / 8
			}, am.Args{uint64(dstOff)}, buf)
		}, am.Args{src.Pack(), uint64(count)})
	}
	p.ep.WaitUntilFor(am.WaitBulk, func() bool { return received == n }, "splitc: bulk get")
	return out
}

// StoreBytes counts the bytes written via pipelined stores since the last
// ResetStoreBytes (application-level accounting helper).
func (p *Proc) StoreBytes() int64 { return p.storeByteCount }

// ResetStoreBytes zeroes the pipelined-store byte counter.
func (p *Proc) ResetStoreBytes() { p.storeByteCount = 0 }

// CheckBounds panics with a helpful message when a global pointer is out
// of range for n words; applications use it in debug paths.
func (p *Proc) CheckBounds(g GPtr, n int) {
	heap := p.w.mem[g.Proc]
	if g.Off < 0 || int(g.Off)+n > len(heap) {
		panic(fmt.Sprintf("splitc: %v + %d words out of range (heap %d words)", g, n, len(heap)))
	}
}

// Slice returns a direct view of the owning heap from g to its end. It is
// the escape hatch message handlers use to scatter bulk payloads into
// global memory on the processor where they run.
func (w *World) Slice(g GPtr) []uint64 { return w.mem[g.Proc][g.Off:] }
