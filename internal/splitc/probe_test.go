package splitc

import (
	"testing"

	"repro/internal/sim"
)

// probe: isolate cross-runtime divergence. Rounds of reads from hashed
// partners, no collectives.
func probeMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func probePartner(me, r, p int) int {
	q := int(probeMix(uint64(me)<<20+uint64(r)+1) % uint64(p))
	if q == me && p > 1 {
		q = (q + 1) % p
	}
	return q
}

const probeRounds = 8

type probeTask struct {
	pc      int
	r       int
	charged bool
	slot    GPtr
	acc     uint64
}

func (k *probeTask) Step(t *TProc) (sim.PollableWait, bool) {
	me, P := t.ID(), t.P()
	for {
		switch k.pc {
		case 0:
			k.slot = t.Alloc(1)
			t.WriteWordT(k.slot, probeMix(uint64(me)))
			k.pc = 1
		case 1:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.pc = 2
		case 2:
			for k.r < probeRounds {
				q := probePartner(me, k.r, P)
				if !k.charged {
					t.ComputeUs(0.40)
					k.charged = true
				}
				v, wt := t.ReadWordT(GPtr{Proc: int32(q), Off: k.slot.Off})
				if wt != nil {
					return wt, false
				}
				k.acc += v
				t.ComputeUs(0.20)
				k.charged = false
				k.r++
			}
			return nil, true
		}
	}
}

func TestProbeReads(t *testing.T) {
	P := 32
	wb := twinWorld(t, P)
	if err := wb.Run(func(p *Proc) {
		me := p.ID()
		slot := p.Alloc(1)
		p.WriteWord(slot, probeMix(uint64(me)))
		p.Barrier()
		var acc uint64
		for r := 0; r < probeRounds; r++ {
			q := probePartner(me, r, P)
			p.ComputeUs(0.40)
			acc += p.ReadWord(GPtr{Proc: int32(q), Off: slot.Off})
			p.ComputeUs(0.20)
		}
	}); err != nil {
		t.Fatal(err)
	}
	wc := twinWorld(t, P)
	if err := wc.RunTasks(func(id int) Task { return &probeTask{} }); err != nil {
		t.Fatal(err)
	}
	if wb.Elapsed() != wc.Elapsed() {
		t.Errorf("reads: blocking %v, continuation %v", wb.Elapsed(), wc.Elapsed())
	}
	if sb, sc := wb.Stats().TotalSent(), wc.Stats().TotalSent(); sb != sc {
		t.Errorf("reads: blocking sent %d, continuation %d", sb, sc)
	}
}

// probe 2: ScanAdd alone.
type probeScanTask struct {
	pc  int
	out uint64
}

func (k *probeScanTask) Step(t *TProc) (sim.PollableWait, bool) {
	for {
		switch k.pc {
		case 0:
			v, wt := t.ScanAddT(uint64(t.ID() + 1))
			if wt != nil {
				return wt, false
			}
			k.out = v
			k.pc = 1
		case 1:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.pc = 2
		case 2:
			v, wt := t.ScanAddT(uint64(t.ID() + 2))
			if wt != nil {
				return wt, false
			}
			k.out += v
			return nil, true
		}
	}
}

func TestProbeScan(t *testing.T) {
	P := 32
	wb := twinWorld(t, P)
	if err := wb.Run(func(p *Proc) {
		p.ScanAdd(uint64(p.ID() + 1))
		p.Barrier()
		p.ScanAdd(uint64(p.ID() + 2))
	}); err != nil {
		t.Fatal(err)
	}
	wc := twinWorld(t, P)
	if err := wc.RunTasks(func(id int) Task { return &probeScanTask{} }); err != nil {
		t.Fatal(err)
	}
	if wb.Elapsed() != wc.Elapsed() {
		t.Errorf("scan: blocking %v, continuation %v", wb.Elapsed(), wc.Elapsed())
	}
}

// probe 3: Broadcast from P-1.
type probeBcastTask struct {
	pc  int
	out uint64
}

func (k *probeBcastTask) Step(t *TProc) (sim.PollableWait, bool) {
	for {
		switch k.pc {
		case 0:
			v, wt := t.BroadcastT(t.P()-1, 99)
			if wt != nil {
				return wt, false
			}
			k.out = v
			k.pc = 1
		case 1:
			return nil, true
		}
	}
}

func TestProbeBcast(t *testing.T) {
	P := 32
	wb := twinWorld(t, P)
	if err := wb.Run(func(p *Proc) {
		p.Broadcast(P-1, 99)
	}); err != nil {
		t.Fatal(err)
	}
	wc := twinWorld(t, P)
	if err := wc.RunTasks(func(id int) Task { return &probeBcastTask{} }); err != nil {
		t.Fatal(err)
	}
	if wb.Elapsed() != wc.Elapsed() {
		t.Errorf("bcast: blocking %v, continuation %v", wb.Elapsed(), wc.Elapsed())
	}
}
