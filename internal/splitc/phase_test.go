package splitc

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPhaseAccounting(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(p *Proc) {
		p.EnterPhase("setup")
		p.ComputeUs(100)
		p.EnterPhase("work")
		p.ComputeUs(300)
		p.EnterPhase("teardown")
		p.ComputeUs(100)
	})
	if err != nil {
		t.Fatal(err)
	}
	names := w.PhaseNames()
	if len(names) != 3 || names[0] != "setup" || names[1] != "work" || names[2] != "teardown" {
		t.Fatalf("phase names = %v", names)
	}
	if got := w.PhaseTime("work"); got < 4*300*sim.Microsecond {
		t.Errorf("work time = %v, want >= 1200µs across 4 procs", got)
	}
	frac := w.PhaseFraction("work")
	// Work is 300 of 500µs of compute plus some barrier time in teardown.
	if frac < 0.4 || frac > 0.7 {
		t.Errorf("work fraction = %v, want ≈0.6", frac)
	}
	total := 0.0
	for _, n := range names {
		total += w.PhaseFraction(n)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("phase fractions sum to %v", total)
	}
}

func TestPhaseUnlabeledIsFree(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(p *Proc) {
		p.ComputeUs(500) // before any label: unaccounted
		p.EnterPhase("only")
		p.ComputeUs(100)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.PhaseFraction("only"); got != 1.0 {
		t.Errorf("only-phase fraction = %v, want 1", got)
	}
	if w.PhaseTime("missing") != 0 {
		t.Error("unknown phase has time")
	}
}

func TestPhaseFractionEmptyWorld(t *testing.T) {
	w := newTestWorld(t, 2)
	if err := w.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if w.PhaseFraction("x") != 0 || len(w.PhaseNames()) != 0 {
		t.Error("expected no phase data")
	}
}
