// Package splitc provides the SPMD programming layer the paper's
// applications are written in: a Split-C-like global address space over
// Active Messages, with blocking reads, pipelined counted writes, bulk
// transfers, barriers, collectives, and simple global locks.
//
// The communication footprint of each primitive mirrors Split-C on GAM:
//
//   - ReadWord     — short request + short reply (round trip; ClassRead)
//   - WriteWord    — one short request; the firmware ack completes the
//     store counter (ClassWrite)
//   - BulkGet      — short request + bulk reply per ≤4 KB fragment
//   - BulkPut      — one bulk fragment per ≤4 KB (ClassWrite)
//   - Barrier      — store-sync, then the world's selected barrier
//     algorithm (a ⌈log2 P⌉-round dissemination barrier by default)
//   - Lock/Unlock  — round-trip test-and-set / one-way clear
//   - FetchAdd     — round trip (ClassSync)
//
// Local accesses touch memory directly and cost no virtual time; the
// applications charge their computation explicitly.
package splitc

import (
	"fmt"
	"math/rand"

	"repro/internal/am"
	"repro/internal/logp"
	"repro/internal/sim"
)

// World is a P-processor global address space over one am.Machine.
type World struct {
	eng *sim.Engine
	m   *am.Machine

	// mem is the per-processor global heap, addressed in 64-bit words.
	mem [][]uint64

	// barrier state, one per processor (handlers run on the owner).
	barrier []barrierState
	// collective state, one per processor.
	coll []collState

	// sel is the resolved collective selection and tag-space layout
	// (see coll.go), fixed at construction.
	sel collSel

	// phases accumulates per-label processor time (see phase.go).
	phases phaseAccount

	// Continuation-runtime state (see cont.go): tp holds one TProc per
	// processor during RunTasks, and the h* fields are the per-world
	// handler set, created once so the steady-state send paths allocate
	// no closures.
	tp           []*TProc
	hWrite       am.Handler
	hBarrier     am.Handler
	hColl        am.Handler
	hCollAcc     am.Handler
	hReply       am.Handler
	hReadReq     am.Handler
	hFetchAdd    am.Handler
	hTryLock     am.Handler
	hCAS         am.Handler
	hBulkGetReq  am.Handler
	hBulkPut     am.BulkHandler
	hBulkGetRep  am.BulkHandler

	// attached holds every hook set attached via Attach, in order; sync
	// is the subset that also wants barrier/lock region events.
	attached []am.Hooks
	sync     []SyncHooks

	elapsed sim.Time
}

// SyncRegion identifies a synchronization-layer region for SyncHooks.
type SyncRegion uint8

const (
	// RegionBarrier spans a Barrier call (store-sync included).
	RegionBarrier SyncRegion = iota
	// RegionLock spans a Lock call's acquisition spin.
	RegionLock
)

func (r SyncRegion) String() string {
	if r == RegionLock {
		return "lock"
	}
	return "barrier"
}

// SyncHooks is the optional extension for hooks that want to know when a
// processor is inside a synchronization region, so time spent there —
// including the compute charged by lock retries — can be attributed to
// barrier or lock wait rather than to the mechanism underneath. Enter and
// Exit run synchronously on the simulating goroutine and nest (a barrier
// may complete stores, a lock spin polls the network).
type SyncHooks interface {
	SyncEnter(proc int, r SyncRegion, at sim.Time)
	SyncExit(proc int, r SyncRegion, at sim.Time)
}

type barrierState struct {
	// recvCount[r] counts round-r notifications ever received; cumulative
	// counters make the dissemination barrier robust to epoch skew.
	recvCount []int64
	episodes  int64
}

type collState struct {
	// vals[r] queues the round-r operand values received, in arrival order.
	vals [][]uint64
}

// Config collects every World construction knob. The zero value of each
// field is a valid default (but Procs and Params must be set).
type Config struct {
	// Procs is the processor count.
	Procs int
	// Params is the LogGP machine.
	Params logp.Params
	// Seed seeds the per-processor PRNGs.
	Seed int64
	// TimeLimit bounds virtual time; runs exceeding it fail with
	// sim.ErrTimeLimit. Zero means unlimited.
	TimeLimit sim.Time
	// Collectives selects the collective algorithms (see the Collectives
	// type); the zero value keeps the historical defaults.
	Collectives Collectives
}

// NewWorld builds a world with p processors and the given network.
func NewWorld(p int, params logp.Params, seed int64) (*World, error) {
	return NewWorldCfg(Config{Procs: p, Params: params, Seed: seed})
}

// NewWorldLimit is NewWorld with a virtual-time limit; runs exceeding it
// fail with sim.ErrTimeLimit.
func NewWorldLimit(p int, params logp.Params, seed int64, limit sim.Time) (*World, error) {
	return NewWorldCfg(Config{Procs: p, Params: params, Seed: seed, TimeLimit: limit})
}

// NewWorldCfg builds a world from a full Config, resolving the
// collective selection (including "auto" fields, tuned against cfg's own
// machine) before the first processor runs.
func NewWorldCfg(cfg Config) (*World, error) {
	sel, err := resolveCollectives(cfg.Collectives, cfg.Procs, cfg.Params)
	if err != nil {
		return nil, err
	}
	eng := sim.New(sim.Config{Procs: cfg.Procs, Seed: cfg.Seed, TimeLimit: cfg.TimeLimit})
	m, err := am.NewMachine(eng, cfg.Params)
	if err != nil {
		return nil, err
	}
	w := &World{eng: eng, m: m, sel: sel}
	w.mem = make([][]uint64, cfg.Procs)
	w.barrier = make([]barrierState, cfg.Procs)
	w.coll = make([]collState, cfg.Procs)
	return w, nil
}

// barrierOf returns processor id's barrier state, allocating the slots
// the selected barrier algorithm needs on first touch. Lazy so that a
// million-processor world pays for synchronization state only on
// processors that synchronize; the allocation happens outside virtual
// time, so laziness cannot perturb a schedule.
func (w *World) barrierOf(id int) *barrierState {
	bs := &w.barrier[id]
	if bs.recvCount == nil {
		bs.recvCount = make([]int64, w.sel.barSlots)
	}
	return bs
}

// collOf returns processor id's collective operand queues, allocating
// the tag table (sized by the world's tag-space layout; see coll.go) on
// first touch. Same laziness rationale as barrierOf.
func (w *World) collOf(id int) *collState {
	cs := &w.coll[id]
	if cs.vals == nil {
		cs.vals = make([][]uint64, w.sel.numTags)
	}
	return cs
}

// logRounds returns ⌈log2 p⌉ (and ≥1 so P=1 still has state).
func logRounds(p int) int {
	r := 0
	for 1<<r < p {
		r++
	}
	if r == 0 {
		r = 1
	}
	return r
}

// Attach adds instrumentation to the world: each hook set receives every
// message event and time charge (am.Hooks), raw clock advances when it
// implements am.ClockHooks, and barrier/lock region events when it
// implements SyncHooks. Call it before Run, and call it once per hook
// set (repeated calls accumulate).
func (w *World) Attach(hooks ...am.Hooks) {
	for _, h := range hooks {
		if h == nil {
			continue
		}
		w.attached = append(w.attached, h)
		if sh, ok := h.(SyncHooks); ok {
			w.sync = append(w.sync, sh)
		}
	}
	switch len(w.attached) {
	case 0:
		w.m.SetHooks(nil)
	case 1:
		w.m.SetHooks(w.attached[0])
	default:
		w.m.SetHooks(am.MultiHooks(w.attached))
	}
}

// Attached returns the hook sets attached so far, in attach order.
func (w *World) Attached() []am.Hooks {
	out := make([]am.Hooks, len(w.attached))
	copy(out, w.attached)
	return out
}

func (p *Proc) syncEnter(r SyncRegion) {
	for _, h := range p.w.sync {
		h.SyncEnter(p.sp.ID(), r, p.sp.Clock())
	}
}

func (p *Proc) syncExit(r SyncRegion) {
	for _, h := range p.w.sync {
		h.SyncExit(p.sp.ID(), r, p.sp.Clock())
	}
}

// Engine exposes the underlying simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Machine exposes the underlying Active Message machine.
func (w *World) Machine() *am.Machine { return w.m }

// Stats exposes the communication instrumentation.
func (w *World) Stats() *am.Stats { return w.m.Stats() }

// P returns the processor count.
func (w *World) P() int { return w.eng.P() }

// Elapsed returns the virtual makespan of the last Run.
func (w *World) Elapsed() sim.Time { return w.elapsed }

// Run executes body on every processor SPMD-style. A final barrier is
// implied so that all in-flight communication quiesces before any
// processor's body is considered complete.
func (w *World) Run(body func(p *Proc)) error {
	err := w.eng.Run(func(sp *sim.Proc) {
		p := &Proc{w: w, ep: w.m.Endpoint(sp.ID()), sp: sp}
		body(p)
		p.Barrier()
		p.closePhase()
	})
	w.elapsed = w.eng.MaxClock()
	return err
}

// Proc is one processor's view of the world, passed to SPMD bodies.
type Proc struct {
	w  *World
	ep *am.Endpoint
	sp *sim.Proc

	storeByteCount int64 // bytes written by pipelined stores since reset
	failedLocks    int64 // TryLock retries burned inside Lock

	phaseName  string   // active phase label ("" = unlabeled)
	phaseStart sim.Time // clock at the last EnterPhase
}

// ID returns the processor number in [0, P).
func (p *Proc) ID() int { return p.sp.ID() }

// P returns the processor count.
func (p *Proc) P() int { return p.w.P() }

// World returns the enclosing world.
func (p *Proc) World() *World { return p.w }

// EP exposes the raw Active Message endpoint for applications that need
// custom message types (for example Mur-phi's state distribution).
func (p *Proc) EP() *am.Endpoint { return p.ep }

// Rand returns the processor's deterministic PRNG.
func (p *Proc) Rand() *rand.Rand { return p.sp.Rand() }

// Now returns the processor's virtual clock.
func (p *Proc) Now() sim.Time { return p.sp.Clock() }

// Compute charges local computation time (scaled by the machine's CPU
// factor).
func (p *Proc) Compute(d sim.Time) { p.ep.Compute(d) }

// ComputeUs charges local computation time given in microseconds.
func (p *Proc) ComputeUs(us float64) { p.ep.Compute(sim.FromMicros(us)) }

// Poll services any arrived messages (handlers run, o_recv is charged).
// Long local compute loops should poll periodically, as real Split-C
// programs do implicitly at communication points.
func (p *Proc) Poll() { p.ep.Poll() }

// GPtr is a global pointer: a (processor, word-offset) pair into the
// global heap. The zero GPtr is a valid pointer to word 0 of processor 0's
// heap; use Nil-style sentinels at the application level if needed.
type GPtr struct {
	Proc int32
	Off  int32
}

// Pack encodes g into one message word.
func (g GPtr) Pack() uint64 { return uint64(uint32(g.Proc))<<32 | uint64(uint32(g.Off)) }

// UnpackGPtr reverses GPtr.Pack.
func UnpackGPtr(w uint64) GPtr {
	return GPtr{Proc: int32(w >> 32), Off: int32(uint32(w))}
}

// Add returns g advanced by n words.
func (g GPtr) Add(n int) GPtr { return GPtr{Proc: g.Proc, Off: g.Off + int32(n)} }

func (g GPtr) String() string { return fmt.Sprintf("g[%d:%d]", g.Proc, g.Off) }

// Alloc reserves n words in the calling processor's global heap and
// returns a pointer to them. Allocation is local; share pointers by
// message or collectives.
func (p *Proc) Alloc(n int) GPtr {
	id := p.ID()
	off := len(p.w.mem[id])
	p.w.mem[id] = append(p.w.mem[id], make([]uint64, n)...)
	return GPtr{Proc: int32(id), Off: int32(off)}
}

// Local returns a direct slice view of n words at g, which must live on
// the calling processor.
func (p *Proc) Local(g GPtr, n int) []uint64 {
	if int(g.Proc) != p.ID() {
		panic(fmt.Sprintf("splitc: Local(%v) on proc %d", g, p.ID()))
	}
	return p.w.mem[g.Proc][g.Off : int(g.Off)+n]
}

func (w *World) word(g GPtr) *uint64 { return &w.mem[g.Proc][g.Off] }
