// Package calib implements the paper's calibration microbenchmarks
// (§3.3, after Culler et al., "Assessing Fast Network Interfaces"): the
// LogP signature — issue a burst of m request messages with a fixed
// computational delay Δ between them, and read o_send, o_recv, g, and L
// off the resulting curves — plus the bulk-burst benchmark that measures
// the bulk-transfer bandwidth 1/G.
package calib

import (
	"repro/internal/am"
	"repro/internal/logp"
	"repro/internal/sim"
)

// Point is one LogP-signature sample: the average initiation interval
// seen by the issuing processor for a burst of Burst messages with Delta
// of computation between consecutive sends.
type Point struct {
	Burst   int
	Delta   sim.Time
	PerMsg  sim.Time // average µs/message
	Elapsed sim.Time
}

// Signature measures the average initiation interval for each
// (burst, delta) combination, reproducing Figure 3's curves. The clock
// stops when the last message has been issued by the processor,
// regardless of in-flight requests or replies — the paper's convention.
func Signature(params logp.Params, bursts []int, deltas []sim.Time) ([]Point, error) {
	var points []Point
	for _, delta := range deltas {
		for _, m := range bursts {
			elapsed, err := burstTime(params, m, delta)
			if err != nil {
				return nil, err
			}
			points = append(points, Point{
				Burst:   m,
				Delta:   delta,
				PerMsg:  elapsed / sim.Time(m),
				Elapsed: elapsed,
			})
		}
	}
	return points, nil
}

// burstTime measures one burst on a fresh two-node machine.
func burstTime(params logp.Params, m int, delta sim.Time) (sim.Time, error) {
	eng := sim.New(sim.Config{Procs: 2})
	mach, err := am.NewMachine(eng, params)
	if err != nil {
		return 0, err
	}
	var elapsed sim.Time
	served := 0
	replies := 0
	err = eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := mach.Endpoint(0)
			start := p.Clock()
			for i := 0; i < m; i++ {
				if i > 0 && delta > 0 {
					ep.Compute(delta)
				}
				ep.Request(1, am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
					served++
					ep.Reply(tok, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
						replies++
					}, am.Args{})
				}, am.Args{})
			}
			elapsed = p.Clock() - start
			// Drain so the run terminates cleanly; not timed.
			ep.WaitUntil(func() bool { return replies == m }, "calib: drain")
		},
		func(p *sim.Proc) {
			ep := mach.Endpoint(1)
			ep.WaitUntil(func() bool { return served == m }, "calib: echo server")
		},
	})
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}

// RoundTrip measures one blocking request/reply round trip.
func RoundTrip(params logp.Params) (sim.Time, error) {
	eng := sim.New(sim.Config{Procs: 2})
	mach, err := am.NewMachine(eng, params)
	if err != nil {
		return 0, err
	}
	var rtt sim.Time
	served := false
	got := false
	err = eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := mach.Endpoint(0)
			start := p.Clock()
			ep.Request(1, am.ClassRead, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
				served = true
				ep.Reply(tok, func(ep *am.Endpoint, tok *am.Token, a am.Args) { got = true }, am.Args{})
			}, am.Args{})
			ep.WaitUntil(func() bool { return got }, "calib: rtt")
			rtt = p.Clock() - start
		},
		func(p *sim.Proc) {
			mach.Endpoint(1).WaitUntil(func() bool { return served }, "calib: rtt server")
		},
	})
	return rtt, err
}

// Measured is the outcome of a full calibration: the effective LogGP
// characteristics of a machine as its applications experience them.
type Measured struct {
	OSend   sim.Time // issue cost of a single message
	ORecv   sim.Time // receive-side processor cost
	O       sim.Time // (OSend+ORecv)/2, the paper's reported o
	G       sim.Time // steady-state initiation interval (gap)
	L       sim.Time // RTT/2 − 2·o
	RTT     sim.Time
	BulkMBs float64 // bulk-transfer bandwidth, 1/G_bulk
}

// steadyInterval measures the steady-state initiation interval as the
// slope of elapsed time between a medium and a long burst, cancelling the
// start-up transient (the first window of messages goes out before any
// replies return, so a plain average under-reads the gap — the paper's
// calibrated g is "somewhat lower than intended" for the same reason).
func steadyInterval(params logp.Params, delta sim.Time) (sim.Time, error) {
	const m1, m2 = 32, 96
	e1, err := burstTime(params, m1, delta)
	if err != nil {
		return 0, err
	}
	e2, err := burstTime(params, m2, delta)
	if err != nil {
		return 0, err
	}
	return (e2 - e1) / (m2 - m1), nil
}

// bigDelta is "sufficiently large Δ" such that the processor, not the
// network, is the bottleneck (the paper uses the flat region of Figure 3).
func bigDelta(params logp.Params) sim.Time {
	d := 4 * (params.EffGap() + params.EffLatency())
	if min := sim.FromMicros(50); d < min {
		d = min
	}
	return d
}

// Calibrate runs the full microbenchmark set against a machine.
func Calibrate(params logp.Params) (Measured, error) {
	var res Measured

	// Send overhead: the issue cost of one message.
	single, err := burstTime(params, 1, 0)
	if err != nil {
		return res, err
	}
	res.OSend = single

	// Steady-state interval with Δ=0: the effective gap.
	res.G, err = steadyInterval(params, 0)
	if err != nil {
		return res, err
	}

	// Large Δ: the steady-state interval is Δ + o_send + o_recv (the
	// processor is the bottleneck), which isolates o_recv.
	delta := bigDelta(params)
	perMsg, err := steadyInterval(params, delta)
	if err != nil {
		return res, err
	}
	res.ORecv = perMsg - delta - res.OSend
	if res.ORecv < 0 {
		res.ORecv = 0
	}
	res.O = (res.OSend + res.ORecv) / 2

	// Round trip → latency.
	rtt, err := RoundTrip(params)
	if err != nil {
		return res, err
	}
	res.RTT = rtt
	res.L = rtt/2 - 2*res.O

	// Bulk bandwidth: the per-byte Gap G is the slope of the steady-state
	// fragment arrival interval against the fragment size (differencing
	// two sizes cancels the per-fragment gap, just as the burst slope
	// cancelled the window fill). 1/G is the paper's bulk bandwidth.
	s1, s2 := params.FragmentSize/2, params.FragmentSize
	t1, err := bulkInterval(params, s1)
	if err != nil {
		return res, err
	}
	t2, err := bulkInterval(params, s2)
	if err != nil {
		return res, err
	}
	if t2 > t1 {
		gPerByte := float64(t2-t1) / float64(s2-s1) // ns per byte
		res.BulkMBs = 1e3 / gPerByte                // decimal MB/s, matching logp.Params
	}
	return res, nil
}

// bulkInterval measures the steady-state arrival interval for a burst of
// fixed-size bulk stores.
func bulkInterval(params logp.Params, size int) (sim.Time, error) {
	const count = 32
	eng := sim.New(sim.Config{Procs: 2})
	mach, err := am.NewMachine(eng, params)
	if err != nil {
		return 0, err
	}
	received := 0
	var first, last sim.Time
	err = eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := mach.Endpoint(0)
			buf := make([]byte, size)
			for i := 0; i < count; i++ {
				ep.Store(1, am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, a am.Args, d []byte) {
					received++
					if received == 1 {
						first = ep.Now()
					}
					last = ep.Now()
				}, am.Args{}, buf)
			}
			ep.WaitUntil(func() bool { return received == count }, "calib: bulk drain")
		},
		func(p *sim.Proc) {
			mach.Endpoint(1).WaitUntil(func() bool { return received == count }, "calib: bulk sink")
		},
	})
	if err != nil {
		return 0, err
	}
	return (last - first) / (count - 1), nil
}
