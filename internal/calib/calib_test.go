package calib

import (
	"math"
	"testing"

	"repro/internal/logp"
	"repro/internal/sim"
)

func TestBaselineCalibration(t *testing.T) {
	// Calibrating the unmodified NOW must read back Table 1's numbers.
	m, err := Calibrate(logp.NOW())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.OSend.Micros(); math.Abs(got-1.8) > 0.1 {
		t.Errorf("o_send = %.2f µs, want 1.8", got)
	}
	if got := m.ORecv.Micros(); math.Abs(got-4.0) > 0.3 {
		t.Errorf("o_recv = %.2f µs, want 4.0", got)
	}
	if got := m.O.Micros(); math.Abs(got-2.9) > 0.2 {
		t.Errorf("o = %.2f µs, want 2.9", got)
	}
	if got := m.G.Micros(); math.Abs(got-5.8) > 0.5 {
		t.Errorf("g = %.2f µs, want 5.8", got)
	}
	if got := m.L.Micros(); math.Abs(got-5.0) > 0.5 {
		t.Errorf("L = %.2f µs, want 5.0", got)
	}
	if got := m.RTT.Micros(); math.Abs(got-21.6) > 0.2 {
		t.Errorf("RTT = %.2f µs, want 21.6 (paper: 21)", got)
	}
	if m.BulkMBs < 37 || m.BulkMBs > 38.5 {
		t.Errorf("bulk bandwidth = %.1f MB/s, want ≈38", m.BulkMBs)
	}
}

func TestOverheadCalibrationIndependence(t *testing.T) {
	// Table 2 left block: raising o raises the effective g (the processor
	// becomes the bottleneck) but leaves L unchanged.
	params := logp.NOW()
	params.DeltaO = sim.FromMicros(100)
	m, err := Calibrate(params)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.O.Micros(); math.Abs(got-102.9) > 1 {
		t.Errorf("o = %.1f µs, want 102.9", got)
	}
	// Paper observes g=205.9 at o=103 (o_send+o_recv dominates).
	if got := m.G.Micros(); math.Abs(got-205.8) > 3 {
		t.Errorf("g = %.1f µs, want ≈205.9", got)
	}
	if got := m.L.Micros(); math.Abs(got-5.0) > 1.5 {
		t.Errorf("L = %.1f µs, want ≈5 (independent of o)", got)
	}
}

func TestGapCalibrationIndependence(t *testing.T) {
	// Table 2 middle block: raising g must not move o or L.
	params := logp.NOW()
	params.DeltaG = sim.FromMicros(99.2) // desired g = 105
	m, err := Calibrate(params)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.G.Micros(); math.Abs(got-105) > 3 {
		t.Errorf("g = %.1f µs, want ≈105", got)
	}
	if got := m.O.Micros(); math.Abs(got-2.9) > 0.3 {
		t.Errorf("o = %.2f µs, want 2.9 (independent of g)", got)
	}
	if got := m.L.Micros(); math.Abs(got-5.0) > 1 {
		t.Errorf("L = %.1f µs, want ≈5 (independent of g)", got)
	}
}

func TestLatencyCalibrationCapacityArtifact(t *testing.T) {
	// Table 2 right block: raising L leaves o untouched but drives the
	// effective g up to RTT/W — the fixed-window capacity artifact the
	// paper documents (observed g=27.7 at L=105.5).
	params := logp.NOW()
	params.DeltaL = sim.FromMicros(100.5)
	m, err := Calibrate(params)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.O.Micros(); math.Abs(got-2.9) > 0.3 {
		t.Errorf("o = %.2f µs, want 2.9 (independent of L)", got)
	}
	if got := m.L.Micros(); math.Abs(got-105.5) > 2 {
		t.Errorf("L = %.1f µs, want ≈105.5", got)
	}
	if got := m.G.Micros(); got < 24 || got > 32 {
		t.Errorf("effective g = %.1f µs, want ≈27.7 (capacity window)", got)
	}
}

func TestSignatureShape(t *testing.T) {
	// Figure 3's qualitative shape: short bursts show o_send; long Δ=0
	// bursts approach g; the Δ=10µs curve exceeds the Δ=0 curve.
	pts, err := Signature(logp.NOW(), []int{1, 2, 4, 8, 16, 32, 64}, []sim.Time{0, sim.FromMicros(10)})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int64]sim.Time{}
	for _, p := range pts {
		byKey[[2]int64{int64(p.Burst), int64(p.Delta)}] = p.PerMsg
	}
	if got := byKey[[2]int64{1, 0}].Micros(); math.Abs(got-1.8) > 0.1 {
		t.Errorf("burst-1 interval = %.2f, want o_send=1.8", got)
	}
	long := byKey[[2]int64{64, 0}].Micros()
	if math.Abs(long-5.8) > 0.6 {
		t.Errorf("burst-64 interval = %.2f, want ≈g=5.8", long)
	}
	d10 := byKey[[2]int64{64, int64(sim.FromMicros(10))}].Micros()
	if d10 <= long {
		t.Errorf("Δ=10 steady state %.2f not above Δ=0 %.2f", d10, long)
	}
	// With Δ=10 > g the processor is the bottleneck: interval ≈ os+or+Δ.
	if math.Abs(d10-15.8) > 1.0 {
		t.Errorf("Δ=10 steady state = %.2f, want ≈15.8 (os+or+Δ)", d10)
	}
}

func TestBulkBandwidthRespondsToCap(t *testing.T) {
	params := logp.NOW()
	params.BulkBandwidthMBs = 10
	m, err := Calibrate(params)
	if err != nil {
		t.Fatal(err)
	}
	if m.BulkMBs > 10.5 || m.BulkMBs < 9 {
		t.Errorf("capped bulk bandwidth = %.1f MB/s, want ≈10", m.BulkMBs)
	}
}
