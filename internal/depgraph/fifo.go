package depgraph

import "repro/internal/sim"

// fifo is an index queue with amortized O(1) push/pop and no
// steady-state allocation: the backing array is reused whenever the
// queue drains, so a warmed queue cycles through one buffer forever.
type fifo struct {
	buf  []int32
	head int
}

//repro:hotpath
func (q *fifo) push(v int32) {
	if q.head > 0 && q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.buf = append(q.buf, v) //lint:allow hotpathalloc amortized growth, buffer reused once warmed
}

//repro:hotpath
func (q *fifo) pop() (int32, bool) {
	if q.head >= len(q.buf) {
		return -1, false
	}
	v := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v, true
}

func (q *fifo) len() int { return len(q.buf) - q.head }

//repro:hotpath
func (q *fifo) peek() int32 {
	if q.head >= len(q.buf) {
		return -1
	}
	return q.buf[q.head]
}

// heapq is a min-heap of (arrival, node) pairs ordered by arrival with
// node index as the deterministic tie-break. The window-free queue
// needs it because frees are observed out of arrival order: a firmware
// credit's hook fires at issue time, one wire latency before the
// credit lands, while a reply's free is observed at its arrival — but
// the machine consumes frees strictly in arrival order.
type heapq struct {
	a []heapEnt
}

type heapEnt struct {
	val  sim.Time
	node int32
}

func (e heapEnt) less(o heapEnt) bool {
	return e.val < o.val || (e.val == o.val && e.node < o.node)
}

//repro:hotpath
func (h *heapq) push(val sim.Time, node int32) {
	h.a = append(h.a, heapEnt{val, node}) //lint:allow hotpathalloc amortized growth, buffer reused once warmed
	for i := len(h.a) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.a[i].less(h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

//repro:hotpath
func (h *heapq) pop() (int32, bool) {
	if len(h.a) == 0 {
		return -1, false
	}
	n := h.a[0].node
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	for i := 0; ; {
		c := 2*i + 1
		if c >= last {
			break
		}
		if r := c + 1; r < last && h.a[r].less(h.a[c]) {
			c = r
		}
		if !h.a[c].less(h.a[i]) {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return n, true
}
