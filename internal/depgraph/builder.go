package depgraph

import (
	"errors"
	"fmt"

	"repro/internal/am"
	"repro/internal/logp"
	"repro/internal/sim"
)

// pendFold bounds the per-processor pending-credit list: once it reaches
// this length the entries fold into one join node, so a processor that
// never quiesces cannot grow the list with its message count.
const pendFold = 256

// procState is one processor's position in the graph under construction.
// frontier is the last node on the processor's serial chain (-1 = the
// virtual origin at t = 0) and lag the constant time accumulated since
// it completed (compute charges, host sleeps) — deferring these into the
// next node's in-edge is what keeps the graph message-proportional.
type procState struct {
	frontier int32
	lastTx   int32
	lag      sim.Time
	lastOcc  sim.Time
	// pendDur/pendEnd hold the o_send charge awaiting its MessageLaunched;
	// pendOcc the transmit-context occupancy from the matching TxReserved.
	pendDur sim.Time
	pendEnd sim.Time
	pendOcc sim.Time
	// inbox mirrors the endpoint's inbox: wire-arrival nodes delivered but
	// not yet consumed by an o_recv charge.
	inbox fifo
	// pend collects window-credit and reply-arrival nodes since the last
	// quiesce join (what a store-sync waits on).
	pend    []int32
	waiting bool
	// winBlocked marks that the next launch was preceded by a window
	// stall: only then does the freeing credit constrain the charge. An
	// unblocked send observed its slot free already — the engine executes
	// a credit event when any processor's checkpoint passes it, so a
	// sender running behind can see the slot freed before the credit's
	// nominal arrival, and the window imposes no timing constraint.
	winBlocked bool
	// winCause is the inbox arrival the window stall ended at, when it
	// ended off the chain and ahead of the freeing credit (-1 = none): a
	// spinning waiter can only advance its clock to its next inbox
	// arrival, so a slot freed early by another processor's checkpoint is
	// observed exactly at one.
	winCause int32
}

// stream is the per-(src,dst) ordered state: wire FIFO-matches launches
// to deliveries, credits matches window frees — in arrival order, the
// order the machine consumes them — to the sends they gate, and sent
// counts requests for the window-gating threshold.
type stream struct {
	wire    fifo
	credits heapq
	sent    int64
}

// Builder streams one run's instrumentation events into a Graph. Attach
// it like any other hook (apps.Config.Depgraph does this wiring), run to
// completion, then Seal. A Builder observes exactly one run and is not
// safe for reuse.
type Builder struct {
	am.NopHooks
	g       *Graph
	procs   []procState
	streams map[uint64]*stream
	window  int64
	lat     sim.Time
	errMsg  string
	sealed  bool
}

var (
	_ am.Hooks      = (*Builder)(nil)
	_ am.ClockHooks = (*Builder)(nil)
	_ am.WireHooks  = (*Builder)(nil)
)

// New returns a builder for a machine of the given size. params must be
// the machine's LogGP parameters at the instrumented operating point:
// the builder needs the request window (credit gating threshold) and the
// effective wire latency (credit return flight time).
func New(procs int, params logp.Params) *Builder {
	b := &Builder{
		g:       &Graph{procs: procs, sink: -1},
		procs:   make([]procState, procs),
		streams: make(map[uint64]*stream),
		window:  int64(params.Window),
		lat:     params.EffLatency(),
	}
	for i := range b.procs {
		b.procs[i].frontier = -1
		b.procs[i].lastTx = -1
		b.procs[i].winCause = -1
	}
	return b
}

// Seal finalizes the graph: a sink node joins every processor's final
// position, and the recorded makespan becomes the graph's Elapsed. It
// returns the builder's first inconsistency instead, if the run did
// something the graph cannot model (fault injection, retransmissions, a
// FIFO mismatch).
func (b *Builder) Seal(elapsed sim.Time) (*Graph, error) {
	if b.errMsg != "" {
		return nil, errors.New("depgraph: " + b.errMsg)
	}
	if b.sealed {
		return b.g, nil
	}
	b.sealed = true
	sink := b.g.newNode(KindSink, -1, elapsed)
	for i := range b.procs {
		ps := &b.procs[i]
		b.g.addEdge(sink, ps.frontier, ps.lag, AxisNone)
	}
	b.g.sink = sink
	b.g.elapsed = elapsed
	return b.g, nil
}

// fail records the first inconsistency; every later event is ignored.
func (b *Builder) fail(msg string) {
	if b.errMsg == "" {
		b.errMsg = msg
	}
}

//repro:hotpath
func (b *Builder) stream(src, dst int) *stream {
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	st := b.streams[key]
	if st == nil {
		st = b.newStream(key)
	}
	return st
}

// newStream allocates once per communicating pair (warmup, not steady
// state).
func (b *Builder) newStream(key uint64) *stream {
	st := &stream{}
	b.streams[key] = st
	return st
}

// SendOverhead records the o_send charge; the node is created at
// MessageLaunched, which knows the destination and the message class.
//
//repro:hotpath
func (b *Builder) SendOverhead(proc int, from, to sim.Time) {
	ps := &b.procs[proc]
	ps.pendDur = to - from
	ps.pendEnd = to
}

// TxReserved records the transmit-context occupancy (gap + bulk DMA) the
// next launch serializes behind.
//
//repro:hotpath
func (b *Builder) TxReserved(proc int, inject, gapFree, busyFree sim.Time) {
	b.procs[proc].pendOcc = busyFree - inject
}

// TxRetransmit never fires on the lossless wire the builder requires.
//
//repro:hotpath
func (b *Builder) TxRetransmit(proc int, inject, gapFree, busyFree sim.Time) {
	b.fail("retransmission observed; the reliability layer cannot be modeled")
}

// MessageLaunched creates the send-side nodes: the o_send completion
// (serialized on the processor chain and, for window-gated requests, on
// the freeing credit), the injection instant (serialized on the previous
// transmit reservation with a Δg edge), and the wire arrival (a ΔL edge).
//
//repro:hotpath
func (b *Builder) MessageLaunched(src, dst int, reply, bulk bool, inject, arrival sim.Time) {
	if b.errMsg != "" {
		return
	}
	ps := &b.procs[src]
	g := b.g

	s := g.newNode(KindOSend, int32(src), ps.pendEnd)
	g.addEdge(s, ps.frontier, ps.lag+ps.pendDur, AxisO)
	st := b.stream(src, dst)
	if !reply {
		if st.sent >= b.window {
			c, ok := st.credits.pop()
			if !ok {
				b.fail("window credit underflow")
				return
			}
			// The window is a real constraint on every send past the
			// threshold — blocked or not, the machine required this slot
			// free — so the freeing credit gates the charge whenever the
			// baseline run is consistent with its arrival. The guard drops
			// the edge when it is not: a sender spinning in waitWindow (or
			// checking the window unblocked) can observe a slot freed by an
			// event another processor's checkpoint drained ahead of this
			// sender's clock. A blocked send whose credit was observed
			// early is instead pinned at the inbox arrival the waiter's
			// clock had advanced to (winCause).
			if ps.winBlocked {
				// The stall tracked the freeing credit: pin the charge to
				// the credit's trajectory at the exact observed distance.
				// The constant absorbs both wake quantization (positive
				// slack past the arrival) and early observation (negative:
				// another processor's checkpoint drained the credit event
				// ahead of this sender's clock), so the edge is tight at
				// the baseline by construction either way.
				g.addEdge(s, c, ps.pendEnd-g.nodePtr(c).val, AxisO)
				if w := ps.winCause; w >= 0 && g.nodePtr(w).val+ps.pendDur <= ps.pendEnd {
					g.addEdge(s, w, ps.pendDur, AxisO)
				}
			} else if g.nodePtr(c).val+ps.pendDur <= ps.pendEnd {
				// An unblocked send only needed the slot free: the credit
				// gates the charge parametrically when the baseline run is
				// consistent with its arrival.
				g.addEdge(s, c, ps.pendDur, AxisO)
			}
		}
		ps.winBlocked = false
		ps.winCause = -1
		st.sent++
	}
	ps.frontier, ps.lag = s, 0

	t := g.newNode(KindTx, int32(src), inject)
	g.addEdge(t, s, 0, AxisNone)
	if ps.lastTx >= 0 {
		g.addEdge(t, ps.lastTx, ps.lastOcc, AxisG)
	}
	ps.lastTx, ps.lastOcc = t, ps.pendOcc

	a := g.newNode(KindWire, int32(dst), arrival)
	g.addEdge(a, t, arrival-inject, AxisL)
	st.wire.push(a)
}

// MessageDelivered matches the arrival to its launch and queues it for
// the receiver's o_recv. A reply's arrival also frees the requester's
// window slot toward the responder.
//
//repro:hotpath
func (b *Builder) MessageDelivered(src, dst int, reply bool, at sim.Time) {
	if b.errMsg != "" {
		return
	}
	st := b.stream(src, dst)
	a, ok := st.wire.pop()
	if !ok {
		b.fail("delivery without a matching launch")
		return
	}
	if b.g.nodePtr(a).val != at {
		b.fail("arrival time differs from launch schedule (lossy or delayed wire?)")
		return
	}
	b.procs[dst].inbox.push(a)
	if reply {
		rs := b.stream(dst, src)
		rs.credits.push(at, a)
		b.pendAdd(&b.procs[dst], a)
	}
}

// RecvOverhead creates the receive node: the o_recv completion depends
// on the processor's chain and on the message's wire arrival.
//
//repro:hotpath
func (b *Builder) RecvOverhead(proc int, from, to sim.Time) {
	if b.errMsg != "" {
		return
	}
	ps := &b.procs[proc]
	a, ok := ps.inbox.pop()
	if !ok {
		b.fail("receive without a matching delivery")
		return
	}
	dur := to - from
	r := b.g.newNode(KindRecv, int32(proc), to)
	b.g.addEdge(r, ps.frontier, ps.lag+dur, AxisO)
	b.g.addEdge(r, a, dur, AxisO)
	ps.frontier, ps.lag = r, 0
}

// CreditIssued creates the firmware credit node: it leaves the responder
// at its current position and lands at the requester one wire latency
// later (a ΔL edge), freeing a window slot there.
//
//repro:hotpath
func (b *Builder) CreditIssued(requester, responder int, at sim.Time) {
	if b.errMsg != "" {
		return
	}
	ps := &b.procs[responder]
	c := b.g.newNode(KindCredit, int32(responder), at+b.lat)
	b.g.addEdge(c, ps.frontier, ps.lag+b.lat, AxisL)
	b.stream(requester, responder).credits.push(at+b.lat, c)
	b.pendAdd(&b.procs[requester], c)
}

// ComputeCharged folds local computation into the processor's lag.
//
//repro:hotpath
func (b *Builder) ComputeCharged(proc int, from, to sim.Time) {
	b.procs[proc].lag += to - from
}

// ClockAdvanced classifies raw clock motion: charges are already
// attributed by the named hooks, idle inside a marked wait is slack the
// graph resolves through its edges, and idle outside any wait (the disk
// model's host sleeps) is duration-like and folds into lag.
//
//repro:hotpath
func (b *Builder) ClockAdvanced(proc int, kind sim.ClockKind, from, to sim.Time) {
	switch kind {
	case sim.ClockCharge:
	case sim.ClockStretch:
		b.fail("fault-stretched charge observed; faulted runs cannot be modeled")
	default:
		ps := &b.procs[proc]
		if !ps.waiting {
			ps.lag += to - from
		}
	}
}

// WaitBegin marks the processor as blocked: its idle time is slack, not
// duration.
//
//repro:hotpath
func (b *Builder) WaitBegin(proc int, kind am.WaitKind, at sim.Time) {
	b.procs[proc].waiting = true
}

// WaitEnd clears the blocked mark. A store-sync additionally joins the
// frontier with every pending credit: the quiesce completes only when
// all issued requests have been acknowledged.
//
//repro:hotpath
func (b *Builder) WaitEnd(proc int, kind am.WaitKind, at sim.Time) {
	ps := &b.procs[proc]
	ps.waiting = false
	front := ps.lag
	if ps.frontier >= 0 {
		front += b.g.nodePtr(ps.frontier).val
	}
	if kind == am.WaitWindow {
		ps.winBlocked = true
		ps.winCause = -1
		if front < at {
			ps.winCause = b.waitCause(ps, at)
		}
		return
	}
	cause := int32(-1)
	if front < at {
		cause = b.waitCause(ps, at)
	}
	if kind == am.WaitStore {
		if len(ps.pend) > 0 || cause >= 0 {
			b.joinPend(ps, int32(proc), at, false, cause)
		}
		return
	}
	// A data or barrier wait that ended past the processor's modeled
	// position was released by an arrival — an acknowledgement, or the
	// inbox arrival the spinning waiter's clock had advanced to when it
	// observed an early-drained effect: pin the frontier there, keeping
	// acks still in flight for a later sync.
	need := cause >= 0
	if !need {
		for _, c := range ps.pend {
			if v := b.g.nodePtr(c).val; v <= at && v > front {
				need = true
				break
			}
		}
	}
	if need {
		b.joinPend(ps, int32(proc), at, true, cause)
	}
}

// waitCause locates the arrival a wait's end coincides with: an
// acknowledgement (credit or reply, any stream) still in pend, or an
// undelivered inbox arrival. A waiter off its chain only observes at
// such instants — its clock advances to inbox arrivals while spinning,
// and a parked waiter wakes at event arrivals addressed to it — so a
// wait end matching no chain position happened exactly at one. Returns
// -1 when no arrival matches.
//
//repro:hotpath
func (b *Builder) waitCause(ps *procState, at sim.Time) int32 {
	for _, n := range ps.pend {
		if b.g.nodePtr(n).val == at {
			return n
		}
	}
	for _, n := range ps.inbox.buf[ps.inbox.head:] {
		if b.g.nodePtr(n).val == at {
			return n
		}
	}
	return -1
}

// joinPend materializes a wait-end join node over the pending
// acknowledgement arrivals and the pinning inbox arrival, if any
// (cause, -1 = none). Arrivals later than the observed end are never
// joined: the waiter saw their effect early (another processor's
// checkpoint drained the event ahead of this processor's clock), so
// they did not constrain this run. keepLater retains them for a later
// sync (a mid-run data wait); a store-sync consumes the whole list.
func (b *Builder) joinPend(ps *procState, proc int32, at sim.Time, keepLater bool, cause int32) {
	j := b.g.newNode(KindJoin, proc, at)
	b.g.addEdge(j, ps.frontier, ps.lag, AxisNone)
	if cause >= 0 {
		b.g.addEdge(j, cause, 0, AxisNone)
	}
	kept := ps.pend[:0]
	for _, c := range ps.pend {
		if b.g.nodePtr(c).val <= at {
			b.g.addEdge(j, c, 0, AxisNone)
		} else if keepLater {
			kept = append(kept, c)
		}
	}
	ps.pend = kept
	ps.frontier, ps.lag = j, 0
}

// pendAdd tracks a credit arrival for the owner's next quiesce, folding
// the list into one join node when it reaches pendFold.
//
//repro:hotpath
func (b *Builder) pendAdd(ps *procState, n int32) {
	if len(ps.pend) >= pendFold {
		b.foldPend(ps)
	}
	ps.pend = append(ps.pend, n) //lint:allow hotpathalloc amortized growth, capped at pendFold
}

// foldPend replaces the pending list with a single join over it: the
// join's in-edges preserve exactly the constraint a later quiesce needs.
func (b *Builder) foldPend(ps *procState) {
	var mx sim.Time
	for _, c := range ps.pend {
		if v := b.g.nodePtr(c).val; v > mx {
			mx = v
		}
	}
	j := b.g.newNode(KindJoin, -1, mx)
	for _, c := range ps.pend {
		b.g.addEdge(j, c, 0, AxisNone)
	}
	ps.pend = ps.pend[:0]
	ps.pend = append(ps.pend, j)
}

// String summarizes the builder for diagnostics.
func (b *Builder) String() string {
	return fmt.Sprintf("depgraph.Builder{procs: %d, nodes: %d, edges: %d}", len(b.procs), b.g.nn, b.g.ne)
}
