// Package depgraph extracts a parametric communication dependency graph
// from one instrumented simulation run.
//
// A Builder attaches to the machine's instrumentation seam (am.Hooks +
// am.ClockHooks + am.WireHooks) and streams the per-processor event
// sequences into a compact DAG: nodes are completion instants (an o_send
// charge, a transmit-context reservation, a wire arrival, an o_recv
// charge, a window-credit return, a quiesce join), and each in-edge
// carries a weight of the form
//
//	c + slope·Δaxis
//
// where c is a constant in simulated nanoseconds and axis is one of the
// LogGP deltas the paper sweeps (Δo, ΔL, Δg) with unit slope. Local
// computation and host sleep fold into the constant part of the next
// node's in-edge, so the graph stays proportional to the number of
// messages, not the number of clock advances. Evaluating the longest
// path to the sink at a given (Δo, ΔL, Δg) — internal/tolerance's job —
// predicts the run's makespan at that operating point without
// re-simulating.
//
// The graph is exact for deterministic schedules up to the first
// critical-path reordering that changes the *set* of dependencies (a
// poll happening in a different order, a lock acquired by a different
// contender, a window credit overtaking a reply). See DESIGN.md §14 for
// the exactness/validity boundary.
//
// Construction is allocation-free on the steady path: nodes and edges
// live in fixed-size chunked arenas, per-stream FIFOs reuse their
// backing arrays, and all hook methods are //repro:hotpath functions
// checked by reprolint's hotpathalloc analyzer. The builder rejects runs
// it cannot model faithfully (fault injection, the reliability layer's
// retransmissions) by recording an error surfaced at Seal.
package depgraph

import (
	"fmt"
	"io"
	"sort"
	"unsafe"

	"repro/internal/sim"
)

// Axis names the LogGP delta a parametric edge weight tracks.
type Axis uint8

const (
	// AxisNone marks a constant-weight edge.
	AxisNone Axis = iota
	// AxisO tracks Δo (per-message send/receive overhead).
	AxisO
	// AxisL tracks ΔL (wire latency).
	AxisL
	// AxisG tracks Δg (transmit-context gap).
	AxisG
)

func (a Axis) String() string {
	switch a {
	case AxisO:
		return "o"
	case AxisL:
		return "L"
	case AxisG:
		return "g"
	}
	return ""
}

// Kind classifies a node's completion instant.
type Kind uint8

const (
	// KindOSend is the end of a message's o_send charge at the sender.
	KindOSend Kind = iota
	// KindTx is a message's injection instant at the sender's NIC.
	KindTx
	// KindWire is a message's arrival instant at the receiver's NIC.
	KindWire
	// KindRecv is the end of a message's o_recv charge at the receiver.
	KindRecv
	// KindCredit is the arrival of a firmware window credit back at the
	// requester.
	KindCredit
	// KindJoin merges a processor's frontier with pending credit arrivals
	// (a store-sync quiesce, or an internal fold keeping state bounded).
	KindJoin
	// KindSink is the single makespan node every processor's final
	// position feeds.
	KindSink
)

func (k Kind) String() string {
	switch k {
	case KindOSend:
		return "osend"
	case KindTx:
		return "tx"
	case KindWire:
		return "wire"
	case KindRecv:
		return "recv"
	case KindCredit:
		return "credit"
	case KindJoin:
		return "join"
	case KindSink:
		return "sink"
	}
	return "node?"
}

const (
	chunkBits = 13
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// node is one completion instant. edge heads the in-edge list; val is
// the instant observed in the instrumented baseline run (the graph
// evaluated at Δ = 0 must reproduce it — the builder's self-check).
type node struct {
	edge int32
	proc int32
	val  sim.Time
	kind Kind
}

// edge is one dependency: this node happens no earlier than
// pred + c + Δaxis.
type edge struct {
	pred int32
	next int32
	c    sim.Time
	axis Axis
}

// Graph is the finished DAG. Node indices are assigned in construction
// order, which is topological: every edge's predecessor index is smaller
// than its node's index (the engine executes causes before effects), so
// a single ascending scan evaluates the longest path.
type Graph struct {
	nodeChunks [][]node
	edgeChunks [][]edge
	nn, ne     int32
	procs      int
	elapsed    sim.Time
	sink       int32
}

// NumNodes is the node count, sink included.
func (g *Graph) NumNodes() int { return int(g.nn) }

// NumEdges is the edge count.
func (g *Graph) NumEdges() int { return int(g.ne) }

// Procs is the simulated machine size the graph was extracted from.
func (g *Graph) Procs() int { return g.procs }

// Elapsed is the recorded makespan of the instrumented run.
func (g *Graph) Elapsed() sim.Time { return g.elapsed }

// Sink is the index of the makespan node (the last node).
func (g *Graph) Sink() int32 { return g.sink }

// Node reports node i's kind, owning processor (-1 for the sink), and
// recorded baseline completion time.
func (g *Graph) Node(i int32) (Kind, int, sim.Time) {
	n := g.nodePtr(i)
	return n.kind, int(n.proc), n.val
}

// InEdges calls fn for each in-edge of node i: pred is the predecessor
// node (-1 for the virtual time-zero origin), c the constant weight in
// nanoseconds, and axis the delta the edge tracks with unit slope.
// Edges are visited in reverse insertion order.
func (g *Graph) InEdges(i int32, fn func(pred int32, c sim.Time, axis Axis)) {
	for ei := g.nodePtr(i).edge; ei >= 0; {
		e := &g.edgeChunks[ei>>chunkBits][ei&chunkMask]
		fn(e.pred, e.c, e.axis)
		ei = e.next
	}
}

// MemBytes is the arena footprint of the graph in bytes (whole chunks,
// matching what the builder actually reserved).
func (g *Graph) MemBytes() int64 {
	nb := int64(len(g.nodeChunks)) * chunkSize * int64(unsafe.Sizeof(node{}))
	eb := int64(len(g.edgeChunks)) * chunkSize * int64(unsafe.Sizeof(edge{}))
	return nb + eb
}

//repro:hotpath
func (g *Graph) nodePtr(i int32) *node {
	return &g.nodeChunks[i>>chunkBits][i&chunkMask]
}

//repro:hotpath
func (g *Graph) newNode(kind Kind, proc int32, val sim.Time) int32 {
	i := g.nn
	if int(i>>chunkBits) == len(g.nodeChunks) {
		g.growNodes()
	}
	n := &g.nodeChunks[i>>chunkBits][i&chunkMask]
	n.edge = -1
	n.proc = proc
	n.val = val
	n.kind = kind
	g.nn++
	return i
}

//repro:hotpath
func (g *Graph) addEdge(n, pred int32, c sim.Time, axis Axis) {
	i := g.ne
	if int(i>>chunkBits) == len(g.edgeChunks) {
		g.growEdges()
	}
	nd := g.nodePtr(n)
	e := &g.edgeChunks[i>>chunkBits][i&chunkMask]
	e.pred = pred
	e.next = nd.edge
	e.c = c
	e.axis = axis
	nd.edge = i
	g.ne++
}

// growNodes reserves the next node chunk: one allocation per chunkSize
// nodes, off the per-event steady path.
func (g *Graph) growNodes() {
	g.nodeChunks = append(g.nodeChunks, make([]node, chunkSize))
}

// growEdges reserves the next edge chunk.
func (g *Graph) growEdges() {
	g.edgeChunks = append(g.edgeChunks, make([]edge, chunkSize))
}

// DOT writes the graph in Graphviz format with deterministic output:
// nodes ascending by index, each node's in-edges sorted by predecessor
// index. Meant for eyeballing small runs (cmd/appstat -depgraph).
func (g *Graph) DOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph depgraph {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR;"); err != nil {
		return err
	}
	type line struct {
		pred int32
		c    sim.Time
		axis Axis
	}
	var in []line
	for i := int32(0); i < g.nn; i++ {
		kind, proc, val := g.Node(i)
		label := fmt.Sprintf("%s @%.1fµs", kind, float64(val)/1e3)
		if proc >= 0 {
			label = fmt.Sprintf("p%d %s", proc, label)
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", i, label); err != nil {
			return err
		}
		in = in[:0]
		g.InEdges(i, func(pred int32, c sim.Time, axis Axis) {
			in = append(in, line{pred, c, axis})
		})
		sort.Slice(in, func(a, b int) bool { return in[a].pred < in[b].pred })
		for _, e := range in {
			label := fmt.Sprintf("+%.1fµs", float64(e.c)/1e3)
			if e.axis != AxisNone {
				label += "+Δ" + e.axis.String()
			}
			src := fmt.Sprintf("n%d", e.pred)
			if e.pred < 0 {
				src = "origin"
			}
			if _, err := fmt.Fprintf(w, "  %s -> n%d [label=%q];\n", src, i, label); err != nil {
				return err
			}
		}
	}
	has := false
	for i := int32(0); i < g.nn && !has; i++ {
		g.InEdges(i, func(pred int32, _ sim.Time, _ Axis) {
			if pred < 0 {
				has = true
			}
		})
	}
	if has {
		if _, err := fmt.Fprintln(w, `  origin [label="t=0"];`); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
