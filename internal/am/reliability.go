package am

import (
	"fmt"

	"repro/internal/sim"
)

// Reliability configures the optional AM-layer reliability protocol. With
// Enabled set, every message (requests and replies alike) carries a
// per-stream sequence number; the receiving NIC deduplicates, resequences
// out-of-order arrivals, and acknowledges with a cumulative ack — both
// piggybacked on every data message flowing the other way and as a
// firmware-level ack packet per delivery (lossless and host-cost-free,
// like window-credit returns; see DESIGN.md §9 for why the control
// channel may assume a reliable wire). Unacked messages retransmit on a
// timeout with exponential backoff; the retransmission occupies the NIC
// transmit context but charges the host nothing.
type Reliability struct {
	// Enabled turns the protocol on.
	Enabled bool
	// RTO is the initial retransmission timeout, measured from injection.
	// Zero selects 2·(2L + g + G·FragmentSize) from the machine's
	// effective parameters — comfortably above one ack round trip even
	// for bulk fragments, so a lossless wire sees no spurious
	// retransmissions.
	RTO sim.Time
	// Backoff multiplies the timeout after each retransmission. Values
	// below 1 (including zero) select 2.
	Backoff float64
	// MaxRetries caps retransmissions per message; one past the cap the
	// run aborts with a *DeliveryError. Zero selects 12.
	MaxRetries int
}

// DeliveryError reports a message that exhausted its retransmission
// budget. sim.Engine.Run returns it wrapped in the run-failure error
// chain; match with errors.As.
type DeliveryError struct {
	// Src and Dst identify the stream.
	Src, Dst int
	// Seq is the undeliverable message's sequence number.
	Seq int64
	// Attempts is the number of transmissions performed.
	Attempts int
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("am: message %d→%d seq %d undeliverable after %d transmissions",
		e.Src, e.Dst, e.Seq, e.Attempts)
}

// relConfig is the machine-wide resolved protocol configuration.
type relConfig struct {
	rto        sim.Time
	backoff    float64
	maxRetries int
}

// rtoAt returns the timeout armed for transmission number attempt (1-based).
func (rc *relConfig) rtoAt(attempt int) sim.Time {
	t := float64(rc.rto)
	for i := 1; i < attempt; i++ {
		t *= rc.backoff
	}
	return sim.Time(t)
}

// relEntry tracks one unacked message on its sender.
type relEntry struct {
	seq      int64
	msg      *message
	attempts int
	acked    bool
}

// relStream is the sender side of one src→dst stream.
type relStream struct {
	nextSeq int64
	unacked []*relEntry // ascending seq
}

// relRecv is the receiver side of one src→dst stream.
type relRecv struct {
	expected int64              // next in-order sequence number (1-based)
	buf      map[int64]*message // out-of-order arrivals awaiting the gap
}

// relEndpoint is one endpoint's protocol state: a sender stream per
// destination and a receiver stream per source.
type relEndpoint struct {
	cfg *relConfig
	tx  []relStream
	rx  []relRecv
}

// SetReliability configures the reliability protocol on every endpoint
// (Enabled false tears it down). Attach before the run starts; the
// protocol changes message timing even on a lossless wire (credits are
// unchanged, but delivery passes through the resequencer), so enable it
// only for runs that measure it.
func (m *Machine) SetReliability(cfg Reliability) {
	if !cfg.Enabled {
		m.rel = nil
		for _, ep := range m.eps {
			ep.rel = nil
		}
		m.updatePooling()
		return
	}
	rc := &relConfig{rto: cfg.RTO, backoff: cfg.Backoff, maxRetries: cfg.MaxRetries}
	if rc.rto <= 0 {
		p := &m.params
		rc.rto = 2 * (2*p.EffLatency() + p.EffGap() + p.BulkTime(p.FragmentSize))
	}
	if rc.backoff < 1 {
		rc.backoff = 2
	}
	if rc.maxRetries <= 0 {
		rc.maxRetries = 12
	}
	m.rel = rc
	// Retransmission and resequencing keep references to message records
	// past delivery, so delivery-time recycling must be off (see pool.go).
	m.updatePooling()
	for _, ep := range m.eps {
		r := &relEndpoint{cfg: rc, tx: make([]relStream, m.P()), rx: make([]relRecv, m.P())}
		for i := range r.rx {
			r.rx[i].expected = 1
		}
		ep.rel = r
	}
}

// Reliable reports whether the reliability protocol is enabled.
func (m *Machine) Reliable() bool { return m.rel != nil }

// send sequences a freshly launched message and performs its first
// transmission. Called from launch with the transmit context already
// reserved (inject) and the nominal arrival computed.
func (r *relEndpoint) send(ep *Endpoint, msg *message, inject, arrival sim.Time) {
	st := &r.tx[msg.dst]
	st.nextSeq++
	msg.seq = st.nextSeq
	// Piggyback the cumulative ack for the reverse stream on every data
	// message; the value is frozen here and stays valid (acks are
	// cumulative, so a stale one is simply weaker).
	msg.ack = r.rx[msg.dst].expected - 1
	e := &relEntry{seq: msg.seq, msg: msg}
	st.unacked = append(st.unacked, e)
	r.transmit(ep, e, inject, arrival, false)
}

// transmit performs one physical transmission of an unacked entry and
// arms its retransmission timer.
func (r *relEndpoint) transmit(ep *Endpoint, e *relEntry, inject, arrival sim.Time, retrans bool) {
	e.attempts++
	deadline := inject + r.cfg.rtoAt(e.attempts)
	ep.m.eng.ScheduleAt(deadline, func() { r.timeout(ep, e, deadline) })
	ep.m.putOnWire(e.msg, inject, arrival, retrans)
}

// timeout fires when an armed retransmission timer expires. Stale timers
// (the entry was acked meanwhile) are no-ops; a live one either re-injects
// the message — NIC-initiated, so the transmit context is occupied but no
// host overhead is charged — or, past the retry cap, aborts the run.
func (r *relEndpoint) timeout(ep *Endpoint, e *relEntry, at sim.Time) {
	if e.acked {
		return
	}
	if e.attempts > r.cfg.maxRetries {
		ep.m.eng.Fail(&DeliveryError{Src: e.msg.src, Dst: e.msg.dst, Seq: e.seq, Attempts: e.attempts})
	}
	p := &ep.m.params
	msg := e.msg
	bulk := msg.kind == kindBulk || msg.kind == kindBulkReply
	inject := at
	if ep.txFreeAt > inject {
		inject = ep.txFreeAt
	}
	gapFree := inject + p.EffGap()
	busyFree := gapFree
	wire := p.EffLatency()
	if bulk {
		dma := p.BulkTime(len(msg.data))
		busyFree += dma
		wire += dma
	}
	ep.txFreeAt = busyFree
	ep.m.stats.Retransmits++
	if h := ep.m.hooks; h != nil {
		h.TxRetransmit(ep.ID(), inject, gapFree, busyFree)
	}
	r.transmit(ep, e, inject, inject+wire, true)
}

// arrive is the receiving NIC's protocol step for one transmission:
// apply the piggybacked ack, deduplicate, deliver in sequence order
// (draining any buffered successors), and emit a cumulative ack.
func (r *relEndpoint) arrive(dst *Endpoint, msg *message, at sim.Time) {
	m := dst.m
	if msg.ack > 0 {
		r.ackUpTo(msg.src, msg.ack)
	}
	rx := &r.rx[msg.src]
	switch {
	case msg.seq == rx.expected:
		rx.expected++
		r.accept(dst, msg, at)
		for {
			next, ok := rx.buf[rx.expected]
			if !ok {
				break
			}
			delete(rx.buf, rx.expected)
			rx.expected++
			r.accept(dst, next, at)
		}
	case msg.seq < rx.expected:
		// A duplicate of an already-delivered message (retransmission or
		// wire dup): discard at the NIC — the host never sees it — and
		// re-ack so the sender stops retransmitting.
		m.stats.DupsDiscarded++
	default:
		if rx.buf == nil {
			rx.buf = make(map[int64]*message)
		}
		if _, dup := rx.buf[msg.seq]; dup {
			m.stats.DupsDiscarded++
		} else {
			rx.buf[msg.seq] = msg
		}
	}
	// Firmware-level cumulative ack back to the sender (lossless control
	// channel, like window-credit returns).
	m.scheduleAck(msg.dst, msg.src, rx.expected-1, at)
}

// accept delivers one in-sequence message to the host-visible inbox.
func (r *relEndpoint) accept(dst *Endpoint, msg *message, at sim.Time) {
	msg.arrival = at
	if msg.kind == kindReply || msg.kind == kindBulkReply {
		dst.outstanding.dec(msg.src)
	}
	dst.pushInbox(msg)
	dst.proc.WakeAt(at)
}

// ackUpTo retires every unacked entry with seq ≤ cum on this endpoint's
// stream toward dst. Acks change no host-visible state, so no wakeup.
func (r *relEndpoint) ackUpTo(dst int, cum int64) {
	st := &r.tx[dst]
	i := 0
	for i < len(st.unacked) && st.unacked[i].seq <= cum {
		st.unacked[i].acked = true
		i++
	}
	if i > 0 {
		st.unacked = append(st.unacked[:0], st.unacked[i:]...)
	}
}

// scheduleAck flies a firmware ack from receiver back to sender, covering
// the sender→receiver stream up to cum.
func (m *Machine) scheduleAck(receiver, sender int, cum int64, at sim.Time) {
	se := m.eps[sender]
	arrive := at + m.params.EffLatency()
	m.eng.ScheduleAt(arrive, func() { se.rel.ackUpTo(receiver, cum) })
}

// Unacked reports the number of in-flight (sent, not yet acked) messages
// from this endpoint toward dst (tests and diagnostics); always 0 with
// the reliability layer off.
func (ep *Endpoint) Unacked(dst int) int {
	if ep.rel == nil {
		return 0
	}
	return len(ep.rel.tx[dst].unacked)
}
