// Package am implements the paper's communication substrate: a Generic
// Active Messages (GAM) style layer whose LogGP characteristics — overhead,
// gap, latency, and bulk bandwidth — can be varied independently, exactly
// as §3.2 of the paper describes for the Berkeley NOW's LANai firmware.
//
// Model summary (short message from i to j):
//
//	host i : stall Δo, write message into NIC        — charge o_send+Δo
//	NIC i  : inject at max(now, txFreeAt)            — txFreeAt += g+Δg
//	wire   : presence bit set at inject + L + ΔL     — the delay queue
//	host j : at its next poll, read message, run the
//	         handler                                 — charge o_recv+Δo
//
// Bulk fragments (≤ FragmentSize bytes) additionally occupy the transmit
// path for G·size (the DMA rate / bulk-bandwidth knob) and arrive G·size
// later. The layer enforces a fixed window of outstanding requests per
// destination: a processor that would exceed it stalls, spin-polling the
// network, until a reply or firmware-level ack returns a credit — the
// paper's capacity constraint that is deliberately independent of L.
//
// As in GAM, request handlers run at poll points on the receiving
// processor (never asynchronously), may send at most one reply, and must
// not block; replies are exempt from the window so the layer is
// deadlock-free.
//
// Instrumentation attaches through the Hooks interface (embed NopHooks,
// attach with Machine.SetHooks or splitc.World.Attach): every message
// event, overhead charge, transmit-context reservation, and wait span is
// reported through it, and hooks that also implement ClockHooks see every
// raw clock advance — the invariant behind internal/prof's conservation
// proof.
//
// The wire is lossless by default. A FaultInjector (Machine.SetFaults;
// implemented by internal/fault) can drop, duplicate, or delay individual
// transmissions and stretch processor charges; on top of a lossy wire the
// optional reliability layer (Machine.SetReliability) adds per-stream
// sequence numbers, receiver-side dedup and resequencing, cumulative acks
// piggybacked on every data message plus firmware-level ack packets, and
// timeout-driven retransmission with exponential backoff — a message that
// exhausts its retry cap aborts the run with a typed *DeliveryError.
package am

import (
	"fmt"

	"repro/internal/logp"
	"repro/internal/sim"
)

// SmallWireBytes is the wire footprint of a short active message (header +
// four 64-bit payload words), used for the paper's "small message KB/s"
// accounting in Table 4.
const SmallWireBytes = 28

// Class tags a message's role for Table 4 accounting.
type Class uint8

const (
	// ClassWrite marks data-moving one-way traffic (remote stores).
	ClassWrite Class = iota
	// ClassRead marks read requests and their replies.
	ClassRead
	// ClassSync marks synchronization traffic (barriers, locks).
	ClassSync
)

// Args is the payload of a short active message: four 64-bit words, the
// GAM short-message format.
type Args [4]uint64

// Handler processes a short active message on the receiving processor.
// Handlers run at poll points, may call ep.Reply at most once when handling
// a request, and must not block, poll, or send new requests.
type Handler func(ep *Endpoint, tok *Token, args Args)

// BulkHandler processes an arrived bulk fragment. The data slice is owned
// by the receiver.
type BulkHandler func(ep *Endpoint, tok *Token, args Args, data []byte)

// Token identifies the message being handled and carries reply plumbing.
type Token struct {
	// Src is the sending processor.
	Src int
	// Class is the sender's traffic classification.
	Class Class
	// IsReply reports whether this message is a reply.
	IsReply bool

	replied bool
	dst     int
}

type msgKind uint8

const (
	kindRequest msgKind = iota
	kindReply
	kindBulk
	kindBulkReply
	// kindCredit is a firmware-level window-credit return riding a pooled
	// record through the event queue; it never enters an inbox and no
	// host overhead is charged for it.
	kindCredit
)

type message struct {
	m       *Machine // owning machine, for pool recycling and event dispatch
	kind    msgKind
	src     int
	dst     int
	class   Class
	arrival sim.Time
	handler Handler
	bulkH   BulkHandler
	args    Args
	data    []byte

	// Reliability-layer header, populated only when the layer is enabled:
	// seq is the message's position in the src→dst stream (1-based; 0
	// means unsequenced), ack piggybacks the sender's cumulative ack for
	// the reverse dst→src stream (0 means none).
	seq int64
	ack int64
}

// Machine couples a simulation engine with a communication fabric: one
// Endpoint (host interface + NIC) per processor, a shared LogGP parameter
// set, and shared instrumentation.
type Machine struct {
	eng    *sim.Engine
	params logp.Params
	eps    []*Endpoint
	stats  *Stats
	hooks  Hooks
	// wire is the cached WireHooks downcast of hooks, resolved once in
	// SetHooks so the per-message wire events need no type assertion on
	// the hot path (nil when hooks does not implement WireHooks).
	wire WireHooks

	// faults, when set, is consulted for every physical wire transmission
	// and every explicit processor charge (see SetFaults).
	faults FaultInjector
	// rel holds the reliability-protocol configuration; nil = lossless
	// wire assumed, no sequencing (see SetReliability).
	rel *relConfig

	// msgPool is the freelist of recycled message records and pooling
	// the gate on recycling data messages at delivery (see pool.go).
	msgPool []*message
	pooling bool

	// cpuFactor scales local computation speed: 2.0 halves every Compute
	// charge (a processor twice as fast), leaving communication costs
	// untouched — the §5.5 processor-vs-network tradeoff knob.
	cpuFactor float64
}

// NewMachine builds the fabric for every processor of eng.
func NewMachine(eng *sim.Engine, params logp.Params) (*Machine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{eng: eng, params: params, stats: newStats(eng.P()), cpuFactor: 1, pooling: true}
	m.eps = make([]*Endpoint, eng.P())
	for i := range m.eps {
		m.eps[i] = &Endpoint{
			m:           m,
			proc:        eng.Proc(i),
			outstanding: newWinCounts(eng.P()),
		}
		m.eps[i].pw.ep = m.eps[i]
	}
	return m, nil
}

// MustMachine is NewMachine for known-good parameters.
func MustMachine(eng *sim.Engine, params logp.Params) *Machine {
	m, err := NewMachine(eng, params)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the machine's LogGP parameter set.
func (m *Machine) Params() logp.Params { return m.params }

// P returns the processor count.
func (m *Machine) P() int { return len(m.eps) }

// Endpoint returns processor i's communication endpoint.
func (m *Machine) Endpoint(i int) *Endpoint { return m.eps[i] }

// Stats returns the machine-wide instrumentation.
func (m *Machine) Stats() *Stats { return m.stats }

// SetHooks attaches the machine's instrumentation (nil detaches). When h
// also implements ClockHooks, every processor's raw clock advances are
// forwarded to it as well. Attach before the run starts: the profiler's
// conservation proof needs to see time zero onward.
func (m *Machine) SetHooks(h Hooks) {
	m.hooks = h
	m.wire, _ = h.(WireHooks)
	ch, _ := h.(ClockHooks)
	for i, ep := range m.eps {
		if ch == nil {
			ep.proc.SetClockHook(nil)
			continue
		}
		id := i
		ep.proc.SetClockHook(func(kind sim.ClockKind, from, to sim.Time) {
			ch.ClockAdvanced(id, kind, from, to)
		})
	}
}

// Hooks returns the attached instrumentation (nil when detached).
func (m *Machine) Hooks() Hooks { return m.hooks }

// SetCPUFactor makes every processor's local computation f× faster
// (Compute charges are divided by f). Communication overheads are NOT
// scaled: the network interface limits them, which is exactly the
// asymmetry behind the paper's §5.5 tradeoff observation.
func (m *Machine) SetCPUFactor(f float64) {
	if f <= 0 {
		panic("am: CPU factor must be positive")
	}
	m.cpuFactor = f
}

// CPUFactor reports the current compute-speed factor.
func (m *Machine) CPUFactor() float64 { return m.cpuFactor }

// Endpoint is one processor's interface to the network. All methods must be
// called from the owning processor's goroutine (handlers included).
type Endpoint struct {
	m    *Machine
	proc *sim.Proc

	// txFreeAt is the earliest time the NIC transmit context can inject
	// the next message (the gap / bulk-Gap bottleneck).
	txFreeAt sim.Time
	// inbox holds delivered-but-unpolled messages, sorted by arrival time
	// (deliveries are scheduled events, which execute in time order).
	// head indexes the first live element; the queue compacts lazily.
	inbox     []*message
	inboxHead int
	// outstanding counts un-acked requests per destination (window),
	// dense below denseWinMaxP and sparse above it (see window.go).
	outstanding winCounts
	// inHandler guards against illegal nested polling from handlers.
	inHandler bool
	// tok is the scratch Token handed to handlers, reused across
	// deliveries: handlers Reply during the invocation and never retain
	// the token past it (the GAM contract), and handlers cannot nest
	// (inHandler forbids polling), so one per endpoint suffices.
	tok Token
	// pw is the endpoint's reusable pollable-wait record (see epWait):
	// waits cannot nest (one body, and handlers may not wait), so one per
	// endpoint suffices and parking allocates nothing.
	pw epWait
	// rel is this endpoint's reliability-protocol state; nil when the
	// layer is off (see Machine.SetReliability).
	rel *relEndpoint
}

// epWait adapts an endpoint's spin-poll wait loop to sim.PollableWait, so
// the engine can drive wait iterations inline instead of resuming the
// waiter's goroutine (see Proc.ParkPollable) — and, in resumable mode,
// so continuation bodies can park on it directly (see cont.go). Four
// modes, chosen to keep the steady-state paths closure-free:
//
//   - waitModeWindow: a window stall on dst, ready when a request credit
//     toward dst is free (the send path's stall).
//   - waitModeCond: a WaitUntilFor condition closure.
//   - waitModeCounter: ready when *ctr >= target — the closure-free form
//     continuation primitives use for replies, barrier rounds, and
//     collective operands (cumulative counters, so no reset races).
//   - waitModeQuiesce: ready when every outstanding request is acked
//     (store sync).
type epWait struct {
	ep     *Endpoint
	mode   waitMode
	cond   func() bool
	ctr    *int64
	target int64
	dst    int
	win    int
	reason string
}

type waitMode uint8

const (
	waitModeWindow waitMode = iota
	waitModeCond
	waitModeCounter
	waitModeQuiesce
)

// set re-points the endpoint's reusable wait record at a new wait. Waits
// never nest (one body, and handlers may not wait), so reuse is safe in
// both runtime modes.
func (w *epWait) set(mode waitMode, cond func() bool, ctr *int64, target int64, dst, win int, reason string) *epWait {
	w.mode, w.cond, w.ctr, w.target, w.dst, w.win, w.reason = mode, cond, ctr, target, dst, win, reason
	return w
}

func (w *epWait) Ready(_ *sim.Proc) bool {
	switch w.mode {
	case waitModeCond:
		return w.cond()
	case waitModeCounter:
		return *w.ctr >= w.target
	case waitModeQuiesce:
		return w.ep.outstanding.total == 0
	default:
		return w.ep.outstanding.get(w.dst) < w.win
	}
}

// WaitReason labels the wait in deadlock diagnostics (sim.WaitReasoner).
func (w *epWait) WaitReason() string {
	if w.reason != "" {
		return w.reason
	}
	return "am: endpoint wait"
}

func (w *epWait) PollOne(_ *sim.Proc) bool { return w.ep.pollOne() }

func (w *epWait) NextWork(_ *sim.Proc) (sim.Time, bool) {
	if next := w.ep.peekInbox(); next != nil {
		return next.arrival, true
	}
	return 0, false
}

// Proc returns the simulated processor that owns this endpoint.
func (ep *Endpoint) Proc() *sim.Proc { return ep.proc }

// Machine returns the owning machine.
func (ep *Endpoint) Machine() *Machine { return ep.m }

// ID returns the owning processor's id.
func (ep *Endpoint) ID() int { return ep.proc.ID() }

// P returns the machine's processor count.
func (ep *Endpoint) P() int { return len(ep.m.eps) }

// Now returns the owning processor's virtual clock.
func (ep *Endpoint) Now() sim.Time { return ep.proc.Clock() }

// Compute charges d of local computation, scaled by the machine's CPU
// factor.
func (ep *Endpoint) Compute(d sim.Time) {
	if f := ep.m.cpuFactor; f != 1 {
		d = sim.Time(float64(d)/f + 0.5)
	}
	from := ep.proc.Clock()
	ep.proc.Advance(d)
	if h := ep.m.hooks; h != nil && d > 0 {
		// Report the base charge only: a fault-injected stretch extends
		// the clock past from+d and is reported as ClockStretch instead.
		h.ComputeCharged(ep.ID(), from, from+d)
	}
}

func (ep *Endpoint) params() *logp.Params { return &ep.m.params }

// checkSendContext panics on illegal sends from handler context.
func (ep *Endpoint) checkRequestContext(op string) {
	if ep.inHandler {
		panic(fmt.Sprintf("am: %s called from a message handler on proc %d; handlers may only Reply", op, ep.ID()))
	}
}

// Request sends a short active message to dst and returns once the host
// processor has handed it to the NIC (the message itself is in flight).
// It stalls first, spin-polling, if the outstanding-request window to dst
// is full.
//
//repro:hotpath
func (ep *Endpoint) Request(dst int, class Class, h Handler, args Args) {
	ep.checkRequestContext("Request")
	if h == nil {
		panic("am: Request with nil handler")
	}
	// GAM polls the network on every request: senders service arrivals.
	ep.Poll()
	ep.waitWindow(dst)
	ep.chargeSend()
	ep.outstanding.inc(dst)
	msg := ep.m.getMsg()
	msg.kind, msg.src, msg.dst, msg.class, msg.handler, msg.args = kindRequest, ep.ID(), dst, class, h, args
	ep.m.stats.countSendAt(ep.ID(), dst, class, false, 0, ep.proc.Clock())
	ep.launch(msg)
}

// Reply answers the request identified by tok with a short active message.
// Replies bypass the window (they can always be injected) and are legal
// from handler context; each request may be answered at most once.
//
//repro:hotpath
func (ep *Endpoint) Reply(tok *Token, h Handler, args Args) {
	if tok == nil || tok.IsReply {
		panic("am: Reply requires a request token")
	}
	if tok.replied {
		panic("am: duplicate Reply to one request")
	}
	if h == nil {
		panic("am: Reply with nil handler")
	}
	tok.replied = true
	ep.chargeSend()
	msg := ep.m.getMsg()
	msg.kind, msg.src, msg.dst, msg.class, msg.handler, msg.args = kindReply, ep.ID(), tok.Src, tok.Class, h, args
	ep.m.stats.countSendAt(ep.ID(), tok.Src, tok.Class, false, 0, ep.proc.Clock())
	ep.launch(msg)
}

// Store sends one bulk fragment (≤ FragmentSize bytes) to dst, invoking h
// on the receiver when the DMA completes. The data is copied at send time.
// Store counts as one bulk message (the paper's "Active Message bulk
// transfer mechanism"); larger transfers are loops of Stores — see
// StoreLarge.
//
//repro:hotpath
func (ep *Endpoint) Store(dst int, class Class, h BulkHandler, args Args, data []byte) {
	ep.checkRequestContext("Store")
	if h == nil {
		panic("am: Store with nil handler")
	}
	p := ep.params()
	if len(data) > p.FragmentSize {
		panic(fmt.Sprintf("am: Store of %d bytes exceeds fragment size %d; use StoreLarge", len(data), p.FragmentSize))
	}
	// GAM polls the network on every request: senders service arrivals.
	ep.Poll()
	ep.waitWindow(dst)
	ep.chargeSend()
	ep.outstanding.inc(dst)
	// The payload is copied into a fresh buffer because ownership of the
	// bytes transfers to the receiving handler; only the record is pooled.
	//lint:allow hotpathalloc bulk payload copy is the transfer semantics; the zero-alloc property covers short messages
	buf := make([]byte, len(data))
	copy(buf, data)
	msg := ep.m.getMsg()
	msg.kind, msg.src, msg.dst, msg.class, msg.bulkH, msg.args, msg.data = kindBulk, ep.ID(), dst, class, h, args, buf
	ep.m.stats.countSendAt(ep.ID(), dst, class, true, len(data), ep.proc.Clock())
	ep.launch(msg)
}

// ReplyBulk answers the request identified by tok with one bulk fragment —
// the mechanism behind bulk gets: a short read request whose reply is a
// DMA transfer. Like short replies it bypasses the window (the requester's
// own window already bounds it) and is legal from handler context.
func (ep *Endpoint) ReplyBulk(tok *Token, h BulkHandler, args Args, data []byte) {
	if tok == nil || tok.IsReply {
		panic("am: ReplyBulk requires a request token")
	}
	if tok.replied {
		panic("am: duplicate Reply to one request")
	}
	if h == nil {
		panic("am: ReplyBulk with nil handler")
	}
	p := ep.params()
	if len(data) > p.FragmentSize {
		panic(fmt.Sprintf("am: ReplyBulk of %d bytes exceeds fragment size %d", len(data), p.FragmentSize))
	}
	tok.replied = true
	buf := make([]byte, len(data))
	copy(buf, data)
	msg := ep.m.getMsg()
	msg.kind, msg.src, msg.dst, msg.class, msg.bulkH, msg.args, msg.data = kindBulkReply, ep.ID(), tok.Src, tok.Class, h, args, buf
	ep.chargeSend()
	ep.m.stats.countSendAt(ep.ID(), tok.Src, tok.Class, true, len(data), ep.proc.Clock())
	ep.launch(msg)
}

// StoreLarge splits data into fragments and Stores each; h runs on the
// receiver once per fragment with args[3] overridden to hold the byte
// offset of the fragment, so receivers can reassemble.
func (ep *Endpoint) StoreLarge(dst int, class Class, h BulkHandler, args Args, data []byte) {
	frag := ep.params().FragmentSize
	for off := 0; off < len(data); off += frag {
		end := off + frag
		if end > len(data) {
			end = len(data)
		}
		a := args
		a[3] = uint64(off)
		ep.Store(dst, class, h, a, data[off:end])
	}
}

// waitWindow stalls, spin-polling, until a request credit to dst is free.
// The spin loop is WaitUntilFor's, open-coded: window stalls are part of
// the steady-state send path, and a capturing condition closure would be
// a heap allocation per stall.
//
//repro:hotpath
func (ep *Endpoint) waitWindow(dst int) {
	w := ep.params().Window
	if ep.outstanding.get(dst) < w {
		return
	}
	h := ep.m.hooks
	if h != nil {
		h.WaitBegin(ep.ID(), WaitWindow, ep.proc.Clock())
	}
	for {
		ep.proc.Checkpoint()
		if ep.outstanding.get(dst) < w {
			break
		}
		if ep.pollOne() {
			continue
		}
		if next := ep.peekInbox(); next != nil {
			ep.proc.AdvanceTo(next.arrival)
			continue
		}
		ep.pw.set(waitModeWindow, nil, nil, 0, dst, w, "am: window stall")
		if ep.proc.ParkPollable(&ep.pw, "am: window stall") {
			// The engine drove the wait to completion inline: a credit
			// toward dst is free, established at the instant the CPU was
			// handed back. Leave without re-testing.
			break
		}
	}
	if h != nil {
		h.WaitEnd(ep.ID(), WaitWindow, ep.proc.Clock())
	}
}

// chargeSend charges the host-side send overhead (o_send plus the
// experiment's added overhead).
//
//repro:hotpath
func (ep *Endpoint) chargeSend() {
	from := ep.proc.Clock()
	o := ep.params().EffOSend()
	ep.proc.Advance(o)
	if h := ep.m.hooks; h != nil {
		h.SendOverhead(ep.ID(), from, from+o)
	}
}

// injectShort reserves the NIC transmit context for a short message and
// returns the injection time.
//
//repro:hotpath
func (ep *Endpoint) injectShort() sim.Time {
	p := ep.params()
	inject := ep.proc.Clock()
	if ep.txFreeAt > inject {
		inject = ep.txFreeAt
	}
	ep.txFreeAt = inject + p.EffGap()
	if h := ep.m.hooks; h != nil {
		h.TxReserved(ep.ID(), inject, ep.txFreeAt, ep.txFreeAt)
	}
	return inject
}

// injectBulk reserves the NIC transmit context for a bulk fragment: after
// injection the transmit context stalls for the fragment's DMA time
// (G·size) in addition to the gap — the paper's bulk-Gap knob. The receive
// context is unaffected (the LANai's dual hardware contexts).
//
//repro:hotpath
func (ep *Endpoint) injectBulk(n int) sim.Time {
	p := ep.params()
	inject := ep.proc.Clock()
	if ep.txFreeAt > inject {
		inject = ep.txFreeAt
	}
	ep.txFreeAt = inject + p.EffGap() + p.BulkTime(n)
	if h := ep.m.hooks; h != nil {
		h.TxReserved(ep.ID(), inject, inject+p.EffGap(), ep.txFreeAt)
	}
	return inject
}

// launch puts msg on the wire for the first time: it reserves the NIC
// transmit context, computes the nominal arrival instant, and hands the
// message either to the reliability layer (which sequences and registers
// it for retransmission) or directly to the wire. Every host-initiated
// send — short or bulk, request or reply — passes through here exactly
// once; retransmissions re-enter at putOnWire.
//
//repro:hotpath
func (ep *Endpoint) launch(msg *message) {
	p := ep.params()
	bulk := msg.kind == kindBulk || msg.kind == kindBulkReply
	var inject sim.Time
	wire := p.EffLatency()
	if bulk {
		inject = ep.injectBulk(len(msg.data))
		wire += p.BulkTime(len(msg.data))
	} else {
		inject = ep.injectShort()
	}
	if ep.m.hooks != nil {
		ep.m.hooks.MessageSent(msg.src, msg.dst, msg.class, bulk, ep.proc.Clock())
	}
	if wh := ep.m.wire; wh != nil {
		reply := msg.kind == kindReply || msg.kind == kindBulkReply
		wh.MessageLaunched(msg.src, msg.dst, reply, bulk, inject, inject+wire)
	}
	if r := ep.rel; r != nil {
		r.send(ep, msg, inject, inject+wire)
		return
	}
	ep.m.putOnWire(msg, inject, inject+wire, false)
}

// putOnWire performs one physical transmission of msg: the fault injector
// (if any) may drop it, duplicate it, or add wire delay; whatever survives
// is scheduled to arrive. retrans marks reliability-layer retransmissions.
//
//repro:hotpath
func (m *Machine) putOnWire(msg *message, inject, arrival sim.Time, retrans bool) {
	if f := m.faults; f != nil {
		bulk := msg.kind == kindBulk || msg.kind == kindBulkReply
		act := f.OnWire(WireMsg{
			Src:        msg.src,
			Dst:        msg.dst,
			Class:      msg.class,
			Bulk:       bulk,
			Reply:      msg.kind == kindReply || msg.kind == kindBulkReply,
			Retransmit: retrans,
			Seq:        msg.seq,
		}, inject)
		if act.ExtraLatency > 0 {
			arrival += act.ExtraLatency
		}
		if act.Drop {
			m.stats.WireDrops++
			return
		}
		if act.Duplicate {
			m.stats.WireDups++
			m.scheduleArrival(msg, arrival)
		}
	}
	m.scheduleArrival(msg, arrival)
}

// scheduleArrival registers msg's arrival at its destination NIC. With
// the reliability layer off, a reply frees its window credit at arrival
// (the NIC manages credits, so the host need not have polled yet); with
// it on, the receiving NIC's protocol state decides what to deliver.
//
//repro:hotpath
func (m *Machine) scheduleArrival(msg *message, at sim.Time) {
	dst := m.eps[msg.dst]
	if dst.rel != nil {
		//lint:allow hotpathalloc reliability-layer arrival closure; pooling is off with the layer on, the lossless path below is the zero-alloc one
		m.eng.ScheduleAt(at, func() { dst.rel.arrive(dst, msg, at) })
		return
	}
	m.eng.ScheduleCall(at, deliverEvent, msg)
}

// returnCredit schedules the firmware-level ack that frees one window slot
// at the requester. It costs the hosts nothing (the LANai handles it) and,
// like replies, bypasses the transmit gap (acks piggyback). The credit
// rides a pooled record through the zero-alloc event path.
//
//repro:hotpath
func (m *Machine) returnCredit(requester, responder int, at sim.Time) {
	if wh := m.wire; wh != nil {
		wh.CreditIssued(requester, responder, at)
	}
	msg := m.getMsg()
	msg.kind, msg.src, msg.dst = kindCredit, requester, responder
	m.eng.ScheduleCall(at+m.params.EffLatency(), creditEvent, msg)
}

// pushInbox appends an arrived message, compacting consumed space first
// when it dominates the queue.
//
//repro:hotpath
func (ep *Endpoint) pushInbox(msg *message) {
	if ep.inboxHead > 64 && ep.inboxHead*2 > len(ep.inbox) {
		n := copy(ep.inbox, ep.inbox[ep.inboxHead:])
		for i := n; i < len(ep.inbox); i++ {
			ep.inbox[i] = nil
		}
		ep.inbox = ep.inbox[:n]
		ep.inboxHead = 0
	}
	//lint:allow hotpathalloc amortized inbox growth; the slice reaches its high-water mark during warmup
	ep.inbox = append(ep.inbox, msg)
}

// peekInbox returns the oldest unpolled message, or nil.
//
//repro:hotpath
func (ep *Endpoint) peekInbox() *message {
	if ep.inboxHead >= len(ep.inbox) {
		return nil
	}
	return ep.inbox[ep.inboxHead]
}

//repro:hotpath
func (ep *Endpoint) popInbox() *message {
	msg := ep.inbox[ep.inboxHead]
	ep.inbox[ep.inboxHead] = nil
	ep.inboxHead++
	if ep.inboxHead == len(ep.inbox) {
		ep.inbox = ep.inbox[:0]
		ep.inboxHead = 0
	}
	return msg
}

// Poll processes every message that has arrived by the processor's current
// time, charging o_recv (plus added overhead) per message and running its
// handler. Poll is a scheduler checkpoint.
//
//repro:hotpath
func (ep *Endpoint) Poll() {
	if ep.inHandler {
		panic("am: Poll called from a message handler")
	}
	ep.proc.Checkpoint()
	for {
		msg := ep.peekInbox()
		if msg == nil || msg.arrival > ep.proc.Clock() {
			return
		}
		ep.popInbox()
		ep.process(msg)
		ep.proc.Checkpoint()
	}
}

// process consumes one arrived message on the host. It is the record's
// final stage: once the handler and the instrumentation have run, the
// record is recycled — unless the reliability layer or a lossy fault
// injector may still hold references to it (see pool.go).
//
//repro:hotpath
func (ep *Endpoint) process(msg *message) {
	from := ep.proc.Clock()
	o := ep.params().EffORecv()
	ep.proc.Advance(o)
	if h := ep.m.hooks; h != nil {
		h.RecvOverhead(ep.ID(), from, from+o)
	}
	tok := &ep.tok
	*tok = Token{Src: msg.src, Class: msg.class, IsReply: msg.kind == kindReply, dst: msg.dst}
	ep.inHandler = true
	switch msg.kind {
	case kindRequest:
		msg.handler(ep, tok, msg.args)
		if !tok.replied {
			// The handler sent no reply; the firmware returns the window
			// credit on its own.
			ep.m.returnCredit(msg.src, msg.dst, ep.proc.Clock())
		}
	case kindReply:
		// The window credit was already freed at arrival by the NIC.
		msg.handler(ep, tok, msg.args)
	case kindBulk:
		msg.bulkH(ep, tok, msg.args, msg.data)
		if !tok.replied {
			ep.m.returnCredit(msg.src, msg.dst, ep.proc.Clock())
		}
	case kindBulkReply:
		// The window credit was already freed at arrival by the NIC.
		msg.bulkH(ep, tok, msg.args, msg.data)
	default:
		panic("am: unknown message kind")
	}
	ep.inHandler = false
	if h := ep.m.hooks; h != nil {
		bulk := msg.kind == kindBulk || msg.kind == kindBulkReply
		h.MessageHandled(msg.src, msg.dst, msg.class, bulk, ep.proc.Clock())
	}
	if ep.m.pooling {
		ep.m.putMsg(msg)
	}
}

// TotalOutstanding reports the number of un-acked requests across all
// destinations; zero means every store this processor issued has been
// applied at its destination. O(1): the window counts carry their total.
func (ep *Endpoint) TotalOutstanding() int {
	return int(ep.outstanding.total)
}

// pollOne processes at most one due message, reporting whether it did.
//
//repro:hotpath
func (ep *Endpoint) pollOne() bool {
	msg := ep.peekInbox()
	if msg == nil || msg.arrival > ep.proc.Clock() {
		return false
	}
	ep.popInbox()
	ep.process(msg)
	return true
}

// WaitUntil spin-polls the network until cond holds. This is how a blocked
// processor behaves on the real machine: while waiting it keeps servicing
// incoming messages (paying o_recv for each), re-checking the condition
// between handler invocations — one message at a time, so a saturated
// inbox cannot postpone a condition that is already true. The reason
// string appears in deadlock diagnostics. The wait is reported to the
// hooks as WaitData; layers that know better use WaitUntilFor.
func (ep *Endpoint) WaitUntil(cond func() bool, reason string) {
	ep.WaitUntilFor(WaitData, cond, reason)
}

// WaitUntilFor is WaitUntil with an explicit wait classification for the
// instrumentation hooks (the splitc layer tags its reads, store-syncs,
// bulk gets, barriers, and lock round trips).
func (ep *Endpoint) WaitUntilFor(kind WaitKind, cond func() bool, reason string) {
	if ep.inHandler {
		panic("am: WaitUntil called from a message handler")
	}
	h := ep.m.hooks
	if h != nil {
		h.WaitBegin(ep.ID(), kind, ep.proc.Clock())
	}
	for {
		ep.proc.Checkpoint()
		if cond() {
			break
		}
		if ep.pollOne() {
			continue
		}
		if next := ep.peekInbox(); next != nil {
			// Something is already in flight to us; spin forward to it.
			ep.proc.AdvanceTo(next.arrival)
			continue
		}
		ep.pw.set(waitModeCond, cond, nil, 0, 0, 0, reason)
		done := ep.proc.ParkPollable(&ep.pw, reason)
		ep.pw.set(waitModeWindow, nil, nil, 0, 0, 0, "")
		if done {
			// The engine drove the wait to completion inline: cond held
			// at the instant the CPU was handed back, with all events due
			// by then already executed. Leave without re-testing.
			break
		}
	}
	if h != nil {
		h.WaitEnd(ep.ID(), kind, ep.proc.Clock())
	}
}

// PendingArrivals reports how many delivered-but-unpolled messages wait in
// the inbox (diagnostics and tests).
func (ep *Endpoint) PendingArrivals() int { return len(ep.inbox) - ep.inboxHead }

// Outstanding reports the in-flight request count toward dst (tests).
func (ep *Endpoint) Outstanding(dst int) int { return ep.outstanding.get(dst) }
