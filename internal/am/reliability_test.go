package am

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logp"
	"repro/internal/sim"
)

// testInjector is a minimal FaultInjector for protocol tests (the real
// rule engine lives in internal/fault, which sits above this package).
// The callbacks see the per-run transmission ordinal (1-based).
type testInjector struct {
	drop func(w WireMsg, n int64) bool
	dup  func(w WireMsg, n int64) bool
	seen int64
}

func (ti *testInjector) OnWire(w WireMsg, inject sim.Time) FaultAction {
	ti.seen++
	var act FaultAction
	if ti.drop != nil && ti.drop(w, ti.seen) {
		act.Drop = true
	}
	if ti.dup != nil && ti.dup(w, ti.seen) {
		act.Duplicate = true
	}
	return act
}

func (ti *testInjector) ChargeExtra(proc int, from, d sim.Time) sim.Time { return 0 }
func (ti *testInjector) Lossy() bool                                     { return true }

// runRelPair runs body0/body1 on a two-processor machine with the
// reliability layer enabled and an optional injector attached.
func runRelPair(t *testing.T, params logp.Params, cfg Reliability, inj FaultInjector, body0, body1 func(*Endpoint)) (*Machine, error) {
	t.Helper()
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, params)
	m.SetReliability(cfg)
	if inj != nil {
		m.SetFaults(inj)
	}
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) { body0(m.Endpoint(0)) },
		func(p *sim.Proc) { body1(m.Endpoint(1)) },
	})
	return m, err
}

// TestReliableLosslessTimingUnchanged: on a perfect wire the protocol
// must not retransmit and must not perturb message timing — sequencing
// and acks are NIC bookkeeping, invisible to the host.
func TestReliableLosslessTimingUnchanged(t *testing.T) {
	params := logp.NOW()
	workload := func(handled *int) (func(*Endpoint), func(*Endpoint)) {
		const n = 30
		return func(ep *Endpoint) {
				for i := 0; i < n; i++ {
					ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) { *handled++ }, Args{})
					if i%5 == 0 {
						ep.Compute(sim.FromMicros(3))
					}
				}
				ep.WaitUntil(func() bool { return *handled == n }, "drain")
			}, func(ep *Endpoint) {
				ep.WaitUntil(func() bool { return *handled == n }, "sink")
			}
	}
	var hPlain int
	plain := runPair(t, params, func(ep *Endpoint) {
		b0, _ := workload(&hPlain)
		b0(ep)
	}, func(ep *Endpoint) {
		_, b1 := workload(&hPlain)
		b1(ep)
	})
	var hRel int
	b0, b1 := workload(&hRel)
	rel, err := runRelPair(t, params, Reliability{Enabled: true}, nil, b0, b1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rel.eng.MaxClock(), plain.eng.MaxClock(); got != want {
		t.Errorf("reliable lossless run ended at %v, plain at %v", got.Micros(), want.Micros())
	}
	if n := rel.Stats().Retransmits; n != 0 {
		t.Errorf("lossless wire retransmitted %d times", n)
	}
	if n := rel.Stats().DupsDiscarded; n != 0 {
		t.Errorf("lossless wire discarded %d duplicates", n)
	}
}

// TestRetransmitDoesNotDoubleConsumeCredit: a dropped request is
// retransmitted by the NIC, and the retransmission must reuse the credit
// the original consumed — with a window of 2 and every third first
// transmission dropped, a double consume would wedge the sender
// (deadlock) or overfill the window.
func TestRetransmitDoesNotDoubleConsumeCredit(t *testing.T) {
	params := logp.NOW()
	params.Window = 2
	handled := 0
	const n = 24
	inj := &testInjector{drop: func(w WireMsg, _ int64) bool {
		return !w.Retransmit && !w.Reply && w.Seq%3 == 0
	}}
	m, err := runRelPair(t, params, Reliability{Enabled: true}, inj,
		func(ep *Endpoint) {
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) { handled++ }, Args{})
			}
			ep.WaitUntil(func() bool { return handled == n }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return handled == n }, "sink")
		})
	if err != nil {
		t.Fatal(err)
	}
	if handled != n {
		t.Errorf("handled %d of %d requests", handled, n)
	}
	if m.Stats().WireDrops == 0 {
		t.Fatal("injector dropped nothing; predicate dead")
	}
	if got, want := m.Stats().Retransmits, m.Stats().WireDrops; got < want {
		t.Errorf("retransmits %d < drops %d: some loss never repaired", got, want)
	}
}

// TestDedupDoesNotDoubleRunHandler: with every transmission duplicated
// on the wire, receiver-side dedup must discard the copies at the NIC —
// each handler runs exactly once.
func TestDedupDoesNotDoubleRunHandler(t *testing.T) {
	params := logp.NOW()
	handled := 0
	replies := 0
	const n = 16
	inj := &testInjector{dup: func(WireMsg, int64) bool { return true }}
	m, err := runRelPair(t, params, Reliability{Enabled: true}, inj,
		func(ep *Endpoint) {
			for i := 0; i < n; i++ {
				ep.Request(1, ClassRead, func(ep *Endpoint, tok *Token, a Args) {
					handled++
					ep.Reply(tok, func(*Endpoint, *Token, Args) { replies++ }, Args{})
				}, Args{})
			}
			ep.WaitUntil(func() bool { return replies == n }, "drain")
		},
		func(ep *Endpoint) {
			// Wait on handled (which this processor's own polls advance);
			// replies land back on proc 0 and wouldn't wake this one.
			ep.WaitUntil(func() bool { return handled == n }, "sink")
		})
	if err != nil {
		t.Fatal(err)
	}
	if handled != n || replies != n {
		t.Errorf("handled/replied %d/%d, want %d/%d", handled, replies, n, n)
	}
	if m.Stats().DupsDiscarded == 0 {
		t.Error("no duplicates discarded despite duplicating every transmission")
	}
}

// TestReliabilityFIFOUnderDrops: drops reorder raw arrivals (the
// retransmission lands after its successors), but the resequencer must
// restore per-stream send order before the host sees anything.
func TestReliabilityFIFOUnderDrops(t *testing.T) {
	params := logp.NOW()
	var order []uint64
	const n = 40
	inj := &testInjector{drop: func(w WireMsg, _ int64) bool {
		return !w.Retransmit && !w.Reply && w.Seq%4 == 1 && w.Seq > 1
	}}
	m, err := runRelPair(t, params, Reliability{Enabled: true}, inj,
		func(ep *Endpoint) {
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) {
					order = append(order, a[0])
				}, Args{uint64(i)})
			}
			ep.WaitUntil(func() bool { return len(order) == n }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return len(order) == n }, "sink")
		})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().WireDrops == 0 {
		t.Fatal("injector dropped nothing; predicate dead")
	}
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("handler order broke FIFO at %d: got seq %d (full order %v)", i, v, order)
		}
	}
}

// TestDeliveryErrorAfterRetryCap: a wire that eats everything must abort
// the run with a typed *DeliveryError once the retry budget is spent.
func TestDeliveryErrorAfterRetryCap(t *testing.T) {
	params := logp.NOW()
	inj := &testInjector{drop: func(WireMsg, int64) bool { return true }}
	handled := false
	_, err := runRelPair(t, params,
		Reliability{Enabled: true, MaxRetries: 3}, inj,
		func(ep *Endpoint) {
			ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) { handled = true }, Args{})
			ep.WaitUntil(func() bool { return handled }, "never")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return handled }, "never")
		})
	if err == nil {
		t.Fatal("run on a fully lossy wire succeeded")
	}
	var de *DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a *DeliveryError", err)
	}
	if de.Src != 0 || de.Dst != 1 || de.Seq != 1 {
		t.Errorf("DeliveryError identifies %d→%d seq %d, want 0→1 seq 1", de.Src, de.Dst, de.Seq)
	}
	if de.Attempts != 4 {
		t.Errorf("Attempts = %d, want 4 (1 original + 3 retries)", de.Attempts)
	}
	if handled {
		t.Error("handler ran despite every transmission dropping")
	}
}

// TestReliabilityConservationProperty: under random lossy traffic every
// request is handled exactly once — the reliable extension of the
// lossless conservation property, covering dedup (no double run) and
// credit recycling (no wedge) at once.
func TestReliabilityConservationProperty(t *testing.T) {
	f := func(seed int64, dropPct uint8) bool {
		prob := float64(dropPct%30) / 100 // 0–29% per-transmission loss
		rng := rand.New(rand.NewSource(seed))
		inj := &testInjector{drop: func(w WireMsg, _ int64) bool {
			return rng.Float64() < prob
		}}
		eng := sim.New(sim.Config{Procs: 3, Seed: seed})
		m := MustMachine(eng, logp.NOW())
		m.SetReliability(Reliability{Enabled: true})
		m.SetFaults(inj)
		sent := 0
		handled := 0
		doneFrom := make([]int, 3)
		err := eng.Run(func(p *sim.Proc) {
			ep := m.Endpoint(p.ID())
			r := p.Rand()
			n := r.Intn(25) + 1
			for i := 0; i < n; i++ {
				dst := (p.ID() + 1 + r.Intn(2)) % 3
				sent++
				ep.Request(dst, ClassWrite, func(*Endpoint, *Token, Args) { handled++ }, Args{})
			}
			me := p.ID()
			for d := 0; d < 3; d++ {
				if d != me {
					ep.Request(d, ClassSync, func(ep *Endpoint, tok *Token, a Args) {
						doneFrom[ep.ID()]++
					}, Args{})
				}
			}
			ep.WaitUntil(func() bool { return doneFrom[me] == 2 }, "peers")
		})
		return err == nil && handled == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
