package am

import "repro/internal/sim"

// WireMsg describes one physical wire transmission to the fault injector:
// retransmissions are consulted again, with Retransmit set, so drop
// probabilities apply per transmission, not per message.
type WireMsg struct {
	// Src and Dst are the sending and receiving processors.
	Src, Dst int
	// Class is the sender's traffic classification.
	Class Class
	// Bulk marks bulk fragments (Store/ReplyBulk).
	Bulk bool
	// Reply marks replies (short or bulk).
	Reply bool
	// Retransmit marks reliability-layer retransmissions.
	Retransmit bool
	// Seq is the reliability-layer sequence number (0 when the layer is
	// off).
	Seq int64
}

// FaultAction is the injector's verdict for one physical transmission.
// Drop wins over Duplicate; ExtraLatency applies to every surviving copy.
type FaultAction struct {
	// Drop loses the transmission on the wire.
	Drop bool
	// Duplicate delivers the transmission twice.
	Duplicate bool
	// ExtraLatency is added to the transmission's flight time.
	ExtraLatency sim.Time
}

// FaultInjector is the seam a fault model (internal/fault) plugs into the
// machine. All methods run synchronously on the simulating goroutine in
// deterministic order, so a seeded injector yields identical fault
// schedules across runs.
type FaultInjector interface {
	// OnWire is consulted once per physical transmission, at its
	// injection instant, and returns what the wire does to it.
	OnWire(w WireMsg, inject sim.Time) FaultAction
	// ChargeExtra is consulted after every explicit processor charge
	// [from, from+d) and returns fault-injected time to append — the
	// mechanism behind slowdown windows and one-off processor delays.
	ChargeExtra(proc int, from, d sim.Time) sim.Time
	// Lossy reports whether the plan can drop or duplicate transmissions.
	// A lossy wire needs the reliability layer: without it a dropped
	// credit stalls the sender forever and a duplicate runs its handler
	// twice. Layers above enforce this pairing.
	Lossy() bool
}

// SetFaults attaches a fault injector (nil detaches): OnWire intercepts
// every transmission, and each processor's charge-stretch hook is wired
// to ChargeExtra. Attach before the run starts.
func (m *Machine) SetFaults(inj FaultInjector) {
	m.faults = inj
	// A lossy injector can schedule duplicate arrivals of one message
	// record, so delivery-time recycling must be off (see pool.go).
	m.updatePooling()
	for i, ep := range m.eps {
		if inj == nil {
			ep.proc.SetStretch(nil)
			continue
		}
		id := i
		ep.proc.SetStretch(func(from, d sim.Time) sim.Time {
			return inj.ChargeExtra(id, from, d)
		})
	}
}

// Faults returns the attached fault injector (nil when detached).
func (m *Machine) Faults() FaultInjector { return m.faults }
