package am

import "repro/internal/sim"

// WaitKind classifies why an endpoint is blocked inside WaitUntil — the
// semantic label a profiler needs to charge the idle time to the right
// account (window stall vs. latency wait vs. barrier wait, …).
type WaitKind uint8

const (
	// WaitData is the generic kind: blocked on remote data or an
	// application-level condition (the default for Endpoint.WaitUntil).
	WaitData WaitKind = iota
	// WaitWindow is a capacity stall: the outstanding-request window to
	// some destination is full.
	WaitWindow
	// WaitRead is a blocking remote read awaiting its reply.
	WaitRead
	// WaitStore is a store-sync: waiting for issued requests to be acked.
	WaitStore
	// WaitBulk is a bulk get awaiting its DMA reply fragments.
	WaitBulk
	// WaitBarrier is a barrier or collective notification wait.
	WaitBarrier
	// WaitLock is a lock, test-and-set, or atomic-RMW round trip.
	WaitLock
)

func (k WaitKind) String() string {
	switch k {
	case WaitData:
		return "data"
	case WaitWindow:
		return "window"
	case WaitRead:
		return "read"
	case WaitStore:
		return "store"
	case WaitBulk:
		return "bulk"
	case WaitBarrier:
		return "barrier"
	case WaitLock:
		return "lock"
	}
	return "wait?"
}

// Hooks is the machine's instrumentation surface: every communication
// event and every virtual-time charge the Active Message layer makes is
// reported through it. Attach with Machine.SetHooks (or, one level up,
// splitc.World.Attach). All methods run synchronously on the simulating
// goroutine, must not call back into the endpoint, and must not alter
// virtual time — hooks observe a run, they never change it.
//
// Embed NopHooks to implement only the methods you care about.
type Hooks interface {
	// MessageSent fires when a host hands a message to its NIC.
	MessageSent(src, dst int, class Class, bulk bool, at sim.Time)
	// MessageHandled fires after a handler ran at the receiver.
	MessageHandled(src, dst int, class Class, bulk bool, at sim.Time)
	// SendOverhead fires after the o_send charge for one message:
	// processor proc was busy writing the message to the NIC on [from, to).
	SendOverhead(proc int, from, to sim.Time)
	// RecvOverhead fires after the o_recv charge for one message.
	RecvOverhead(proc int, from, to sim.Time)
	// ComputeCharged fires after an explicit local-computation charge
	// (Endpoint.Compute), with the CPU factor already applied.
	ComputeCharged(proc int, from, to sim.Time)
	// TxReserved fires when a message reserves the NIC transmit context:
	// the context is gap-limited on [inject, gapFree) and, for bulk
	// fragments, DMA-limited on [gapFree, busyFree). For short messages
	// gapFree == busyFree.
	TxReserved(proc int, inject, gapFree, busyFree sim.Time)
	// TxRetransmit fires when the reliability layer re-injects an unacked
	// message: the NIC transmit context is occupied exactly as for
	// TxReserved, but no host overhead is charged (the retransmission is
	// firmware-initiated). Profilers charge the occupied span to a
	// retransmit account rather than the ordinary gap/bulk accounts.
	TxRetransmit(proc int, inject, gapFree, busyFree sim.Time)
	// WaitBegin fires when the processor enters a spin-polling wait.
	WaitBegin(proc int, kind WaitKind, at sim.Time)
	// WaitEnd fires when the awaited condition held and the wait returned.
	WaitEnd(proc int, kind WaitKind, at sim.Time)
}

// ClockHooks is the optional extension for hooks that must see every raw
// clock advance (idle spins and wake jumps included, not just charges).
// When the attached Hooks value also implements ClockHooks, SetHooks
// wires it to every processor's sim clock hook; the observed spans tile
// each processor's whole timeline, the invariant behind internal/prof's
// conservation proof.
type ClockHooks interface {
	ClockAdvanced(proc int, kind sim.ClockKind, from, to sim.Time)
}

// WireHooks is the optional extension for hooks that must follow message
// identity through the network stages the base Hooks interface only
// reports as per-processor charges: injection into the wire, delivery at
// the destination NIC, and the implicit flow-control credit a request
// returns to its sender. internal/depgraph uses it to stitch the
// per-processor event streams into a cross-processor dependency graph.
// When the attached Hooks value also implements WireHooks, SetHooks
// caches the downcast once so the per-message calls stay allocation-free.
type WireHooks interface {
	// MessageLaunched fires when a message leaves the transmit context:
	// it occupies the wire on [inject, arrival). reply marks responses
	// (including bulk reply fragments), which bypass the request window.
	MessageLaunched(src, dst int, reply, bulk bool, inject, arrival sim.Time)
	// MessageDelivered fires when the message lands in the destination
	// inbox, before any receive overhead is charged.
	MessageDelivered(src, dst int, reply bool, at sim.Time)
	// CreditIssued fires when a handled-but-unreplied request frees its
	// sender-side window slot: the implicit credit leaves the responder at
	// time at and reaches the requester one wire latency later.
	CreditIssued(requester, responder int, at sim.Time)
}

// NopHooks is the embeddable no-op base: embed it and override only the
// events you need, so adding a Hooks method is not a breaking change for
// downstream instrumentation.
type NopHooks struct{}

var _ Hooks = NopHooks{}

// MessageSent implements Hooks as a no-op.
func (NopHooks) MessageSent(src, dst int, class Class, bulk bool, at sim.Time) {}

// MessageHandled implements Hooks as a no-op.
func (NopHooks) MessageHandled(src, dst int, class Class, bulk bool, at sim.Time) {}

// SendOverhead implements Hooks as a no-op.
func (NopHooks) SendOverhead(proc int, from, to sim.Time) {}

// RecvOverhead implements Hooks as a no-op.
func (NopHooks) RecvOverhead(proc int, from, to sim.Time) {}

// ComputeCharged implements Hooks as a no-op.
func (NopHooks) ComputeCharged(proc int, from, to sim.Time) {}

// TxReserved implements Hooks as a no-op.
func (NopHooks) TxReserved(proc int, inject, gapFree, busyFree sim.Time) {}

// TxRetransmit implements Hooks as a no-op.
func (NopHooks) TxRetransmit(proc int, inject, gapFree, busyFree sim.Time) {}

// WaitBegin implements Hooks as a no-op.
func (NopHooks) WaitBegin(proc int, kind WaitKind, at sim.Time) {}

// WaitEnd implements Hooks as a no-op.
func (NopHooks) WaitEnd(proc int, kind WaitKind, at sim.Time) {}

// MultiHooks fans every event out to each element in order, so a tracer
// and a profiler can observe the same run through one attach point.
type MultiHooks []Hooks

var (
	_ Hooks      = MultiHooks(nil)
	_ ClockHooks = MultiHooks(nil)
)

// MessageSent implements Hooks.
func (m MultiHooks) MessageSent(src, dst int, class Class, bulk bool, at sim.Time) {
	for _, h := range m {
		h.MessageSent(src, dst, class, bulk, at)
	}
}

// MessageHandled implements Hooks.
func (m MultiHooks) MessageHandled(src, dst int, class Class, bulk bool, at sim.Time) {
	for _, h := range m {
		h.MessageHandled(src, dst, class, bulk, at)
	}
}

// SendOverhead implements Hooks.
func (m MultiHooks) SendOverhead(proc int, from, to sim.Time) {
	for _, h := range m {
		h.SendOverhead(proc, from, to)
	}
}

// RecvOverhead implements Hooks.
func (m MultiHooks) RecvOverhead(proc int, from, to sim.Time) {
	for _, h := range m {
		h.RecvOverhead(proc, from, to)
	}
}

// ComputeCharged implements Hooks.
func (m MultiHooks) ComputeCharged(proc int, from, to sim.Time) {
	for _, h := range m {
		h.ComputeCharged(proc, from, to)
	}
}

// TxReserved implements Hooks.
func (m MultiHooks) TxReserved(proc int, inject, gapFree, busyFree sim.Time) {
	for _, h := range m {
		h.TxReserved(proc, inject, gapFree, busyFree)
	}
}

// TxRetransmit implements Hooks.
func (m MultiHooks) TxRetransmit(proc int, inject, gapFree, busyFree sim.Time) {
	for _, h := range m {
		h.TxRetransmit(proc, inject, gapFree, busyFree)
	}
}

// WaitBegin implements Hooks.
func (m MultiHooks) WaitBegin(proc int, kind WaitKind, at sim.Time) {
	for _, h := range m {
		h.WaitBegin(proc, kind, at)
	}
}

// WaitEnd implements Hooks.
func (m MultiHooks) WaitEnd(proc int, kind WaitKind, at sim.Time) {
	for _, h := range m {
		h.WaitEnd(proc, kind, at)
	}
}

// ClockAdvanced implements ClockHooks, forwarding to the elements that
// opted into raw clock events.
func (m MultiHooks) ClockAdvanced(proc int, kind sim.ClockKind, from, to sim.Time) {
	for _, h := range m {
		if ch, ok := h.(ClockHooks); ok {
			ch.ClockAdvanced(proc, kind, from, to)
		}
	}
}

var _ WireHooks = MultiHooks(nil)

// MessageLaunched implements WireHooks, forwarding to the elements that
// opted into wire events.
func (m MultiHooks) MessageLaunched(src, dst int, reply, bulk bool, inject, arrival sim.Time) {
	for _, h := range m {
		if wh, ok := h.(WireHooks); ok {
			wh.MessageLaunched(src, dst, reply, bulk, inject, arrival)
		}
	}
}

// MessageDelivered implements WireHooks, forwarding to the elements that
// opted into wire events.
func (m MultiHooks) MessageDelivered(src, dst int, reply bool, at sim.Time) {
	for _, h := range m {
		if wh, ok := h.(WireHooks); ok {
			wh.MessageDelivered(src, dst, reply, at)
		}
	}
}

// CreditIssued implements WireHooks, forwarding to the elements that
// opted into wire events.
func (m MultiHooks) CreditIssued(requester, responder int, at sim.Time) {
	for _, h := range m {
		if wh, ok := h.(WireHooks); ok {
			wh.CreditIssued(requester, responder, at)
		}
	}
}
