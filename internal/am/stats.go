package am

import "repro/internal/sim"

// Stats accumulates the communication characterization the paper reports in
// Table 4 and Figure 4. Messages are counted at send time, per sending
// processor: requests, explicit replies, and bulk fragments all count;
// firmware-level acks do not (they never touch a host processor). This is
// the paper's convention — EM3D(read)'s per-processor message count is the
// sum of the read requests it sends and the read replies it sends.
type Stats struct {
	p int

	// Matrix[i][j] counts messages sent from processor i to processor j
	// (Figure 4's communication balance plot).
	Matrix [][]int64

	// Per-proc message counts (requests + replies + bulk fragments).
	SentPerProc []int64

	// Bulk traffic.
	BulkPerProc  []int64
	BulkBytesPer []int64

	// Read traffic (ClassRead requests and replies).
	ReadPerProc []int64

	// Synchronization: barrier crossings, counted once per barrier episode
	// by the synchronization layer via CountBarrier.
	Barriers int64

	// SendIntervals histograms the spacing between one processor's
	// consecutive sends (burstiness instrumentation, §5.2).
	SendIntervals []Histogram
	lastSend      []int64 // virtual ns of the previous send; -1 = none

	// Fault-injection and reliability-protocol counters, machine-wide.
	// These count NIC-level events, so they are deliberately excluded
	// from the paper's host-message accounting above: a retransmission or
	// a wire duplicate never touches a host processor.
	Retransmits   int64 // reliability-layer re-injections
	WireDrops     int64 // transmissions lost by the fault injector
	WireDups      int64 // transmissions duplicated by the fault injector
	DupsDiscarded int64 // arrivals discarded by receiver-side dedup
}

// statsDetailMaxP bounds the per-pair and per-interval instrumentation:
// the P×P balance matrix and the ~400-byte interval histogram per
// processor only exist on machines small enough to render them (every
// paper figure needs P ≤ 64). Above the bound they stay nil and the
// scalar per-processor counters carry the characterization — a
// million-processor machine cannot afford a 10¹²-cell matrix.
const statsDetailMaxP = 4096

func newStats(p int) *Stats {
	s := &Stats{p: p}
	s.SentPerProc = make([]int64, p)
	s.BulkPerProc = make([]int64, p)
	s.BulkBytesPer = make([]int64, p)
	s.ReadPerProc = make([]int64, p)
	if p > statsDetailMaxP {
		return s
	}
	s.Matrix = make([][]int64, p)
	for i := range s.Matrix {
		s.Matrix[i] = make([]int64, p)
	}
	s.SendIntervals = make([]Histogram, p)
	s.lastSend = make([]int64, p)
	for i := range s.lastSend {
		s.lastSend[i] = -1
	}
	return s
}

func (s *Stats) countSend(src, dst int, class Class, bulk bool, bytes int) {
	if s.Matrix != nil {
		s.Matrix[src][dst]++
	}
	s.SentPerProc[src]++
	if bulk {
		s.BulkPerProc[src]++
		s.BulkBytesPer[src] += int64(bytes)
	}
	if class == ClassRead {
		s.ReadPerProc[src]++
	}
}

// countSendAt additionally records the send instant for burstiness.
func (s *Stats) countSendAt(src, dst int, class Class, bulk bool, bytes int, now sim.Time) {
	s.countSend(src, dst, class, bulk, bytes)
	s.recordSendInterval(src, now)
}

// CountBarrier records one completed barrier episode. The synchronization
// layer calls it from exactly one processor per barrier.
func (s *Stats) CountBarrier() { s.Barriers++ }

// Reset zeroes all counters (for excluding warm-up phases).
func (s *Stats) Reset() {
	for i := range s.SentPerProc {
		s.SentPerProc[i] = 0
		s.BulkPerProc[i] = 0
		s.BulkBytesPer[i] = 0
		s.ReadPerProc[i] = 0
	}
	for i := range s.Matrix {
		for j := range s.Matrix[i] {
			s.Matrix[i][j] = 0
		}
		s.SendIntervals[i] = Histogram{}
		s.lastSend[i] = -1
	}
	s.Barriers = 0
	s.Retransmits = 0
	s.WireDrops = 0
	s.WireDups = 0
	s.DupsDiscarded = 0
}

// P returns the processor count the stats were sized for.
func (s *Stats) P() int { return s.p }

// TotalSent sums messages over all processors.
func (s *Stats) TotalSent() int64 {
	var t int64
	for _, v := range s.SentPerProc {
		t += v
	}
	return t
}

// AvgPerProc is the mean message count per processor.
func (s *Stats) AvgPerProc() float64 {
	return float64(s.TotalSent()) / float64(s.p)
}

// MaxPerProc is the largest per-processor message count and its processor,
// the paper's communication-imbalance indicator and the m of its models.
func (s *Stats) MaxPerProc() (int64, int) {
	var mx int64
	idx := 0
	for i, v := range s.SentPerProc {
		if v > mx {
			mx, idx = v, i
		}
	}
	return mx, idx
}

// TotalBulk sums bulk fragment counts.
func (s *Stats) TotalBulk() int64 {
	var t int64
	for _, v := range s.BulkPerProc {
		t += v
	}
	return t
}

// TotalBulkBytes sums bulk payload bytes.
func (s *Stats) TotalBulkBytes() int64 {
	var t int64
	for _, v := range s.BulkBytesPer {
		t += v
	}
	return t
}

// TotalReads sums read-classified messages.
func (s *Stats) TotalReads() int64 {
	var t int64
	for _, v := range s.ReadPerProc {
		t += v
	}
	return t
}

// PercentBulk is the fraction of messages using the bulk mechanism, in
// percent (Table 4 column "Percent Bulk Msg.").
func (s *Stats) PercentBulk() float64 {
	total := s.TotalSent()
	if total == 0 {
		return 0
	}
	return 100 * float64(s.TotalBulk()) / float64(total)
}

// PercentReads is the fraction of messages that are read requests or
// replies, in percent (Table 4 column "Percent Reads").
func (s *Stats) PercentReads() float64 {
	total := s.TotalSent()
	if total == 0 {
		return 0
	}
	return 100 * float64(s.TotalReads()) / float64(total)
}

// Summary derives the Table 4 row for a run that took `elapsed` of virtual
// time.
type Summary struct {
	AvgMsgsPerProc    float64
	MaxMsgsPerProc    int64
	MsgsPerProcPerMs  float64
	MsgIntervalUs     float64 // average gap between one processor's sends
	BarrierIntervalMs float64
	PercentBulk       float64
	PercentReads      float64
	BulkKBsPerProc    float64 // bulk bandwidth per processor, KB/s
	SmallKBsPerProc   float64 // short-message bandwidth per processor, KB/s
}

// Summarize computes the paper's Table 4 metrics for a run of the given
// virtual duration.
func (s *Stats) Summarize(elapsed sim.Time) Summary {
	var sum Summary
	sum.AvgMsgsPerProc = s.AvgPerProc()
	sum.MaxMsgsPerProc, _ = s.MaxPerProc()
	ms := elapsed.Millis()
	if ms > 0 {
		sum.MsgsPerProcPerMs = sum.AvgMsgsPerProc / ms
		if s.Barriers > 0 {
			sum.BarrierIntervalMs = ms / float64(s.Barriers)
		}
	}
	if sum.AvgMsgsPerProc > 0 {
		sum.MsgIntervalUs = elapsed.Micros() / sum.AvgMsgsPerProc
	}
	sum.PercentBulk = s.PercentBulk()
	sum.PercentReads = s.PercentReads()
	sec := elapsed.Seconds()
	if sec > 0 {
		sum.BulkKBsPerProc = float64(s.TotalBulkBytes()) / float64(s.p) / sec / 1024
		smallMsgs := s.TotalSent() - s.TotalBulk()
		sum.SmallKBsPerProc = float64(smallMsgs) * SmallWireBytes / float64(s.p) / sec / 1024
	}
	return sum
}
