package am

import (
	"math"
	"strings"
	"testing"

	"repro/internal/logp"
	"repro/internal/sim"
)

// runPair runs body0 on proc 0 and body1 on proc 1 over a fresh machine.
func runPair(t *testing.T, params logp.Params, body0, body1 func(*Endpoint)) *Machine {
	t.Helper()
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, params)
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) { body0(m.Endpoint(0)) },
		func(p *sim.Proc) { body1(m.Endpoint(1)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTripTime(t *testing.T) {
	// A blocking request/reply pair must take 2L + 2o_send + 2o_recv:
	// on the NOW baseline, 2·5 + 2·1.8 + 2·4 = 21.6 µs — the paper's
	// Figure 3 reports a 21 µs round trip.
	params := logp.NOW()
	var rtt sim.Time
	replied := false
	served := 0
	runPair(t, params,
		func(ep *Endpoint) {
			start := ep.Now()
			ep.Request(1, ClassRead, func(ep *Endpoint, tok *Token, a Args) {
				served++
				ep.Reply(tok, func(ep *Endpoint, tok *Token, a Args) {
					replied = true
				}, Args{})
			}, Args{})
			ep.WaitUntil(func() bool { return replied }, "await reply")
			rtt = ep.Now() - start
		},
		func(ep *Endpoint) {
			// The request handler runs on this processor during its poll.
			ep.WaitUntil(func() bool { return served == 1 }, "server")
		})
	want := 2*params.EffLatency() + 2*params.EffOSend() + 2*params.EffORecv()
	if rtt != want {
		t.Errorf("RTT = %v, want %v (= 2L+2os+2or)", rtt.Micros(), want.Micros())
	}
	if math.Abs(rtt.Micros()-21.6) > 0.001 {
		t.Errorf("NOW RTT = %v µs, want 21.6", rtt.Micros())
	}
}

func TestLatencyDeltaAddsTwicePerRoundTrip(t *testing.T) {
	params := logp.NOW()
	params.DeltaL = sim.FromMicros(25)
	var rtt sim.Time
	replied := false
	served := 0
	runPair(t, params,
		func(ep *Endpoint) {
			start := ep.Now()
			ep.Request(1, ClassRead, func(ep *Endpoint, tok *Token, a Args) {
				served++
				ep.Reply(tok, func(ep *Endpoint, tok *Token, a Args) { replied = true }, Args{})
			}, Args{})
			ep.WaitUntil(func() bool { return replied }, "await reply")
			rtt = ep.Now() - start
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return served == 1 }, "server")
		})
	if got, want := rtt.Micros(), 21.6+50; math.Abs(got-want) > 0.001 {
		t.Errorf("RTT with ΔL=25 = %v µs, want %v", got, want)
	}
}

func TestOverheadDeltaChargedBothSides(t *testing.T) {
	params := logp.NOW()
	params.DeltaO = sim.FromMicros(50)
	var sendCost sim.Time
	got := false
	runPair(t, params,
		func(ep *Endpoint) {
			start := ep.Now()
			ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) { got = true }, Args{})
			sendCost = ep.Now() - start
			ep.WaitUntil(func() bool { return got }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return got }, "recv one")
		})
	if want := params.EffOSend(); sendCost != want {
		t.Errorf("send cost = %v µs, want o_send+Δo = %v", sendCost.Micros(), want.Micros())
	}
}

func TestGapSpacesInjections(t *testing.T) {
	// Proc 0 fires a burst of one-way requests; with o_send ≪ g the NIC
	// gap paces deliveries, so the last arrival is ≈ first + (n-1)·g.
	params := logp.NOW()
	params.DeltaG = sim.FromMicros(94.2) // g_eff = 100 µs
	const n = 5
	var arrivals []sim.Time
	runPair(t, params,
		func(ep *Endpoint) {
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) {
					arrivals = append(arrivals, ep.Now())
				}, Args{})
			}
			ep.WaitUntil(func() bool { return len(arrivals) == n }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return len(arrivals) == n }, "sink")
		})
	g := params.EffGap()
	for i := 1; i < n; i++ {
		delta := arrivals[i] - arrivals[i-1]
		// Each inter-arrival is the injection gap (receiver o_recv is only
		// 4 µs, far below g_eff=100, so arrivals dominate).
		if delta < g {
			t.Errorf("inter-arrival %d = %v µs < g = %v µs", i, delta.Micros(), g.Micros())
		}
		if delta > g+sim.FromMicros(10) {
			t.Errorf("inter-arrival %d = %v µs too large", i, delta.Micros())
		}
	}
}

func TestSenderDoesNotStallOnGap(t *testing.T) {
	// The host hands messages to the NIC at o_send each; the gap delays the
	// wire, not the processor (as long as the window is open).
	params := logp.NOW()
	params.DeltaG = sim.FromMicros(94.2)
	params.Window = 64
	var issueTime sim.Time
	seen := 0
	const n = 8
	runPair(t, params,
		func(ep *Endpoint) {
			start := ep.Now()
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) { seen++ }, Args{})
			}
			issueTime = ep.Now() - start
			ep.WaitUntil(func() bool { return seen == n }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return seen == n }, "sink")
		})
	if want := sim.Time(n) * params.EffOSend(); issueTime != want {
		t.Errorf("issue time for %d sends = %v µs, want %v µs (n·o_send)", n, issueTime.Micros(), want.Micros())
	}
}

func TestWindowStall(t *testing.T) {
	// With the default window of 8 and a huge latency, issuing the 9th
	// message must wait for a firmware ack: roughly a round trip.
	params := logp.NOW()
	params.DeltaL = sim.FromMicros(1000)
	const n = 9
	seen := 0
	var issueTime sim.Time
	runPair(t, params,
		func(ep *Endpoint) {
			start := ep.Now()
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) { seen++ }, Args{})
			}
			issueTime = ep.Now() - start
			ep.WaitUntil(func() bool { return seen == n }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return seen == n }, "sink")
		})
	rtt := 2 * params.EffLatency()
	if issueTime < rtt {
		t.Errorf("9 sends issued in %v µs; expected a window stall of at least 2L = %v µs",
			issueTime.Micros(), rtt.Micros())
	}
}

func TestWindowCapsInjectionRate(t *testing.T) {
	// Steady-state send interval with large L must approach RTT/W — the
	// capacity artifact behind Table 2's g rise at large L.
	params := logp.NOW()
	params.DeltaL = sim.FromMicros(100.5) // L = 105.5 µs
	const n = 120
	seen := 0
	var issueTime sim.Time
	runPair(t, params,
		func(ep *Endpoint) {
			start := ep.Now()
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) { seen++ }, Args{})
			}
			issueTime = ep.Now() - start
			ep.WaitUntil(func() bool { return seen == n }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return seen == n }, "sink")
		})
	perMsg := issueTime.Micros() / float64(n)
	// Paper Table 2 observes ≈27.7 µs effective g at L=105.5.
	if perMsg < 22 || perMsg > 33 {
		t.Errorf("steady-state interval at L=105.5 = %.1f µs, want ≈27.7 (RTT/W)", perMsg)
	}
}

func TestBulkTransferTiming(t *testing.T) {
	// A 4 KB store at 38 MB/s must arrive ≈ o_send + G·4096 + L after issue.
	params := logp.NOW()
	var arrived sim.Time
	var start sim.Time
	done := false
	runPair(t, params,
		func(ep *Endpoint) {
			start = ep.Now()
			data := make([]byte, 4096)
			ep.Store(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args, d []byte) {
				arrived = ep.Now()
				done = len(d) == 4096
			}, Args{}, data)
			ep.WaitUntil(func() bool { return done }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return done }, "sink")
		})
	want := params.EffOSend() + params.BulkTime(4096) + params.EffLatency() + params.EffORecv()
	if got := arrived - start; got != want {
		t.Errorf("bulk arrival after %v µs, want %v µs", got.Micros(), want.Micros())
	}
}

func TestBulkBandwidthCapSlowsBulkOnly(t *testing.T) {
	// Capping bulk bandwidth must slow Stores but leave short messages at
	// full speed.
	slow := logp.NOW()
	slow.BulkBandwidthMBs = 1
	gotShort := false
	var shortElapsed, bulkElapsed sim.Time
	bulkDone := false
	runPair(t, slow,
		func(ep *Endpoint) {
			s := ep.Now()
			ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) { gotShort = true }, Args{})
			ep.WaitUntil(func() bool { return gotShort }, "short")
			shortElapsed = ep.Now() - s
			s = ep.Now()
			ep.Store(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args, d []byte) { bulkDone = true }, Args{}, make([]byte, 4096))
			ep.WaitUntil(func() bool { return bulkDone }, "bulk")
			bulkElapsed = ep.Now() - s
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return bulkDone }, "sink")
		})
	if shortElapsed > sim.FromMicros(50) {
		t.Errorf("short message took %v µs under a bulk cap", shortElapsed.Micros())
	}
	// 4096 bytes at 1 MB/s ≈ 4096 µs.
	if bulkElapsed < sim.FromMicros(4000) {
		t.Errorf("bulk under 1 MB/s cap took only %v µs", bulkElapsed.Micros())
	}
}

func TestStoreLargeFragmentsAndOffsets(t *testing.T) {
	params := logp.NOW()
	payload := make([]byte, 10*1024) // 2.5 fragments
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	got := make([]byte, len(payload))
	var frags int
	var total int
	runPair(t, params,
		func(ep *Endpoint) {
			ep.StoreLarge(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args, d []byte) {
				off := int(a[3])
				copy(got[off:], d)
				frags++
				total += len(d)
			}, Args{}, payload)
			ep.WaitUntil(func() bool { return total == len(payload) }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return total == len(payload) }, "sink")
		})
	if frags != 3 {
		t.Errorf("fragments = %d, want 3", frags)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], payload[i])
		}
	}
}

func TestStoreTooLargePanics(t *testing.T) {
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, logp.NOW())
	err := eng.Run(func(p *sim.Proc) {
		if p.ID() == 0 {
			m.Endpoint(0).Store(1, ClassWrite, func(*Endpoint, *Token, Args, []byte) {}, Args{}, make([]byte, 5000))
		}
	})
	if err == nil || !strings.Contains(err.Error(), "StoreLarge") {
		t.Fatalf("expected fragment-size panic, got %v", err)
	}
}

func TestHandlerDisciplinePanics(t *testing.T) {
	cases := map[string]func(ep *Endpoint, tok *Token){
		"poll":    func(ep *Endpoint, tok *Token) { ep.Poll() },
		"request": func(ep *Endpoint, tok *Token) { ep.Request(0, ClassWrite, func(*Endpoint, *Token, Args) {}, Args{}) },
		"double-reply": func(ep *Endpoint, tok *Token) {
			h := func(*Endpoint, *Token, Args) {}
			ep.Reply(tok, h, Args{})
			ep.Reply(tok, h, Args{})
		},
	}
	for name, bad := range cases {
		eng := sim.New(sim.Config{Procs: 2})
		m := MustMachine(eng, logp.NOW())
		hit := false
		err := eng.Run(func(p *sim.Proc) {
			ep := m.Endpoint(p.ID())
			if p.ID() == 0 {
				ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) {
					hit = true
					bad(ep, tok)
				}, Args{})
				ep.WaitUntil(func() bool { return false }, "never")
			} else {
				ep.WaitUntil(func() bool { return false }, "never")
			}
		})
		if err == nil || !hit {
			t.Errorf("%s: expected panic from handler misuse, got %v (hit=%v)", name, err, hit)
		}
	}
}

func TestImplicitAckReturnsCredit(t *testing.T) {
	// A handler that never replies must still free the window slot.
	params := logp.NOW()
	seen := 0
	runPair(t, params,
		func(ep *Endpoint) {
			for i := 0; i < 3*params.Window; i++ {
				ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) { seen++ }, Args{})
			}
			ep.WaitUntil(func() bool { return seen == 3*params.Window && ep.Outstanding(1) == 0 }, "drain")
			if out := ep.Outstanding(1); out != 0 {
				t.Errorf("outstanding after drain = %d, want 0", out)
			}
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return seen == 3*params.Window }, "sink")
		})
}

func TestStatsCounting(t *testing.T) {
	params := logp.NOW()
	replies := 0
	bulkSeen := false
	m := runPair(t, params,
		func(ep *Endpoint) {
			// 2 read requests (each replied), 1 write request, 1 bulk store.
			for i := 0; i < 2; i++ {
				ep.Request(1, ClassRead, func(ep *Endpoint, tok *Token, a Args) {
					ep.Reply(tok, func(*Endpoint, *Token, Args) { replies++ }, Args{})
				}, Args{})
			}
			ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) {}, Args{})
			ep.Store(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args, d []byte) { bulkSeen = true }, Args{}, make([]byte, 100))
			ep.WaitUntil(func() bool { return replies == 2 && bulkSeen }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return replies == 2 && bulkSeen }, "sink")
		})
	s := m.Stats()
	if got := s.SentPerProc[0]; got != 4 {
		t.Errorf("proc 0 sent %d, want 4", got)
	}
	if got := s.SentPerProc[1]; got != 2 { // the two read replies
		t.Errorf("proc 1 sent %d, want 2", got)
	}
	if got := s.TotalReads(); got != 4 { // 2 requests + 2 replies
		t.Errorf("read messages = %d, want 4", got)
	}
	if got := s.TotalBulk(); got != 1 {
		t.Errorf("bulk messages = %d, want 1", got)
	}
	if got := s.TotalBulkBytes(); got != 100 {
		t.Errorf("bulk bytes = %d, want 100", got)
	}
	if got := s.Matrix[0][1]; got != 4 {
		t.Errorf("matrix[0][1] = %d, want 4", got)
	}
	if got := s.Matrix[1][0]; got != 2 {
		t.Errorf("matrix[1][0] = %d, want 2", got)
	}
	if got, idx := s.MaxPerProc(); got != 4 || idx != 0 {
		t.Errorf("MaxPerProc = (%d, %d), want (4, 0)", got, idx)
	}
	sum := s.Summarize(1 * sim.Second)
	if sum.AvgMsgsPerProc != 3 {
		t.Errorf("avg msgs/proc = %v, want 3", sum.AvgMsgsPerProc)
	}
	if math.Abs(sum.PercentBulk-100.0/6.0) > 0.01 {
		t.Errorf("percent bulk = %v", sum.PercentBulk)
	}
	s.Reset()
	if s.TotalSent() != 0 || s.Matrix[0][1] != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestArgsRoundTrip(t *testing.T) {
	want := Args{0xdeadbeef, 42, 1 << 60, 7}
	var got Args
	done := false
	runPair(t, logp.NOW(),
		func(ep *Endpoint) {
			ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) {
				got = a
				done = true
			}, want)
			ep.WaitUntil(func() bool { return done }, "drain")
		},
		func(ep *Endpoint) {
			ep.WaitUntil(func() bool { return done }, "sink")
		})
	if got != want {
		t.Errorf("args = %v, want %v", got, want)
	}
}

func TestDeterministicTraffic(t *testing.T) {
	run := func() (sim.Time, int64) {
		eng := sim.New(sim.Config{Procs: 4, Seed: 7})
		m := MustMachine(eng, logp.NOW())
		total := 0
		doneFrom := make([]int, 4) // done notifications received per proc
		err := eng.Run(func(p *sim.Proc) {
			ep := m.Endpoint(p.ID())
			rng := p.Rand()
			for i := 0; i < 100; i++ {
				dst := (p.ID() + 1 + rng.Intn(3)) % 4
				ep.Request(dst, ClassWrite, func(*Endpoint, *Token, Args) { total++ }, Args{})
				if rng.Intn(4) == 0 {
					ep.Compute(sim.FromMicros(1))
				}
			}
			// Hand-rolled termination: tell everyone we are done; leave
			// once everyone told us. Per-pair FIFO ordering guarantees all
			// data messages precede the done notification.
			me := p.ID()
			for d := 0; d < 4; d++ {
				if d != me {
					ep.Request(d, ClassSync, func(ep *Endpoint, tok *Token, a Args) {
						doneFrom[ep.ID()]++
					}, Args{})
				}
			}
			ep.WaitUntil(func() bool { return doneFrom[me] == 3 }, "await peers")
		})
		if err != nil {
			t.Fatal(err)
		}
		if total != 400 {
			t.Fatalf("handled %d messages, want 400", total)
		}
		return eng.MaxClock(), m.Stats().TotalSent()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}
