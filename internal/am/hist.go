package am

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Histogram is a log₂-bucketed histogram of time intervals, used to
// characterize inter-send spacing. The paper's §5.2 deduces from the
// linear gap response that "communication tends to be very bursty, rather
// than spaced at even intervals"; this instrumentation lets the claim be
// checked directly per application.
type Histogram struct {
	// buckets[i] counts intervals in [2^i, 2^(i+1)) nanoseconds; bucket 0
	// also holds zero-length intervals.
	buckets [48]int64
	count   int64
	sum     sim.Time
	max     sim.Time
}

// Add records one interval.
func (h *Histogram) Add(d sim.Time) {
	if d < 0 {
		d = 0
	}
	idx := 0
	if d > 0 {
		idx = int(math.Ilogb(float64(d)))
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
	}
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of recorded intervals.
func (h *Histogram) Count() int64 { return h.count }

// Mean reports the average interval.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Max reports the largest interval.
func (h *Histogram) Max() sim.Time { return h.max }

// FractionBelow reports the fraction of intervals strictly shorter than
// the threshold (conservatively, by whole buckets: a bucket counts as
// below only if its entire range is).
func (h *Histogram) FractionBelow(threshold sim.Time) float64 {
	if h.count == 0 {
		return 0
	}
	var below int64
	for i, c := range h.buckets {
		hi := sim.Time(1) << uint(i+1) // exclusive bucket upper bound
		if i == 0 {
			hi = 2
		}
		if hi <= threshold {
			below += c
		}
	}
	return float64(below) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile interval (the upper
// edge of the bucket where the quantile falls).
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return sim.Time(1) << uint(i+1)
		}
	}
	return h.max
}

// String renders the non-empty buckets.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v", h.count, h.Mean())
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := sim.Time(1) << uint(i)
		if i == 0 {
			lo = 0
		}
		fmt.Fprintf(&b, " [%v:%d]", lo, c)
	}
	return b.String()
}

// recordSendInterval feeds the per-processor send-interval histogram
// (absent above statsDetailMaxP).
func (s *Stats) recordSendInterval(src int, now sim.Time) {
	if s.lastSend == nil {
		return
	}
	if s.lastSend[src] >= 0 {
		s.SendIntervals[src].Add(now - sim.Time(s.lastSend[src]))
	}
	s.lastSend[src] = int64(now)
}

// BurstFraction reports, across all processors, the fraction of message
// sends issued within `within` of the previous send — the paper's
// burstiness: under the burst model this is ≈1 for the heavy
// communicators.
func (s *Stats) BurstFraction(within sim.Time) float64 {
	var total, burst float64
	for i := range s.SendIntervals {
		c := float64(s.SendIntervals[i].Count())
		total += c
		burst += c * s.SendIntervals[i].FractionBelow(within)
	}
	if total == 0 {
		return 0
	}
	return burst / total
}

// MeanSendInterval averages the per-send spacing over all processors.
func (s *Stats) MeanSendInterval() sim.Time {
	var sum sim.Time
	var n int64
	for i := range s.SendIntervals {
		sum += s.SendIntervals[i].sum
		n += s.SendIntervals[i].count
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}
