package am

// winCounts tracks un-acked requests per destination, plus their running
// total so TotalOutstanding — polled by every store-sync — is O(1)
// rather than a scan over P destinations.
//
// The representation adapts to machine size. Below denseWinMaxP a dense
// per-destination array keeps the steady-state send path branch-free and
// allocation-free, exactly as before. Above it, a dense array would cost
// P counters per endpoint — P² machine-wide, hopeless at P=1M — so the
// counts live in a tiny list of live (dst, n) pairs scanned linearly: an
// endpoint has at most Window in-flight requests per destination and
// only a handful of destinations in flight at once (entries vanish when
// their count returns to zero), so the scan touches a few cache-resident
// elements. Both representations hold identical counts; switching
// between them cannot perturb any schedule.
type winCounts struct {
	dense   []int32
	entries []winEntry
	total   int64
}

type winEntry struct {
	dst int32
	n   int32
}

// denseWinMaxP bounds the dense window representation: 4096 endpoints of
// 4096 int32 counters is 64 MiB machine-wide, the largest we accept.
const denseWinMaxP = 4096

func newWinCounts(p int) winCounts {
	if p <= denseWinMaxP {
		return winCounts{dense: make([]int32, p)}
	}
	return winCounts{}
}

//repro:hotpath
func (w *winCounts) get(dst int) int {
	if w.dense != nil {
		return int(w.dense[dst])
	}
	for i := range w.entries {
		if w.entries[i].dst == int32(dst) {
			return int(w.entries[i].n)
		}
	}
	return 0
}

//repro:hotpath
func (w *winCounts) inc(dst int) {
	w.total++
	if w.dense != nil {
		w.dense[dst]++
		return
	}
	for i := range w.entries {
		if w.entries[i].dst == int32(dst) {
			w.entries[i].n++
			return
		}
	}
	//lint:allow hotpathalloc sparse live-entry growth; bounded by the handful of in-flight destinations
	w.entries = append(w.entries, winEntry{dst: int32(dst), n: 1})
}

//repro:hotpath
func (w *winCounts) dec(dst int) {
	w.total--
	if w.dense != nil {
		w.dense[dst]--
		return
	}
	for i := range w.entries {
		if w.entries[i].dst != int32(dst) {
			continue
		}
		w.entries[i].n--
		if w.entries[i].n == 0 {
			last := len(w.entries) - 1
			w.entries[i] = w.entries[last]
			w.entries = w.entries[:last]
		}
		return
	}
}
