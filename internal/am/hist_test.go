package am

import (
	"testing"
	"testing/quick"

	"repro/internal/logp"
	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("zero histogram not empty")
	}
	h.Add(100)
	h.Add(300)
	h.Add(0)
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 133 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Max() != 300 {
		t.Errorf("max = %v", h.Max())
	}
	if h.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Add(10) // bucket [8,16)
	}
	for i := 0; i < 10; i++ {
		h.Add(10000) // bucket [8192,16384)
	}
	if got := h.FractionBelow(16); got != 0.5 {
		t.Errorf("FractionBelow(16) = %v, want 0.5", got)
	}
	if got := h.FractionBelow(1 << 20); got != 1.0 {
		t.Errorf("FractionBelow(1M) = %v, want 1", got)
	}
	if got := h.FractionBelow(4); got != 0 {
		t.Errorf("FractionBelow(4) = %v, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Add(10)
	}
	h.Add(1 << 30)
	if q := h.Quantile(0.5); q > 16 {
		t.Errorf("median bound = %v, want <= 16", q)
	}
	if q := h.Quantile(0.999); q < 1<<30 {
		t.Errorf("p99.9 bound = %v, want >= 2^30", q)
	}
}

// Property: FractionBelow is monotone in its threshold and bounded [0,1].
func TestHistogramMonotoneProperty(t *testing.T) {
	f := func(samples []uint32, t1, t2 uint32) bool {
		var h Histogram
		for _, s := range samples {
			h.Add(sim.Time(s))
		}
		lo, hi := sim.Time(t1), sim.Time(t2)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := h.FractionBelow(lo), h.FractionBelow(hi)
		return a >= 0 && b <= 1 && a <= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBurstinessInstrumentation(t *testing.T) {
	// A back-to-back burst followed by a long pause must be mostly
	// "bursty" under a small threshold.
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, logp.NOW())
	seen := 0
	const n = 20
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) { seen++ }, Args{})
			}
			ep.Compute(sim.FromMicros(5000))
			ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) { seen++ }, Args{})
			ep.WaitUntil(func() bool { return seen == n+1 }, "drain")
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return seen == n+1 }, "sink")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	frac := s.BurstFraction(2 * logp.NOW().EffGap())
	// 19 of 20 recorded intervals are back-to-back; one is the 5ms pause.
	if frac < 0.9 {
		t.Errorf("burst fraction = %v, want > 0.9", frac)
	}
	if s.MeanSendInterval() < sim.FromMicros(100) {
		t.Errorf("mean interval = %v should be dominated by the pause", s.MeanSendInterval())
	}
	s.Reset()
	if s.SendIntervals[0].Count() != 0 {
		t.Error("Reset did not clear histograms")
	}
}

func TestCPUFactorScalesComputeOnly(t *testing.T) {
	elapsed := func(factor float64) sim.Time {
		eng := sim.New(sim.Config{Procs: 2})
		m := MustMachine(eng, logp.NOW())
		m.SetCPUFactor(factor)
		done := false
		err := eng.RunEach([]func(*sim.Proc){
			func(p *sim.Proc) {
				ep := m.Endpoint(0)
				ep.Compute(sim.FromMicros(1000))
				ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) { done = true }, Args{})
				ep.WaitUntil(func() bool { return done }, "drain")
			},
			func(p *sim.Proc) {
				m.Endpoint(1).WaitUntil(func() bool { return done }, "sink")
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.MaxClock()
	}
	base, fast := elapsed(1), elapsed(2)
	// 1000µs of compute halves; the ~11µs of communication does not.
	saved := base - fast
	if saved < sim.FromMicros(495) || saved > sim.FromMicros(505) {
		t.Errorf("2x CPU saved %v, want ≈500µs (compute only)", saved)
	}
	if m := MustMachine(sim.New(sim.Config{Procs: 1}), logp.NOW()); m.CPUFactor() != 1 {
		t.Errorf("default CPU factor = %v", m.CPUFactor())
	}
}

func TestSetCPUFactorRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for factor 0")
		}
	}()
	MustMachine(sim.New(sim.Config{Procs: 1}), logp.NOW()).SetCPUFactor(0)
}
