package am

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// JSON round-tripping for the run characterization, so a completed
// apps.Result can live in the service's persistent content-addressed
// result cache and come back able to render every table it feeds
// (Figure 4's balance matrix, Table 4's summary, ext-burst's interval
// histograms, the fault counters). Only post-run state round-trips: the
// transient in-run bookkeeping (lastSend) is reset on decode, so a
// decoded Stats is a read-only characterization, not a live counter set.

// histJSON is Histogram's wire form. Buckets trails no zeros so small
// histograms stay small on disk.
type histJSON struct {
	Buckets []int64  `json:"buckets,omitempty"`
	Count   int64    `json:"count"`
	Sum     sim.Time `json:"sum"`
	Max     sim.Time `json:"max"`
}

// MarshalJSON encodes the histogram's full state.
func (h Histogram) MarshalJSON() ([]byte, error) {
	last := -1
	for i, c := range h.buckets {
		if c != 0 {
			last = i
		}
	}
	var buckets []int64
	if last >= 0 {
		buckets = h.buckets[:last+1]
	}
	return json.Marshal(histJSON{Buckets: buckets, Count: h.count, Sum: h.sum, Max: h.max})
}

// UnmarshalJSON restores a histogram encoded by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Buckets) > len(h.buckets) {
		return fmt.Errorf("am: histogram has %d buckets, max %d", len(w.Buckets), len(h.buckets))
	}
	*h = Histogram{count: w.Count, sum: w.Sum, max: w.Max}
	copy(h.buckets[:], w.Buckets)
	return nil
}

// statsJSON is Stats's wire form: the exported characterization plus
// the processor count (unexported in Stats, but load-bearing for the
// per-processor averages).
type statsJSON struct {
	P             int         `json:"p"`
	Matrix        [][]int64   `json:"matrix,omitempty"`
	SentPerProc   []int64     `json:"sent_per_proc,omitempty"`
	BulkPerProc   []int64     `json:"bulk_per_proc,omitempty"`
	BulkBytesPer  []int64     `json:"bulk_bytes_per,omitempty"`
	ReadPerProc   []int64     `json:"read_per_proc,omitempty"`
	Barriers      int64       `json:"barriers"`
	SendIntervals []Histogram `json:"send_intervals,omitempty"`
	Retransmits   int64       `json:"retransmits"`
	WireDrops     int64       `json:"wire_drops"`
	WireDups      int64       `json:"wire_dups"`
	DupsDiscarded int64       `json:"dups_discarded"`
}

// MarshalJSON encodes the full post-run characterization.
func (s *Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{
		P:             s.p,
		Matrix:        s.Matrix,
		SentPerProc:   s.SentPerProc,
		BulkPerProc:   s.BulkPerProc,
		BulkBytesPer:  s.BulkBytesPer,
		ReadPerProc:   s.ReadPerProc,
		Barriers:      s.Barriers,
		SendIntervals: s.SendIntervals,
		Retransmits:   s.Retransmits,
		WireDrops:     s.WireDrops,
		WireDups:      s.WireDups,
		DupsDiscarded: s.DupsDiscarded,
	})
}

// UnmarshalJSON restores a Stats encoded by MarshalJSON. The decoded
// value is read-only: the in-run interval bookkeeping does not
// round-trip, so feeding it more sends would mis-histogram them.
func (s *Stats) UnmarshalJSON(b []byte) error {
	var w statsJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = Stats{
		p:             w.P,
		Matrix:        w.Matrix,
		SentPerProc:   w.SentPerProc,
		BulkPerProc:   w.BulkPerProc,
		BulkBytesPer:  w.BulkBytesPer,
		ReadPerProc:   w.ReadPerProc,
		Barriers:      w.Barriers,
		SendIntervals: w.SendIntervals,
		Retransmits:   w.Retransmits,
		WireDrops:     w.WireDrops,
		WireDups:      w.WireDups,
		DupsDiscarded: w.DupsDiscarded,
	}
	return nil
}
