package am

import "repro/internal/sim"

// Message-record pooling: the steady-state cost of simulating one short
// message used to be four heap allocations (the message record, the
// arrival closure, the handler Token, and the credit-return closure).
// All four are gone:
//
//   - message records come from a per-machine freelist and are recycled
//     as soon as the receiving host has consumed them (see process);
//   - arrivals and credit returns are scheduled through the engine's
//     typed zero-alloc event path (sim.Engine.ScheduleCall) with the
//     pooled record itself as the event argument;
//   - the handler Token is a per-endpoint scratch value reused across
//     deliveries (handlers may Reply during the handler invocation, and
//     none retains the token past it — the GAM contract).
//
// Ownership rule: a record belongs to exactly one stage at a time —
// sender (until launch), wire (the scheduled arrival event), inbox, or
// host (during process) — and only the final stage may recycle it.
// Recycling at delivery is sound only when each record has exactly one
// arrival event in flight: the reliability layer retransmits records and
// resequences them through its dedup buffers (keeping sender-side
// ownership until the cumulative ack), and a lossy fault injector can
// schedule duplicate arrivals of one record. Machine.pooling therefore
// gates recycling of data messages: it is true only with reliability off
// and no lossy injector attached. Credit records (kindCredit) are
// internal, single-owner, and never enter an inbox, so they recycle
// unconditionally. Disabling recycling only costs allocations — the pool
// is a performance seam, never a correctness one.

// getMsg returns a zeroed message record owned by the caller, reusing a
// recycled one when available.
//
//repro:hotpath
func (m *Machine) getMsg() *message {
	if n := len(m.msgPool); n > 0 {
		msg := m.msgPool[n-1]
		m.msgPool[n-1] = nil
		m.msgPool = m.msgPool[:n-1]
		return msg
	}
	//lint:allow hotpathalloc pool-miss refill; steady state always hits the freelist above
	return &message{m: m}
}

// putMsg recycles a record whose current stage is done with it. The
// record is zeroed here (dropping handler, data, and header references)
// so the pool never extends the lifetime of caller state.
//
//repro:hotpath
func (m *Machine) putMsg(msg *message) {
	*msg = message{m: m}
	//lint:allow hotpathalloc amortized freelist growth; bounded by the in-flight high-water mark
	m.msgPool = append(m.msgPool, msg)
}

// updatePooling recomputes whether data-message records may be recycled
// at delivery; called whenever the reliability layer or the fault
// injector is attached or detached.
func (m *Machine) updatePooling() {
	m.pooling = m.rel == nil && (m.faults == nil || !m.faults.Lossy())
}

// deliverEvent is the arrival of one data message on a lossless wire
// (the reliability layer has its own arrival path): a top-level
// sim.EventFn, so scheduling a delivery allocates nothing. Replies free
// their window credit here — at the NIC, before the host polls — exactly
// as the closure-based path did.
//
//repro:hotpath
func deliverEvent(arg any, at sim.Time) {
	msg := arg.(*message)
	m := msg.m
	dst := m.eps[msg.dst]
	reply := msg.kind == kindReply || msg.kind == kindBulkReply
	if reply {
		dst.outstanding.dec(msg.src)
	}
	if wh := m.wire; wh != nil {
		wh.MessageDelivered(msg.src, msg.dst, reply, at)
	}
	msg.arrival = at
	dst.pushInbox(msg)
	dst.proc.WakeAt(at)
}

// creditEvent is the firmware-level window-credit return: src gets one
// request credit toward dst back. The record is a pooled kindCredit
// message (src = requester, dst = responder) recycled in place.
//
//repro:hotpath
func creditEvent(arg any, at sim.Time) {
	msg := arg.(*message)
	m := msg.m
	requester := m.eps[msg.src]
	requester.outstanding.dec(msg.dst)
	requester.proc.WakeAt(at)
	m.putMsg(msg)
}
