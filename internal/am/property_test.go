package am

import (
	"testing"
	"testing/quick"

	"repro/internal/logp"
	"repro/internal/sim"
)

// TestConservationProperty: under random traffic, every request sent is
// eventually handled exactly once, no matter the machine parameters.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, dO, dG, dL uint8, procsRaw uint8) bool {
		procs := int(procsRaw)%6 + 2
		params := logp.NOW()
		params.DeltaO = sim.FromMicros(float64(dO % 50))
		params.DeltaG = sim.FromMicros(float64(dG % 50))
		params.DeltaL = sim.FromMicros(float64(dL % 50))
		eng := sim.New(sim.Config{Procs: procs, Seed: seed})
		m := MustMachine(eng, params)

		sent := 0
		handled := 0
		doneFrom := make([]int, procs)
		err := eng.Run(func(p *sim.Proc) {
			ep := m.Endpoint(p.ID())
			rng := p.Rand()
			n := rng.Intn(40) + 1
			for i := 0; i < n; i++ {
				dst := (p.ID() + 1 + rng.Intn(procs-1)) % procs
				sent++
				ep.Request(dst, ClassWrite, func(*Endpoint, *Token, Args) { handled++ }, Args{})
			}
			me := p.ID()
			for d := 0; d < procs; d++ {
				if d != me {
					ep.Request(d, ClassSync, func(ep *Endpoint, tok *Token, a Args) {
						doneFrom[ep.ID()]++
					}, Args{})
				}
			}
			ep.WaitUntil(func() bool { return doneFrom[me] == procs-1 }, "peers")
		})
		return err == nil && handled == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPairwiseFIFO: messages between one (src, dst) pair are handled in
// send order — the ordering guarantee the applications' flag protocols
// (radix offsets, radb pipeline) rely on.
func TestPairwiseFIFO(t *testing.T) {
	for _, dG := range []float64{0, 30} {
		params := logp.NOW()
		params.DeltaG = sim.FromMicros(dG)
		eng := sim.New(sim.Config{Procs: 2})
		m := MustMachine(eng, params)
		var order []uint64
		const n = 50
		err := eng.RunEach([]func(*sim.Proc){
			func(p *sim.Proc) {
				ep := m.Endpoint(0)
				for i := 0; i < n; i++ {
					seq := uint64(i)
					ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) {
						order = append(order, a[0])
					}, Args{seq})
					if i%7 == 3 {
						ep.Compute(sim.FromMicros(float64(i % 13)))
					}
				}
				ep.WaitUntil(func() bool { return len(order) == n }, "drain")
			},
			func(p *sim.Proc) {
				m.Endpoint(1).WaitUntil(func() bool { return len(order) == n }, "sink")
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range order {
			if v != uint64(i) {
				t.Fatalf("dG=%v: message %d handled out of order (seq %d)", dG, i, v)
			}
		}
	}
}

// TestBulkThenShortOrdering: a short flag message issued after a bulk
// fragment to the same destination must be handled after it (the
// put-then-flag idiom).
func TestBulkThenShortOrdering(t *testing.T) {
	params := logp.NOW()
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, params)
	var events []string
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			ep.Store(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args, d []byte) {
				events = append(events, "bulk")
			}, Args{}, make([]byte, 4096))
			ep.Request(1, ClassWrite, func(ep *Endpoint, tok *Token, a Args) {
				events = append(events, "flag")
			}, Args{})
			ep.WaitUntil(func() bool { return len(events) == 2 }, "drain")
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return len(events) == 2 }, "sink")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if events[0] != "bulk" || events[1] != "flag" {
		t.Errorf("events = %v, want [bulk flag]", events)
	}
}

// TestWindowInvariant: outstanding requests per destination never exceed
// the configured window, even under heavy load.
func TestWindowInvariant(t *testing.T) {
	params := logp.NOW()
	params.Window = 4
	params.DeltaL = sim.FromMicros(200)
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, params)
	seen := 0
	const n = 40
	maxOut := 0
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, func(*Endpoint, *Token, Args) { seen++ }, Args{})
				if out := ep.Outstanding(1); out > maxOut {
					maxOut = out
				}
			}
			ep.WaitUntil(func() bool { return seen == n }, "drain")
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return seen == n }, "sink")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxOut > 4 {
		t.Errorf("outstanding reached %d, window is 4", maxOut)
	}
}

// TestMatrixSymmetryProperty: the stats matrix row sums equal the
// per-proc send counters.
func TestMatrixConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		procs := 4
		eng := sim.New(sim.Config{Procs: procs, Seed: seed})
		m := MustMachine(eng, logp.NOW())
		total := 0
		doneFrom := make([]int, procs)
		err := eng.Run(func(p *sim.Proc) {
			ep := m.Endpoint(p.ID())
			rng := p.Rand()
			for i := 0; i < rng.Intn(30); i++ {
				dst := (p.ID() + 1 + rng.Intn(procs-1)) % procs
				ep.Request(dst, ClassWrite, func(*Endpoint, *Token, Args) { total++ }, Args{})
			}
			me := p.ID()
			for d := 0; d < procs; d++ {
				if d != me {
					ep.Request(d, ClassSync, func(ep *Endpoint, tok *Token, a Args) {
						doneFrom[ep.ID()]++
					}, Args{})
				}
			}
			ep.WaitUntil(func() bool { return doneFrom[me] == procs-1 }, "peers")
		})
		if err != nil {
			return false
		}
		s := m.Stats()
		for i := 0; i < procs; i++ {
			var rowSum int64
			for j := 0; j < procs; j++ {
				rowSum += s.Matrix[i][j]
			}
			if rowSum != s.SentPerProc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
