package am

import (
	"fmt"

	"repro/internal/sim"
)

// Continuation-mode endpoint primitives.
//
// A resumable processor body (sim.Resumable) cannot call the blocking
// endpoint operations — Request, Store, Poll, WaitUntilFor — because they
// park by yielding the calling goroutine's stack, and a resumable body
// has none. The methods in this file decompose each blocking operation
// into the three things it actually does:
//
//  1. poll   — PollOneDue services one arrival present at the NIC,
//     exactly the message-processing half of Poll (GAM polls on every
//     request), with the caller parking on sim.Yield between steps;
//  2. wait   — WindowWait / CounterWait / QuiesceWait hand the engine a
//     closure-free wait record to drive (the same epWait the coroutine
//     shell parks on, so both modes share one wait implementation);
//  3. commit — SendRequest / SendStore perform the charge, the window
//     book-keeping, and the launch, with no possibility of blocking.
//
// The splitc continuation layer assembles these into the Split-C
// primitives; the assembly order mirrors the blocking originals
// statement for statement, which is what the cross-mode equivalence test
// pins (see DESIGN.md §11).
//
// Charges and arrivals are identical to the blocking path: both funnel
// into chargeSend and launch. Control transfer is equivalent too: a
// blocking Checkpoint maps to one park on sim.Yield — the engine resumes
// a parked processor only once every peer at a smaller (clock, id) has
// run and every event due by its clock has fired, which is precisely
// what Checkpoint does inline — and each blocking poll decomposes into
// PollOneDue steps separated by such parks. The two modes therefore
// produce bit-identical timelines, which the cross-mode twin test pins.

// PollOneDue services at most one message that has arrived by the
// processor's current time, charging o_recv and running its handler —
// one step of the continuation-mode poll. Pending engine events due by
// the clock are drained around the step so deliveries and credit
// returns materialize exactly as a Checkpoint would have made them.
// Returns whether a message was processed; the caller must park on
// sim.Yield before the first step and between steps so the poll
// interleaves with slower processors exactly as the blocking Poll's
// Checkpoints do.
//
//repro:hotpath
func (ep *Endpoint) PollOneDue() bool {
	if ep.inHandler {
		panic("am: PollOneDue called from a message handler")
	}
	ep.proc.RunDueEvents()
	msg := ep.peekInbox()
	if msg == nil || msg.arrival > ep.proc.Clock() {
		return false
	}
	ep.popInbox()
	ep.process(msg)
	ep.proc.RunDueEvents()
	return true
}

// CanSend reports whether a request credit toward dst is free, i.e.
// whether SendRequest/SendStore may be called without a window stall.
//
//repro:hotpath
func (ep *Endpoint) CanSend(dst int) bool {
	return ep.outstanding.get(dst) < ep.params().Window
}

// WindowWait returns the endpoint's reusable wait for a free request
// credit toward dst. Park on it when CanSend is false; by the next
// Resume call a credit is free.
//
//repro:hotpath
func (ep *Endpoint) WindowWait(dst int) sim.PollableWait {
	return ep.pw.set(waitModeWindow, nil, nil, 0, dst, ep.params().Window, "am: window stall")
}

// CounterWait returns the endpoint's reusable wait for *ctr >= target.
// Counters must be cumulative (monotonically nondecreasing) — replies
// received, barrier notifications, collective operands — so that a wait
// constructed against a stale snapshot can only be satisfied early,
// never missed. Closure-free: the record points at the counter directly.
//
//repro:hotpath
func (ep *Endpoint) CounterWait(ctr *int64, target int64, reason string) sim.PollableWait {
	return ep.pw.set(waitModeCounter, nil, ctr, target, 0, 0, reason)
}

// QuiesceWait returns the endpoint's reusable wait for all outstanding
// requests to be acked — the continuation form of a store sync.
//
//repro:hotpath
func (ep *Endpoint) QuiesceWait() sim.PollableWait {
	return ep.pw.set(waitModeQuiesce, nil, nil, 0, 0, 0, "am: store sync")
}

// SendRequest is the commit half of Request: charge o_send, consume a
// window credit, launch. The caller is responsible for the GAM request
// preamble — a yield-interleaved PollOneDue loop, then a WindowWait park
// if CanSend is false; calling
// with a full window is a discipline violation and panics rather than
// silently overrunning the capacity constraint.
//
//repro:hotpath
func (ep *Endpoint) SendRequest(dst int, class Class, h Handler, args Args) {
	ep.checkRequestContext("SendRequest")
	if h == nil {
		panic("am: SendRequest with nil handler")
	}
	if !ep.CanSend(dst) {
		panic(fmt.Sprintf("am: SendRequest from proc %d with a full window toward %d; park on WindowWait first", ep.ID(), dst))
	}
	ep.chargeSend()
	ep.outstanding.inc(dst)
	msg := ep.m.getMsg()
	msg.kind, msg.src, msg.dst, msg.class, msg.handler, msg.args = kindRequest, ep.ID(), dst, class, h, args
	ep.m.stats.countSendAt(ep.ID(), dst, class, false, 0, ep.proc.Clock())
	ep.launch(msg)
}

// SendStore is the commit half of Store: one bulk fragment under the
// window, no blocking. The same preamble discipline as SendRequest
// applies. The data is copied at send time.
//
//repro:hotpath
func (ep *Endpoint) SendStore(dst int, class Class, h BulkHandler, args Args, data []byte) {
	ep.checkRequestContext("SendStore")
	if h == nil {
		panic("am: SendStore with nil handler")
	}
	p := ep.params()
	if len(data) > p.FragmentSize {
		panic(fmt.Sprintf("am: SendStore of %d bytes exceeds fragment size %d", len(data), p.FragmentSize))
	}
	if !ep.CanSend(dst) {
		panic(fmt.Sprintf("am: SendStore from proc %d with a full window toward %d; park on WindowWait first", ep.ID(), dst))
	}
	ep.chargeSend()
	ep.outstanding.inc(dst)
	//lint:allow hotpathalloc bulk payload copy is the transfer semantics; the zero-alloc property covers short messages
	buf := make([]byte, len(data))
	copy(buf, data)
	msg := ep.m.getMsg()
	msg.kind, msg.src, msg.dst, msg.class, msg.bulkH, msg.args, msg.data = kindBulk, ep.ID(), dst, class, h, args, buf
	ep.m.stats.countSendAt(ep.ID(), dst, class, true, len(data), ep.proc.Clock())
	ep.launch(msg)
}

// MarkWaitBegin reports a wait-span start to the attached hooks, for
// continuation primitives that bracket their parks the way WaitUntilFor
// and waitWindow do. No-op when no hooks are attached.
func (ep *Endpoint) MarkWaitBegin(kind WaitKind) {
	if h := ep.m.hooks; h != nil {
		h.WaitBegin(ep.ID(), kind, ep.proc.Clock())
	}
}

// MarkWaitEnd closes a wait span opened by MarkWaitBegin.
func (ep *Endpoint) MarkWaitEnd(kind WaitKind) {
	if h := ep.m.hooks; h != nil {
		h.WaitEnd(ep.ID(), kind, ep.proc.Clock())
	}
}
