package am

import (
	"runtime"
	"testing"

	"repro/internal/logp"
	"repro/internal/sim"
)

// TestShortMessagePathZeroAlloc pins the zero-allocation property of the
// steady-state short-message path: once the message pool, the event heap,
// and the inboxes have reached their high-water marks, sending a request,
// delivering it, running its handler, and returning the window credit must
// not touch the heap. The measurement runs inside the sending body — the
// receiver's deliveries and handler invocations execute inline on the same
// goroutine under the engine's pollable-wait dispatch, so the window
// covers the complete send+receive path.
func TestShortMessagePathZeroAlloc(t *testing.T) {
	params := logp.NOW()
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, params)
	const warm, measured = 256, 1024
	total := warm + measured
	seen := 0
	handler := func(*Endpoint, *Token, Args) { seen++ }
	var got uint64
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			for i := 0; i < warm; i++ {
				ep.Request(1, ClassWrite, handler, Args{})
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < measured; i++ {
				ep.Request(1, ClassWrite, handler, Args{})
			}
			runtime.ReadMemStats(&after)
			got = after.Mallocs - before.Mallocs
			ep.WaitUntil(func() bool { return seen == total }, "drain")
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return seen == total }, "sink")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != total {
		t.Fatalf("handler ran %d times, want %d", seen, total)
	}
	if got != 0 {
		t.Errorf("steady-state short-message path allocated %d times over %d messages, want 0", got, measured)
	}
}

// TestMessagePoolRecycles checks the freelist actually cycles records:
// a long steady-state stream must not grow the pool past the in-flight
// high-water mark (window + wire + inbox).
func TestMessagePoolRecycles(t *testing.T) {
	params := logp.NOW()
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, params)
	const n = 2000
	seen := 0
	handler := func(*Endpoint, *Token, Args) { seen++ }
	err := eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			for i := 0; i < n; i++ {
				ep.Request(1, ClassWrite, handler, Args{})
			}
			ep.WaitUntil(func() bool { return seen == n }, "drain")
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return seen == n }, "sink")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every data message and every credit record passes through the pool;
	// the live set at any instant is bounded by the window plus what the
	// wire and inbox can hold, far below the message count.
	if len(m.msgPool) > 4*params.Window+8 {
		t.Errorf("pool grew to %d records for a window of %d; recycling is not steady-state", len(m.msgPool), params.Window)
	}
}

// TestPoolingDisabledUnderReliability pins the ownership rule: with the
// reliability layer on (or a lossy injector attached), records may be
// referenced past delivery, so delivery-time recycling must be off.
func TestPoolingDisabledUnderReliability(t *testing.T) {
	eng := sim.New(sim.Config{Procs: 2})
	m := MustMachine(eng, logp.NOW())
	if !m.pooling {
		t.Fatal("pooling should start enabled")
	}
	m.SetReliability(Reliability{Enabled: true})
	if m.pooling {
		t.Error("pooling must be disabled while the reliability layer is on")
	}
	m.SetReliability(Reliability{})
	if !m.pooling {
		t.Error("pooling should re-enable when the reliability layer is torn down")
	}
}
