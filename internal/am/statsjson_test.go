package am

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestStatsJSONRoundTrip pins the persistent-cache contract: every
// render-visible field of a post-run Stats — including the processor
// count behind the per-proc averages and the burstiness histograms —
// survives a JSON round trip exactly.
func TestStatsJSONRoundTrip(t *testing.T) {
	s := newStats(4)
	s.countSendAt(0, 1, ClassRead, false, 8, 100)
	s.countSendAt(0, 2, ClassWrite, false, 8, 200)
	s.countSendAt(1, 3, ClassWrite, true, 4096, 5000)
	s.countSendAt(0, 1, ClassRead, false, 8, 90000)
	s.CountBarrier()
	s.CountBarrier()
	s.Retransmits, s.WireDrops, s.WireDups, s.DupsDiscarded = 3, 2, 1, 1

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Stats
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.P() != s.P() {
		t.Fatalf("P: got %d want %d", got.P(), s.P())
	}
	if !reflect.DeepEqual(got.Matrix, s.Matrix) {
		t.Fatalf("Matrix: got %v want %v", got.Matrix, s.Matrix)
	}
	if !reflect.DeepEqual(got.SentPerProc, s.SentPerProc) ||
		!reflect.DeepEqual(got.BulkPerProc, s.BulkPerProc) ||
		!reflect.DeepEqual(got.BulkBytesPer, s.BulkBytesPer) ||
		!reflect.DeepEqual(got.ReadPerProc, s.ReadPerProc) {
		t.Fatalf("per-proc counters did not round-trip")
	}
	if got.Barriers != 2 || got.Retransmits != 3 || got.WireDrops != 2 || got.WireDups != 1 || got.DupsDiscarded != 1 {
		t.Fatalf("scalar counters did not round-trip: %+v", got)
	}
	// Derived render inputs agree exactly.
	if got.AvgPerProc() != s.AvgPerProc() || got.PercentBulk() != s.PercentBulk() || got.PercentReads() != s.PercentReads() {
		t.Fatalf("derived metrics differ after round trip")
	}
	if got.Summarize(100000) != s.Summarize(100000) {
		t.Fatalf("Summarize differs after round trip")
	}
	// Histograms: the burstiness instrumentation behind ext-burst.
	for i := range s.SendIntervals {
		a, b := &s.SendIntervals[i], &got.SendIntervals[i]
		if a.Count() != b.Count() || a.Mean() != b.Mean() || a.Max() != b.Max() {
			t.Fatalf("proc %d histogram summary differs", i)
		}
		for _, th := range []sim.Time{2, 1024, 1 << 20} {
			if a.FractionBelow(th) != b.FractionBelow(th) {
				t.Fatalf("proc %d FractionBelow(%d) differs", i, th)
			}
		}
	}
	// Encoding is deterministic: re-marshal of the decoded value is
	// byte-identical (content-addressing depends on it).
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-encoded bytes differ:\n%s\n%s", b, b2)
	}
}

// TestHistogramJSONTrailingZeros pins the compact bucket encoding.
func TestHistogramJSONTrailingZeros(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(3)
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Count() != 2 || got.Max() != 3 || got.Mean() != h.Mean() {
		t.Fatalf("histogram did not round-trip: %s vs %s", got.String(), h.String())
	}
	var empty Histogram
	b, err = json.Marshal(empty)
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if back != empty {
		t.Fatalf("empty histogram did not round-trip: %q", b)
	}
}
