// scale-radix: the barrier-synchronized kernel. One digit pass of a
// parallel counting sort — per-processor histogram, cross-processor
// prefix scans (ScanAdd + Broadcast per bucket), then a permute of every
// key to its globally ranked slot with pipelined writes, fenced by
// barriers. This is the communication skeleton of the paper's Radix sort
// at weak scale: per-processor key count fixed, synchronization depth
// growing as log P.
package scalekern

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/splitc"
)

const (
	// radixBuckets is the bucket count of the single digit pass (1-bit
	// digit): enough to exercise the scan/permute structure while keeping
	// the collective count — the log P cost driver at P = 1M — low.
	radixBuckets = 2

	radixPaperKeys   = 4096 // per-processor keys at Scale = 1
	radixHistCostUs  = 0.05 // per key: extract digit, bump counter
	radixPermCostUs  = 0.15 // per key: compute rank, issue send
	radixCheckCostUs = 0.02 // per key: verification scan share
)

// Radix is the scale-radix kernel. Blocking selects the coroutine twin.
type Radix struct {
	Blocking bool
}

func (a Radix) Name() string      { return blkSuffix("scale-radix", a.Blocking) }
func (Radix) PaperName() string   { return "Radix (scale)" }
func (a Radix) Description() string {
	return "Weak-scaling counting-sort digit pass (" + mode(a.Blocking) + " runtime)"
}

func radixKeys(cfg apps.Config) int {
	return apps.ScaleInt(radixPaperKeys, cfg.Scale, 16)
}

func (a Radix) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	return fmt.Sprintf("%d keys/proc, %d buckets, %d total keys",
		radixKeys(cfg), radixBuckets, radixKeys(cfg)*cfg.Procs)
}

// radixKeyAt is the deterministic input: key i of processor me.
func radixKeyAt(seed int64, me, i, k int) uint64 {
	return splitmix64(uint64(seed)*0x9E3779B97F4A7C15^(uint64(me)*uint64(k)+uint64(i)+1)) & 0xFFFF
}

// radixShared is the cross-processor state of one run. dest is written
// by each processor before the first barrier and read only after it;
// failed likewise is written per-processor and read after the run.
type radixShared struct {
	k      int
	seed   int64
	dest   []splitc.GPtr
	failed []bool
}

// Run executes the kernel.
func (a Radix) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}
	sh := &radixShared{
		k:      radixKeys(cfg),
		seed:   cfg.Seed,
		dest:   make([]splitc.GPtr, cfg.Procs),
		failed: make([]bool, cfg.Procs),
	}
	if a.Blocking {
		err = w.Run(func(p *splitc.Proc) { radixBody(p, sh, cfg.Verify) })
	} else {
		err = w.RunTasks(func(id int) splitc.Task {
			return &radixTask{sh: sh, verify: cfg.Verify}
		})
	}
	if err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify {
		for id, bad := range sh.failed {
			if bad {
				return apps.Result{}, fmt.Errorf("%s: verification failed on proc %d", a.Name(), id)
			}
		}
	}
	res := apps.Finish(a, cfg, w, cfg.Verify)
	res.Extra["keys_per_proc"] = float64(sh.k)
	return res, nil
}

// radixBody is the blocking twin. The continuation task below makes the
// same primitive calls with the same compute charges, in the same order.
func radixBody(p *splitc.Proc, sh *radixShared, verify bool) {
	me, P, K := p.ID(), p.P(), sh.k
	dest := p.Alloc(K)
	sh.dest[me] = dest
	p.Barrier()

	// Histogram pass over regenerated keys (keys are never stored: the
	// hash is cheaper than the memory at a million processors).
	var hist [radixBuckets]uint64
	for i := 0; i < K; i++ {
		key := radixKeyAt(sh.seed, me, i, K)
		hist[key&(radixBuckets-1)]++
		p.ComputeUs(radixHistCostUs)
	}

	// Per-bucket global ranks: an exclusive scan gives this processor's
	// offset within the bucket, and the last processor's inclusive value
	// — broadcast back — gives the bucket total. The barrier separates
	// the collective episodes so bucket d+1's traffic cannot land in
	// bucket d's tag window.
	var scanX, tot [radixBuckets]uint64
	for d := 0; d < radixBuckets; d++ {
		excl := p.ScanAdd(hist[d])
		tot[d] = p.Broadcast(P-1, excl+hist[d])
		scanX[d] = excl
		p.Barrier()
	}
	var base [radixBuckets]uint64
	for d := 1; d < radixBuckets; d++ {
		base[d] = base[d-1] + tot[d-1]
	}

	// Permute: every key goes to its global rank with a pipelined write
	// (stored as key+1 so verification can spot unwritten slots). The
	// closing barrier's store-sync implies delivery.
	var cnt [radixBuckets]uint64
	for i := 0; i < K; i++ {
		key := radixKeyAt(sh.seed, me, i, K)
		d := key & (radixBuckets - 1)
		p.ComputeUs(radixPermCostUs)
		g := base[d] + scanX[d] + cnt[d]
		owner := int(g) / K
		p.WriteWord(splitc.GPtr{Proc: int32(owner), Off: sh.dest[owner].Off + int32(int(g)%K)}, key+1)
		cnt[d]++
	}
	p.Barrier()

	if !verify {
		return
	}
	ok, storedSum := radixCheckLocal(p.Local(dest, K))
	p.ComputeUs(radixCheckCostUs * float64(K))
	if me > 0 {
		prev := p.ReadWord(splitc.GPtr{Proc: int32(me - 1), Off: sh.dest[me-1].Off + int32(K-1)})
		if !radixBoundaryOK(prev, p.Local(dest, K)[0]) {
			ok = false
		}
	}
	var inputSum uint64
	for i := 0; i < K; i++ {
		inputSum += radixKeyAt(sh.seed, me, i, K)
	}
	if p.AllReduceSum(storedSum-inputSum) != 0 {
		ok = false
	}
	sh.failed[me] = !ok
}

// radixCheckLocal scans one destination segment: every slot written,
// digits non-decreasing. Returns the segment's key sum.
func radixCheckLocal(seg []uint64) (bool, uint64) {
	ok := true
	var sum uint64
	for i, v := range seg {
		if v == 0 {
			ok = false
			continue
		}
		sum += v - 1
		if i > 0 && seg[i-1] != 0 && (seg[i-1]-1)&(radixBuckets-1) > (v-1)&(radixBuckets-1) {
			ok = false
		}
	}
	return ok, sum
}

// radixBoundaryOK checks the digit order across a processor boundary.
func radixBoundaryOK(prev, first uint64) bool {
	return prev != 0 && first != 0 && (prev-1)&(radixBuckets-1) <= (first-1)&(radixBuckets-1)
}

// radixTask is the continuation twin of radixBody.
type radixTask struct {
	sh     *radixShared
	verify bool

	pc      int
	d, i    int
	charged bool
	dest    splitc.GPtr
	ok      bool
	hist    [radixBuckets]uint64
	scanX   [radixBuckets]uint64
	tot     [radixBuckets]uint64
	base    [radixBuckets]uint64
	cnt     [radixBuckets]uint64
	stored  uint64
}

func (k *radixTask) Step(t *splitc.TProc) (sim.PollableWait, bool) {
	me, P, K := t.ID(), t.P(), k.sh.k
	for {
		switch k.pc {
		case 0:
			k.dest = t.Alloc(K)
			k.sh.dest[me] = k.dest
			k.pc = 1
		case 1:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			for i := 0; i < K; i++ {
				key := radixKeyAt(k.sh.seed, me, i, K)
				k.hist[key&(radixBuckets-1)]++
				t.ComputeUs(radixHistCostUs)
			}
			k.d = 0
			k.pc = 2
		case 2:
			v, wt := t.ScanAddT(k.hist[k.d])
			if wt != nil {
				return wt, false
			}
			k.scanX[k.d] = v
			k.pc = 3
		case 3:
			v, wt := t.BroadcastT(P-1, k.scanX[k.d]+k.hist[k.d])
			if wt != nil {
				return wt, false
			}
			k.tot[k.d] = v
			k.pc = 4
		case 4:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.d++
			if k.d < radixBuckets {
				k.pc = 2
				continue
			}
			for d := 1; d < radixBuckets; d++ {
				k.base[d] = k.base[d-1] + k.tot[d-1]
			}
			k.i = 0
			k.pc = 5
		case 5:
			// Resumptive permute: the compute charge lands once per key
			// (charged guards re-entry), and rank state advances only
			// after the write is issued, so a window-stalled WriteWordT
			// is re-called with identical arguments.
			for k.i < K {
				key := radixKeyAt(k.sh.seed, me, k.i, K)
				d := key & (radixBuckets - 1)
				if !k.charged {
					t.ComputeUs(radixPermCostUs)
					k.charged = true
				}
				g := k.base[d] + k.scanX[d] + k.cnt[d]
				owner := int(g) / K
				dst := splitc.GPtr{Proc: int32(owner), Off: k.sh.dest[owner].Off + int32(int(g)%K)}
				if wt := t.WriteWordT(dst, key+1); wt != nil {
					return wt, false
				}
				k.cnt[d]++
				k.i++
				k.charged = false
			}
			k.pc = 6
		case 6:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			if !k.verify {
				return nil, true
			}
			k.ok, k.stored = radixCheckLocal(t.Local(k.dest, K))
			t.ComputeUs(radixCheckCostUs * float64(K))
			k.pc = 7
		case 7:
			if me > 0 {
				prev, wt := t.ReadWordT(splitc.GPtr{Proc: int32(me - 1), Off: k.sh.dest[me-1].Off + int32(K - 1)})
				if wt != nil {
					return wt, false
				}
				if !radixBoundaryOK(prev, t.Local(k.dest, K)[0]) {
					k.ok = false
				}
			}
			k.pc = 8
		case 8:
			var inputSum uint64
			for i := 0; i < K; i++ {
				inputSum += radixKeyAt(k.sh.seed, me, i, K)
			}
			v, wt := t.AllReduceSumT(k.stored - inputSum)
			if wt != nil {
				return wt, false
			}
			if v != 0 {
				k.ok = false
			}
			k.sh.failed[me] = !k.ok
			return nil, true
		}
	}
}

var (
	_ apps.App    = Radix{}
	_ splitc.Task = (*radixTask)(nil)
)
