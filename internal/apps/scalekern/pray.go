// scale-pray: the request/reply kernel. Every processor publishes one
// scene word, then performs rounds of blocking reads from hash-selected
// partners — each a short request/reply round trip — folding the values
// into a local accumulator, with a closing all-reduce producing a scene
// checksum. This is the communication skeleton of the paper's P-Ray
// scene-cache lookups at weak scale: round count per processor fixed,
// partner selection scattering uniformly over all P processors.
package scalekern

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/splitc"
)

const (
	prayPaperRounds = 512  // lookup rounds per processor at Scale = 1
	prayRayCostUs   = 0.40 // per round: traverse to the cache miss
	prayShadeCostUs = 0.20 // per round: shade with the fetched value
)

// Pray is the scale-pray kernel. Blocking selects the coroutine twin.
type Pray struct {
	Blocking bool
}

func (a Pray) Name() string      { return blkSuffix("scale-pray", a.Blocking) }
func (Pray) PaperName() string   { return "P-Ray (scale)" }
func (a Pray) Description() string {
	return "Weak-scaling hashed-partner read/reply rounds (" + mode(a.Blocking) + " runtime)"
}

func prayRounds(cfg apps.Config) int {
	return apps.ScaleInt(prayPaperRounds, cfg.Scale, 8)
}

func (a Pray) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	return fmt.Sprintf("%d read rounds/proc, %d scene words", prayRounds(cfg), cfg.Procs)
}

// praySceneAt is the deterministic scene word owned by processor id.
func praySceneAt(seed int64, id int) uint64 {
	return splitmix64(uint64(seed)*0x2545F4914F6CDD1D ^ (uint64(id) + 1))
}

// prayPartner picks the round-r read target of processor me: a hash
// scattered over all processors, never the reader itself (when P > 1).
func prayPartner(seed int64, me, r, p int) int {
	q := int(splitmix64(uint64(seed)*0x9E3779B97F4A7C15^(uint64(me)<<20+uint64(r)+1)) % uint64(p))
	if q == me && p > 1 {
		q = (q + 1) % p
	}
	return q
}

// prayShared carries each processor's published scene slot, the
// verification flags, and the checksum from the closing all-reduce.
type prayShared struct {
	rounds   int
	seed     int64
	slot     []splitc.GPtr
	failed   []bool
	checksum uint64
}

// Run executes the kernel.
func (a Pray) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}
	sh := &prayShared{
		rounds: prayRounds(cfg),
		seed:   cfg.Seed,
		slot:   make([]splitc.GPtr, cfg.Procs),
		failed: make([]bool, cfg.Procs),
	}
	if a.Blocking {
		err = w.Run(func(p *splitc.Proc) { prayBody(p, sh, cfg.Verify) })
	} else {
		err = w.RunTasks(func(id int) splitc.Task {
			return &prayTask{sh: sh, verify: cfg.Verify}
		})
	}
	if err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify {
		for id, bad := range sh.failed {
			if bad {
				return apps.Result{}, fmt.Errorf("%s: verification failed on proc %d", a.Name(), id)
			}
		}
	}
	res := apps.Finish(a, cfg, w, cfg.Verify)
	res.Extra["rounds_per_proc"] = float64(sh.rounds)
	res.Extra["scene_checksum"] = float64(sh.checksum % (1 << 52))
	return res, nil
}

// prayBody is the blocking twin. The continuation task below makes the
// same primitive calls with the same compute charges, in the same order.
func prayBody(p *splitc.Proc, sh *prayShared, verify bool) {
	me, P := p.ID(), p.P()
	slot := p.Alloc(1)
	sh.slot[me] = slot
	p.WriteWord(slot, praySceneAt(sh.seed, me)) // local publish
	p.Barrier()

	var acc uint64
	ok := true
	for r := 0; r < sh.rounds; r++ {
		q := prayPartner(sh.seed, me, r, P)
		p.ComputeUs(prayRayCostUs)
		v := p.ReadWord(splitc.GPtr{Proc: int32(q), Off: sh.slot[q].Off})
		if v != praySceneAt(sh.seed, q) {
			ok = false
		}
		acc += splitmix64(v ^ uint64(r))
		p.ComputeUs(prayShadeCostUs)
	}
	sum := p.AllReduceSum(acc)
	if me == 0 {
		sh.checksum = sum
	}
	if verify {
		sh.failed[me] = !ok
	}
}

// prayTask is the continuation twin of prayBody.
type prayTask struct {
	sh     *prayShared
	verify bool

	pc      int
	r       int
	charged bool
	slot    splitc.GPtr
	acc     uint64
	ok      bool
}

func (k *prayTask) Step(t *splitc.TProc) (sim.PollableWait, bool) {
	me, P := t.ID(), t.P()
	for {
		switch k.pc {
		case 0:
			k.slot = t.Alloc(1)
			k.sh.slot[me] = k.slot
			t.WriteWordT(k.slot, praySceneAt(k.sh.seed, me)) // local: never stalls
			k.ok = true
			k.pc = 1
		case 1:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.r = 0
			k.pc = 2
		case 2:
			// Resumptive lookup loop: charged guards the per-round ray
			// cost so a parked read is re-entered without re-charging.
			for k.r < k.sh.rounds {
				q := prayPartner(k.sh.seed, me, k.r, P)
				if !k.charged {
					t.ComputeUs(prayRayCostUs)
					k.charged = true
				}
				v, wt := t.ReadWordT(splitc.GPtr{Proc: int32(q), Off: k.sh.slot[q].Off})
				if wt != nil {
					return wt, false
				}
				if v != praySceneAt(k.sh.seed, q) {
					k.ok = false
				}
				k.acc += splitmix64(v ^ uint64(k.r))
				t.ComputeUs(prayShadeCostUs)
				k.charged = false
				k.r++
			}
			k.pc = 3
		case 3:
			sum, wt := t.AllReduceSumT(k.acc)
			if wt != nil {
				return wt, false
			}
			if me == 0 {
				k.sh.checksum = sum
			}
			if k.verify {
				k.sh.failed[me] = !k.ok
			}
			return nil, true
		}
	}
}

var (
	_ apps.App    = Pray{}
	_ splitc.Task = (*prayTask)(nil)
)
