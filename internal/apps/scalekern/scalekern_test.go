package scalekern

import (
	"testing"

	"repro/internal/apps"
)

// kernelPairs lists each kernel with its blocking twin.
func kernelPairs() [][2]apps.App {
	return [][2]apps.App{
		{Radix{}, Radix{Blocking: true}},
		{Em3d{}, Em3d{Blocking: true}},
		{Pray{}, Pray{Blocking: true}},
	}
}

// TestKernelsMatchBlocking pins each kernel's continuation run against
// its coroutine twin: identical config → identical virtual makespan,
// message footprint, and (via Verify) identical answers.
func TestKernelsMatchBlocking(t *testing.T) {
	for _, pair := range kernelPairs() {
		cont, blk := pair[0], pair[1]
		for _, P := range []int{1, 2, 32, 64} {
			cfg := apps.Config{Procs: P, Seed: 7, Verify: true}
			rc, err := cont.Run(cfg)
			if err != nil {
				t.Fatalf("%s P=%d: %v", cont.Name(), P, err)
			}
			rb, err := blk.Run(cfg)
			if err != nil {
				t.Fatalf("%s P=%d: %v", blk.Name(), P, err)
			}
			if rc.Elapsed != rb.Elapsed {
				t.Errorf("%s P=%d: continuation elapsed %v, coroutine %v", cont.Name(), P, rc.Elapsed, rb.Elapsed)
			}
			if sc, sb := rc.Stats.TotalSent(), rb.Stats.TotalSent(); sc != sb {
				t.Errorf("%s P=%d: continuation sent %d messages, coroutine %d", cont.Name(), P, sc, sb)
			}
			if rc.Summary != rb.Summary {
				t.Errorf("%s P=%d: summaries differ:\n  continuation %+v\n  coroutine    %+v", cont.Name(), P, rc.Summary, rb.Summary)
			}
		}
	}
}

// TestKernelsDeterministic pins that two identical continuation runs
// produce the same virtual timeline.
func TestKernelsDeterministic(t *testing.T) {
	for _, a := range All() {
		var elapsed [2]float64
		var sent [2]int64
		for i := range elapsed {
			res, err := a.Run(apps.Config{Procs: 16, Seed: 3, Verify: true})
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			elapsed[i] = res.Elapsed.Seconds()
			sent[i] = res.Stats.TotalSent()
		}
		if elapsed[0] != elapsed[1] || sent[0] != sent[1] {
			t.Errorf("%s: nondeterministic runs: %v/%d vs %v/%d", a.Name(), elapsed[0], sent[0], elapsed[1], sent[1])
		}
	}
}

// TestByName pins the registry, including the -blk twins.
func TestByName(t *testing.T) {
	for _, name := range []string{"scale-radix", "scale-em3d", "scale-pray"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, a.Name())
		}
		b, err := ByName(name + "-blk")
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name+"-blk" {
			t.Errorf("ByName(%q).Name() = %q", name+"-blk", b.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}
