// Package scalekern holds the weak-scaling kernel suite: three small,
// communication-faithful kernels used to push the simulated machine far
// past the paper's 32 processors (the scale experiment runs them at up
// to P = 1M). Each kernel is written twice against the splitc layer —
// once as a blocking SPMD body for the coroutine runtime and once as a
// resumable Task state machine for the continuation runtime — with the
// same primitive calls and compute charges statement for statement, so
// the two modes produce identical virtual timelines (pinned by the
// package tests at small P).
//
// The kernels cover the three communication archetypes of the paper's
// suite:
//
//   - scale-radix — barrier-synchronized: a one-digit parallel counting
//     sort (histogram, prefix scans, permute via pipelined writes), the
//     communication skeleton of Radix.
//   - scale-em3d  — pipelined: iterations of short boundary writes plus
//     a bulk field push around a ring, the skeleton of EM3D.
//   - scale-pray  — request/reply: rounds of blocking reads from hashed
//     partners, the skeleton of P-Ray's scene-cache lookups.
//
// Work is sized per processor (weak scaling): Config.Scale sets the
// per-processor work, and total work grows linearly with P while the
// synchronization depth grows as log P.
package scalekern

import (
	"fmt"

	"repro/internal/apps"
)

// All returns the continuation-mode kernel suite in canonical order.
func All() []apps.App {
	return []apps.App{Radix{}, Em3d{}, Pray{}}
}

// Names lists the continuation-mode kernel names in canonical order.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name())
	}
	return out
}

// ByName resolves a kernel by name. The "-blk" suffix selects the
// blocking (coroutine-runtime) twin of a kernel, used by the
// cross-runtime equivalence tests.
func ByName(name string) (apps.App, error) {
	switch name {
	case "scale-radix":
		return Radix{}, nil
	case "scale-radix-blk":
		return Radix{Blocking: true}, nil
	case "scale-em3d":
		return Em3d{}, nil
	case "scale-em3d-blk":
		return Em3d{Blocking: true}, nil
	case "scale-pray":
		return Pray{}, nil
	case "scale-pray-blk":
		return Pray{Blocking: true}, nil
	}
	return nil, fmt.Errorf("scalekern: unknown kernel %q (have scale-radix, scale-em3d, scale-pray and their -blk twins)", name)
}

// splitmix64 is the kernels' deterministic hash: input generation and
// partner selection derive from it so both runtime modes (and reruns)
// see bit-identical inputs without touching the per-processor PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mode renders the runtime mode for descriptions.
func mode(blocking bool) string {
	if blocking {
		return "coroutine"
	}
	return "continuation"
}

// blkSuffix appends the blocking-twin name suffix.
func blkSuffix(name string, blocking bool) string {
	if blocking {
		return name + "-blk"
	}
	return name
}
