package scalekern

import (
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/splitc"
)

// TestSteadyStateFootprint pins the live heap per simulated processor
// after a continuation-runtime run, with the world still reachable —
// the steady-state footprint that decides whether P = 1M fits in
// memory. P = 10k is past every dense-instrumentation cutoff
// (statsDetailMaxP, denseWinMaxP = 4096), so the measurement covers
// the sparse large-P representations that the million-processor rung
// actually uses.
//
// Budgets are ~1.5x the measured values (radix ~5.5 KB, pray ~2.9 KB
// per processor at P = 10k), absorbing allocator and toolchain noise
// while still catching any per-processor cost that grows with machine
// size: an O(P) slip multiplies the figure a thousandfold at this P.
// Radix carries the largest budget because its per-bucket collective
// cells grow with the log P scan depth.
func TestSteadyStateFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second large-P runs")
	}
	const P = 10_000
	cases := []struct {
		name   string
		budget float64 // bytes per processor
		run    func(w *splitc.World, cfg apps.Config) error
	}{
		{"scale-radix", 8192, func(w *splitc.World, cfg apps.Config) error {
			sh := &radixShared{
				k:      radixKeys(cfg),
				seed:   cfg.Seed,
				dest:   make([]splitc.GPtr, cfg.Procs),
				failed: make([]bool, cfg.Procs),
			}
			return w.RunTasks(func(id int) splitc.Task { return &radixTask{sh: sh} })
		}},
		{"scale-pray", 4608, func(w *splitc.World, cfg apps.Config) error {
			sh := &prayShared{
				rounds: prayRounds(cfg),
				seed:   cfg.Seed,
				slot:   make([]splitc.GPtr, cfg.Procs),
				failed: make([]bool, cfg.Procs),
			}
			return w.RunTasks(func(id int) splitc.Task { return &prayTask{sh: sh} })
		}},
	}
	for _, tc := range cases {
		cfg := apps.Config{Procs: P, Seed: 1}.Norm()
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		w, err := apps.NewWorld(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := tc.run(w, cfg); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		perProc := float64(after.HeapAlloc-before.HeapAlloc) / P
		t.Logf("%s: %.0f live bytes/proc at P=%d", tc.name, perProc, P)
		if perProc > tc.budget {
			t.Errorf("%s: %.0f live bytes/proc at P=%d exceeds the %v-byte budget — a per-processor cost is growing with machine size",
				tc.name, perProc, P, tc.budget)
		}
		runtime.KeepAlive(w)
	}
}
