package scalekern

import (
	"testing"

	"repro/internal/apps"
)

// TestDepgraphFootprint pins the extracted DAG's memory per simulated
// processor at P = 10k for the weak-scaling kernels, extending
// TestSteadyStateFootprint's pattern to the analytic engine. The graph
// is message-proportional by design — ~4 arena nodes per message, with
// per-processor state bounded by pendFold — so bytes/proc must track
// per-processor work, not machine size: an O(P) slip in the builder
// (or growth in the arena's node/edge records) multiplies these figures
// and decides whether instrumenting the million-processor rung fits in
// memory.
//
// Budgets are ~1.5x the measured values at Scale = 1/256 (radix ~35 KB,
// em3d ~44 KB, pray ~13 KB per processor), absorbing work-floor drift
// while catching any asymptotic change. Radix and em3d carry the larger
// budgets because their per-processor message counts include the
// log P-deep scan and ring traffic.
func TestDepgraphFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second large-P instrumented runs")
	}
	const P = 10_000
	cases := []struct {
		name   string
		budget float64 // DAG bytes per processor
	}{
		{"scale-radix", 53248},
		{"scale-em3d", 66560},
		{"scale-pray", 20480},
	}
	for _, tc := range cases {
		a, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := apps.Config{Procs: P, Scale: 1.0 / 256, Seed: 1, Depgraph: true}.Norm()
		res, err := a.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.DepgraphErr != "" {
			t.Fatalf("%s: depgraph: %s", tc.name, res.DepgraphErr)
		}
		g := res.Graph
		perProc := float64(g.MemBytes()) / P
		t.Logf("%s: %d nodes, %d edges, %.0f DAG bytes/proc at P=%d", tc.name, g.NumNodes(), g.NumEdges(), perProc, P)
		if perProc > tc.budget {
			t.Errorf("%s: %.0f DAG bytes/proc at P=%d exceeds the %v-byte budget — a per-processor or per-record cost is growing",
				tc.name, perProc, P, tc.budget)
		}
	}
}
