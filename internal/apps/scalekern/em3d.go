// scale-em3d: the pipelined kernel. Processors form a ring; every
// iteration each one pushes D boundary words to both neighbors with
// pipelined short writes, bulk-puts its whole field block to the right
// neighbor, synchronizes, and relaxes its field against the received
// ghosts. This is the communication skeleton of the paper's EM3D —
// store-driven producer/consumer traffic — at weak scale: field size per
// processor fixed, barrier depth growing as log P.
package scalekern

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/splitc"
)

const (
	em3dGhostWords = 4 // D: boundary words exchanged with each neighbor

	em3dPaperWords    = 2048 // per-processor field words at Scale = 1
	em3dPaperIters    = 256  // relaxation iterations at Scale = 1
	em3dInitCostUs    = 0.02 // per word: field initialization
	em3dBoundCostUs   = 0.10 // per boundary word: pack value, issue send
	em3dUpdateCostUs  = 0.05 // per word: relaxation update
	em3dFieldMixConst = 2654435761
)

// Em3d is the scale-em3d kernel. Blocking selects the coroutine twin.
type Em3d struct {
	Blocking bool
}

func (a Em3d) Name() string      { return blkSuffix("scale-em3d", a.Blocking) }
func (Em3d) PaperName() string   { return "EM3D (scale)" }
func (a Em3d) Description() string {
	return "Weak-scaling ring relaxation with bulk ghost exchange (" + mode(a.Blocking) + " runtime)"
}

func em3dWords(cfg apps.Config) int {
	return apps.ScaleInt(em3dPaperWords, cfg.Scale, 16)
}

func em3dIters(cfg apps.Config) int {
	return apps.ScaleInt(em3dPaperIters, cfg.Scale, 3)
}

func (a Em3d) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	return fmt.Sprintf("%d field words/proc, %d ghost words/neighbor, %d iterations",
		em3dWords(cfg), em3dGhostWords, em3dIters(cfg))
}

// em3dInitAt is the deterministic initial field value.
func em3dInitAt(seed int64, me, i int) uint64 {
	return splitmix64(uint64(seed)*0xD1B54A32D192ED03 ^ (uint64(me)<<24 + uint64(i) + 1))
}

// em3dShared carries the cross-processor layout (each processor's ghost
// landing areas, published before the first barrier) and verification
// state.
type em3dShared struct {
	b, iters int
	seed     int64
	gl       []splitc.GPtr // written by the left neighbor (short writes)
	gr       []splitc.GPtr // written by the right neighbor (short writes)
	gb       []splitc.GPtr // left neighbor's field block (bulk put)
	sum      []uint64      // final per-processor field sum (verification)
}

// Run executes the kernel.
func (a Em3d) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}
	sh := &em3dShared{
		b:     em3dWords(cfg),
		iters: em3dIters(cfg),
		seed:  cfg.Seed,
		gl:    make([]splitc.GPtr, cfg.Procs),
		gr:    make([]splitc.GPtr, cfg.Procs),
		gb:    make([]splitc.GPtr, cfg.Procs),
	}
	if cfg.Verify {
		sh.sum = make([]uint64, cfg.Procs)
	}
	if a.Blocking {
		err = w.Run(func(p *splitc.Proc) { em3dBody(p, sh, cfg.Verify) })
	} else {
		err = w.RunTasks(func(id int) splitc.Task {
			return &em3dTask{sh: sh, verify: cfg.Verify}
		})
	}
	if err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify {
		want := em3dReference(cfg.Procs, sh.b, sh.iters, sh.seed)
		for id := range want {
			if sh.sum[id] != want[id] {
				return apps.Result{}, fmt.Errorf("%s: verification failed on proc %d (field sum %d, want %d)",
					a.Name(), id, sh.sum[id], want[id])
			}
		}
	}
	res := apps.Finish(a, cfg, w, cfg.Verify)
	res.Extra["field_words"] = float64(sh.b)
	res.Extra["iterations"] = float64(sh.iters)
	return res, nil
}

// em3dUpdate relaxes one field in place against its ghosts. In-place is
// safe: slot i reads only itself and ghost state.
func em3dUpdate(f, gl, gr, gb []uint64, iter int) {
	for i := range f {
		f[i] = f[i]*em3dFieldMixConst + gb[i] + gl[i%em3dGhostWords] + gr[i%em3dGhostWords] + uint64(iter)
	}
}

// em3dBody is the blocking twin. The continuation task below makes the
// same primitive calls with the same compute charges, in the same order.
func em3dBody(p *splitc.Proc, sh *em3dShared, verify bool) {
	me, P, B := p.ID(), p.P(), sh.b
	left := (me - 1 + P) % P
	right := (me + 1) % P
	gl := p.Alloc(em3dGhostWords)
	gr := p.Alloc(em3dGhostWords)
	gb := p.Alloc(B)
	field := p.Alloc(B)
	sh.gl[me], sh.gr[me], sh.gb[me] = gl, gr, gb
	f := p.Local(field, B)
	for i := range f {
		f[i] = em3dInitAt(sh.seed, me, i)
	}
	p.ComputeUs(em3dInitCostUs * float64(B))
	p.Barrier()

	for it := 0; it < sh.iters; it++ {
		// Boundary exchange: my low words go to the left neighbor's gr
		// (I am its right neighbor), my high words to the right
		// neighbor's gl.
		for j := 0; j < em3dGhostWords; j++ {
			p.ComputeUs(em3dBoundCostUs)
			p.WriteWord(splitc.GPtr{Proc: int32(left), Off: sh.gr[left].Off + int32(j)}, splitmix64(f[j]))
			p.ComputeUs(em3dBoundCostUs)
			p.WriteWord(splitc.GPtr{Proc: int32(right), Off: sh.gl[right].Off + int32(j)}, splitmix64(f[B-1-j]))
		}
		// Field push: the whole block to the right neighbor's bulk ghost.
		p.BulkPut(splitc.GPtr{Proc: int32(right), Off: sh.gb[right].Off}, f)
		p.Barrier() // store-sync implies all ghosts arrived
		em3dUpdate(f, p.Local(gl, em3dGhostWords), p.Local(gr, em3dGhostWords), p.Local(gb, B), it)
		p.ComputeUs(em3dUpdateCostUs * float64(B))
		p.Barrier() // neighbors must finish reading ghosts before the next wave lands
	}
	if verify {
		var sum uint64
		for _, v := range f {
			sum += v
		}
		sh.sum[me] = sum
	}
}

// em3dTask is the continuation twin of em3dBody.
type em3dTask struct {
	sh     *em3dShared
	verify bool

	pc      int
	it, j   int
	half    int
	charged bool
	gl, gr  splitc.GPtr
	gb      splitc.GPtr
	field   splitc.GPtr
}

func (k *em3dTask) Step(t *splitc.TProc) (sim.PollableWait, bool) {
	me, P, B := t.ID(), t.P(), k.sh.b
	left := (me - 1 + P) % P
	right := (me + 1) % P
	for {
		switch k.pc {
		case 0:
			k.gl = t.Alloc(em3dGhostWords)
			k.gr = t.Alloc(em3dGhostWords)
			k.gb = t.Alloc(B)
			k.field = t.Alloc(B)
			k.sh.gl[me], k.sh.gr[me], k.sh.gb[me] = k.gl, k.gr, k.gb
			f := t.Local(k.field, B)
			for i := range f {
				f[i] = em3dInitAt(k.sh.seed, me, i)
			}
			t.ComputeUs(em3dInitCostUs * float64(B))
			k.pc = 1
		case 1:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.it, k.j, k.half = 0, 0, 0
			k.pc = 2
		case 2:
			// Resumptive boundary exchange: half tracks which of the two
			// writes of word j is in flight, and charged guards the
			// per-write compute so a window stall never double-charges.
			f := t.Local(k.field, B)
			for k.j < em3dGhostWords {
				if k.half == 0 {
					if !k.charged {
						t.ComputeUs(em3dBoundCostUs)
						k.charged = true
					}
					dst := splitc.GPtr{Proc: int32(left), Off: k.sh.gr[left].Off + int32(k.j)}
					if wt := t.WriteWordT(dst, splitmix64(f[k.j])); wt != nil {
						return wt, false
					}
					k.charged = false
					k.half = 1
				}
				if !k.charged {
					t.ComputeUs(em3dBoundCostUs)
					k.charged = true
				}
				dst := splitc.GPtr{Proc: int32(right), Off: k.sh.gl[right].Off + int32(k.j)}
				if wt := t.WriteWordT(dst, splitmix64(f[B-1-k.j])); wt != nil {
					return wt, false
				}
				k.charged = false
				k.half = 0
				k.j++
			}
			k.pc = 3
		case 3:
			f := t.Local(k.field, B)
			if wt := t.BulkPutT(splitc.GPtr{Proc: int32(right), Off: k.sh.gb[right].Off}, f); wt != nil {
				return wt, false
			}
			k.pc = 4
		case 4:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			em3dUpdate(t.Local(k.field, B), t.Local(k.gl, em3dGhostWords), t.Local(k.gr, em3dGhostWords), t.Local(k.gb, B), k.it)
			t.ComputeUs(em3dUpdateCostUs * float64(B))
			k.pc = 5
		case 5:
			if wt := t.BarrierT(); wt != nil {
				return wt, false
			}
			k.it++
			if k.it < k.sh.iters {
				k.j, k.half = 0, 0
				k.pc = 2
				continue
			}
			if k.verify {
				var sum uint64
				for _, v := range t.Local(k.field, B) {
					sum += v
				}
				k.sh.sum[me] = sum
			}
			return nil, true
		}
	}
}

// em3dReference replays the relaxation in plain Go (no simulator) and
// returns the expected final per-processor field sums.
func em3dReference(P, B, iters int, seed int64) []uint64 {
	fields := make([][]uint64, P)
	for me := range fields {
		fields[me] = make([]uint64, B)
		for i := range fields[me] {
			fields[me][i] = em3dInitAt(seed, me, i)
		}
	}
	gls := make([][]uint64, P)
	grs := make([][]uint64, P)
	gbs := make([][]uint64, P)
	for it := 0; it < iters; it++ {
		// Snapshot pass: compute all ghosts from pre-update fields, then
		// update every field — matching the barrier-fenced exchange.
		for me := 0; me < P; me++ {
			left := (me - 1 + P) % P
			right := (me + 1) % P
			myGl := make([]uint64, em3dGhostWords)
			myGr := make([]uint64, em3dGhostWords)
			for j := 0; j < em3dGhostWords; j++ {
				// gl[me] is written by the left neighbor with its high words;
				// gr[me] by the right neighbor with its low words.
				myGl[j] = splitmix64(fields[left][B-1-j])
				myGr[j] = splitmix64(fields[right][j])
			}
			myGb := make([]uint64, B)
			copy(myGb, fields[left]) // left neighbor bulk-puts its field into my gb
			gls[me], grs[me], gbs[me] = myGl, myGr, myGb
		}
		for me := 0; me < P; me++ {
			em3dUpdate(fields[me], gls[me], grs[me], gbs[me], it)
		}
	}
	out := make([]uint64, P)
	for me, f := range fields {
		var sum uint64
		for _, v := range f {
			sum += v
		}
		out[me] = sum
	}
	return out
}

var (
	_ apps.App    = Em3d{}
	_ splitc.Task = (*em3dTask)(nil)
)
