package connect

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.001, // ~4000 nodes (64x64 mesh)
		Params: logp.NOW(),
		Seed:   11,
		Verify: true,
	}
}

func TestComponentsMatchSerial(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := New().Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: unverified", procs)
		}
	}
}

func TestSeedsChangeMesh(t *testing.T) {
	cfg := tinyCfg(4)
	m1 := buildMesh(cfg.Norm())
	cfg.Seed = 999
	m2 := buildMesh(cfg.Norm())
	same := true
	for i := range m1.right {
		if m1.right[i] != m2.right[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical meshes")
	}
}

func TestEdgeDensity(t *testing.T) {
	m := buildMesh(tinyCfg(4).Norm())
	count := 0
	for i := range m.right {
		if m.right[i] {
			count++
		}
		if m.down[i] {
			count++
		}
	}
	frac := float64(count) / float64(2*len(m.right))
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("edge density = %.3f, want ≈0.30", frac)
	}
}

func TestReadDominated(t *testing.T) {
	// Table 4: Connect is 67% reads.
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentReads < 30 {
		t.Errorf("reads = %.1f%%, want the read-dominated profile (paper 67%%)", res.Summary.PercentReads)
	}
	if res.Summary.PercentBulk > 5 {
		t.Errorf("bulk = %.1f%%, want ~0", res.Summary.PercentBulk)
	}
}

func TestModestLatencySensitivity(t *testing.T) {
	// Connect does reads, so it feels latency — but only modestly (its
	// communication-to-computation ratio is low).
	run := func(dL float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.DeltaL = sim.FromMicros(dL)
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base, slow := run(0), run(100)
	s := float64(slow) / float64(base)
	if s < 1.01 {
		t.Errorf("ΔL=100µs slowdown = %.3f, expected measurable effect", s)
	}
	if s > 6 {
		t.Errorf("ΔL=100µs slowdown = %.1f, paper shows at most ~4x for read apps", s)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
