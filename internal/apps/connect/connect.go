// Package connect implements the paper's Connect benchmark: parallel
// connected components over a sparse 2-D mesh (Lumetta, Krishnamurthy &
// Culler, Supercomputing '95). Paper input: a 4-million-node 2-D mesh with
// 30% of the lattice edges present.
//
// The graph is partitioned into row strips. Each processor first collapses
// its local subgraph with a sequential union-find (computation only); the
// global phase then merges components across strip boundaries with a
// distributed union-find whose parent words live in the global address
// space: finds chase parent pointers with blocking remote reads (Connect
// is 67% reads in Table 4) and unions hook roots with compare-and-swap.
package connect

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	nodeInitCostUs  = 3.0  // per node: allocate and initialize union-find state
	localEdgeCostUs = 2.5  // per intra-strip edge: find+union with cache misses
	stepCostUs      = 0.15 // per pointer-chase step in the global phase
)

const (
	paperNodes = 4_000_000
	edgeProb   = 0.30
)

// App is the Connect benchmark.
type App struct{}

// New returns the benchmark instance.
func New() App { return App{} }

func (App) Name() string        { return "connect" }
func (App) PaperName() string   { return "Connect" }
func (App) Description() string { return "Connected Components" }

// dims derives the scaled mesh. The mesh is 16× taller than wide so a
// strip's interior-to-boundary work ratio at scaled inputs stays close to
// the paper's 2000×2000 mesh on 32 processors (boundary work scales with
// the perimeter, local work with the area).
func dims(cfg apps.Config) (rows, cols int) {
	n := apps.ScaleInt(paperNodes, cfg.Scale, 64*cfg.Procs)
	side := 1
	for side*side < n {
		side++
	}
	rows, cols = side*4, (side+3)/4
	if rows < cfg.Procs {
		rows = cfg.Procs // at least one row per processor
	}
	return rows, cols
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	r, c := dims(cfg)
	return fmt.Sprintf("%dx%d mesh, %d%% connected", r, c, int(edgeProb*100))
}

// mesh holds the deterministic edge structure: for each node, whether its
// right and down lattice edges are present.
type mesh struct {
	rows, cols int
	right      []bool
	down       []bool
}

func buildMesh(cfg apps.Config) *mesh {
	rows, cols := dims(cfg)
	m := &mesh{rows: rows, cols: cols}
	m.right = make([]bool, rows*cols)
	m.down = make([]bool, rows*cols)
	s := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 12345
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	thresh := uint64(edgeProb * float64(^uint64(0)))
	for i := range m.right {
		m.right[i] = next() < thresh
		m.down[i] = next() < thresh
	}
	return m
}

// serialComponents labels each node with its component representative.
func (m *mesh) serialComponents() []int32 {
	n := m.rows * m.cols
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			id := int32(r*m.cols + c)
			if c+1 < m.cols && m.right[id] {
				union(id, id+1)
			}
			if r+1 < m.rows && m.down[id] {
				union(id, id+int32(m.cols))
			}
		}
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = find(int32(i))
	}
	return labels
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	m := buildMesh(cfg)
	P := cfg.Procs
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}

	parentArr := make([]splitc.GPtr, P)
	parentLoc := make([][]uint64, P) // captured local views for verification
	rowLo := make([]int, P+1)
	for q := 0; q <= P; q++ {
		lo, _ := apps.BlockRange(q, m.rows, P)
		rowLo[q] = lo
	}
	owner := func(node int) int {
		r := node / m.cols
		return apps.BlockOwner(r, m.rows, P)
	}
	gptrOf := func(node int) splitc.GPtr {
		q := owner(node)
		return parentArr[q].Add(node - rowLo[q]*m.cols)
	}

	body := func(p *splitc.Proc) {
		me := p.ID()
		lo, hi := rowLo[me], rowLo[me+1]
		nLocal := (hi - lo) * m.cols
		parentArr[me] = p.Alloc(maxInt(nLocal, 1))
		local := p.Local(parentArr[me], maxInt(nLocal, 1))
		parentLoc[me] = local
		base := lo * m.cols
		for i := 0; i < nLocal; i++ {
			local[i] = uint64(base + i)
		}
		p.Barrier()

		// Phase 1: collapse the local strip (sequential union-find over
		// intra-strip edges).
		find := func(x int) int {
			for int(local[x-base]) != x {
				nx := int(local[x-base])
				local[x-base] = local[nx-base] // path halving (local)
				x = int(local[x-base])
			}
			return x
		}
		edges := 0
		for r := lo; r < hi; r++ {
			for c := 0; c < m.cols; c++ {
				id := r*m.cols + c
				if c+1 < m.cols && m.right[id] {
					ra, rb := find(id), find(id+1)
					if ra != rb {
						if ra < rb {
							local[rb-base] = uint64(ra)
						} else {
							local[ra-base] = uint64(rb)
						}
					}
					edges++
				}
				if r+1 < hi && m.down[id] {
					ra, rb := find(id), find(id+m.cols)
					if ra != rb {
						if ra < rb {
							local[rb-base] = uint64(ra)
						} else {
							local[ra-base] = uint64(rb)
						}
					}
					edges++
				}
			}
			p.Poll()
		}
		p.ComputeUs(localEdgeCostUs*float64(edges) + nodeInitCostUs*float64(nLocal))
		p.Barrier()

		// Phase 2: merge across strip boundaries with the distributed
		// union-find. Each processor handles the boundary below its strip.
		gFind := func(x int) int {
			for {
				q := owner(x)
				var px int
				if q == me {
					px = int(local[x-base])
				} else {
					px = int(p.ReadWord(gptrOf(x)))
				}
				p.ComputeUs(stepCostUs)
				if px == x {
					return x
				}
				x = px
			}
		}
		gUnion := func(u, v int) {
			for {
				ru, rv := gFind(u), gFind(v)
				if ru == rv {
					return
				}
				hi, lo2 := ru, rv
				if hi < lo2 {
					hi, lo2 = lo2, hi
				}
				if p.CompareSwap(gptrOf(hi), uint64(hi), uint64(lo2)) {
					return
				}
			}
		}
		if me < P-1 && hi < m.rows {
			r := hi - 1
			for c := 0; c < m.cols; c++ {
				id := r*m.cols + c
				if m.down[id] {
					gUnion(id, id+m.cols)
				}
			}
		}
		p.Barrier()
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}

	if cfg.Verify {
		if err := verify(m, parentLoc, rowLo, P); err != nil {
			return apps.Result{}, err
		}
	}
	return apps.Finish(a, cfg, w, cfg.Verify), nil
}

// verify checks the distributed partition equals the serial one (as an
// equivalence relation; representative choice may differ).
func verify(m *mesh, parentLoc [][]uint64, rowLo []int, P int) error {
	n := m.rows * m.cols
	find := func(x int) int {
		for {
			q := apps.BlockOwner(x/m.cols, m.rows, P)
			px := int(parentLoc[q][x-rowLo[q]*m.cols])
			if px == x {
				return x
			}
			x = px
		}
	}
	serial := m.serialComponents()
	s2p := make(map[int32]int)
	p2s := make(map[int]int32)
	for i := 0; i < n; i++ {
		pr := find(i)
		sr := serial[i]
		if got, ok := s2p[sr]; ok {
			if got != pr {
				return fmt.Errorf("connect: node %d parallel root %d, expected class root %d", i, pr, got)
			}
		} else {
			s2p[sr] = pr
		}
		if got, ok := p2s[pr]; ok {
			if got != sr {
				return fmt.Errorf("connect: parallel root %d spans serial classes %d and %d", pr, got, sr)
			}
		} else {
			p2s[pr] = sr
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ apps.App = App{}
