// Package apps defines the benchmark-suite contract: each of the paper's
// ten applications implements App, runs its real algorithm on simulated
// processors (so answers can be verified), charges calibrated compute
// costs, and communicates only through the splitc / am layers.
package apps

import (
	"fmt"
	"sort"

	"repro/internal/am"
	"repro/internal/depgraph"
	"repro/internal/fault"
	"repro/internal/logp"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/splitc"
	"repro/internal/tolerance"
)

// Config controls an application run.
type Config struct {
	// Procs is the processor count (the paper uses 16 and 32).
	Procs int
	// Scale sizes the input relative to the paper's data set (Table 3).
	// 1.0 reproduces the paper's sizes; the default harness scale is
	// 1/64, which keeps a full sweep tractable in a simulator while
	// preserving per-processor communication structure.
	Scale float64
	// Params is the machine's LogGP parameterization.
	Params logp.Params
	// Seed makes input generation and scheduling deterministic.
	Seed int64
	// Verify enables the application's self-check against a serial
	// reference (sorted order, conserved checksums, field values, …).
	Verify bool
	// TimeLimit bounds virtual time; livelocked runs (Barnes at high
	// overhead) fail with sim.ErrTimeLimit instead of hanging.
	TimeLimit sim.Time
	// CPUSpeedup, when nonzero, makes local computation this many times
	// faster without touching communication costs (§5.5's tradeoff).
	CPUSpeedup float64
	// Profile attaches a prof.Profiler to the run and fills Result.Profile
	// with the per-processor stall attribution.
	Profile bool
	// Hooks, when non-nil, is attached to the world's instrumentation seam
	// (splitc.World.Attach) alongside any profiler.
	Hooks am.Hooks
	// FaultPlan, when non-nil and non-empty, is compiled with Seed into a
	// deterministic fault.Injector and attached to the machine. A lossy
	// plan (drops or duplications) requires Reliability.Enabled; NewWorld
	// rejects the combination otherwise, because a lossless-wire protocol
	// cannot survive a lossy wire.
	FaultPlan *fault.Plan
	// Reliability configures the AM-layer reliability protocol
	// (sequencing, dedup, acks, timeout retransmission).
	Reliability am.Reliability
	// Collectives selects the splitc collective algorithms (names from
	// internal/splitc/tune, or splitc.CollAuto to let the LogGP tuner
	// pick against Params). The zero value keeps the historical
	// defaults.
	Collectives splitc.Collectives
	// Depgraph attaches a depgraph.Builder to the run and fills
	// Result.Graph / Result.Curves with the parametric communication DAG
	// and its analytic makespan curves (internal/tolerance). The builder
	// requires a lossless, fault-free wire: NewWorld rejects the
	// combination with FaultPlan or Reliability.
	Depgraph bool
}

// DefaultScale is the harness-wide default input scale.
const DefaultScale = 1.0 / 64

// Norm fills in defaults.
func (c Config) Norm() Config {
	if c.Procs == 0 {
		c.Procs = 32
	}
	if c.Scale == 0 {
		c.Scale = DefaultScale
	}
	if c.Params == (logp.Params{}) {
		c.Params = logp.NOW()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result reports one application run.
type Result struct {
	App     string
	Procs   int
	Elapsed sim.Time
	// Summary is the Table 4 characterization of the run.
	Summary am.Summary
	// Stats is the raw instrumentation (Figure 4 matrix and friends).
	Stats *am.Stats
	// Verified is true when the self-check ran and passed.
	Verified bool
	// Extra carries app-specific measurements (failed lock attempts, …).
	Extra map[string]float64
	// Profile is the stall attribution of the run (nil unless
	// Config.Profile was set).
	Profile *prof.Profile
	// Sched reports the engine's scheduler counters for the run — the
	// axis the reprobench harness tracks across engine changes.
	Sched SchedCounters
	// Graph is the parametric communication DAG extracted from the run
	// (nil unless Config.Depgraph was set). Excluded from JSON: it is
	// message-proportional; persist Curves instead.
	Graph *depgraph.Graph `json:"-"`
	// Curves are the analytic makespan curves T(Δo), T(ΔL), T(Δg)
	// derived from Graph (nil unless Config.Depgraph was set and the
	// analysis self-check passed).
	Curves *tolerance.Curves
	// DepgraphErr records why graph extraction or analysis failed for a
	// Depgraph run ("" on success) — e.g. the run did something outside
	// the model's validity region.
	DepgraphErr string `json:",omitempty"`
}

// SchedCounters is the engine's scheduling cost profile for one run.
type SchedCounters struct {
	// Switches is the number of goroutine hand-offs performed.
	Switches int64
	// SwitchesSaved is the number of hand-offs the engine avoided
	// (fast-path parks and inline-driven wait iterations).
	SwitchesSaved int64
	// EventsRun is the number of discrete events executed.
	EventsRun int64
}

// App is one member of the benchmark suite.
type App interface {
	// Name is the short identifier used by the harness (for example
	// "radix" or "em3d-read").
	Name() string
	// PaperName is the label used in the paper's tables.
	PaperName() string
	// Description is the one-line Table 3 description.
	Description() string
	// InputDesc renders the effective input set for a config.
	InputDesc(cfg Config) string
	// Run executes the application and returns measurements. It must be
	// deterministic for a fixed config.
	Run(cfg Config) (Result, error)
}

// NewWorld builds the simulation world for a config.
func NewWorld(cfg Config) (*splitc.World, error) {
	w, err := splitc.NewWorldCfg(splitc.Config{
		Procs:       cfg.Procs,
		Params:      cfg.Params,
		Seed:        cfg.Seed,
		TimeLimit:   cfg.TimeLimit,
		Collectives: cfg.Collectives,
	})
	if err != nil {
		return nil, err
	}
	if cfg.CPUSpeedup > 0 {
		w.Machine().SetCPUFactor(cfg.CPUSpeedup)
	}
	if cfg.Reliability.Enabled {
		w.Machine().SetReliability(cfg.Reliability)
	}
	if cfg.FaultPlan != nil && !cfg.FaultPlan.Empty() {
		inj, err := fault.New(*cfg.FaultPlan, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if inj.Lossy() && !cfg.Reliability.Enabled {
			return nil, fmt.Errorf("apps: fault plan drops or duplicates messages; set Config.Reliability.Enabled")
		}
		w.Machine().SetFaults(inj)
	}
	var hs []am.Hooks
	if cfg.Hooks != nil {
		hs = append(hs, cfg.Hooks)
	}
	if cfg.Profile {
		hs = append(hs, prof.New(cfg.Procs))
	}
	if cfg.Depgraph {
		if cfg.FaultPlan != nil && !cfg.FaultPlan.Empty() {
			return nil, fmt.Errorf("apps: Depgraph cannot model a faulted wire; drop Config.FaultPlan")
		}
		if cfg.Reliability.Enabled {
			return nil, fmt.Errorf("apps: Depgraph cannot model retransmissions; drop Config.Reliability")
		}
		hs = append(hs, depgraph.New(cfg.Procs, cfg.Params))
	}
	if len(hs) > 0 {
		w.Attach(hs...)
	}
	return w, nil
}

// Finish assembles a Result from a completed world.
func Finish(app App, cfg Config, w *splitc.World, verified bool) Result {
	res := Result{
		App:      app.Name(),
		Procs:    cfg.Procs,
		Elapsed:  w.Elapsed(),
		Summary:  w.Stats().Summarize(w.Elapsed()),
		Stats:    w.Stats(),
		Verified: verified,
		Extra:    map[string]float64{},
		Sched: SchedCounters{
			Switches:      w.Engine().Switches(),
			SwitchesSaved: w.Engine().SwitchesSaved(),
			EventsRun:     w.Engine().EventsRun(),
		},
	}
	if pf := prof.Attached(w); pf != nil {
		res.Profile = pf.Snapshot(w)
	}
	if b := depgraphAttached(w); b != nil {
		g, err := b.Seal(w.Elapsed())
		if err != nil {
			res.DepgraphErr = err.Error()
			return res
		}
		res.Graph = g
		cs, err := tolerance.Analyze(g)
		if err != nil {
			res.DepgraphErr = err.Error()
			return res
		}
		res.Curves = cs
	}
	return res
}

// depgraphAttached returns the world's depgraph builder (nil when none).
func depgraphAttached(w *splitc.World) *depgraph.Builder {
	for _, h := range w.Attached() {
		if b, ok := h.(*depgraph.Builder); ok {
			return b
		}
	}
	return nil
}

// ScaleInt scales a paper-sized integer quantity, keeping at least min.
func ScaleInt(paper int, scale float64, min int) int {
	v := int(float64(paper)*scale + 0.5)
	if v < min {
		v = min
	}
	return v
}

// BlockOwner maps a global index to its owner under a block distribution
// of n items over p processors (owner of block ⌈n/p⌉·i .. ).
func BlockOwner(idx, n, p int) int {
	per := (n + p - 1) / p
	return idx / per
}

// BlockRange returns the [lo, hi) global index range owned by proc id.
func BlockRange(id, n, p int) (int, int) {
	per := (n + p - 1) / p
	lo := id * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// CheckSorted verifies a slice is non-decreasing (self-check helper).
func CheckSorted(keys []uint32) error {
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		return fmt.Errorf("apps: output not sorted")
	}
	return nil
}
