package murphi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	expandCostUs = 1.1 // per successor: rule firing + state canonicalization
	lookupCostUs = 0.7 // per successor: hash-table probe and insert
	assertCostUs = 0.4 // per state: invariant evaluation
)

// batchBytes is the state-batch flush threshold; Stern & Dill ship states
// in ~kilobyte batches (Table 4 shows ≈1.6 KB per bulk message).
const batchBytes = 1600

// App is the Mur-phi benchmark. The zero Model means DefaultModel (the
// protocol instance is the input — like the paper's, it does not scale
// with Config.Scale).
type App struct {
	Model Model
}

// New returns the benchmark instance with the default protocol model.
func New() App { return App{Model: DefaultModel()} }

func (App) Name() string        { return "murphi" }
func (App) PaperName() string   { return "Murφ" }
func (App) Description() string { return "Protocol Verification" }

func (a App) model() Model {
	if a.Model.Caches == 0 {
		return DefaultModel()
	}
	return a.Model
}

func (a App) InputDesc(cfg apps.Config) string {
	m := a.model()
	return fmt.Sprintf("MSI protocol, %d caches, %d values, channel depth %d/%d",
		m.Caches, m.Values, m.MemDepth, m.CacheDepth)
}

// serialExplore runs the reference BFS, returning the reachable-state
// count and the number of invariant violations.
func serialExplore(m Model) (int, int) {
	init := initialState()
	ik := init.pack(m)
	visited := map[key]bool{ik: true}
	frontier := []key{ik}
	violations := 0
	if !checkInvariant(m, &init) {
		violations++
	}
	var scratch []state
	for len(frontier) > 0 {
		var next []key
		for _, k := range frontier {
			s := unpack(k, m)
			scratch = successors(m, &s, scratch[:0])
			for i := range scratch {
				nk := scratch[i].pack(m)
				if !visited[nk] {
					visited[nk] = true
					if !checkInvariant(m, &scratch[i]) {
						violations++
					}
					next = append(next, nk)
				}
			}
		}
		frontier = next
	}
	return len(visited), violations
}

// hashKey maps a packed state to its owning processor.
func hashKey(k key) uint64 {
	z := k[0] ^ (k[1] * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	m := a.model()
	P := cfg.Procs
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}

	totalStates := uint64(0)
	totalViolations := uint64(0)

	// Handlers run on the RECEIVING processor, so per-processor state they
	// touch is dispatched through these shared arrays indexed by ep.ID() —
	// never through the sending body's closures.
	acceptFns := make([]func(key), P)
	recvCounts := make([]uint64, P)

	body := func(p *splitc.Proc) {
		me := p.ID()
		visited := make(map[key]bool)
		queue := make([]key, 0, 1024)
		var sentStates uint64
		violations := uint64(0)

		accept := func(k key) {
			if visited[k] {
				return
			}
			visited[k] = true
			s := unpack(k, m)
			if !checkInvariant(m, &s) {
				violations++
			}
			queue = append(queue, k)
		}
		acceptFns[me] = accept

		batches := make([][]byte, P)
		flush := func(dst int) {
			if len(batches[dst]) == 0 {
				return
			}
			buf := batches[dst]
			batches[dst] = nil
			p.EP().Store(dst, am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, args am.Args, data []byte) {
				for off := 0; off+16 <= len(data); off += 16 {
					var k key
					k[0] = binary.LittleEndian.Uint64(data[off:])
					k[1] = binary.LittleEndian.Uint64(data[off+8:])
					recvCounts[ep.ID()]++
					acceptFns[ep.ID()](k)
				}
			}, am.Args{}, buf)
		}
		emit := func(k key) {
			dst := int(hashKey(k) % uint64(P))
			if dst == me {
				accept(k)
				return
			}
			var rec [16]byte
			binary.LittleEndian.PutUint64(rec[:], k[0])
			binary.LittleEndian.PutUint64(rec[8:], k[1])
			batches[dst] = append(batches[dst], rec[:]...)
			sentStates++
			if len(batches[dst]) >= batchBytes {
				flush(dst)
			}
		}

		init := initialState()
		if int(hashKey(init.pack(m))%uint64(P)) == me {
			accept(init.pack(m))
		}
		p.Barrier()

		// Work loop with double-confirmation termination detection.
		scratch := make([]state, 0, 32)
		var lastSent, lastRecv uint64 = ^uint64(0), ^uint64(0)
		for {
			for len(queue) > 0 {
				k := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				s := unpack(k, m)
				scratch = successors(m, &s, scratch[:0])
				p.ComputeUs(expandCostUs*float64(len(scratch)) + assertCostUs)
				for i := range scratch {
					p.ComputeUs(lookupCostUs)
					emit(scratch[i].pack(m))
				}
				p.Poll()
			}
			for dst := range batches {
				flush(dst)
			}
			s := p.AllReduceSum(sentStates)
			r := p.AllReduceSum(recvCounts[me])
			q := p.AllReduceSum(uint64(len(queue)))
			if q == 0 && s == r {
				if s == lastSent && r == lastRecv {
					break // confirmed quiescent twice
				}
				lastSent, lastRecv = s, r
				continue
			}
			lastSent, lastRecv = ^uint64(0), ^uint64(0)
		}

		states := p.AllReduceSum(uint64(len(visited)))
		viols := p.AllReduceSum(violations)
		if me == 0 {
			totalStates = states
			totalViolations = viols
		}
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}

	res := apps.Finish(a, cfg, w, cfg.Verify)
	res.Extra["states"] = float64(totalStates)
	res.Extra["violations"] = float64(totalViolations)
	if cfg.Verify {
		wantStates, wantViol := serialExplore(m)
		if int(totalStates) != wantStates || int(totalViolations) != wantViol {
			return apps.Result{}, fmt.Errorf("murphi: explored %d states (%d violations), serial reference %d (%d)",
				totalStates, totalViolations, wantStates, wantViol)
		}
	}
	return res, nil
}

var _ apps.App = App{}
