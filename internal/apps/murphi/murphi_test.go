package murphi

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  1,
		Params: logp.NOW(),
		Seed:   13,
		Verify: true,
	}
}

func midApp() App { return App{Model: Model{Caches: 3, Values: 2, MemDepth: 2, CacheDepth: 2}} }

func TestParallelMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		a := App{Model: TinyModel()}
		res, err := a.Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if res.Extra["states"] <= 0 {
			t.Errorf("P=%d: no states recorded", procs)
		}
		if res.Extra["violations"] != 0 {
			t.Errorf("P=%d: violations = %v", procs, res.Extra["violations"])
		}
	}
}

func TestMidModelParallel(t *testing.T) {
	res, err := midApp().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Extra["states"]); got != 1696 {
		t.Errorf("states = %d, want 1696", got)
	}
}

func TestBulkHeavyTraffic(t *testing.T) {
	// Table 4: Mur-phi ships ~50% of its messages via the bulk mechanism
	// (batched state transfers).
	res, err := midApp().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentBulk < 10 {
		t.Errorf("bulk = %.1f%%, expected substantial batched traffic", res.Summary.PercentBulk)
	}
	if res.Summary.PercentReads > 5 {
		t.Errorf("reads = %.1f%%, murphi sends one-way state batches", res.Summary.PercentReads)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() sim.Time {
		res, err := midApp().Run(tinyCfg(4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestOverheadToleranceIsModest(t *testing.T) {
	// Mur-phi communicates infrequently relative to the sorts: the paper
	// measures ~3x slowdown at Δo=100µs (vs ~57x for Radix).
	run := func(dO float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.DeltaO = sim.FromMicros(dO)
		res, err := midApp().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base, slow := run(0), run(100)
	s := float64(slow) / float64(base)
	if s < 1.2 {
		t.Errorf("Δo=100 slowdown = %.2f, expected a measurable effect", s)
	}
	if s > 30 {
		t.Errorf("Δo=100 slowdown = %.2f, murphi should be far less o-sensitive than the sorts", s)
	}
}

func TestSeededBugIsDetected(t *testing.T) {
	// The verifier must catch the classic grant-before-all-acks race:
	// with the seeded bug, states with two modified copies are reachable.
	buggy := Model{Caches: 3, Values: 2, MemDepth: 2, CacheDepth: 2, InjectBug: true}
	n, v := serialExplore(buggy)
	if v == 0 {
		t.Fatalf("seeded protocol bug went undetected across %d states", n)
	}
	// The parallel exploration must find exactly the same violations.
	cfg := tinyCfg(4)
	cfg.Verify = true
	res, err := App{Model: buggy}.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["violations"] == 0 {
		t.Error("parallel exploration missed the violations")
	}
}

func TestCorrectProtocolHasNoViolations(t *testing.T) {
	for _, m := range []Model{TinyModel(), DefaultModel()} {
		if _, v := serialExplore(m); v != 0 {
			t.Errorf("model %+v: %d false violations", m, v)
		}
	}
}
