// Package murphi implements the paper's parallel Mur-phi benchmark (Stern
// & Dill, "Parallelizing the Mur-phi Verifier"): exhaustive exploration of
// a cache-coherence protocol's reachable state space, with states hashed
// to owning processors and shipped there in batched bulk messages.
//
// Substitution note: the paper verifies an SCI model; SCI's full rule set
// is thousands of lines of Mur-phi. We model an MSI write-invalidate
// protocol of the same shape — N caches, one line, one memory, explicit
// bounded channels, a small data-value domain — which exercises the
// identical exploration machinery (state encoding, hashing, successor
// generation, invariant checking, distributed work queues). The model
// size is configurable; the benchmark default reaches ~10^5..10^6 states.
package murphi

// Model sizes the protocol instance (and with it the state space).
type Model struct {
	Caches     int // number of caches (2..4)
	Values     int // data-value domain size (2..4)
	MemDepth   int // cache->memory channel capacity (1..3)
	CacheDepth int // memory->cache channel capacity (1..3)

	// InjectBug seeds the classic missing-invalidation race: memory
	// grants M after the FIRST InvAck instead of waiting for all of
	// them. The verifier must then reach states with two modified
	// copies — this is how the test suite proves the checker actually
	// detects protocol errors rather than rubber-stamping them.
	InjectBug bool
}

// DefaultModel is the benchmark instance: ≈45k reachable states (measured
// in the package tests), the largest configuration whose packed state
// fits the two-word wire format.
func DefaultModel() Model { return Model{Caches: 4, Values: 4, MemDepth: 2, CacheDepth: 2} }

// TinyModel is a quickly explorable instance for tests and examples.
func TinyModel() Model { return Model{Caches: 2, Values: 2, MemDepth: 1, CacheDepth: 1} }

// Cache states.
const (
	cacheI = iota
	cacheS
	cacheM
	cacheISD // issued GetS, awaiting Data
	cacheIMD // issued GetM, awaiting DataM
)

// Message types (0 = empty slot).
const (
	msgNone = iota
	msgGetS
	msgGetM
	msgPutM
	msgData
	msgDataM
	msgInv
	msgInvAck
)

const maxCaches = 4
const maxDepth = 3

// msg is one channel entry.
type msg struct {
	typ uint8
	val uint8
}

// state is an explicit protocol configuration. It is the Mur-phi "record":
// per-cache state and value, memory word with serialization bookkeeping,
// and bounded in-order channels.
type state struct {
	cacheSt  [maxCaches]uint8
	cacheVal [maxCaches]uint8
	memVal   uint8
	owner    uint8 // 0 none, else cache index + 1
	pending  uint8 // 0 idle, else requester index + 1
	acksLeft uint8
	toCache  [maxCaches][maxDepth]msg
	toMem    [maxCaches][maxDepth]msg
}

// key packs a state into two words for hashing and wire transfer. The
// packing is injective for all supported model sizes: 4 bits per cache
// (3 state + up to 2 value bits exceeds 4 — use 5), so fields get fixed
// generous widths summing under 128 bits.
type key [2]uint64

// pack serializes s into a key: caches 5 bits each (≤20), memory 8,
// channels 5 bits per entry (≤120 total across both words).
func (s *state) pack(m Model) key {
	var k key
	w, bit := 0, uint(0)
	put := func(v uint64, width uint) {
		if bit+width > 64 {
			w, bit = w+1, 0
			if w > 1 {
				panic("murphi: model too large for the 128-bit state encoding")
			}
		}
		k[w] |= v << bit
		bit += width
	}
	for i := 0; i < m.Caches; i++ {
		put(uint64(s.cacheSt[i]), 3)
		put(uint64(s.cacheVal[i]), 2)
	}
	put(uint64(s.memVal), 2)
	put(uint64(s.owner), 3)
	put(uint64(s.pending), 3)
	put(uint64(s.acksLeft), 2)
	for i := 0; i < m.Caches; i++ {
		for d := 0; d < m.CacheDepth; d++ {
			put(uint64(s.toCache[i][d].typ), 3)
			put(uint64(s.toCache[i][d].val), 2)
		}
		for d := 0; d < m.MemDepth; d++ {
			put(uint64(s.toMem[i][d].typ), 3)
			put(uint64(s.toMem[i][d].val), 2)
		}
	}
	return k
}

// unpack reverses pack.
func unpack(k key, m Model) state {
	var s state
	w, bit := 0, uint(0)
	get := func(width uint) uint64 {
		if bit+width > 64 {
			w, bit = w+1, 0
		}
		v := (k[w] >> bit) & ((1 << width) - 1)
		bit += width
		return v
	}
	for i := 0; i < m.Caches; i++ {
		s.cacheSt[i] = uint8(get(3))
		s.cacheVal[i] = uint8(get(2))
	}
	s.memVal = uint8(get(2))
	s.owner = uint8(get(3))
	s.pending = uint8(get(3))
	s.acksLeft = uint8(get(2))
	for i := 0; i < m.Caches; i++ {
		for d := 0; d < m.CacheDepth; d++ {
			s.toCache[i][d].typ = uint8(get(3))
			s.toCache[i][d].val = uint8(get(2))
		}
		for d := 0; d < m.MemDepth; d++ {
			s.toMem[i][d].typ = uint8(get(3))
			s.toMem[i][d].val = uint8(get(2))
		}
	}
	return s
}

func pushChan(q *[maxDepth]msg, depth int, typ, val uint8) bool {
	for d := 0; d < depth; d++ {
		if q[d].typ == msgNone {
			q[d] = msg{typ, val}
			return true
		}
	}
	return false
}

func popChan(q *[maxDepth]msg, depth int) {
	copy(q[:depth], q[1:depth])
	q[depth-1] = msg{}
}

// initialState: everything invalid and empty.
func initialState() state { return state{} }

// successors appends every state reachable in one rule firing.
func successors(m Model, s *state, out []state) []state {
	emit := func(ns state) { out = append(out, ns) }

	for i := 0; i < m.Caches; i++ {
		switch s.cacheSt[i] {
		case cacheI:
			ns := *s // load miss: GetS
			if pushChan(&ns.toMem[i], m.MemDepth, msgGetS, 0) {
				ns.cacheSt[i] = cacheISD
				emit(ns)
			}
			ns = *s // store miss: GetM
			if pushChan(&ns.toMem[i], m.MemDepth, msgGetM, 0) {
				ns.cacheSt[i] = cacheIMD
				emit(ns)
			}
		case cacheS:
			ns := *s // upgrade
			if pushChan(&ns.toMem[i], m.MemDepth, msgGetM, 0) {
				ns.cacheSt[i] = cacheIMD
				ns.cacheVal[i] = 0
				emit(ns)
			}
			ns = *s // silent eviction
			ns.cacheSt[i] = cacheI
			ns.cacheVal[i] = 0
			emit(ns)
		case cacheM:
			for v := 0; v < m.Values; v++ { // store any value
				if uint8(v) != s.cacheVal[i] {
					ns := *s
					ns.cacheVal[i] = uint8(v)
					emit(ns)
				}
			}
			ns := *s // writeback
			if pushChan(&ns.toMem[i], m.MemDepth, msgPutM, s.cacheVal[i]) {
				ns.cacheSt[i] = cacheI
				ns.cacheVal[i] = 0
				emit(ns)
			}
		}
		if head := s.toCache[i][0]; head.typ != msgNone {
			ns := *s
			popChan(&ns.toCache[i], m.CacheDepth)
			switch head.typ {
			case msgData:
				if s.cacheSt[i] == cacheISD {
					ns.cacheSt[i] = cacheS
					ns.cacheVal[i] = head.val
					emit(ns)
				}
			case msgDataM:
				if s.cacheSt[i] == cacheIMD {
					ns.cacheSt[i] = cacheM
					ns.cacheVal[i] = head.val
					emit(ns)
				}
			case msgInv:
				if pushChan(&ns.toMem[i], m.MemDepth, msgInvAck, 0) {
					if s.cacheSt[i] == cacheS || s.cacheSt[i] == cacheM {
						ns.cacheSt[i] = cacheI
						ns.cacheVal[i] = 0
					}
					emit(ns)
				}
			}
		}
	}

	for i := 0; i < m.Caches; i++ {
		head := s.toMem[i][0]
		if head.typ == msgNone {
			continue
		}
		base := *s
		popChan(&base.toMem[i], m.MemDepth)
		switch head.typ {
		case msgGetS:
			if s.pending == 0 && s.owner == 0 {
				ns := base
				if pushChan(&ns.toCache[i], m.CacheDepth, msgData, s.memVal) {
					emit(ns)
				}
			}
		case msgGetM:
			if s.pending == 0 && s.owner == 0 {
				ns := base
				ok := true
				for j := 0; j < m.Caches && ok; j++ {
					if j != i {
						ok = pushChan(&ns.toCache[j], m.CacheDepth, msgInv, 0)
					}
				}
				if ok {
					ns.pending = uint8(i) + 1
					ns.acksLeft = uint8(m.Caches - 1)
					emit(ns)
				}
			}
		case msgPutM:
			ns := base
			if s.owner == uint8(i)+1 {
				ns.memVal = head.val
				ns.owner = 0
			}
			emit(ns)
		case msgInvAck:
			if s.pending != 0 && s.acksLeft > 0 {
				ns := base
				ns.acksLeft--
				if m.InjectBug {
					// Seeded bug: grant M on the first ack, leaving the
					// other caches un-invalidated.
					ns.acksLeft = 0
				}
				if ns.acksLeft == 0 {
					req := int(s.pending - 1)
					if !pushChan(&ns.toCache[req], m.CacheDepth, msgDataM, s.memVal) {
						break // retry once the requester's channel drains
					}
					ns.pending = 0
					ns.owner = uint8(req) + 1
				}
				emit(ns)
			}
		}
	}
	return out
}

// checkInvariant enforces the single-writer property: a modified copy
// excludes every other valid copy (no second M, and no S alongside an M).
func checkInvariant(m Model, s *state) bool {
	modified, shared := 0, 0
	for i := 0; i < m.Caches; i++ {
		switch s.cacheSt[i] {
		case cacheM:
			modified++
		case cacheS:
			shared++
		}
	}
	if modified > 1 {
		return false
	}
	return modified == 0 || shared == 0
}
