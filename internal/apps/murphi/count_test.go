package murphi

import "testing"

func TestStateSpaceSizes(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    Model
		min  int
	}{
		{"tiny", TinyModel(), 50},
		{"default", DefaultModel(), 40000},
	} {
		n, v := serialExplore(tc.m)
		t.Logf("%s: reachable states %d, violations %d", tc.name, n, v)
		if v != 0 {
			t.Errorf("%s: protocol has %d invariant violations", tc.name, v)
		}
		if n < tc.min {
			t.Errorf("%s: state space only %d states (want >= %d)", tc.name, n, tc.min)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := DefaultModel()
	// Walk a few thousand reachable states and verify pack/unpack identity.
	init := initialState()
	seen := map[key]bool{init.pack(m): true}
	frontier := []state{init}
	var scratch []state
	for steps := 0; steps < 6 && len(frontier) > 0; steps++ {
		var next []state
		for i := range frontier {
			scratch = successors(m, &frontier[i], scratch[:0])
			for j := range scratch {
				k := scratch[j].pack(m)
				back := unpack(k, m)
				if back != scratch[j] {
					t.Fatalf("pack/unpack mismatch: %+v vs %+v", scratch[j], back)
				}
				if !seen[k] {
					seen[k] = true
					next = append(next, scratch[j])
				}
			}
		}
		frontier = next
	}
	if len(seen) < 100 {
		t.Errorf("walked only %d states", len(seen))
	}
}
