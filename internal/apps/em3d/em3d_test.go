package em3d

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.01, // 800 nodes
		Params: logp.NOW(),
		Seed:   5,
		Verify: true,
	}
}

func TestWriteMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 7} {
		a := NewWrite()
		a.Steps = 4
		res, err := a.Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: not verified", procs)
		}
	}
}

func TestReadMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 7} {
		a := NewRead()
		a.Steps = 4
		res, err := a.Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: not verified", procs)
		}
	}
}

func TestVariantsAgreeWithEachOther(t *testing.T) {
	// Both variants verify against the same serial reference for the same
	// seed, so their final states are equal by transitivity; check their
	// message patterns differ as the paper describes.
	wr := NewWrite()
	wr.Steps = 3
	rd := NewRead()
	rd.Steps = 3
	wres, err := wr.Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rd.Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if wres.Summary.PercentReads > 5 {
		t.Errorf("write variant reads = %.1f%%, want ~0", wres.Summary.PercentReads)
	}
	if rres.Summary.PercentReads < 80 {
		t.Errorf("read variant reads = %.1f%%, want >80 (paper: 97%%)", rres.Summary.PercentReads)
	}
	// The read variant sends roughly twice the messages (request+reply per
	// remote edge vs one write per remote edge).
	ratio := rres.Summary.AvgMsgsPerProc / wres.Summary.AvgMsgsPerProc
	if ratio < 1.3 || ratio > 2.8 {
		t.Errorf("read/write message ratio = %.2f, want ≈2", ratio)
	}
}

func TestLatencySensitivityOrdering(t *testing.T) {
	// The paper's headline for EM3D: the read version is latency-bound,
	// the write version largely latency-immune.
	slowdown := func(a App, dL float64) float64 {
		cfg := tinyCfg(4)
		base, err := a.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Params.DeltaL = sim.FromMicros(dL)
		slow, err := a.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(slow.Elapsed) / float64(base.Elapsed)
	}
	wr := NewWrite()
	wr.Steps = 3
	rd := NewRead()
	rd.Steps = 3
	sWrite := slowdown(wr, 100)
	sRead := slowdown(rd, 100)
	if sRead < 2 {
		t.Errorf("EM3D(read) slowdown at ΔL=100 = %.2f, want > 2", sRead)
	}
	if sWrite > sRead {
		t.Errorf("write variant (%.2f) more latency-sensitive than read (%.2f)", sWrite, sRead)
	}
}

func TestBulkSynchronousBarrierRate(t *testing.T) {
	a := NewWrite()
	a.Steps = 5
	res, err := a.Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// 3 barriers per step plus setup/teardown.
	if res.Stats.Barriers < 15 || res.Stats.Barriers > 20 {
		t.Errorf("barriers = %d, want ≈15-20 for 5 steps", res.Stats.Barriers)
	}
}

func TestGraphDeterminism(t *testing.T) {
	g1 := buildGraph(tinyCfg(4).Norm())
	g2 := buildGraph(tinyCfg(4).Norm())
	if g1.nPer != g2.nPer || g1.nEBnd[0] != g2.nEBnd[0] || len(g1.pushH[1]) != len(g2.pushH[1]) {
		t.Error("graph construction not deterministic")
	}
	if g1.nPer < 4 {
		t.Errorf("nPer = %d too small", g1.nPer)
	}
}

func TestRemoteFraction(t *testing.T) {
	g := buildGraph(apps.Config{Procs: 8, Scale: 0.2, Seed: 9}.Norm())
	totalEdges := 0
	remoteEdges := 0
	for p := 0; p < 8; p++ {
		for i := 0; i < g.nPer; i++ {
			totalEdges += len(g.eLocalDep[p][i]) + len(g.eBoundary[p][i])
			remoteEdges += len(g.eBoundary[p][i])
		}
	}
	frac := float64(remoteEdges) / float64(totalEdges)
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("remote edge fraction = %.2f, want ≈0.40", frac)
	}
}

func TestNames(t *testing.T) {
	if NewWrite().Name() != "em3d-write" || NewRead().Name() != "em3d-read" {
		t.Error("bad names")
	}
	if NewWrite().PaperName() != "EM3D(write)" || NewRead().PaperName() != "EM3D(read)" {
		t.Error("bad paper names")
	}
	if NewWrite().InputDesc(tinyCfg(4)) == "" {
		t.Error("empty input desc")
	}
}
