package em3d

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/splitc"
)

// App is one EM3D variant. Steps overrides the time-step count when
// nonzero (tests use a handful; the paper runs 100).
type App struct {
	ReadBased bool
	Steps     int
}

// NewWrite returns the write-based (push) variant.
func NewWrite() App { return App{ReadBased: false} }

// NewRead returns the read-based (pull) variant.
func NewRead() App { return App{ReadBased: true} }

func (a App) Name() string {
	if a.ReadBased {
		return "em3d-read"
	}
	return "em3d-write"
}

func (a App) PaperName() string {
	if a.ReadBased {
		return "EM3D(read)"
	}
	return "EM3D(write)"
}

func (a App) Description() string {
	return "Electro-magnetic wave propagation"
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	g := buildGraph(cfg)
	steps := a.steps(g)
	return fmt.Sprintf("%d nodes, %d%% remote, degree %d, %d steps",
		2*g.nPer*cfg.Procs, int(remoteFrac*100), degree, steps)
}

func (a App) steps(g *graph) int {
	if a.Steps > 0 {
		return a.Steps
	}
	return g.steps
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	g := buildGraph(cfg)
	g.steps = a.steps(g)
	P := cfg.Procs
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}

	eArr := make([]splitc.GPtr, P)
	hArr := make([]splitc.GPtr, P)
	eBndArr := make([]splitc.GPtr, P)
	hBndArr := make([]splitc.GPtr, P)

	// Read variant: remote dependencies as (src proc, src index), derived
	// from the push lists so both variants share one graph.
	var eRemote, hRemote [][]pushEntry
	if a.ReadBased {
		eRemote = make([][]pushEntry, P)
		hRemote = make([][]pushEntry, P)
		for p := 0; p < P; p++ {
			eRemote[p] = make([]pushEntry, g.nEBnd[p])
			hRemote[p] = make([]pushEntry, g.nHBnd[p])
		}
		for src := 0; src < P; src++ {
			for _, e := range g.pushH[src] {
				eRemote[e.dst][e.slot] = pushEntry{local: e.local, dst: int32(src)}
			}
			for _, e := range g.pushE[src] {
				hRemote[e.dst][e.slot] = pushEntry{local: e.local, dst: int32(src)}
			}
		}
	}

	verifyFailed := false
	body := func(p *splitc.Proc) {
		me := p.ID()
		nPer := g.nPer
		eArr[me] = p.Alloc(nPer)
		hArr[me] = p.Alloc(nPer)
		eBndArr[me] = p.Alloc(maxInt(g.nEBnd[me], 1))
		hBndArr[me] = p.Alloc(maxInt(g.nHBnd[me], 1))
		eVal := p.Local(eArr[me], nPer)
		hVal := p.Local(hArr[me], nPer)
		for i := 0; i < nPer; i++ {
			eVal[i] = initValue(0, me, i)
			hVal[i] = initValue(1, me, i)
		}
		p.Barrier()

		eBnd := p.Local(eBndArr[me], maxInt(g.nEBnd[me], 1))
		hBnd := p.Local(hBndArr[me], maxInt(g.nHBnd[me], 1))
		newVals := make([]uint64, nPer)

		computeSide := func(vals []uint64, localDep [][]int32, localW [][]uint64,
			bndIdx [][]int32, bndW [][]uint64, bnd []uint64, other []uint64,
			remote []pushEntry, otherArr []splitc.GPtr) {
			for i := 0; i < nPer; i++ {
				v := vals[i]
				deps := localDep[i]
				ws := localW[i]
				for k, j := range deps {
					v += ws[k] * other[j]
				}
				bs := bndIdx[i]
				bws := bndW[i]
				for k, s := range bs {
					if a.ReadBased {
						src := remote[s]
						rv := p.ReadWord(otherArr[src.dst].Add(int(src.local)))
						v += bws[k] * rv
					} else {
						v += bws[k] * bnd[s]
					}
				}
				p.ComputeUs(edgeCostUs*float64(len(deps)+len(bs)) + nodeCostUs)
				newVals[i] = v
			}
			copy(vals, newVals)
		}

		push := func(list pushList, vals []uint64, dstArr []splitc.GPtr) {
			for _, e := range list {
				p.WriteWord(dstArr[e.dst].Add(int(e.slot)), vals[e.local])
			}
		}

		for step := 0; step < g.steps; step++ {
			if a.ReadBased {
				computeSide(eVal, g.eLocalDep[me], g.eLocalW[me], g.eBoundary[me], g.eBndW[me], eBnd, hVal, eRemote[me], hArr)
				p.Barrier()
				computeSide(hVal, g.hLocalDep[me], g.hLocalW[me], g.hBoundary[me], g.hBndW[me], hBnd, eVal, hRemote[me], eArr)
				p.Barrier()
				continue
			}
			// Write-based: push H values into remote E-boundary copies,
			// compute E; push E, compute H; barrier so no push of the next
			// step lands under a reader.
			push(g.pushH[me], hVal, eBndArr)
			p.Barrier()
			computeSide(eVal, g.eLocalDep[me], g.eLocalW[me], g.eBoundary[me], g.eBndW[me], eBnd, hVal, nil, nil)
			push(g.pushE[me], eVal, hBndArr)
			p.Barrier()
			computeSide(hVal, g.hLocalDep[me], g.hLocalW[me], g.hBoundary[me], g.hBndW[me], hBnd, eVal, nil, nil)
			p.Barrier()
		}

		if cfg.Verify {
			p.Barrier()
			eRef, hRef := verifyRef(g, P)
			for i := 0; i < nPer; i++ {
				if eVal[i] != eRef[me][i] || hVal[i] != hRef[me][i] {
					verifyFailed = true
					break
				}
			}
		}
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify && verifyFailed {
		return apps.Result{}, fmt.Errorf("em3d: field values diverge from serial reference")
	}
	return apps.Finish(a, cfg, w, cfg.Verify), nil
}

// verifyRef memoizes the serial reference per graph (every proc calls it).
func verifyRef(g *graph, P int) ([][]uint64, [][]uint64) {
	if g.refE == nil {
		g.refE, g.refH = g.serialReference(P)
	}
	return g.refE, g.refH
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ apps.App = App{}
