// Package em3d implements the paper's EM3D benchmark: the kernel of a 3-D
// electromagnetic wave propagation code (Culler et al., "Parallel
// Programming in Split-C"). An irregular bipartite graph of E and H nodes
// is spread over the processors; each time-step updates every E value as a
// linear function of its H neighbors and vice versa.
//
// Two complementary variants reproduce the paper's pair:
//
//   - Write — the owner of a value pushes it to per-edge boundary-node
//     copies on remote readers with pipelined writes, then a barrier; a
//     representative bulk-synchronous application.
//   - Read — readers pull each remote value with a blocking read; the
//     paper's "worst case" latency-bound application (97% reads).
//
// Substitution note: field values are 64-bit integers with hash-derived
// edge weights (update: v += Σ w·neighbor mod 2⁶⁴), so parallel and serial
// executions agree exactly regardless of summation order; the
// communication structure is identical to the floating-point original.
package em3d

import (
	"repro/internal/apps"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	edgeCostUs = 0.45 // per edge: load weight, multiply-accumulate
	nodeCostUs = 0.60 // per node per step: loop overhead, stores
)

// Paper input (Table 3): 80000 nodes, 40% remote, degree 20, 100 steps.
const (
	paperNodes   = 80000
	degree       = 20
	remoteFrac   = 0.40
	defaultSteps = 100
	maxDist      = 3 // remote neighbors live within ±maxDist processors
)

// graph is the per-processor partition of the bipartite graph, built
// deterministically from the seed (input preparation happens outside
// simulated time, like reading an input deck).
type graph struct {
	nPer  int // E nodes per proc == H nodes per proc
	steps int

	// For reader r, localDep[r][i] lists local indices of same-side-local
	// dependencies of node i; remote dependencies arrive via boundary
	// slots boundaryOf[r][i].
	eLocalDep [][][]int32 // E node -> local H indices
	hLocalDep [][][]int32
	eBoundary [][][]int32 // E node -> indices into the proc's E-boundary array
	hBoundary [][][]int32
	// weights parallel the dependency lists (local first, then boundary).
	eLocalW [][][]uint64
	hLocalW [][][]uint64
	eBndW   [][][]uint64
	hBndW   [][][]uint64

	// push lists: for each owner proc, the remote boundary slots its
	// values feed. pushH[p] = (local H index, remote slot GPtr-less form:
	// dst proc + slot).
	pushH []pushList // H values feeding remote E-boundary slots
	pushE []pushList

	nEBnd []int // E-boundary slots per proc
	nHBnd []int

	// memoized serial reference (verification).
	refE, refH [][]uint64
}

type pushEntry struct {
	local int32 // local index of the value to push
	dst   int32 // destination processor
	slot  int32 // destination boundary slot
}

type pushList []pushEntry

// weight derives a small deterministic edge weight.
func weight(a, b, salt uint64) uint64 { return (a*2654435761 + b*40503 + salt) % 7 }

// buildGraph creates the partitioned bipartite graph.
func buildGraph(cfg apps.Config) *graph {
	P := cfg.Procs
	nNodes := apps.ScaleInt(paperNodes, cfg.Scale, 16*P)
	nPer := nNodes / (2 * P) // E and H nodes per proc
	if nPer < 4 {
		nPer = 4
	}
	g := &graph{nPer: nPer, steps: defaultSteps}
	g.eLocalDep = make([][][]int32, P)
	g.hLocalDep = make([][][]int32, P)
	g.eBoundary = make([][][]int32, P)
	g.hBoundary = make([][][]int32, P)
	g.eLocalW = make([][][]uint64, P)
	g.hLocalW = make([][][]uint64, P)
	g.eBndW = make([][][]uint64, P)
	g.hBndW = make([][][]uint64, P)
	g.pushH = make([]pushList, P)
	g.pushE = make([]pushList, P)
	g.nEBnd = make([]int, P)
	g.nHBnd = make([]int, P)

	rng := newSplitMix(uint64(cfg.Seed) | 1)
	for p := 0; p < P; p++ {
		g.eLocalDep[p] = make([][]int32, nPer)
		g.hLocalDep[p] = make([][]int32, nPer)
		g.eBoundary[p] = make([][]int32, nPer)
		g.hBoundary[p] = make([][]int32, nPer)
		g.eLocalW[p] = make([][]uint64, nPer)
		g.hLocalW[p] = make([][]uint64, nPer)
		g.eBndW[p] = make([][]uint64, nPer)
		g.hBndW[p] = make([][]uint64, nPer)
	}
	// Generate E-side dependencies (E reads H) and mirrored H-side
	// dependencies (H reads E) with independent draws, exactly degree
	// edges per node.
	for side := 0; side < 2; side++ {
		for p := 0; p < P; p++ {
			for i := 0; i < nPer; i++ {
				for d := 0; d < degree; d++ {
					remote := P > 1 && rng.float() < remoteFrac
					src := p
					if remote {
						span := maxDist
						if span > P-1 {
							span = P - 1
						}
						off := 1 + int(rng.next()%uint64(span))
						if rng.next()&1 == 0 {
							src = (p + off) % P
						} else {
							src = ((p-off)%P + P) % P
						}
					}
					j := int32(rng.next() % uint64(nPer))
					wgt := weight(uint64(p*nPer+i), uint64(src)*uint64(nPer)+uint64(j), uint64(side))
					if side == 0 { // E node (p,i) reads H node (src,j)
						if src == p {
							g.eLocalDep[p][i] = append(g.eLocalDep[p][i], j)
							g.eLocalW[p][i] = append(g.eLocalW[p][i], wgt)
						} else {
							slot := int32(g.nEBnd[p])
							g.nEBnd[p]++
							g.eBoundary[p][i] = append(g.eBoundary[p][i], slot)
							g.eBndW[p][i] = append(g.eBndW[p][i], wgt)
							g.pushH[src] = append(g.pushH[src], pushEntry{local: j, dst: int32(p), slot: slot})
						}
					} else { // H node (p,i) reads E node (src,j)
						if src == p {
							g.hLocalDep[p][i] = append(g.hLocalDep[p][i], j)
							g.hLocalW[p][i] = append(g.hLocalW[p][i], wgt)
						} else {
							slot := int32(g.nHBnd[p])
							g.nHBnd[p]++
							g.hBoundary[p][i] = append(g.hBoundary[p][i], slot)
							g.hBndW[p][i] = append(g.hBndW[p][i], wgt)
							g.pushE[src] = append(g.pushE[src], pushEntry{local: j, dst: int32(p), slot: slot})
						}
					}
				}
			}
		}
	}
	return g
}

// initValue is each node's deterministic starting field value.
func initValue(side, proc, idx int) uint64 {
	return uint64(side+1)*1_000_003 ^ uint64(proc)*7919 ^ uint64(idx)*104729
}

// serialReference runs the same computation on one Go thread, returning
// the final E and H values per proc. Used by Verify.
func (g *graph) serialReference(P int) (eRef, hRef [][]uint64) {
	eRef = make([][]uint64, P)
	hRef = make([][]uint64, P)
	for p := 0; p < P; p++ {
		eRef[p] = make([]uint64, g.nPer)
		hRef[p] = make([]uint64, g.nPer)
		for i := 0; i < g.nPer; i++ {
			eRef[p][i] = initValue(0, p, i)
			hRef[p][i] = initValue(1, p, i)
		}
	}
	// Reconstruct remote dependencies from the push lists: remote slot s
	// on proc p corresponds to pushH entries with dst=p, slot=s.
	eBndSrc := make([][]pushEntry, P) // slot -> source (proc, idx)
	hBndSrc := make([][]pushEntry, P)
	for p := 0; p < P; p++ {
		eBndSrc[p] = make([]pushEntry, g.nEBnd[p])
		hBndSrc[p] = make([]pushEntry, g.nHBnd[p])
	}
	for src := 0; src < P; src++ {
		for _, e := range g.pushH[src] {
			eBndSrc[e.dst][e.slot] = pushEntry{local: e.local, dst: int32(src)}
		}
		for _, e := range g.pushE[src] {
			hBndSrc[e.dst][e.slot] = pushEntry{local: e.local, dst: int32(src)}
		}
	}
	for step := 0; step < g.steps; step++ {
		newE := make([][]uint64, P)
		for p := 0; p < P; p++ {
			newE[p] = make([]uint64, g.nPer)
			for i := 0; i < g.nPer; i++ {
				v := eRef[p][i]
				for k, j := range g.eLocalDep[p][i] {
					v += g.eLocalW[p][i][k] * hRef[p][j]
				}
				for k, s := range g.eBoundary[p][i] {
					src := eBndSrc[p][s]
					v += g.eBndW[p][i][k] * hRef[src.dst][src.local]
				}
				newE[p][i] = v
			}
		}
		for p := 0; p < P; p++ {
			copy(eRef[p], newE[p])
		}
		newH := make([][]uint64, P)
		for p := 0; p < P; p++ {
			newH[p] = make([]uint64, g.nPer)
			for i := 0; i < g.nPer; i++ {
				v := hRef[p][i]
				for k, j := range g.hLocalDep[p][i] {
					v += g.hLocalW[p][i][k] * eRef[p][j]
				}
				for k, s := range g.hBoundary[p][i] {
					src := hBndSrc[p][s]
					v += g.hBndW[p][i][k] * eRef[src.dst][src.local]
				}
				newH[p][i] = v
			}
		}
		for p := 0; p < P; p++ {
			copy(hRef[p], newH[p])
		}
	}
	return eRef, hRef
}

// splitMix is a tiny deterministic PRNG for graph construction, kept
// separate from the simulator's per-proc streams.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitMix) float() float64 { return float64(r.next()>>11) / (1 << 53) }
