package suite

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.0004,
		Params: logp.NOW(),
		Seed:   31,
		Verify: true,
	}
}

func TestSuiteContents(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("suite has %d apps, want 10", len(all))
	}
	want := []string{"radix", "em3d-write", "em3d-read", "sample", "barnes",
		"pray", "connect", "murphi", "nowsort", "radb"}
	for i, name := range want {
		if all[i].Name() != name {
			t.Errorf("suite[%d] = %s, want %s", i, all[i].Name(), name)
		}
		if all[i].PaperName() == "" || all[i].Description() == "" {
			t.Errorf("%s: missing metadata", name)
		}
	}
	if _, err := ByName("radix"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown app")
	}
}

// TestEveryAppVerifiesAtOddP runs the entire suite with verification at a
// non-power-of-two processor count — the configuration most likely to
// expose collective and partitioning bugs.
func TestEveryAppVerifiesAtOddP(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			res, err := a.Run(tinyCfg(5))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Error("not verified")
			}
			if res.Elapsed <= 0 {
				t.Error("no virtual time elapsed")
			}
			if res.Summary.AvgMsgsPerProc <= 0 {
				t.Error("no communication recorded")
			}
		})
	}
}

// TestEveryAppSingleProcessor checks the degenerate P=1 case end-to-end.
func TestEveryAppSingleProcessor(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			res, err := a.Run(tinyCfg(1))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Error("not verified")
			}
		})
	}
}

// TestEveryAppDeterministic runs each app twice and demands identical
// virtual timelines and message counts.
func TestEveryAppDeterministic(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			cfg := tinyCfg(4)
			cfg.Verify = false
			r1, err := a.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := a.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Elapsed != r2.Elapsed {
				t.Errorf("elapsed %v vs %v", r1.Elapsed, r2.Elapsed)
			}
			if r1.Stats.TotalSent() != r2.Stats.TotalSent() {
				t.Errorf("messages %d vs %d", r1.Stats.TotalSent(), r2.Stats.TotalSent())
			}
		})
	}
}

// TestEveryAppSurvivesDegradedMachine runs each app (unverified, small)
// under simultaneously degraded parameters — all four knobs at once, a
// configuration no single-parameter sweep exercises.
func TestEveryAppSurvivesDegradedMachine(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			cfg := tinyCfg(4)
			cfg.Verify = false
			cfg.Params.DeltaO = sim.FromMicros(10)
			cfg.Params.DeltaG = sim.FromMicros(10)
			cfg.Params.DeltaL = sim.FromMicros(25)
			cfg.Params.BulkBandwidthMBs = 5
			base, err := a.Run(tinyCfg(4))
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed < base.Elapsed {
				t.Errorf("degraded machine ran faster: %v vs %v", res.Elapsed, base.Elapsed)
			}
		})
	}
}

// TestCPUSpeedupNeverHurts doubles compute speed for every app.
func TestCPUSpeedupNeverHurts(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			cfg := tinyCfg(4)
			cfg.Verify = false
			base, err := a.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.CPUSpeedup = 2
			fast, err := a.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Elapsed > base.Elapsed {
				t.Errorf("2x CPU slowed %s: %v -> %v", a.Name(), base.Elapsed, fast.Elapsed)
			}
		})
	}
}
