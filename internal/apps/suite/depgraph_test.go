package suite

import (
	"testing"

	"repro/internal/apps"
)

// TestDepgraphAllApps pins the analytic engine's coverage of the full
// benchmark suite: every app's instrumented run must extract a DAG
// whose longest path reproduces the run's makespan on every axis —
// tolerance.Analyze self-checks Base() against the run's elapsed time
// and Finish surfaces any disagreement through DepgraphErr. A failure
// here means some communication pattern (a new primitive, a new wait
// shape) is charged by the machine but not captured by the graph
// builder's event hooks.
func TestDepgraphAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented runs of the full suite")
	}
	for _, a := range All() {
		t.Run(a.Name(), func(t *testing.T) {
			cfg := apps.Config{Procs: 8, Scale: 1.0 / 2048, Depgraph: true}.Norm()
			res, err := a.Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.DepgraphErr != "" {
				t.Fatalf("depgraph: %s", res.DepgraphErr)
			}
			if res.Graph == nil || res.Curves == nil {
				t.Fatal("instrumented run returned no graph or curves")
			}
			for _, axis := range []string{"o", "L", "g"} {
				c, ok := res.Curves.ByAxis(axis)
				if !ok {
					t.Fatalf("no %s curve", axis)
				}
				if c.Base() != res.Elapsed {
					t.Errorf("Δ%s: Base() = %d, run elapsed %d", axis, c.Base(), res.Elapsed)
				}
			}
		})
	}
}
