// Package suite assembles the paper's ten-application benchmark suite in
// Table 4 order.
package suite

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/barnes"
	"repro/internal/apps/connect"
	"repro/internal/apps/em3d"
	"repro/internal/apps/murphi"
	"repro/internal/apps/nowsort"
	"repro/internal/apps/pray"
	"repro/internal/apps/radb"
	"repro/internal/apps/radix"
	"repro/internal/apps/sample"
)

// All returns the full benchmark suite in the paper's Table 4 order.
func All() []apps.App {
	return []apps.App{
		radix.New(),
		em3d.NewWrite(),
		em3d.NewRead(),
		sample.New(),
		barnes.New(),
		pray.New(),
		connect.New(),
		murphi.New(),
		nowsort.New(),
		radb.New(),
	}
}

// Names lists the suite's application names in order.
func Names() []string {
	var ns []string
	for _, a := range All() {
		ns = append(ns, a.Name())
	}
	return ns
}

// ByName finds an application by its short name.
func ByName(name string) (apps.App, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown application %q (have %v)", name, Names())
}
