// Package radix implements the paper's Radix sort benchmark: a two-pass
// parallel radix sort of 32-bit keys (paper input: 16 million keys),
// following the Split-C implementation analyzed in Dusseau et al., "Fast
// Parallel Sorting Under LogP" (IEEE TPDS 1996).
//
// Each pass has three phases:
//
//  1. Local rank — count the occurrences of each digit locally
//     (computation only).
//  2. Global histogram — ranks are accumulated across processors in a
//     pipelined cyclic shift: processor i forwards, bucket by bucket, the
//     running count of keys with each digit held by processors ≤ i. One
//     short write per bucket per hop; the phase carries a serialization
//     proportional to radix × P, which is exactly the "serialization
//     effect" §5.1 of the paper dissects (Radix's overhead sensitivity
//     grows with P at fixed input).
//  3. Distribution — every key is written directly to its final global
//     position with a pipelined remote store: one short message per key.
//
// The key range is bounded to radix² so two passes fully sort, preserving
// the paper's pass structure at every input scale (the paper's 16M keys
// with a 2^16 radix scale down together).
package radix

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC):
const (
	countCostUs = 0.055 // per key: load, extract digit, increment counter
	chainCostUs = 0.040 // per bucket per hop: add and forward
	placeCostUs = 0.085 // per key: compute destination, issue store
)

const paperKeys = 16_000_000

// App is the Radix benchmark.
type App struct{}

// New returns the benchmark instance.
func New() App { return App{} }

func (App) Name() string      { return "radix" }
func (App) PaperName() string { return "Radix" }
func (App) Description() string {
	return "Integer radix sort"
}

// sizes derives the scaled input: total keys and the radix (digit size)
// chosen to keep the histogram/distribution message ratio of the paper.
func sizes(cfg apps.Config) (n, radix int) {
	n = apps.ScaleInt(paperKeys, cfg.Scale, 64*cfg.Procs)
	// Paper: 16M keys sorted with a 2^16 radix in two passes; keep
	// radix ≈ sqrt(key range) with the same keys-per-proc/radix ratio.
	perProc := n / cfg.Procs
	bits := int(math.Round(math.Log2(float64(perProc) * 65536 / 500000)))
	if bits < 6 {
		bits = 6
	}
	if bits > 16 {
		bits = 16
	}
	radix = 1 << bits
	return n, radix
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	n, radix := sizes(cfg)
	return fmt.Sprintf("%d keys in [0,%d), radix %d, 2 passes", n, radix*radix, radix)
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	n, radix := sizes(cfg)
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}
	P := cfg.Procs
	digitBits := uint(math.Ilogb(float64(radix)))

	// Published global structures (indexed by proc, filled before the
	// first barrier).
	destArr := make([]splitc.GPtr, P)  // destination key blocks
	chainArr := make([]splitc.GPtr, P) // incoming running counts
	offArr := make([]splitc.GPtr, P)   // global bucket offsets
	flagArr := make([]splitc.GPtr, P)  // offsets-ready flags
	boundArr := make([]splitc.GPtr, P) // first key per proc (verification)
	verifyFailed := false

	var checkSum, checkCount uint64 // filled under Verify on proc 0

	body := func(p *splitc.Proc) {
		me := p.ID()
		lo, hi := apps.BlockRange(me, n, P)
		mine := hi - lo

		// Deterministic per-proc key generation, bounded to radix².
		keys := make([]uint32, mine)
		rng := p.Rand()
		keyRange := radix * radix // ≤ 2^32, fits int on 64-bit
		var localSum uint64
		for i := range keys {
			keys[i] = uint32(rng.Intn(keyRange))
			localSum += uint64(keys[i])
		}

		destArr[me] = p.Alloc(mine)
		chainArr[me] = p.Alloc(radix)
		offArr[me] = p.Alloc(radix)
		flagArr[me] = p.Alloc(1)
		boundArr[me] = p.Alloc(1)
		p.Barrier()

		for pass := 0; pass < 2; pass++ {
			shift := uint(pass) * digitBits
			mask := uint32(radix - 1)

			// Phase 1: local rank.
			p.EnterPhase("local-rank")
			counts := make([]uint64, radix)
			for i, k := range keys {
				counts[(k>>shift)&mask]++
				if i%4096 == 4095 {
					p.Poll()
				}
			}
			p.ComputeUs(countCostUs * float64(len(keys)))

			// Phase 2: global histogram, pipelined cyclic shift.
			p.EnterPhase("histogram")
			const sentinel = ^uint64(0)
			chain := p.Local(chainArr[me], radix)
			for b := range chain {
				chain[b] = sentinel
			}
			p.Barrier()

			myStart := make([]uint64, radix)
			totals := p.Local(offArr[me], radix) // reused as scratch on P-1
			if me == 0 {
				for b := 0; b < radix; b++ {
					if P > 1 {
						p.WriteWord(chainArr[1].Add(b), counts[b])
					} else {
						totals[b] = counts[b]
					}
					p.ComputeUs(chainCostUs)
				}
			} else {
				for b := 0; b < radix; b++ {
					bb := b
					p.EP().WaitUntil(func() bool { return chain[bb] != sentinel }, "radix: histogram chain")
					myStart[b] = chain[b]
					next := chain[b] + counts[b]
					if me < P-1 {
						p.WriteWord(chainArr[me+1].Add(b), next)
					} else {
						totals[b] = next
					}
					p.ComputeUs(chainCostUs)
				}
			}

			// Processor P-1 turns totals into exclusive global offsets and
			// broadcasts them (a rare bulk transfer: Radix is 0.01% bulk).
			if me == P-1 {
				var run uint64
				offs := make([]uint64, radix)
				for b := 0; b < radix; b++ {
					t := totals[b]
					offs[b] = run
					run += t
					p.ComputeUs(chainCostUs / 2)
				}
				for q := 0; q < P; q++ {
					if q == me {
						copy(p.Local(offArr[me], radix), offs)
						p.Local(flagArr[me], 1)[0] = uint64(pass) + 1
						continue
					}
					p.BulkPut(offArr[q], offs)
					p.WriteWord(flagArr[q], uint64(pass)+1)
				}
			}
			if P > 1 {
				flag := p.Local(flagArr[me], 1)
				want := uint64(pass) + 1
				p.EP().WaitUntil(func() bool { return flag[0] >= want }, "radix: await offsets")
			}
			gOff := p.Local(offArr[me], radix)

			// Phase 3: distribution. Every key goes to its exact global
			// slot: gOff[digit] + (keys with this digit on lower procs) +
			// local running rank.
			p.EnterPhase("distribution")
			rank := make([]uint64, radix)
			for _, k := range keys {
				b := (k >> shift) & mask
				pos := int(gOff[b] + myStart[b] + rank[b])
				rank[b]++
				owner := apps.BlockOwner(pos, n, P)
				qlo, _ := apps.BlockRange(owner, n, P)
				p.WriteWord(destArr[owner].Add(pos-qlo), uint64(k))
				p.ComputeUs(placeCostUs)
			}
			p.Barrier() // barrier implies all stores landed

			dst := p.Local(destArr[me], mine)
			for i := range keys {
				keys[i] = uint32(dst[i])
			}
			p.Barrier()
		}

		p.EnterPhase("wrap-up")
		if cfg.Verify {
			// Sorted within the block, sorted across block boundaries, and
			// key multiset conserved (count + sum).
			for i := 1; i < len(keys); i++ {
				if keys[i-1] > keys[i] {
					verifyFailed = true
				}
			}
			if mine > 0 {
				p.WriteWord(boundArr[me], uint64(keys[0])+1) // +1: distinguish from empty
			}
			p.Barrier()
			if mine > 0 && me < P-1 {
				nb := p.ReadWord(boundArr[me+1])
				if nb != 0 && uint64(keys[mine-1]) > nb-1 {
					verifyFailed = true
				}
			}
			var sum uint64
			for _, k := range keys {
				sum += uint64(k)
			}
			gotSum := p.AllReduceSum(sum)
			gotCount := p.AllReduceSum(uint64(mine))
			wantSum := p.AllReduceSum(localSum)
			if me == 0 {
				checkSum, checkCount = gotSum, gotCount
				if gotSum != wantSum || gotCount != uint64(n) {
					verifyFailed = true
				}
			}
		}
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify && verifyFailed {
		return apps.Result{}, fmt.Errorf("radix: verification failed (sum=%d count=%d n=%d)", checkSum, checkCount, n)
	}
	res := apps.Finish(a, cfg, w, cfg.Verify)
	for _, name := range w.PhaseNames() {
		res.Extra["phase:"+name] = w.PhaseFraction(name)
	}
	return res, nil
}

var _ apps.App = App{}
