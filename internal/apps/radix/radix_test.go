package radix

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.0005, // 8000 keys
		Params: logp.NOW(),
		Seed:   3,
		Verify: true,
	}
}

func TestSortsCorrectly(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := New().Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: not verified", procs)
		}
		if res.Elapsed == 0 {
			t.Errorf("P=%d: zero elapsed", procs)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Summary.AvgMsgsPerProc != b.Summary.AvgMsgsPerProc {
		t.Errorf("nondeterministic: %v/%v vs %v/%v", a.Elapsed, a.Summary.AvgMsgsPerProc, b.Elapsed, b.Summary.AvgMsgsPerProc)
	}
}

func TestCommunicationShape(t *testing.T) {
	// Radix is write-based with almost no bulk traffic and heavy
	// short-message rates (paper Table 4: 0.00% reads, 0.01% bulk).
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentReads > 5 {
		t.Errorf("reads = %.2f%%, want ~0 (write-based app)", res.Summary.PercentReads)
	}
	if res.Summary.PercentBulk > 5 {
		t.Errorf("bulk = %.2f%%, want ~0", res.Summary.PercentBulk)
	}
	if res.Summary.AvgMsgsPerProc < 100 {
		t.Errorf("avg msgs/proc = %.0f, suspiciously low", res.Summary.AvgMsgsPerProc)
	}
}

func TestOverheadSensitivity(t *testing.T) {
	// The headline result: Radix slows dramatically under added overhead,
	// and roughly linearly.
	run := func(deltaO float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.DeltaO = sim.FromMicros(deltaO)
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base := run(0)
	mid := run(25)
	high := run(50)
	if float64(mid)/float64(base) < 3 {
		t.Errorf("Δo=25µs slowdown = %.1f, want > 3", float64(mid)/float64(base))
	}
	// Linearity: slope from 0→25 should roughly match 25→50.
	s1 := float64(mid - base)
	s2 := float64(high - mid)
	if ratio := s2 / s1; ratio < 0.6 || ratio > 1.6 {
		t.Errorf("non-linear overhead response: slopes ratio %.2f", ratio)
	}
}

func TestInputDescAndNames(t *testing.T) {
	a := New()
	if a.Name() != "radix" || a.PaperName() != "Radix" {
		t.Error("bad names")
	}
	if a.InputDesc(tinyCfg(4)) == "" || a.Description() == "" {
		t.Error("empty descriptions")
	}
}
