package pray

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.002, // ~2000 pixels, ~64 objects
		Params: logp.NOW(),
		Seed:   23,
		Verify: true,
	}
}

func TestRendersExactly(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := New().Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: unverified", procs)
		}
	}
}

func TestReadAndBulkProfile(t *testing.T) {
	// Table 4: P-Ray is 96.5% reads and 47.9% bulk — short read requests
	// answered by bulk object records.
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentReads < 60 {
		t.Errorf("reads = %.1f%%, want read-dominated", res.Summary.PercentReads)
	}
	if res.Summary.PercentBulk < 25 || res.Summary.PercentBulk > 60 {
		t.Errorf("bulk = %.1f%%, want ≈half (bulk replies)", res.Summary.PercentBulk)
	}
	if res.Extra["misses"] == 0 {
		t.Error("no cache misses: the cache hid all communication")
	}
}

func TestSmallerCacheMoreMisses(t *testing.T) {
	small := App{CacheLines: 4}
	big := App{CacheLines: 4096}
	rs, err := small.Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Extra["misses"] <= rb.Extra["misses"] {
		t.Errorf("small cache misses %v <= big cache misses %v", rs.Extra["misses"], rb.Extra["misses"])
	}
	if rs.Elapsed <= rb.Elapsed {
		t.Errorf("small cache (%v) not slower than big cache (%v)", rs.Elapsed, rb.Elapsed)
	}
}

func TestLatencySensitive(t *testing.T) {
	// Read-based: P-Ray belongs to the latency-sensitive group in Fig 7.
	run := func(dL float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.DeltaL = sim.FromMicros(dL)
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base, slow := run(0), run(100)
	s := float64(slow) / float64(base)
	if s < 1.05 {
		t.Errorf("ΔL=100 slowdown = %.2f, expected a visible effect for a read-based app", s)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
