// Package pray implements the paper's P-Ray benchmark: a scene-passing
// parallel ray tracer. A read-only spatial octree indexes the scene;
// ownership of the objects is divided evenly over the processors; every
// processor renders a block of the image, fetching remote object data
// through a fixed-size software-managed cache. Communication is therefore
// almost entirely blocking reads whose replies are bulk object records
// (Table 4: 96.5% reads, 47.9% bulk), and "hot" objects visible from many
// pixels produce the dark columns of Figure 4f.
//
// Paper input: a 1-million-pixel image of a 16390-object scene.
package pray

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	pixelCostUs = 3.0  // per pixel: ray setup, shading, framebuffer write
	nodeCostUs  = 0.25 // per octree node visited
	isectCostUs = 1.4  // per ray-sphere intersection test
	cacheCostUs = 0.15 // per cache probe
)

const (
	paperObjects = 16390
	paperPixels  = 1_000_000
	objWords     = 8 // center xyz, radius, color rgb, pad — one cache line
	leafCap      = 8
	maxDepth     = 6
)

// App is the P-Ray benchmark. CacheLines overrides the software cache
// capacity (0 = default: 1/8 of the scene's objects).
type App struct {
	CacheLines int
}

// New returns the benchmark instance.
func New() App { return App{} }

func (App) Name() string        { return "pray" }
func (App) PaperName() string   { return "P-Ray" }
func (App) Description() string { return "Ray Tracer" }

func sizes(cfg apps.Config) (objects, side int) {
	objects = apps.ScaleInt(paperObjects, cfg.Scale, 64)
	pixels := apps.ScaleInt(paperPixels, cfg.Scale, 16*cfg.Procs)
	side = 1
	for side*side < pixels {
		side++
	}
	return objects, side
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	objects, side := sizes(cfg)
	return fmt.Sprintf("%dx%d pixels, %d objects", side, side, objects)
}

// sphere is one scene object.
type sphere struct {
	cx, cy, cz, r float64
	color         float64
}

// scene is the replicated read-only index plus the full object table (the
// table is only consulted directly by owners and the serial reference).
type scene struct {
	objs []sphere
	root *onode
}

// onode is an octree node over [0,1]^3.
type onode struct {
	x0, y0, z0, size float64
	objs             []int32 // object ids (leaves)
	kids             [8]*onode
	leaf             bool
}

func buildScene(cfg apps.Config) *scene {
	objects, _ := sizes(cfg)
	s := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 77
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / (1 << 53)
	}
	sc := &scene{}
	sc.objs = make([]sphere, objects)
	for i := range sc.objs {
		// Clustered positions: a few dense clumps plus background, giving
		// the hot-object behavior of the paper's scenes.
		var x, y, z float64
		if i%3 == 0 {
			c := float64(i%5)/5 + 0.1
			x, y, z = c+0.08*next(), c+0.08*next(), 0.3+0.4*next()
		} else {
			x, y, z = next(), next(), next()
		}
		sc.objs[i] = sphere{cx: x, cy: y, cz: z, r: 0.004 + 0.05*next(), color: 0.2 + 0.8*next()}
	}
	sc.root = &onode{x0: 0, y0: 0, z0: 0, size: 1}
	ids := make([]int32, objects)
	for i := range ids {
		ids[i] = int32(i)
	}
	buildNode(sc, sc.root, ids, 0)
	return sc
}

func overlaps(n *onode, o *sphere) bool {
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	dx := o.cx - clamp(o.cx, n.x0, n.x0+n.size)
	dy := o.cy - clamp(o.cy, n.y0, n.y0+n.size)
	dz := o.cz - clamp(o.cz, n.z0, n.z0+n.size)
	return dx*dx+dy*dy+dz*dz <= o.r*o.r
}

func buildNode(sc *scene, n *onode, ids []int32, depth int) {
	if len(ids) <= leafCap || depth >= maxDepth {
		n.leaf = true
		n.objs = ids
		return
	}
	half := n.size / 2
	for c := 0; c < 8; c++ {
		kid := &onode{
			x0:   n.x0 + float64(c&1)*half,
			y0:   n.y0 + float64((c>>1)&1)*half,
			z0:   n.z0 + float64((c>>2)&1)*half,
			size: half,
		}
		var sub []int32
		for _, id := range ids {
			if overlaps(kid, &sc.objs[id]) {
				sub = append(sub, id)
			}
		}
		if len(sub) > 0 {
			buildNode(sc, kid, sub, depth+1)
			n.kids[c] = kid
		}
	}
}

// ray is an axis-aligned-down viewing ray through pixel (px, py): origin
// (u, v, -1) direction +z. Orthographic projection keeps the math simple
// and deterministic.
type ray struct{ u, v float64 }

// hitSphere returns the ray parameter of the nearest intersection, or +Inf.
func (r ray) hitSphere(o *sphere) float64 {
	dx := r.u - o.cx
	dy := r.v - o.cy
	disc := o.r*o.r - dx*dx - dy*dy
	if disc < 0 {
		return math.Inf(1)
	}
	return o.cz - math.Sqrt(disc) // entry point along +z
}

// hitBox reports whether the ray's (u,v) column crosses the node's xy
// extent (the z axis is the ray direction, so this is exact).
func (r ray) hitBox(n *onode) bool {
	return r.u >= n.x0 && r.u <= n.x0+n.size && r.v >= n.y0 && r.v <= n.y0+n.size
}

// trace walks the octree, calling fetch for each candidate object, and
// returns the shaded color. fetch abstracts local table access (serial
// reference) versus the caching remote read (parallel run). visitCost is
// invoked per node and per intersection so both versions charge alike.
func trace(root *onode, r ray, fetch func(int32) sphere, nodeVisit, isect func()) float64 {
	best := math.Inf(1)
	color := 0.0
	var walk func(n *onode)
	walk = func(n *onode) {
		if n == nil || !r.hitBox(n) {
			return
		}
		nodeVisit()
		if n.leaf {
			for _, id := range n.objs {
				o := fetch(id)
				isect()
				if t := r.hitSphere(&o); t < best {
					best = t
					color = o.color * (1 - t/4)
				}
			}
			return
		}
		for _, kid := range n.kids {
			walk(kid)
		}
	}
	walk(root)
	return color
}

// serialRender computes the reference image.
func serialRender(sc *scene, side int) []float64 {
	img := make([]float64, side*side)
	for py := 0; py < side; py++ {
		for px := 0; px < side; px++ {
			r := ray{u: (float64(px) + 0.5) / float64(side), v: (float64(py) + 0.5) / float64(side)}
			img[py*side+px] = trace(sc.root, r, func(id int32) sphere { return sc.objs[id] }, func() {}, func() {})
		}
	}
	return img
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	sc := buildScene(cfg)
	objects, side := sizes(cfg)
	P := cfg.Procs
	cacheLines := a.CacheLines
	if cacheLines == 0 {
		cacheLines = maxInt(objects/2, 16)
	}
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}

	objArr := make([]splitc.GPtr, P) // per-owner object records
	images := make([][]float64, P)
	var missesTotal int64

	body := func(p *splitc.Proc) {
		me := p.ID()
		// Objects are owned round-robin: object id -> proc id%P, local
		// index id/P.
		ownCount := (objects - me + P - 1) / P
		objArr[me] = p.Alloc(maxInt(ownCount*objWords, 1))
		loc := p.Local(objArr[me], maxInt(ownCount*objWords, 1))
		for i := 0; i < ownCount; i++ {
			o := sc.objs[i*P+me]
			base := i * objWords
			loc[base+0] = math.Float64bits(o.cx)
			loc[base+1] = math.Float64bits(o.cy)
			loc[base+2] = math.Float64bits(o.cz)
			loc[base+3] = math.Float64bits(o.r)
			loc[base+4] = math.Float64bits(o.color)
		}
		p.Barrier()

		// Fixed-size direct-mapped software object cache.
		cacheTag := make([]int32, cacheLines)
		cacheVal := make([]sphere, cacheLines)
		for i := range cacheTag {
			cacheTag[i] = -1
		}
		misses := int64(0)
		fetch := func(id int32) sphere {
			owner := int(id) % P
			if owner == me {
				return sc.objs[id]
			}
			p.ComputeUs(cacheCostUs)
			slot := int(id) % cacheLines
			if cacheTag[slot] == id {
				return cacheVal[slot]
			}
			misses++
			words := p.BulkGet(objArr[owner].Add(int(id)/P*objWords), objWords)
			o := sphere{
				cx:    math.Float64frombits(words[0]),
				cy:    math.Float64frombits(words[1]),
				cz:    math.Float64frombits(words[2]),
				r:     math.Float64frombits(words[3]),
				color: math.Float64frombits(words[4]),
			}
			cacheTag[slot] = id
			cacheVal[slot] = o
			return o
		}

		lo, hi := apps.BlockRange(me, side, P) // scanline block
		img := make([]float64, maxInt(hi-lo, 0)*side)
		images[me] = img
		for py := lo; py < hi; py++ {
			for px := 0; px < side; px++ {
				r := ray{u: (float64(px) + 0.5) / float64(side), v: (float64(py) + 0.5) / float64(side)}
				img[(py-lo)*side+px] = trace(sc.root, r, fetch,
					func() { p.ComputeUs(nodeCostUs) },
					func() { p.ComputeUs(isectCostUs) })
				p.ComputeUs(pixelCostUs)
			}
			p.Poll()
		}
		p.Barrier()
		missesSum := p.AllReduceSum(uint64(misses))
		if me == 0 {
			missesTotal = int64(missesSum)
		}
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}

	if cfg.Verify {
		ref := serialRender(sc, side)
		for q := 0; q < P; q++ {
			lo, hi := apps.BlockRange(q, side, P)
			for py := lo; py < hi; py++ {
				for px := 0; px < side; px++ {
					if images[q][(py-lo)*side+px] != ref[py*side+px] {
						return apps.Result{}, fmt.Errorf("pray: pixel (%d,%d) diverges from serial render", px, py)
					}
				}
			}
		}
	}
	res := apps.Finish(a, cfg, w, cfg.Verify)
	res.Extra["misses"] = float64(missesTotal)
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ apps.App = App{}
