// Package radb implements the paper's Radb benchmark: the bulk-message
// restructuring of the radix sort (Alexandrov et al.'s LogGP paper). The
// algorithm is the same two-pass radix sort as package radix, but every
// data movement is aggregated: the global histogram travels as one bulk
// array per pipeline hop, and after ranking, each processor sends all keys
// bound for a destination in one bulk transfer of (position, key) pairs
// instead of one short message per key.
//
// Depending on the network's per-message cost versus its bulk bandwidth,
// Radb beats or loses to Radix — which is exactly why the paper includes
// both (Radb is the most bandwidth-sensitive member of Figure 8).
package radb

import (
	"fmt"
	"math"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	countCostUs = 0.055 // per key: local ranking
	packCostUs  = 0.060 // per key: build the (position, key) pair
	placeCostUs = 0.070 // per key: receiver-side scatter into the block
	scanCostUs  = 0.040 // per bucket: prefix arithmetic
)

const paperKeys = 16_000_000

// App is the Radb benchmark.
type App struct{}

// New returns the benchmark instance.
func New() App { return App{} }

func (App) Name() string        { return "radb" }
func (App) PaperName() string   { return "Radb" }
func (App) Description() string { return "Bulk version of Radix sort" }

func sizes(cfg apps.Config) (n, radix int) {
	n = apps.ScaleInt(paperKeys, cfg.Scale, 64*cfg.Procs)
	perProc := n / cfg.Procs
	bits := int(math.Round(math.Log2(float64(perProc) * 65536 / 500000)))
	if bits < 6 {
		bits = 6
	}
	if bits > 16 {
		bits = 16
	}
	radix = 1 << bits
	return n, radix
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	n, radix := sizes(cfg)
	return fmt.Sprintf("%d keys in [0,%d), radix %d, 2 passes, bulk all-to-all", n, radix*radix, radix)
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	n, radix := sizes(cfg)
	P := cfg.Procs
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}
	digitBits := uint(math.Ilogb(float64(radix)))

	destArr := make([]splitc.GPtr, P)  // final key blocks
	chainArr := make([]splitc.GPtr, P) // histogram pipeline landing area
	chainFlg := make([]splitc.GPtr, P)
	offArr := make([]splitc.GPtr, P) // global bucket offsets
	offFlg := make([]splitc.GPtr, P)
	bound := make([]splitc.GPtr, P) // verification boundary words
	loOf := make([]int, P+1)
	for q := 0; q <= P; q++ {
		lo, _ := apps.BlockRange(q, n, P)
		loOf[q] = lo
	}
	verifyFailed := false

	body := func(p *splitc.Proc) {
		me := p.ID()
		lo, hi := loOf[me], loOf[me+1]
		mine := hi - lo
		rng := p.Rand()
		keyRange := radix * radix
		keys := make([]uint32, mine)
		var inputSum uint64
		for i := range keys {
			keys[i] = uint32(rng.Intn(keyRange))
			inputSum += uint64(keys[i])
		}

		destArr[me] = p.Alloc(maxInt(mine, 1))
		chainArr[me] = p.Alloc(radix)
		chainFlg[me] = p.Alloc(1)
		offArr[me] = p.Alloc(radix)
		offFlg[me] = p.Alloc(1)
		dest := p.Local(destArr[me], maxInt(mine, 1))
		p.Barrier()

		for pass := 0; pass < 2; pass++ {
			shift := uint(pass) * digitBits
			mask := uint32(radix - 1)

			// Phase 1: local rank.
			counts := make([]uint64, radix)
			for i, k := range keys {
				counts[(k>>shift)&mask]++
				if i%4096 == 4095 {
					p.Poll()
				}
			}
			p.ComputeUs(countCostUs * float64(len(keys)))
			p.Barrier()

			// Phase 2: histogram pipeline, one bulk array per hop.
			myStart := make([]uint64, radix)
			want := uint64(pass) + 1
			if me > 0 {
				flag := p.Local(chainFlg[me], 1)
				p.EP().WaitUntil(func() bool { return flag[0] >= want }, "radb: histogram hop")
				copy(myStart, p.Local(chainArr[me], radix))
			}
			running := make([]uint64, radix)
			for b := 0; b < radix; b++ {
				running[b] = myStart[b] + counts[b]
			}
			p.ComputeUs(scanCostUs * float64(radix))
			var gOff []uint64
			if me < P-1 {
				p.BulkPut(chainArr[me+1], running)
				p.WriteWord(chainFlg[me+1], want)
				// Await the offsets broadcast from the last processor.
				flag := p.Local(offFlg[me], 1)
				p.EP().WaitUntil(func() bool { return flag[0] >= want }, "radb: await offsets")
				gOff = p.Local(offArr[me], radix)
			} else {
				offs := make([]uint64, radix)
				var run uint64
				for b := 0; b < radix; b++ {
					offs[b] = run
					run += running[b]
				}
				p.ComputeUs(scanCostUs * float64(radix) / 2)
				for q := 0; q < P-1; q++ {
					p.BulkPut(offArr[q], offs)
					p.WriteWord(offFlg[q], want)
				}
				copy(p.Local(offArr[me], radix), offs)
				gOff = p.Local(offArr[me], radix)
			}

			// Phase 3: one bulk transfer of (position, key) pairs per
			// destination processor.
			rank := make([]uint64, radix)
			pairs := make([][]uint64, P)
			for _, k := range keys {
				b := (k >> shift) & mask
				pos := int(gOff[b] + myStart[b] + rank[b])
				rank[b]++
				owner := apps.BlockOwner(pos, n, P)
				pairs[owner] = append(pairs[owner], uint64(pos-loOf[owner])<<32|uint64(k))
				p.ComputeUs(packCostUs)
			}
			for q := 0; q < P; q++ {
				if len(pairs[q]) == 0 {
					continue
				}
				if q == me {
					for _, pr := range pairs[q] {
						dest[pr>>32] = pr & 0xFFFFFFFF
					}
					p.ComputeUs(placeCostUs * float64(len(pairs[q])))
					continue
				}
				buf := make([]byte, 8*len(pairs[q]))
				for i, pr := range pairs[q] {
					putUint64(buf[8*i:], pr)
				}
				target := destArr[q]
				p.EP().StoreLarge(q, am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, args am.Args, data []byte) {
					mem := destOfProc(w, target)
					for i := 0; i+8 <= len(data); i += 8 {
						pr := getUint64(data[i:])
						mem[pr>>32] = pr & 0xFFFFFFFF
					}
					ep.Compute(splitcMicros(placeCostUs * float64(len(data)/8)))
				}, am.Args{}, buf)
			}
			p.Barrier()

			for i := range keys {
				keys[i] = uint32(dest[i])
			}
			p.Barrier()
		}

		if cfg.Verify {
			for i := 1; i < len(keys); i++ {
				if keys[i-1] > keys[i] {
					verifyFailed = true
				}
			}
			var sum uint64
			for _, k := range keys {
				sum += uint64(k)
			}
			if p.AllReduceSum(sum) != p.AllReduceSum(inputSum) {
				verifyFailed = true
			}
			if p.AllReduceSum(uint64(len(keys))) != uint64(n) {
				verifyFailed = true
			}
			// Cross-processor boundary order via a neighbor read.
			bound[me] = p.Alloc(1)
			p.Barrier()
			if mine > 0 {
				p.WriteWord(bound[me], uint64(keys[0])+1)
			}
			p.Barrier()
			if mine > 0 && me < P-1 {
				nb := p.ReadWord(bound[me+1])
				if nb != 0 && uint64(keys[mine-1]) > nb-1 {
					verifyFailed = true
				}
			}
		}
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify && verifyFailed {
		return apps.Result{}, fmt.Errorf("radb: verification failed")
	}
	return apps.Finish(a, cfg, w, cfg.Verify), nil
}

// destOfProc resolves a destination block's local slice on the handler's
// processor.
func destOfProc(w *splitc.World, g splitc.GPtr) []uint64 {
	return w.Slice(g)
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func splitcMicros(us float64) sim.Time { return sim.FromMicros(us) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ apps.App = App{}
