package radb

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.0005,
		Params: logp.NOW(),
		Seed:   19,
		Verify: true,
	}
}

func TestSortsCorrectly(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := New().Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: unverified", procs)
		}
	}
}

func TestBulkTrafficShape(t *testing.T) {
	// Table 4: Radb is 34.7% bulk with tiny overall message counts.
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentBulk < 15 {
		t.Errorf("bulk = %.1f%%, want the bulk-restructured profile", res.Summary.PercentBulk)
	}
	if res.Summary.AvgMsgsPerProc > 2000 {
		t.Errorf("avg msgs/proc = %.0f, Radb should send few, large messages", res.Summary.AvgMsgsPerProc)
	}
}

func TestFarLessOverheadSensitiveThanShortMessages(t *testing.T) {
	// Figure 5: Radb barely moves under overhead (1.7x at Δo=100 in the
	// paper) because it sends so few messages.
	run := func(dO float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.DeltaO = sim.FromMicros(dO)
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base, slow := run(0), run(100)
	s := float64(slow) / float64(base)
	if s > 8 {
		t.Errorf("Δo=100 slowdown = %.2f, Radb should be weakly overhead-sensitive", s)
	}
}

func TestBandwidthSensitivity(t *testing.T) {
	// Figure 8: Radb is the most bandwidth-sensitive app; it must feel a
	// 1 MB/s cap.
	run := func(bw float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.BulkBandwidthMBs = bw
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base, capped := run(0), run(1)
	if float64(capped)/float64(base) < 1.5 {
		t.Errorf("1 MB/s slowdown = %.2f, want a clear bandwidth effect", float64(capped)/float64(base))
	}
	// And tolerance above ~15 MB/s, per the paper.
	at20 := run(20)
	if float64(at20)/float64(base) > 1.6 {
		t.Errorf("20 MB/s slowdown = %.2f, want near-tolerance above 15 MB/s", float64(at20)/float64(base))
	}
}

func TestDeterministic(t *testing.T) {
	a, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
