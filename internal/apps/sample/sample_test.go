package sample

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.0003, // ~9600 keys
		Params: logp.NOW(),
		Seed:   7,
		Verify: true,
	}
}

func TestSortsCorrectly(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := New().Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: unverified", procs)
		}
	}
}

func TestCommunicationShape(t *testing.T) {
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentReads > 5 {
		t.Errorf("reads = %.1f%%, want ~0", res.Summary.PercentReads)
	}
	if res.Summary.PercentBulk > 5 {
		t.Errorf("bulk = %.1f%%, want ~0", res.Summary.PercentBulk)
	}
}

func TestImbalance(t *testing.T) {
	// The skewed key mixture should leave a visible receive imbalance:
	// max messages per proc exceeds the average (Figure 4d).
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	maxm := float64(res.Summary.MaxMsgsPerProc)
	avg := res.Summary.AvgMsgsPerProc
	if maxm < avg*1.02 {
		t.Errorf("max/avg = %.3f, expected some imbalance", maxm/avg)
	}
}

func TestGapSensitivity(t *testing.T) {
	// Sample is one of the paper's four gap-sensitive frequent
	// communicators.
	run := func(dg float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.DeltaG = sim.FromMicros(dg)
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base, slow := run(0), run(50)
	if float64(slow)/float64(base) < 2 {
		t.Errorf("Δg=50µs slowdown = %.2f, want > 2", float64(slow)/float64(base))
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := New().Run(tinyCfg(4))
	b, _ := New().Run(tinyCfg(4))
	if a.Elapsed != b.Elapsed {
		t.Errorf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
