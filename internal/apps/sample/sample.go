// Package sample implements the paper's Sample sort benchmark: a
// probabilistic sort of 32-bit keys (paper input: 32 million). Each
// processor contributes a random sample; p−1 "good" splitter values are
// selected from the sorted sample and broadcast; every key is then sent to
// the processor owning its splitter interval with one short write message;
// finally each processor radix-sorts what it received.
//
// The interesting architectural property (Figure 4d's vertical bars) is
// the potential imbalance of the all-to-all: splitters estimated from a
// finite sample give some processors more keys than others. The key
// distribution is a mixture of uniform background and a few dense
// clusters, so the imbalance is visible as in the paper.
package sample

import (
	"fmt"
	"sort"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	partitionCostUs = 0.18 // per key: binary-search splitters, issue send
	localSortCostUs = 0.25 // per received key: local radix sort share
	sampleCostUs    = 0.30 // per sample key
)

const (
	paperKeys    = 32_000_000
	oversampling = 8 // samples per processor per splitter interval
)

// App is the Sample sort benchmark.
type App struct{}

// New returns the benchmark instance.
func New() App { return App{} }

func (App) Name() string        { return "sample" }
func (App) PaperName() string   { return "Sample" }
func (App) Description() string { return "Integer sample sort" }

func keyCount(cfg apps.Config) int {
	return apps.ScaleInt(paperKeys, cfg.Scale, 128*cfg.Procs)
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	return fmt.Sprintf("%d 32-bit keys, oversampling %d", keyCount(cfg), oversampling)
}

// genKey draws from the skewed mixture: 70% uniform, 30% from one of four
// narrow clusters.
func genKey(rng interface{ Intn(int) int }) uint32 {
	if rng.Intn(10) < 7 {
		return uint32(rng.Intn(1 << 30))
	}
	cluster := uint32(rng.Intn(4))
	base := cluster * (1 << 28)
	return base + uint32(rng.Intn(1<<22))
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	n := keyCount(cfg)
	P := cfg.Procs
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}

	sampleArr := make([]splitc.GPtr, P) // proc 0's sample landing area
	recvBufs := make([][]uint32, P)     // keys received per proc
	firstKey := make([]splitc.GPtr, P)  // boundary check (verification)
	verifyFailed := false

	body := func(p *splitc.Proc) {
		me := p.ID()
		lo, hi := apps.BlockRange(me, n, P)
		mine := hi - lo
		rng := p.Rand()
		keys := make([]uint32, mine)
		var localSum uint64
		for i := range keys {
			keys[i] = genKey(rng)
			localSum += uint64(keys[i])
		}
		recvBufs[me] = make([]uint32, 0, mine*2)
		firstKey[me] = p.Alloc(1)
		nSamples := oversampling * (P - 1)
		if nSamples < 1 {
			nSamples = 1
		}
		if me == 0 {
			sampleArr[0] = p.Alloc(nSamples * P)
		}
		p.Barrier()

		// Phase 1: sampling. Every processor writes its samples into
		// processor 0's sample array (short writes), then processor 0
		// sorts them and broadcasts p−1 splitters.
		for s := 0; s < nSamples; s++ {
			k := keys[rng.Intn(len(keys))]
			p.WriteWord(sampleArr[0].Add(me*nSamples+s), uint64(k))
			p.ComputeUs(sampleCostUs)
		}
		p.Barrier()

		splitters := make([]uint32, P-1)
		if me == 0 {
			all := p.Local(sampleArr[0], nSamples*P)
			samples := make([]uint32, len(all))
			for i, v := range all {
				samples[i] = uint32(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			p.ComputeUs(sampleCostUs * float64(len(samples)) * 2) // sort cost
			for i := range splitters {
				splitters[i] = samples[(i+1)*len(samples)/P]
			}
		}
		for i := range splitters {
			splitters[i] = uint32(p.Broadcast(0, uint64(splitters[i])))
		}

		// Phase 2: distribution. One short active message per key; the
		// receiver's handler appends to its receive buffer — an
		// unbalanced all-to-all when the splitters misjudge the density.
		for i, k := range keys {
			dst := sort.Search(len(splitters), func(j int) bool { return splitters[j] > k })
			p.ComputeUs(partitionCostUs)
			if dst == me {
				recvBufs[me] = append(recvBufs[me], k)
				continue
			}
			p.EP().Request(dst, am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, a am.Args) {
				recvBufs[ep.ID()] = append(recvBufs[ep.ID()], uint32(a[0]))
			}, am.Args{uint64(k)})
			if i%2048 == 2047 {
				p.Poll()
			}
		}
		p.Barrier() // store-sync in the barrier implies delivery

		// Phase 3: local radix sort of received keys.
		got := recvBufs[me]
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		p.ComputeUs(localSortCostUs * float64(len(got)))
		p.Barrier()

		if cfg.Verify {
			for i := 1; i < len(got); i++ {
				if got[i-1] > got[i] {
					verifyFailed = true
				}
			}
			if len(got) > 0 {
				p.WriteWord(firstKey[me], uint64(got[0])+1)
			}
			p.Barrier()
			// Boundary order: my last key ≤ the next non-empty proc's first.
			if len(got) > 0 {
				for q := me + 1; q < P; q++ {
					nb := p.ReadWord(firstKey[q])
					if nb == 0 {
						continue // empty processor
					}
					if uint64(got[len(got)-1]) > nb-1 {
						verifyFailed = true
					}
					break
				}
			}
			var sum uint64
			for _, k := range got {
				sum += uint64(k)
			}
			if p.AllReduceSum(sum) != p.AllReduceSum(localSum) {
				verifyFailed = true
			}
			if p.AllReduceSum(uint64(len(got))) != uint64(n) {
				verifyFailed = true
			}
		}
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify && verifyFailed {
		return apps.Result{}, fmt.Errorf("sample: verification failed")
	}
	return apps.Finish(a, cfg, w, cfg.Verify), nil
}

var _ apps.App = App{}
