package nowsort

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.0002, // 6400 records
		Params: logp.NOW(),
		Seed:   17,
		Verify: true,
	}
}

func TestSortsCorrectly(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := New().Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: unverified", procs)
		}
	}
}

func TestBulkDominatedTraffic(t *testing.T) {
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentBulk < 30 {
		t.Errorf("bulk = %.1f%%, NOW-sort ships records in bulk batches", res.Summary.PercentBulk)
	}
	if res.Summary.PercentReads > 5 {
		t.Errorf("reads = %.1f%%, want ~0", res.Summary.PercentReads)
	}
}

func TestDiskBound(t *testing.T) {
	// The defining property (Figure 8): insensitive to network bandwidth
	// until it drops below a single disk's 5.5 MB/s.
	run := func(bw float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.BulkBandwidthMBs = bw
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base := run(0)  // machine rate, 38 MB/s
	at15 := run(15) // still above disk rate
	at1 := run(1)   // far below disk rate
	if ratio := float64(at15) / float64(base); ratio > 1.10 {
		t.Errorf("15 MB/s slowdown = %.2f, want ≈1 (disk-limited)", ratio)
	}
	if ratio := float64(at1) / float64(base); ratio < 1.5 {
		t.Errorf("1 MB/s slowdown = %.2f, want a clear hit once below the disk rate", ratio)
	}
}

func TestOverheadMostlyHidden(t *testing.T) {
	// Overhead overlaps disk time: at Δo=100µs the paper sees only ~1.25x.
	run := func(dO float64) sim.Time {
		cfg := tinyCfg(4)
		cfg.Params.DeltaO = sim.FromMicros(dO)
		res, err := New().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base, slow := run(0), run(20)
	if ratio := float64(slow) / float64(base); ratio > 2.5 {
		t.Errorf("Δo=20µs slowdown = %.2f, NOW-sort should hide overhead under disk time", ratio)
	}
}

func TestDestOfPartition(t *testing.T) {
	for _, p := range []int{1, 2, 7, 32} {
		prev := 0
		for i := 0; i < 1000; i++ {
			key := uint64(i) << 54 // sweep ascending keys
			d := destOf(key, p)
			if d < 0 || d >= p {
				t.Fatalf("destOf out of range: %d for P=%d", d, p)
			}
			if d < prev {
				t.Fatalf("destOf not monotone in key")
			}
			prev = d
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
