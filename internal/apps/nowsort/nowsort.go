// Package nowsort implements the paper's NOW-sort benchmark
// (Arpaci-Dusseau et al., SIGMOD '97): a disk-to-disk parallel sort of
// 100-byte records (paper input: 32 million records) in two passes.
//
// Phase 1 streams records off each node's read disk (5.5 MB/s), routes
// every record to the processor owning its key range, and ships them in
// 4 KB one-way bulk messages at the rate the disk delivers them; receivers
// spool arriving records to their write disk. Phase 2 is entirely local:
// runs are read back, merged in memory, and written out.
//
// NOW-sort is the suite's I/O-bound member: the network only matters when
// its bandwidth drops below a single disk's rate (Figure 8), and added
// overhead hides almost completely under disk time.
package nowsort

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	routeCostUs = 0.25 // per record in phase 1: key extract, bucket, copy
	mergeCostUs = 0.60 // per record in phase 2: merge/sort and format
)

const (
	paperRecords = 32_000_000
	recordBytes  = 100
	diskMBs      = 5.5
	diskChunk    = 256 << 10 // streaming transfer unit
)

// App is the NOW-sort benchmark.
type App struct{}

// New returns the benchmark instance.
func New() App { return App{} }

func (App) Name() string        { return "nowsort" }
func (App) PaperName() string   { return "NOW-sort" }
func (App) Description() string { return "Disk-to-Disk Sort" }

func recordCount(cfg apps.Config) int {
	return apps.ScaleInt(paperRecords, cfg.Scale, 64*cfg.Procs)
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	return fmt.Sprintf("%d %d-byte records, two 5.5 MB/s disks per node", recordCount(cfg), recordBytes)
}

// destOf maps a key to its range-owning processor with exact integer math
// on the key's top 32 bits.
func destOf(key uint64, p int) int {
	return int((key >> 32) * uint64(p) >> 32)
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	n := recordCount(cfg)
	P := cfg.Procs
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}

	recvKeys := make([][]uint64, P)
	// Handlers run on the RECEIVING processor; per-processor spool state is
	// dispatched through these arrays indexed by ep.ID(), never through the
	// sending body's closures.
	spoolFns := make([]func(int), P)
	verifyFailed := false
	var failReason string

	body := func(p *splitc.Proc) {
		me := p.ID()
		lo, hi := apps.BlockRange(me, n, P)
		mine := hi - lo
		rng := p.Rand()

		// The input records (their keys; payloads are opaque filler that
		// exists only as wire/disk bytes).
		keys := make([]uint64, mine)
		var inputSum uint64
		for i := range keys {
			keys[i] = rng.Uint64()
			inputSum += keys[i]
		}

		readDisk := disk.New(p.EP().Proc(), diskMBs, 0)
		writeDisk := disk.New(p.EP().Proc(), diskMBs, 0)
		recvKeys[me] = make([]uint64, 0, mine+mine/4)

		// Receiver-side spooling: arriving records accumulate and are
		// streamed to the write disk in chunks (handlers must not block,
		// so they only start transfers).
		spooledBytes := 0
		pendingSpool := 0
		var lastWrite sim.Time
		spool := func(nBytes int) {
			pendingSpool += nBytes
			if pendingSpool >= diskChunk {
				lastWrite = writeDisk.StartWrite(pendingSpool)
				spooledBytes += pendingSpool
				pendingSpool = 0
			}
		}
		spoolFns[me] = spool

		recordsPerMsg := 4096 / recordBytes // 40 records per bulk fragment
		outBufs := make([][]byte, P)
		flush := func(dst int) {
			if len(outBufs[dst]) == 0 {
				return
			}
			buf := outBufs[dst]
			outBufs[dst] = nil
			p.EP().Store(dst, am.ClassWrite, func(ep *am.Endpoint, tok *am.Token, args am.Args, data []byte) {
				for off := 0; off+recordBytes <= len(data); off += recordBytes {
					recvKeys[ep.ID()] = append(recvKeys[ep.ID()], binary.LittleEndian.Uint64(data[off:]))
				}
				spoolFns[ep.ID()](len(data))
			}, am.Args{}, buf)
		}
		deliverLocal := func(key uint64) {
			recvKeys[me] = append(recvKeys[me], key)
			spool(recordBytes)
		}

		p.Barrier()

		// ---- Phase 1: read, route, ship — paced by the read disk. ----
		chunkRecords := diskChunk / recordBytes
		next := 0
		pendingReadDone := sim.Time(-1)
		startRead := func(count int) {
			if count > 0 {
				pendingReadDone = readDisk.StartRead(count * recordBytes)
			} else {
				pendingReadDone = -1
			}
		}
		take := func() int { // records in the next chunk
			c := chunkRecords
			if next+c > mine {
				c = mine - next
			}
			return c
		}
		startRead(take())
		for next < mine {
			count := take()
			readDisk.Wait(pendingReadDone)
			upcoming := next + count
			if upcoming < mine {
				c2 := chunkRecords
				if upcoming+c2 > mine {
					c2 = mine - upcoming
				}
				startRead(c2) // double-buffer the next chunk
			}
			for i := next; i < upcoming; i++ {
				key := keys[i]
				dst := destOf(key, P)
				p.ComputeUs(routeCostUs)
				if dst == me {
					deliverLocal(key)
					continue
				}
				var rec [recordBytes]byte
				binary.LittleEndian.PutUint64(rec[:], key)
				outBufs[dst] = append(outBufs[dst], rec[:]...)
				if len(outBufs[dst]) >= recordsPerMsg*recordBytes {
					flush(dst)
				}
			}
			next = upcoming
		}
		for dst := range outBufs {
			flush(dst)
		}
		p.Barrier() // all records delivered and spool-started everywhere

		// Flush the spool tail and drain the write disk.
		if pendingSpool > 0 {
			lastWrite = writeDisk.StartWrite(pendingSpool)
			spooledBytes += pendingSpool
			pendingSpool = 0
		}
		if lastWrite > 0 {
			writeDisk.Wait(lastWrite)
		}

		// ---- Phase 2: local read-merge-write, pipelined over chunks. ----
		got := recvKeys[me]
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		totalBytes := len(got) * recordBytes
		for off := 0; off < totalBytes; off += diskChunk {
			c := diskChunk
			if off+c > totalBytes {
				c = totalBytes - off
			}
			writeDisk.Read(c) // runs come back from the spool disk
			p.ComputeUs(mergeCostUs * float64(c/recordBytes))
			readDisk.StartWrite(c) // final output on the other spindle
		}
		p.Barrier()

		if cfg.Verify {
			for i := 1; i < len(got); i++ {
				if got[i-1] > got[i] {
					verifyFailed = true
					failReason = "output not sorted"
				}
			}
			for _, k := range got {
				if destOf(k, P) != me {
					verifyFailed = true
					failReason = "record landed on wrong processor"
				}
			}
			var sum uint64
			for _, k := range got {
				sum += k
			}
			if p.AllReduceSum(sum) != p.AllReduceSum(inputSum) {
				verifyFailed = true
				failReason = "key checksum not conserved"
			}
			if p.AllReduceSum(uint64(len(got))) != uint64(n) {
				verifyFailed = true
				failReason = "record count not conserved"
			}
			if spooledBytes != len(got)*recordBytes {
				verifyFailed = true
				failReason = "spooled bytes disagree with received records"
			}
		}
	}

	if err := w.Run(body); err != nil {
		return apps.Result{}, err
	}
	if cfg.Verify && verifyFailed {
		return apps.Result{}, fmt.Errorf("nowsort: verification failed: %s", failReason)
	}
	return apps.Finish(a, cfg, w, cfg.Verify), nil
}

var _ apps.App = App{}
