package barnes

import (
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/splitc"
)

// Compute-cost constants (simulated 167 MHz UltraSPARC).
const (
	clearCostUs  = 0.08 // per owned cell record zeroed between steps
	aggCostUs    = 0.40 // per body per level during local aggregation
	updateCostUs = 1.50 // per cell read-modify-write under the lock
	probeCostUs  = 0.20 // per software-cache probe in the force pass
	visitCostUs  = 1.80 // per cell evaluated against the body
	advanceCost  = 2.00 // per body integration
)

const paperBodies = 1_000_000

// App is the Barnes benchmark. Steps overrides the time-step count
// (default 2).
type App struct {
	Steps      int
	CacheLines int // 0 = default (cells/8)
}

// New returns the benchmark instance.
func New() App { return App{} }

func (App) Name() string        { return "barnes" }
func (App) PaperName() string   { return "Barnes" }
func (App) Description() string { return "Hierarchical N-Body simulation" }

func (a App) steps() int {
	if a.Steps > 0 {
		return a.Steps
	}
	return 2
}

func bodyCount(cfg apps.Config) int {
	return apps.ScaleInt(paperBodies, cfg.Scale, 32*cfg.Procs)
}

func (a App) InputDesc(cfg apps.Config) string {
	cfg = cfg.Norm()
	n := bodyCount(cfg)
	t := newTree(n, cfg.Procs)
	return fmt.Sprintf("%d bodies, octree depth %d (%d cells), %d steps",
		n, t.depth, t.totalCells, a.steps())
}

// Run executes the benchmark.
func (a App) Run(cfg apps.Config) (apps.Result, error) {
	cfg = cfg.Norm()
	n := bodyCount(cfg)
	P := cfg.Procs
	steps := a.steps()
	t := newTree(n, P)
	w, err := apps.NewWorld(cfg)
	if err != nil {
		return apps.Result{}, err
	}
	cacheLines := a.CacheLines
	if cacheLines == 0 {
		cacheLines = maxInt(t.totalCells/2, 64)
	}

	recArr := make([]splitc.GPtr, P) // per-owner cell record blocks
	all := initBodies(n, cfg.Seed)
	finalBodies := make([][]body, P)
	var failedLocks uint64

	body_ := func(p *splitc.Proc) {
		me := p.ID()
		lo, hi := apps.BlockRange(me, n, P)
		mine := append([]body(nil), all[lo:hi]...)

		nRecs := maxInt(t.ownCount[me], 1)
		recArr[me] = p.Alloc(nRecs * recWords)
		myRecs := p.Local(recArr[me], nRecs*recWords)
		p.Barrier()

		recPtr := func(uid int) splitc.GPtr {
			return recArr[t.ownerOf[uid]].Add(int(t.slotOf[uid]) * recWords)
		}

		cacheTag := make([]int32, cacheLines)
		var cacheVal []cellRecord

		for step := 0; step < steps; step++ {
			// Phase 0: owners clear their cell records.
			for i := range myRecs {
				myRecs[i] = 0
			}
			p.ComputeUs(clearCostUs * float64(t.ownCount[me]))
			p.Barrier()

			// Phase 1: tree construction. Aggregate locally, then fold
			// each touched cell into the shared record under its lock.
			agg := t.aggregate(mine)
			p.ComputeUs(aggCostUs * float64(len(mine)*(t.depth+1)))
			uids := make([]int, 0, len(agg))
			for uid := range agg {
				uids = append(uids, uid)
			}
			sort.Ints(uids)
			for _, uid := range uids {
				c := agg[uid]
				g := recPtr(uid)
				// Every update — including the owner's own — holds the
				// cell lock: a lock-free owner update could land inside a
				// remote holder's read-modify-write window and be lost.
				p.Lock(g)
				if int(t.ownerOf[uid]) == me {
					base := int(t.slotOf[uid]) * recWords
					myRecs[base+1] += uint64(c.mass)
					myRecs[base+2] += uint64(c.sx)
					myRecs[base+3] += uint64(c.sy)
					myRecs[base+4] += uint64(c.sz)
				} else {
					words := p.BulkGet(g.Add(1), 4)
					words[0] += uint64(c.mass)
					words[1] += uint64(c.sx)
					words[2] += uint64(c.sy)
					words[3] += uint64(c.sz)
					p.BulkPut(g.Add(1), words)
				}
				p.ComputeUs(updateCostUs)
				p.Unlock(g)
			}
			p.Barrier()

			// Phase 2: force computation through the software cache.
			for i := range cacheTag {
				cacheTag[i] = -1
			}
			cacheVal = make([]cellRecord, cacheLines)
			fetch := func(uid int) cellRecord {
				if int(t.ownerOf[uid]) == me {
					base := int(t.slotOf[uid]) * recWords
					return cellRecord{
						mass: int64(myRecs[base+1]),
						sx:   int64(myRecs[base+2]),
						sy:   int64(myRecs[base+3]),
						sz:   int64(myRecs[base+4]),
					}
				}
				p.ComputeUs(probeCostUs)
				slot := uid % cacheLines
				if cacheTag[slot] == int32(uid) {
					return cacheVal[slot]
				}
				wordsIn := p.BulkGet(recPtr(uid).Add(1), 4)
				c := cellRecord{
					mass: int64(wordsIn[0]),
					sx:   int64(wordsIn[1]),
					sy:   int64(wordsIn[2]),
					sz:   int64(wordsIn[3]),
				}
				cacheTag[slot] = int32(uid)
				cacheVal[slot] = c
				return c
			}
			for i := range mine {
				b := &mine[i]
				fx, fy, fz := t.traverse(b.x, b.y, b.z, fetch, func() { p.ComputeUs(visitCostUs) })
				b.advance(fx, fy, fz)
				p.ComputeUs(advanceCost)
				if i%64 == 63 {
					p.Poll()
				}
			}
			p.Barrier()
		}

		finalBodies[me] = mine
		locks := p.AllReduceSum(uint64(p.FailedLockAttempts()))
		if me == 0 {
			failedLocks = locks
		}
	}

	if err := w.Run(body_); err != nil {
		return apps.Result{}, err
	}

	if cfg.Verify {
		ref := append([]body(nil), all...)
		for s := 0; s < steps; s++ {
			t.serialStep(ref)
		}
		for q := 0; q < P; q++ {
			lo, _ := apps.BlockRange(q, n, P)
			for i, b := range finalBodies[q] {
				if b != ref[lo+i] {
					return apps.Result{}, fmt.Errorf("barnes: body %d diverges from serial reference: %+v vs %+v",
						lo+i, b, ref[lo+i])
				}
			}
		}
	}
	res := apps.Finish(a, cfg, w, cfg.Verify)
	res.Extra["failedLocks"] = float64(failedLocks)
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ apps.App = App{}
