package barnes

import (
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

func tinyCfg(procs int) apps.Config {
	return apps.Config{
		Procs:  procs,
		Scale:  0.001, // 1000 bodies
		Params: logp.NOW(),
		Seed:   29,
		Verify: true,
	}
}

func TestMatchesSerialReference(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := New().Run(tinyCfg(procs))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !res.Verified {
			t.Errorf("P=%d: unverified", procs)
		}
	}
}

func TestTrafficProfile(t *testing.T) {
	// Barnes mixes lock round trips, remote cell reads, and bulk record
	// fetches (Table 4: 20.6% reads, 23.3% bulk), with frequent barriers.
	res, err := New().Run(tinyCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PercentBulk < 10 {
		t.Errorf("bulk = %.1f%%, want a visible bulk share (cell fetches)", res.Summary.PercentBulk)
	}
	if res.Summary.PercentReads < 10 {
		t.Errorf("reads = %.1f%%, want a visible read share", res.Summary.PercentReads)
	}
	if res.Stats.Barriers < 6 {
		t.Errorf("barriers = %d, Barnes is bulk-synchronous per phase", res.Stats.Barriers)
	}
}

func TestLockContentionGrowsWithOverhead(t *testing.T) {
	// The paper's signature Barnes behavior: added overhead slows lock
	// service, which multiplies failed lock attempts (2000/step at Δo=0
	// ballooning to 1M/step at Δo=13 µs before livelock).
	run := func(dO float64) (float64, sim.Time, error) {
		cfg := tinyCfg(8)
		cfg.Params.DeltaO = sim.FromMicros(dO)
		cfg.TimeLimit = 2 * sim.Second
		res, err := New().Run(cfg)
		if err != nil {
			return 0, 0, err
		}
		return res.Extra["failedLocks"], res.Elapsed, nil
	}
	f0, t0, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	f25, t25, err := run(25)
	if errors.Is(err, sim.ErrTimeLimit) {
		return // livelocked, which is the paper's own outcome at high Δo
	}
	if err != nil {
		t.Fatal(err)
	}
	if f25 < f0 {
		t.Errorf("failed locks fell from %v to %v under added overhead", f0, f25)
	}
	if t25 <= t0 {
		t.Errorf("overhead did not slow Barnes: %v vs %v", t0, t25)
	}
}

func TestCellIndexing(t *testing.T) {
	tr := newTree(1000, 4)
	if tr.depth < 2 {
		t.Errorf("depth = %d", tr.depth)
	}
	// A body's containing cells must nest: index at level l is the prefix
	// of the index at level l+1.
	b := body{x: 123456, y: 654321, z: 222222}
	for l := 0; l < tr.depth; l++ {
		parent := cellIndex(b.x, b.y, b.z, l)
		child := cellIndex(b.x, b.y, b.z, l+1)
		if child>>3 != parent {
			t.Errorf("level %d: child %d does not nest in parent %d", l, child, parent)
		}
	}
	// Ownership tables must be consistent.
	counts := make([]int, 4)
	for uid := 0; uid < tr.totalCells; uid++ {
		o := tr.ownerOf[uid]
		if int(tr.slotOf[uid]) != counts[o] {
			t.Fatalf("uid %d slot %d, want %d", uid, tr.slotOf[uid], counts[o])
		}
		counts[o]++
	}
	for q, c := range counts {
		if c != tr.ownCount[q] {
			t.Errorf("proc %d ownCount %d, counted %d", q, tr.ownCount[q], c)
		}
	}
}

func TestMassConservedInSerialStep(t *testing.T) {
	bodies := initBodies(500, 7)
	tr := newTree(len(bodies), 4)
	tr.serialStep(bodies)
	for i, b := range bodies {
		if b.x < 0 || b.x >= coordMax || b.y < 0 || b.y >= coordMax || b.z < 0 || b.z >= coordMax {
			t.Fatalf("body %d left the grid: %+v", i, b)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(tinyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
