// Package barnes implements the paper's Barnes benchmark: a hierarchical
// Barnes-Hut N-body simulation in the style of the SPLASH-2 code, but with
// the spatial octree replicated in software over the global address space
// (paper input: 1 million bodies). Tree cells live on hash-determined
// owner processors; construction updates them under blocking locks (the
// source of the paper's famous livelock under added overhead — Figure 5's
// Barnes curve stops at Δo≈7 µs on 32 nodes), and the force pass reads
// cells through a fixed-size software-managed cache (Table 4: 20.6% reads,
// 23.3% bulk).
//
// Substitution note: body positions are 20-bit fixed-point integers and
// cell mass/center-of-mass sums are integers, so construction order cannot
// perturb the tree; the force pass then performs identical floating-point
// operations in parallel and serial runs, making the final body state
// bit-for-bit verifiable against the serial reference.
package barnes

import "math"

const (
	coordBits = 20             // fixed-point position grid per axis
	coordMax  = 1 << coordBits // exclusive upper bound
	theta     = 0.7            // opening criterion
	softening = 64.0           // grid units, avoids singular forces
	dt        = 0.25           // integration step (grid units per step²)
	gravity   = 5000.0         // scaled gravitational constant
	recWords  = 8              // cell record: lock, mass, sx, sy, sz, pad…
)

// body is one simulated particle. Positions are grid integers; velocities
// are floats (the force pass is floating point, deterministically).
type body struct {
	x, y, z    int64
	vx, vy, vz float64
}

// tree describes the fixed-depth hashed octree geometry.
type tree struct {
	depth      int   // finest level
	levelBase  []int // uid of the first cell at each level
	totalCells int
	ownerOf    []int32 // uid -> owning processor
	slotOf     []int32 // uid -> record index on the owner
	ownCount   []int   // records per processor
}

// newTree sizes the octree: depth grows with the body count so leaves hold
// a handful of bodies, as in adaptive Barnes-Hut.
func newTree(bodies, procs int) *tree {
	depth := 1
	for cells := 8; depth < 6 && bodies > cells*4; depth++ {
		cells *= 8
	}
	t := &tree{depth: depth}
	t.levelBase = make([]int, depth+2)
	for l := 0; l <= depth; l++ {
		t.levelBase[l+1] = t.levelBase[l] + 1<<(3*l)
	}
	t.totalCells = t.levelBase[depth+1]
	t.ownerOf = make([]int32, t.totalCells)
	t.slotOf = make([]int32, t.totalCells)
	t.ownCount = make([]int, procs)
	for uid := 0; uid < t.totalCells; uid++ {
		h := uint64(uid) * 0x9e3779b97f4a7c15
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		owner := int(h % uint64(procs))
		t.ownerOf[uid] = int32(owner)
		t.slotOf[uid] = int32(t.ownCount[owner])
		t.ownCount[owner]++
	}
	return t
}

// cellIndex returns the Morton index of the cell containing (x,y,z) at
// level l.
func cellIndex(x, y, z int64, l int) int {
	shift := uint(coordBits - l)
	ix, iy, iz := x>>shift, y>>shift, z>>shift
	idx := 0
	for b := 0; b < l; b++ {
		idx |= int((ix>>uint(b))&1) << (3 * b)
		idx |= int((iy>>uint(b))&1) << (3*b + 1)
		idx |= int((iz>>uint(b))&1) << (3*b + 2)
	}
	return idx
}

// uidOf composes a global cell id from level and Morton index.
func (t *tree) uidOf(l, idx int) int { return t.levelBase[l] + idx }

// cellSize is the edge length of a level-l cell in grid units.
func cellSize(l int) float64 { return float64(int64(1) << uint(coordBits-l)) }

// cellRecord is the decoded cell payload.
type cellRecord struct {
	mass       int64
	sx, sy, sz int64
}

// accumulate folds a cell's pull on a body at (x, y, z) into the force
// vector. selfMass/selfPos are subtracted when the body itself is part of
// the cell (its own leaf).
func (c cellRecord) accumulate(x, y, z int64, subtractSelf bool,
	fx, fy, fz *float64) {
	m := float64(c.mass)
	sx, sy, sz := float64(c.sx), float64(c.sy), float64(c.sz)
	if subtractSelf {
		m--
		sx -= float64(x)
		sy -= float64(y)
		sz -= float64(z)
	}
	if m <= 0 {
		return
	}
	comX, comY, comZ := sx/m, sy/m, sz/m
	dx, dy, dz := comX-float64(x), comY-float64(y), comZ-float64(z)
	d2 := dx*dx + dy*dy + dz*dz + softening*softening
	inv := 1 / math.Sqrt(d2)
	f := gravity * m * inv * inv * inv
	*fx += f * dx
	*fy += f * dy
	*fz += f * dz
}

// traverse walks the Barnes-Hut tree for the body at (x,y,z), fetching
// cell records through fetch (which abstracts the software cache / local
// table) and returning the force. visit is charged per fetched cell.
func (t *tree) traverse(x, y, z int64, fetch func(uid int) cellRecord, visit func()) (float64, float64, float64) {
	var fx, fy, fz float64
	var walk func(l, idx int)
	walk = func(l, idx int) {
		uid := t.uidOf(l, idx)
		visit()
		c := fetch(uid)
		if c.mass == 0 {
			return
		}
		contains := cellIndex(x, y, z, l) == idx
		if l == t.depth {
			c.accumulate(x, y, z, contains, &fx, &fy, &fz)
			return
		}
		if !contains {
			// Opening criterion against the center of mass.
			m := float64(c.mass)
			comX, comY, comZ := float64(c.sx)/m, float64(c.sy)/m, float64(c.sz)/m
			dx, dy, dz := comX-float64(x), comY-float64(y), comZ-float64(z)
			d2 := dx*dx + dy*dy + dz*dz + softening*softening
			s := cellSize(l)
			if s*s < theta*theta*d2 {
				c.accumulate(x, y, z, false, &fx, &fy, &fz)
				return
			}
		}
		for k := 0; k < 8; k++ {
			walk(l+1, idx<<3|k)
		}
	}
	walk(0, 0)
	return fx, fy, fz
}

// advance integrates one body one step and quantizes it back onto the grid
// with reflecting boundaries.
func (b *body) advance(fx, fy, fz float64) {
	b.vx += fx * dt
	b.vy += fy * dt
	b.vz += fz * dt
	quant := func(pos int64, v *float64) int64 {
		nx := int64(math.Round(float64(pos) + *v*dt))
		if nx < 0 {
			nx = -nx
			*v = -*v
		}
		if nx >= coordMax {
			nx = 2*(coordMax-1) - nx
			*v = -*v
		}
		if nx < 0 || nx >= coordMax { // extreme velocity: clamp
			nx = coordMax / 2
		}
		return nx
	}
	b.x = quant(b.x, &b.vx)
	b.y = quant(b.y, &b.vy)
	b.z = quant(b.z, &b.vz)
}

// aggregated is the per-level mass contribution of a set of local bodies.
type aggregated map[int]cellRecord

// aggregate folds the bodies into per-cell sums for levels 0..depth.
func (t *tree) aggregate(bodies []body) aggregated {
	agg := make(aggregated)
	for i := range bodies {
		b := &bodies[i]
		for l := 0; l <= t.depth; l++ {
			uid := t.uidOf(l, cellIndex(b.x, b.y, b.z, l))
			c := agg[uid]
			c.mass++
			c.sx += b.x
			c.sy += b.y
			c.sz += b.z
			agg[uid] = c
		}
	}
	return agg
}

// serialStep runs one reference time-step over all bodies: build the full
// cell table, then traverse and advance each body.
func (t *tree) serialStep(all []body) {
	cells := make([]cellRecord, t.totalCells)
	for i := range all {
		b := &all[i]
		for l := 0; l <= t.depth; l++ {
			uid := t.uidOf(l, cellIndex(b.x, b.y, b.z, l))
			cells[uid].mass++
			cells[uid].sx += b.x
			cells[uid].sy += b.y
			cells[uid].sz += b.z
		}
	}
	for i := range all {
		b := &all[i]
		fx, fy, fz := t.traverse(b.x, b.y, b.z, func(uid int) cellRecord { return cells[uid] }, func() {})
		b.advance(fx, fy, fz)
	}
}

// initBodies generates the deterministic clustered initial conditions.
func initBodies(n int, seed int64) []body {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 4242
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	bodies := make([]body, n)
	for i := range bodies {
		// Plummer-ish clumps: half the bodies in 4 clusters, half spread.
		var x, y, z uint64
		if i%2 == 0 {
			c := uint64(i % 4)
			cx := (c%2)*coordMax/2 + coordMax/4
			cy := (c/2)*coordMax/2 + coordMax/4
			x = cx + next()%(coordMax/8) - coordMax/16
			y = cy + next()%(coordMax/8) - coordMax/16
			z = coordMax/2 + next()%(coordMax/8) - coordMax/16
		} else {
			x, y, z = next()%coordMax, next()%coordMax, next()%coordMax
		}
		bodies[i] = body{x: int64(x % coordMax), y: int64(y % coordMax), z: int64(z % coordMax)}
	}
	return bodies
}
