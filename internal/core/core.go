// Package core implements the paper's primary methodological
// contribution (§3.2): treating a communication architecture as a
// baseline machine plus four independently adjustable LogGP deltas — a
// "design point" — and measuring application slowdown as the design point
// moves away from the aggressive baseline. Everything in internal/exp is
// a particular walk through this design space.
package core

import (
	"errors"
	"fmt"

	"repro/internal/apps"
	"repro/internal/logp"
	"repro/internal/sim"
)

// Knob identifies one of the four independently variable LogGP
// parameters.
type Knob int

// KnobNone marks a run on the unmodified machine — the baseline of a
// sweep. Apply with KnobNone returns the parameters untouched.
const KnobNone Knob = -1

const (
	// KnobO adds per-message processor overhead (µs), charged at each
	// send and each receive.
	KnobO Knob = iota
	// KnobG adds NIC injection gap (µs) after each message reaches the
	// wire.
	KnobG
	// KnobL adds network latency (µs) at the receiver's delay queue.
	KnobL
	// KnobBW caps the bulk-transfer bandwidth (MB/s); 0 means the
	// machine's own rate.
	KnobBW
)

func (k Knob) String() string {
	switch k {
	case KnobNone:
		return "baseline"
	case KnobO:
		return "overhead"
	case KnobG:
		return "gap"
	case KnobL:
		return "latency"
	case KnobBW:
		return "bulk-bandwidth"
	}
	return fmt.Sprintf("Knob(%d)", int(k))
}

// Apply returns base with the knob set to v (µs for KnobO/G/L, MB/s for
// KnobBW). The other knobs are left untouched — the independence the
// calibration tables verify.
func (k Knob) Apply(base logp.Params, v float64) logp.Params {
	switch k {
	case KnobO:
		base.DeltaO = sim.FromMicros(v)
	case KnobG:
		base.DeltaG = sim.FromMicros(v)
	case KnobL:
		base.DeltaL = sim.FromMicros(v)
	case KnobBW:
		base.BulkBandwidthMBs = v
	}
	return base
}

// Point is one measured design point of a sweep.
type Point struct {
	// Value is the knob setting (µs or MB/s).
	Value float64
	// Elapsed is the run's virtual makespan (zero when livelocked).
	Elapsed sim.Time
	// Slowdown is Elapsed relative to the sweep's baseline.
	Slowdown float64
	// Livelocked marks runs that exceeded the livelock bound — the
	// paper's "N/A" entries for Barnes under high overhead.
	Livelocked bool
}

// LivelockFactor bounds each swept run at this multiple of the baseline
// run time; beyond it the run is declared livelocked. The paper's largest
// observed slowdown is ~60x, so 300x is generous headroom.
const LivelockFactor = 300

// RunAt measures a single design point. baseline provides the slowdown
// denominator and livelock bound.
//
// Sweeps over many design points are declared as a run.Plan and executed
// on the internal/run worker pool; RunAt is the leaf that pool calls.
func RunAt(a apps.App, cfg apps.Config, k Knob, v float64, baseline sim.Time) (Point, error) {
	pt, _, err := Measure(a, cfg, k, v, baseline)
	return pt, err
}

// Measure is RunAt plus the full application Result of the swept run
// (zero when livelocked), for experiments that need more than the
// makespan — per-phase shares, communication stats — at a non-baseline
// design point.
func Measure(a apps.App, cfg apps.Config, k Knob, v float64, baseline sim.Time) (Point, apps.Result, error) {
	cfg = cfg.Norm()
	cfg.Params = k.Apply(cfg.Params, v)
	cfg.Verify = false
	cfg.TimeLimit = baseline * LivelockFactor
	res, err := a.Run(cfg)
	pt := Point{Value: v}
	if errors.Is(err, sim.ErrTimeLimit) {
		pt.Livelocked = true
		return pt, apps.Result{}, nil
	}
	if err != nil {
		return pt, apps.Result{}, fmt.Errorf("core: %s at %v=%g: %w", a.Name(), k, v, err)
	}
	pt.Elapsed = res.Elapsed
	if baseline > 0 {
		pt.Slowdown = float64(res.Elapsed) / float64(baseline)
	}
	return pt, res, nil
}
