package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/radix"
	"repro/internal/logp"
	"repro/internal/sim"
)

func TestKnobApplyIndependence(t *testing.T) {
	base := logp.NOW()
	for _, k := range []Knob{KnobO, KnobG, KnobL} {
		p := k.Apply(base, 50)
		changed := 0
		if p.DeltaO != base.DeltaO {
			changed++
		}
		if p.DeltaG != base.DeltaG {
			changed++
		}
		if p.DeltaL != base.DeltaL {
			changed++
		}
		if p.BulkBandwidthMBs != base.BulkBandwidthMBs {
			changed++
		}
		if changed != 1 {
			t.Errorf("%v moved %d parameters, want exactly 1", k, changed)
		}
	}
	p := KnobBW.Apply(base, 10)
	if p.BulkBandwidthMBs != 10 || p.DeltaO != 0 || p.DeltaG != 0 || p.DeltaL != 0 {
		t.Errorf("KnobBW moved the wrong fields: %+v", p)
	}
}

func TestKnobStrings(t *testing.T) {
	names := map[Knob]string{KnobO: "overhead", KnobG: "gap", KnobL: "latency", KnobBW: "bulk-bandwidth"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
	if Knob(99).String() == "" {
		t.Error("unknown knob should still render")
	}
}

func TestKnobNoneApplyUntouched(t *testing.T) {
	base := logp.NOW()
	if got := KnobNone.Apply(base, 50); got != base {
		t.Errorf("KnobNone.Apply changed the machine: %+v", got)
	}
	if KnobNone.String() != "baseline" {
		t.Errorf("KnobNone.String() = %s", KnobNone.String())
	}
}

func TestMeasureReturnsResult(t *testing.T) {
	cfg := apps.Config{Procs: 4, Scale: 0.0003, Seed: 1}
	base, err := radix.New().Run(cfg.Norm())
	if err != nil {
		t.Fatal(err)
	}
	pt, res, err := Measure(radix.New(), cfg, KnobO, 10, base.Elapsed)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Slowdown <= 1 {
		t.Errorf("Δo=10 slowdown = %v, want > 1", pt.Slowdown)
	}
	if res.Elapsed != pt.Elapsed {
		t.Errorf("Result.Elapsed %v != Point.Elapsed %v", res.Elapsed, pt.Elapsed)
	}
	if res.Stats == nil {
		t.Error("Measure dropped the swept run's Stats")
	}
}

func TestRunAtLivelockDetection(t *testing.T) {
	// A baseline of ~1ns with a 300x factor bounds any real run, so the
	// time limit must trip and be reported as livelock, not error.
	pt, err := RunAt(radix.New(), apps.Config{Procs: 4, Scale: 0.0003, Seed: 1},
		KnobO, 0, sim.Time(1))
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Livelocked {
		t.Error("expected livelock with a 300ns budget")
	}
}
