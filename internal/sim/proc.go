package sim

import "math/rand"

// ClockKind classifies a clock advance for the optional per-processor
// clock hook (see Proc.SetClockHook).
type ClockKind uint8

const (
	// ClockCharge is an explicit Advance: local computation or a
	// communication overhead charge. The layer issuing the charge knows
	// what it was for; the hook only guarantees none goes unseen.
	ClockCharge ClockKind = iota
	// ClockSpin is an AdvanceTo past idle time toward a known future
	// event (for example a message already in flight).
	ClockSpin
	// ClockWake is the jump a parked processor's clock makes when an
	// event wakes it at a future time.
	ClockWake
	// ClockStretch is fault-injected time appended to an explicit charge
	// by the stretch hook (see Proc.SetStretch): slowdown windows and
	// one-off processor delays. Profilers account it separately from the
	// base charge, which layers above report via their own hooks.
	ClockStretch
)

type procState uint8

const (
	statePending procState = iota // goroutine created, never dispatched
	stateRunning                  // the single currently executing processor
	stateReady                    // runnable, waiting in the ready heap
	stateBlocked                  // parked until WakeAt
	stateDone                     // body returned
)

// Proc is one simulated processor in either of the runtime's two modes.
// In the coroutine shell (Run/RunEach) the body is an ordinary function
// on its own goroutine, suspended and resumed through the buffered
// resume channel; in resumable mode (RunResumables) the body is a state
// machine the driver steps inline and the channel is never created. Both
// modes manipulate virtual time through this handle, and both park on
// the same PollableWait machinery — which is why a program expressed
// either way sees the same virtual timeline at its waits. A Proc is not
// safe for use from outside its body's execution context (the engine
// guarantees only one body runs at a time, so cross-proc data structures
// need no locking, but a Proc handle must not be captured by another
// body); WakeAt is the one exception.
type Proc struct {
	id        int
	eng       *Engine
	clock     Time
	state     procState
	heapIndex int
	// resume is the coroutine-shell handoff channel. It exists only for
	// goroutine-backed processors (created by RunEach); resumable
	// processors leave it nil — they have no goroutine to hand control to.
	resume chan struct{}
	// body is the processor's state machine in resumable mode, nil in the
	// coroutine shell.
	body Resumable

	blockReason string
	// rng is built lazily by Rand: a million-processor machine whose
	// bodies never draw random numbers should not pay ~5 KiB of PRNG
	// state per processor up front.
	rng *rand.Rand

	// pendingWakes records WakeAt calls that arrived while the processor
	// was not parked (running, ready, or not yet started). Park consumes
	// them instead of blocking, so no wakeup is ever lost. Kept sorted
	// ascending; typically empty or a single element.
	pendingWakes []Time

	// wait, when non-nil, marks the processor as parked in a pollable
	// wait (see ParkPollable): the dispatcher may drive its wait-loop
	// iterations inline instead of resuming this goroutine.
	wait PollableWait

	// onClock, when set, observes every clock mutation (see SetClockHook).
	onClock func(kind ClockKind, from, to Time)

	// onStretch, when set, may append fault-injected time to every
	// explicit charge (see SetStretch).
	onStretch func(from, d Time) Time
}

func newProc(e *Engine, id int) *Proc {
	return &Proc{
		id:        id,
		eng:       e,
		state:     statePending,
		heapIndex: -1,
	}
}

// ID returns the processor number in [0, P).
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this processor belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() Time { return p.clock }

// Rand returns the processor's deterministic PRNG, constructing it on
// first use. The stream depends only on the engine seed and the
// processor id, so laziness cannot perturb any run's timeline.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.eng.seed*1_000_003 + int64(p.id)*7919 + 1))
	}
	return p.rng
}

// SetClockHook attaches fn to observe every clock mutation of this
// processor: explicit charges, idle spins toward known arrivals, and
// wake-time jumps. Together the observed [from, to) spans tile the
// processor's entire virtual timeline, which is what lets a profiler
// prove time-conservation. fn runs synchronously (zero-length advances
// are skipped) and must not manipulate virtual time. nil detaches.
func (p *Proc) SetClockHook(fn func(kind ClockKind, from, to Time)) { p.onClock = fn }

// SetStretch attaches fn, consulted after every explicit nonzero Advance
// with the charge's [from, from+d) span. The returned extra duration (if
// positive) is appended to the charge and reported to the clock hook as
// ClockStretch. This is the seam fault injection uses for per-processor
// slowdown windows and one-off delays: the charging layer still observes
// its base cost through its own hooks, while the injected extension is
// attributed separately. fn runs synchronously on the processor's
// goroutine in deterministic order and must not manipulate virtual time
// itself. nil detaches.
func (p *Proc) SetStretch(fn func(from, d Time) Time) { p.onStretch = fn }

// Advance charges d of local computation (or overhead) to the processor.
// Pure local work never requires a checkpoint: nothing another processor
// does can affect it, because messages are only observed at poll points.
//
//repro:hotpath
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	from := p.clock
	p.clock += d
	if p.onClock != nil && d > 0 {
		p.onClock(ClockCharge, from, p.clock)
	}
	if p.onStretch != nil && d > 0 {
		if extra := p.onStretch(from, d); extra > 0 {
			sf := p.clock
			p.clock += extra
			if p.onClock != nil {
				p.onClock(ClockStretch, sf, p.clock)
			}
		}
	}
}

// AdvanceTo moves the clock forward to t if t is in the future.
//
//repro:hotpath
func (p *Proc) AdvanceTo(t Time) {
	if t > p.clock {
		from := p.clock
		p.clock = t
		if p.onClock != nil {
			p.onClock(ClockSpin, from, t)
		}
	}
}

// Checkpoint is a synchronization point: all events due at or before the
// processor's clock are executed, and if any runnable processor now has a
// smaller clock (or equal clock and smaller ID), control transfers to it.
// Communication layers call this at every poll point so that message
// arrivals are observed in virtual-time order.
//
//repro:hotpath
func (p *Proc) Checkpoint() {
	e := p.eng
	if e.resumable {
		panic("sim: Checkpoint from a resumable body; use RunDueEvents and continuation waits")
	}
	if e.timeLimit > 0 && p.clock > e.timeLimit {
		panic(timeLimitPanic{})
	}
	switched := false
	for {
		for e.events.len() > 0 && e.events.peek().at <= p.clock {
			ev := e.events.pop()
			e.eventsRun++
			ev.fn(ev.arg, ev.at)
		}
		q := e.ready.peek()
		if q == nil || q.clock > p.clock || (q.clock == p.clock && q.id > p.id) {
			if !switched {
				e.fastChecks++
			}
			return
		}
		e.ready.pop()
		if q.wait != nil {
			// q is parked in a pollable wait: drive one iteration of it
			// from here instead of switching goroutines. q was the heap
			// minimum and p is running with a clock at or past q's, so q
			// sees exactly the state its own checkpoint would have.
			e.stepWait(q)
			// A real hand-off would have suspended p here until it was
			// the minimum again, with interim events draining at the
			// clocks of the processors that actually run — not at p's
			// (p's clock may lie far ahead and would fire future events
			// early). Rejoin the heap and let the dispatcher decide;
			// control returns when p is picked, and the loop then
			// re-drains at p's clock exactly as a resumed Checkpoint
			// would.
			switched = true
			p.state = stateReady
			e.ready.push(p)
			e.dispatch(p)
			continue
		}
		switched = true
		e.switchTo(p, q)
	}
}

// Park blocks the processor until another entity calls WakeAt on it.
// Callers are responsible for the condition loop: check the awaited
// condition, and Park again on spurious wakeups. Between the caller's
// condition check and the block there is no window in which an event can
// fire unobserved: Park runs no events itself, and events executed during
// the dispatch see the processor already marked blocked, so their WakeAt
// takes effect. Park panics (aborting the simulation with a deadlock
// diagnosis) if nothing can ever wake the processor.
//
//repro:hotpath
func (p *Proc) Park(reason string) {
	if p.eng.resumable {
		panic("sim: Park from a resumable body; return the wait from Resume instead")
	}
	if len(p.pendingWakes) > 0 {
		// A wakeup already arrived while we were running or ready; consume
		// the earliest one instead of blocking. Shift in place rather than
		// re-slicing so the backing array's capacity is never abandoned
		// (re-slicing from the front would shrink the capacity one element
		// per wake and force a steady trickle of re-allocations).
		t := p.pendingWakes[0]
		copy(p.pendingWakes, p.pendingWakes[1:])
		p.pendingWakes = p.pendingWakes[:len(p.pendingWakes)-1]
		p.AdvanceTo(t)
		p.Checkpoint()
		return
	}
	p.state = stateBlocked
	p.blockReason = reason
	p.eng.dispatch(p)
}

// PollableWait is a wait loop the engine can drive on the waiter's behalf.
// A processor spin-polling for a condition iterates a fixed shape — run a
// checkpoint, test the condition, service one due unit of work, spin
// forward to known future work, or park — and every step is expressible
// against engine and endpoint state rather than the body's stack. A waiter
// that parks through ParkPollable therefore never needs its goroutine
// resumed just to discover there is nothing to do: whichever goroutine is
// dispatching runs the iterations inline, at the same virtual instants and
// in the same global order, and hands the CPU over only when Ready reports
// the condition holds. The methods must not call Park, Checkpoint, or
// anything else that yields.
type PollableWait interface {
	// Ready reports whether the awaited condition holds; the wait ends.
	Ready(p *Proc) bool
	// PollOne services at most one unit of work due at or before p's
	// clock (for example one arrived message, charging its receive
	// overhead), reporting whether it did.
	PollOne(p *Proc) bool
	// NextWork returns the earliest known future instant at which work
	// for this waiter arrives (for example the head in-flight message),
	// or ok=false when none is known and the processor must block.
	NextWork(p *Proc) (t Time, ok bool)
}

// ParkPollable parks the processor like Park, but registers w so the
// engine can drive the wait inline (see PollableWait). It returns true
// when the engine established Ready and handed the CPU back — the caller
// leaves its wait loop without re-testing — and false when a pending
// wakeup was consumed instead of blocking, in which case the caller loops
// and re-tests exactly as it would after Park.
//
//repro:hotpath
func (p *Proc) ParkPollable(w PollableWait, reason string) bool {
	if p.eng.resumable {
		panic("sim: ParkPollable from a resumable body; return the wait from Resume instead")
	}
	if len(p.pendingWakes) > 0 {
		t := p.pendingWakes[0]
		copy(p.pendingWakes, p.pendingWakes[1:])
		p.pendingWakes = p.pendingWakes[:len(p.pendingWakes)-1]
		p.AdvanceTo(t)
		p.Checkpoint()
		return false
	}
	p.state = stateBlocked
	p.blockReason = reason
	p.wait = w
	p.eng.dispatch(p)
	return true
}

// WakeAt makes a parked processor runnable at time t (or at its own clock,
// whichever is later). If the processor is not currently parked, the wakeup
// is recorded and the processor's next Park returns (at time t) instead of
// blocking, so wakeups are never lost. WakeAt is the only Proc method that
// may be called from outside p's own goroutine context (from events or
// other bodies).
//
//repro:hotpath
func (p *Proc) WakeAt(t Time) {
	switch p.state {
	case stateBlocked:
		if t > p.clock {
			from := p.clock
			p.clock = t
			if p.onClock != nil {
				p.onClock(ClockWake, from, t)
			}
		}
		p.state = stateReady
		p.eng.ready.push(p)
	case stateDone:
		// Nothing to do.
	default:
		// Insert into the sorted pending-wake list.
		i := len(p.pendingWakes)
		for i > 0 && p.pendingWakes[i-1] > t {
			i--
		}
		if i < len(p.pendingWakes) && p.pendingWakes[i] == t {
			return // dedup
		}
		//lint:allow hotpathalloc pending-wake list growth; typically empty or one element, capacity is kept
		p.pendingWakes = append(p.pendingWakes, 0)
		copy(p.pendingWakes[i+1:], p.pendingWakes[i:])
		p.pendingWakes[i] = t
	}
}

// SleepUntil parks the processor until virtual time t. Spurious wakeups
// (for example message deliveries) do not end the sleep early.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.clock {
		p.Checkpoint()
		return
	}
	p.eng.ScheduleCall(t, wakeProcEvent, p)
	for p.clock < t {
		p.Park("sleep")
	}
}

// wakeProcEvent is SleepUntil's alarm: a top-level EventFn, so arming a
// sleep allocates nothing (the *Proc rides in the event's arg).
func wakeProcEvent(arg any, at Time) { arg.(*Proc).WakeAt(at) }

// Sleep parks the processor for a duration of virtual time.
func (p *Proc) Sleep(d Time) { p.SleepUntil(p.clock + d) }
