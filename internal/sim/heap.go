package sim

// The scheduler's two priority queues are 4-ary min-heaps. Both orders
// are strict total orders — (at, seq) for events, (clock, id) for
// processors — so the pop sequence is independent of heap shape and a
// wider fan-out is purely a constant-factor optimization: half the sift
// depth of a binary heap, and the four children of a node share a cache
// line. Determinism is unaffected by construction.

// event is one pending scheduler event. Events are stored by value in
// the heap's slice, so scheduling allocates nothing once the slice has
// grown to the workload's high-water mark; the closure-free EventFn+arg
// representation (see Engine.ScheduleCall) keeps the caller side
// allocation-free too.
type event struct {
	at  Time
	seq int64
	fn  EventFn
	arg any
}

type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	if h.ev[i].at != h.ev[j].at {
		return h.ev[i].at < h.ev[j].at
	}
	return h.ev[i].seq < h.ev[j].seq
}

//repro:hotpath
func (h *eventHeap) push(e event) {
	//lint:allow hotpathalloc amortized heap growth; the slice reaches its high-water mark during warmup
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) peek() *event {
	if len(h.ev) == 0 {
		return nil
	}
	return &h.ev[0]
}

//repro:hotpath
func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev[last] = event{} // release the fn/arg references
	h.ev = h.ev[:last]
	h.siftDown(0)
	return top
}

//repro:hotpath
func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		small := i
		end := first + 4
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if h.less(c, small) {
				small = c
			}
		}
		if small == i {
			return
		}
		h.ev[i], h.ev[small] = h.ev[small], h.ev[i]
		i = small
	}
}

// procHeap is a 4-ary min-heap of ready processors ordered by
// (clock, id). Processor identity breaks ties so the schedule is stable.
// Each Proc caches its heap index for O(log n) removal and re-keying.
type procHeap struct {
	ps []*Proc
}

func (h *procHeap) len() int { return len(h.ps) }

func (h *procHeap) less(i, j int) bool {
	a, b := h.ps[i], h.ps[j]
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (h *procHeap) swap(i, j int) {
	h.ps[i], h.ps[j] = h.ps[j], h.ps[i]
	h.ps[i].heapIndex = i
	h.ps[j].heapIndex = j
}

//repro:hotpath
func (h *procHeap) push(p *Proc) {
	p.heapIndex = len(h.ps)
	//lint:allow hotpathalloc amortized heap growth; bounded by the processor count
	h.ps = append(h.ps, p)
	h.siftUp(p.heapIndex)
}

func (h *procHeap) peek() *Proc {
	if len(h.ps) == 0 {
		return nil
	}
	return h.ps[0]
}

//repro:hotpath
func (h *procHeap) pop() *Proc {
	top := h.ps[0]
	h.remove(0)
	return top
}

// remove deletes the element at index i.
//
//repro:hotpath
func (h *procHeap) remove(i int) {
	last := len(h.ps) - 1
	if i != last {
		h.swap(i, last)
	}
	h.ps[last].heapIndex = -1
	h.ps = h.ps[:last]
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
}

//repro:hotpath
func (h *procHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

//repro:hotpath
func (h *procHeap) siftDown(i int) {
	n := len(h.ps)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		small := i
		end := first + 4
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if h.less(c, small) {
				small = c
			}
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
