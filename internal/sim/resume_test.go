package sim

import (
	"errors"
	"strings"
	"testing"
)

// stepFn adapts a closure to Resumable for tests.
type stepFn func(p *Proc) (PollableWait, bool)

func (f stepFn) Resume(p *Proc) (PollableWait, bool) { return f(p) }

// ctrWait is a minimal pollable wait on a shared counter.
type ctrWait struct {
	ctr    *int64
	target int64
}

func (w *ctrWait) Ready(_ *Proc) bool            { return *w.ctr >= w.target }
func (w *ctrWait) PollOne(_ *Proc) bool          { return false }
func (w *ctrWait) NextWork(_ *Proc) (Time, bool) { return 0, false }
func (w *ctrWait) WaitReason() string            { return "test: counter wait" }

func TestRunResumablesAdvances(t *testing.T) {
	e := New(Config{Procs: 4, Seed: 1})
	bodies := make([]Resumable, 4)
	for i := range bodies {
		d := Time(i+1) * Microsecond
		bodies[i] = stepFn(func(p *Proc) (PollableWait, bool) {
			p.Advance(d)
			return nil, true
		})
	}
	if err := e.RunResumables(bodies); err != nil {
		t.Fatal(err)
	}
	if got, want := e.MaxClock(), 4*Microsecond; got != want {
		t.Fatalf("MaxClock = %v, want %v", got, want)
	}
}

// TestRunResumablesWaitChain has proc 0 release procs 1..P-1 through a
// counter set by a scheduled event; each released proc then advances and
// finishes. Exercises park, event-driven wake, and multi-step bodies.
func TestRunResumablesWaitChain(t *testing.T) {
	const P = 8
	e := New(Config{Procs: P, Seed: 1})
	var released int64
	bodies := make([]Resumable, P)
	bodies[0] = stepFn(func(p *Proc) (PollableWait, bool) {
		p.Advance(10 * Microsecond)
		at := p.Clock()
		e.ScheduleAt(at, func() {
			released = 1
			for i := 1; i < P; i++ {
				e.Proc(i).WakeAt(at)
			}
		})
		return nil, true
	})
	for i := 1; i < P; i++ {
		step := 0
		bodies[i] = stepFn(func(p *Proc) (PollableWait, bool) {
			switch step {
			case 0:
				step = 1
				return &ctrWait{ctr: &released, target: 1}, false
			default:
				if released != 1 {
					t.Errorf("proc %d resumed before release", p.ID())
				}
				if p.Clock() < 10*Microsecond {
					t.Errorf("proc %d resumed at %v, want >= 10µs", p.ID(), p.Clock())
				}
				p.Advance(Microsecond)
				return nil, true
			}
		})
	}
	if err := e.RunResumables(bodies); err != nil {
		t.Fatal(err)
	}
	if got, want := e.MaxClock(), 11*Microsecond; got != want {
		t.Fatalf("MaxClock = %v, want %v", got, want)
	}
}

func TestRunResumablesDeadlock(t *testing.T) {
	e := New(Config{Procs: 2, Seed: 1})
	var never int64
	parked := false
	bodies := []Resumable{
		stepFn(func(p *Proc) (PollableWait, bool) { return nil, true }),
		stepFn(func(p *Proc) (PollableWait, bool) {
			if !parked {
				parked = true
				return &ctrWait{ctr: &never, target: 1}, false
			}
			return nil, true
		}),
	}
	err := e.RunResumables(bodies)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "test: counter wait") {
		t.Fatalf("deadlock diagnostics missing wait reason: %v", err)
	}
}

func TestRunResumablesTimeLimit(t *testing.T) {
	// The limit check runs between Resume calls and in stepWait, like the
	// Checkpoint check in coroutine mode: a body that advances past the
	// limit is caught at its next park.
	e := New(Config{Procs: 1, Seed: 1, TimeLimit: Microsecond})
	step := 0
	var done int64
	body := stepFn(func(p *Proc) (PollableWait, bool) {
		if step == 0 {
			step = 1
			p.Advance(10 * Microsecond)
			return &ctrWait{ctr: &done, target: 1}, false
		}
		return nil, true
	})
	err := e.RunResumables([]Resumable{body})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestResumableForbidsCoroutinePrimitives(t *testing.T) {
	e := New(Config{Procs: 1, Seed: 1})
	err := e.RunResumables([]Resumable{stepFn(func(p *Proc) (PollableWait, bool) {
		p.Checkpoint()
		return nil, true
	})})
	if err == nil || !strings.Contains(err.Error(), "Checkpoint from a resumable body") {
		t.Fatalf("err = %v, want Checkpoint violation", err)
	}
}

func TestEngineSingleUse(t *testing.T) {
	e := New(Config{Procs: 1, Seed: 1})
	if err := e.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunResumables([]Resumable{stepFn(func(p *Proc) (PollableWait, bool) { return nil, true })}); err == nil {
		t.Fatal("second start on one engine should fail")
	}
}
