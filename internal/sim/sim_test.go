package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		us   float64
		want Time
	}{
		{1.0, 1000},
		{2.9, 2900},
		{0.0, 0},
		{5.8, 5800},
		{1.8, 1800},
		{-1.0, -1000},
	}
	for _, c := range cases {
		if got := FromMicros(c.us); got != c.want {
			t.Errorf("FromMicros(%v) = %d, want %d", c.us, got, c.want)
		}
	}
	if got := Time(2900).Micros(); got != 2.9 {
		t.Errorf("Micros() = %v, want 2.9", got)
	}
	if got := Time(3 * Second).Seconds(); got != 3.0 {
		t.Errorf("Seconds() = %v, want 3", got)
	}
	if got := Time(1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis() = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	if s := (2 * Second).String(); !strings.Contains(s, "s") {
		t.Errorf("String() = %q", s)
	}
	if s := (5 * Microsecond).String(); !strings.Contains(s, "µs") {
		t.Errorf("String() = %q", s)
	}
	if s := (5 * Millisecond).String(); !strings.Contains(s, "ms") {
		t.Errorf("String() = %q", s)
	}
}

func TestSingleProcAdvance(t *testing.T) {
	e := New(Config{Procs: 1})
	err := e.Run(func(p *Proc) {
		p.Advance(10 * Microsecond)
		p.Advance(5 * Microsecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Proc(0).Clock(); got != 15*Microsecond {
		t.Errorf("clock = %v, want 15µs", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	e := New(Config{Procs: 1})
	err := e.Run(func(p *Proc) { p.Advance(-1) })
	if err == nil {
		t.Fatal("expected error from negative Advance")
	}
}

func TestNewBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Procs=0")
		}
	}()
	New(Config{Procs: 0})
}

func TestMinClockScheduling(t *testing.T) {
	// Two processors append to a shared log at checkpoints; the log must be
	// ordered by virtual time regardless of goroutine interleaving.
	var log []string
	e := New(Config{Procs: 2})
	err := e.Run(func(p *Proc) {
		step := Time(10)
		if p.ID() == 1 {
			step = 7
		}
		for i := 0; i < 5; i++ {
			p.Advance(step)
			p.Checkpoint()
			log = append(log, fmt.Sprintf("p%d@%d", p.ID(), p.Clock()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Extract times; they must be globally non-decreasing.
	var prev Time = -1
	for _, entry := range log {
		var id int
		var at Time
		fmt.Sscanf(entry, "p%d@%d", &id, &at)
		if at < prev {
			t.Fatalf("log out of order: %v", log)
		}
		prev = at
	}
}

func TestEventsExecuteInOrder(t *testing.T) {
	var fired []Time
	e := New(Config{Procs: 1})
	err := e.Run(func(p *Proc) {
		e.ScheduleAt(30, func() { fired = append(fired, 30) })
		e.ScheduleAt(10, func() { fired = append(fired, 10) })
		e.ScheduleAt(20, func() { fired = append(fired, 20) })
		p.Advance(100)
		p.Checkpoint()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 20 || fired[2] != 30 {
		t.Errorf("events fired %v, want [10 20 30]", fired)
	}
}

func TestEventFIFOAtSameInstant(t *testing.T) {
	var fired []int
	e := New(Config{Procs: 1})
	err := e.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			i := i
			e.ScheduleAt(10, func() { fired = append(fired, i) })
		}
		p.Advance(10)
		p.Checkpoint()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(fired) || len(fired) != 5 {
		t.Errorf("same-instant events fired %v, want FIFO [0..4]", fired)
	}
}

func TestParkAndWake(t *testing.T) {
	// Proc 1 parks; proc 0 schedules an event that wakes it at t=50.
	var wokeAt Time
	e := New(Config{Procs: 2})
	err := e.Run(func(p *Proc) {
		if p.ID() == 0 {
			target := e.Proc(1)
			e.ScheduleAt(50, func() { target.WakeAt(50) })
			p.Advance(100)
			p.Checkpoint()
			return
		}
		p.Park("waiting for proc 0")
		wokeAt = p.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if wokeAt != 50 {
		t.Errorf("woke at %v, want 50", wokeAt)
	}
}

func TestWakeAtDoesNotRewindClock(t *testing.T) {
	e := New(Config{Procs: 2})
	err := e.Run(func(p *Proc) {
		if p.ID() == 0 {
			target := e.Proc(1)
			e.ScheduleAt(10, func() { target.WakeAt(10) })
			p.Advance(100)
			p.Checkpoint()
			return
		}
		p.Advance(40) // clock ahead of the wake time
		p.Park("wait")
		if p.Clock() != 40 {
			t.Errorf("clock rewound to %v", p.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSleepUntil(t *testing.T) {
	e := New(Config{Procs: 1})
	err := e.Run(func(p *Proc) {
		p.SleepUntil(77)
		if p.Clock() != 77 {
			t.Errorf("clock after sleep = %v, want 77", p.Clock())
		}
		p.SleepUntil(10) // in the past: no-op
		if p.Clock() != 77 {
			t.Errorf("clock after past sleep = %v, want 77", p.Clock())
		}
		p.Sleep(3)
		if p.Clock() != 80 {
			t.Errorf("clock after Sleep(3) = %v, want 80", p.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New(Config{Procs: 2})
	err := e.Run(func(p *Proc) {
		p.Park("never woken")
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "never woken") {
		t.Errorf("deadlock error missing park reason: %v", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	e := New(Config{Procs: 4})
	err := e.Run(func(p *Proc) {
		p.Advance(Time(p.ID()) * 10)
		p.Checkpoint()
		if p.ID() == 2 {
			panic("boom")
		}
		p.Park("stranded by the panic")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic error, got %v", err)
	}
	if !strings.Contains(err.Error(), "proc 2") {
		t.Errorf("error should identify proc 2: %v", err)
	}
}

func TestFirstFailureWins(t *testing.T) {
	// Two processors fail concurrently: proc 0 panics first (it is the
	// first to reach its panic site in virtual-time order), and proc 1's
	// body defers a second panic into the abort unwind. The recorded
	// failure must be the root cause, not whichever unwind finished last.
	e := New(Config{Procs: 2})
	err := e.Run(func(p *Proc) {
		if p.ID() == 1 {
			defer func() {
				// Runs while unwinding via the abort path; must not
				// overwrite the root-cause failure.
				panic("secondary failure during unwind")
			}()
			p.Park("waiting forever")
		}
		p.Advance(5)
		p.Checkpoint()
		panic("root cause")
	})
	if err == nil || !strings.Contains(err.Error(), "root cause") {
		t.Fatalf("expected root-cause failure to win, got %v", err)
	}
	if strings.Contains(err.Error(), "secondary failure") {
		t.Errorf("secondary unwind panic masked the root cause: %v", err)
	}
}

func TestTimeLimitFirstFailureWins(t *testing.T) {
	// A time-limit abort must also respect first-wins when a body panics
	// during the resulting unwind.
	e := New(Config{Procs: 2, TimeLimit: 100})
	err := e.Run(func(p *Proc) {
		if p.ID() == 1 {
			defer func() { panic("secondary") }()
			p.Park("waiting forever")
		}
		p.Advance(1000)
		p.Checkpoint()
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("expected ErrTimeLimit, got %v", err)
	}
}

func TestScheduleAndSleepZeroAlloc(t *testing.T) {
	// The pooled event path: once the event heap has reached its
	// high-water mark, arming a sleep (ScheduleCall + park + fast-path
	// wake) must not allocate. Measured from inside the body, where the
	// steady state lives.
	e := New(Config{Procs: 1})
	var got uint64
	err := e.Run(func(p *Proc) {
		for i := 0; i < 100; i++ { // warm the event heap
			p.Sleep(10)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < 1000; i++ {
			p.Sleep(10)
		}
		runtime.ReadMemStats(&after)
		got = after.Mallocs - before.Mallocs
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("steady-state Sleep path allocated %d times in 1000 iterations, want 0", got)
	}
}

func TestRunEachDistinctBodies(t *testing.T) {
	e := New(Config{Procs: 3})
	got := make([]int, 3)
	bodies := make([]func(*Proc), 3)
	for i := range bodies {
		i := i
		bodies[i] = func(p *Proc) { got[p.ID()] = i * 100 }
	}
	if err := e.RunEach(bodies); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*100 {
			t.Errorf("proc %d ran wrong body: %d", i, v)
		}
	}
}

func TestRunEachLengthMismatch(t *testing.T) {
	e := New(Config{Procs: 2})
	if err := e.RunEach([]func(*Proc){func(*Proc) {}}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Time, int64, int64) {
		e := New(Config{Procs: 8, Seed: 42})
		err := e.Run(func(p *Proc) {
			rng := p.Rand()
			for i := 0; i < 200; i++ {
				p.Advance(Time(rng.Intn(20) + 1))
				if rng.Intn(3) == 0 {
					target := e.Proc(rng.Intn(8))
					at := p.Clock() + Time(rng.Intn(50))
					e.ScheduleAt(at, func() { target.WakeAt(at) })
				}
				p.Checkpoint()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return e.MaxClock(), e.Switches(), e.EventsRun()
	}
	c1, s1, ev1 := run()
	c2, s2, ev2 := run()
	if c1 != c2 || s1 != s2 || ev1 != ev2 {
		t.Errorf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", c1, s1, ev1, c2, s2, ev2)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	final := func(seed int64) Time {
		e := New(Config{Procs: 4, Seed: seed})
		if err := e.Run(func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Advance(Time(p.Rand().Intn(100) + 1))
				p.Checkpoint()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return e.MaxClock()
	}
	if final(1) == final(2) {
		t.Error("different seeds should give different random schedules")
	}
}

func TestSchedulerCounters(t *testing.T) {
	e := New(Config{Procs: 2})
	if err := e.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(10)
			p.Checkpoint()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if e.Switches() == 0 {
		t.Error("expected some goroutine switches")
	}

	// A lone processor checkpointing never needs a goroutine switch.
	solo := New(Config{Procs: 1})
	if err := solo.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(10)
			p.Checkpoint()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if solo.FastCheckpoints() != 10 {
		t.Errorf("fast checkpoints = %d, want 10", solo.FastCheckpoints())
	}
	if solo.Switches() != 0 {
		t.Errorf("switches = %d, want 0", solo.Switches())
	}
}

func TestPendingWakeConsumedByPark(t *testing.T) {
	// Two wakeups arrive while the target is still ready; both must be
	// observed by successive Parks, in order.
	var wakes []Time
	e := New(Config{Procs: 2})
	err := e.Run(func(p *Proc) {
		if p.ID() == 0 {
			target := e.Proc(1)
			e.ScheduleAt(20, func() { target.WakeAt(20) })
			e.ScheduleAt(30, func() { target.WakeAt(30) })
			p.Advance(100)
			p.Checkpoint()
			return
		}
		p.Advance(1)
		p.Checkpoint() // proc 0 runs ahead, both events fire while we are ready
		p.Park("first")
		wakes = append(wakes, p.Clock())
		p.Park("second")
		wakes = append(wakes, p.Clock())
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wakes) != 2 || wakes[0] != 20 || wakes[1] != 30 {
		t.Errorf("wakes = %v, want [20 30]", wakes)
	}
}

// Property: for any batch of event times, the engine executes them in
// non-decreasing time order with FIFO tie-breaks.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		var fired []Time
		e := New(Config{Procs: 1})
		err := e.Run(func(p *Proc) {
			for _, r := range raw {
				at := Time(r)
				e.ScheduleAt(at, func() { fired = append(fired, at) })
			}
			p.Advance(Time(70000))
			p.Checkpoint()
		})
		if err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the global log of checkpoint timestamps across P processors is
// non-decreasing for arbitrary per-proc step sequences.
func TestCausalOrderProperty(t *testing.T) {
	f := func(steps [][]uint8, procsRaw uint8) bool {
		procs := int(procsRaw)%6 + 2
		if len(steps) < procs {
			return true
		}
		var stamps []Time
		e := New(Config{Procs: procs})
		err := e.Run(func(p *Proc) {
			mine := steps[p.ID()]
			if len(mine) > 50 {
				mine = mine[:50]
			}
			for _, s := range mine {
				p.Advance(Time(s) + 1)
				p.Checkpoint()
				stamps = append(stamps, p.Clock())
			}
		})
		if err != nil {
			return false
		}
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProcHeapStress(t *testing.T) {
	// Exercise push/pop/remove invariants directly.
	var h procHeap
	e := New(Config{Procs: 1})
	ps := make([]*Proc, 64)
	for i := range ps {
		ps[i] = newProc(e, i)
		ps[i].clock = Time((i * 37) % 64)
		h.push(ps[i])
	}
	var prev Time = -1
	var prevID = -1
	for h.len() > 0 {
		p := h.pop()
		if p.clock < prev || (p.clock == prev && p.id < prevID) {
			t.Fatalf("heap order violated: %d@%d after %d@%d", p.id, p.clock, prevID, prev)
		}
		prev, prevID = p.clock, p.id
	}
}

func TestBenchmarkableManyProcs(t *testing.T) {
	e := New(Config{Procs: 32})
	err := e.Run(func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(Time(1 + (p.ID()+i)%13))
			p.Checkpoint()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxClock() == 0 {
		t.Error("clock did not advance")
	}
}

func TestTimeLimit(t *testing.T) {
	e := New(Config{Procs: 2, TimeLimit: 100})
	err := e.Run(func(p *Proc) {
		for {
			p.Advance(10)
			p.Checkpoint()
		}
	})
	if err == nil || !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("expected ErrTimeLimit, got %v", err)
	}
}
