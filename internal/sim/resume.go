package sim

import "fmt"

// Resumable is a processor body expressed as an explicit state machine:
// the engine calls Resume repeatedly on the owning processor's behalf.
// Each call runs the body forward — charging time, sending messages,
// mutating its own state — until the body either finishes (done=true) or
// must wait (wait non-nil). The body never owns a goroutine or a stack
// across calls: everything it needs between calls lives in its own
// struct, which is what lets a single OS thread drive a million
// simulated processors.
//
// Contract:
//
//   - Resume runs on the driver's goroutine with the processor in
//     stateRunning. It must not call Park, ParkPollable, Checkpoint, or
//     Poll (those are coroutine-shell primitives that yield a stack the
//     resumable body does not have). Poll points are expressed with
//     Proc.RunDueEvents plus the messaging layer's continuation
//     primitives instead.
//   - The returned wait is driven by the engine exactly as a
//     ParkPollable wait would be (see Engine.stepWait): the next Resume
//     call happens only once the wait's Ready condition has been
//     established, with every event due by the processor's clock already
//     executed. Bodies may therefore treat re-entry as "the wait
//     completed", just as coroutine code treats a true return from
//     ParkPollable.
//   - Returning (nil, false) is a contract violation and panics: a body
//     that cannot finish must name what it is waiting for, or the
//     scheduler could neither run nor retire it.
type Resumable interface {
	Resume(p *Proc) (wait PollableWait, done bool)
}

// WaitReasoner optionally labels a PollableWait for deadlock diagnostics:
// a resumable processor parked on a wait that implements it reports the
// label as its block reason (coroutine parks pass an explicit string to
// Park/ParkPollable instead).
type WaitReasoner interface {
	WaitReason() string
}

// RunResumables executes one Resumable body per processor and returns
// when all have finished, like RunEach — but entirely on the caller's
// goroutine. No processor goroutines are spawned and no channels are
// touched: the driver loop picks the minimum-(clock, id) runnable
// processor, steps parked waits inline (stepWait), and calls Resume for
// processors whose wait has completed. The schedule is governed by the
// same heaps, the same event drains, and the same tie-breaks as the
// coroutine mode, so a program expressed both ways sees the identical
// virtual timeline wherever it parks; see DESIGN.md §11 for the
// equivalence argument and the one divergence (poll points cannot yield
// the stack mid-body).
func (e *Engine) RunResumables(bodies []Resumable) error {
	if len(bodies) != len(e.procs) {
		return fmt.Errorf("sim: RunResumables got %d bodies for %d procs", len(bodies), len(e.procs))
	}
	if e.started {
		return fmt.Errorf("sim: engine already started; New an engine per run")
	}
	e.started = true
	e.resumable = true
	e.liveCount = len(e.procs)
	for i, p := range e.procs {
		p.body = bodies[i]
		p.state = stateReady
		e.ready.push(p)
	}
	e.drive()
	return e.failure
}

// drive is the resumable-mode scheduler loop. It terminates when every
// body is done, when the simulation deadlocks, or when a failure aborts
// the run (Engine.Fail, a time limit, or a panicking body).
func (e *Engine) drive() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(abortPanic); ok {
			// Fail/stepWait recorded the failure and tore the run down;
			// the driver simply stops.
			return
		}
		// A body (or a handler it ran) panicked. Attribute it like
		// procMain does for a coroutine body, first failure wins.
		p := e.stepping
		if p != nil {
			e.recordFailure(fmt.Errorf("sim: proc %d panicked at %v: %v", p.id, p.clock, r))
		} else {
			e.recordFailure(fmt.Errorf("sim: resumable driver panicked: %v", r))
		}
		e.abortFromRunning()
	}()
	for {
		p := e.next()
		if p == nil {
			if e.liveCount == 0 {
				return
			}
			e.recordFailure(e.deadlockError())
			return
		}
		if p.wait != nil {
			// Parked in a pollable wait: drive one iteration, exactly as
			// dispatch does for coroutine waiters.
			e.stepWait(p)
			continue
		}
		e.resumeStep(p)
	}
}

// resumeStep runs one Resume call on the minimum-clock processor and
// parks or retires it according to the result. The park leaves the
// processor in the ready heap with its wait registered — the same shape
// WakeAt produces — so the driver's next pop runs the first wait
// iteration (condition test, one poll, spin-forward, or true block) at
// the same point the coroutine wait loop would have run it after its
// opening Checkpoint.
//
//repro:hotpath
func (e *Engine) resumeStep(p *Proc) {
	if e.timeLimit > 0 && p.clock > e.timeLimit {
		// The check a coroutine body would have hit at its next
		// Checkpoint; resumable bodies reach it between Resume calls.
		e.recordFailure(fmt.Errorf("sim: proc %d at %v: %w", p.id, p.clock, ErrTimeLimit))
		e.abortFromRunning()
		panic(abortPanic{})
	}
	p.state = stateRunning
	e.stepping = p
	w, done := p.body.Resume(p)
	e.stepping = nil
	if done {
		p.state = stateDone
		p.body = nil
		e.liveCount--
		return
	}
	if w == nil {
		panic(fmt.Sprintf("sim: proc %d Resume returned neither a wait nor done", p.id))
	}
	p.wait = w
	if r, ok := w.(WaitReasoner); ok {
		p.blockReason = r.WaitReason()
	} else {
		p.blockReason = "resumable wait"
	}
	p.state = stateReady
	e.ready.push(p)
}

// RunDueEvents executes every pending event due at or before the
// processor's clock. It is the event half of a Checkpoint — the half a
// resumable body is allowed to use: deliveries and credit returns
// materialize, parked processors are woken (their wakes queue as
// pending), but no control transfer happens. Continuation-mode poll
// points call this before inspecting their inboxes.
//
//repro:hotpath
func (p *Proc) RunDueEvents() { p.eng.drainEvents(p.clock) }

// Yield is the resumable-mode Checkpoint: a wait that is ready the
// moment it is tested. Returning it from Resume parks the processor in
// the ready heap at its current clock, so every processor whose clock is
// lower runs first and the body is re-entered immediately afterwards —
// the scheduling effect of a coroutine Checkpoint, without a stack to
// switch away from. Spin loops (for example a lock retry) must yield
// this way between iterations or peers could never make the awaited
// progress.
var Yield PollableWait = yieldWait{}

type yieldWait struct{}

func (yieldWait) Ready(*Proc) bool            { return true }
func (yieldWait) PollOne(*Proc) bool          { return false }
func (yieldWait) NextWork(*Proc) (Time, bool) { return 0, false }
func (yieldWait) WaitReason() string          { return "sim: yield" }
