// Package sim provides a deterministic discrete-event simulation engine
// for SPMD cluster programs, with two processor runtimes behind one
// scheduling core.
//
// In the coroutine shell (Engine.Run / RunEach), each of the P logical
// processors runs its body on a goroutine under a cooperative scheduler:
// exactly one executes at a time, and at every synchronization point (a
// "checkpoint") control passes to the runnable processor with the
// smallest virtual clock. In resumable mode (Engine.RunResumables), a
// processor body is a state machine the engine steps inline from one
// driver loop on the caller's goroutine — no goroutines, channels, or
// stacks per processor, which is what lets the simulated machine scale
// to a million processors. Both modes share the ready and event heaps,
// the pollable-wait machinery (the engine drives parked waits itself in
// either mode), and the same stable tie-breaking, so every run is
// bit-for-bit reproducible and the two runtimes agree wherever a
// processor parks. Pending events whose timestamps have been reached are
// executed before any processor proceeds past them, so processors
// observe a causally consistent virtual timeline.
package sim

import "fmt"

// Time is a point in (or span of) virtual time, measured in nanoseconds.
// Nanosecond granularity lets LogGP parameters expressed in fractional
// microseconds (for example o_send = 1.8 µs) be represented exactly.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Micros converts t to floating-point microseconds, the unit the paper
// reports LogGP parameters in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromMicros builds a Time from floating-point microseconds, rounding to the
// nearest nanosecond.
func FromMicros(us float64) Time {
	if us < 0 {
		return Time(us*float64(Microsecond) - 0.5)
	}
	return Time(us*float64(Microsecond) + 0.5)
}

// FromSeconds builds a Time from floating-point seconds.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fµs", t.Micros())
	}
}
