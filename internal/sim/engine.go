package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Config controls engine construction.
type Config struct {
	// Procs is the number of logical processors (the LogGP "P"). Must be >= 1.
	Procs int
	// Seed feeds each processor's deterministic PRNG. Two runs with equal
	// seeds and equal programs produce identical virtual timelines.
	Seed int64
	// TimeLimit, when nonzero, aborts the run with ErrTimeLimit once any
	// processor's clock passes it. This bounds livelocking programs (the
	// paper's Barnes does not complete at high overhead).
	TimeLimit Time
}

// Engine is a deterministic discrete-event simulator for SPMD programs.
// Create one with New, then call Run (or RunEach) exactly once.
type Engine struct {
	procs     []*Proc
	ready     procHeap
	events    eventHeap
	timeLimit Time

	eventSeq   int64
	liveCount  int
	aborted    bool
	failure    error
	doneCh     chan struct{}
	doneClosed bool
	wg         sync.WaitGroup

	// Counters exposed for scheduler diagnostics and ablation benchmarks.
	switches   int64 // goroutine hand-offs performed
	eventsRun  int64 // events executed
	fastChecks int64 // checkpoints that kept running without a switch
}

// abortSentinel unwinds parked processor goroutines when the engine aborts.
type abortPanic struct{}

// ErrTimeLimit is returned by Run when Config.TimeLimit was exceeded.
var ErrTimeLimit = fmt.Errorf("sim: virtual time limit exceeded")

// timeLimitPanic carries ErrTimeLimit out of a checkpoint.
type timeLimitPanic struct{}

// New builds an engine with cfg.Procs processors, all at virtual time zero.
func New(cfg Config) *Engine {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("sim: Config.Procs must be >= 1, got %d", cfg.Procs))
	}
	//lint:allow goroutinefree doneCh signals run completion to the single external caller of Run
	e := &Engine{doneCh: make(chan struct{}), timeLimit: cfg.TimeLimit}
	e.procs = make([]*Proc, cfg.Procs)
	for i := range e.procs {
		e.procs[i] = newProc(e, i, cfg.Seed)
	}
	return e
}

// P returns the number of processors.
func (e *Engine) P() int { return len(e.procs) }

// Proc returns processor i. It is mainly useful for inspecting clocks after
// a run; during a run, program code receives its own *Proc.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Switches reports how many goroutine hand-offs the scheduler performed.
func (e *Engine) Switches() int64 { return e.switches }

// EventsRun reports how many discrete events the engine executed.
func (e *Engine) EventsRun() int64 { return e.eventsRun }

// FastCheckpoints reports checkpoints resolved without a goroutine switch.
func (e *Engine) FastCheckpoints() int64 { return e.fastChecks }

// MaxClock returns the largest processor clock, i.e. the parallel makespan.
func (e *Engine) MaxClock() Time {
	var mx Time
	for _, p := range e.procs {
		if p.clock > mx {
			mx = p.clock
		}
	}
	return mx
}

// Fail aborts the simulation with err; Run (or RunEach) returns it. It
// may be called from an event or from a processor body — the layer that
// detects an unrecoverable protocol condition (for example a message
// exceeding its retransmission cap) uses it to surface a typed error
// instead of letting the run hang. Fail does not return: it unwinds the
// calling goroutine through the engine's abort path. If a failure is
// already recorded, the first one wins.
func (e *Engine) Fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.abortFromRunning()
	panic(abortPanic{})
}

// ScheduleAt registers fn to run at virtual time t. Events run in (t, FIFO)
// order, in the goroutine of whichever processor reaches them first; they
// must not block and must not call Park or Checkpoint. Events typically
// deposit a message and call Proc.WakeAt.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	e.eventSeq++
	e.events.push(event{at: t, seq: e.eventSeq, fn: fn})
}

// Run executes body once per processor (SPMD style) and returns when every
// processor's body has returned. It returns an error if the simulation
// deadlocks (every processor parked with no pending events) or if any
// processor panics.
func (e *Engine) Run(body func(*Proc)) error {
	bodies := make([]func(*Proc), len(e.procs))
	for i := range bodies {
		bodies[i] = body
	}
	return e.RunEach(bodies)
}

// RunEach is Run with a distinct body per processor.
func (e *Engine) RunEach(bodies []func(*Proc)) error {
	if len(bodies) != len(e.procs) {
		return fmt.Errorf("sim: RunEach got %d bodies for %d procs", len(bodies), len(e.procs))
	}
	e.liveCount = len(e.procs)
	e.wg.Add(len(e.procs))
	for i, p := range e.procs {
		p.state = stateReady
		e.ready.push(p)
		//lint:allow goroutinefree processor bodies are coroutines: exactly one is runnable at a time, handed off via resume
		go e.procMain(p, bodies[i])
	}
	// Hand control to the first processor and wait for completion.
	first := e.ready.pop()
	first.state = stateRunning
	//lint:allow goroutinefree deterministic coroutine handoff: the buffered resume send never blocks or races
	first.resume <- struct{}{}
	//lint:allow goroutinefree Run's caller parks here until the last coroutine signals completion
	<-e.doneCh
	e.wg.Wait()
	return e.failure
}

func (e *Engine) procMain(p *Proc, body func(*Proc)) {
	defer e.wg.Done()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(abortPanic); ok {
			return
		}
		if _, ok := r.(timeLimitPanic); ok {
			e.failure = fmt.Errorf("sim: proc %d at %v: %w", p.id, p.clock, ErrTimeLimit)
			e.abortFromRunning()
			return
		}
		e.failure = fmt.Errorf("sim: proc %d panicked at %v: %v\n%s", p.id, p.clock, r, debug.Stack())
		e.abortFromRunning()
	}()
	//lint:allow goroutinefree each coroutine parks at birth until the scheduler hands it the CPU
	<-p.resume
	if e.aborted {
		panic(abortPanic{})
	}
	body(p)
	e.finish(p)
}

// finish retires a processor whose body returned and dispatches the next
// runnable entity. Called on p's goroutine, which simply returns afterwards.
func (e *Engine) finish(p *Proc) {
	p.state = stateDone
	e.liveCount--
	next := e.next()
	if next != nil {
		e.switches++
		next.state = stateRunning
		//lint:allow goroutinefree deterministic coroutine handoff: the retiring body picks the unique next runnable
		next.resume <- struct{}{}
		return
	}
	if e.liveCount == 0 {
		e.signalDone()
		return
	}
	e.failure = e.deadlockError()
	e.abortFromRunning()
}

// next pops the runnable processor with the smallest clock, executing any
// events due at or before that clock first (events may make earlier
// processors runnable). Returns nil when nothing can run.
func (e *Engine) next() *Proc {
	for {
		q := e.ready.peek()
		for e.events.len() > 0 && (q == nil || e.events.peek().at <= q.clock) {
			ev := e.events.pop()
			e.eventsRun++
			ev.fn()
			q = e.ready.peek()
		}
		if q != nil {
			return e.ready.pop()
		}
		if e.events.len() == 0 {
			return nil
		}
	}
}

func (e *Engine) deadlockError() error {
	msg := "sim: deadlock — all processors parked and no events pending\n"
	for _, p := range e.procs {
		if p.state == stateBlocked {
			msg += fmt.Sprintf("  proc %d blocked at %v: %s\n", p.id, p.clock, p.blockReason)
		}
	}
	return fmt.Errorf("%s", msg)
}

// abortFromRunning tears down the simulation from the currently running
// goroutine: every parked goroutine is resumed and unwinds via abortPanic.
func (e *Engine) abortFromRunning() {
	e.aborted = true
	for _, p := range e.procs {
		if p.state == stateReady || p.state == stateBlocked || p.state == statePending {
			p.state = stateDone
			//lint:allow goroutinefree abort path: wake every parked coroutine so it unwinds via abortPanic
			p.resume <- struct{}{}
		}
	}
	e.signalDone()
}

func (e *Engine) signalDone() {
	if !e.doneClosed {
		e.doneClosed = true
		//lint:allow goroutinefree completion signal to the single Run caller; closed exactly once
		close(e.doneCh)
	}
}

// switchTo hands the CPU from the running processor `from` (which stays
// runnable) to `to`, and parks until someone hands control back.
func (e *Engine) switchTo(from, to *Proc) {
	e.switches++
	from.state = stateReady
	e.ready.push(from)
	to.state = stateRunning
	//lint:allow goroutinefree deterministic coroutine handoff: hand the CPU to the chosen processor
	to.resume <- struct{}{}
	//lint:allow goroutinefree park until some coroutine hands the CPU back
	<-from.resume
	if e.aborted {
		panic(abortPanic{})
	}
}

// parkAndDispatch blocks `from` (removing it from the runnable set) and
// dispatches the next entity. Returns when someone wakes `from`.
func (e *Engine) parkAndDispatch(from *Proc) {
	next := e.next()
	if next == nil {
		if e.liveCount == 0 {
			// Unreachable: `from` itself is still live.
			panic("sim: parked with no live processors")
		}
		e.failure = e.deadlockError()
		e.abortFromRunning()
		panic(abortPanic{})
	}
	e.switches++
	next.state = stateRunning
	//lint:allow goroutinefree deterministic coroutine handoff: dispatch the unique next runnable
	next.resume <- struct{}{}
	//lint:allow goroutinefree park until WakeAt makes this processor runnable again
	<-from.resume
	if e.aborted {
		panic(abortPanic{})
	}
}
