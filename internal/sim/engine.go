package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Config controls engine construction.
type Config struct {
	// Procs is the number of logical processors (the LogGP "P"). Must be >= 1.
	Procs int
	// Seed feeds each processor's deterministic PRNG. Two runs with equal
	// seeds and equal programs produce identical virtual timelines.
	Seed int64
	// TimeLimit, when nonzero, aborts the run with ErrTimeLimit once any
	// processor's clock passes it. This bounds livelocking programs (the
	// paper's Barnes does not complete at high overhead).
	TimeLimit Time
}

// Engine is a deterministic discrete-event simulator for SPMD programs.
// Create one with New, then call Run (or RunEach) exactly once.
type Engine struct {
	procs     []*Proc
	ready     procHeap
	events    eventHeap
	timeLimit Time

	eventSeq   int64
	liveCount  int
	aborted    bool
	failure    error
	doneCh     chan struct{}
	doneClosed bool
	wg         sync.WaitGroup

	// seed feeds the lazily built per-processor PRNGs (see Proc.Rand).
	seed int64
	// started flips when Run/RunEach/RunResumables begins; engines are
	// single-use.
	started bool
	// resumable marks a RunResumables run: processor bodies are state
	// machines driven from the caller's goroutine, no coroutine shell
	// exists, and the channel-based primitives must not be used.
	resumable bool
	// stepping is the processor whose Resume call is currently executing,
	// for failure attribution when a resumable body panics.
	stepping *Proc
	// failMu serializes the teardown path. Steady-state execution is
	// single-token and needs no locking, but once an abort begins, every
	// parked goroutine is woken and unwinds concurrently — and a body can
	// defer a panic of its own into that unwind, re-entering failure
	// recording and teardown from several goroutines at once.
	failMu sync.Mutex

	// Counters exposed for scheduler diagnostics and ablation benchmarks.
	switches    int64 // goroutine hand-offs performed
	eventsRun   int64 // events executed
	fastChecks  int64 // checkpoints that kept running without a switch
	fastParks   int64 // parks whose dispatch picked the parker itself
	inlineSteps int64 // pollable-wait iterations the dispatcher ran inline
}

// abortSentinel unwinds parked processor goroutines when the engine aborts.
type abortPanic struct{}

// ErrTimeLimit is returned by Run when Config.TimeLimit was exceeded.
var ErrTimeLimit = fmt.Errorf("sim: virtual time limit exceeded")

// timeLimitPanic carries ErrTimeLimit out of a checkpoint.
type timeLimitPanic struct{}

// New builds an engine with cfg.Procs processors, all at virtual time zero.
func New(cfg Config) *Engine {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("sim: Config.Procs must be >= 1, got %d", cfg.Procs))
	}
	//lint:allow goroutinefree doneCh signals run completion to the single external caller of Run
	e := &Engine{doneCh: make(chan struct{}), timeLimit: cfg.TimeLimit, seed: cfg.Seed}
	e.procs = make([]*Proc, cfg.Procs)
	for i := range e.procs {
		e.procs[i] = newProc(e, i)
	}
	return e
}

// P returns the number of processors.
func (e *Engine) P() int { return len(e.procs) }

// Proc returns processor i. It is mainly useful for inspecting clocks after
// a run; during a run, program code receives its own *Proc.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Switches reports how many goroutine hand-offs the scheduler performed.
func (e *Engine) Switches() int64 { return e.switches }

// EventsRun reports how many discrete events the engine executed.
func (e *Engine) EventsRun() int64 { return e.eventsRun }

// FastCheckpoints reports checkpoints resolved without a goroutine switch.
func (e *Engine) FastCheckpoints() int64 { return e.fastChecks }

// SwitchesSaved reports scheduler decisions resolved without a goroutine
// hand-off that the pre-fast-path scheduler would have paid one for: parks
// whose dispatch picked the parker itself (an event executed during the
// dispatch woke it, and it was the next runnable), plus every pollable-wait
// iteration the dispatcher drove inline instead of resuming the waiter's
// goroutine (see Proc.ParkPollable).
func (e *Engine) SwitchesSaved() int64 { return e.fastParks + e.inlineSteps }

// MaxClock returns the largest processor clock, i.e. the parallel makespan.
func (e *Engine) MaxClock() Time {
	var mx Time
	for _, p := range e.procs {
		if p.clock > mx {
			mx = p.clock
		}
	}
	return mx
}

// Fail aborts the simulation with err; Run (or RunEach) returns it. It
// may be called from an event or from a processor body — the layer that
// detects an unrecoverable protocol condition (for example a message
// exceeding its retransmission cap) uses it to surface a typed error
// instead of letting the run hang. Fail does not return: it unwinds the
// calling goroutine through the engine's abort path. If a failure is
// already recorded, the first one wins.
func (e *Engine) Fail(err error) {
	e.recordFailure(err)
	e.abortFromRunning()
	panic(abortPanic{})
}

// recordFailure stores err as the simulation's failure unless one is
// already recorded: the first failure wins, later ones (secondary panics
// raised while goroutines unwind) must not mask the root cause.
func (e *Engine) recordFailure(err error) {
	e.failMu.Lock()
	if e.failure == nil {
		e.failure = err
	}
	e.failMu.Unlock()
}

// EventFn is the typed form of a scheduled event: fn(arg, at) runs at
// virtual time `at` with the arg it was scheduled with. Top-level
// functions passed to ScheduleCall with a pointer-shaped arg make the
// schedule path allocation-free, where a capturing closure would heap-
// allocate per event.
type EventFn func(arg any, at Time)

// ScheduleAt registers fn to run at virtual time t. Events run in (t, FIFO)
// order, in the goroutine of whichever processor reaches them first; they
// must not block and must not call Park or Checkpoint. Events typically
// deposit a message and call Proc.WakeAt.
//
// The closure fn is one heap allocation at the call site; hot paths use
// ScheduleCall instead.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	e.ScheduleCall(t, runThunk, fn)
}

// runThunk adapts a ScheduleAt closure to the typed event scheme.
func runThunk(arg any, _ Time) { arg.(func())() }

// ScheduleCall registers fn(arg, t) to run at virtual time t, under the
// same (t, FIFO) ordering and the same restrictions as ScheduleAt.
// Event records live by value in the engine's heap, so once the heap has
// grown to the workload's high-water mark the call allocates nothing:
// this is the hot path the Active Message layer schedules deliveries and
// credit returns through.
//
//repro:hotpath
func (e *Engine) ScheduleCall(t Time, fn EventFn, arg any) {
	e.eventSeq++
	e.events.push(event{at: t, seq: e.eventSeq, fn: fn, arg: arg})
}

// Run executes body once per processor (SPMD style) and returns when every
// processor's body has returned. It returns an error if the simulation
// deadlocks (every processor parked with no pending events) or if any
// processor panics.
func (e *Engine) Run(body func(*Proc)) error {
	bodies := make([]func(*Proc), len(e.procs))
	for i := range bodies {
		bodies[i] = body
	}
	return e.RunEach(bodies)
}

// RunEach is Run with a distinct body per processor. This is the
// compatibility shell of the two-mode runtime: bodies are ordinary
// functions on per-processor goroutines, suspended and resumed through
// buffered channels. RunResumables is the goroutine-free mode.
func (e *Engine) RunEach(bodies []func(*Proc)) error {
	if len(bodies) != len(e.procs) {
		return fmt.Errorf("sim: RunEach got %d bodies for %d procs", len(bodies), len(e.procs))
	}
	if e.started {
		return fmt.Errorf("sim: engine already started; New an engine per run")
	}
	e.started = true
	e.liveCount = len(e.procs)
	e.wg.Add(len(e.procs))
	for i, p := range e.procs {
		p.state = stateReady
		//lint:allow goroutinefree resume is the coroutine handoff channel; buffer 1 so handoffs never block the sender
		p.resume = make(chan struct{}, 1)
		e.ready.push(p)
		//lint:allow goroutinefree processor bodies are coroutines: exactly one is runnable at a time, handed off via resume
		go e.procMain(p, bodies[i])
	}
	// Hand control to the first processor and wait for completion.
	first := e.ready.pop()
	first.state = stateRunning
	//lint:allow goroutinefree deterministic coroutine handoff: the buffered resume send never blocks or races
	first.resume <- struct{}{}
	//lint:allow goroutinefree Run's caller parks here until the last coroutine signals completion
	<-e.doneCh
	e.wg.Wait()
	return e.failure
}

func (e *Engine) procMain(p *Proc, body func(*Proc)) {
	defer e.wg.Done()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(abortPanic); ok {
			return
		}
		// Like Fail, the first recorded failure wins: a second processor
		// unwinding with its own panic (or a body deferring a panic into
		// the abort path) must not mask the root cause.
		if _, ok := r.(timeLimitPanic); ok {
			e.recordFailure(fmt.Errorf("sim: proc %d at %v: %w", p.id, p.clock, ErrTimeLimit))
			e.abortFromRunning()
			return
		}
		e.recordFailure(fmt.Errorf("sim: proc %d panicked at %v: %v\n%s", p.id, p.clock, r, debug.Stack()))
		e.abortFromRunning()
	}()
	//lint:allow goroutinefree each coroutine parks at birth until the scheduler hands it the CPU
	<-p.resume
	if e.aborted {
		panic(abortPanic{})
	}
	body(p)
	e.finish(p)
}

// finish retires a processor whose body returned and dispatches the next
// runnable entity. Called on p's goroutine, which simply returns afterwards.
func (e *Engine) finish(p *Proc) {
	p.state = stateDone
	e.liveCount--
	e.dispatch(p)
}

// next pops the runnable processor with the smallest clock, executing any
// events due at or before that clock first (events may make earlier
// processors runnable). Returns nil when nothing can run.
//
//repro:hotpath
func (e *Engine) next() *Proc {
	for {
		q := e.ready.peek()
		for e.events.len() > 0 && (q == nil || e.events.peek().at <= q.clock) {
			ev := e.events.pop()
			e.eventsRun++
			ev.fn(ev.arg, ev.at)
			q = e.ready.peek()
		}
		if q != nil {
			return e.ready.pop()
		}
		if e.events.len() == 0 {
			return nil
		}
	}
}

func (e *Engine) deadlockError() error {
	msg := "sim: deadlock — all processors parked and no events pending\n"
	for _, p := range e.procs {
		if p.state == stateBlocked {
			msg += fmt.Sprintf("  proc %d blocked at %v: %s\n", p.id, p.clock, p.blockReason)
		}
	}
	return fmt.Errorf("%s", msg)
}

// abortFromRunning tears down the simulation from the currently running
// goroutine: every parked goroutine is resumed and unwinds via abortPanic.
// Reentrant: a goroutine whose unwind raises a secondary failure calls
// this again, concurrently with the teardown already in flight — the
// second call finds aborted set and only confirms the done signal.
func (e *Engine) abortFromRunning() {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	if !e.aborted {
		e.aborted = true
		for _, p := range e.procs {
			if p.state == stateReady || p.state == stateBlocked || p.state == statePending {
				p.state = stateDone
				// Resumable processors have no goroutine to unwind (resume
				// is nil); marking them done is the whole teardown.
				if p.resume != nil {
					//lint:allow goroutinefree abort path: wake every parked coroutine so it unwinds via abortPanic
					p.resume <- struct{}{}
				}
			}
		}
	}
	e.signalDoneLocked()
}

func (e *Engine) signalDone() {
	e.failMu.Lock()
	e.signalDoneLocked()
	e.failMu.Unlock()
}

func (e *Engine) signalDoneLocked() {
	if !e.doneClosed {
		e.doneClosed = true
		//lint:allow goroutinefree completion signal to the single Run caller; closed exactly once
		close(e.doneCh)
	}
}

// switchTo hands the CPU from the running processor `from` (which stays
// runnable) to `to`, and parks until someone hands control back.
func (e *Engine) switchTo(from, to *Proc) {
	e.switches++
	from.state = stateReady
	e.ready.push(from)
	to.state = stateRunning
	//lint:allow goroutinefree deterministic coroutine handoff: hand the CPU to the chosen processor
	to.resume <- struct{}{}
	//lint:allow goroutinefree park until some coroutine hands the CPU back
	<-from.resume
	if e.aborted {
		panic(abortPanic{})
	}
}

// dispatch is the central scheduler loop, entered whenever the processor
// running on the current goroutine gives up the CPU: `from` has either
// blocked (Park, ParkPollable) or retired (finish). It keeps choosing the
// next runnable entity, driving pollable waits inline (stepWait) without
// resuming their goroutines, until either `from` itself becomes the next
// runnable again (fast path: keep executing on this goroutine, no channel
// round-trip — the schedule is identical, next() already made the choice)
// or a processor with a real continuation must run, in which case the CPU
// is handed off and `from` parks until someone hands it back.
//
//repro:hotpath
func (e *Engine) dispatch(from *Proc) {
	for {
		next := e.next()
		if next == nil {
			if from.state == stateDone {
				if e.liveCount == 0 {
					e.signalDone()
					return
				}
				e.recordFailure(e.deadlockError())
				e.abortFromRunning()
				return
			}
			if e.liveCount == 0 {
				// Unreachable: `from` itself is still live.
				panic("sim: parked with no live processors")
			}
			e.recordFailure(e.deadlockError())
			e.abortFromRunning()
			panic(abortPanic{})
		}
		if next.wait != nil {
			// The chosen processor is parked in a pollable wait: run one
			// wait iteration right here instead of bouncing the CPU to its
			// goroutine and back. stepWait leaves it runnable again or
			// re-blocked, and the loop re-decides.
			e.stepWait(next)
			continue
		}
		if next == from {
			e.fastParks++
			from.state = stateRunning
			return
		}
		e.switches++
		next.state = stateRunning
		// Read before the handoff: once next holds the token it may WakeAt
		// `from` concurrently with this goroutine. The value is fixed at
		// dispatch entry anyway (done means finish() called us).
		done := from.state == stateDone
		//lint:allow goroutinefree deterministic coroutine handoff: dispatch the unique next runnable
		next.resume <- struct{}{}
		if done {
			return
		}
		//lint:allow goroutinefree park until WakeAt makes this processor runnable again
		<-from.resume
		if e.aborted {
			panic(abortPanic{})
		}
		return
	}
}

// stepWait executes one iteration of a pollable wait on behalf of the
// blocked processor p, which the dispatcher just popped as the minimum-
// clock runnable. The iteration mirrors the waiter's own loop exactly —
// time-limit check, condition, poll one due message, spin toward a known
// arrival, park again — at the same virtual instants and in the same
// global order its goroutine would have run them; only the goroutine
// hand-off is elided. Events due at or before p's clock have already run
// (next() executes them before popping), matching the Checkpoint at the
// top of the waiter's loop. Branches that advance p's clock finish with
// drainEvents, reproducing the drain the next loop-top Checkpoint would
// have performed at the advanced clock before any switch decision: a
// Checkpoint-driven run executes every due event — including ones, such
// as window-credit returns, whose timestamps lie beyond other processors'
// clocks — before the scheduler picks the minimum again, and waiters'
// conditions legitimately observe those effects.
//
//repro:hotpath
func (e *Engine) stepWait(p *Proc) {
	if e.timeLimit > 0 && p.clock > e.timeLimit {
		// Same failure the waiter's own Checkpoint would have raised,
		// attributed to the waiter, not to the goroutine driving it.
		e.recordFailure(fmt.Errorf("sim: proc %d at %v: %w", p.id, p.clock, ErrTimeLimit))
		e.abortFromRunning()
		panic(abortPanic{})
	}
	e.inlineSteps++
	// p stays stateBlocked for the duration of the step: its goroutine
	// really is parked, so if the step panics (for example a handler
	// violating discipline), abortFromRunning still wakes and unwinds it.
	// No WakeAt can target p mid-step — wakes come only from events, and
	// events never run inside a step — so the blocked state is never
	// observed by a waker.
	p.state = stateBlocked
	w := p.wait
	if w.Ready(p) {
		// Condition holds: leave the wait. p stays runnable; the dispatch
		// loop re-pops it and resumes its body (fast path when p is the
		// dispatcher's own processor).
		p.wait = nil
		p.state = stateReady
		e.ready.push(p)
		return
	}
	if w.PollOne(p) {
		p.state = stateReady
		e.ready.push(p)
		e.drainEvents(p.clock)
		return
	}
	if t, ok := w.NextWork(p); ok {
		p.AdvanceTo(t)
		p.state = stateReady
		e.ready.push(p)
		e.drainEvents(p.clock)
		return
	}
	// Park again — the same pending-wake consumption Park performs.
	if len(p.pendingWakes) > 0 {
		t := p.pendingWakes[0]
		copy(p.pendingWakes, p.pendingWakes[1:])
		p.pendingWakes = p.pendingWakes[:len(p.pendingWakes)-1]
		p.AdvanceTo(t)
		p.state = stateReady
		e.ready.push(p)
		e.drainEvents(p.clock)
		return
	}
	p.state = stateBlocked
}

// drainEvents runs every event due at or before limit — the event loop of
// a Checkpoint at that clock. Waking events see their target processors in
// the same states a waiter's own Checkpoint would have shown them (the
// stepped processor sits ready in the heap, so wakes for it accumulate as
// pending, exactly as for a running processor).
//
//repro:hotpath
func (e *Engine) drainEvents(limit Time) {
	for e.events.len() > 0 && e.events.peek().at <= limit {
		ev := e.events.pop()
		e.eventsRun++
		ev.fn(ev.arg, ev.at)
	}
}
