// Package fault turns the simulator's perfect wire into a perturbable
// one: a Plan is a declarative, seed-deterministic schedule of injectable
// events — message drops, duplications, one-off or sustained extra wire
// latency, and per-processor slowdowns or one-off stalls — compiled by
// New into an Injector that plugs into the Active Message layer's
// am.FaultInjector seam (am.Machine.SetFaults).
//
// Determinism: the injector owns a single rand.Rand seeded at
// construction, and the machine consults it synchronously on the
// simulating goroutine — once per physical transmission, in injection
// order, and once per explicit processor charge, in charge order. Both
// orders are themselves deterministic properties of the simulation, so
// two runs with equal seeds and equal plans inject exactly the same
// faults at exactly the same virtual instants; jobs-level parallelism in
// the experiment harness cannot perturb them because each simulation is
// single-goroutine. Probability draws happen only for matching rules, in
// rule-declaration order, which makes the schedule insensitive to
// unrelated traffic.
//
// Lossy plans (any drop or duplication rule) require the AM reliability
// layer: without it a dropped message loses a window credit forever and a
// duplicate runs its handler twice. The apps layer enforces the pairing
// at world construction.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/am"
	"repro/internal/sim"
)

// Match selects physical wire transmissions. The zero value matches the
// transmission from processor 0 to processor 0 with class 0 — use Any()
// as the starting point and restrict from there.
type Match struct {
	// Src and Dst restrict the sending / receiving processor; negative
	// matches any.
	Src, Dst int
	// Class restricts the traffic class; negative matches any.
	Class int
}

// Any returns a Match that matches every transmission.
func Any() Match { return Match{Src: -1, Dst: -1, Class: -1} }

func (m Match) matches(w am.WireMsg) bool {
	if m.Src >= 0 && w.Src != m.Src {
		return false
	}
	if m.Dst >= 0 && w.Dst != m.Dst {
		return false
	}
	if m.Class >= 0 && int(w.Class) != m.Class {
		return false
	}
	return true
}

// DropRule loses matching transmissions on the wire: each independently
// with probability Prob, or — when Nth > 0 — exactly the Nth matching
// transmission (1-based), a deterministic single-shot predicate.
type DropRule struct {
	Match Match
	Prob  float64
	Nth   int64
}

// DupRule duplicates matching transmissions, with the same Prob/Nth
// semantics as DropRule. Both copies arrive at the same instant; the
// reliability layer's dedup discards the second at the receiving NIC.
type DupRule struct {
	Match Match
	Prob  float64
	Nth   int64
}

// WireDelayRule adds Extra flight time to the Nth matching transmission
// (1-based), or to every matching transmission when Nth == 0.
type WireDelayRule struct {
	Match Match
	Nth   int64
	Extra sim.Time
}

// LinkDelayWindow adds Extra flight time to every matching transmission
// injected in [From, To) — a sustained ΔL episode on part of the fabric.
type LinkDelayWindow struct {
	Match    Match
	From, To sim.Time
	Extra    sim.Time
}

// ProcDelay stalls processor Proc once, for Extra, appended to its first
// explicit charge ending at or after At — the one-off injected delay of
// the Afzal/Hager/Wellein propagation experiment. A processor that never
// charges after At absorbs the delay trivially (it is never injected).
type ProcDelay struct {
	Proc  int
	At    sim.Time
	Extra sim.Time
}

// SlowdownWindow scales processor Proc's explicit charges by Factor
// (≥ 1) while they begin inside [From, To): a charge of d costs
// d·Factor, the surplus attributed to fault delay.
type SlowdownWindow struct {
	Proc     int
	From, To sim.Time
	Factor   float64
}

// Plan is a declarative schedule of injectable faults. The zero value is
// the perfect wire.
type Plan struct {
	Drops      []DropRule
	Dups       []DupRule
	WireDelays []WireDelayRule
	LinkDelays []LinkDelayWindow
	ProcDelays []ProcDelay
	Slowdowns  []SlowdownWindow
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return len(p.Drops) == 0 && len(p.Dups) == 0 && len(p.WireDelays) == 0 &&
		len(p.LinkDelays) == 0 && len(p.ProcDelays) == 0 && len(p.Slowdowns) == 0
}

// Lossy reports whether the plan can drop or duplicate transmissions,
// which requires the AM reliability layer.
func (p Plan) Lossy() bool { return len(p.Drops) > 0 || len(p.Dups) > 0 }

// Validate checks rule parameters.
func (p Plan) Validate() error {
	for i, r := range p.Drops {
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("fault: Drops[%d].Prob %v outside [0,1]", i, r.Prob)
		}
		if r.Nth < 0 {
			return fmt.Errorf("fault: Drops[%d].Nth %d negative", i, r.Nth)
		}
	}
	for i, r := range p.Dups {
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("fault: Dups[%d].Prob %v outside [0,1]", i, r.Prob)
		}
		if r.Nth < 0 {
			return fmt.Errorf("fault: Dups[%d].Nth %d negative", i, r.Nth)
		}
	}
	for i, r := range p.WireDelays {
		if r.Extra < 0 {
			return fmt.Errorf("fault: WireDelays[%d].Extra %v negative", i, r.Extra)
		}
	}
	for i, r := range p.LinkDelays {
		if r.Extra < 0 {
			return fmt.Errorf("fault: LinkDelays[%d].Extra %v negative", i, r.Extra)
		}
		if r.To < r.From {
			return fmt.Errorf("fault: LinkDelays[%d] window [%v,%v) inverted", i, r.From, r.To)
		}
	}
	for i, r := range p.ProcDelays {
		if r.Proc < 0 {
			return fmt.Errorf("fault: ProcDelays[%d].Proc %d negative", i, r.Proc)
		}
		if r.Extra < 0 {
			return fmt.Errorf("fault: ProcDelays[%d].Extra %v negative", i, r.Extra)
		}
	}
	for i, r := range p.Slowdowns {
		if r.Proc < 0 {
			return fmt.Errorf("fault: Slowdowns[%d].Proc %d negative", i, r.Proc)
		}
		if r.Factor < 1 {
			return fmt.Errorf("fault: Slowdowns[%d].Factor %v below 1", i, r.Factor)
		}
		if r.To < r.From {
			return fmt.Errorf("fault: Slowdowns[%d] window [%v,%v) inverted", i, r.From, r.To)
		}
	}
	return nil
}

// Injector is a compiled Plan: it implements am.FaultInjector and keeps
// the per-rule match counters and the seeded PRNG that make the schedule
// deterministic. One Injector serves one simulation run; build a fresh
// one per run.
type Injector struct {
	plan Plan
	rng  *rand.Rand

	dropSeen  []int64
	dupSeen   []int64
	delaySeen []int64
	procFired []bool
}

var _ am.FaultInjector = (*Injector)(nil)

// New validates plan and compiles it into an Injector whose probability
// draws are governed by seed.
func New(plan Plan, seed int64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		plan:      plan,
		rng:       rand.New(rand.NewSource(seed*6_364_136_223_846_793 + 1_442_695_040_888_963_407)),
		dropSeen:  make([]int64, len(plan.Drops)),
		dupSeen:   make([]int64, len(plan.Dups)),
		delaySeen: make([]int64, len(plan.WireDelays)),
		procFired: make([]bool, len(plan.ProcDelays)),
	}, nil
}

// MustNew is New for known-good plans.
func MustNew(plan Plan, seed int64) *Injector {
	inj, err := New(plan, seed)
	if err != nil {
		panic(err)
	}
	return inj
}

// Plan returns the plan this injector was compiled from.
func (in *Injector) Plan() Plan { return in.plan }

// Lossy implements am.FaultInjector.
func (in *Injector) Lossy() bool { return in.plan.Lossy() }

// fire evaluates one Prob/Nth rule against its matching-transmission
// counter (already incremented to count this transmission).
func (in *Injector) fire(prob float64, nth, seen int64) bool {
	if nth > 0 {
		return seen == nth
	}
	return prob > 0 && in.rng.Float64() < prob
}

// OnWire implements am.FaultInjector.
func (in *Injector) OnWire(w am.WireMsg, inject sim.Time) am.FaultAction {
	var act am.FaultAction
	for i, r := range in.plan.Drops {
		if !r.Match.matches(w) {
			continue
		}
		in.dropSeen[i]++
		if in.fire(r.Prob, r.Nth, in.dropSeen[i]) {
			act.Drop = true
		}
	}
	for i, r := range in.plan.Dups {
		if !r.Match.matches(w) {
			continue
		}
		in.dupSeen[i]++
		if in.fire(r.Prob, r.Nth, in.dupSeen[i]) {
			act.Duplicate = true
		}
	}
	for i, r := range in.plan.WireDelays {
		if !r.Match.matches(w) {
			continue
		}
		in.delaySeen[i]++
		if r.Nth == 0 || in.delaySeen[i] == r.Nth {
			act.ExtraLatency += r.Extra
		}
	}
	for _, r := range in.plan.LinkDelays {
		if r.Match.matches(w) && inject >= r.From && inject < r.To {
			act.ExtraLatency += r.Extra
		}
	}
	return act
}

// ChargeExtra implements am.FaultInjector.
func (in *Injector) ChargeExtra(proc int, from, d sim.Time) sim.Time {
	var extra sim.Time
	for _, r := range in.plan.Slowdowns {
		if r.Proc == proc && from >= r.From && from < r.To {
			extra += sim.Time(float64(d)*(r.Factor-1) + 0.5)
		}
	}
	for i, r := range in.plan.ProcDelays {
		if r.Proc == proc && !in.procFired[i] && from+d >= r.At {
			in.procFired[i] = true
			extra += r.Extra
		}
	}
	return extra
}
