package fault

import (
	"testing"

	"repro/internal/am"
	"repro/internal/sim"
)

func wmsg(src, dst, class int) am.WireMsg {
	return am.WireMsg{Src: src, Dst: dst, Class: am.Class(class)}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		m    Match
		w    am.WireMsg
		want bool
	}{
		{Any(), wmsg(3, 7, 2), true},
		{Match{Src: 3, Dst: -1, Class: -1}, wmsg(3, 7, 2), true},
		{Match{Src: 4, Dst: -1, Class: -1}, wmsg(3, 7, 2), false},
		{Match{Src: -1, Dst: 7, Class: -1}, wmsg(3, 7, 2), true},
		{Match{Src: -1, Dst: 6, Class: -1}, wmsg(3, 7, 2), false},
		{Match{Src: -1, Dst: -1, Class: 2}, wmsg(3, 7, 2), true},
		{Match{Src: -1, Dst: -1, Class: 1}, wmsg(3, 7, 2), false},
		{Match{}, wmsg(0, 0, 0), true}, // zero value is a real selector
		{Match{}, wmsg(0, 1, 0), false},
	}
	for i, c := range cases {
		if got := c.m.matches(c.w); got != c.want {
			t.Errorf("case %d: %+v matches %+v = %v, want %v", i, c.m, c.w, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{Drops: []DropRule{{Match: Any(), Prob: -0.1}}},
		{Drops: []DropRule{{Match: Any(), Prob: 1.5}}},
		{Drops: []DropRule{{Match: Any(), Nth: -1}}},
		{Dups: []DupRule{{Match: Any(), Prob: 2}}},
		{WireDelays: []WireDelayRule{{Match: Any(), Extra: -1}}},
		{LinkDelays: []LinkDelayWindow{{Match: Any(), From: 10, To: 5, Extra: 1}}},
		{ProcDelays: []ProcDelay{{Proc: -1, Extra: 1}}},
		{ProcDelays: []ProcDelay{{Proc: 0, Extra: -1}}},
		{Slowdowns: []SlowdownWindow{{Proc: 0, Factor: 0.5}}},
		{Slowdowns: []SlowdownWindow{{Proc: 0, From: 10, To: 5, Factor: 2}}},
	}
	for i, p := range bad {
		if _, err := New(p, 1); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
	good := Plan{
		Drops:      []DropRule{{Match: Any(), Prob: 0.5}, {Match: Any(), Nth: 3}},
		Dups:       []DupRule{{Match: Any(), Prob: 1}},
		WireDelays: []WireDelayRule{{Match: Any(), Extra: 10}},
		LinkDelays: []LinkDelayWindow{{Match: Any(), From: 0, To: 100, Extra: 5}},
		ProcDelays: []ProcDelay{{Proc: 2, At: 50, Extra: 1000}},
		Slowdowns:  []SlowdownWindow{{Proc: 1, From: 0, To: 100, Factor: 2}},
	}
	if _, err := New(good, 1); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
	if !good.Lossy() {
		t.Error("plan with drops not Lossy")
	}
	if good.Empty() {
		t.Error("non-empty plan reported Empty")
	}
	if !(Plan{}).Empty() || (Plan{}).Lossy() {
		t.Error("zero plan must be Empty and not Lossy")
	}
}

// TestSeedDeterminism: equal plans with equal seeds must make identical
// decisions over identical transmission sequences; a different seed must
// diverge somewhere.
func TestSeedDeterminism(t *testing.T) {
	plan := Plan{
		Drops: []DropRule{{Match: Any(), Prob: 0.3}},
		Dups:  []DupRule{{Match: Any(), Prob: 0.2}},
	}
	decisions := func(seed int64) []am.FaultAction {
		in := MustNew(plan, seed)
		var out []am.FaultAction
		for i := 0; i < 200; i++ {
			out = append(out, in.OnWire(wmsg(i%8, (i+3)%8, 0), sim.Time(i)))
		}
		return out
	}
	a, b := decisions(7), decisions(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at transmission %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := decisions(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 made identical decisions over 200 draws")
	}
}

// TestNthDrop: Nth rules are deterministic single-shots counted over
// matching transmissions only, with no PRNG involvement.
func TestNthDrop(t *testing.T) {
	in := MustNew(Plan{
		Drops: []DropRule{{Match: Match{Src: 1, Dst: -1, Class: -1}, Nth: 2}},
	}, 1)
	seq := []struct {
		w    am.WireMsg
		drop bool
	}{
		{wmsg(0, 1, 0), false}, // not matching: does not advance the counter
		{wmsg(1, 2, 0), false}, // 1st match
		{wmsg(1, 3, 0), true},  // 2nd match: dropped
		{wmsg(1, 4, 0), false}, // 3rd: single-shot is spent
	}
	for i, s := range seq {
		if got := in.OnWire(s.w, 0).Drop; got != s.drop {
			t.Errorf("transmission %d: Drop = %v, want %v", i, got, s.drop)
		}
	}
}

func TestWireDelayEveryVsNth(t *testing.T) {
	in := MustNew(Plan{
		WireDelays: []WireDelayRule{
			{Match: Any(), Extra: 10},          // every transmission
			{Match: Any(), Nth: 2, Extra: 100}, // only the second
		},
	}, 1)
	want := []sim.Time{10, 110, 10}
	for i, w := range want {
		if got := in.OnWire(wmsg(0, 1, 0), 0).ExtraLatency; got != w {
			t.Errorf("transmission %d: ExtraLatency = %v, want %v", i, got, w)
		}
	}
}

func TestLinkDelayWindow(t *testing.T) {
	in := MustNew(Plan{
		LinkDelays: []LinkDelayWindow{{Match: Match{Src: -1, Dst: 5, Class: -1}, From: 100, To: 200, Extra: 7}},
	}, 1)
	cases := []struct {
		w      am.WireMsg
		inject sim.Time
		want   sim.Time
	}{
		{wmsg(0, 5, 0), 99, 0},  // before the window
		{wmsg(0, 5, 0), 100, 7}, // inclusive start
		{wmsg(0, 5, 0), 199, 7}, // inside
		{wmsg(0, 5, 0), 200, 0}, // exclusive end
		{wmsg(0, 4, 0), 150, 0}, // wrong link
	}
	for i, c := range cases {
		if got := in.OnWire(c.w, c.inject).ExtraLatency; got != c.want {
			t.Errorf("case %d: ExtraLatency = %v, want %v", i, got, c.want)
		}
	}
}

// TestProcDelayFiresOnce: the one-off stall attaches to the first charge
// ending at or after At, on the named processor only, exactly once.
func TestProcDelayFiresOnce(t *testing.T) {
	in := MustNew(Plan{
		ProcDelays: []ProcDelay{{Proc: 2, At: 100, Extra: 1000}},
	}, 1)
	if got := in.ChargeExtra(2, 0, 50); got != 0 {
		t.Errorf("charge ending before At stalled: %v", got)
	}
	if got := in.ChargeExtra(1, 90, 20); got != 0 {
		t.Errorf("wrong processor stalled: %v", got)
	}
	if got := in.ChargeExtra(2, 90, 20); got != 1000 {
		t.Errorf("first charge ending past At = %v, want 1000", got)
	}
	if got := in.ChargeExtra(2, 200, 50); got != 0 {
		t.Errorf("one-off stall fired twice: %v", got)
	}
}

func TestSlowdownWindow(t *testing.T) {
	in := MustNew(Plan{
		Slowdowns: []SlowdownWindow{{Proc: 3, From: 100, To: 200, Factor: 1.5}},
	}, 1)
	if got := in.ChargeExtra(3, 150, 100); got != 50 {
		t.Errorf("charge of 100 at ×1.5 = extra %v, want 50", got)
	}
	if got := in.ChargeExtra(3, 99, 100); got != 0 {
		t.Errorf("charge starting before the window slowed: %v", got)
	}
	if got := in.ChargeExtra(3, 200, 100); got != 0 {
		t.Errorf("charge starting at the exclusive end slowed: %v", got)
	}
	if got := in.ChargeExtra(2, 150, 100); got != 0 {
		t.Errorf("wrong processor slowed: %v", got)
	}
	// Factor 1 is a no-op window.
	noop := MustNew(Plan{Slowdowns: []SlowdownWindow{{Proc: 0, From: 0, To: 1000, Factor: 1}}}, 1)
	if got := noop.ChargeExtra(0, 10, 100); got != 0 {
		t.Errorf("Factor 1 produced extra %v", got)
	}
}

// TestDrawIsolation: probability draws happen only for matching rules, so
// traffic a rule ignores cannot shift its schedule.
func TestDrawIsolation(t *testing.T) {
	plan := Plan{Drops: []DropRule{{Match: Match{Src: 1, Dst: -1, Class: -1}, Prob: 0.5}}}
	run := func(noise bool) []bool {
		in := MustNew(plan, 42)
		var out []bool
		for i := 0; i < 100; i++ {
			if noise {
				in.OnWire(wmsg(0, 2, 0), sim.Time(i)) // never matches
			}
			out = append(out, in.OnWire(wmsg(1, 2, 0), sim.Time(i)).Drop)
		}
		return out
	}
	quiet, noisy := run(false), run(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("unmatched traffic perturbed rule draws at transmission %d", i)
		}
	}
}
