// Package tolerance computes an application's makespan as an analytic
// function of the LogGP deltas from one instrumented run's dependency
// graph (internal/depgraph).
//
// Along each sweep axis x ∈ {Δo, ΔL, Δg}, every source→sink path in the
// DAG is a line c + s·x (c the summed constants, s the integer count of
// parametric edges on the path), so the makespan T(x) = max over paths
// is a convex piecewise-linear function with integer slopes. One O(V+E)
// ascending scan evaluates T and its right-derivative at any x — the
// node order is topological by construction — and a crossing-point
// recursion reconstructs the full breakpoint list with O(segments)
// evaluations: each breakpoint is where the critical path shifts.
//
// Everything is exact int64 arithmetic on nanosecond deltas: at every
// integer x in [0, MaxDelta] the curve equals the longest path exactly,
// which is what lets the breakpoint property test compare predictions
// against re-measured runs byte for byte (where the schedule itself
// replays — see DESIGN.md §14 for the validity boundary).
//
// From the curves fall out the paper's headline numbers without any
// further simulation: whole sweep-curve predictions (fig5b/fig6/fig7
// shapes from one run) and per-app tolerance figures — the largest delta
// an app absorbs before slowdown exceeds a threshold.
package tolerance

import (
	"fmt"
	"sort"

	"repro/internal/depgraph"
	"repro/internal/sim"
)

// MaxDelta is the analysis domain: curves are reconstructed exactly on
// [0, MaxDelta] nanoseconds (10 ms — two orders of magnitude past the
// paper's largest sweep point). Eval extrapolates beyond it with the
// final slope, a lower bound once further breakpoints could exist.
const MaxDelta sim.Time = 10_000_000

// DefaultFactor is the conventional tolerance threshold: the largest
// delta an app absorbs before predicted slowdown exceeds 10%.
const DefaultFactor = 1.1

// Seg is one linear piece: on [X, nextX) the makespan is
// T + Slope·(x − X).
type Seg struct {
	X     sim.Time `json:"x"`
	T     sim.Time `json:"t"`
	Slope int64    `json:"slope"`
}

// Curve is the convex piecewise-linear makespan along one axis.
type Curve struct {
	// Axis is the swept LogGP delta: "o", "L", or "g".
	Axis string `json:"axis"`
	// Segs are the linear pieces, ascending in X, Segs[0].X == 0.
	Segs []Seg `json:"segs"`
}

// Base is the makespan at delta zero.
func (c *Curve) Base() sim.Time {
	if len(c.Segs) == 0 {
		return 0
	}
	return c.Segs[0].T
}

// Eval returns the predicted makespan at delta x (x ≥ 0).
func (c *Curve) Eval(x sim.Time) sim.Time {
	if len(c.Segs) == 0 {
		return 0
	}
	lo, hi := 0, len(c.Segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.Segs[mid].X <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := c.Segs[lo]
	return s.T + sim.Time(s.Slope)*(x-s.X)
}

// Tolerance returns the largest delta whose predicted slowdown stays
// within factor (e.g. 1.1 = 10% slowdown) of the base makespan. bounded
// is false when every delta in [0, MaxDelta] fits — the app is
// insensitive to this axis at that threshold.
func (c *Curve) Tolerance(factor float64) (maxDelta sim.Time, bounded bool) {
	base := c.Base()
	if base <= 0 || len(c.Segs) == 0 {
		return 0, false
	}
	budget := sim.Time(factor * float64(base))
	last := c.Segs[len(c.Segs)-1]
	if last.T+sim.Time(last.Slope)*(MaxDelta-last.X) <= budget {
		return MaxDelta, false
	}
	// Walk the pieces: the curve is nondecreasing, so the answer is in
	// the first segment that crosses the budget.
	for i, s := range c.Segs {
		end := MaxDelta
		if i+1 < len(c.Segs) {
			end = c.Segs[i+1].X - 1
		}
		endT := s.T + sim.Time(s.Slope)*(end-s.X)
		if endT <= budget {
			continue
		}
		if s.T > budget {
			// Crossed before this piece began.
			if s.X == 0 {
				return 0, true
			}
			return s.X - 1, true
		}
		if s.Slope == 0 {
			continue
		}
		return s.X + (budget-s.T)/sim.Time(s.Slope), true
	}
	return MaxDelta, false
}

// Curves bundles the three axes extracted from one run.
type Curves struct {
	// Elapsed is the instrumented run's measured makespan; every curve's
	// Base must reproduce it (Analyze's self-check).
	Elapsed sim.Time `json:"elapsed"`
	O       Curve    `json:"o"`
	L       Curve    `json:"l"`
	G       Curve    `json:"g"`
}

// ByAxis returns the curve for an axis name ("o", "L"/"l", "g").
func (cs *Curves) ByAxis(axis string) (*Curve, bool) {
	switch axis {
	case "o":
		return &cs.O, true
	case "L", "l":
		return &cs.L, true
	case "g":
		return &cs.G, true
	}
	return nil, false
}

// Analyze reconstructs the three makespan curves from a sealed graph.
// It fails if the graph's longest path at delta zero does not reproduce
// the run's measured makespan — the builder's end-to-end self-check that
// every nanosecond of the critical path is accounted for.
func Analyze(g *depgraph.Graph) (*Curves, error) {
	if g.Sink() < 0 {
		return nil, fmt.Errorf("tolerance: graph is not sealed")
	}
	ct := contract(g)
	cs := &Curves{Elapsed: g.Elapsed()}
	for _, ax := range []struct {
		axis  int
		name  string
		curve *Curve
	}{
		{axO, "o", &cs.O},
		{axL, "L", &cs.L},
		{axG, "g", &cs.G},
	} {
		c := buildCurve(&evaluator{ct: ct, axis: ax.axis}, ax.name)
		if got := c.Base(); got != g.Elapsed() {
			return nil, fmt.Errorf("tolerance: axis %s longest path at Δ=0 is %v, run measured %v — graph does not tile the critical path",
				ax.name, got, g.Elapsed())
		}
		*ax.curve = *c
	}
	return cs, nil
}

// Per-axis slope-count slots of a contracted edge.
const (
	axO = iota
	axL
	axG
	numAxes
)

// contracted is the chain-contracted view of a graph, shared by all
// three axis evaluations. Every in-degree-1 node's single in-edge is
// folded into its successors' edges, so evaluation only visits anchors:
// nodes with zero or several in-edges, plus the sink. Communication
// DAGs are dominated by per-processor chains, so this typically shrinks
// the evaluated graph by an order of magnitude. Each composite edge
// carries the folded chain's summed constant plus one slope counter per
// axis, which keeps every evaluation exact — including the
// lexicographic (value, slope) tie-break, because slopes accumulate
// along a chain exactly like values do and a chain node's "maximum" is
// trivially its only in-edge.
type contracted struct {
	sink int32 // anchor index of the sink
	// CSR in-edge arrays per anchor, in ascending original-node order
	// (topological, so one ascending scan evaluates the longest path).
	estart []int32
	epred  []int32          // predecessor anchor index (-1 = origin)
	ec     []int64          // summed constant weight
	ecnt   [][numAxes]int32 // per-axis slope counts
}

func (ct *contracted) anchors() int { return len(ct.estart) - 1 }

// contract builds the chain-contracted view: two O(V+E) passes (count
// in-degrees, fold chains) over the arena graph.
func contract(g *depgraph.Graph) *contracted {
	n := g.NumNodes()
	indeg := make([]int32, n)
	for i := 0; i < n; i++ {
		g.InEdges(int32(i), func(pred int32, c sim.Time, axis depgraph.Axis) {
			indeg[i]++
		})
	}
	// anchorOf[i] ≥ 0 is node i's anchor slot; chain nodes stay -1 and
	// carry their anchor-relative offset in rep*.
	anchorOf := make([]int32, n)
	nAnchors := int32(0)
	sink := g.Sink()
	for i := 0; i < n; i++ {
		if indeg[i] != 1 || int32(i) == sink {
			anchorOf[i] = nAnchors
			nAnchors++
		} else {
			anchorOf[i] = -1
		}
	}
	ct := &contracted{
		sink:   anchorOf[sink],
		estart: make([]int32, 1, nAnchors+1),
	}
	repAnchor := make([]int32, n)
	repC := make([]int64, n)
	repCnt := make([][numAxes]int32, n)
	// resolve folds an in-edge through its (possibly chained)
	// predecessor into anchor-relative form.
	resolve := func(pred int32, c sim.Time, axis depgraph.Axis) (int32, int64, [numAxes]int32) {
		var cnt [numAxes]int32
		switch axis {
		case depgraph.AxisO:
			cnt[axO] = 1
		case depgraph.AxisL:
			cnt[axL] = 1
		case depgraph.AxisG:
			cnt[axG] = 1
		}
		if pred < 0 {
			return -1, int64(c), cnt
		}
		if a := anchorOf[pred]; a >= 0 {
			return a, int64(c), cnt
		}
		for k := range cnt {
			cnt[k] += repCnt[pred][k]
		}
		return repAnchor[pred], repC[pred] + int64(c), cnt
	}
	for i := 0; i < n; i++ {
		if a := anchorOf[i]; a >= 0 {
			g.InEdges(int32(i), func(pred int32, c sim.Time, axis depgraph.Axis) {
				p, cc, cnt := resolve(pred, c, axis)
				ct.epred = append(ct.epred, p)
				ct.ec = append(ct.ec, cc)
				ct.ecnt = append(ct.ecnt, cnt)
			})
			ct.estart = append(ct.estart, int32(len(ct.epred)))
		} else {
			// Exactly one in-edge: fold it into the chain offset.
			g.InEdges(int32(i), func(pred int32, c sim.Time, axis depgraph.Axis) {
				repAnchor[i], repC[i], repCnt[i] = resolve(pred, c, axis)
			})
		}
	}
	return ct
}

// evaluator evaluates one graph's longest path along one axis on the
// shared contracted view. Queries are batched: one topological scan
// answers up to a whole scratch-buffer's worth of x values at once, so
// the reconstruction's cost is traversals × batch — a round of the
// breakpoint worklist costs one scan no matter how many intervals it
// refines.
type evaluator struct {
	ct   *contracted
	axis int
	val  []int64 // anchor-major × batch longest-path scratch
	slo  []int64
}

// maxScratch bounds the evaluator's scratch (two int64 lanes per anchor
// per batched point), so batch width adapts to graph size: small graphs
// batch wide, huge graphs narrow rather than exhausting memory.
const maxScratch = 64 << 20

// batch is the widest point batch one scan may answer.
func (e *evaluator) batch() int {
	k := maxScratch / 16 / e.ct.anchors()
	if k > 64 {
		return 64
	}
	if k < 1 {
		return 1
	}
	return k
}

// eval computes T(x) and its right-derivative for every x in xs.
func (e *evaluator) eval(xs []int64) (ys, ss []int64) {
	ys = make([]int64, len(xs))
	ss = make([]int64, len(xs))
	for off := 0; off < len(xs); off += e.batch() {
		end := off + e.batch()
		if end > len(xs) {
			end = len(xs)
		}
		e.evalChunk(xs[off:end], ys[off:end], ss[off:end])
	}
	return ys, ss
}

// evalChunk is one ascending scan in the contracted (topological)
// anchor order, taking the lexicographic (value, slope) maximum over
// in-edges at every query point so ties resolve to the steepest
// critical path — the right-continuous slope choice.
func (e *evaluator) evalChunk(xs, ys, ss []int64) {
	ct := e.ct
	k := len(xs)
	n := ct.anchors() * k
	if cap(e.val) < n {
		e.val = make([]int64, n)
		e.slo = make([]int64, n)
	}
	val, slo := e.val[:n], e.slo[:n]
	for ai := 0; ai < ct.anchors(); ai++ {
		base := ai * k
		lo, hi := ct.estart[ai], ct.estart[ai+1]
		if lo == hi {
			for j := 0; j < k; j++ {
				val[base+j], slo[base+j] = 0, 0
			}
			continue
		}
		for ei := lo; ei < hi; ei++ {
			c, cnt := ct.ec[ei], int64(ct.ecnt[ei][e.axis])
			if p := ct.epred[ei]; p >= 0 {
				pb := int(p) * k
				if ei == lo {
					for j := 0; j < k; j++ {
						val[base+j] = val[pb+j] + c + cnt*xs[j]
						slo[base+j] = slo[pb+j] + cnt
					}
					continue
				}
				for j := 0; j < k; j++ {
					v := val[pb+j] + c + cnt*xs[j]
					s := slo[pb+j] + cnt
					if v > val[base+j] || (v == val[base+j] && s > slo[base+j]) {
						val[base+j], slo[base+j] = v, s
					}
				}
				continue
			}
			if ei == lo {
				for j := 0; j < k; j++ {
					val[base+j], slo[base+j] = c+cnt*xs[j], cnt
				}
				continue
			}
			for j := 0; j < k; j++ {
				v, s := c+cnt*xs[j], cnt
				if v > val[base+j] || (v == val[base+j] && s > slo[base+j]) {
					val[base+j], slo[base+j] = v, s
				}
			}
		}
	}
	sb := int(ct.sink) * k
	copy(ys, val[sb:sb+k])
	copy(ss, slo[sb:sb+k])
}

// line is a supporting line of T in slope-intercept form.
type line struct{ s, i int64 }

func mkline(x, y, s int64) line { return line{s: s, i: y - s*x} }

// maxSplitDepth caps the crossing refinement; a convex PWL with integer
// slopes bounded by the edge count cannot need anywhere near this many
// refinements, so hitting it would indicate an evaluator bug. The curve
// stays correct at every emitted anchor either way.
const maxSplitDepth = 200

// task is one pending step of the breakpoint reconstruction. A split
// task refines (xa, xb) by evaluating the anchor lines' crossing; an
// advance task evaluates the first integer past a verified prefix to
// start the next piece. Either way, x is the query point the task
// needs; tasks of one round share a single batched evaluation.
type task struct {
	xa, ya, sa int64
	xb, yb, sb int64
	x          int64
	advance    bool
	depth      int
}

// buildCurve reconstructs the integer-start breakpoints of T on
// [0, MaxDelta] with O(segments) evaluations, batched level by level.
// The chord argument makes each emitted boundary exact: when one line
// is active at both ends of a sub-interval, convexity pins T to it on
// every point between.
func buildCurve(e *evaluator, name string) *Curve {
	ends, slopes := e.eval([]int64{0, int64(MaxDelta)})
	y0, s0 := ends[0], slopes[0]
	out := []Seg{{X: 0, T: sim.Time(y0), Slope: s0}}

	var tasks []task
	// addSplit queues the refinement of (xa, xb) unless its anchors
	// already lie on one line (nothing between can deviate: convexity).
	addSplit := func(t task) {
		la, lb := mkline(t.xa, t.ya, t.sa), mkline(t.xb, t.yb, t.sb)
		if la == lb || t.sa >= t.sb || t.xa >= t.xb || t.depth > maxSplitDepth {
			return
		}
		// Crossing of the two anchor lines, clamped into the interval.
		t.x = (la.i - lb.i) / (t.sb - t.sa)
		if t.x < t.xa {
			t.x = t.xa
		}
		if t.x >= t.xb {
			t.x = t.xb - 1
		}
		t.advance = false
		tasks = append(tasks, t)
	}
	addSplit(task{xa: 0, ya: y0, sa: s0, xb: int64(MaxDelta), yb: ends[1], sb: slopes[1]})

	xs := make([]int64, 0, len(tasks))
	for len(tasks) > 0 {
		xs = xs[:0]
		for _, t := range tasks {
			xs = append(xs, t.x)
		}
		ys, ss := e.eval(xs)
		round := tasks
		tasks = tasks[len(tasks):]
		for i, t := range round {
			ym, sm := ys[i], ss[i]
			lm := mkline(t.x, ym, sm)
			la, lb := mkline(t.xa, t.ya, t.sa), mkline(t.xb, t.yb, t.sb)
			switch {
			case t.advance:
				if lm == la {
					// Defensive: shouldn't happen for a true crossing.
					addSplit(task{xa: t.x, ya: ym, sa: sm, xb: t.xb, yb: t.yb, sb: t.sb, depth: t.depth + 1})
					continue
				}
				out = append(out, Seg{X: sim.Time(t.x), T: sim.Time(ym), Slope: sm})
				if lm != lb {
					addSplit(task{xa: t.x, ya: ym, sa: sm, xb: t.xb, yb: t.yb, sb: t.sb, depth: t.depth + 1})
				}
			case lm == la:
				// la holds through x; the next integer starts a new line.
				t.x++
				t.advance = true
				tasks = append(tasks, t)
			case lm == lb:
				addSplit(task{xa: t.xa, ya: t.ya, sa: t.sa, xb: t.x, yb: ym, sb: sm, depth: t.depth + 1})
			default:
				addSplit(task{xa: t.xa, ya: t.ya, sa: t.sa, xb: t.x, yb: ym, sb: sm, depth: t.depth + 1})
				addSplit(task{xa: t.x, ya: ym, sa: sm, xb: t.xb, yb: t.yb, sb: t.sb, depth: t.depth + 1})
			}
		}
	}
	// Rounds interleave disjoint intervals, so emitted pieces arrive out
	// of order; the curve is their ascending sequence.
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return &Curve{Axis: name, Segs: out}
}
