package tolerance_test

import (
	"testing"

	"repro/internal/am"
	"repro/internal/depgraph"
	"repro/internal/logp"
	"repro/internal/sim"
	"repro/internal/tolerance"
)

// handGraph drives the Builder's hook methods directly with the event
// sequence of one request/reply-free round trip at NOW() parameters:
// p0 charges o_send on [0, 1800), injects at 1800, the wire delivers at
// 6800, p1 charges o_recv on [6800, 10800) and the firmware credit goes
// back out at 10800. The expected makespan function is exact by hand:
// T(Δo) = 10800 + 2Δo, T(ΔL) = 10800 + ΔL, T(Δg) = 10800.
func handGraph(t *testing.T) *depgraph.Graph {
	t.Helper()
	b := depgraph.New(2, logp.NOW())
	b.SendOverhead(0, 0, 1800)
	b.TxReserved(0, 1800, 7600, 7600)
	b.MessageLaunched(0, 1, false, false, 1800, 6800)
	b.MessageDelivered(0, 1, false, 6800)
	b.RecvOverhead(1, 6800, 10800)
	b.CreditIssued(0, 1, 10800)
	g, err := b.Seal(10800)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return g
}

func TestHandBuiltRoundTrip(t *testing.T) {
	g := handGraph(t)
	cs, err := tolerance.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if cs.Elapsed != 10800 {
		t.Fatalf("Elapsed = %d, want 10800", cs.Elapsed)
	}
	for _, tc := range []struct {
		axis  string
		x     sim.Time
		want  sim.Time
		slope int64
	}{
		{"o", 0, 10800, 2},
		{"o", 1000, 12800, 2},
		{"o", 100000, 210800, 2},
		{"L", 0, 10800, 1},
		{"L", 5000, 15800, 1},
		{"g", 0, 10800, 0},
		{"g", 99999, 10800, 0},
	} {
		c, ok := cs.ByAxis(tc.axis)
		if !ok {
			t.Fatalf("ByAxis(%q) missing", tc.axis)
		}
		if got := c.Eval(tc.x); got != tc.want {
			t.Errorf("axis %s Eval(%d) = %d, want %d", tc.axis, tc.x, got, tc.want)
		}
		if len(c.Segs) != 1 || c.Segs[0].Slope != tc.slope {
			t.Errorf("axis %s segs = %+v, want single piece of slope %d", tc.axis, c.Segs, tc.slope)
		}
	}
	// A 10% tolerance at slope 2 over base 10800: 2x ≤ 1080 → x ≤ 540.
	if d, bounded := cs.O.Tolerance(1.1); !bounded || d != 540 {
		t.Errorf("O tolerance = %d bounded=%v, want 540 bounded", d, bounded)
	}
	if _, bounded := cs.G.Tolerance(1.1); bounded {
		t.Error("G tolerance should be unbounded for a single round trip")
	}
}

// windowedStream runs a real simulated machine: p0 fires n requests at
// p1 and store-syncs (waits for every window credit to return — the
// drain pattern the apps use). p1 waits on its own handler count, a
// processor-local condition. Both wait conditions flip at instants the
// machine also wakes the waiter (a credit arrival, an o_recv charge),
// so the measured makespan is a schedule the dependency graph models
// exactly; a condition over *remote* state read through host memory
// would instead end at a wake quantization boundary and sit outside
// the model's validity region (see DESIGN.md §14).
// Returns the measured makespan at the given deltas.
func windowedStream(t *testing.T, n int, params logp.Params, b *depgraph.Builder) sim.Time {
	t.Helper()
	eng := sim.New(sim.Config{Procs: 2})
	m, err := am.NewMachine(eng, params)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if b != nil {
		m.SetHooks(b)
	}
	seen := 0
	handler := func(*am.Endpoint, *am.Token, am.Args) { seen++ }
	err = eng.RunEach([]func(*sim.Proc){
		func(p *sim.Proc) {
			ep := m.Endpoint(0)
			for i := 0; i < n; i++ {
				ep.Request(1, am.ClassWrite, handler, am.Args{})
			}
			ep.WaitUntilFor(am.WaitStore, func() bool { return ep.TotalOutstanding() == 0 }, "drain")
		},
		func(p *sim.Proc) {
			m.Endpoint(1).WaitUntil(func() bool { return seen == n }, "sink")
		},
	})
	if err != nil {
		t.Fatalf("RunEach: %v", err)
	}
	return eng.MaxClock()
}

// TestCurveMatchesSimulatedMachine is the end-to-end exactness check on
// a window-saturating workload: the curves extracted from one
// instrumented run must predict the re-simulated makespan exactly at
// every breakpoint and at sweep-grid points, on every axis.
func TestCurveMatchesSimulatedMachine(t *testing.T) {
	const n = 40 // 5× the request window: credit gating is exercised
	base := logp.NOW()
	b := depgraph.New(2, base)
	elapsed := windowedStream(t, n, base, b)
	g, err := b.Seal(elapsed)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	cs, err := tolerance.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if cs.Elapsed != elapsed {
		t.Fatalf("Elapsed = %d, measured %d", cs.Elapsed, elapsed)
	}

	grid := []sim.Time{0, 1000, 2200, 5000, 10000, 25000, 100000}
	for _, axis := range []string{"o", "L", "g"} {
		c, _ := cs.ByAxis(axis)
		points := append([]sim.Time{}, grid...)
		for _, s := range c.Segs {
			points = append(points, s.X)
			if s.X > 0 {
				points = append(points, s.X-1)
			}
		}
		for _, x := range points {
			p := base
			switch axis {
			case "o":
				p.DeltaO = x
			case "L":
				p.DeltaL = x
			case "g":
				p.DeltaG = x
			}
			measured := windowedStream(t, n, p, nil)
			if got := c.Eval(x); got != measured {
				t.Errorf("axis %s at Δ=%dns: predicted %d, measured %d (segs %+v)",
					axis, x, got, measured, c.Segs)
			}
		}
	}
}

func TestBuilderRejectsMismatchedEvents(t *testing.T) {
	b := depgraph.New(2, logp.NOW())
	// A delivery with no matching launch must poison the builder.
	b.MessageDelivered(0, 1, false, 5000)
	if _, err := b.Seal(5000); err == nil {
		t.Fatal("Seal accepted a delivery without a launch")
	}
}
