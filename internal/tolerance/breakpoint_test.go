package tolerance_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/sim"
	"repro/internal/tolerance"
)

// bruteLongestPath is the reference implementation the property test
// checks the analytic engine against: a direct O(V+E) longest-path scan
// of the extracted DAG with the axis delta substituted into every
// parametric edge. It shares nothing with tolerance.Analyze's machinery
// (no chain contraction, no batched evaluation, no breakpoint
// reconstruction), so agreement at a point means the whole pipeline
// reproduced the graph's makespan there.
func bruteLongestPath(g *depgraph.Graph, axis depgraph.Axis, x int64) int64 {
	val := make([]int64, g.NumNodes())
	for i := int32(0); i < int32(g.NumNodes()); i++ {
		best, first := int64(0), true
		g.InEdges(i, func(pred int32, c sim.Time, a depgraph.Axis) {
			var pv int64
			if pred >= 0 {
				pv = val[pred]
			}
			v := pv + int64(c)
			if a == axis {
				v += x
			}
			if first || v > best {
				best, first = v, false
			}
		})
		val[i] = best
	}
	return val[g.Sink()]
}

// TestBreakpointExactness pins the analytic engine's correctness and its
// validity boundary (DESIGN.md §14) on two small apps, nowsort (bulk
// exchange + barriers) and connect (lockstep pointer jumping).
//
// Where exactness must hold, it is asserted in integer nanoseconds:
//
//   - The piecewise-linear curve must equal the brute-force longest path
//     of the same DAG at every breakpoint, at the last nanosecond of the
//     piece before it, and at every grid point — any mismatch is a bug
//     in the contraction, the batched evaluator, or the breakpoint
//     reconstruction.
//   - At Δ=0 the prediction must equal a real re-measured run exactly:
//     the baseline schedule trivially replays, so the DAG's makespan is
//     the run's makespan (tolerance.Analyze self-checks the instrumented
//     run; this asserts it against an independent uninstrumented one).
//
// Beyond Δ=0 the schedule itself responds to the delta — arrival orders
// shift, so the recorded dependence structure drifts from the perturbed
// run's and only the validation-error bound applies: within the paper's
// sweep range (deltas up to 100µs) predictions stay within nearBound of
// measurement at every breakpoint and grid point; in the far field out
// to MaxDelta (10ms, 100× past the paper's largest sweep) the drift
// compounds and only the farBound sanity factor is asserted. The
// per-app error tables live in the tolerance experiment
// (EXPERIMENTS.md).
func TestBreakpointExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("re-measures a real run per breakpoint")
	}
	const (
		paperRange = 100 * 1000 // ns; fig5b/fig6 sweep deltas top out at 100µs
		nearBound  = 0.10       // worst observed in range ~4.2% (connect ΔL=100µs)
		farBound   = 1.00       // worst observed ~70% (nowsort ΔL at 10ms)
	)
	axes := []struct {
		name string
		ax   depgraph.Axis
		knob core.Knob
	}{
		{"o", depgraph.AxisO, core.KnobO},
		{"L", depgraph.AxisL, core.KnobL},
		{"g", depgraph.AxisG, core.KnobG},
	}
	for _, name := range []string{"nowsort", "connect"} {
		a, err := suite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := apps.Config{Procs: 8, Scale: 1.0 / 2048, Seed: 1, Depgraph: true}.Norm()
		res, err := a.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.DepgraphErr != "" {
			t.Fatalf("%s: depgraph: %s", name, res.DepgraphErr)
		}
		plain := cfg
		plain.Depgraph = false
		for _, ax := range axes {
			c, ok := res.Curves.ByAxis(ax.name)
			if !ok {
				t.Fatalf("%s: no %s curve", name, ax.name)
			}
			if c.Base() != res.Elapsed {
				t.Errorf("%s Δ%s: Base() = %d, run elapsed %d", name, ax.name, c.Base(), res.Elapsed)
			}
			if len(c.Segs) < 2 {
				t.Errorf("%s Δ%s: curve has %d pieces; expected the critical path to shift at least once over [0, %v]",
					name, ax.name, len(c.Segs), tolerance.MaxDelta)
			}
			// Query set: every piece start, the last nanosecond of the
			// piece before it, and a coarse grid spanning the range.
			var ns []int64
			for _, s := range c.Segs {
				ns = append(ns, int64(s.X))
				if s.X > 0 {
					ns = append(ns, int64(s.X)-1)
				}
			}
			for _, us := range []float64{1, 5, 25, 100, 1000, 10000} {
				ns = append(ns, int64(sim.FromMicros(us)))
			}
			for _, x := range ns {
				if x < 0 || x > int64(tolerance.MaxDelta) {
					continue
				}
				pred := c.Eval(sim.Time(x))

				// Exactness against the reference longest path: must
				// hold at every point, nanosecond for nanosecond.
				if want := bruteLongestPath(res.Graph, ax.ax, x); int64(pred) != want {
					t.Errorf("%s Δ%s=%dns: curve says %d, brute-force longest path says %d",
						name, ax.name, x, pred, want)
				}

				v := float64(x) / 1e3 // exact: x < 2^53
				pt, err := core.RunAt(a, plain, ax.knob, v, res.Elapsed)
				if err != nil {
					t.Fatalf("%s Δ%s=%gµs: %v", name, ax.name, v, err)
				}
				if pt.Livelocked {
					if pred < res.Elapsed*core.LivelockFactor {
						t.Errorf("%s Δ%s=%gµs: measured run livelocked but prediction %d is under the bound", name, ax.name, v, pred)
					}
					continue
				}
				// Exactness against re-measurement: must hold at Δ=0.
				if x == 0 && pred != pt.Elapsed {
					t.Errorf("%s Δ%s=0: predicted %d, measured %d", name, ax.name, pred, pt.Elapsed)
				}
				// Validation bound everywhere else.
				bound := nearBound
				if x > paperRange {
					bound = farBound
				}
				if e := relErr(pred, pt.Elapsed); e > bound {
					t.Errorf("%s Δ%s=%gµs: predicted %d, measured %d (%.1f%% off, bound %.0f%%)",
						name, ax.name, v, pred, pt.Elapsed, 100*e, 100*bound)
				}
			}
		}
	}
}

func relErr(pred, meas sim.Time) float64 {
	e := float64(pred) - float64(meas)
	if e < 0 {
		e = -e
	}
	return e / float64(meas)
}
