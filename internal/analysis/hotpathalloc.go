package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc proves the zero-steady-state-allocation property of the
// simulator's hot paths at compile time. A function marked with a
// //repro:hotpath doc comment must not allocate on any path reachable
// from its entry, excluding straight-line runs that end in an
// unconditional panic (a panicking run is by definition not steady
// state). Flagged allocation sites: composite literals of slice or map
// type (and &T{} literals), make/new, append (which may grow its
// backing array), closures that capture variables, interface boxing of
// non-pointer-shaped values at call sites and conversions, string
// concatenation and string<->byte conversions, and any fmt-family
// call. Sanctioned cold-branch allocations (pool-miss refills,
// amortized slice growth) carry //lint:allow hotpathalloc annotations.
//
// The check runs everywhere a //repro:hotpath directive appears; the
// runtime twin (TestShortMessagePathZeroAlloc) measures the same
// property dynamically on one workload, while this analyzer covers
// every path the CFG can reach.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation sites on the steady-state path of //repro:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	g := buildCFG(fd.Body)
	for _, blk := range g.reachable() {
		if blk.panics {
			continue // only executed on the way to a panic
		}
		for _, n := range blk.nodes {
			inspectNoFuncLit(n, func(e ast.Expr) {
				checkAllocExpr(pass, name, e)
			})
		}
	}
}

// inspectNoFuncLit walks the expressions of one CFG node without
// descending into nested function literals: a closure body runs at its
// own call sites, while the literal itself is the allocation charged to
// this function (reported by checkAllocExpr).
func inspectNoFuncLit(n ast.Node, fn func(ast.Expr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok {
			fn(e)
			if _, isLit := e.(*ast.FuncLit); isLit {
				return false
			}
		}
		return true
	})
}

func checkAllocExpr(pass *Pass, fname string, e ast.Expr) {
	info := pass.TypesInfo
	switch e := e.(type) {
	case *ast.CompositeLit:
		switch info.Types[e].Type.Underlying().(type) {
		case *types.Slice:
			pass.Reportf(e.Pos(), "slice literal allocates on //repro:hotpath function %s", fname)
		case *types.Map:
			pass.Reportf(e.Pos(), "map literal allocates on //repro:hotpath function %s", fname)
		}

	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				pass.Reportf(e.Pos(), "&composite literal allocates on //repro:hotpath function %s", fname)
			}
		}

	case *ast.FuncLit:
		if capturesVariables(info, e) {
			pass.Reportf(e.Pos(), "closure captures variables and allocates on //repro:hotpath function %s", fname)
		}

	case *ast.BinaryExpr:
		if e.Op == token.ADD && isStringType(info.Types[e.X].Type) {
			pass.Reportf(e.Pos(), "string concatenation allocates on //repro:hotpath function %s", fname)
		}

	case *ast.CallExpr:
		checkAllocCall(pass, fname, e)
	}
}

func checkAllocCall(pass *Pass, fname string, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Conversions: T(x) where T is an interface boxes x; string([]byte)
	// and []byte(string) copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if isIfaceType(dst) && src != nil && !isIfaceType(src) && !pointerShaped(src) {
			pass.Reportf(call.Pos(), "conversion to interface boxes a %s on //repro:hotpath function %s", src, fname)
		}
		if allocatingStringConv(dst, src) {
			pass.Reportf(call.Pos(), "string conversion copies on //repro:hotpath function %s", fname)
		}
		return
	}

	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates on //repro:hotpath function %s", fname)
			case "new":
				pass.Reportf(call.Pos(), "new allocates on //repro:hotpath function %s", fname)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array on //repro:hotpath function %s", fname)
			}
			return
		}
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pkgNameOf(pass.TypesInfo, x); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s allocates on //repro:hotpath function %s", sel.Sel.Name, fname)
				return
			}
		}
	}

	checkBoxingArgs(pass, fname, call)
}

// checkBoxingArgs flags non-pointer-shaped concrete values passed where
// the callee declares an interface parameter: each such pass boxes the
// value on the heap. Pointer-shaped values (pointers, funcs, maps,
// chans) fit the interface data word and do not allocate.
func checkBoxingArgs(pass *Pass, fname string, call *ast.CallExpr) {
	info := pass.TypesInfo
	ftv, ok := info.Types[call.Fun]
	if !ok || ftv.Type == nil {
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 || (len(call.Args) == 1 && params.Len() > 1) {
		return // f(g()) multi-value spread: no per-arg types to inspect
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !isIfaceType(pt) {
			continue
		}
		atv := info.Types[arg]
		if atv.IsNil() || atv.Type == nil {
			continue
		}
		if isIfaceType(atv.Type) || pointerShaped(atv.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s boxes it in an interface on //repro:hotpath function %s", atv.Type, fname)
	}
}

// capturesVariables reports whether lit references a variable declared
// outside its own body (a closure over locals, which escapes them and
// allocates the closure object).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures; anything declared
		// outside the literal's extent is.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isIfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether values of t fit an interface's data
// word without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// allocatingStringConv reports string<->[]byte/[]rune conversions.
func allocatingStringConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if isStringType(dst) {
		if s, ok := src.Underlying().(*types.Slice); ok {
			return isByteOrRune(s.Elem())
		}
		return false
	}
	if s, ok := dst.Underlying().(*types.Slice); ok && isByteOrRune(s.Elem()) {
		return isStringType(src)
	}
	return false
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
