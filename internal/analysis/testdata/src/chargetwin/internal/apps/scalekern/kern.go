// Package scalekern exercises chargetwin's kernel-twin convention: a
// function <x>Body pairs with <x>Task.Step, primitive names compare
// with the trailing "T" stripped, and compute charges compare with
// their argument text. The import path ends in internal/apps/scalekern
// so the fixture falls inside the analyzer's scope.
package scalekern

// Proc is the subject processor both kernel forms charge on.
type Proc struct{}

func (p *Proc) ComputeUs(us float64)  { _ = us }
func (p *Proc) Barrier()              {}
func (p *Proc) ComputeUsT(us float64) { _ = us }
func (p *Proc) BarrierT()             {}
func (p *Proc) WriteWord(dst int)     { _ = dst }
func (p *Proc) WriteWordT(dst int)    { _ = dst }

const itemCost = 0.05

// sumBody and sumTask.Step charge identically: no finding.
func sumBody(p *Proc, n int) {
	_ = n
	p.ComputeUs(itemCost)
	p.Barrier()
}

type sumTask struct{ pc int }

func (t *sumTask) Step(p *Proc) {
	p.ComputeUsT(itemCost)
	p.BarrierT()
}

// scanBody and scanTask.Step diverge in the compute argument.
func scanBody(p *Proc, n int) {
	_ = n
	p.ComputeUs(itemCost)
	p.WriteWord(0)
}

type scanTask struct{ pc int }

func (t *scanTask) Step(p *Proc) { // want `diverges from blocking twin scanBody at step 1: ComputeUs\(2 \* itemCost\) vs ComputeUs\(itemCost\)`
	p.ComputeUsT(2 * itemCost)
	p.WriteWordT(0)
}

// packBody and packTask.Step differ in length.
func packBody(p *Proc, n int) {
	_ = n
	p.WriteWord(1)
}

type packTask struct{ pc int }

func (t *packTask) Step(p *Proc) { // want `has 2 op\(s\), blocking twin packBody has 1`
	p.WriteWordT(1)
	p.BarrierT()
}

// orphanBody has no Task twin: skipped, not a finding.
func orphanBody(p *Proc, n int) {
	_ = n
	p.Barrier()
}
