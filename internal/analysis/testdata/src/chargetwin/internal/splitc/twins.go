// Package splitc exercises chargetwin's primitive-twin convention: a
// method M on type X pairs with M+"T" on "T"+X, and the two must issue
// identical endpoint-boundary charge sequences. The import path ends in
// internal/splitc so the fixture falls inside the analyzer's scope.
package splitc

// Endpoint is the charge surface both twin forms issue on.
type Endpoint struct{}

func (e *Endpoint) Compute(cycles int64) { _ = cycles }
func (e *Endpoint) Request()             {}
func (e *Endpoint) Store()               {}

const spinCost = 40

// Sem is the blocking form; TSem is its continuation twin.
type Sem struct{ ep *Endpoint }

type TSem struct{ ep *Endpoint }

// Acquire/AcquireT charge identically: no finding.
func (s *Sem) Acquire() {
	s.ep.Request()
	s.ep.Compute(spinCost)
}

func (s *TSem) AcquireT() {
	s.ep.Request()
	s.ep.Compute(spinCost)
}

// Release/ReleaseT diverge in the compute argument.
func (s *Sem) Release() {
	s.ep.Store()
	s.ep.Compute(spinCost)
}

func (s *TSem) ReleaseT() { // want `diverges from blocking twin Release at step 2: compute\(spinCost \* 2\) vs compute\(spinCost\)`
	s.ep.Store()
	s.ep.Compute(spinCost * 2)
}

// Signal/SignalT differ in length.
func (s *Sem) Signal() {
	s.ep.Store()
}

func (s *TSem) SignalT() { // want `has 2 op\(s\), blocking twin Signal has 1`
	s.ep.Store()
	s.ep.Request()
}

// Exchange/ExchangeT both charge through an unpaired helper method; the
// flattened sequences match.
func (s *Sem) roundTrip() {
	s.ep.Request()
	s.ep.Store()
}

func (s *Sem) Exchange() {
	s.roundTrip()
	s.ep.Compute(spinCost)
}

func (s *TSem) roundTrip() {
	s.ep.Request()
	s.ep.Store()
}

func (s *TSem) ExchangeT() {
	s.roundTrip()
	s.ep.Compute(spinCost)
}

// Fetch/FetchT: a handler closure's charges run on the receiving
// processor in both modes, so its body is outside the issuing sequence.
func (s *Sem) Fetch() {
	s.ep.Request()
}

func (s *TSem) withHandler(h func()) { _ = h }

func (s *TSem) FetchT() {
	s.withHandler(func() {
		s.ep.Compute(spinCost)
	})
	s.ep.Request()
}

// Probe/ProbeT diverge, but the directive sanctions it.
func (s *Sem) Probe() {
	s.ep.Request()
}

//lint:allow chargetwin fixture: demonstrating the escape hatch
func (s *TSem) ProbeT() {
	s.ep.Request()
	s.ep.Compute(spinCost)
}
