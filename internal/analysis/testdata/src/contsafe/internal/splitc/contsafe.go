// Package splitc exercises the contsafe analyzer. The import path ends
// in internal/splitc so the fixture falls inside the analyzer's scope;
// a function returning PollableWait is a continuation and must not
// block, leak opState sub-states, or persist clock readings across a
// yield.
package splitc

// PollableWait is the continuation signature shape the analyzer keys on.
type PollableWait interface{ Ready() bool }

// Proc provides the clock and the blocking primitives the fixtures call.
type Proc struct{ now int64 }

func (p *Proc) Now() int64      { return p.now }
func (p *Proc) Park(at int64)   { _ = at }
func (p *Proc) Request(dst int) { _ = dst }

type task struct {
	pc       int
	start    int64
	deadline int64
}

// A continuation must return a wait instead of parking.
func (t *task) badBlock(p *Proc) PollableWait {
	p.Park(t.deadline) // want `calls blocking primitive Park`
	return nil
}

// The escape hatch suppresses a sanctioned blocking call.
func (t *task) allowedBlock(p *Proc) PollableWait {
	//lint:allow contsafe fixture: demonstrating the escape hatch
	p.Request(1)
	return nil
}

// State 3 is assigned but no case consumes it; case 2 is dispatched on
// but never assigned.
func (t *task) badStates(p *Proc) PollableWait {
	switch t.pc {
	case 0:
		t.pc = 1
	case 1:
		t.pc = 3 // want `dead state`
	case 2: // want `unreachable state`
		t.pc = 0
	}
	return nil
}

// A clock reading stored into persistent state is stale on re-entry.
func (t *task) badClock(p *Proc) PollableWait {
	t.start = p.Now() // want `survives a yield point`
	return nil
}

// Taint flows through locals before the persistent store.
func (t *task) badClockLocal(p *Proc) PollableWait {
	now := p.Now()
	t.start = now + 10 // want `survives a yield point`
	return nil
}

// A well-formed poll function: closed state machine, clock read only
// compared, never persisted.
func (t *task) goodStep(p *Proc) PollableWait {
	switch t.pc {
	case 0:
		if p.Now() >= t.deadline {
			t.pc = 1
		}
	case 1:
		t.pc = 0
	}
	return nil
}

// No PollableWait result: not a continuation, free to block and stamp.
func (t *task) setup(p *Proc) {
	t.start = p.Now()
	p.Park(t.start)
}
