// Package maporderbad exercises maporder: order-sensitive bodies in
// range-over-map loops are findings; the collect-then-sort idiom,
// order-insensitive bodies, and the escape hatch are not.
package maporderbad

import (
	"fmt"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to keys in nondeterministic order`
	}
	return keys
}

// appendThenSort is the sanctioned collect-then-sort idiom.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printsDirectly(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `writes output via fmt\.Printf`
		sb.WriteString(k)           // want `writes output via WriteString`
	}
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `accumulates float sum in nondeterministic order`
	}
	return sum
}

// intSum is order-insensitive: integer addition is associative.
func intSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// keyedCopy writes through the iteration key, so order cannot leak.
func keyedCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sliceSum ranges over a slice, not a map.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

func allowedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow maporder fixture: demonstrating the escape hatch
		keys = append(keys, k)
	}
	return keys
}
