// Package seededrandbad exercises seededrand: math/rand global-source
// functions are findings anywhere in the module; explicitly seeded
// generators and the escape hatch are not.
package seededrandbad

import "math/rand"

func bad(n int) int {
	rand.Seed(42)      // want `rand\.Seed draws from the process-wide source`
	x := rand.Intn(n)  // want `rand\.Intn draws from the process-wide source`
	_ = rand.Float64() // want `rand\.Float64 draws from the process-wide source`
	_ = rand.Perm(n)   // want `rand\.Perm draws from the process-wide source`
	return x
}

// good is the sanctioned pattern: the seed arrives from the run Spec.
func good(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func allowed() float64 {
	//lint:allow seededrand fixture: demonstrating the escape hatch
	return rand.ExpFloat64()
}
