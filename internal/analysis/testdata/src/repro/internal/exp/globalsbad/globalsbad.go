// Package globalsbad exercises noglobalmut: package-level mutable
// state in experiment packages is a finding; immutable config tables,
// interface-compliance checks, error sentinels, and the escape hatch
// are not.
package globalsbad

import (
	"errors"
	"io"
	"sync"
)

var cache = map[string]int{} // want `package-level var cache holds a map`

var counter int // want `package-level var counter is written at`

var Exported = 3 // want `exported package-level var Exported is assignable by any importer`

var mu sync.Mutex // want `package-level var mu holds a sync\.Mutex`

// sweepPoints is never written, written through, or address-taken: an
// immutable config table, the repo's idiom (internal/exp sweep points).
var sweepPoints = []float64{0, 1, 2, 4}

var ErrNotFound = errors.New("globalsbad: not found") // sentinel: fine

var _ io.Writer = (*nopWriter)(nil) // compliance check: fine

//lint:allow noglobalmut fixture: demonstrating the escape hatch
var legacy = map[string]bool{}

type nopWriter struct{}

func (*nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func bump() { counter++ }

func firstPoint() float64 { return sweepPoints[0] }
