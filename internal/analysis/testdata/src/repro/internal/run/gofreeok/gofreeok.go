// Package gofreeok shows goroutinefree scoping: internal/run is the
// worker pool, the one place host concurrency belongs.
package gofreeok

func fanOut(work []int) []int {
	out := make(chan int, len(work))
	for _, w := range work {
		go func(w int) { out <- w }(w)
	}
	got := make([]int, 0, len(work))
	for range work {
		got = append(got, <-out)
	}
	return got
}
