// Package wallclockok shows simwallclock scoping: internal/run is the
// worker pool, where wall-clock progress reporting is legitimate.
package wallclockok

import "time"

func Elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}
