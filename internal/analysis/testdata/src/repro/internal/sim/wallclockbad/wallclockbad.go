// Package wallclockbad exercises simwallclock: wall-clock reads inside
// a simulation package are findings; the //lint:allow escape hatch and
// pure time.Duration arithmetic are not.
package wallclockbad

import "time"

func bad() time.Duration {
	t0 := time.Now()             // want `wall-clock time\.Now in simulation package internal/sim`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
	_ = time.Tick(time.Second)   // want `wall-clock time\.Tick`
	_ = time.After(time.Second)  // want `wall-clock time\.After`
	return time.Since(t0)        // want `wall-clock time\.Since`
}

func pureConversions() time.Duration {
	// Duration arithmetic never touches the host clock.
	return 3 * time.Millisecond / 2
}

func allowed() time.Time {
	//lint:allow simwallclock fixture: demonstrating the escape hatch
	return time.Now()
}
