// Package gofreebad exercises goroutinefree: go statements and channel
// operations inside a simulation package are findings; the escape
// hatch used by internal/sim's cooperative scheduler is not.
package gofreebad

func spawn(work []int) int {
	ch := make(chan int, len(work)) // want `channel construction in simulation package internal/sim`
	for _, w := range work {
		go func(w int) { ch <- w }(w) // want `go statement` `channel send`
	}
	var sum int
	for range work {
		sum += <-ch // want `channel receive`
	}
	close(ch) // want `channel close`
	return sum
}

func drain(ch chan int) int {
	var sum int
	for v := range ch { // want `range over channel`
		sum += v
	}
	return sum
}

func trySelect(ch chan int) int {
	select { // want `select statement`
	case v := <-ch: // want `channel receive`
		return v
	default:
		return 0
	}
}

func allowed() chan int {
	//lint:allow goroutinefree fixture: demonstrating the escape hatch
	return make(chan int)
}
