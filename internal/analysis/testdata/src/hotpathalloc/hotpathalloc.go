// Package hotpathalloc exercises the hotpathalloc analyzer: allocation
// sites on the steady-state path of //repro:hotpath functions are
// findings; value-type literals, panic guards, un-annotated functions,
// and allowlisted cold branches are not.
package hotpathalloc

import "fmt"

type ring struct {
	buf  []int
	head int
}

//repro:hotpath
func (r *ring) badPush(v int) {
	r.buf = append(r.buf, v) // want `append may grow its backing array`
}

//repro:hotpath
func badLiterals(n int) int {
	s := []int{n} // want `slice literal allocates`
	m := map[int]int{n: n} // want `map literal allocates`
	p := &ring{head: n} // want `&composite literal allocates`
	return s[0] + m[n] + p.head
}

//repro:hotpath
func badMake(n int) []byte {
	return make([]byte, n) // want `make allocates`
}

//repro:hotpath
func badNew() *ring {
	return new(ring) // want `new allocates`
}

//repro:hotpath
func badClosure(v int) func() int {
	return func() int { return v } // want `closure captures variables`
}

//repro:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//repro:hotpath
func badFmt(v int) string {
	return fmt.Sprintf("%d", v) // want `fmt.Sprintf allocates`
}

//repro:hotpath
func badBoxConv(v int) any {
	return any(v) // want `conversion to interface boxes`
}

func sink(v any) { _ = v }

//repro:hotpath
func badBoxArg(v int) {
	sink(v) // want `boxes it in an interface`
}

//repro:hotpath
func badBytes(s string) []byte {
	return []byte(s) // want `string conversion copies`
}

// Struct literals are value types: no heap allocation, no finding.
//
//repro:hotpath
func goodValue(n int) ring {
	return ring{head: n}
}

// A straight-line run ending in panic is off the steady-state path, so
// the fmt call in the guard is exempt.
//
//repro:hotpath
func goodPanicGuard(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative length %d", n))
	}
	return n * 2
}

// The escape hatch: sanctioned amortized growth on a cold branch.
//
//repro:hotpath
func allowedGrow(buf []int, v int) []int {
	//lint:allow hotpathalloc fixture: amortized growth reaches its high-water mark during warmup
	return append(buf, v)
}

// No directive: cold code may allocate freely.
func coldSetup(n int) []int {
	return make([]int, n)
}
