package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops whose bodies are sensitive to
// iteration order — the classic silent killer of byte-identical
// tables. Three body patterns are order-sensitive:
//
//   - appending to a slice declared outside the loop (flagged unless a
//     sort.*/slices.* call follows the loop in the same block, the
//     collect-then-sort idiom);
//   - writing output (fmt.Print*/Fprint*, io Write*) directly from the
//     body — no later sort can repair an already-written stream;
//   - accumulating floating-point values with += / -= / *= / /= into a
//     variable declared outside the loop: float addition is not
//     associative, so even "sum over all values" differs run to run.
//
// Order-insensitive bodies (counting, keyed writes into another map,
// max/min scans over values) pass. False positives take a
// //lint:allow maporder <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive iteration over maps (append/output/float-accumulate without a deterministic sort)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, stmt := range stmts {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypesInfo.Types[rs.X].Type) {
					continue
				}
				checkMapRange(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	sortedAfter := hasSortCall(pass, rest)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if target, ok := appendTarget(pass, s, rs); ok {
				if !sortedAfter {
					pass.Reportf(s.Pos(),
						"range over map appends to %s in nondeterministic order; sort %s afterwards or iterate sorted keys",
						target, target)
				}
				return true
			}
			if target, ok := floatAccumTarget(pass, s, rs); ok {
				pass.Reportf(s.Pos(),
					"range over map accumulates float %s in nondeterministic order (float addition is not associative); iterate sorted keys",
					target)
				return true
			}
		case *ast.CallExpr:
			if name, ok := outputCall(pass, s); ok {
				pass.Reportf(s.Pos(),
					"range over map writes output via %s in nondeterministic order; iterate sorted keys",
					name)
			}
		}
		return true
	})
}

// appendTarget matches `x = append(x, ...)` (and variants) where x is
// declared outside the range statement.
func appendTarget(pass *Pass, s *ast.AssignStmt, rs *ast.RangeStmt) (string, bool) {
	if len(s.Lhs) != len(s.Rhs) {
		return "", false
	}
	for i, rhs := range s.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") {
			continue
		}
		if id := baseIdent(s.Lhs[i]); id != nil && declaredOutside(pass, id, rs) {
			return id.Name, true
		}
	}
	return "", false
}

// floatAccumTarget matches compound float assignment (sum += v) to a
// variable declared outside the range statement.
func floatAccumTarget(pass *Pass, s *ast.AssignStmt, rs *ast.RangeStmt) (string, bool) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return "", false
	}
	lhs := s.Lhs[0]
	t := pass.TypesInfo.Types[lhs].Type
	if t == nil {
		return "", false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return "", false
	}
	if id := baseIdent(lhs); id != nil && declaredOutside(pass, id, rs) {
		return id.Name, true
	}
	return "", false
}

// outputCall matches stream-writing calls: fmt printers and Write*
// methods on writers/builders.
func outputCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := calleeFunc(pass.TypesInfo, sel)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return name, true
	}
	return "", false
}

// hasSortCall reports whether any statement in rest calls into sort or
// slices — the collect-then-sort idiom that makes a preceding
// map-range append deterministic again.
func hasSortCall(pass *Pass, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn, ok := calleeFunc(pass.TypesInfo, sel); ok && fn.Pkg() != nil {
				if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
					found = true
				}
			}
			return true
		})
	}
	return found
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// declaredOutside reports whether id's object is declared outside the
// range statement (so mutation through it escapes the loop).
func declaredOutside(pass *Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}
