package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestGoroutineAllowsConfinedToShell pins where the goroutinefree
// escape hatch may be used: only internal/sim/engine.go, the
// compatibility shell that multiplexes blocking SPMD bodies over
// coroutines. The resumable runtime (sim/resume.go, am/cont.go,
// splitc/cont.go, the scalekern kernels) is engine-driven and needs no
// goroutines at all — that is the point of the refactor — so an allow
// directive appearing anywhere else means a channel crept into code
// that is supposed to run a million processors on one goroutine.
func TestGoroutineAllowsConfinedToShell(t *testing.T) {
	root, _, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			// Fixtures under testdata demonstrate the escape hatch on
			// purpose; they are not part of the simulator.
			if info.Name() == "testdata" || info.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if !strings.Contains(line, "//lint:allow goroutinefree") {
				continue
			}
			if rel == filepath.Join("internal", "sim", "engine.go") {
				continue
			}
			if rel == filepath.Join("internal", "analysis", "goroutinefree.go") ||
				strings.HasPrefix(rel, filepath.Join("internal", "analysis")+string(filepath.Separator)) {
				// The analyzer's own docs and tests mention the directive.
				continue
			}
			t.Errorf("%s:%d: goroutinefree allow outside the coroutine shell (engine.go); the resumable runtime must stay channel-free", rel, i+1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
