package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"sync"
)

// A Finding is one unsuppressed diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Report is the outcome of one driver run.
type Report struct {
	Findings []Finding
	Packages int
}

// Counts tallies findings per analyzer, in suite order, skipping
// analyzers with none.
func (r *Report) Counts(analyzers []*Analyzer) []string {
	byName := map[string]int{}
	for _, f := range r.Findings {
		byName[f.Analyzer]++
	}
	var out []string
	for _, a := range analyzers {
		if n := byName[a.Name]; n > 0 {
			out = append(out, fmt.Sprintf("%s %d", a.Name, n))
			delete(byName, a.Name)
		}
	}
	// Pseudo-analyzers (lintdirective) and anything not in the suite.
	var rest []string
	for name := range byName {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	for _, name := range rest {
		out = append(out, fmt.Sprintf("%s %d", name, byName[name]))
	}
	return out
}

// Run loads the packages matched by patterns (relative to dir) and
// applies every analyzer, returning findings that no //lint:allow
// directive covers, sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Report, error) {
	return RunJobs(dir, patterns, analyzers, 1)
}

// RunJobs is Run with the loading and checking spread over a bounded
// worker pool. Each worker owns a private loader over a contiguous chunk
// of the matched directories — the loader's module-internal import cache
// is mutable (the external-test override dance purges entries) and not
// safe to share — so workers re-check module-internal dependencies
// independently. Standard-library imports resolve through one shared
// concurrency-safe cache, so the stdlib is parsed and checked once per
// run rather than once per worker. Findings are position-sorted after
// the merge; the report is byte-identical at any jobs value.
func RunJobs(dir string, patterns []string, analyzers []*Analyzer, jobs int) (*Report, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(dirs) {
		jobs = len(dirs)
	}
	type result struct {
		findings []Finding
		packages int
		err      error
	}
	results := make([]result, jobs)
	shared := newSharedImports()
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		lo, hi := w*len(dirs)/jobs, (w+1)*len(dirs)/jobs
		wg.Add(1)
		go func(res *result, chunk []string) {
			defer wg.Done()
			ld := newLoader(root, modPath)
			ld.shared = shared
			for _, d := range chunk {
				pkgs, err := ld.checkDir(d)
				if err != nil {
					res.err = err
					return
				}
				for _, pkg := range pkgs {
					fs, err := analyzePackage(pkg, analyzers)
					if err != nil {
						res.err = err
						return
					}
					res.findings = append(res.findings, fs...)
					res.packages++
				}
			}
		}(&results[w], dirs[lo:hi])
	}
	wg.Wait()
	rep := &Report{}
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		rep.Findings = append(rep.Findings, results[i].findings...)
		rep.Packages += results[i].packages
	}
	sortFindings(rep.Findings)
	return rep, nil
}

// analyzePackage applies the analyzers to one loaded package and
// filters the results through its allow directives.
func analyzePackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, findings := collectAllows(pkg, known)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if allows.allowed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	// Every analyzer has reported; directives that suppressed nothing
	// are stale and become findings themselves.
	findings = append(findings, allows.unused()...)
	return findings, nil
}

// RunPackage applies one analyzer to an already-loaded package with
// allow filtering — the entry point analysistest uses.
func RunPackage(pkg *Package, a *Analyzer) ([]Finding, error) {
	return analyzePackage(pkg, []*Analyzer{a})
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
