package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// The allowlist escape hatch: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the same line (trailing
// comment) or on the line immediately below (comment on its own line).
// The reason is mandatory — an allow without a justification is itself
// reported as a finding, as is an allow naming an unknown analyzer, and
// so is a directive that no longer suppresses anything (stale directives
// would otherwise accumulate silently and mask future regressions at
// their line).

const allowPrefix = "//lint:allow"

type allowKey struct {
	file     string
	analyzer string
	line     int
}

type allowSet struct {
	// keys maps each well-formed directive to its position, for the
	// stale-directive report.
	keys map[allowKey]token.Position
	// used marks directives that suppressed at least one diagnostic.
	used map[allowKey]bool
}

// collectAllows scans a package's comments for allow directives.
// Malformed directives are returned as findings attributed to the
// pseudo-analyzer "lintdirective" so they cannot silently disable a
// real check.
func collectAllows(pkg *Package, known map[string]bool) (*allowSet, []Finding) {
	as := &allowSet{keys: map[allowKey]token.Position{}, used: map[allowKey]bool{}}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 || !known[fields[0]] {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "//lint:allow needs a known analyzer name (" + knownNames(known) + ")",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "//lint:allow " + fields[0] + " needs a reason",
					})
					continue
				}
				as.keys[allowKey{pos.Filename, fields[0], pos.Line}] = pos
			}
		}
	}
	return as, bad
}

// allowed reports whether a diagnostic by analyzer at pos is covered by
// a directive on its line or the line above, marking the covering
// directive as used.
func (as *allowSet) allowed(analyzer string, pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		k := allowKey{pos.Filename, analyzer, line}
		if _, ok := as.keys[k]; ok {
			as.used[k] = true
			return true
		}
	}
	return false
}

// unused returns a lintdirective finding for every well-formed directive
// that suppressed nothing, in position order. Call after every analyzer
// in the run has reported.
func (as *allowSet) unused() []Finding {
	var out []Finding
	for k, pos := range as.keys {
		if as.used[k] {
			continue
		}
		//lint:allow maporder the collected findings are position-sorted before return
		out = append(out, Finding{
			Analyzer: "lintdirective",
			Pos:      pos,
			Message:  "//lint:allow " + k.analyzer + " suppresses nothing (stale directive)",
		})
	}
	sortFindings(out)
	return out
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
