package analysis

import (
	"go/ast"
	"go/token"
)

// A function-level control-flow graph over the AST, the substrate the
// dataflow analyzers (hotpathalloc, contsafe) share. Each cfgBlock is a
// straight-line run of leaf statements and control expressions; compound
// statements contribute their conditions to the block that evaluates
// them and their bodies to successor blocks. The graph is intentionally
// small: intraprocedural, no exceptional edges beyond panic termination,
// which is exactly what reachability ("is this allocation on the
// steady-state path or behind an unconditional panic?") and forward
// taint propagation ("does a clock read flow into persistent state?")
// need.
type cfgBlock struct {
	// nodes holds, in source order, the leaf statements executed in this
	// block plus the control expressions evaluated here (if/switch
	// conditions, range operands, case expressions). Nested bodies live
	// in successor blocks, so walking nodes never revisits a statement.
	nodes []ast.Node
	succs []*cfgBlock
	// panics marks a block whose straight-line run ends in an
	// unconditional panic: everything in it executes only on the way to
	// that panic, so it is off the steady-state path by construction.
	panics bool
}

type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

// reachable returns the blocks reachable from entry, in a deterministic
// (construction) order.
func (c *funcCFG) reachable() []*cfgBlock {
	seen := map[*cfgBlock]bool{c.entry: true}
	work := []*cfgBlock{c.entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	var out []*cfgBlock
	for _, b := range c.blocks {
		if seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// cfgCtx carries the targets a branch statement resolves against.
type cfgCtx struct {
	brk, cont *cfgBlock
	// labels maps an enclosing statement label to the break/continue
	// targets of the loop or switch it labels.
	labels map[string]*cfgLabel
}

type cfgLabel struct {
	brk, cont *cfgBlock
}

func (ctx cfgCtx) withLoop(brk, cont *cfgBlock, label string) cfgCtx {
	out := ctx
	out.brk, out.cont = brk, cont
	if label != "" {
		out.labels = copyLabels(ctx.labels)
		out.labels[label] = &cfgLabel{brk: brk, cont: cont}
	}
	return out
}

func copyLabels(in map[string]*cfgLabel) map[string]*cfgLabel {
	out := make(map[string]*cfgLabel, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}

type cfgBuilder struct {
	blocks []*cfgBlock
	// gotoTargets maps a label to the block starting at the labeled
	// statement; pending gotos link against it once the whole body is
	// built (forward gotos included).
	gotoTargets map[string]*cfgBlock
	pendingGoto []pendingGoto
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{gotoTargets: map[string]*cfgBlock{}}
	entry := b.newBlock()
	b.stmtList(entry, body.List, cfgCtx{})
	for _, g := range b.pendingGoto {
		if t := b.gotoTargets[g.label]; t != nil {
			g.from.succs = append(g.from.succs, t)
		}
	}
	return &funcCFG{entry: entry, blocks: b.blocks}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.blocks = append(b.blocks, blk)
	return blk
}

// stmtList threads a statement list through cur, returning the block
// holding control afterwards (nil when control cannot fall through:
// return, branch, or unconditional panic).
func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt, ctx cfgCtx) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminator still gets blocks so its
			// nodes exist in the graph, but nothing links to them.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, ctx, "")
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt, ctx cfgCtx, label string) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List, ctx)

	case *ast.LabeledStmt:
		start := b.newBlock()
		cur.succs = append(cur.succs, start)
		b.gotoTargets[s.Label.Name] = start
		return b.stmt(start, s.Stmt, ctx, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		then := b.newBlock()
		cur.succs = append(cur.succs, then)
		tOut := b.stmtList(then, s.Body.List, ctx)
		var eOut *cfgBlock
		if s.Else != nil {
			els := b.newBlock()
			cur.succs = append(cur.succs, els)
			eOut = b.stmt(els, s.Else, ctx, "")
		} else {
			eOut = cur // fallthrough edge from the condition itself
		}
		if tOut == nil && (s.Else != nil && eOut == nil) {
			return nil
		}
		join := b.newBlock()
		if tOut != nil {
			tOut.succs = append(tOut.succs, join)
		}
		if eOut != nil {
			eOut.succs = append(eOut.succs, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		cur.succs = append(cur.succs, head)
		after := b.newBlock()
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			head.succs = append(head.succs, after)
		}
		body := b.newBlock()
		head.succs = append(head.succs, body)
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			post.succs = append(post.succs, head)
			cont = post
		}
		out := b.stmtList(body, s.Body.List, ctx.withLoop(after, cont, label))
		if out != nil {
			out.succs = append(out.succs, cont)
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		cur.nodes = append(cur.nodes, s.X)
		cur.succs = append(cur.succs, head)
		if s.Key != nil {
			head.nodes = append(head.nodes, s.Key)
		}
		if s.Value != nil {
			head.nodes = append(head.nodes, s.Value)
		}
		after := b.newBlock()
		head.succs = append(head.succs, after)
		body := b.newBlock()
		head.succs = append(head.succs, body)
		out := b.stmtList(body, s.Body.List, ctx.withLoop(after, head, label))
		if out != nil {
			out.succs = append(out.succs, head)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body.List, ctx, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchBody(cur, s.Body.List, ctx, label)

	case *ast.SelectStmt:
		join := b.newBlock()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			cur.succs = append(cur.succs, cb)
			if cc.Comm != nil {
				cb.nodes = append(cb.nodes, cc.Comm)
			}
			if out := b.stmtList(cb, cc.Body, ctx.withLoop(join, ctx.cont, label)); out != nil {
				out.succs = append(out.succs, join)
			}
		}
		return join

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		return nil

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, s)
		switch s.Tok {
		case token.BREAK:
			t := ctx.brk
			if s.Label != nil {
				if l := ctx.labels[s.Label.Name]; l != nil {
					t = l.brk
				}
			}
			if t != nil {
				cur.succs = append(cur.succs, t)
			}
		case token.CONTINUE:
			t := ctx.cont
			if s.Label != nil {
				if l := ctx.labels[s.Label.Name]; l != nil {
					t = l.cont
				}
			}
			if t != nil {
				cur.succs = append(cur.succs, t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.pendingGoto = append(b.pendingGoto, pendingGoto{cur, s.Label.Name})
			}
		}
		// fallthrough is resolved by switchBody.
		return nil

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isPanicCall(s.X) {
			cur.panics = true
			return nil
		}
		return cur

	default:
		// Assignments, declarations, incdec, send, defer, go, empty.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchBody wires case clauses: every clause is a successor of the
// dispatching block; a missing default adds a direct edge to the join.
func (b *cfgBuilder) switchBody(cur *cfgBlock, clauses []ast.Stmt, ctx cfgCtx, label string) *cfgBlock {
	join := b.newBlock()
	caseBlocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		cb := caseBlocks[i]
		cur.succs = append(cur.succs, cb)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			cb.nodes = append(cb.nodes, e)
		}
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		out := b.stmtList(cb, body, ctx.withLoop(join, ctx.cont, label))
		if out != nil {
			if fallsThrough && i+1 < len(clauses) {
				out.succs = append(out.succs, caseBlocks[i+1])
			} else {
				out.succs = append(out.succs, join)
			}
		}
	}
	if !hasDefault {
		cur.succs = append(cur.succs, join)
	}
	return join
}

// isPanicCall reports whether e is a direct call to the panic builtin.
// Name-based: shadowing panic would defeat it, and nothing in this
// repository does.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// hotpathDirective marks a function whose steady-state path must not
// allocate (see hotpathalloc.go).
const hotpathDirective = "//repro:hotpath"

// isHotPath reports whether fd carries the //repro:hotpath directive in
// its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || len(c.Text) > len(hotpathDirective) &&
			c.Text[:len(hotpathDirective)+1] == hotpathDirective+" " {
			return true
		}
	}
	return false
}
