// Package analysis implements reprolint, a suite of static analyzers
// that mechanically enforce the simulator's determinism and isolation
// invariants (DESIGN.md "Determinism invariants").
//
// The package is a small, dependency-free subset of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package at a time through a Pass and reports
// Diagnostics. The driver (Run) loads packages from source with the
// standard library's go/build, go/parser, and go/types, applies every
// analyzer, and filters diagnostics through the //lint:allow escape
// hatch. cmd/reprolint is the multichecker front end; tests use the
// sibling analysistest package with fixtures under testdata/src.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass connects an Analyzer to the single package being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned within the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// All returns the full reprolint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		SimWallClock,
		SeededRand,
		NoGlobalMut,
		MapOrder,
		GoroutineFree,
		HotPathAlloc,
		ContSafe,
		ChargeTwin,
	}
}

// simScopes are the simulation packages (module-root-relative import
// path prefixes) in which virtual time is the only clock and a single
// goroutine is the only execution context. internal/run (the worker
// pool) and cmd/ (progress reporting) are deliberately excluded.
func simScopes() []string {
	return []string{
		"internal/sim",
		"internal/am",
		"internal/apps",
		"internal/core",
		"internal/depgraph",
		"internal/fault",
		"internal/logp",
		"internal/prof",
		"internal/splitc",
		"internal/tolerance",
	}
}

// noGlobalScopes are the packages that must hold no package-level
// mutable state, so that overlapping plans and the -jobs worker pool
// cannot interact through hidden channels (the PR 1 sweepCache
// regression, made structural).
func noGlobalScopes() []string {
	return []string{
		"internal/exp",
		"internal/run",
		"internal/apps",
		"internal/depgraph",
		"internal/fault",
		"internal/prof",
		"internal/splitc/tune",
		"internal/tolerance",
	}
}

// inScope reports whether pkgPath falls under any of the given
// module-root-relative prefixes, matching whole path segments only
// ("x/internal/sim" and "internal/sim/sub" match "internal/sim";
// "internal/simx" does not).
func inScope(pkgPath string, scopes []string) bool {
	for _, s := range scopes {
		if hasPathSegments(pkgPath, s) {
			return true
		}
	}
	return false
}

func hasPathSegments(path, want string) bool {
	for i := 0; i+len(want) <= len(path); i++ {
		if i > 0 && path[i-1] != '/' {
			continue
		}
		if path[i:i+len(want)] != want {
			continue
		}
		if i+len(want) == len(path) || path[i+len(want)] == '/' {
			return true
		}
	}
	return false
}

// pkgNameOf resolves an identifier to the import it names, if any.
func pkgNameOf(info *types.Info, id *ast.Ident) (*types.PkgName, bool) {
	pn, ok := info.Uses[id].(*types.PkgName)
	return pn, ok
}

// calleeFunc resolves a call-like selector (pkg.F or x.M) to the
// package-level function or method it names.
func calleeFunc(info *types.Info, sel *ast.SelectorExpr) (*types.Func, bool) {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return fn, ok
}

// isPkgFunc reports whether fn is a package-level function (no
// receiver) of the package with import path pkgPath.
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// baseIdent unwraps index, selector, star, and paren expressions to the
// identifier at the base of an assignable expression: m[k] -> m,
// s.f[i] -> s, (*p).x -> p. Returns nil when the base is not a plain
// identifier (for example a function call result).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// relScope trims the module path from a package path for messages:
// "repro/internal/sim" -> "internal/sim".
func relScope(pkgPath string) string {
	if i := strings.Index(pkgPath, "internal/"); i >= 0 {
		return pkgPath[i:]
	}
	return pkgPath
}
