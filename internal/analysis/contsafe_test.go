package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestContSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ContSafe,
		// The fixture path ends in internal/splitc to land in scope.
		"contsafe/internal/splitc",
	)
}
