package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule lays out a synthetic module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestViolationsAreFindings demonstrates the acceptance criterion
// end-to-end through the module loader: introducing a time.Now() call
// in internal/sim, or a package-level cache map in internal/exp, makes
// the multichecker report findings (and so cmd/reprolint exit 1).
func TestViolationsAreFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() time.Time { return time.Now() }
`,
		"internal/exp/cache.go": `package exp

var cache = map[string]int{}

func Lookup(k string) int { return cache[k] }
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range rep.Findings {
		got = append(got, f.Analyzer)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("want exactly 2 findings (simwallclock, noglobalmut), got %d: %v", len(rep.Findings), rep.Findings)
	}
	if got[0] != "noglobalmut" && got[1] != "noglobalmut" {
		t.Errorf("missing noglobalmut finding in %v", got)
	}
	if got[0] != "simwallclock" && got[1] != "simwallclock" {
		t.Errorf("missing simwallclock finding in %v", got)
	}
}

// TestAllowDirectiveHygiene: a directive missing its reason, or naming
// an unknown analyzer, cannot silently suppress anything — it is
// itself reported.
func TestAllowDirectiveHygiene(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

//lint:allow simwallclock
func Stamp() time.Time { return time.Now() }

//lint:allow wallclock typo in analyzer name
func Stamp2() time.Time { return time.Now() }
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range rep.Findings {
		counts[f.Analyzer]++
	}
	// Both time.Now calls still flagged (the reasonless directive is
	// ignored; the misnamed one covers nothing), plus two lintdirective
	// findings for the malformed directives themselves.
	if counts["simwallclock"] != 2 || counts["lintdirective"] != 2 {
		t.Errorf("want simwallclock=2 lintdirective=2, got %v", counts)
	}
	for _, f := range rep.Findings {
		if f.Analyzer == "lintdirective" && !strings.Contains(f.Message, "lint:allow") {
			t.Errorf("lintdirective message should explain the directive grammar: %s", f.Message)
		}
	}
}

// TestStaleDirectiveIsAFinding: a well-formed directive that suppresses
// nothing is itself reported, so dead allowlist entries cannot
// accumulate and mask future regressions at their line.
func TestStaleDirectiveIsAFinding(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

//lint:allow simwallclock nothing on this line reads the wall clock
func Stamp() int64 { return 42 }
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "lintdirective" {
		t.Fatalf("want exactly 1 lintdirective finding, got %v", rep.Findings)
	}
	if !strings.Contains(rep.Findings[0].Message, "suppresses nothing") {
		t.Errorf("stale directive message should say so: %s", rep.Findings[0].Message)
	}
}

// TestMutationHotPathAlloc is the hot-path mutation check: injecting an
// allocation into a //repro:hotpath function produces a hotpathalloc
// finding, which makes cmd/reprolint exit 1.
func TestMutationHotPathAlloc(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		"internal/sim/heap.go": `package sim

type heap struct{ a []int }

//repro:hotpath
func (h *heap) pop() int {
	scratch := make([]int, 1) // injected allocation
	v := h.a[len(h.a)-1]
	h.a = h.a[:len(h.a)-1]
	return v + scratch[0]
}
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "hotpathalloc" {
		t.Fatalf("want exactly 1 hotpathalloc finding, got %v", rep.Findings)
	}
	if !strings.Contains(rep.Findings[0].Message, "make allocates") {
		t.Errorf("finding should name the injected make: %s", rep.Findings[0].Message)
	}
}

// TestMutationChargeTwinDivergence is the twin mutation check: doubling
// a continuation kernel's compute charge relative to its blocking twin
// produces a chargetwin finding, which makes cmd/reprolint exit 1.
func TestMutationChargeTwinDivergence(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		"internal/apps/scalekern/kern.go": `package scalekern

type Proc struct{}

func (p *Proc) ComputeUs(us float64)  { _ = us }
func (p *Proc) ComputeUsT(us float64) { _ = us }
func (p *Proc) Barrier()              {}
func (p *Proc) BarrierT()             {}

func radixBody(p *Proc, n int) {
	_ = n
	p.ComputeUs(0.4)
	p.Barrier()
}

type radixTask struct{ pc int }

func (t *radixTask) Step(p *Proc) {
	p.ComputeUsT(0.8) // injected divergence: double charge
	p.BarrierT()
}
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "chargetwin" {
		t.Fatalf("want exactly 1 chargetwin finding, got %v", rep.Findings)
	}
	if !strings.Contains(rep.Findings[0].Message, "diverges from blocking twin radixBody") {
		t.Errorf("finding should name the blocking twin: %s", rep.Findings[0].Message)
	}
}

// TestRunJobsMatchesSequential pins the parallel driver's determinism:
// the merged, sorted report is identical at any worker count.
func TestRunJobsMatchesSequential(t *testing.T) {
	files := map[string]string{"go.mod": "module sample\n\ngo 1.22\n"}
	for _, p := range []string{"a", "b", "c", "d"} {
		files["internal/sim/"+p+"/"+p+".go"] = `package ` + p + `

import "time"

func Stamp() time.Time { return time.Now() }
`
	}
	dir := writeModule(t, files)
	seq, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 3, 8} {
		par, err := analysis.RunJobs(dir, []string{"./..."}, analysis.All(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		if par.Packages != seq.Packages {
			t.Errorf("jobs=%d: %d packages, sequential saw %d", jobs, par.Packages, seq.Packages)
		}
		if len(par.Findings) != len(seq.Findings) {
			t.Fatalf("jobs=%d: %d findings, sequential saw %d", jobs, len(par.Findings), len(seq.Findings))
		}
		for i := range par.Findings {
			if par.Findings[i] != seq.Findings[i] {
				t.Errorf("jobs=%d: finding %d differs: %v vs %v", jobs, i, par.Findings[i], seq.Findings[i])
			}
		}
	}
}

// TestScopeMatching pins the segment semantics the scoped analyzers
// rely on: prefixes match whole path segments, not substrings.
func TestScopeMatching(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		// internal/simx is NOT a simulation package despite the prefix.
		"internal/simx/clock.go": `package simx

import "time"

func Stamp() time.Time { return time.Now() }
`,
		// Subpackages of a scoped tree are in scope.
		"internal/sim/inner/clock.go": `package inner

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly 1 finding (internal/sim/inner only), got %v", rep.Findings)
	}
	if !strings.Contains(rep.Findings[0].Pos.Filename, filepath.Join("sim", "inner")) {
		t.Errorf("finding attributed to the wrong package: %v", rep.Findings[0])
	}
}
