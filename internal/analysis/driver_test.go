package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule lays out a synthetic module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestViolationsAreFindings demonstrates the acceptance criterion
// end-to-end through the module loader: introducing a time.Now() call
// in internal/sim, or a package-level cache map in internal/exp, makes
// the multichecker report findings (and so cmd/reprolint exit 1).
func TestViolationsAreFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() time.Time { return time.Now() }
`,
		"internal/exp/cache.go": `package exp

var cache = map[string]int{}

func Lookup(k string) int { return cache[k] }
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range rep.Findings {
		got = append(got, f.Analyzer)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("want exactly 2 findings (simwallclock, noglobalmut), got %d: %v", len(rep.Findings), rep.Findings)
	}
	if got[0] != "noglobalmut" && got[1] != "noglobalmut" {
		t.Errorf("missing noglobalmut finding in %v", got)
	}
	if got[0] != "simwallclock" && got[1] != "simwallclock" {
		t.Errorf("missing simwallclock finding in %v", got)
	}
}

// TestAllowDirectiveHygiene: a directive missing its reason, or naming
// an unknown analyzer, cannot silently suppress anything — it is
// itself reported.
func TestAllowDirectiveHygiene(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

//lint:allow simwallclock
func Stamp() time.Time { return time.Now() }

//lint:allow wallclock typo in analyzer name
func Stamp2() time.Time { return time.Now() }
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range rep.Findings {
		counts[f.Analyzer]++
	}
	// Both time.Now calls still flagged (the reasonless directive is
	// ignored; the misnamed one covers nothing), plus two lintdirective
	// findings for the malformed directives themselves.
	if counts["simwallclock"] != 2 || counts["lintdirective"] != 2 {
		t.Errorf("want simwallclock=2 lintdirective=2, got %v", counts)
	}
	for _, f := range rep.Findings {
		if f.Analyzer == "lintdirective" && !strings.Contains(f.Message, "lint:allow") {
			t.Errorf("lintdirective message should explain the directive grammar: %s", f.Message)
		}
	}
}

// TestScopeMatching pins the segment semantics the scoped analyzers
// rely on: prefixes match whole path segments, not substrings.
func TestScopeMatching(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sample\n\ngo 1.22\n",
		// internal/simx is NOT a simulation package despite the prefix.
		"internal/simx/clock.go": `package simx

import "time"

func Stamp() time.Time { return time.Now() }
`,
		// Subpackages of a scoped tree are in scope.
		"internal/sim/inner/clock.go": `package inner

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	rep, err := analysis.Run(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly 1 finding (internal/sim/inner only), got %v", rep.Findings)
	}
	if !strings.Contains(rep.Findings[0].Pos.Filename, filepath.Join("sim", "inner")) {
		t.Errorf("finding attributed to the wrong package: %v", rep.Findings[0])
	}
}
