package analysis

import "testing"

// TestServiceScopeDecision pins the determinism boundary for the
// daemon layer (DESIGN.md §7, §13): internal/service and cmd/reprod sit
// outside the simulation, so the sim-only analyzers (simwallclock,
// goroutinefree) and the no-global-state analyzers must not claim them —
// the daemon legitimately uses wall-clock time, goroutines, and mutable
// server state. The module-wide analyzers (seededrand, maporder) still
// cover them: the loadtest's key choice must be seeded and every
// JSON/stats surface must iterate maps in sorted order.
func TestServiceScopeDecision(t *testing.T) {
	outside := []string{"repro/internal/service", "repro/cmd/reprod"}
	for _, pkg := range outside {
		if inScope(pkg, simScopes()) {
			t.Errorf("%s is in simScopes; the daemon is outside the simulation boundary", pkg)
		}
		if inScope(pkg, noGlobalScopes()) {
			t.Errorf("%s is in noGlobalScopes; the daemon holds server state by design", pkg)
		}
	}
	// The engine packages the daemon builds on stay inside the boundary.
	for _, pkg := range []string{"repro/internal/am", "repro/internal/sim"} {
		if !inScope(pkg, simScopes()) {
			t.Errorf("%s missing from simScopes", pkg)
		}
	}
	if !inScope("repro/internal/run", noGlobalScopes()) {
		t.Error("repro/internal/run missing from noGlobalScopes")
	}
}

// TestDepgraphScopeDecision pins the analytic engine's side of the
// boundary (DESIGN.md §14): internal/depgraph builds its DAG inside the
// simulation loop — one event hook per message phase, on the clock's
// critical path — and internal/tolerance is pure int64 arithmetic over
// that DAG, re-run by the daemon's analytic fast path. Both must be
// single-goroutine, wall-clock-free, and free of package-level mutable
// state so instrumented runs stay deterministic and the -jobs pool can
// analyze overlapping specs concurrently. (hotpathalloc needs no scope
// entry: it follows //repro:hotpath directives, which the builder's
// steady-path functions carry.)
func TestDepgraphScopeDecision(t *testing.T) {
	for _, pkg := range []string{"repro/internal/depgraph", "repro/internal/tolerance"} {
		if !inScope(pkg, simScopes()) {
			t.Errorf("%s missing from simScopes; the analytic engine runs inside the simulation boundary", pkg)
		}
		if !inScope(pkg, noGlobalScopes()) {
			t.Errorf("%s missing from noGlobalScopes; concurrent workers analyze overlapping specs", pkg)
		}
	}
}
