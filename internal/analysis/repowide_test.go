package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoIsClean is the tier-1 determinism gate: the full multichecker
// over the whole module must produce zero unallowlisted diagnostics —
// the same check CI runs as `go run ./cmd/reprolint ./...`.
func TestRepoIsClean(t *testing.T) {
	root, _, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Run(root, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("%s", f)
	}
	if rep.Packages < 20 {
		t.Errorf("loaded only %d packages — pattern expansion is dropping most of the module", rep.Packages)
	}
}
