package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNoGlobalMut(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoGlobalMut,
		"repro/internal/exp/globalsbad", // positives + immutable-table/sentinel/allow negatives
	)
}
