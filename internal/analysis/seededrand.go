package analysis

import (
	"go/ast"
)

// SeededRand forbids the math/rand top-level functions everywhere in
// the module: they draw from the process-wide source, so two runs of
// the same (app, procs, knob, seed) spec — or the same plan at
// different -jobs settings — would diverge. Randomness must flow from
// an explicit rand.New(rand.NewSource(seed)) with the seed threaded
// from the run Spec (see sim.Proc.Rand).
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid math/rand global-source functions; RNGs must be explicitly seeded from the run Spec",
	Run:  runSeededRand,
}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded generators rather than using the global source.
func randConstructors() map[string]bool {
	return map[string]bool{
		"New":        true,
		"NewSource":  true,
		"NewZipf":    true,
		"NewPCG":     true, // math/rand/v2
		"NewChaCha8": true, // math/rand/v2
	}
}

func runSeededRand(pass *Pass) error {
	allowed := randConstructors()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFunc(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			path := ""
			if fn.Pkg() != nil {
				path = fn.Pkg().Path()
			}
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand (an explicitly constructed
			// generator) are the sanctioned API.
			if !isPkgFunc(fn, path) || allowed[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-wide source; use rand.New(rand.NewSource(seed)) with the seed threaded from the run Spec",
				fn.Name())
			return true
		})
	}
	return nil
}
