package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoGlobalMut forbids package-level mutable state in the experiment and
// run-harness packages. PR 1 deleted the unsynchronized
// sweepCache/baselineCache globals from internal/exp so that
// overlapping plans on the -jobs worker pool cannot interact through
// hidden state; this analyzer makes that deletion structural.
//
// A package-level var is accepted only when it is demonstrably inert:
// a blank interface-compliance check (var _ T = ...), an error
// sentinel (var ErrX = ...), or an immutable config table — an
// unexported var of value/slice kind that the package never writes,
// never writes through, and never takes the address of. Reference
// kinds (map, chan, pointer) and sync primitives are always flagged:
// a read-only map table can be expressed as a function or switch, and
// anything else belongs in the run Spec or Store.
var NoGlobalMut = &Analyzer{
	Name: "noglobalmut",
	Doc:  "forbid package-level mutable state in internal/exp, internal/run, and internal/apps",
	Run:  runNoGlobalMut,
}

func runNoGlobalMut(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), noGlobalScopes()) {
		return nil
	}
	writes := collectWrites(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					checkGlobal(pass, name, writes)
				}
			}
		}
	}
	return nil
}

func checkGlobal(pass *Pass, name *ast.Ident, writes map[types.Object]token.Pos) {
	if name.Name == "_" {
		return // interface-compliance check, carries no state
	}
	obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
	if !ok {
		return
	}
	if isErrorSentinel(obj) {
		return
	}
	scope := relScope(pass.Pkg.Path())
	if kind, mutable := inherentlyMutable(obj.Type(), nil); mutable {
		pass.Reportf(name.Pos(),
			"package-level var %s holds %s — mutable shared state is forbidden in %s; thread state through the run Spec/Store or allocate per run",
			name.Name, kind, scope)
		return
	}
	if pos, written := writes[obj]; written {
		pass.Reportf(name.Pos(),
			"package-level var %s is written at %s — %s must hold no package-level mutable state",
			name.Name, pass.Fset.Position(pos), scope)
		return
	}
	if name.IsExported() {
		pass.Reportf(name.Pos(),
			"exported package-level var %s is assignable by any importer — %s must hold no package-level mutable state; make it a function or const",
			name.Name, scope)
	}
}

// isErrorSentinel accepts the standard var ErrX = errors.New(...) idiom:
// an error-typed var whose name declares it a sentinel.
func isErrorSentinel(v *types.Var) bool {
	if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") {
		return false
	}
	it, ok := v.Type().Underlying().(*types.Interface)
	return ok && it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}

// inherentlyMutable classifies types whose values are shared mutable
// state no matter how the var is used: maps, channels, pointers, sync
// primitives, and aggregates containing any of those. Slices are
// excluded — an unexported []T initialized once and never written is
// the repo's idiom for immutable config tables (the write scan catches
// actual mutation).
func inherentlyMutable(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
				return "a " + p + "." + named.Obj().Name(), true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		return "a map", true
	case *types.Chan:
		return "a channel", true
	case *types.Pointer:
		return "a pointer", true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if kind, mutable := inherentlyMutable(u.Field(i).Type(), seen); mutable {
				return kind + " (in field " + u.Field(i).Name() + ")", true
			}
		}
	case *types.Array:
		return inherentlyMutable(u.Elem(), seen)
	}
	return "", false
}

// collectWrites finds every object the package assigns to, writes an
// element or field of, increments, or takes the address of. Shadowed
// locals resolve to their own objects, so only true package-var writes
// survive the later filter.
func collectWrites(pass *Pass) map[types.Object]token.Pos {
	writes := map[types.Object]token.Pos{}
	record := func(e ast.Expr) {
		id := baseIdent(e)
		if id == nil {
			return
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if _, ok := writes[obj]; !ok {
				writes[obj] = id.Pos()
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					record(lhs)
				}
			case *ast.IncDecStmt:
				record(s.X)
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					record(s.X)
				}
			case *ast.RangeStmt:
				if s.Tok == token.ASSIGN {
					record(s.Key)
					record(s.Value)
				}
			}
			return true
		})
	}
	return writes
}
