package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGoroutineFree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.GoroutineFree,
		"repro/internal/sim/gofreebad", // positives + allowlisted negative
		"repro/internal/run/gofreeok",  // out of scope: the worker pool may use real concurrency
	)
}
