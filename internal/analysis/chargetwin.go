package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ChargeTwin turns the twin-equivalence convention into a checked
// property. The repository keeps every communication primitive and
// every scalekern kernel in two forms — a blocking original and a
// continuation (resumable) twin — and the cross-mode bit-identical
// timelines rest on the two issuing the same charge operations in the
// same order. The analyzer symbolically extracts each form's charge
// sequence and reports any pair that is not statement-for-statement
// identical.
//
// Two conventions are recognized:
//
//   - Primitive twins: a method M on type X paired with method M+"T" on
//     type "T"+X (Proc.Barrier ↔ TProc.BarrierT). Sequences are
//     flattened to endpoint-boundary operations — Request/SendRequest,
//     Store/SendStore, Compute/ComputeUs with their argument text —
//     recursing through same-package helper methods called on the
//     receiver, skipping handler closures (they run on the receiving
//     processor and charge there in both modes).
//   - Kernel twins: a function <x>Body paired with the Step method of
//     type <x>Task (radixBody ↔ radixTask.Step). Sequences are the
//     splitc primitive calls on the subject processor, with the
//     trailing "T" stripped (WriteWordT ≡ WriteWord) and compute
//     charges compared with their argument expressions.
var ChargeTwin = &Analyzer{
	Name: "chargetwin",
	Doc:  "verify blocking/continuation twin pairs issue statement-for-statement identical charge sequences",
	Run:  runChargeTwin,
}

// chargetwinScopes are the packages holding twin pairs.
func chargetwinScopes() []string {
	return []string{
		"internal/splitc",
		"internal/apps/scalekern",
	}
}

func runChargeTwin(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), chargetwinScopes()) {
		return nil
	}
	idx := newDeclIndex(pass)
	checkPrimitiveTwins(pass, idx)
	checkKernelTwins(pass, idx)
	return nil
}

// A chargeOp is one element of an extracted charge sequence.
type chargeOp struct {
	op  string
	arg string // argument expression text, for compute charges
}

func (c chargeOp) String() string {
	if c.arg != "" {
		return c.op + "(" + c.arg + ")"
	}
	return c.op
}

// declIndex maps the package's function declarations by name and by
// receiver type for twin pairing and helper recursion.
type declIndex struct {
	funcs   map[string]*ast.FuncDecl
	methods map[string]map[string]*ast.FuncDecl
}

func newDeclIndex(pass *Pass) *declIndex {
	idx := &declIndex{
		funcs:   map[string]*ast.FuncDecl{},
		methods: map[string]map[string]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil {
				idx.funcs[fd.Name.Name] = fd
				continue
			}
			r := recvTypeName(fd)
			if r == "" {
				continue
			}
			if idx.methods[r] == nil {
				idx.methods[r] = map[string]*ast.FuncDecl{}
			}
			idx.methods[r][fd.Name.Name] = fd
		}
	}
	return idx
}

// recvTypeName returns the receiver's named type ("Proc" for *Proc).
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// subjectObj returns the object of fd's receiver (methods) or first
// parameter (functions) — the value charge operations are issued on.
func subjectObj(pass *Pass, fd *ast.FuncDecl) types.Object {
	fl := fd.Recv
	if fl == nil {
		fl = fd.Type.Params
	}
	if fl == nil || len(fl.List) == 0 || len(fl.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fl.List[0].Names[0]]
}

// walkCalls visits every call expression in n in source order, without
// descending into function literals: a closure passed as a handler runs
// (and charges) on the processor that receives the message, in both
// modes, so its body is outside the issuing sequence.
func walkCalls(n ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// ----- primitive twins (Proc.M ↔ TProc.MT) -----

func checkPrimitiveTwins(pass *Pass, idx *declIndex) {
	ctx := &twinCtx{pass: pass, idx: idx, memo: map[*ast.FuncDecl][]chargeOp{}, busy: map[*ast.FuncDecl]bool{}}
	types_ := make([]string, 0, len(idx.methods))
	for name := range idx.methods {
		types_ = append(types_, name)
	}
	sort.Strings(types_)
	for _, base := range types_ {
		contMethods := idx.methods["T"+base]
		if contMethods == nil {
			continue
		}
		names := make([]string, 0, len(idx.methods[base]))
		for m := range idx.methods[base] {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			blocking := idx.methods[base][m]
			cont := contMethods[m+"T"]
			if cont == nil {
				continue
			}
			bOps := ctx.flatten(blocking)
			cOps := ctx.flatten(cont)
			reportTwinDiff(pass, cont, blocking.Name.Name, bOps, cOps)
		}
	}
}

// twinCtx memoizes flattened charge sequences per declaration.
type twinCtx struct {
	pass *Pass
	idx  *declIndex
	memo map[*ast.FuncDecl][]chargeOp
	busy map[*ast.FuncDecl]bool
}

// flatten extracts fd's endpoint-boundary charge sequence, recursing
// through same-package helper methods called directly on the receiver.
func (c *twinCtx) flatten(fd *ast.FuncDecl) []chargeOp {
	if ops, ok := c.memo[fd]; ok {
		return ops
	}
	if c.busy[fd] {
		return nil // recursion cycle: both twins cut it identically
	}
	c.busy[fd] = true
	subj := subjectObj(c.pass, fd)
	var ops []chargeOp
	if subj != nil {
		walkCalls(fd.Body, func(call *ast.CallExpr) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			base := baseIdent(sel.X)
			if base == nil || c.pass.TypesInfo.Uses[base] != subj {
				return
			}
			switch name := sel.Sel.Name; name {
			case "Compute":
				ops = append(ops, chargeOp{"compute", argText(call, 0)})
			case "ComputeUs":
				ops = append(ops, chargeOp{"computeUs", argText(call, 0)})
			case "Request", "SendRequest":
				ops = append(ops, chargeOp{op: "request"})
			case "Store", "SendStore":
				ops = append(ops, chargeOp{op: "store"})
			default:
				// Recurse into a same-package method called directly on
				// the subject (t.requestT(...), p.sendColl(...)).
				if x, ok := sel.X.(*ast.Ident); ok && c.pass.TypesInfo.Uses[x] == subj {
					if callee := c.methodDecl(subj, name); callee != nil {
						ops = append(ops, c.flatten(callee)...)
					}
				}
			}
		})
	}
	delete(c.busy, fd)
	c.memo[fd] = ops
	return ops
}

// methodDecl resolves a method name on the subject's type to its
// declaration in this package.
func (c *twinCtx) methodDecl(subj types.Object, name string) *ast.FuncDecl {
	tn := typeNameOf(subj.Type())
	if tn == "" {
		return nil
	}
	return c.idx.methods[tn][name]
}

// typeNameOf returns the named-type name behind t, unwrapping one
// pointer level.
func typeNameOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func argText(call *ast.CallExpr, i int) string {
	if i >= len(call.Args) {
		return ""
	}
	return types.ExprString(call.Args[i])
}

// ----- kernel twins (<x>Body ↔ <x>Task.Step) -----

// kernelChargeNames are the subject-processor calls that charge time or
// traffic, compared between kernel twins after stripping the trailing
// "T" of the continuation forms.
var kernelChargeNames = map[string]bool{
	"Compute": true, "ComputeUs": true,
	"WriteWord": true, "WriteWordSync": true, "ReadWord": true,
	"BulkPut": true, "BulkGet": true,
	"Barrier": true, "StoreSync": true,
	"ScanAdd": true, "Broadcast": true,
	"AllReduce": true, "AllReduceSum": true, "AllReduceMax": true,
	"FetchAdd": true, "TryLock": true, "Lock": true, "Unlock": true,
	"CompareSwap": true,
}

func checkKernelTwins(pass *Pass, idx *declIndex) {
	names := make([]string, 0, len(idx.funcs))
	for name := range idx.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		kernel, ok := strings.CutSuffix(name, "Body")
		if !ok || kernel == "" {
			continue
		}
		step := idx.methods[kernel+"Task"]["Step"]
		if step == nil {
			continue
		}
		body := idx.funcs[name]
		bOps := kernelOps(pass, body)
		cOps := kernelOps(pass, step)
		reportTwinDiff(pass, step, name, bOps, cOps)
	}
}

// kernelOps extracts the charge sequence of one kernel twin: primitive
// calls on the subject processor, in source order.
func kernelOps(pass *Pass, fd *ast.FuncDecl) []chargeOp {
	subj := kernelSubject(pass, fd)
	if subj == nil {
		return nil
	}
	var ops []chargeOp
	walkCalls(fd.Body, func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[x] != subj {
			return
		}
		name := strings.TrimSuffix(sel.Sel.Name, "T")
		if !kernelChargeNames[name] {
			return
		}
		op := chargeOp{op: name}
		if name == "Compute" || name == "ComputeUs" {
			op.arg = argText(call, 0)
		}
		ops = append(ops, op)
	})
	return ops
}

// kernelSubject is the processor value a kernel twin runs on: for a
// Body function its first parameter; for a Step method its single
// parameter (the receiver holds the continuation's persistent state,
// not the processor).
func kernelSubject(pass *Pass, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[params.List[0].Names[0]]
}

// reportTwinDiff compares two charge sequences and reports the first
// divergence at the continuation twin's declaration.
func reportTwinDiff(pass *Pass, cont *ast.FuncDecl, blockingName string, bOps, cOps []chargeOp) {
	n := len(bOps)
	if len(cOps) < n {
		n = len(cOps)
	}
	for i := 0; i < n; i++ {
		if bOps[i] != cOps[i] {
			pass.Reportf(cont.Pos(), "charge sequence of %s diverges from blocking twin %s at step %d: %s vs %s",
				cont.Name.Name, blockingName, i+1, cOps[i], bOps[i])
			return
		}
	}
	if len(bOps) != len(cOps) {
		pass.Reportf(cont.Pos(), "charge sequence of %s has %d op(s), blocking twin %s has %d: the twins must charge identically",
			cont.Name.Name, len(cOps), blockingName, len(bOps))
	}
}
