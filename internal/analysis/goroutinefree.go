package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineFree forbids go statements and channel operations inside
// simulation packages. Each simulation must stay single-goroutine so
// that a run is a pure function of its Spec: host concurrency belongs
// only to internal/run's worker pool, which parallelizes across
// simulations, never within one.
//
// The one sanctioned exception is the coroutine compatibility shell in
// internal/sim/engine.go, which multiplexes blocking SPMD bodies over
// goroutines with a strict one-runnable-at-a-time handoff; those sites
// carry //lint:allow goroutinefree annotations explaining why the
// handoff is deterministic. The resumable runtime that replaced it as
// the scaling path (sim/resume.go, am/cont.go, splitc/cont.go, the
// scalekern kernels) runs every processor on the engine's own
// goroutine and needs no exception — the shell-confinement test pins
// that no allow directive appears outside engine.go.
var GoroutineFree = &Analyzer{
	Name: "goroutinefree",
	Doc:  "forbid go statements and channel operations in simulation packages",
	Run:  runGoroutineFree,
}

func runGoroutineFree(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), simScopes()) {
		return nil
	}
	scope := relScope(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(s.Pos(),
					"go statement in simulation package %s; simulations are single-goroutine — host concurrency belongs to internal/run's worker pool", scope)
			case *ast.SendStmt:
				pass.Reportf(s.Pos(), "channel send in simulation package %s; simulations are single-goroutine", scope)
			case *ast.UnaryExpr:
				if s.Op == token.ARROW {
					pass.Reportf(s.Pos(), "channel receive in simulation package %s; simulations are single-goroutine", scope)
				}
			case *ast.SelectStmt:
				pass.Reportf(s.Pos(), "select statement in simulation package %s; simulations are single-goroutine", scope)
			case *ast.RangeStmt:
				if isChanType(pass.TypesInfo.Types[s.X].Type) {
					pass.Reportf(s.Pos(), "range over channel in simulation package %s; simulations are single-goroutine", scope)
				}
			case *ast.CallExpr:
				if isBuiltin(pass, s.Fun, "close") {
					pass.Reportf(s.Pos(), "channel close in simulation package %s; simulations are single-goroutine", scope)
				}
				if isBuiltin(pass, s.Fun, "make") && isChanType(pass.TypesInfo.Types[s].Type) {
					pass.Reportf(s.Pos(), "channel construction in simulation package %s; simulations are single-goroutine", scope)
				}
			}
			return true
		})
	}
	return nil
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
