// Package analysistest runs reprolint analyzers over fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture files
// live under testdata/src/<import-path>/ and mark expected diagnostics
// with trailing comments of the form
//
//	code() // want "regexp"
//
// Each want comment expects exactly one diagnostic on its line whose
// message matches the quoted regular expression (several quoted
// patterns expect several diagnostics). Lines without a want comment
// must produce no diagnostics. //lint:allow directives in fixtures are
// honored, so allowlisted-negative cases are expressible.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the caller's testdata
// directory (relative to the test working directory).
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each fixture package (an import path under testdata/src)
// and checks a's diagnostics against the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := analysis.LoadDir(dir, path)
		if err != nil {
			t.Errorf("%s: loading fixture: %v", path, err)
			continue
		}
		findings, err := analysis.RunPackage(pkg, a)
		if err != nil {
			t.Errorf("%s: running %s: %v", path, a.Name, err)
			continue
		}
		checkExpectations(t, pkg, findings)
	}
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRE extracts the quoted patterns after want: double-quoted or
// backtick-quoted, as in x/tools analysistest.
var patRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkExpectations matches findings against want comments line by line.
func checkExpectations(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	var wantKeys []lineKey
	for _, f := range pkg.Files {
		collectWants(t, pkg, f, wants, &wantKeys)
	}
	got := map[lineKey][]analysis.Finding{}
	var gotKeys []lineKey
	for _, f := range findings {
		k := lineKey{f.Pos.Filename, f.Pos.Line}
		if len(got[k]) == 0 {
			gotKeys = append(gotKeys, k)
		}
		got[k] = append(got[k], f)
	}

	for _, k := range wantKeys {
		pats := wants[k]
		fs := got[k]
		if len(fs) != len(pats) {
			t.Errorf("%s:%d: want %d diagnostic(s), got %d: %v", k.file, k.line, len(pats), len(fs), messages(fs))
			continue
		}
		for _, pat := range pats {
			if !anyMatch(fs, pat) {
				t.Errorf("%s:%d: no diagnostic matching %q in %v", k.file, k.line, pat, messages(fs))
			}
		}
	}
	sort.Slice(gotKeys, func(i, j int) bool {
		if gotKeys[i].file != gotKeys[j].file {
			return gotKeys[i].file < gotKeys[j].file
		}
		return gotKeys[i].line < gotKeys[j].line
	})
	for _, k := range gotKeys {
		if _, expected := wants[k]; !expected {
			t.Errorf("%s:%d: unexpected diagnostic(s): %v", k.file, k.line, messages(got[k]))
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package, f *ast.File, wants map[lineKey][]*regexp.Regexp, keys *[]lineKey) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			k := lineKey{pos.Filename, pos.Line}
			for _, q := range patRE.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if q[2] != "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					continue
				}
				if len(wants[k]) == 0 {
					*keys = append(*keys, k)
				}
				wants[k] = append(wants[k], re)
			}
		}
	}
}

func anyMatch(fs []analysis.Finding, re *regexp.Regexp) bool {
	for _, f := range fs {
		if re.MatchString(f.Message) {
			return true
		}
	}
	return false
}

func messages(fs []analysis.Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s: %s", f.Analyzer, f.Message))
	}
	if out == nil {
		out = []string{"(none)"}
	}
	return out
}
