package analysis

import (
	"go/ast"
)

// SimWallClock forbids wall-clock time inside simulation packages.
// Simulated time must come from the event queue (sim.Time); a single
// time.Now in a hot path silently couples results to host speed.
// Wall-clock is legitimate only in cmd/ and internal/run progress
// reporting, which this analyzer does not visit.
var SimWallClock = &Analyzer{
	Name: "simwallclock",
	Doc:  "forbid time.Now/Since/Sleep/Tick and friends in simulation packages",
	Run:  runSimWallClock,
}

// wallClockFuncs are the package-level time functions that read or wait
// on the host clock. Pure conversions (time.Duration arithmetic,
// time.Unix) do not touch the clock and are not listed.
func wallClockFuncs() map[string]bool {
	return map[string]bool{
		"Now":       true,
		"Since":     true,
		"Until":     true,
		"Sleep":     true,
		"Tick":      true,
		"After":     true,
		"AfterFunc": true,
		"NewTimer":  true,
		"NewTicker": true,
	}
}

func runSimWallClock(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), simScopes()) {
		return nil
	}
	banned := wallClockFuncs()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFunc(pass.TypesInfo, sel)
			if !ok || !isPkgFunc(fn, "time") || !banned[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s in simulation package %s; simulated time must come from the event queue (sim.Time)",
				fn.Name(), relScope(pass.Pkg.Path()))
			return true
		})
	}
	return nil
}
