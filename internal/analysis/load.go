package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
// Files includes in-package _test.go files; external test packages
// (package foo_test) load as their own Package with the same Dir.
type Package struct {
	// Path is the import path analyzers scope on. For external test
	// packages it carries a "_test" suffix.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load type-checks the packages matched by patterns ("./...",
// "./internal/...", or plain relative directories) against the module
// containing dir. Test files are included. Packages are returned in
// deterministic (import path) order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		got, err := ld.checkDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir type-checks the single directory dir as a package with the
// given import path, without requiring a go.mod. It exists for
// analysistest fixtures under testdata/src, whose directory layout
// encodes the import path the analyzers scope on.
func LoadDir(dir, importPath string) (*Package, error) {
	ld := newLoader("", "")
	got, err := ld.checkDirAs(dir, importPath)
	if err != nil {
		return nil, err
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("no Go package in %s", dir)
	}
	return got[0], nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves go-style package patterns relative to base
// into a sorted list of directories containing Go files.
func expandPatterns(base string, patterns []string) ([]string, error) {
	abs, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		if p == "" {
			p = "."
		}
		rec := false
		if p == "..." {
			p, rec = ".", true
		} else if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, rec = rest, true
		}
		start := filepath.Join(abs, filepath.FromSlash(p))
		if !rec {
			add(start)
			continue
		}
		err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loader type-checks packages from source. Imports resolve through a
// cache of interface-only (IgnoreFuncBodies) packages: the standard
// library from GOROOT/src via go/build, module-internal imports from
// the module tree.
type loader struct {
	fset    *token.FileSet
	ctxt    build.Context
	root    string // module root ("" in LoadDir mode)
	modPath string
	imports map[string]*types.Package
	loading map[string]bool
	// deps records each cached module-internal package's module-internal
	// direct imports, for purgeDependents.
	deps map[string][]string
	// override temporarily maps an import path to a test-augmented
	// package while checking its external test package.
	override map[string]*types.Package
	// shared, when set, resolves standard-library imports through a
	// cache shared between concurrent loaders (see sharedImports).
	// Module-internal imports stay per-loader: the external-test
	// override dance purges them, which must not be visible to peers.
	shared *sharedImports
}

func newLoader(root, modPath string) *loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false // pure-Go file sets; the simulator uses no cgo
	return &loader{
		fset:     token.NewFileSet(),
		ctxt:     ctxt,
		root:     root,
		modPath:  modPath,
		imports:  map[string]*types.Package{},
		loading:  map[string]bool{},
		deps:     map[string][]string{},
		override: map[string]*types.Package{},
	}
}

func (ld *loader) sizes() types.Sizes {
	return types.SizesFor("gc", ld.ctxt.GOARCH)
}

// checkDir loads the package in dir (import path derived from the
// module) plus its external test package, if any.
func (ld *loader) checkDir(dir string) ([]*Package, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return nil, err
	}
	importPath := ld.modPath
	if rel != "." {
		importPath = ld.modPath + "/" + filepath.ToSlash(rel)
	}
	return ld.checkDirAs(dir, importPath)
}

func (ld *loader) checkDirAs(dir, importPath string) ([]*Package, error) {
	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	var pkgs []*Package

	files, err := ld.parseFiles(dir, append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...), parser.ParseComments)
	if err != nil {
		return nil, err
	}
	main, err := ld.checkFiles(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	pkgs = append(pkgs, main)

	if len(bp.XTestGoFiles) > 0 {
		xfiles, err := ld.parseFiles(dir, bp.XTestGoFiles, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// The external test package imports the subject package; resolve
		// that import to the test-augmented package so export_test.go
		// declarations are visible. Cached packages that themselves import
		// the subject were checked against the cache's own interface-only
		// copy — a distinct types.Package whose named types are not
		// identical to the override's — so purge them on both sides of the
		// check: deps the test package pulls in re-resolve against the
		// override, and later packages rebuild a self-consistent cache.
		// Packages that don't depend on the subject stay cached, keeping
		// their types identical to the subject package's own references.
		ld.purgeDependents(importPath)
		ld.override[importPath] = main.Pkg
		xt, err := ld.checkFiles(importPath+"_test", dir, xfiles)
		delete(ld.override, importPath)
		ld.purgeDependents(importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, xt)
	}
	return pkgs, nil
}

func (ld *loader) parseFiles(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, mode|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (ld *loader) checkFiles(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld, Sizes: ld.sizes()}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// purgeDependents drops from the import cache every package that
// transitively imports target (target's own cached copy stays: while an
// override is active it is shadowed, and outside one it is consistent).
// Standard-library entries never import module packages, so they are
// untouched by construction of the deps record.
func (ld *loader) purgeDependents(target string) {
	bad := map[string]bool{target: true}
	for changed := true; changed; {
		changed = false
		for p, dd := range ld.deps {
			if bad[p] {
				continue
			}
			for _, d := range dd {
				if bad[d] {
					bad[p] = true
					changed = true
					break
				}
			}
		}
	}
	for p := range bad {
		if p != target {
			delete(ld.imports, p)
			delete(ld.deps, p)
		}
	}
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, ld.root, 0)
}

// ImportFrom implements types.ImporterFrom: imports load as
// interface-only packages (function bodies skipped), which is all
// analysis of the importing package needs.
func (ld *loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.override[path]; ok {
		return p, nil
	}
	if p, ok := ld.imports[path]; ok {
		return p, nil
	}
	if ld.shared != nil && ld.modPath != "" &&
		path != ld.modPath && !strings.HasPrefix(path, ld.modPath+"/") {
		p, err := ld.shared.load(path, &ld.ctxt)
		if err != nil {
			return nil, err
		}
		// Safe to cache per-loader: purgeDependents only evicts
		// module-internal entries, so shared packages stay put.
		ld.imports[path] = p
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir, err := ld.dirFor(path, srcDir)
	if err != nil {
		return nil, err
	}
	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	files, err := ld.parseFiles(dir, bp.GoFiles, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	conf := types.Config{
		Importer:                 ld,
		Sizes:                    ld.sizes(),
		IgnoreFuncBodies:         true,
		DisableUnusedImportCheck: true,
		// Interface-only checking of dependencies tolerates soft
		// errors; the packages under analysis are checked strictly.
		Error: func(error) {},
	}
	pkg, _ := conf.Check(path, ld.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("import %q: type-checking failed", path)
	}
	ld.imports[path] = pkg
	if ld.modPath != "" {
		var mod []string
		for _, ip := range bp.Imports {
			if ip == ld.modPath || strings.HasPrefix(ip, ld.modPath+"/") {
				mod = append(mod, ip)
			}
		}
		ld.deps[path] = mod
	}
	return pkg, nil
}

// sharedImports is a concurrency-safe cache of interface-only
// standard-library packages, shared by the worker loaders of one
// parallel run so the stdlib is parsed and checked once, not once per
// worker. Entries are immutable after their done channel closes; a
// loser of the per-path race waits for the winner's result. The cache
// owns a private FileSet (FileSets serialize internally), so shared
// package positions resolve against it — analyzers only ever position
// diagnostics in the analyzed package's own files, which live in the
// worker's FileSet.
type sharedImports struct {
	mu      sync.Mutex
	fset    *token.FileSet
	entries map[string]*sharedEntry
}

type sharedEntry struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

func newSharedImports() *sharedImports {
	return &sharedImports{fset: token.NewFileSet(), entries: map[string]*sharedEntry{}}
}

// load returns the cached package for path, checking it on first
// request. Concurrent requests for distinct paths proceed in parallel;
// the import graph is acyclic, so the cross-entry waits cannot deadlock.
func (s *sharedImports) load(path string, ctxt *build.Context) (*types.Package, error) {
	s.mu.Lock()
	e, ok := s.entries[path]
	if ok {
		s.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e = &sharedEntry{done: make(chan struct{})}
	s.entries[path] = e
	s.mu.Unlock()
	e.pkg, e.err = s.check(path, ctxt)
	close(e.done)
	return e.pkg, e.err
}

// check type-checks one standard-library package interface-only,
// resolving its imports through the shared cache.
func (s *sharedImports) check(path string, ctxt *build.Context) (*types.Package, error) {
	bp, err := ctxt.Import(path, "", 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(s.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("import %q: %w", path, err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:                 &sharedResolver{s: s, ctxt: ctxt},
		Sizes:                    types.SizesFor("gc", ctxt.GOARCH),
		IgnoreFuncBodies:         true,
		DisableUnusedImportCheck: true,
		Error:                    func(error) {},
	}
	pkg, _ := conf.Check(path, s.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("import %q: type-checking failed", path)
	}
	return pkg, nil
}

// sharedResolver adapts sharedImports to types.Importer for the
// cache's own dependency checks (stdlib imports only stdlib).
type sharedResolver struct {
	s    *sharedImports
	ctxt *build.Context
}

func (r *sharedResolver) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return r.s.load(path, r.ctxt)
}

func (ld *loader) dirFor(path, srcDir string) (string, error) {
	if ld.modPath != "" {
		if path == ld.modPath {
			return ld.root, nil
		}
		if rest, ok := strings.CutPrefix(path, ld.modPath+"/"); ok {
			return filepath.Join(ld.root, filepath.FromSlash(rest)), nil
		}
	}
	bp, err := ld.ctxt.Import(path, srcDir, build.FindOnly)
	if err != nil {
		return "", fmt.Errorf("import %q: %w", path, err)
	}
	return bp.Dir, nil
}
