package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSimWallClock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.SimWallClock,
		"repro/internal/sim/wallclockbad", // positives + allowlisted negative
		"repro/internal/run/wallclockok",  // out of scope: wall-clock is fine in the worker pool
	)
}
