package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// ContSafe proves the continuation runtime's structural invariants in
// the packages that host resumable state machines (am/cont.go,
// splitc/cont.go, and the scalekern twins). A continuation function —
// any function whose results include a PollableWait — is re-entered by
// the engine after every park, so three things must hold:
//
//  1. It never calls a blocking primitive (WaitUntilFor, Checkpoint,
//     Poll, Park, ParkPollable, Request, Store): those park by yielding
//     a goroutine stack that a resumable body does not have. A poll
//     function parks by returning a wait instead.
//  2. Every opState sub-state literal it assigns is consumed by some
//     transition, and every literal it dispatches on is produced by
//     some assignment — no dead or unreachable machine states. Zero is
//     exempt as the idle/reset value.
//  3. No value read from the proc clock is captured into state that
//     survives a yield: on re-entry the clock has advanced, so a
//     persisted reading silently desynchronizes the timeline. The
//     check is a forward taint analysis over the function's CFG.
var ContSafe = &Analyzer{
	Name: "contsafe",
	Doc:  "verify continuation poll functions: no blocking calls, no dead opState sub-states, no clock reads captured across yields",
	Run:  runContSafe,
}

// contsafeScopes are the packages hosting continuation state machines.
func contsafeScopes() []string {
	return []string{
		"internal/am",
		"internal/splitc",
		"internal/apps/scalekern",
	}
}

// blockingPrimitives are the method names a continuation function must
// never call: each parks the calling goroutine (or, for Request/Store,
// may) instead of returning a wait to the engine.
var blockingPrimitives = map[string]bool{
	"WaitUntilFor": true,
	"Checkpoint":   true,
	"Poll":         true,
	"Park":         true,
	"ParkPollable": true,
	"Request":      true,
	"Store":        true,
}

func runContSafe(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), contsafeScopes()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsPollableWait(fd.Type) {
				continue
			}
			checkNoBlocking(pass, fd)
			checkStateMachine(pass, fd)
			checkClockCapture(pass, fd)
		}
	}
	return nil
}

// returnsPollableWait reports whether the function's results include a
// type named PollableWait — the signature shape of a continuation
// function (TProc primitives, Task.Step, Resumable.Resume, and the am
// wait constructors all match).
func returnsPollableWait(ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, f := range ft.Results.List {
		switch t := f.Type.(type) {
		case *ast.Ident:
			if t.Name == "PollableWait" {
				return true
			}
		case *ast.SelectorExpr:
			if t.Sel.Name == "PollableWait" {
				return true
			}
		}
	}
	return false
}

func checkNoBlocking(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if blockingPrimitives[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "continuation function %s calls blocking primitive %s; return a wait to the engine instead",
				fd.Name.Name, sel.Sel.Name)
		}
		return true
	})
}

// ----- opState sub-state liveness -----

// stateInfo accumulates one state expression's produced and consumed
// integer literals within a single function.
type stateInfo struct {
	produced   map[int64]token.Pos
	cases      map[int64]token.Pos
	cmp        map[int64]token.Pos
	hasSwitch  bool
	openEnded  bool // a default case or non-literal case/comparand
	hasCompare bool
}

func newStateInfo() *stateInfo {
	return &stateInfo{
		produced: map[int64]token.Pos{},
		cases:    map[int64]token.Pos{},
		cmp:      map[int64]token.Pos{},
	}
}

// checkStateMachine verifies that within fd, every sub-state literal
// assigned to a persistent state cell is consumed by a transition, and
// every literal dispatched on is produced. A state cell is a selector
// chain rooted at the receiver or a parameter (t.op.pc, k.pc) that the
// function both assigns integer literals to and dispatches on (switch
// tag or ==/!= comparison).
func checkStateMachine(pass *Pass, fd *ast.FuncDecl) {
	roots := funcRoots(pass, fd)
	states := map[string]*stateInfo{}
	get := func(key string) *stateInfo {
		si := states[key]
		if si == nil {
			si = newStateInfo()
			states[key] = si
		}
		return si
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			key, ok := stateKey(pass, n.Tag, roots)
			if !ok {
				return true
			}
			si := get(key)
			si.hasSwitch = true
			for _, c := range n.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					si.openEnded = true // default case consumes everything
					continue
				}
				for _, e := range cc.List {
					if v, ok := intLit(e); ok {
						if _, seen := si.cases[v]; !seen {
							si.cases[v] = e.Pos()
						}
					} else {
						si.openEnded = true // named-constant case: unknown value
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				key, ok := stateKey(pass, lhs, roots)
				if !ok {
					continue
				}
				if v, ok := intLit(n.Rhs[i]); ok {
					si := get(key)
					if _, seen := si.produced[v]; !seen {
						si.produced[v] = n.Rhs[i].Pos()
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			key, lit := "", int64(0)
			ok := false
			if k, isState := stateKey(pass, n.X, roots); isState {
				if v, isLit := intLit(n.Y); isLit {
					key, lit, ok = k, v, true
				} else {
					get(k).openEnded = true
				}
			} else if k, isState := stateKey(pass, n.Y, roots); isState {
				if v, isLit := intLit(n.X); isLit {
					key, lit, ok = k, v, true
				} else {
					get(k).openEnded = true
				}
			}
			if ok {
				si := get(key)
				si.hasCompare = true
				if _, seen := si.cmp[lit]; !seen {
					si.cmp[lit] = n.Pos()
				}
			}
		}
		return true
	})

	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		si := states[key]
		if !si.hasSwitch && !si.hasCompare {
			continue // assigned but never dispatched on: not a state cell
		}
		// Produced-but-never-consumed is decidable only under a closed
		// switch: a defaultless literal-cased switch enumerates every
		// transition, while ==/!= comparisons consume the complement
		// implicitly.
		if si.hasSwitch && !si.openEnded {
			for _, v := range sortedStateVals(si.produced) {
				if v == 0 {
					continue
				}
				if _, ok := si.cases[v]; ok {
					continue
				}
				if _, ok := si.cmp[v]; ok {
					continue
				}
				pass.Reportf(si.produced[v], "%s: state %s = %d is assigned but no transition consumes it (dead state)",
					fd.Name.Name, key, v)
			}
		}
		for _, v := range sortedStateVals(si.cases) {
			if v == 0 {
				continue
			}
			if _, ok := si.produced[v]; !ok {
				pass.Reportf(si.cases[v], "%s: state %s == %d is dispatched on but never assigned (unreachable state)",
					fd.Name.Name, key, v)
			}
		}
		for _, v := range sortedStateVals(si.cmp) {
			if v == 0 {
				continue
			}
			if _, dup := si.cases[v]; dup {
				continue
			}
			if _, ok := si.produced[v]; !ok {
				pass.Reportf(si.cmp[v], "%s: state %s == %d is dispatched on but never assigned (unreachable state)",
					fd.Name.Name, key, v)
			}
		}
	}
}

func sortedStateVals(m map[int64]token.Pos) []int64 {
	out := make([]int64, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stateKey renders a selector chain rooted at one of roots (t.op.pc →
// "t.op.pc"); ok is false for any other expression shape.
func stateKey(pass *Pass, e ast.Expr, roots map[types.Object]bool) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var parts []string
	for {
		parts = append(parts, sel.Sel.Name)
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			sel = x
		case *ast.Ident:
			if !roots[pass.TypesInfo.Uses[x]] {
				return "", false
			}
			parts = append(parts, x.Name)
			key := ""
			for i := len(parts) - 1; i >= 0; i-- {
				if key != "" {
					key += "."
				}
				key += parts[i]
			}
			return key, true
		default:
			return "", false
		}
	}
}

func intLit(e ast.Expr) (int64, bool) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// funcRoots collects the receiver and parameter objects of fd — the
// identifiers persistent state hangs off.
func funcRoots(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	roots := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if o := pass.TypesInfo.Defs[n]; o != nil {
					roots[o] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return roots
}

// ----- clock capture across yields -----

// checkClockCapture runs a forward taint analysis over fd's CFG: values
// derived from a proc clock read (.Now() / .Clock()) taint the locals
// they flow into; storing a tainted value into a field of the receiver
// or a parameter persists it across the next yield, where it is stale.
func checkClockCapture(pass *Pass, fd *ast.FuncDecl) {
	roots := funcRoots(pass, fd)
	g := buildCFG(fd.Body)
	blocks := g.reachable()

	// Predecessor map for the join operation.
	preds := map[*cfgBlock][]*cfgBlock{}
	for _, b := range blocks {
		for _, s := range b.succs {
			preds[s] = append(preds[s], b)
		}
	}

	in := map[*cfgBlock]map[*types.Var]bool{}
	for _, b := range blocks {
		in[b] = map[*types.Var]bool{}
	}
	// Fixpoint: iterate in construction order until no in-set grows.
	// Taint only ever grows along edges, so this terminates.
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			state := map[*types.Var]bool{}
			for _, p := range preds[b] {
				for v := range clockTransfer(pass, p, in[p], roots, nil) {
					state[v] = true
				}
			}
			for v := range state {
				if !in[b][v] {
					in[b][v] = true
					changed = true
				}
			}
		}
	}
	// Reporting sweep with converged entry states.
	reported := map[token.Pos]bool{}
	for _, b := range blocks {
		clockTransfer(pass, b, in[b], roots, func(pos token.Pos, format string, args ...any) {
			if !reported[pos] {
				reported[pos] = true
				pass.Reportf(pos, format, args...)
			}
		})
	}
}

// clockTransfer applies one block's statements to the taint state and
// returns the out-set. When report is non-nil, persistent stores of
// tainted values are reported (the reporting sweep); when nil the
// function only computes dataflow (the fixpoint sweep).
func clockTransfer(pass *Pass, b *cfgBlock, entry map[*types.Var]bool, roots map[types.Object]bool, report func(token.Pos, string, ...any)) map[*types.Var]bool {
	taint := map[*types.Var]bool{}
	for v := range entry {
		taint[v] = true
	}
	for _, n := range b.nodes {
		applyClockNode(pass, n, taint, roots, report)
	}
	return taint
}

func applyClockNode(pass *Pass, n ast.Node, taint map[*types.Var]bool, roots map[types.Object]bool, report func(token.Pos, string, ...any)) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		nr := len(s.Rhs)
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if nr == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else {
				rhs = s.Rhs[0] // multi-value call: shared taint
			}
			tainted := clockTainted(pass, rhs, taint)
			switch l := lhs.(type) {
			case *ast.Ident:
				if v, ok := objOf(pass, l).(*types.Var); ok {
					if tainted {
						taint[v] = true
					} else {
						delete(taint, v) // overwritten with a clean value
					}
				}
			case *ast.SelectorExpr:
				if !tainted {
					continue
				}
				if key, ok := stateKey(pass, l, roots); ok && report != nil {
					report(s.Pos(), "clock value is stored into %s, which survives a yield point; re-read the clock after resuming", key)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				if clockTainted(pass, vs.Values[i], taint) {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						taint[v] = true
					}
				}
			}
		}
	}
}

func objOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// clockTainted reports whether e reads the proc clock (a .Now() or
// .Clock() method call) or references a tainted local.
func clockTainted(pass *Pass, e ast.Expr, taint map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Clock" {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && taint[v] {
				found = true
				return false
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}
