package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestChargeTwin(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ChargeTwin,
		// Fixture paths end in the scoped segments.
		"chargetwin/internal/splitc",        // primitive twins (M ↔ MT)
		"chargetwin/internal/apps/scalekern", // kernel twins (xBody ↔ xTask.Step)
	)
}
