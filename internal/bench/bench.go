// Package bench is the reprobench regression harness: a fixed matrix of
// simulator benchmarks measured in host time (the simulator's own cost,
// not the simulated machine's), emitted as a machine-readable report and
// comparable against a saved baseline with a tolerance.
//
// The matrix pins the hot paths the engine optimizes: a windowed short-
// message stream (ping-pong), a bulk DMA stream, and two applications
// exercising the full splitc/am/sim stack. The full (non-quick) matrix
// adds the fig5b sensitivity sweep on the run-plan worker pool, which is
// how the harness notices regressions that only appear under concurrent
// engine instances.
//
// This package deliberately lives outside the simulator's determinism
// scope: host wall-clock time is its subject matter. Nothing here feeds
// back into simulated results.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/depgraph"
	"repro/internal/exp"
	"repro/internal/logp"
	"repro/internal/sim"
)

// Options selects the matrix variant.
type Options struct {
	// Quick trims message counts and skips the sweep case (CI smoke mode).
	Quick bool
	// Jobs is the worker-pool width for the sweep case (0 = GOMAXPROCS).
	Jobs int
	// Seed fixes the application inputs.
	Seed int64
}

// Norm fills in defaults.
func (o Options) Norm() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Run executes the benchmark matrix and assembles the report.
func Run(o Options) (*Report, error) {
	o = o.Norm()
	r := &Report{
		Schema:    1,
		Quick:     o.Quick,
		Jobs:      o.Jobs,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	msgs, bulks := 200_000, 2_000
	if o.Quick {
		msgs, bulks = 50_000, 500
	}
	cases := []func() (Case, error){
		func() (Case, error) { return pingPong(msgs) },
		func() (Case, error) { return pingPongDepgraph(msgs) },
		func() (Case, error) { return bulkStream(bulks) },
		func() (Case, error) { return appCase("radix", o) },
		func() (Case, error) { return appCase("em3d-read", o) },
	}
	if !o.Quick {
		cases = append(cases, func() (Case, error) { return sweepCase(o) })
	}
	for _, fn := range cases {
		c, err := fn()
		if err != nil {
			return nil, err
		}
		r.Cases = append(r.Cases, c)
	}
	return r, nil
}

// microReps is how many times the synthetic micro cases repeat; the
// fastest repetition is reported. The simulated work is deterministic,
// so repetitions differ only by host noise (scheduler, frequency
// scaling), and the minimum is the stable estimator — without it the
// ~10 ms quick-mode cases swing tens of percent run to run, which a
// 20% baseline tolerance cannot absorb.
const microReps = 3

// measure wraps one simulation run with wall-clock and allocation
// bookkeeping, repeated reps times keeping the fastest repetition. The
// engine runs single-threaded coroutines, so the mallocs delta is
// attributable to the run.
func measure(name string, messages int64, reps int, run func() (*sim.Engine, error)) (Case, error) {
	var best Case
	for i := 0; i < reps; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		eng, err := run()
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return Case{}, fmt.Errorf("bench %s: %w", name, err)
		}
		c := Case{
			Name:     name,
			Messages: messages,
			WallMs:   float64(wall.Nanoseconds()) / 1e6,
			Allocs:   int64(after.Mallocs - before.Mallocs),
		}
		if messages > 0 {
			c.NsPerMsg = float64(wall.Nanoseconds()) / float64(messages)
			c.AllocsPerMsg = float64(c.Allocs) / float64(messages)
		}
		if eng != nil {
			c.Switches = eng.Switches()
			c.SwitchesSaved = eng.SwitchesSaved()
			c.EventsRun = eng.EventsRun()
			if s := wall.Seconds(); s > 0 {
				c.EventsPerSec = float64(c.EventsRun) / s
			}
		}
		if i == 0 || c.WallMs < best.WallMs {
			best = c
		}
	}
	return best, nil
}

// pingPong is the windowed short-message stream: one sender requests, one
// receiver's handler consumes, credits throttle the window — the exact
// steady state of the zero-allocation send/receive path.
func pingPong(n int) (Case, error) {
	return measure("short-message-stream", int64(n), microReps, func() (*sim.Engine, error) {
		eng := sim.New(sim.Config{Procs: 2})
		m, err := am.NewMachine(eng, logp.NOW())
		if err != nil {
			return nil, err
		}
		seen := 0
		handler := func(*am.Endpoint, *am.Token, am.Args) { seen++ }
		err = eng.RunEach([]func(*sim.Proc){
			func(p *sim.Proc) {
				ep := m.Endpoint(0)
				for i := 0; i < n; i++ {
					ep.Request(1, am.ClassWrite, handler, am.Args{})
				}
				ep.WaitUntil(func() bool { return seen == n }, "bench: drain")
			},
			func(p *sim.Proc) {
				m.Endpoint(1).WaitUntil(func() bool { return seen == n }, "bench: sink")
			},
		})
		return eng, err
	})
}

// pingPongDepgraph is the same windowed short-message stream with a
// depgraph.Builder attached: the delta against short-message-stream pins
// the analytic engine's extraction overhead on the hottest path, and
// AllocsPerMsg pins its zero-per-event-allocation property (the arena
// allocates one chunk per 8k records, amortized to ~0 per message).
// Seal is included — it is part of every instrumented run — but the
// breakpoint analysis is not: that cost scales with curve complexity,
// not message rate, and is pinned by BENCH_tolerance.json instead.
func pingPongDepgraph(n int) (Case, error) {
	return measure("short-message-stream-depgraph", int64(n), microReps, func() (*sim.Engine, error) {
		eng := sim.New(sim.Config{Procs: 2})
		params := logp.NOW()
		m, err := am.NewMachine(eng, params)
		if err != nil {
			return nil, err
		}
		b := depgraph.New(2, params)
		m.SetHooks(b)
		seen := 0
		handler := func(*am.Endpoint, *am.Token, am.Args) { seen++ }
		err = eng.RunEach([]func(*sim.Proc){
			func(p *sim.Proc) {
				ep := m.Endpoint(0)
				for i := 0; i < n; i++ {
					ep.Request(1, am.ClassWrite, handler, am.Args{})
				}
				ep.WaitUntil(func() bool { return seen == n }, "bench: drain")
			},
			func(p *sim.Proc) {
				m.Endpoint(1).WaitUntil(func() bool { return seen == n }, "bench: sink")
			},
		})
		if err != nil {
			return nil, err
		}
		if _, err := b.Seal(eng.MaxClock()); err != nil {
			return nil, fmt.Errorf("seal: %w", err)
		}
		return eng, err
	})
}

// bulkStream is the bulk DMA path: 64 KB StoreLarge transfers, counted in
// fragments (the unit the wire and the credit window see).
func bulkStream(transfers int) (Case, error) {
	params := logp.NOW()
	const size = 64 << 10
	frags := (size + params.FragmentSize - 1) / params.FragmentSize
	return measure("bulk-stream", int64(transfers*frags), microReps, func() (*sim.Engine, error) {
		eng := sim.New(sim.Config{Procs: 2})
		m, err := am.NewMachine(eng, params)
		if err != nil {
			return nil, err
		}
		data := make([]byte, size)
		got := 0
		want := transfers * frags
		handler := func(*am.Endpoint, *am.Token, am.Args, []byte) { got++ }
		err = eng.RunEach([]func(*sim.Proc){
			func(p *sim.Proc) {
				ep := m.Endpoint(0)
				for i := 0; i < transfers; i++ {
					ep.StoreLarge(1, am.ClassWrite, handler, am.Args{}, data)
				}
				ep.WaitUntil(func() bool { return got == want }, "bench: drain")
			},
			func(p *sim.Proc) {
				m.Endpoint(1).WaitUntil(func() bool { return got == want }, "bench: sink")
			},
		})
		return eng, err
	})
}

// appCase runs one suite application at smoke scale through the full
// splitc/am/sim stack.
func appCase(name string, o Options) (Case, error) {
	app, err := suite.ByName(name)
	if err != nil {
		return Case{}, err
	}
	cfg := apps.Config{Procs: 16, Scale: 1.0 / 256, Seed: o.Seed}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := app.Run(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Case{}, fmt.Errorf("bench %s: %w", name, err)
	}
	var messages int64
	for _, n := range res.Stats.SentPerProc {
		messages += n
	}
	c := Case{
		Name:          "app-" + name,
		Messages:      messages,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
		Allocs:        int64(after.Mallocs - before.Mallocs),
		Switches:      res.Sched.Switches,
		SwitchesSaved: res.Sched.SwitchesSaved,
		EventsRun:     res.Sched.EventsRun,
	}
	if messages > 0 {
		c.NsPerMsg = float64(wall.Nanoseconds()) / float64(messages)
		c.AllocsPerMsg = float64(c.Allocs) / float64(messages)
	}
	if s := wall.Seconds(); s > 0 {
		c.EventsPerSec = float64(c.EventsRun) / s
	}
	return c, nil
}

// sweepCase times the fig5b sensitivity sweep end to end on the run-plan
// worker pool — the many-concurrent-engines workload. Only wall-clock is
// meaningful here (allocations include table rendering), so per-message
// figures stay zero.
func sweepCase(o Options) (Case, error) {
	start := time.Now()
	_, err := exp.Fig5b(exp.Options{Quick: true, Jobs: o.Jobs, Seed: o.Seed})
	wall := time.Since(start)
	if err != nil {
		return Case{}, fmt.Errorf("bench sweep: %w", err)
	}
	return Case{
		Name:   "fig5b-sweep",
		WallMs: float64(wall.Nanoseconds()) / 1e6,
	}, nil
}
