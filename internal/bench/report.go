package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Report is the BENCH_sim.json payload. All fields are structs and
// slices — deliberately no maps, so the JSON key order and the rendered
// table row order are fixed.
type Report struct {
	// Schema versions the file format.
	Schema int `json:"schema"`
	// Quick records whether the trimmed CI matrix ran.
	Quick bool `json:"quick"`
	// Jobs is the worker-pool width used by the sweep case.
	Jobs int `json:"jobs"`
	// GoVersion and GOARCH identify the toolchain; host-dependent wall
	// times are only comparable when these (and the machine) match.
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Cases     []Case `json:"cases"`
}

// Case is one benchmark measurement.
type Case struct {
	Name string `json:"name"`
	// Procs is the simulated cluster size, for the scale-matrix cases
	// that sweep it (zero elsewhere).
	Procs int `json:"procs,omitempty"`
	// Messages is the work unit count (short messages, bulk fragments, or
	// application messages); zero when only wall-clock is meaningful.
	Messages int64 `json:"messages"`
	// WallMs is host wall-clock for the run, in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// NsPerMsg is host nanoseconds of simulator work per message — the
	// regression axis.
	NsPerMsg float64 `json:"ns_per_msg"`
	// AllocsPerMsg is heap allocations per message (0 on pooled paths).
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	// Allocs is the raw allocation count for the run.
	Allocs int64 `json:"allocs"`
	// EventsPerSec is discrete events executed per host second.
	EventsPerSec float64 `json:"events_per_sec"`
	// BytesPerProc is heap bytes allocated per simulated processor over
	// the whole run — the scale matrix's memory axis. Weak scaling keeps
	// per-processor work fixed, so this should stay near-flat up the
	// ladder; growth with P means a per-processor cost proportional to
	// the machine size leaked in.
	BytesPerProc float64 `json:"bytes_per_proc,omitempty"`
	// Switches / SwitchesSaved are the engine's goroutine hand-off
	// counters; EventsRun is the event total. These are deterministic per
	// workload, unlike the timing fields.
	Switches      int64 `json:"switches"`
	SwitchesSaved int64 `json:"switches_saved"`
	EventsRun     int64 `json:"events_run"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a report written by WriteFile.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &r, nil
}

// Render formats the report as an aligned text table.
func (r *Report) Render() string {
	var b strings.Builder
	mode := "full"
	if r.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "reprobench (%s, %s/%s)\n", mode, r.GoVersion, r.GOARCH)
	fmt.Fprintf(&b, "%-24s %12s %10s %10s %12s %14s %12s %12s\n",
		"case", "messages", "wall ms", "ns/msg", "allocs/msg", "events/sec", "B/proc", "sw saved")
	for _, c := range r.Cases {
		bpp := "-"
		if c.BytesPerProc > 0 {
			bpp = fmt.Sprintf("%.0f", c.BytesPerProc)
		}
		fmt.Fprintf(&b, "%-24s %12d %10.1f %10.1f %12.4f %14.0f %12s %12d\n",
			c.Name, c.Messages, c.WallMs, c.NsPerMsg, c.AllocsPerMsg, c.EventsPerSec, bpp, c.SwitchesSaved)
	}
	return b.String()
}

// DefaultTolerance is the allowed fractional ns/msg growth before Compare
// reports a regression (20%, wide enough to absorb host noise on shared
// CI runners while catching real hot-path slips).
const DefaultTolerance = 0.20

// Regression describes one case that slowed past tolerance.
type Regression struct {
	Name     string
	BaseNs   float64
	CurNs    float64
	Fraction float64
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %.1f ns/msg -> %.1f ns/msg (%+.1f%%)",
		g.Name, g.BaseNs, g.CurNs, g.Fraction*100)
}

// Compare checks cur against base case by case. Cases present in only one
// report are ignored (the matrix may grow between baselines); cases
// without a per-message figure compare on wall-clock instead.
func Compare(cur, base *Report, tol float64) []Regression {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	var regs []Regression
	for _, c := range cur.Cases {
		for _, b := range base.Cases {
			if b.Name != c.Name {
				continue
			}
			bv, cv := b.NsPerMsg, c.NsPerMsg
			if bv == 0 || cv == 0 {
				bv, cv = b.WallMs, c.WallMs
			}
			if bv <= 0 {
				break
			}
			frac := cv/bv - 1
			if frac > tol {
				regs = append(regs, Regression{Name: c.Name, BaseNs: bv, CurNs: cv, Fraction: frac})
			}
			break
		}
	}
	return regs
}
