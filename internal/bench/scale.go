package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/apps/scalekern"
)

// The scale matrix is reprobench's host-cost view of the weak-scaling
// ladder: where the scale experiment reports virtual-time slowdowns
// (deterministic, jobs-independent), this matrix reports what the same
// ladder costs the host — wall-clock, events per second, and heap bytes
// per simulated processor — for the three scalekern continuation
// kernels at each rung. Its report is BENCH_scale.json.
//
// The two numbers the ladder is designed to pin:
//
//   - events/sec should stay roughly flat from P=32 to P=1M: the
//     resumable runtime costs O(1) host work per event with no
//     per-processor goroutine, so machine size must not degrade event
//     throughput (beyond cache effects of the larger working set).
//   - bytes/proc should stay near-flat: weak scaling fixes per-processor
//     work, so allocation growing with P would mean a hidden
//     machine-size-proportional cost per processor.

// ScaleOptions selects the scale-matrix variant.
type ScaleOptions struct {
	// Quick stops the ladder at 10k processors (CI smoke mode).
	Quick bool
	// Seed fixes the kernel inputs.
	Seed int64
}

// Norm fills in defaults.
func (o ScaleOptions) Norm() ScaleOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// scaleLadder is the processor-count ladder. Quick mode is the CI
// subset; the full ladder's 1M rung is minutes of host time.
func scaleLadder(o ScaleOptions) []int {
	if o.Quick {
		return []int{32, 1_000, 10_000}
	}
	return []int{32, 1_000, 10_000, 100_000, 1_000_000}
}

// RunScale executes the scale matrix and assembles the report.
func RunScale(o ScaleOptions) (*Report, error) {
	o = o.Norm()
	r := &Report{
		Schema:    1,
		Quick:     o.Quick,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	for _, app := range scalekern.All() {
		for _, procs := range scaleLadder(o) {
			c, err := scaleCase(app, procs, o)
			if err != nil {
				return nil, err
			}
			r.Cases = append(r.Cases, c)
		}
	}
	return r, nil
}

// scaleCase runs one kernel at one rung, once: the big rungs run for
// minutes, so a single repetition is already far above timer noise, and
// the small-rung noise is absorbed by the comparison tolerance.
func scaleCase(app apps.App, procs int, o ScaleOptions) (Case, error) {
	cfg := apps.Config{Procs: procs, Scale: 1.0 / 256, Seed: o.Seed}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := app.Run(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Case{}, fmt.Errorf("bench %s P=%d: %w", app.Name(), procs, err)
	}
	messages := res.Stats.TotalSent()
	c := Case{
		Name:          fmt.Sprintf("%s-P%d", app.Name(), procs),
		Procs:         procs,
		Messages:      messages,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
		Allocs:        int64(after.Mallocs - before.Mallocs),
		BytesPerProc:  float64(after.TotalAlloc-before.TotalAlloc) / float64(procs),
		Switches:      res.Sched.Switches,
		SwitchesSaved: res.Sched.SwitchesSaved,
		EventsRun:     res.Sched.EventsRun,
	}
	if messages > 0 {
		c.NsPerMsg = float64(wall.Nanoseconds()) / float64(messages)
		c.AllocsPerMsg = float64(c.Allocs) / float64(messages)
	}
	if s := wall.Seconds(); s > 0 {
		c.EventsPerSec = float64(c.EventsRun) / s
	}
	return c, nil
}
