package disk

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBlockingReadTiming(t *testing.T) {
	e := sim.New(sim.Config{Procs: 1})
	err := e.Run(func(p *sim.Proc) {
		d := New(p, 5.5, 0)
		start := p.Clock()
		d.Read(5.5 * MB / 2) // half a second of data
		elapsed := p.Clock() - start
		want := sim.Second / 2
		diff := elapsed - want
		if diff < -sim.Microsecond || diff > sim.Microsecond {
			t.Errorf("read took %v, want ≈%v", elapsed, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSeekCost(t *testing.T) {
	e := sim.New(sim.Config{Procs: 1})
	err := e.Run(func(p *sim.Proc) {
		d := New(p, 100, 10*sim.Millisecond)
		start := p.Clock()
		d.Read(0)
		if got := p.Clock() - start; got != 10*sim.Millisecond {
			t.Errorf("zero-byte read took %v, want the 10ms seek", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverlapWithCompute(t *testing.T) {
	// Starting a read, computing, then waiting must cost max(read, compute).
	e := sim.New(sim.Config{Procs: 1})
	err := e.Run(func(p *sim.Proc) {
		d := New(p, 1, 0) // 1 MB/s
		start := p.Clock()
		done := d.StartRead(1 * MB) // 1 second
		p.Advance(300 * sim.Millisecond)
		d.Wait(done)
		if got := p.Clock() - start; got != sim.Second {
			t.Errorf("overlapped read+compute took %v, want 1s", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackTransfersQueue(t *testing.T) {
	e := sim.New(sim.Config{Procs: 1})
	err := e.Run(func(p *sim.Proc) {
		d := New(p, 1, 0)
		t1 := d.StartRead(1 * MB)
		t2 := d.StartRead(1 * MB)
		if t2-t1 != sim.Second {
			t.Errorf("second transfer completes %v after first, want 1s", t2-t1)
		}
		d.Wait(t2)
		if got := d.BytesRead(); got != 2*MB {
			t.Errorf("bytes read = %d", got)
		}
		if got := d.BusyTime(); got != 2*sim.Second {
			t.Errorf("busy = %v, want 2s", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccountingAndBandwidth(t *testing.T) {
	e := sim.New(sim.Config{Procs: 1})
	err := e.Run(func(p *sim.Proc) {
		d := New(p, 5.5, 0)
		if d.Bandwidth() != 5.5 {
			t.Errorf("bandwidth = %v", d.Bandwidth())
		}
		d.Write(1000)
		if d.BytesWritten() != 1000 {
			t.Errorf("bytes written = %d", d.BytesWritten())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadBandwidthPanics(t *testing.T) {
	e := sim.New(sim.Config{Procs: 1})
	err := e.Run(func(p *sim.Proc) { New(p, 0, 0) })
	if err == nil {
		t.Fatal("expected panic for zero bandwidth")
	}
}

// Property: total time for a sequence of blocking reads equals the sum of
// their transfer times (a dedicated sequential device never overlaps).
func TestSequentialAdditivityProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		var elapsed, want sim.Time
		e := sim.New(sim.Config{Procs: 1})
		err := e.Run(func(p *sim.Proc) {
			d := New(p, 10, sim.Microsecond)
			start := p.Clock()
			for _, s := range sizes {
				want += d.transferTime(int(s))
				d.Read(int(s))
			}
			elapsed = p.Clock() - start
		})
		return err == nil && elapsed == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
