// Package disk models the streaming disks NOW-sort reads from and writes
// to: a fixed-bandwidth sequential device (the paper's nodes have two
// 5.5 MB/s disks, one used for reading and one for writing during the
// communication phase).
//
// The model is a simple busy-until resource: each transfer occupies the
// disk for size/bandwidth (plus a per-operation positioning overhead) and
// completes at a deterministic virtual time. Callers either block until
// completion (Read/Write) or overlap the wait with communication
// (StartRead + WaitRead), which is exactly how NOW-sort hides network time
// under disk time.
package disk

import (
	"fmt"

	"repro/internal/sim"
)

// Disk is one streaming device attached to a processor.
type Disk struct {
	proc *sim.Proc
	// bandwidth in bytes per sim.Second.
	bytesPerSec float64
	// seek is the fixed per-operation positioning cost.
	seek sim.Time
	// freeAt is when the device finishes its current transfer.
	freeAt sim.Time

	// accounting
	bytesRead    int64
	bytesWritten int64
	busy         sim.Time
}

// MBs constructs a bandwidth value in megabytes per second.
const MB = 1 << 20

// New attaches a disk with the given bandwidth (MB/s) and per-operation
// seek time to a processor.
func New(p *sim.Proc, mbPerSec float64, seek sim.Time) *Disk {
	if mbPerSec <= 0 {
		panic(fmt.Sprintf("disk: bandwidth must be positive, got %v", mbPerSec))
	}
	return &Disk{proc: p, bytesPerSec: mbPerSec * MB, seek: seek}
}

// transferTime is the device time to move n bytes.
func (d *Disk) transferTime(n int) sim.Time {
	return d.seek + sim.Time(float64(n)/d.bytesPerSec*float64(sim.Second))
}

// start reserves the device for an n-byte transfer and returns the
// completion time.
func (d *Disk) start(n int) sim.Time {
	begin := d.proc.Clock()
	if d.freeAt > begin {
		begin = d.freeAt
	}
	t := d.transferTime(n)
	d.freeAt = begin + t
	d.busy += t
	return d.freeAt
}

// StartRead begins an asynchronous n-byte sequential read and returns its
// completion time; pass it to Wait (or compare against the clock) to
// consume the data. Issue cost on the host is negligible (DMA).
func (d *Disk) StartRead(n int) sim.Time {
	d.bytesRead += int64(n)
	return d.start(n)
}

// StartWrite begins an asynchronous n-byte sequential write.
func (d *Disk) StartWrite(n int) sim.Time {
	d.bytesWritten += int64(n)
	return d.start(n)
}

// Wait blocks the owning processor until the transfer completing at t is
// done. The processor sleeps (it is free to have polled or computed before
// calling Wait — that is how transfers overlap with communication).
func (d *Disk) Wait(t sim.Time) {
	d.proc.SleepUntil(t)
}

// Read performs a blocking n-byte sequential read.
func (d *Disk) Read(n int) { d.Wait(d.StartRead(n)) }

// Write performs a blocking n-byte sequential write.
func (d *Disk) Write(n int) { d.Wait(d.StartWrite(n)) }

// BytesRead reports total bytes read.
func (d *Disk) BytesRead() int64 { return d.bytesRead }

// BytesWritten reports total bytes written.
func (d *Disk) BytesWritten() int64 { return d.bytesWritten }

// BusyTime reports cumulative device-busy virtual time.
func (d *Disk) BusyTime() sim.Time { return d.busy }

// Bandwidth reports the configured bandwidth in MB/s.
func (d *Disk) Bandwidth() float64 { return d.bytesPerSec / MB }
