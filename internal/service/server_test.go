package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/run"
)

// newTestServer boots a daemon on a fresh cache directory plus an
// httptest frontend, and returns a typed client bound to it.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, &Client{BaseURL: ts.URL, ID: "test", HTTP: ts.Client()}
}

func quickFig5bOptions() OptionsJSON {
	return OptionsJSON{Procs: 8, Scale: 1.0 / 2048, Seed: 1, Quick: true, Apps: []string{"radix"}}
}

// TestServiceFig5bByteIdentity is the tentpole acceptance check: the
// served fig5b table must match the offline render byte for byte, cold
// (all computed) and warm (all from the persistent cache).
func TestServiceFig5bByteIdentity(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4})
	ctx := context.Background()

	offline, err := exp.Fig5b(exp.Options{Procs: 8, Scale: 1.0 / 2048, Seed: 1, Quick: true, Apps: []string{"radix"}})
	if err != nil {
		t.Fatal(err)
	}

	req := ExperimentRequest{ID: "fig5b", Options: quickFig5bOptions()}
	cold, err := c.Experiment(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Text != offline.Text() {
		t.Errorf("cold served table differs from offline render:\n--- offline\n%s--- served\n%s", offline.Text(), cold.Text)
	}
	if cold.Cache.Computed != cold.Cache.Total || cold.Cache.DiskHits != 0 {
		t.Errorf("cold cache counts = %+v, want all computed", cold.Cache)
	}
	if cold.CSV != offline.CSV() {
		t.Error("cold served CSV differs from offline render")
	}

	warm, err := c.Experiment(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.DiskHits != warm.Cache.Total || warm.Cache.Computed != 0 {
		t.Errorf("warm cache counts = %+v, want 100%% disk hits", warm.Cache)
	}
	if warm.Text != cold.Text {
		t.Errorf("warm reply not byte-identical to cold:\n--- cold\n%s--- warm\n%s", cold.Text, warm.Text)
	}
	if warm.CSV != cold.CSV {
		t.Error("warm CSV not byte-identical to cold")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.HitRate <= 0 {
		t.Errorf("hit rate = %v after a warm pass, want > 0", st.HitRate)
	}
	if st.Requests["experiment"] != 2 {
		t.Errorf("experiment requests = %d, want 2", st.Requests["experiment"])
	}
	if _, ok := st.Latency["experiment"]; !ok {
		t.Error("no latency histogram for experiment endpoint")
	}
}

// TestServiceRunEndpoint exercises /v1/run for a baseline and a swept
// spec, cold and warm, and the minimal-response flag.
func TestServiceRunEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	base := RunRequest{SpecJSON: SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1}}
	r1, err := c.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Source != SourceComputed || r1.Cached {
		t.Fatalf("cold run source = %q cached=%v, want computed", r1.Source, r1.Cached)
	}
	if r1.Result == nil || r1.Point.Slowdown != 1 {
		t.Fatalf("baseline response incomplete: %+v", r1)
	}

	r2, err := c.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != SourceDisk || !r2.Cached {
		t.Fatalf("warm run source = %q, want disk", r2.Source)
	}
	if r2.Hash != r1.Hash || r2.ElapsedNs != r1.ElapsedNs {
		t.Fatalf("warm run differs: %+v vs %+v", r2, r1)
	}

	// A swept spec auto-resolves its baseline (already cached here).
	sweep := RunRequest{
		SpecJSON: SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1, Knob: "o", Value: 25},
		Minimal:  true,
	}
	r3, err := c.Run(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Source != SourceComputed {
		t.Fatalf("cold sweep source = %q", r3.Source)
	}
	if r3.Result != nil {
		t.Fatal("minimal response still carries the full result")
	}
	if r3.Point.Slowdown <= 0 {
		t.Fatalf("sweep slowdown = %v", r3.Point.Slowdown)
	}
}

// TestServiceCoalesce pins the singleflight behavior: two concurrent
// requests for one cold spec execute it once; the second waiter is
// reported as coalesced.
func TestServiceCoalesce(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	spec := run.Baseline("radix", 4, 1.0/4096, 1, false)
	hash := spec.Hash()

	// Occupy the only worker so the flight stays open until we release.
	running := make(chan struct{})
	release := make(chan struct{})
	if err := s.sched.Submit("gate", func() { close(running); <-release }); err != nil {
		t.Fatal(err)
	}
	<-running

	type res struct {
		src string
		err error
	}
	results := make(chan res, 2)
	resolveOne := func(client string) {
		_, src, err := s.resolve(ctx, client, spec, nil)
		results <- res{src, err}
	}
	go resolveOne("a")
	// Wait until the first resolution owns the flight, then join it.
	for {
		s.mu.Lock()
		_, ok := s.inflight[hash]
		s.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	go resolveOne("b")
	close(release)

	srcs := map[string]int{}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		srcs[r.src]++
	}
	if srcs[SourceComputed] != 1 || srcs[SourceCoalesced] != 1 {
		t.Fatalf("sources = %v, want one computed + one coalesced", srcs)
	}
	s.mu.Lock()
	coalesced := s.counts.coalesced
	computed := s.counts.computed
	s.mu.Unlock()
	if coalesced != 1 || computed != 1 {
		t.Fatalf("counters: coalesced=%d computed=%d, want 1/1", coalesced, computed)
	}
}

// TestServiceBackpressure drives the daemon into queue-full and checks
// the HTTP contract: 429, a Retry-After hint, and a successful retry
// once capacity frees up.
func TestServiceBackpressure(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	ctx := context.Background()

	running := make(chan struct{})
	release := make(chan struct{})
	if err := s.sched.Submit("gate", func() { close(running); <-release }); err != nil {
		t.Fatal(err)
	}
	<-running
	// Fill the whole admission queue.
	if err := s.sched.Submit("filler", func() {}); err != nil {
		t.Fatal(err)
	}

	_, err := c.Run(ctx, RunRequest{SpecJSON: SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1}})
	re, ok := err.(*RetryError)
	if !ok {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.After < time.Second || re.After > 30*time.Second {
		t.Fatalf("Retry-After = %v, want within [1s, 30s]", re.After)
	}

	close(release)
	// Honor the hint the way a polite client would, but poll faster to
	// keep the test quick — capacity is free as soon as the gate drops.
	var got *RunResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err = c.Run(ctx, RunRequest{SpecJSON: SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1}})
		if err == nil {
			break
		}
		if _, retry := err.(*RetryError); !retry || time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Source != SourceComputed {
		t.Fatalf("retry source = %q, want computed", got.Source)
	}

	st := s.Stats()
	if st.Cache.Rejected == 0 {
		t.Errorf("stats rejected = 0, want > 0: %+v", st.Cache)
	}
}

// TestServiceSweepSSE streams a sweep and checks the event protocol:
// one progress event per run with a monotonic done counter, then a
// result event whose body matches the non-streaming response.
func TestServiceSweepSSE(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	sweepReq := SweepRequest{
		App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1,
		Knob: "o", Values: []float64{5, 25},
	}
	plain, err := c.Sweep(ctx, sweepReq)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(plain.Points))
	}

	body, err := json.Marshal(sweepReq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var progress []PlanEvent
	var result *SweepResponse
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var ev PlanEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatal(err)
				}
				progress = append(progress, ev)
			case "result":
				result = &SweepResponse{}
				if err := json.Unmarshal([]byte(data), result); err != nil {
					t.Fatal(err)
				}
			case "error":
				t.Fatalf("stream error event: %s", data)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 3 runs: baseline + 2 points (all warm from the plain request).
	if len(progress) != 3 {
		t.Fatalf("progress events = %d, want 3", len(progress))
	}
	for i, ev := range progress {
		if ev.Done != i+1 || ev.Total != 3 {
			t.Fatalf("event %d = %+v, want done=%d total=3", i, ev, i+1)
		}
		if ev.Err != "" {
			t.Fatalf("event %d carries error %q", i, ev.Err)
		}
	}
	if result == nil {
		t.Fatal("no result event")
	}
	if result.BaseHash != plain.BaseHash || len(result.Points) != len(plain.Points) {
		t.Fatalf("streamed result differs from plain: %+v vs %+v", result, plain)
	}
	for i := range result.Points {
		if result.Points[i].Hash != plain.Points[i].Hash || result.Points[i].Slowdown != plain.Points[i].Slowdown {
			t.Fatalf("streamed point %d differs: %+v vs %+v", i, result.Points[i], plain.Points[i])
		}
	}
}

// TestServiceToleranceEndpoint exercises /v1/tolerance: one cold
// instrumented run yields the full analytic curves and per-axis
// tolerance figures, and a second request serves them from the
// persistent store without simulating anything.
func TestServiceToleranceEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	req := ToleranceRequest{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1}
	cold, err := c.Tolerance(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Source != SourceComputed || cold.Cached {
		t.Fatalf("cold source = %q cached=%v, want computed", cold.Source, cold.Cached)
	}
	if cold.DepgraphError != "" {
		t.Fatalf("depgraph error: %s", cold.DepgraphError)
	}
	if cold.Curves == nil {
		t.Fatal("no curves in response")
	}
	if got := int64(cold.Curves.Elapsed); got != cold.ElapsedNs {
		t.Fatalf("curves elapsed %d != run elapsed %d", got, cold.ElapsedNs)
	}
	for _, axis := range []string{"o", "g", "L"} {
		cv, ok := cold.Curves.ByAxis(axis)
		if !ok || len(cv.Segs) == 0 {
			t.Fatalf("axis %s curve missing", axis)
		}
		if int64(cv.Base()) != cold.ElapsedNs {
			t.Fatalf("axis %s base %v != elapsed %d", axis, cv.Base(), cold.ElapsedNs)
		}
	}
	if len(cold.Tolerances) != 3 {
		t.Fatalf("tolerances = %+v, want 3 axes", cold.Tolerances)
	}
	if !cold.Spec.Depgraph {
		t.Fatal("response spec lost the depgraph bit")
	}

	warm, err := c.Tolerance(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != SourceDisk || !warm.Cached {
		t.Fatalf("warm source = %q, want disk", warm.Source)
	}
	if warm.Hash != cold.Hash || warm.ElapsedNs != cold.ElapsedNs {
		t.Fatalf("warm answer differs: %+v vs %+v", warm, cold)
	}
	wj, _ := json.Marshal(warm.Curves)
	cj, _ := json.Marshal(cold.Curves)
	if !bytes.Equal(wj, cj) {
		t.Fatal("warm curves not identical to cold")
	}
}

// TestServiceAnalyticSweep pins the sweep fast path: with analytic set,
// a whole value matrix resolves from one instrumented run — every point
// reports Source "analytic" and the instrumented run's hash, and the
// prediction at delta zero is exactly the measured baseline.
func TestServiceAnalyticSweep(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	req := SweepRequest{
		App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1,
		Knob: "o", Values: []float64{0, 5, 25}, Analytic: true,
	}
	cold, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Total != 1 || cold.Cache.Computed != 1 {
		t.Fatalf("cold cache counts = %+v, want one computed run", cold.Cache)
	}
	if len(cold.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(cold.Points))
	}
	for i, p := range cold.Points {
		if p.Source != SourceAnalytic {
			t.Fatalf("point %d source = %q, want analytic", i, p.Source)
		}
		if p.Hash != cold.BaseHash {
			t.Fatalf("point %d hash %q != instrumented hash %q", i, p.Hash, cold.BaseHash)
		}
	}
	if cold.Points[0].ElapsedNs != cold.Baseline.ElapsedNs || cold.Points[0].Slowdown != 1 {
		t.Fatalf("prediction at delta 0 = %+v, want the baseline %+v", cold.Points[0], cold.Baseline)
	}
	if cold.Points[2].ElapsedNs < cold.Points[1].ElapsedNs {
		t.Fatalf("predictions not monotone: %+v", cold.Points)
	}

	// Warm pass: zero simulations.
	warm, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.DiskHits != 1 || warm.Cache.Computed != 0 {
		t.Fatalf("warm cache counts = %+v, want one disk hit", warm.Cache)
	}
	for i := range warm.Points {
		if warm.Points[i] != cold.Points[i] {
			t.Fatalf("warm point %d differs: %+v vs %+v", i, warm.Points[i], cold.Points[i])
		}
	}

	// The bulk-bandwidth knob has no analytic curve.
	_, err = c.Sweep(ctx, SweepRequest{
		App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: 1,
		Knob: "bw", Values: []float64{10}, Analytic: true,
	})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusBadRequest {
		t.Fatalf("analytic bw sweep err = %v, want 400", err)
	}
}

// TestServiceBadRequests pins the error contract for malformed input.
func TestServiceBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	wantStatus := func(err error, code int) {
		t.Helper()
		se, ok := err.(*StatusError)
		if !ok {
			t.Fatalf("err = %v, want *StatusError", err)
		}
		if se.Code != code {
			t.Fatalf("status = %d (%s), want %d", se.Code, se.Message, code)
		}
	}

	_, err := c.Run(ctx, RunRequest{SpecJSON: SpecJSON{App: "", Procs: 4, Scale: 1}})
	wantStatus(err, http.StatusBadRequest)

	_, err = c.Run(ctx, RunRequest{SpecJSON: SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Knob: "zz"}})
	wantStatus(err, http.StatusBadRequest)

	_, err = c.Run(ctx, RunRequest{SpecJSON: SpecJSON{App: "no-such-app", Procs: 4, Scale: 1.0 / 4096, Seed: 1}})
	wantStatus(err, http.StatusInternalServerError)

	_, err = c.Sweep(ctx, SweepRequest{App: "radix", Procs: 4, Scale: 1.0 / 4096, Knob: "o"})
	wantStatus(err, http.StatusBadRequest) // no values

	_, err = c.Sweep(ctx, SweepRequest{App: "radix", Procs: 4, Scale: 1.0 / 4096, Knob: "", Values: []float64{1}})
	wantStatus(err, http.StatusBadRequest) // sweep without a knob

	_, err = c.Experiment(ctx, ExperimentRequest{ID: "no-such-figure"})
	wantStatus(err, http.StatusBadRequest)

	// Unknown JSON fields are rejected, not silently dropped.
	resp, herr := c.httpClient().Post(c.BaseURL+"/v1/run", "application/json",
		strings.NewReader(`{"app":"radix","procs":4,"scale":0.001,"bogus":1}`))
	if herr != nil {
		t.Fatal(herr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", resp.StatusCode)
	}
}

// TestServicePersistsAcrossRestart pins the "persistent" in persistent
// cache: a new daemon over the same directory serves the old answers.
func TestServicePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := ExperimentRequest{ID: "fig5b", Options: quickFig5bOptions()}

	_, c1 := newTestServer(t, Config{Workers: 4, CacheDir: dir})
	cold, err := c1.Experiment(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, Config{Workers: 4, CacheDir: dir})
	warm, err := c2.Experiment(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.DiskHits != warm.Cache.Total {
		t.Fatalf("restarted daemon cache counts = %+v, want 100%% disk hits", warm.Cache)
	}
	if warm.Text != cold.Text {
		t.Error("restarted daemon's table not byte-identical")
	}
}

// TestServiceConcurrentMixedLoad fires many concurrent requests with
// mixed hot and cold keys through the full HTTP stack (run under -race
// in CI): every response must be consistent for its key.
func TestServiceConcurrentMixedLoad(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4})
	ctx := context.Background()

	seeds := []int64{1, 2, 3}
	var wg sync.WaitGroup
	type obs struct {
		seed int64
		hash string
		ns   int64
	}
	results := make(chan obs, 64)
	errs := make(chan error, 64)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &Client{BaseURL: c.BaseURL, ID: "client-" + strconv.Itoa(i%4), HTTP: c.HTTP}
			seed := seeds[i%len(seeds)]
			for {
				r, err := cl.Run(ctx, RunRequest{
					SpecJSON: SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: seed},
					Minimal:  true,
				})
				if err != nil {
					if _, retry := err.(*RetryError); retry {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					errs <- err
					return
				}
				results <- obs{seed, r.Hash, r.ElapsedNs}
				return
			}
		}(i)
	}
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	byShard := map[int64]obs{}
	n := 0
	for o := range results {
		n++
		if prev, ok := byShard[o.seed]; ok {
			if prev.hash != o.hash || prev.ns != o.ns {
				t.Fatalf("seed %d answers diverge: %+v vs %+v", o.seed, prev, o)
			}
		} else {
			byShard[o.seed] = o
		}
	}
	if n != 24 {
		t.Fatalf("got %d responses, want 24", n)
	}
}
