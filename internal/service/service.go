// Package service is the simulation-as-a-service layer: an HTTP/JSON
// daemon (cmd/reprod) exposing the run-plan engine to many concurrent
// clients over one shared machine.
//
// Architecture (DESIGN.md §13):
//
//   - every run is addressed by its canonical run.Spec hash
//     (Spec.Hash(), a stability-pinned sha256 of the normalized spec);
//   - completed results live in a persistent content-addressed store on
//     disk (DiskStore): written atomically (temp file + rename),
//     loaded lazily, and verified on every read (payload checksum and
//     spec-hash match), so a crashed writer or a corrupted entry
//     degrades to a recompute, never to a wrong answer;
//   - misses execute on one shared bounded worker pool (Scheduler)
//     with fair round-robin scheduling across clients, admission
//     control (a bounded queue), and backpressure: when the queue is
//     full the request fails fast with 429 and a Retry-After hint;
//   - identical runs requested concurrently — by one client or many —
//     coalesce onto a single in-flight execution (the cross-request
//     twin of run.Store's singleflight);
//   - running plans can stream per-run progress over SSE, and /v1/stats
//     exposes hit rates, queue depth, executed-vs-deduped counters, and
//     per-endpoint latency histograms.
//
// The daemon sits outside the simulation boundary: it may use
// goroutines and wall-clock time freely (reprolint's sim scopes exclude
// it), but everything it persists or serves is a pure function of the
// Spec, so cached answers are byte-identical to freshly computed ones
// at any concurrency.
package service

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/logp"
	"repro/internal/run"
)

// Config parameterizes a Server.
type Config struct {
	// CacheDir is the persistent result store's root directory.
	// Required: the cache is the point of the daemon.
	CacheDir string
	// Workers bounds concurrently executing simulations across all
	// clients; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// MaxQueue bounds runs admitted but not yet executing, across all
	// clients; beyond it requests fail with 429. 0 means 1024.
	MaxQueue int
	// Runner executes individual runs (machine parameters, app
	// resolution). Its Jobs field is ignored — the scheduler owns all
	// concurrency. Nil means the paper machine (logp.NOW()) with the
	// full app registry (paper suite + scale kernels).
	Runner *run.Runner
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 1024
}

// Server is the daemon: an http.Handler plus the shared scheduler,
// persistent store, and in-flight run table behind it.
type Server struct {
	runner *run.Runner
	disk   *DiskStore
	sched  *Scheduler

	mu       sync.Mutex
	inflight map[string]*flight
	counts   cacheCounters
	reqs     map[string]int64

	start time.Time
	lat   *latencySet
	mux   *http.ServeMux
}

// cacheCounters aggregates resolution outcomes daemon-wide.
type cacheCounters struct {
	diskHits    int64 // served from the persistent store
	computed    int64 // executed on the worker pool
	coalesced   int64 // joined an identical in-flight run
	corrupt     int64 // unreadable/corrupt disk entries recovered by recompute
	writeErrors int64 // failed persistent writes (result still served)
	rejected    int64 // resolutions refused with queue-full backpressure
	runErrors   int64 // runs that completed with an application error
}

// New builds a Server. The cache directory is created if missing.
func New(cfg Config) (*Server, error) {
	disk, err := NewDiskStore(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	r := cfg.Runner
	if r == nil {
		r = &run.Runner{Params: logp.NOW(), Resolve: exp.ResolveApp}
	}
	s := &Server{
		runner:   r,
		disk:     disk,
		sched:    NewScheduler(cfg.workers(), cfg.maxQueue()),
		inflight: map[string]*flight{},
		reqs:     map[string]int64{},
		start:    time.Now(),
		lat:      newLatencySet(),
	}
	s.mux = s.routes()
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool after the queued work drains. In-flight
// HTTP requests should be shut down first (http.Server.Shutdown).
func (s *Server) Close() { s.sched.Close() }

// countReq tallies one request against an endpoint label.
func (s *Server) countReq(endpoint string) {
	s.mu.Lock()
	s.reqs[endpoint]++
	s.mu.Unlock()
}
