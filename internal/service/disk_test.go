package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/logp"
	"repro/internal/run"
)

// testOutcome executes one real (tiny) baseline run to exercise the
// store with a fully populated result: Stats, histograms, summary.
func testOutcome(t *testing.T) run.Outcome {
	t.Helper()
	r := &run.Runner{Params: logp.NOW(), Resolve: exp.ResolveApp}
	out := r.ExecBaseline(run.Baseline("radix", 4, 1.0/4096, 1, true))
	if out.Err != nil {
		t.Fatalf("baseline run failed: %v", out.Err)
	}
	return out
}

// outcomeBytes is the canonical comparison form of an outcome.
func outcomeBytes(t *testing.T, out run.Outcome) []byte {
	t.Helper()
	raw, err := json.Marshal(payloadJSON{Spec: SpecToJSON(out.Spec), Point: out.Point, Result: out.Res})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := testOutcome(t)

	if _, found, err := d.Load(out.Spec); found || err != nil {
		t.Fatalf("Load before Store: found=%v err=%v, want miss", found, err)
	}
	if err := d.Store(out); err != nil {
		t.Fatal(err)
	}
	got, found, err := d.Load(out.Spec)
	if !found || err != nil {
		t.Fatalf("Load after Store: found=%v err=%v", found, err)
	}
	want, have := outcomeBytes(t, out), outcomeBytes(t, got)
	if string(want) != string(have) {
		t.Errorf("round trip not byte-identical:\nstored %s\nloaded %s", want, have)
	}
	// Storing again (idempotent overwrite) must keep the entry readable.
	if err := d.Store(out); err != nil {
		t.Fatal(err)
	}
	if _, found, err := d.Load(out.Spec); !found || err != nil {
		t.Fatalf("Load after re-Store: found=%v err=%v", found, err)
	}
}

func TestDiskStoreRefusesFailedRun(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := run.Outcome{Spec: run.Baseline("radix", 4, 1.0/4096, 1, false), Err: errors.New("boom")}
	if err := d.Store(out); err == nil {
		t.Fatal("Store accepted a failed run")
	}
}

// TestDiskStoreCorruption covers every verification layer: truncation,
// bit flips in the payload, a wrong stored hash, and a version bump all
// surface as ErrCorrupt (found, recompute), never as a wrong answer.
func TestDiskStoreCorruption(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := testOutcome(t)
	if err := d.Store(out); err != nil {
		t.Fatal(err)
	}
	path := d.entryPath(out.Spec.Hash())
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	corrupt := func(name string, mutate func() []byte) {
		t.Run(name, func(t *testing.T) {
			defer restore()
			if err := os.WriteFile(path, mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			_, found, err := d.Load(out.Spec)
			if !found {
				t.Fatal("corrupt entry reported as a clean miss")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}

	corrupt("truncated", func() []byte { return pristine[:len(pristine)/2] })
	corrupt("not-json", func() []byte { return []byte("not json at all") })
	corrupt("bit-flip", func() []byte {
		b := append([]byte(nil), pristine...)
		// Flip a byte inside the payload checksum's coverage: find the
		// payload object and damage a digit in it.
		var e diskEntry
		if err := json.Unmarshal(pristine, &e); err != nil {
			t.Fatal(err)
		}
		idx := len(b) - len(e.Payload)/2
		if b[idx] == 'x' {
			b[idx] = 'y'
		} else {
			b[idx] = 'x'
		}
		return b
	})
	corrupt("version-bump", func() []byte {
		var e diskEntry
		if err := json.Unmarshal(pristine, &e); err != nil {
			t.Fatal(err)
		}
		e.Version = diskVersion + 1
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
	corrupt("wrong-address", func() []byte {
		var e diskEntry
		if err := json.Unmarshal(pristine, &e); err != nil {
			t.Fatal(err)
		}
		e.Hash = "0000" + e.Hash[4:]
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})

	// After every corruption the pristine bytes must verify again.
	restore()
	if _, found, err := d.Load(out.Spec); !found || err != nil {
		t.Fatalf("pristine reload: found=%v err=%v", found, err)
	}
}

// TestDiskStoreCrashArtifacts simulates a writer that died mid-write:
// leftover temp files must never be served, and the final rename is the
// only visibility point.
func TestDiskStoreCrashArtifacts(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := testOutcome(t)
	hash := out.Spec.Hash()
	shard := filepath.Dir(d.entryPath(hash))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	// A torn temp file from a crashed writer sits in the shard.
	if err := os.WriteFile(filepath.Join(shard, "tmp-dead"), []byte(`{"version":1,"half`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, found, err := d.Load(out.Spec); found || err != nil {
		t.Fatalf("Load with only a torn temp present: found=%v err=%v, want miss", found, err)
	}
	if err := d.Store(out); err != nil {
		t.Fatal(err)
	}
	if _, found, err := d.Load(out.Spec); !found || err != nil {
		t.Fatalf("Load after Store: found=%v err=%v", found, err)
	}
}

// TestDiskStoreConcurrent hammers one entry with concurrent writers and
// readers (run under -race in CI). Readers must only ever see a clean
// miss or a fully verified entry.
func TestDiskStoreConcurrent(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := testOutcome(t)
	want := string(outcomeBytes(t, out))

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if err := d.Store(out); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				got, found, err := d.Load(out.Spec)
				if err != nil {
					errs <- err
					return
				}
				if !found {
					continue
				}
				raw, merr := json.Marshal(payloadJSON{Spec: SpecToJSON(got.Spec), Point: got.Point, Result: got.Res})
				if merr != nil {
					errs <- merr
					return
				}
				if string(raw) != want {
					errs <- errors.New("reader observed a non-identical entry")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
