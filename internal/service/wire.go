package service

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/run"
	"repro/internal/splitc"
	"repro/internal/tolerance"
)

// Wire forms of the run-plan engine's types: lowercase, knob-by-name
// JSON for clients, with exact conversions to and from the canonical Go
// structs. The persistent store reuses SpecJSON so cache entries stay
// self-describing (DiskStore verifies a loaded entry's spec re-hashes
// to its address).

// SpecJSON is run.Spec on the wire.
type SpecJSON struct {
	App        string     `json:"app"`
	Procs      int        `json:"procs"`
	Scale      float64    `json:"scale"`
	Seed       int64      `json:"seed"`
	Knob       string     `json:"knob,omitempty"` // "", "o", "g", "L", "bw"
	Value      float64    `json:"value,omitempty"`
	Verify     bool       `json:"verify,omitempty"`
	CPUSpeedup float64    `json:"cpu_speedup,omitempty"`
	Profile    bool       `json:"profile,omitempty"`
	Depgraph   bool       `json:"depgraph,omitempty"`
	Fault      *FaultJSON `json:"fault,omitempty"`
	Coll       *CollJSON  `json:"coll,omitempty"`
}

// FaultJSON is run.FaultSpec on the wire.
type FaultJSON struct {
	DelayProc   int     `json:"delay_proc,omitempty"`
	DelayAtFrac float64 `json:"delay_at_frac,omitempty"`
	DelayUs     float64 `json:"delay_us,omitempty"`
	DropProb    float64 `json:"drop_prob,omitempty"`
	DupProb     float64 `json:"dup_prob,omitempty"`
	Reliable    bool    `json:"reliable,omitempty"`
}

// CollJSON is splitc.Collectives on the wire.
type CollJSON struct {
	Barrier   string `json:"barrier,omitempty"`
	Broadcast string `json:"broadcast,omitempty"`
	AllReduce string `json:"all_reduce,omitempty"`
}

// Spec converts the wire form to the canonical spec.
func (w SpecJSON) Spec() (run.Spec, error) {
	if w.App == "" {
		return run.Spec{}, fmt.Errorf("service: spec missing app")
	}
	if w.Procs <= 0 {
		return run.Spec{}, fmt.Errorf("service: spec %q needs procs > 0", w.App)
	}
	if w.Scale <= 0 {
		return run.Spec{}, fmt.Errorf("service: spec %q needs scale > 0", w.App)
	}
	k, err := run.ParseKnob(w.Knob)
	if err != nil {
		return run.Spec{}, err
	}
	s := run.Spec{
		App: w.App, Procs: w.Procs, Scale: w.Scale, Seed: w.Seed,
		Knob: k, Value: w.Value, Verify: w.Verify,
		CPUSpeedup: w.CPUSpeedup, Profile: w.Profile, Depgraph: w.Depgraph,
	}
	if f := w.Fault; f != nil {
		s.Fault = run.FaultSpec{
			DelayProc: f.DelayProc, DelayAtFrac: f.DelayAtFrac, DelayUs: f.DelayUs,
			DropProb: f.DropProb, DupProb: f.DupProb, Reliable: f.Reliable,
		}
	}
	if c := w.Coll; c != nil {
		s.Coll = splitc.Collectives{Barrier: c.Barrier, Broadcast: c.Broadcast, AllReduce: c.AllReduce}
	}
	return s, nil
}

// KnobName renders a knob in the short wire vocabulary ParseKnob reads.
func KnobName(k core.Knob) string {
	switch k {
	case core.KnobO:
		return "o"
	case core.KnobG:
		return "g"
	case core.KnobL:
		return "L"
	case core.KnobBW:
		return "bw"
	}
	return ""
}

// SpecToJSON converts a canonical spec to the wire form.
func SpecToJSON(s run.Spec) SpecJSON {
	w := SpecJSON{
		App: s.App, Procs: s.Procs, Scale: s.Scale, Seed: s.Seed,
		Knob: KnobName(s.Knob), Value: s.Value, Verify: s.Verify,
		CPUSpeedup: s.CPUSpeedup, Profile: s.Profile, Depgraph: s.Depgraph,
	}
	if s.Fault != (run.FaultSpec{}) {
		w.Fault = &FaultJSON{
			DelayProc: s.Fault.DelayProc, DelayAtFrac: s.Fault.DelayAtFrac, DelayUs: s.Fault.DelayUs,
			DropProb: s.Fault.DropProb, DupProb: s.Fault.DupProb, Reliable: s.Fault.Reliable,
		}
	}
	if !s.Coll.IsZero() {
		w.Coll = &CollJSON{Barrier: s.Coll.Barrier, Broadcast: s.Coll.Broadcast, AllReduce: s.Coll.AllReduce}
	}
	return w
}

// PointJSON is core.Point on the wire.
type PointJSON struct {
	Value      float64 `json:"value"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	Slowdown   float64 `json:"slowdown"`
	Livelocked bool    `json:"livelocked,omitempty"`
}

func pointToJSON(p core.Point) PointJSON {
	return PointJSON{Value: p.Value, ElapsedNs: int64(p.Elapsed), Slowdown: p.Slowdown, Livelocked: p.Livelocked}
}

// Resolution sources, reported per run and aggregated in /v1/stats.
const (
	SourceDisk      = "disk"      // served from the persistent store
	SourceComputed  = "computed"  // executed on the shared worker pool
	SourceCoalesced = "coalesced" // joined an identical in-flight run
	SourceAnalytic  = "analytic"  // evaluated from cached tolerance curves
)

// RunRequest asks for one spec. Minimal omits the full result payload
// from the response (the point and summary numbers remain).
type RunRequest struct {
	SpecJSON
	Minimal bool `json:"minimal,omitempty"`
}

// RunResponse reports one resolved spec.
type RunResponse struct {
	Spec      SpecJSON     `json:"spec"`
	Hash      string       `json:"hash"`
	Source    string       `json:"source"`
	Cached    bool         `json:"cached"`
	WallUs    int64        `json:"wall_us"`
	Point     PointJSON    `json:"point"`
	Result    *apps.Result `json:"result,omitempty"`
	ElapsedNs int64        `json:"elapsed_ns"`
	Verified  bool         `json:"verified,omitempty"`
}

// SweepRequest asks for one app × knob × values matrix (the paper's
// fig5–fig8 shape). The baseline run is implied. Analytic answers the
// whole matrix from a single instrumented baseline run instead of N
// simulations: the points are evaluated from the run's parametric
// makespan curves (internal/tolerance) and report Source "analytic".
// Only the o, g, and L knobs have curves; an analytic bw sweep is a
// bad request.
type SweepRequest struct {
	App        string    `json:"app"`
	Procs      int       `json:"procs"`
	Scale      float64   `json:"scale"`
	Seed       int64     `json:"seed"`
	Knob       string    `json:"knob"`
	Values     []float64 `json:"values"`
	Verify     bool      `json:"verify,omitempty"`
	CPUSpeedup float64   `json:"cpu_speedup,omitempty"`
	Coll       *CollJSON `json:"coll,omitempty"`
	Analytic   bool      `json:"analytic,omitempty"`
}

// SweepPoint is one resolved design point of a sweep.
type SweepPoint struct {
	PointJSON
	Hash   string `json:"hash"`
	Source string `json:"source"`
}

// SweepResponse reports a completed sweep.
type SweepResponse struct {
	App      string       `json:"app"`
	Knob     string       `json:"knob"`
	Baseline PointJSON    `json:"baseline"`
	BaseHash string       `json:"baseline_hash"`
	Points   []SweepPoint `json:"points"`
	Cache    CacheCounts  `json:"cache"`
}

// ToleranceRequest asks for an application's analytic sensitivity
// curves: one instrumented baseline run (content-addressed in the
// persistent store like any result, with the depgraph bit in its key)
// yields the full T(Δo), T(ΔL), T(Δg) makespan curves and per-axis
// tolerance figures without any sweep simulations.
type ToleranceRequest struct {
	App        string    `json:"app"`
	Procs      int       `json:"procs"`
	Scale      float64   `json:"scale"`
	Seed       int64     `json:"seed"`
	Verify     bool      `json:"verify,omitempty"`
	CPUSpeedup float64   `json:"cpu_speedup,omitempty"`
	Coll       *CollJSON `json:"coll,omitempty"`
	// Factor is the slowdown threshold behind the tolerance figures
	// (0 means tolerance.DefaultFactor). Must be ≥ 1.
	Factor float64 `json:"factor,omitempty"`
}

// AxisToleranceJSON is one axis's tolerance figure: the largest delta
// whose predicted slowdown stays within the requested factor. Bounded
// is false when every delta in the analysis domain fits.
type AxisToleranceJSON struct {
	Axis       string  `json:"axis"`
	MaxDeltaUs float64 `json:"max_delta_us"`
	Bounded    bool    `json:"bounded"`
}

// ToleranceResponse reports the analytic curves of one instrumented
// run. When the run did something outside the model's validity region
// the curves are absent and DepgraphError says why.
type ToleranceResponse struct {
	Spec          SpecJSON            `json:"spec"`
	Hash          string              `json:"hash"`
	Source        string              `json:"source"`
	Cached        bool                `json:"cached"`
	WallUs        int64               `json:"wall_us"`
	ElapsedNs     int64               `json:"elapsed_ns"`
	Factor        float64             `json:"factor"`
	Curves        *tolerance.Curves   `json:"curves,omitempty"`
	Tolerances    []AxisToleranceJSON `json:"tolerances,omitempty"`
	DepgraphError string              `json:"depgraph_error,omitempty"`
}

// ExperimentRequest asks for one rendered paper artifact.
type ExperimentRequest struct {
	ID      string      `json:"id"`
	Options OptionsJSON `json:"options"`
}

// OptionsJSON is exp.Options on the wire (Jobs is absent: the daemon's
// shared pool owns all concurrency).
type OptionsJSON struct {
	Procs  int      `json:"procs,omitempty"`
	Scale  float64  `json:"scale,omitempty"`
	Seed   int64    `json:"seed,omitempty"`
	Apps   []string `json:"apps,omitempty"`
	Quick  bool     `json:"quick,omitempty"`
	Verify bool     `json:"verify,omitempty"`
}

func (w OptionsJSON) options() exp.Options {
	return exp.Options{
		Procs: w.Procs, Scale: w.Scale, Seed: w.Seed,
		Apps: w.Apps, Quick: w.Quick, Verify: w.Verify,
	}
}

// TableJSON is exp.Table on the wire.
type TableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// ExperimentResponse reports a rendered artifact. Text is byte-identical
// to cmd/repro's offline output for the same options.
type ExperimentResponse struct {
	ID    string      `json:"id"`
	Table TableJSON   `json:"table"`
	Text  string      `json:"text"`
	CSV   string      `json:"csv"`
	Cache CacheCounts `json:"cache"`
}

// CacheCounts reports how one request's runs resolved.
type CacheCounts struct {
	Total     int `json:"total"`
	DiskHits  int `json:"disk_hits"`
	Computed  int `json:"computed"`
	Coalesced int `json:"coalesced"`
}

// PlanEvent is one progress tick of a streaming sweep or experiment.
type PlanEvent struct {
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Spec   string `json:"spec"`
	Hash   string `json:"hash"`
	Source string `json:"source"`
	WallUs int64  `json:"wall_us"`
	Err    string `json:"error,omitempty"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}
