package service

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// latHist is a log₂-bucketed latency histogram over microseconds:
// bucket i counts observations in [2^i, 2^(i+1)) µs, bucket 0 also
// holds sub-microsecond ones. 40 buckets reach ~12.7 days — effectively
// unbounded for an HTTP request.
type latHist struct {
	buckets [40]int64
	count   int64
	sumUs   int64
	maxUs   int64
}

func (h *latHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	idx := 0
	if us > 0 {
		idx = bits.Len64(uint64(us)) - 1
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
	}
	h.buckets[idx]++
	h.count++
	h.sumUs += us
	if us > h.maxUs {
		h.maxUs = us
	}
}

// quantile returns an upper bound for the q-quantile (the upper edge of
// the bucket the quantile falls in, capped at the observed max).
func (h *latHist) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			hi := int64(1) << uint(i+1)
			if hi > h.maxUs {
				hi = h.maxUs
			}
			return hi
		}
	}
	return h.maxUs
}

// LatencySummary is one endpoint's latency digest.
type LatencySummary struct {
	Count  int64 `json:"count"`
	MeanUs int64 `json:"mean_us"`
	P50Us  int64 `json:"p50_us"`
	P90Us  int64 `json:"p90_us"`
	P99Us  int64 `json:"p99_us"`
	MaxUs  int64 `json:"max_us"`
}

func (h *latHist) summary() LatencySummary {
	s := LatencySummary{Count: h.count, MaxUs: h.maxUs}
	if h.count > 0 {
		s.MeanUs = h.sumUs / h.count
	}
	s.P50Us = h.quantile(0.50)
	s.P90Us = h.quantile(0.90)
	s.P99Us = h.quantile(0.99)
	return s
}

// latencySet tracks one histogram per endpoint label.
type latencySet struct {
	mu sync.Mutex
	m  map[string]*latHist
}

func newLatencySet() *latencySet { return &latencySet{m: map[string]*latHist{}} }

func (ls *latencySet) observe(endpoint string, d time.Duration) {
	ls.mu.Lock()
	h := ls.m[endpoint]
	if h == nil {
		h = &latHist{}
		ls.m[endpoint] = h
	}
	h.observe(d)
	ls.mu.Unlock()
}

// snapshot summarizes every endpoint, in sorted label order.
func (ls *latencySet) snapshot() map[string]LatencySummary {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	labels := make([]string, 0, len(ls.m))
	for label := range ls.m {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make(map[string]LatencySummary, len(labels))
	for _, label := range labels {
		out[label] = ls.m[label].summary()
	}
	return out
}

// StatsResponse is /v1/stats: the daemon's aggregate health view.
type StatsResponse struct {
	UptimeS  float64                   `json:"uptime_s"`
	Requests map[string]int64          `json:"requests"`
	Cache    CacheTotals               `json:"cache"`
	HitRate  float64                   `json:"hit_rate"`
	Sched    SchedStats                `json:"scheduler"`
	Latency  map[string]LatencySummary `json:"latency_us"`
	CacheDir string                    `json:"cache_dir"`
}

// CacheTotals aggregates resolution outcomes since daemon start.
type CacheTotals struct {
	DiskHits    int64 `json:"disk_hits"`
	Computed    int64 `json:"computed"`
	Coalesced   int64 `json:"coalesced"`
	Corrupt     int64 `json:"corrupt_recovered"`
	WriteErrors int64 `json:"write_errors"`
	Rejected    int64 `json:"rejected"`
	RunErrors   int64 `json:"run_errors"`
}

// Stats snapshots the daemon's aggregate counters.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	c := s.counts
	reqs := make(map[string]int64, len(s.reqs))
	keys := make([]string, 0, len(s.reqs))
	for k := range s.reqs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		reqs[k] = s.reqs[k]
	}
	s.mu.Unlock()

	resp := StatsResponse{
		UptimeS:  time.Since(s.start).Seconds(),
		Requests: reqs,
		Cache: CacheTotals{
			DiskHits:    c.diskHits,
			Computed:    c.computed,
			Coalesced:   c.coalesced,
			Corrupt:     c.corrupt,
			WriteErrors: c.writeErrors,
			Rejected:    c.rejected,
			RunErrors:   c.runErrors,
		},
		Sched:    s.sched.Stats(),
		Latency:  s.lat.snapshot(),
		CacheDir: s.disk.Root(),
	}
	if total := c.diskHits + c.coalesced + c.computed; total > 0 {
		resp.HitRate = float64(c.diskHits+c.coalesced) / float64(total)
	}
	return resp
}
