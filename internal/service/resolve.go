package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/run"
)

// flight is one in-flight resolution of a spec hash. Every concurrent
// request for the same hash waits on the same flight — the
// cross-request twin of run.Store's singleflight.
type flight struct {
	done chan struct{} // closed when out/src are valid
	out  run.Outcome
	src  string
}

// resolve produces the outcome for one spec: from the persistent store,
// by coalescing onto an identical in-flight run, or by executing on the
// shared pool under the client's fair-share queue. base carries the
// already-resolved baseline outcome for sweep specs (nil for
// baselines).
//
// The returned error is transport-level (queue full, context canceled);
// run-level failures travel inside the outcome's Err. On cancellation
// the underlying run keeps going for any other waiters and still warms
// the cache — cancellation abandons the wait, not the work.
func (s *Server) resolve(ctx context.Context, client string, spec run.Spec, base *run.Outcome) (run.Outcome, string, error) {
	hash := spec.Hash()

	s.mu.Lock()
	if f, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		return s.await(ctx, f, true)
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[hash] = f
	s.mu.Unlock()

	// Persistent store probe (lazily, outside the lock).
	out, found, err := s.disk.Load(spec)
	if err == nil && found {
		s.finish(hash, f, out, SourceDisk)
		return s.await(ctx, f, false)
	}
	if err != nil {
		// A found-but-corrupt entry: recompute and overwrite.
		s.mu.Lock()
		s.counts.corrupt++
		s.mu.Unlock()
	}

	submitErr := s.sched.Submit(client, func() {
		var out run.Outcome
		if spec.IsBaseline() {
			out = s.runner.ExecBaseline(spec)
		} else if base == nil {
			out = run.Outcome{Spec: spec, Err: fmt.Errorf("service: sweep %v resolved without a baseline", spec)}
		} else {
			out = s.runner.ExecSweep(spec, *base)
		}
		if out.Err == nil {
			if werr := s.disk.Store(out); werr != nil {
				s.mu.Lock()
				s.counts.writeErrors++
				s.mu.Unlock()
			}
		}
		s.finish(hash, f, out, SourceComputed)
	})
	if submitErr != nil {
		// Backpressure: fail this flight fast so every waiter sees the
		// rejection too (they would hit the same full queue).
		s.finish(hash, f, run.Outcome{Spec: spec, Err: submitErr}, SourceComputed)
		return run.Outcome{}, "", submitErr
	}
	return s.await(ctx, f, false)
}

// finish publishes a flight's outcome and retires it from the in-flight
// table, updating the aggregate counters.
func (s *Server) finish(hash string, f *flight, out run.Outcome, src string) {
	f.out = out
	f.src = src
	s.mu.Lock()
	delete(s.inflight, hash)
	if out.Err == nil {
		switch src {
		case SourceDisk:
			s.counts.diskHits++
		case SourceComputed:
			s.counts.computed++
		}
	} else if !errors.Is(out.Err, ErrQueueFull) {
		s.counts.runErrors++
	} else {
		s.counts.rejected++
	}
	s.mu.Unlock()
	close(f.done)
}

// await blocks on a flight until it completes or the context dies.
func (s *Server) await(ctx context.Context, f *flight, coalesced bool) (run.Outcome, string, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		return run.Outcome{}, "", ctx.Err()
	}
	src := f.src
	if coalesced {
		s.mu.Lock()
		s.counts.coalesced++
		s.mu.Unlock()
		src = SourceCoalesced
	}
	if f.out.Err != nil && errors.Is(f.out.Err, ErrQueueFull) {
		return run.Outcome{}, "", f.out.Err
	}
	return f.out, src, nil
}

// planResult is everything executePlan learned about a plan.
type planResult struct {
	store   *run.Store
	sources map[string]string // spec hash → resolution source
	counts  CacheCounts
	// firstRunErr is the first run-level failure in plan order (the
	// plan still resolves fully, matching Runner semantics).
	firstRunErr error
}

// executePlan resolves every run of a plan through the cache and the
// shared pool: baselines first (they are every sweep's denominator),
// then sweeps, each phase fanned out concurrently. onEvent, when
// non-nil, observes every resolution, one call at a time.
//
// The returned error is transport-level (backpressure or cancellation)
// and aborts the remaining phases; run-level failures land in
// planResult.firstRunErr.
func (s *Server) executePlan(ctx context.Context, client string, p *run.Plan, onEvent func(PlanEvent)) (*planResult, error) {
	specs := p.Specs()
	pr := &planResult{
		store:   run.NewStore(),
		sources: make(map[string]string, len(specs)),
	}
	pr.counts.Total = len(specs)
	var baselines, sweeps []run.Spec
	for _, sp := range specs {
		if sp.IsBaseline() {
			baselines = append(baselines, sp)
		} else {
			sweeps = append(sweeps, sp)
		}
	}
	prog := &planProgress{total: len(specs), fn: onEvent}
	if err := s.resolveWave(ctx, client, p, pr, baselines, prog); err != nil {
		return pr, err
	}
	if err := s.resolveWave(ctx, client, p, pr, sweeps, prog); err != nil {
		return pr, err
	}
	// Surface run-level failures in plan order, like Runner.RunInto.
	for _, sp := range specs {
		if out, ok := pr.store.Get(sp); ok && out.Err != nil {
			pr.firstRunErr = fmt.Errorf("%v: %w", sp, out.Err)
			break
		}
	}
	return pr, nil
}

// planProgress serializes PlanEvent callbacks and the done counter.
type planProgress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(PlanEvent)
}

func (pp *planProgress) report(spec run.Spec, hash, src string, wall time.Duration, err error) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.done++
	if pp.fn == nil {
		return
	}
	ev := PlanEvent{
		Done: pp.done, Total: pp.total,
		Spec: spec.String(), Hash: hash, Source: src,
		WallUs: wall.Microseconds(),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	pp.fn(ev)
}

// resolveWave fans one phase's specs out concurrently, collecting
// outcomes into the plan result. It returns the first transport-level
// error; run-level errors stay in the outcomes.
func (s *Server) resolveWave(ctx context.Context, client string, p *run.Plan, pr *planResult, specs []run.Spec, prog *planProgress) error {
	if len(specs) == 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, sp := range specs {
		wg.Add(1)
		go func(sp run.Spec) {
			defer wg.Done()
			var base *run.Outcome
			if !sp.IsBaseline() {
				b, ok := p.BaselineOf(sp)
				if !ok {
					out := run.Outcome{Spec: sp, Err: fmt.Errorf("run: %v has no declared baseline", sp)}
					pr.store.Put(out)
					prog.report(sp, sp.Hash(), SourceComputed, 0, out.Err)
					return
				}
				if bout, ok := pr.store.Get(b); ok {
					base = &bout
				} else {
					out := run.Outcome{Spec: sp, Err: fmt.Errorf("run: baseline %v missing from store", b)}
					pr.store.Put(out)
					prog.report(sp, sp.Hash(), SourceComputed, 0, out.Err)
					return
				}
			}
			start := time.Now()
			out, src, err := s.resolve(ctx, client, sp, base)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			pr.store.Put(out)
			mu.Lock()
			pr.sources[sp.Hash()] = src
			switch src {
			case SourceDisk:
				pr.counts.DiskHits++
			case SourceComputed:
				pr.counts.Computed++
			case SourceCoalesced:
				pr.counts.Coalesced++
			}
			mu.Unlock()
			prog.report(sp, sp.Hash(), src, time.Since(start), out.Err)
		}(sp)
	}
	wg.Wait()
	return firstErr
}
