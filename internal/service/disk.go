package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/run"
)

// diskVersion is the on-disk entry format version. Entries with a
// different version are treated as misses (recompute and overwrite),
// never misread.
const diskVersion = 1

// DiskStore is the persistent content-addressed result cache: one JSON
// file per executed run, addressed by the run's canonical Spec hash and
// sharded by the hash's first byte (objects/ab/abcdef….json).
//
// Durability discipline:
//
//   - writes are atomic: the entry is written to a temp file in the
//     destination directory, fsynced, then renamed into place, so a
//     crash mid-write leaves either the old entry or none — never a
//     torn one (concurrent writers of the same hash write identical
//     content, so last-rename-wins is harmless);
//   - reads are verified: the payload checksum must match, the stored
//     spec must re-hash to the entry's address, and the address must
//     match the filename; any mismatch (truncation, bit rot, a hand-
//     edited file) surfaces as ErrCorrupt and the caller recomputes;
//   - entries are loaded lazily — the store never scans the directory.
type DiskStore struct {
	root string
}

// ErrCorrupt marks an unreadable, truncated, or tampered cache entry.
// Callers treat it as a miss (and typically overwrite the entry with a
// freshly computed result).
var ErrCorrupt = errors.New("service: corrupt cache entry")

// NewDiskStore opens (creating if needed) a store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: cache directory required")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("service: create cache dir: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

// Root returns the store's root directory.
func (d *DiskStore) Root() string { return d.root }

// entryPath is the object file for a hash.
func (d *DiskStore) entryPath(hash string) string {
	return filepath.Join(d.root, "objects", hash[:2], hash+".json")
}

// diskEntry is the on-disk envelope. Payload is kept raw so the
// checksum covers the exact stored bytes.
type diskEntry struct {
	Version int             `json:"version"`
	Hash    string          `json:"hash"`
	Sum     string          `json:"sum"` // sha256 hex of Payload
	Payload json.RawMessage `json:"payload"`
}

// payloadJSON is the cached outcome: the self-describing spec plus the
// full result. Failed runs are never persisted, so there is no error
// field — a cached entry is always a completed, successful run.
type payloadJSON struct {
	Spec   SpecJSON    `json:"spec"`
	Point  core.Point  `json:"point"`
	Result apps.Result `json:"result"`
}

// Load fetches the outcome for a spec. found reports whether an entry
// existed at all; a found entry that fails verification returns
// ErrCorrupt (wrapped with detail) and should be recomputed.
func (d *DiskStore) Load(s run.Spec) (out run.Outcome, found bool, err error) {
	hash := s.Hash()
	raw, rerr := os.ReadFile(d.entryPath(hash))
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			return run.Outcome{}, false, nil
		}
		return run.Outcome{}, true, fmt.Errorf("%w: %v", ErrCorrupt, rerr)
	}
	var e diskEntry
	if jerr := json.Unmarshal(raw, &e); jerr != nil {
		return run.Outcome{}, true, fmt.Errorf("%w: %s: %v", ErrCorrupt, hash, jerr)
	}
	if e.Version != diskVersion {
		return run.Outcome{}, true, fmt.Errorf("%w: %s: version %d, want %d", ErrCorrupt, hash, e.Version, diskVersion)
	}
	if e.Hash != hash {
		return run.Outcome{}, true, fmt.Errorf("%w: entry %s claims hash %s", ErrCorrupt, hash, e.Hash)
	}
	sum := sha256.Sum256(e.Payload)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return run.Outcome{}, true, fmt.Errorf("%w: %s: payload checksum mismatch", ErrCorrupt, hash)
	}
	var p payloadJSON
	if jerr := json.Unmarshal(e.Payload, &p); jerr != nil {
		return run.Outcome{}, true, fmt.Errorf("%w: %s: payload: %v", ErrCorrupt, hash, jerr)
	}
	spec, serr := p.Spec.Spec()
	if serr != nil {
		return run.Outcome{}, true, fmt.Errorf("%w: %s: stored spec: %v", ErrCorrupt, hash, serr)
	}
	if spec.Hash() != hash {
		return run.Outcome{}, true, fmt.Errorf("%w: %s: stored spec re-hashes to %s", ErrCorrupt, hash, spec.Hash())
	}
	return run.Outcome{Spec: spec, Res: p.Result, Point: p.Point}, true, nil
}

// Store persists a completed outcome atomically. Outcomes carrying an
// error are refused: failures are conditions of the moment (a bad app
// name, a canceled context), not content.
func (d *DiskStore) Store(out run.Outcome) error {
	if out.Err != nil {
		return fmt.Errorf("service: refusing to cache failed run %v: %v", out.Spec, out.Err)
	}
	hash := out.Spec.Hash()
	payload, err := json.Marshal(payloadJSON{
		Spec:   SpecToJSON(out.Spec),
		Point:  out.Point,
		Result: out.Res,
	})
	if err != nil {
		return fmt.Errorf("service: encode %v: %w", out.Spec, err)
	}
	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(diskEntry{
		Version: diskVersion,
		Hash:    hash,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("service: encode entry %v: %w", out.Spec, err)
	}
	dst := d.entryPath(hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("service: cache shard: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "tmp-*")
	if err != nil {
		return fmt.Errorf("service: cache temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("service: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: cache sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("service: cache rename: %w", err)
	}
	return nil
}
