package service

import (
	"errors"
	"sync"
)

// ErrQueueFull is the admission-control signal: the shared queue is at
// capacity and the caller should back off and retry (HTTP maps it to
// 429 + Retry-After).
var ErrQueueFull = errors.New("service: run queue full")

// Scheduler is the daemon's one shared bounded worker pool. Jobs are
// queued per client and dispatched round-robin across clients, so a
// client that floods the queue delays its own later runs, not other
// clients' next run: with K active clients each observes at worst a
// 1/K share of the pool regardless of queue composition. Admission is
// bounded: beyond maxQueue queued (not yet executing) jobs, Submit
// fails fast with ErrQueueFull.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]func()
	ring   []string // clients with pending work, in round-robin order
	next   int      // ring cursor: index of the next client to serve
	queued int
	closed bool
	wg     sync.WaitGroup

	workers  int
	maxQueue int

	// counters (guarded by mu)
	submitted int64
	ran       int64
	rejected  int64
	maxDepth  int
}

// NewScheduler starts a pool of `workers` goroutines with a shared
// queue bound of maxQueue.
func NewScheduler(workers, maxQueue int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	s := &Scheduler{
		queues:   map[string][]func(){},
		workers:  workers,
		maxQueue: maxQueue,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues a job under a client identity. It returns
// ErrQueueFull when the shared queue is at capacity and an error after
// Close; the job runs exactly once otherwise.
func (s *Scheduler) Submit(client string, fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("service: scheduler closed")
	}
	if s.queued >= s.maxQueue {
		s.rejected++
		return ErrQueueFull
	}
	q := s.queues[client]
	if len(q) == 0 {
		s.ring = append(s.ring, client)
	}
	s.queues[client] = append(q, fn)
	s.queued++
	s.submitted++
	if s.queued > s.maxDepth {
		s.maxDepth = s.queued
	}
	s.cond.Signal()
	return nil
}

// worker executes jobs until the scheduler is closed and drained.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queued == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		fn := s.popLocked()
		s.ran++
		s.mu.Unlock()
		fn()
	}
}

// popLocked takes the next job in round-robin order. Caller holds mu
// and has checked queued > 0.
func (s *Scheduler) popLocked() func() {
	if s.next >= len(s.ring) {
		s.next = 0
	}
	client := s.ring[s.next]
	q := s.queues[client]
	fn := q[0]
	if len(q) == 1 {
		// The client's queue drained: drop it from the ring. The cursor
		// stays put — it now points at the next client (or wraps).
		delete(s.queues, client)
		s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
	} else {
		s.queues[client] = q[1:]
		s.next++
	}
	s.queued--
	return fn
}

// Close refuses new submissions, lets the queue drain, and waits for
// the workers to exit.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// SchedStats is the scheduler's /v1/stats snapshot.
type SchedStats struct {
	Workers   int   `json:"workers"`
	Depth     int   `json:"depth"`
	MaxDepth  int   `json:"max_depth"`
	Clients   int   `json:"clients"`
	Submitted int64 `json:"submitted"`
	Ran       int64 `json:"ran"`
	Rejected  int64 `json:"rejected"`
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedStats{
		Workers:   s.workers,
		Depth:     s.queued,
		MaxDepth:  s.maxDepth,
		Clients:   len(s.ring),
		Submitted: s.submitted,
		Ran:       s.ran,
		Rejected:  s.rejected,
	}
}

// RetryAfterSeconds is the backpressure hint attached to queue-full
// rejections: a rough drain time for the current backlog, floored at
// one second and capped so clients never stall for minutes on a hint.
func (s *Scheduler) RetryAfterSeconds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := 1 + s.queued/(4*s.workers)
	if sec > 30 {
		sec = 30
	}
	return sec
}
