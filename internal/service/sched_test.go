package service

import (
	"errors"
	"sync"
	"testing"
)

func TestSchedulerRunsEverything(t *testing.T) {
	s := NewScheduler(4, 128)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 100; i++ {
		if err := s.Submit("c", func() { mu.Lock(); ran++; mu.Unlock() }); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if ran != 100 {
		t.Fatalf("ran = %d, want 100", ran)
	}
	st := s.Stats()
	if st.Submitted != 100 || st.Ran != 100 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSchedulerBackpressure fills the queue behind a blocked worker and
// checks that exactly the overflow is rejected with ErrQueueFull.
func TestSchedulerBackpressure(t *testing.T) {
	s := NewScheduler(1, 2)
	running := make(chan struct{})
	release := make(chan struct{})
	if err := s.Submit("a", func() { close(running); <-release }); err != nil {
		t.Fatal(err)
	}
	<-running // worker occupied; queue is empty again

	if err := s.Submit("a", func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("a", func() {}); err != nil {
		t.Fatal(err)
	}
	// Queue is at capacity (2 queued, 1 executing).
	if err := s.Submit("a", func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if sec := s.RetryAfterSeconds(); sec < 1 || sec > 30 {
		t.Fatalf("RetryAfterSeconds = %d, want within [1, 30]", sec)
	}
	close(release)
	s.Close()
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

// TestSchedulerFairness queues a flood from one client and a trickle
// from another behind a blocked single worker: round-robin must
// interleave them, so the trickle finishes long before the flood.
func TestSchedulerFairness(t *testing.T) {
	s := NewScheduler(1, 128)
	running := make(chan struct{})
	release := make(chan struct{})
	if err := s.Submit("gate", func() { close(running); <-release }); err != nil {
		t.Fatal(err)
	}
	<-running

	var mu sync.Mutex
	var order []string
	record := func(id string) func() {
		return func() { mu.Lock(); order = append(order, id); mu.Unlock() }
	}
	for i := 0; i < 8; i++ {
		if err := s.Submit("flood", record("flood")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.Submit("trickle", record("trickle")); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	s.Close()

	if len(order) != 10 {
		t.Fatalf("executed %d jobs, want 10", len(order))
	}
	// With strict round-robin both trickle jobs land within the first
	// four slots (flood, trickle, flood, trickle, flood, flood, ...).
	trickleDone := 0
	for i, id := range order {
		if id == "trickle" {
			trickleDone++
			if i >= 4 {
				t.Fatalf("trickle job ran at position %d (order %v), want round-robin interleave", i, order)
			}
		}
	}
	if trickleDone != 2 {
		t.Fatalf("trickle ran %d times, want 2", trickleDone)
	}
}

func TestSchedulerSubmitAfterClose(t *testing.T) {
	s := NewScheduler(1, 8)
	s.Close()
	if err := s.Submit("c", func() {}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
}
