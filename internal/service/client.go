package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is a minimal typed client for the daemon, used by cmd/reprod's
// loadtest mode and by the smoke tests. It surfaces backpressure
// explicitly: a 429 decodes into *RetryError carrying the server's
// Retry-After hint.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ID, when set, is sent as X-Reprod-Client so the daemon's fair
	// scheduler sees one logical client across connections.
	ID string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// RetryError is a 429 rejection with the server's backoff hint.
type RetryError struct {
	After   time.Duration
	Message string
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("service: rejected, retry after %v: %s", e.After, e.Message)
}

// StatusError is any other non-2xx response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Code, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends a JSON body and decodes a JSON response into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.ID != "" {
		req.Header.Set("X-Reprod-Client", c.ID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// get fetches a JSON endpoint into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	if c.ID != "" {
		req.Header.Set("X-Reprod-Client", c.ID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// decodeResponse maps the HTTP layer back to typed results and errors.
func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode == http.StatusTooManyRequests {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		after := 1
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			after = v
		}
		return &RetryError{After: time.Duration(after) * time.Second, Message: e.Error}
	}
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		msg := ""
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		} else {
			msg = string(bytes.TrimSpace(raw))
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Run resolves one spec.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var out RunResponse
	if err := c.post(ctx, "/v1/run", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep resolves an app × knob × values matrix.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	var out SweepResponse
	if err := c.post(ctx, "/v1/sweep", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tolerance fetches an application's analytic sensitivity curves from
// one instrumented baseline run.
func (c *Client) Tolerance(ctx context.Context, req ToleranceRequest) (*ToleranceResponse, error) {
	var out ToleranceResponse
	if err := c.post(ctx, "/v1/tolerance", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Experiment renders one paper artifact.
func (c *Client) Experiment(ctx context.Context, req ExperimentRequest) (*ExperimentResponse, error) {
	var out ExperimentResponse
	if err := c.post(ctx, "/v1/experiment", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the daemon's aggregate counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.get(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}
